// Fds runs the Fire Dynamics Simulator proxy (the paper's full
// application study, Figure 10): coupled-mesh exchanges whose match
// lists grow with job scale and whose messages match deep in the list.
// It prints factor speedups over the baseline for the paper's variants
// across modeled job sizes.
package main

import (
	"flag"
	"fmt"

	"spco"
)

func main() {
	var (
		world  = flag.Int("world", 8, "simulated ranks (per-rank load is set by -target)")
		phases = flag.Int("phases", 2, "exchange/compute super-steps")
	)
	flag.Parse()

	prof := spco.Nehalem
	prof.Cores = 2

	run := func(kind spco.Kind, k int, hot, pool bool, target int) float64 {
		return spco.RunFDS(spco.FDSConfig{
			World: spco.WorldConfig{
				Size: *world,
				Engine: spco.EngineConfig{
					Profile:        prof,
					Kind:           kind,
					EntriesPerNode: k,
					HotCache:       hot,
					Pool:           pool,
				},
				Fabric: spco.MellanoxQDR,
			},
			TargetRanks: target,
			Phases:      *phases,
		}).RuntimeNS
	}

	fmt.Println("FDS proxy: factor speedup over baseline (Nehalem cluster model)")
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "procs", "HC", "LLA", "HC+LLA", "LLA-Large")
	for _, target := range []int{128, 512, 1024, 2048, 4096} {
		base := run(spco.Baseline, 0, false, false, target)
		hc := run(spco.Baseline, 0, true, false, target)
		lla := run(spco.LLA, 2, false, false, target)
		hclla := run(spco.LLA, 2, true, true, target)
		large := run(spco.LLA, 64, false, false, target)
		fmt.Printf("%-8d %11.3fx %11.3fx %11.3fx %11.3fx\n",
			target, base/hc, base/lla, base/hclla, base/large)
	}
	fmt.Println("\nSpatial locality pays more the deeper the lists grow; hot")
	fmt.Println("caching alone drowns in region-list locking at scale, but")
	fmt.Println("combined with the packed structure it leads at small scale —")
	fmt.Println("the paper's Figure 10 in miniature.")
}
