// Multithreaded reproduces the Section 2.3 study: a receiving MPI
// process decomposed into concurrently-posting threads, showing how
// thread decompositions and stencils inflate match-list lengths and
// search depths (Table 1), and what that costs under each structure.
package main

import (
	"flag"
	"fmt"

	"spco"
)

func main() {
	var trials = flag.Int("trials", 10, "trials per decomposition")
	flag.Parse()

	fmt.Println("Multithreaded MPI matching: Table 1 decompositions")
	fmt.Printf("%-10s %-8s %5s %5s %7s %14s\n", "decomp", "stencil", "tr", "ts", "length", "search depth")

	rows := []struct {
		d spco.Decomp
		s spco.Stencil
	}{
		{spco.Decomp{X: 32, Y: 32}, spco.Star2D5},
		{spco.Decomp{X: 64, Y: 32}, spco.Star2D5},
		{spco.Decomp{X: 32, Y: 32}, spco.Full2D9},
		{spco.Decomp{X: 64, Y: 32}, spco.Full2D9},
		{spco.Decomp{X: 8, Y: 8, Z: 4}, spco.Star3D7},
		{spco.Decomp{X: 1, Y: 1, Z: 128}, spco.Star3D7},
		{spco.Decomp{X: 8, Y: 8, Z: 4}, spco.Full3D27},
	}
	for _, r := range rows {
		res := spco.RunMultithreaded(spco.MTConfig{Decomp: r.d, Stencil: r.s, Trials: *trials})
		fmt.Printf("%-10s %-8s %5d %5d %7d %9.2f ± %-6.2f\n",
			res.Decomp.String(), res.Stencil.String(), res.TR, res.TS, res.Length,
			res.Depth.Mean(), res.Depth.StdDev())
	}

	// What do those depths cost? Price the worst row's mean depth on a
	// cold Sandy Bridge cache under each structure.
	fmt.Println("\nCost of one match at depth ~518 (the 8x8x4/27pt mean), cold caches:")
	for _, c := range []struct {
		label string
		kind  spco.Kind
		k     int
	}{
		{"baseline", spco.Baseline, 0},
		{"LLA-8", spco.LLA, 8},
		{"hash bins (256)", spco.HashBins, 0},
	} {
		en := spco.MustNewEngine(spco.EngineConfig{
			Profile: spco.SandyBridge, Kind: c.kind, EntriesPerNode: c.k,
			Bins: 256, CommSize: 64,
		})
		for i := 0; i < 518; i++ {
			en.PostRecv(0, 5000+i, 1, uint64(i))
		}
		en.PostRecv(3, 42, 1, 999)
		en.BeginComputePhase(1e6)
		_, _, cycles := en.Arrive(spco.Envelope{Rank: 3, Tag: 42, Ctx: 1}, 0)
		fmt.Printf("  %-18s %8d cycles (%.2f µs)\n", c.label, cycles, en.CyclesToNanos(cycles)/1000)
	}
	fmt.Println("\nBucketed structures dodge the search; locality makes the")
	fmt.Println("unavoidable linear searches affordable.")
}
