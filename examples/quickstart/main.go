// Quickstart: build a matching engine, post receives, deliver messages,
// and see how data locality changes the cost of the receive-side
// critical path — the heart of the paper in thirty lines of API.
package main

import (
	"fmt"

	"spco"
)

func main() {
	fmt.Println("Semi-Permanent Cache Occupancy — quickstart")
	fmt.Println()
	fmt.Println("Cost of matching a message behind 1024 unrelated receives,")
	fmt.Println("on a cold Sandy Bridge cache, per structure:")
	fmt.Println()

	configs := []struct {
		label string
		cfg   spco.EngineConfig
	}{
		{"baseline linked list", spco.EngineConfig{Profile: spco.SandyBridge, Kind: spco.Baseline}},
		{"linked list of arrays, K=2", spco.EngineConfig{Profile: spco.SandyBridge, Kind: spco.LLA, EntriesPerNode: 2}},
		{"linked list of arrays, K=8", spco.EngineConfig{Profile: spco.SandyBridge, Kind: spco.LLA, EntriesPerNode: 8}},
		{"K=8 + hot caching", spco.EngineConfig{Profile: spco.SandyBridge, Kind: spco.LLA, EntriesPerNode: 8, HotCache: true, Pool: true}},
	}

	for _, c := range configs {
		en := spco.MustNewEngine(c.cfg)

		// Pad the posted receive queue: 1024 receives that will never
		// match (a different source rank).
		for i := 0; i < 1024; i++ {
			en.PostRecv(0, 10000+i, 1, uint64(i))
		}
		// The receive we care about.
		en.PostRecv(3, 42, 1, 9999)

		// A compute phase passes: the caches turn over (and the heater,
		// when configured, re-warms the match queues).
		en.BeginComputePhase(1e6)

		// The message arrives and must search past all 1024 entries.
		req, ok, cycles := en.Arrive(spco.Envelope{Rank: 3, Tag: 42, Ctx: 1}, 0)
		if !ok || req != 9999 {
			panic("match failed")
		}
		fmt.Printf("  %-28s %8d cycles  (%6.2f µs, search depth %d)\n",
			c.label, cycles, en.CyclesToNanos(cycles)/1000, 1025)
	}

	fmt.Println()
	fmt.Println("Same comparison, message matched at the head (depth 1):")
	for _, c := range configs {
		en := spco.MustNewEngine(c.cfg)
		en.PostRecv(3, 42, 1, 1)
		en.BeginComputePhase(1e6)
		_, _, cycles := en.Arrive(spco.Envelope{Rank: 3, Tag: 42, Ctx: 1}, 0)
		fmt.Printf("  %-28s %8d cycles\n", c.label, cycles)
	}
	fmt.Println()
	fmt.Println("Locality helps deep searches by an order of magnitude and")
	fmt.Println("costs nothing when lists are short — the paper's thesis.")
}
