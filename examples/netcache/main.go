// Netcache evaluates the hardware mechanisms the paper's conclusions propose: a
// dedicated network-data cache giving semi-permanent occupancy without
// a heater thread. It compares baseline, hot caching, and the proposed
// cache on both studied architectures — showing the proposal delivers
// hot caching's upside without Broadwell's downside, and without the
// heater's locks.
package main

import (
	"flag"
	"fmt"

	"spco"
)

func main() {
	var depth = flag.Int("depth", 1024, "posted receive queue search length")
	flag.Parse()

	fmt.Printf("Dedicated network cache vs hot caching (depth %d, 1 B messages)\n\n", *depth)

	systems := []struct {
		prof spco.Profile
		fab  spco.Fabric
	}{
		{spco.SandyBridge, spco.IBQDR},
		{spco.Broadwell, spco.OmniPath},
	}
	for _, sys := range systems {
		fmt.Printf("%s:\n", sys.prof.Name)
		var base float64
		for _, v := range []struct {
			name     string
			hot, nc  bool
			partWays int
		}{
			{name: "baseline"},
			{name: "hot caching", hot: true},
			{name: "L3 partition", partWays: 4},
			{name: "network cache", nc: true},
		} {
			r := spco.RunBandwidth(spco.BWConfig{
				Engine: spco.EngineConfig{
					Profile:         sys.prof,
					Kind:            spco.LLA,
					EntriesPerNode:  2,
					HotCache:        v.hot,
					Pool:            v.hot,
					NetworkCache:    v.nc,
					L3PartitionWays: v.partWays,
				},
				Fabric:     sys.fab,
				QueueDepth: *depth,
				MsgBytes:   1,
				Iters:      5,
			})
			if v.name == "baseline" {
				base = r.BandwidthMiBps
			}
			fmt.Printf("  %-16s %10.5f MiB/s  (%.2fx baseline, %.0f cycles/msg)\n",
				v.name, r.BandwidthMiBps, r.BandwidthMiBps/base, r.CPUCyclesPerMsg)
		}
		fmt.Println()
	}
	fmt.Println("Hot caching flips sign between the two machines; both hardware")
	fmt.Println("proposals win on both. The CAT-style partition needs no new")
	fmt.Println("silicon and already beats the heater; the dedicated cache adds")
	fmt.Println("core-adjacent latency on top. These are the paper's closing")
	fmt.Println("proposals (Sections 4.6, 6), evaluated.")
}
