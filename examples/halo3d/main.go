// Halo3d runs a real bulk-synchronous 3D halo-exchange application
// (the MiniFE conjugate-gradient proxy) over the mini-MPI runtime,
// comparing modeled runtimes across matching structures — the Figure 9
// experiment as a standalone program.
package main

import (
	"flag"
	"fmt"

	"spco"
)

func main() {
	var (
		ranks = flag.Int("ranks", 27, "world size")
		n     = flag.Int("n", 8, "local subdomain edge (n^3 points per rank)")
		iters = flag.Int("iters", 8, "CG iterations")
		pad   = flag.Int("pad", 1024, "unmatched receives padding each queue")
	)
	flag.Parse()

	prof := spco.Broadwell
	prof.Cores = 2

	fmt.Printf("MiniFE halo-exchange CG on %d ranks, %d^3 points/rank, queue padding %d\n\n",
		*ranks, *n, *pad)

	run := func(label string, kind spco.Kind, k int) spco.AppResult {
		res := spco.RunMiniFE(spco.MiniFEConfig{
			World: spco.WorldConfig{
				Size: *ranks,
				Engine: spco.EngineConfig{
					Profile:        prof,
					Kind:           kind,
					EntriesPerNode: k,
				},
				Fabric: spco.OmniPath,
			},
			N:        *n,
			Iters:    *iters,
			PadDepth: *pad,
		})
		fmt.Printf("  %-22s %10.3f ms   residual %.3e   mean search depth %.1f\n",
			label, res.RuntimeNS/1e6, res.Residual, res.Stats.MeanPRQDepth())
		return res
	}

	base := run("baseline", spco.Baseline, 0)
	lla := run("LLA (K=2)", spco.LLA, 2)
	run("LLA (K=8)", spco.LLA, 8)
	run("rank array (Open MPI)", spco.RankArray, 0)

	fmt.Printf("\nLLA speedup over baseline: %.2fx\n", base.RuntimeNS/lla.RuntimeNS)
	fmt.Println("(the CG residuals agree across structures: matching changes time, not answers)")
}
