// Package spco (Semi-Permanent Cache Occupancy) reproduces the system
// of "The Case for Semi-Permanent Cache Occupancy: Understanding the
// Impact of Data Locality on Network Processing" (Dosanjh et al.,
// ICPP 2018): an instrumented MPI message-matching engine for studying
// how spatial and temporal data locality shape network processing
// performance.
//
// The library provides, behind this facade:
//
//   - a cycle-accounting simulator of x86 cache hierarchies with the
//     prefetchers the paper's analysis rests on (Sandy Bridge,
//     Broadwell, Nehalem and KNL profiles);
//   - MPI matching semantics and five posted-receive-queue structures:
//     the MPICH-style linked-list baseline, the paper's linked list of
//     arrays (LLA) with a configurable entries-per-node K, and the
//     related-work comparators (hash bins, Open MPI rank arrays, the
//     Zounmevo-Afsahi 4D decomposition);
//   - hot caching: a heater that keeps the match queues semi-permanently
//     resident in the shared cache, with the paper's locking and
//     interference costs modeled;
//   - a LogGP fabric model, a miniature MPI runtime for end-to-end
//     application studies, proxy applications (MiniFE, AMG2013, FDS,
//     MiniMD), and the complete experiment registry regenerating every
//     table and figure of the paper's evaluation.
//
// Quick start:
//
//	en := spco.MustNewEngine(spco.EngineConfig{
//	    Profile:        spco.SandyBridge,
//	    Kind:           spco.LLA,
//	    EntriesPerNode: 8,
//	})
//	en.PostRecv(3, 42, 1, 100)
//	req, ok, cycles := en.Arrive(spco.Envelope{Rank: 3, Tag: 42, Ctx: 1}, 0)
//
// See examples/ for runnable programs and cmd/spco-bench for the
// experiment driver.
package spco

import (
	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/experiments"
	"spco/internal/fault"
	"spco/internal/match"
	"spco/internal/matchlist"
	"spco/internal/motif"
	"spco/internal/mpi"
	"spco/internal/mtrace"
	"spco/internal/netmodel"
	"spco/internal/proxyapps"
	"spco/internal/stencil"
	"spco/internal/telemetry"
	"spco/internal/validate"
	"spco/internal/workload"
)

// Architecture profiles (Section 4.1's systems).
type Profile = cache.Profile

// The built-in machines.
var (
	SandyBridge = cache.SandyBridge
	Broadwell   = cache.Broadwell
	Nehalem     = cache.Nehalem
	KNL         = cache.KNL
)

// ProfileByName looks up a built-in profile ("sandybridge", "broadwell",
// "nehalem", "knl").
func ProfileByName(name string) (Profile, bool) {
	p, ok := cache.Profiles[name]
	return p, ok
}

// WithNetworkCache extends a profile with the dedicated network cache
// the paper's conclusions propose (an extension experiment; see the
// "netcache" artifact). Engines can also request it directly via
// EngineConfig.NetworkCache.
func WithNetworkCache(p Profile, sizeBytes int) Profile {
	return cache.WithNetworkCache(p, sizeBytes)
}

// Matching structures.
type Kind = matchlist.Kind

// The posted-receive-queue implementations: the paper's baseline and
// LLA, the related-work comparators, and the extension kinds (a
// Portals/BXI-style hardware offload with software spill, and the
// MPICH-CH4-style per-communicator split).
const (
	Baseline  = matchlist.KindBaseline
	LLA       = matchlist.KindLLA
	HashBins  = matchlist.KindHashBins
	RankArray = matchlist.KindRankArray
	FourD     = matchlist.KindFourD
	HWOffload = matchlist.KindHWOffload
	PerComm   = matchlist.KindPerComm
)

// ParseKind maps a structure name to its Kind.
func ParseKind(s string) (Kind, error) { return matchlist.ParseKind(s) }

// Matching semantics.
type (
	// Envelope is the matching information an incoming message carries.
	Envelope = match.Envelope
	// Posted is a posted-receive entry.
	Posted = match.Posted
)

// Wildcards.
const (
	AnySource = match.AnySource
	AnyTag    = match.AnyTag
)

// The matching engine (the paper's instrument).
type (
	// Engine is a matching engine over the cache simulator.
	Engine = engine.Engine
	// EngineConfig parameterises an Engine.
	EngineConfig = engine.Config
	// EngineStats aggregates engine activity.
	EngineStats = engine.Stats
)

// NewEngine builds a matching engine, rejecting misconfiguration (an
// unknown Kind, an out-of-range core, an oversized communicator, a
// bounded UMQ without an overflow policy) with an error instead of a
// panic.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// MustNewEngine is NewEngine for code-authored configurations known to
// be valid; it panics on the errors NewEngine returns.
func MustNewEngine(cfg EngineConfig) *Engine { return engine.MustNew(cfg) }

// ValidateEngineConfig reports the first problem with cfg, or nil.
func ValidateEngineConfig(cfg EngineConfig) error { return cfg.Validate() }

// UMQ overflow policies for bounded-UMQ configurations
// (EngineConfig.UMQCapacity + EngineConfig.Overflow).
type OverflowPolicy = engine.OverflowPolicy

// The policies.
const (
	OverflowUnbounded  = engine.OverflowUnbounded
	OverflowDrop       = engine.OverflowDrop
	OverflowCredit     = engine.OverflowCredit
	OverflowRendezvous = engine.OverflowRendezvous
)

// ParseOverflowPolicy maps a policy name ("unbounded", "drop",
// "credit", "rendezvous") to its OverflowPolicy.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	return engine.ParseOverflowPolicy(s)
}

// Network fabrics.
type Fabric = netmodel.Fabric

// The built-in fabrics.
var (
	IBQDR       = netmodel.IBQDR
	OmniPath    = netmodel.OmniPath
	MellanoxQDR = netmodel.MellanoxQDR
)

// Mini-MPI runtime for end-to-end studies.
type (
	// World is a set of in-process ranks.
	World = mpi.World
	// WorldConfig parameterises a World.
	WorldConfig = mpi.Config
	// Proc is one rank of a World.
	Proc = mpi.Proc
	// Request is a nonblocking-operation handle.
	Request = mpi.Request
	// Comm is a communicator: isolated matching context, member group,
	// and point-to-point binomial-tree collectives.
	Comm = mpi.Comm
)

// NewWorld builds a world of ranks, each with its own engine.
func NewWorld(cfg WorldConfig) *World { return mpi.NewWorld(cfg) }

// Workloads (the paper's benchmarks).
type (
	// BWConfig parameterises the modified osu_bw benchmark.
	BWConfig = workload.BWConfig
	// BWResult is one bandwidth measurement.
	BWResult = workload.BWResult
	// MTConfig parameterises the Table 1 multithreaded benchmark.
	MTConfig = workload.MTConfig
	// MTResult is one Table 1 row.
	MTResult = workload.MTResult
	// HCMicroConfig parameterises the heater microbenchmark.
	HCMicroConfig = workload.HCMicroConfig
	// HCMicroResult reports cold and heated access latency.
	HCMicroResult = workload.HCMicroResult
)

// RunBandwidth runs the modified osu_bw pattern (Figures 4-7).
func RunBandwidth(cfg BWConfig) BWResult { return workload.RunBW(cfg) }

// RunMultithreaded runs the Table 1 benchmark.
func RunMultithreaded(cfg MTConfig) MTResult { return workload.RunMT(cfg) }

// RunHCMicro runs the Section 4.3 heater microbenchmark.
func RunHCMicro(cfg HCMicroConfig) HCMicroResult { return workload.RunHCMicro(cfg) }

// Latency and UMQ workloads.
type (
	// LatConfig parameterises the modified osu_latency benchmark.
	LatConfig = workload.LatConfig
	// LatResult is one latency measurement.
	LatResult = workload.LatResult
	// UMQConfig parameterises the unexpected-queue-depth benchmark.
	UMQConfig = workload.UMQConfig
	// UMQResult is one UMQ measurement.
	UMQResult = workload.UMQResult
	// MTRateConfig parameterises the native thread-contention benchmark.
	MTRateConfig = workload.MTRateConfig
	// MTRateResult reports native matching throughput.
	MTRateResult = workload.MTRateResult
)

// RunLatency runs the modified osu_latency pattern.
func RunLatency(cfg LatConfig) LatResult { return workload.RunLat(cfg) }

// RunUMQDepth runs the unexpected-queue-depth benchmark.
func RunUMQDepth(cfg UMQConfig) UMQResult { return workload.RunUMQ(cfg) }

// RunMTRate runs the native thread-contention benchmark.
func RunMTRate(cfg MTRateConfig) MTRateResult { return workload.RunMTRate(cfg) }

// Fault injection (internal/fault): the unreliable wire, the
// retransmission transport, and the chaos/soak harness.
type (
	// WireConfig parameterises the unreliable-wire model (drop, dup,
	// reorder, corrupt, Gilbert–Elliott bursts).
	WireConfig = fault.WireConfig
	// FaultTransportConfig parameterises the retransmission transport.
	FaultTransportConfig = fault.Config
	// FaultTransport is the cycle-accounted retransmission protocol over
	// one unreliable wire into one engine.
	FaultTransport = fault.Transport
	// FaultStats aggregates transport activity.
	FaultStats = fault.Stats
	// FaultDelivery is one packet handed to the engine.
	FaultDelivery = fault.Delivery
	// FaultOpts routes RunBandwidth/RunLatency through the fault layer.
	FaultOpts = workload.FaultOpts
	// FaultCLI is the -fault-* flag bundle for commands.
	FaultCLI = fault.CLI
	// ChaosConfig parameterises the chaos/soak harness.
	ChaosConfig = workload.ChaosConfig
	// ChaosResult is one audited chaos run.
	ChaosResult = workload.ChaosResult
	// InvariantViolation is one invariant breach found by the audit.
	InvariantViolation = validate.Violation
)

// NewFaultTransport builds a retransmission transport over an
// unreliable wire, validating the configuration.
func NewFaultTransport(cfg FaultTransportConfig) (*FaultTransport, error) {
	return fault.NewTransport(cfg)
}

// RunChaos executes one seeded chaos run against a matching engine and
// audits it: exactly-once delivery, per-flow FIFO, cycle conservation,
// full drain. A fixed seed reproduces the run bit-identically.
func RunChaos(cfg ChaosConfig) (ChaosResult, error) { return workload.RunChaos(cfg) }

// Decompositions and stencils (Table 1, halo apps).
type (
	// Decomp is a 2D/3D thread or process grid.
	Decomp = stencil.Decomp
	// Stencil is a communication stencil.
	Stencil = stencil.Stencil
)

// The Table 1 stencils.
const (
	Star2D5  = stencil.Star2D5
	Full2D9  = stencil.Full2D9
	Star3D7  = stencil.Star3D7
	Full3D27 = stencil.Full3D27
)

// Communication motifs (Figure 1).
type (
	// MotifConfig tunes a motif run.
	MotifConfig = motif.Config
	// MotifResult holds a motif's queue-length histograms.
	MotifResult = motif.Result
)

// The three motifs.
var (
	AMRMotif     = motif.AMR
	Sweep3DMotif = motif.Sweep3D
	Halo3DMotif  = motif.Halo3D
)

// Proxy applications (Figures 8-10).
type (
	// AppResult summarises one proxy-application run.
	AppResult = proxyapps.Result
	// MiniFEConfig parameterises the MiniFE proxy.
	MiniFEConfig = proxyapps.MiniFEConfig
	// AMGConfig parameterises the AMG2013 proxy.
	AMGConfig = proxyapps.AMGConfig
	// FDSConfig parameterises the FDS proxy.
	FDSConfig = proxyapps.FDSConfig
	// MiniMDConfig parameterises the MiniMD proxy.
	MiniMDConfig = proxyapps.MiniMDConfig
)

// The proxy-application entry points.
var (
	RunMiniFE = proxyapps.RunMiniFE
	RunAMG    = proxyapps.RunAMG
	RunFDS    = proxyapps.RunFDS
	RunMiniMD = proxyapps.RunMiniMD
)

// Matching-trace record and replay (trace-based simulation, after the
// methodology of Ferreira et al., cited in Section 4.4).
type (
	// MatchTrace is a recorded sequence of matching operations.
	MatchTrace = mtrace.Trace
	// TraceRecorder captures an engine's operations (attach with
	// Engine.SetObserver or WorldConfig.Observer).
	TraceRecorder = mtrace.Recorder
	// ReplayResult summarises one trace replay.
	ReplayResult = mtrace.ReplayResult
)

// NewTraceRecorder starts an empty named trace.
func NewTraceRecorder(name string) *TraceRecorder { return mtrace.NewRecorder(name) }

// LoadTrace reads a trace file written by MatchTrace.Save.
func LoadTrace(path string) (*MatchTrace, error) { return mtrace.Load(path) }

// ReplayTrace drives a fresh engine through a recorded trace,
// cross-checking every matching outcome.
func ReplayTrace(t *MatchTrace, cfg EngineConfig) ReplayResult { return mtrace.Replay(t, cfg) }

// Telemetry: the observability layer (internal/telemetry). A
// MetricsCollector attached via EngineConfig.Telemetry gathers
// per-operation cycle histograms, cache-residency and queue-depth time
// series against simulated cycles, and an eviction-attribution matrix;
// the writers export Prometheus text, JSONL, or CSV.
type (
	// MetricsCollector bundles a registry and a time-series sampler.
	MetricsCollector = telemetry.Collector
	// MetricsRegistry holds named counters, gauges, and histograms.
	MetricsRegistry = telemetry.Registry
	// MetricLabels is a set of metric dimensions.
	MetricLabels = telemetry.Labels
	// MetricSeries is one sampled time series.
	MetricSeries = telemetry.TimeSeries
	// EngineObserver sees every matching operation.
	EngineObserver = engine.Observer
	// EngineTracer is a bounded ring-buffer flight recorder of
	// matching operations (attach with Engine.SetObserver).
	EngineTracer = engine.Tracer
	// EngineTraceEvent is one recorded operation.
	EngineTraceEvent = engine.TraceEvent
)

// NewMetricsCollector builds a collector with the given base labels.
func NewMetricsCollector(base MetricLabels) *MetricsCollector {
	return telemetry.NewCollector(base)
}

// NewEngineTracer builds a flight recorder retaining at most capacity
// events (0 selects the default).
func NewEngineTracer(capacity int) *EngineTracer { return engine.NewTracer(capacity) }

// CombineObservers fans the observer path out to several observers.
func CombineObservers(obs ...EngineObserver) EngineObserver {
	return engine.CombineObservers(obs...)
}

// WriteMetricsFile exports a collector's registry to path: .jsonl and
// .csv select those formats, anything else Prometheus text exposition.
func WriteMetricsFile(path string, c *MetricsCollector) error {
	return telemetry.WriteMetricsFile(path, c)
}

// WriteSeriesFile exports a collector's sampled time series to path
// (.jsonl, else CSV).
func WriteSeriesFile(path string, c *MetricsCollector) error {
	return telemetry.WriteSeriesFile(path, c)
}

// Experiment registry (every paper table and figure).
type (
	// Experiment describes one registered paper artifact.
	Experiment = experiments.Spec
	// ExperimentOptions tunes experiment cost.
	ExperimentOptions = experiments.Options
)

// Experiments returns the registered experiments in id order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks one up ("table1", "fig4b", "fig10", ...).
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
