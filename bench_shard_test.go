// BenchmarkDaemonShards measures what context sharding buys the serving
// path: the same batched four-connection workload against a one-shard
// (single shared engine) and a four-shard (engine per context) daemon.
//
// The workload is built so the win is data locality, not parallelism —
// it holds on a single CPU. Each connection owns one communicator
// context and first installs a standing backlog of 256 posted receives
// that nothing ever matches (long-lived outstanding receives, the
// steady state of a real MPI rank). On the shared engine those four
// backlogs interleave into one 1024-entry match queue every arrive must
// scan past; with a shard per context, each arrive scans only its own
// context's 256. The benchmark then drives matched pairs in batch-64
// frames; one iteration is one matched pair, so ns/op is comparable
// with the other daemon rows and matches_per_sec falls out of the
// benchjson conversion.
//
// Committed as rows in BENCH_daemon.json via `make bench-json`; the
// acceptance floor is shards-4 sustaining at least 2x the shards-1
// pairs/sec.
package spco_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"spco/internal/cache"
	"spco/internal/daemon"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/mpi"
	"spco/internal/telemetry"
)

const (
	shardBenchConns   = 4
	shardBenchBacklog = 256
)

// shardBenchDaemon starts a daemon with nShards lanes and one client
// per context, each with its standing backlog installed.
func shardBenchDaemon(b *testing.B, nShards int) ([]*daemon.Client, func()) {
	b.Helper()
	srv, err := daemon.New(daemon.Config{
		Engine: engine.Config{
			Profile:        cache.SandyBridge,
			Kind:           matchlist.KindLLA,
			EntriesPerNode: 8,
			Pool:           true,
		},
		Shards:    nShards,
		Collector: telemetry.NewCollector(telemetry.Labels{"exp": "shard-bench"}),
		PerfOut:   io.Discard,
	})
	if err != nil {
		b.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Run(nil) }()

	clients := make([]*daemon.Client, shardBenchConns)
	stop := func() {
		for _, cl := range clients {
			if cl != nil {
				cl.Close()
			}
		}
		srv.Stop()
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}
	for c := range clients {
		cl, err := daemon.Dial(srv.Addr())
		if err != nil {
			stop()
			b.Fatal(err)
		}
		clients[c] = cl
		ctx := uint16(c + 1)
		// The standing backlog: receives with tags the paired traffic
		// never uses, so they stay posted for the whole run.
		backlog := make([]mpi.WireOp, shardBenchBacklog)
		for i := range backlog {
			backlog[i] = mpi.WireOp{Kind: mpi.WirePost, Rank: int32(i % 8),
				Tag: int32(1_000_000 + i), Ctx: ctx, Handle: uint64(i) + 1}
		}
		if _, err := cl.DoBatch(backlog, nil); err != nil {
			stop()
			b.Fatal(err)
		}
	}
	return clients, stop
}

func benchDaemonShards(b *testing.B, nShards, k int) {
	clients, stop := shardBenchDaemon(b, nShards)
	defer stop()

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for c, cl := range clients {
		pairs := b.N / shardBenchConns
		if c < b.N%shardBenchConns {
			pairs++
		}
		wg.Add(1)
		go func(cl *daemon.Client, ctx uint16, pairs int) {
			defer wg.Done()
			posts := make([]mpi.WireOp, k)
			arrives := make([]mpi.WireOp, k)
			for i := 0; i < k; i++ {
				posts[i] = mpi.WireOp{Kind: mpi.WirePost, Rank: int32(i % 8),
					Tag: int32(i % 4), Ctx: ctx, Handle: uint64(i) + 1}
				arrives[i] = mpi.WireOp{Kind: mpi.WireArrive, Rank: int32(i % 8),
					Tag: int32(i % 4), Ctx: ctx, Handle: uint64(i) + 100}
			}
			var reps []mpi.WireReply
			for done := 0; done < pairs; done += k {
				n := min(k, pairs-done)
				var err error
				if reps, err = cl.DoBatch(posts[:n], reps); err != nil {
					b.Error(err)
					return
				}
				if reps, err = cl.DoBatch(arrives[:n], reps); err != nil {
					b.Error(err)
					return
				}
				for j := range reps {
					if reps[j].Outcome != mpi.WireOutMatched {
						b.Error("batch pair did not match")
						return
					}
				}
			}
		}(cl, uint16(c+1), pairs)
	}
	wg.Wait()
}

func BenchmarkDaemonShards(b *testing.B) {
	for _, nShards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards-%d/batch-64", nShards), func(b *testing.B) {
			benchDaemonShards(b, nShards, 64)
		})
	}
}
