module spco

go 1.22
