// BenchmarkHotPath measures the zero-allocation batched hot path at two
// layers: the engine's Arrive/PostRecv cores (scalar vs. the batch APIs)
// and the full wire path against an in-process daemon (scalar
// request-response vs. WireVersion-3 batch frames). One iteration is
// always one matched pair, so ns/op is directly comparable across
// variants and matches_per_sec falls out of the benchjson conversion.
// The wire rows are where batching pays: a batch of K pairs costs two
// flushes and two round trips instead of 2K.
//
// Committed as BENCH_hotpath.json via `make bench-json-hotpath`; the
// alloc columns are the regression guard `make hotpath-gate` enforces.
package spco_test

import (
	"fmt"
	"io"
	"testing"

	"spco/internal/cache"
	"spco/internal/daemon"
	"spco/internal/engine"
	"spco/internal/match"
	"spco/internal/matchlist"
	"spco/internal/mpi"
	"spco/internal/perf"
	"spco/internal/telemetry"
)

// hotPathEngine is the serving configuration: pooled LLA-8.
func hotPathEngine() *engine.Engine {
	return engine.MustNew(engine.Config{
		Profile:        cache.SandyBridge,
		Kind:           matchlist.KindLLA,
		EntriesPerNode: 8,
		Pool:           true,
	})
}

func benchEngineScalar(b *testing.B) {
	en := hotPathEngine()
	env := match.Envelope{Rank: 1, Tag: 3, Ctx: 1}
	for i := 0; i < 512; i++ { // warm the node pools
		en.PostRecv(1, 3, 1, 7)
		en.Arrive(env, 9)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en.PostRecv(1, 3, 1, 7)
		if _, ok, _ := en.Arrive(env, 9); !ok {
			b.Fatal("pair did not match")
		}
	}
}

func benchEngineBatch(b *testing.B, k int) {
	en := hotPathEngine()
	posts := make([]engine.PostReq, k)
	envs := make([]match.Envelope, k)
	msgs := make([]uint64, k)
	pres := make([]engine.PostResult, 0, k)
	ares := make([]engine.ArriveResult, 0, k)
	for i := 0; i < k; i++ {
		posts[i] = engine.PostReq{Rank: i % 8, Tag: i % 4, Ctx: 1, Req: uint64(i) + 1}
		envs[i] = match.Envelope{Rank: int32(i % 8), Tag: int32(i % 4), Ctx: 1}
		msgs[i] = uint64(i) + 100
	}
	batch := func() {
		pres = en.PostRecvBatch(posts, pres)
		ares = en.ArriveBatch(envs, msgs, ares)
	}
	for i := 0; i < 8; i++ { // warm the node pools
		batch()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += k { // one batch completes k pairs
		batch()
	}
	b.StopTimer()
	for _, r := range ares {
		if r.Outcome != engine.ArriveMatched {
			b.Fatal("batch pair did not match")
		}
	}
}

// hotPathDaemon starts an in-process daemon on loopback and returns a
// connected client plus a stopper.
func hotPathDaemon(b *testing.B) (*daemon.Client, func()) {
	b.Helper()
	srv, err := daemon.New(daemon.Config{
		Engine: engine.Config{
			Profile:        cache.SandyBridge,
			Kind:           matchlist.KindLLA,
			EntriesPerNode: 8,
			Pool:           true,
		},
		Collector: telemetry.NewCollector(telemetry.Labels{"exp": "hotpath-bench"}),
		PMU:       perf.New(perf.Options{Label: "hotpath-bench", SampleInterval: perf.DefaultSampleInterval}),
		PerfOut:   io.Discard,
	})
	if err != nil {
		b.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Run(nil) }()
	cl, err := daemon.Dial(srv.Addr())
	if err != nil {
		srv.Stop()
		b.Fatal(err)
	}
	return cl, func() {
		cl.Close()
		srv.Stop()
		if err := <-errc; err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireScalar(b *testing.B) {
	cl, stop := hotPathDaemon(b)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Post(1, 3, 1, 7); err != nil {
			b.Fatal(err)
		}
		rep, err := cl.Arrive(1, 3, 1, 9)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Outcome != mpi.WireOutMatched {
			b.Fatal("pair did not match")
		}
	}
}

func benchWireBatch(b *testing.B, k int) {
	cl, stop := hotPathDaemon(b)
	defer stop()
	posts := make([]mpi.WireOp, k)
	arrives := make([]mpi.WireOp, k)
	for i := 0; i < k; i++ {
		posts[i] = mpi.WireOp{Kind: mpi.WirePost, Rank: int32(i % 8), Tag: int32(i % 4),
			Ctx: 1, Handle: uint64(i) + 1}
		arrives[i] = mpi.WireOp{Kind: mpi.WireArrive, Rank: int32(i % 8), Tag: int32(i % 4),
			Ctx: 1, Handle: uint64(i) + 100}
	}
	var reps []mpi.WireReply
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += k { // two frames complete k pairs
		var err error
		if reps, err = cl.DoBatch(posts, reps); err != nil {
			b.Fatal(err)
		}
		if reps, err = cl.DoBatch(arrives, reps); err != nil {
			b.Fatal(err)
		}
		for j := range reps {
			if reps[j].Outcome != mpi.WireOutMatched {
				b.Fatal("batch pair did not match")
			}
		}
	}
}

func BenchmarkHotPath(b *testing.B) {
	sizes := []int{8, 64, 512}
	b.Run("engine/scalar", benchEngineScalar)
	for _, k := range sizes {
		b.Run(fmt.Sprintf("engine/batch-%d", k), func(b *testing.B) { benchEngineBatch(b, k) })
	}
	b.Run("wire/scalar", benchWireScalar)
	for _, k := range sizes {
		b.Run(fmt.Sprintf("wire/batch-%d", k), func(b *testing.B) { benchWireBatch(b, k) })
	}
}
