// Command spco-chaos is the chaos/soak harness for the fault-injection
// layer (internal/fault): it pushes a seeded stream of messages from
// several source ranks across an unreliable wire into the matching
// engine, recovers every fault with the retransmission protocol, and
// audits the run against the fault-layer invariants —
//
//   - exactly-once delivery (no loss, no double delivery),
//   - per-flow FIFO despite wire reordering,
//   - cycle conservation (engine totals equal summed per-op costs;
//     transport-side cycles stay outside them),
//   - full drain (no packet pending, no queue entry left behind).
//
// A fixed -fault-seed reproduces a run bit-identically, so a failure
// printed by this command is a unit test waiting to be written.
//
// Examples:
//
//	spco-chaos -fault-drop 0.01 -fault-dup 0.005 -fault-reorder 0.02
//	spco-chaos -list lla -messages 200000 -fault-burst 0.001
//	spco-chaos -umq-cap 64 -flow credit -fault-drop 0.02
//	spco-chaos -list all -soak
//
// With -daemon the harness instead drives a LIVE spco-daemon over TCP:
// seeded load across -conns concurrent connections, audited for
// exactly-once pairing, queue drain, and (with -daemon-admin) counter
// conservation against /status deltas:
//
//	spco-chaos -daemon 127.0.0.1:7777 -daemon-admin 127.0.0.1:7778 -messages 50000 -conns 8
//
// Exit status is 0 only if every configuration passed every invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"

	"spco"
	"spco/internal/ctrace"
	"spco/internal/fault"
	"spco/internal/netmodel"
	"spco/internal/perf"
	"spco/internal/telemetry"
	"spco/internal/workload"
)

var allKinds = []string{"baseline", "lla", "hashbins", "rankarray", "fourd", "hwoffload", "percomm"}

func main() {
	var (
		arch     = flag.String("arch", "sandybridge", "architecture profile (sandybridge, broadwell, nehalem, knl)")
		list     = flag.String("list", "all", "match structure to soak, or 'all' for every kind")
		k        = flag.Int("k", 2, "LLA entries per node")
		fabric   = flag.String("fabric", "ib-qdr", "fabric (ib-qdr, omnipath, mlx-qdr)")
		messages = flag.Int("messages", 20000, "messages per configuration")
		senders  = flag.Int("senders", 8, "source ranks (flows)")
		prepost  = flag.Float64("prepost", 0.5, "fraction of receives posted before the send")
		phases   = flag.Int("phase-every", 1024, "compute phase every N messages (0: never)")
		phaseNS  = flag.Float64("phase-ns", 1e5, "compute-phase duration in ns")
		hot      = flag.Bool("hot", false, "attach the cache heater (adds the heater counter track to -trace-out)")
		soak     = flag.Bool("soak", false, "soak preset: 100k messages, drop 1%, dup 0.5%, reorder 2%")
		verbose  = flag.Bool("v", false, "print per-configuration transport counters")

		daemonAddr  = flag.String("daemon", "", "audit a live daemon at this match-traffic address instead of simulating")
		daemonAdmin = flag.String("daemon-admin", "", "the daemon's admin address (enables the counter-conservation audit)")
		conns       = flag.Int("conns", 4, "concurrent connections in -daemon mode")

		crash      = flag.Bool("crash", false, "kill-and-restart storm: run a real spco-daemon subprocess with -journal, SIGKILL it mid-load, restart with -recover, audit exactly-once")
		daemonBin  = flag.String("daemon-bin", "", "spco-daemon binary for -crash (default: next to this binary, then $PATH)")
		kills      = flag.Int("kills", 3, "SIGKILL/restart cycles in -crash mode")
		crashDir   = flag.String("crash-dir", "", "scratch directory for -crash journals (default: a temp dir)")
		crashPairs = flag.Int("crash-pairs", 400, "arrive/post pairs per kill cycle in -crash mode")
		shards     = flag.Int("shards", 2, "daemon shard count in -crash mode")

		metricsOut = flag.String("metrics-out", "", "write the metrics registry here (.prom/.txt, .jsonl, .csv)")
	)
	var fcli fault.CLI
	fcli.Register(flag.CommandLine)
	var pcli perf.CLI
	pcli.Register(flag.CommandLine)
	var tcli ctrace.CLI
	tcli.Register(flag.CommandLine)
	flag.Parse()

	if *soak {
		if *messages == 20000 {
			*messages = 100000
		}
		if fcli.Drop == 0 && fcli.Dup == 0 && fcli.Reorder == 0 && fcli.Corrupt == 0 && fcli.BurstProb == 0 {
			fcli.Drop, fcli.Dup, fcli.Reorder = 0.01, 0.005, 0.02
		}
	}

	if *crash {
		if err := runCrashMode(*daemonBin, *crashDir, *kills, *crashPairs, *shards, fcli.Seed); err != nil {
			fatal(err)
		}
		return
	}

	if *daemonAddr != "" {
		if err := runDaemonMode(*daemonAddr, *daemonAdmin, *conns, *messages, *senders,
			*prepost, *phases, *phaseNS, fcli.Seed); err != nil {
			fatal(err)
		}
		return
	}

	prof, ok := spco.ProfileByName(*arch)
	if !ok {
		fatal(fmt.Errorf("unknown architecture %q", *arch))
	}
	fab, ok := netmodel.Fabrics[*fabric]
	if !ok {
		fatal(fmt.Errorf("unknown fabric %q", *fabric))
	}
	kinds := allKinds
	if *list != "all" {
		kinds = []string{*list}
	}

	var col *telemetry.Collector
	if *metricsOut != "" {
		col = telemetry.NewCollector(telemetry.Labels{"cmd": "chaos"})
	}
	// One recorder spans every configuration: with -list all the export
	// concatenates the kinds' timelines (trace ids keep incrementing).
	trace := tcli.New()

	fmt.Printf("# arch=%s fabric=%s messages=%d senders=%d prepost=%.2f seed=%d drop=%g dup=%g reorder=%g corrupt=%g burst=%g umq-cap=%d flow=%s\n",
		prof.Name, fab.Name, *messages, *senders, *prepost, fcli.Seed,
		fcli.Drop, fcli.Dup, fcli.Reorder, fcli.Corrupt, fcli.BurstProb, fcli.UMQCap, fcli.Flow)
	fmt.Printf("%-10s %9s %9s %7s %7s %7s %7s %12s  %s\n",
		"list", "transmit", "deliver", "retx", "dups", "nacks", "stalls", "sim-ms", "verdict")

	failed := false
	for _, name := range kinds {
		kind, err := spco.ParseKind(name)
		if err != nil {
			fatal(err)
		}
		pmu := pcli.New("chaos-" + name)
		ecfg := spco.EngineConfig{
			Profile:        prof,
			Kind:           kind,
			EntriesPerNode: *k,
			CommSize:       64,
			Bins:           256,
			HotCache:       *hot,
			Telemetry:      col,
			Perf:           pmu,
		}
		if err := fcli.ApplyEngine(&ecfg); err != nil {
			fatal(err)
		}
		res, err := workload.RunChaos(workload.ChaosConfig{
			Engine:      ecfg,
			Fabric:      fab,
			Wire:        fcli.Wire(),
			Seed:        fcli.Seed,
			Messages:    *messages,
			Senders:     *senders,
			PrePostFrac: *prepost,
			PhaseEvery:  *phases,
			PhaseNS:     *phaseNS,
			RTONS:       fcli.RTONS,
			MaxRetries:  fcli.Retries,
			PMU:         pmu,
			Trace:       trace,
		})
		if err != nil {
			fatal(err)
		}
		verdict := "PASS"
		if !res.Passed() {
			verdict = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
			failed = true
		}
		ts := res.Transport
		fmt.Printf("%-10s %9d %9d %7d %7d %7d %7d %12.3f  %s\n",
			name, ts.Transmits, ts.Delivered, ts.Retransmits, ts.DupSuppressed,
			ts.BusyNacks, ts.CreditStalls, res.SimulatedNS/1e6, verdict)
		for _, v := range res.Violations {
			fmt.Printf("  !! %s\n", v)
		}
		if *verbose {
			fmt.Printf("  wire: drops=%d dups=%d reorders=%d corrupts=%d bursts=%d | ooo: buffered=%d overflow=%d | acks: sent=%d lost=%d | rto=%d grants=%d rendezvous=%d aux-cycles=%d\n",
				ts.WireDrops, ts.WireDups, ts.WireReorders, ts.WireCorrupts, ts.WireBursts,
				ts.OOOBuffered, ts.OOOOverflow, ts.AcksSent, ts.AcksLost,
				ts.RTOExpired, ts.CreditsGrants, ts.RendezvousTrips, ts.AuxCycles)
		}
		if err := pcli.Finish(os.Stdout, pmu); err != nil {
			fatal(err)
		}
	}

	if col != nil {
		if err := telemetry.WriteMetricsFile(*metricsOut, col); err != nil {
			fatal(err)
		}
	}
	if err := tcli.Finish(os.Stdout, trace); err != nil {
		fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

// runCrashMode runs the kill-and-restart storm against a real
// spco-daemon subprocess and prints the recovery audit verdict.
func runCrashMode(bin, dir string, kills, pairs, shards int, seed uint64) error {
	if bin == "" {
		self, err := os.Executable()
		if err == nil {
			sibling := filepath.Join(filepath.Dir(self), "spco-daemon")
			if _, serr := os.Stat(sibling); serr == nil {
				bin = sibling
			}
		}
		if bin == "" {
			found, err := exec.LookPath("spco-daemon")
			if err != nil {
				return fmt.Errorf("-crash needs a daemon binary: none next to spco-chaos and none on $PATH (build one or pass -daemon-bin)")
			}
			bin = found
		}
	}
	fmt.Printf("# crash daemon-bin=%s kills=%d pairs=%d shards=%d seed=%d\n", bin, kills, pairs, shards, seed)
	res, err := workload.RunCrashChaos(workload.CrashChaosConfig{
		DaemonBin: bin,
		Dir:       dir,
		Kills:     kills,
		Pairs:     pairs,
		Shards:    shards,
		Seed:      seed,
		Logf: func(format string, a ...any) {
			fmt.Printf(format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	led := res.Ledger
	verdict := "PASS"
	if !res.Passed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
	}
	fmt.Printf("%-10s %9d pairs %7d kills %7d resumes %7d resent %9d replayed %12.3f  %s\n",
		"crash", led.Pairs, led.Kills, led.Reconnects, led.Resent,
		res.Status.Recovery.ReplayedOps, res.Elapsed.Seconds()*1e3, verdict)
	for _, v := range res.Violations {
		fmt.Printf("  !! %s\n", v)
	}
	if !res.Passed() {
		os.Exit(1)
	}
	return nil
}

// runDaemonMode drives a live daemon and prints the audit verdict.
func runDaemonMode(addr, admin string, conns, messages, senders int,
	prepost float64, phaseEvery int, phaseNS float64, seed uint64) error {
	fmt.Printf("# daemon=%s admin=%s conns=%d messages=%d senders=%d prepost=%.2f seed=%d\n",
		addr, admin, conns, messages, senders, prepost, seed)
	res, err := workload.RunDaemonChaos(workload.DaemonChaosConfig{
		Addr:      addr,
		AdminAddr: admin,
		Load: workload.DaemonLoadConfig{
			Conns:       conns,
			Messages:    messages,
			Senders:     senders,
			PrePostFrac: prepost,
			Seed:        seed,
			PhaseEvery:  phaseEvery,
			PhaseNS:     phaseNS,
		},
	})
	if err != nil {
		return err
	}
	ld := res.Load
	verdict := "PASS"
	if !res.Passed() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
	}
	fmt.Printf("%-10s %9d %9d %7d %7d %7d %7d %12.3f  %s\n",
		"daemon", ld.Arrives+ld.Posts, ld.Matched(), ld.Retries, 0,
		ld.Nacks, ld.Busy, ld.Elapsed.Seconds()*1e3, verdict)
	for _, v := range res.Violations {
		fmt.Printf("  !! %s\n", v)
	}
	if !res.Passed() {
		os.Exit(1)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spco-chaos:", err)
	os.Exit(1)
}
