package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: spco
cpu: Intel(R) Xeon(R)
BenchmarkNativeSearch/baseline-16         	    9051	    131456 ns/op	       0 B/op	       0 allocs/op
BenchmarkNativeSearch/lla-8-16            	  106935	     11215 ns/op	       1 B/op	       0 allocs/op
BenchmarkStructures/lla-2-16              	    4148	    287200 ns/op	   12016 cycles/match	     363 B/op	       2 allocs/op
PASS
ok  	spco	12.776s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.GOOS != "linux" || doc.GOARCH != "amd64" || doc.Package != "spco" {
		t.Errorf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[1]
	// The uniform -16 GOMAXPROCS suffix strips; the lla-8 parameter
	// suffix survives.
	if b.Name != "NativeSearch/lla-8" || b.Procs != 16 {
		t.Errorf("name split: %+v", b)
	}
	if doc.Benchmarks[0].Name != "NativeSearch/baseline" || doc.Benchmarks[0].Procs != 16 {
		t.Errorf("name split: %+v", doc.Benchmarks[0])
	}
	if b.Iterations != 106935 || b.NsPerOp != 11215 {
		t.Errorf("values: %+v", b)
	}
	want := 1e9 / 11215.0
	if diff := b.MatchesPerSec - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("matches_per_sec = %g, want %g", b.MatchesPerSec, want)
	}
	s := doc.Benchmarks[2]
	if s.Metrics["cycles/match"] != 12016 {
		t.Errorf("custom metric lost: %+v", s.Metrics)
	}
	if s.AllocsPerOp != 2 || s.BytesPerOp != 363 {
		t.Errorf("benchmem fields: %+v", s)
	}
}

// On a GOMAXPROCS=1 runner go test appends no suffix; parameter
// suffixes must then survive untouched.
func TestParseNoProcsSuffix(t *testing.T) {
	doc, err := Parse(strings.NewReader(
		"BenchmarkNativeSearch/lla-8   10 100 ns/op\nBenchmarkNativeSearch/fourd   10 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Benchmarks[0].Name != "NativeSearch/lla-8" || doc.Benchmarks[0].Procs != 0 {
		t.Errorf("mangled name: %+v", doc.Benchmarks[0])
	}
	if doc.Benchmarks[1].Name != "NativeSearch/fourd" {
		t.Errorf("mangled name: %+v", doc.Benchmarks[1])
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	doc, err := Parse(strings.NewReader("BenchmarkBroken notanumber ns/op\nhello\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("accepted garbage: %+v", doc.Benchmarks)
	}
}
