package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(benchmarks ...Benchmark) Document {
	return Document{Benchmarks: benchmarks}
}

func bench(name string, ns float64) Benchmark {
	return Benchmark{Name: name, Iterations: 100, NsPerOp: ns, MatchesPerSec: 1e9 / ns}
}

func benchAlloc(name string, ns, bytes, allocs float64) Benchmark {
	b := bench(name, ns)
	b.BytesPerOp = bytes
	b.AllocsPerOp = allocs
	return b
}

func TestDiffPairsAndDeltas(t *testing.T) {
	oldDoc := doc(bench("A", 100), bench("B", 200), bench("Gone", 50))
	newDoc := doc(bench("A", 125), bench("B", 180), bench("New", 10))
	rep := Diff(oldDoc, newDoc)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows: %+v", rep.Rows)
	}
	if rep.Rows[0].Name != "A" || math.Abs(rep.Rows[0].DeltaPct-25) > 1e-9 {
		t.Errorf("A: %+v", rep.Rows[0])
	}
	if rep.Rows[1].Name != "B" || math.Abs(rep.Rows[1].DeltaPct+10) > 1e-9 {
		t.Errorf("B: %+v", rep.Rows[1])
	}
	if len(rep.Added) != 1 || rep.Added[0] != "New" {
		t.Errorf("added: %v", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "Gone" {
		t.Errorf("removed: %v", rep.Removed)
	}
	if regs := rep.Regressions(10); len(regs) != 1 || regs[0].Name != "A" {
		t.Errorf("regressions at 10%%: %+v", regs)
	}
	if regs := rep.Regressions(30); len(regs) != 0 {
		t.Errorf("regressions at 30%%: %+v", regs)
	}
}

func TestDiffAllocRegressions(t *testing.T) {
	oldDoc := doc(
		benchAlloc("ZeroToOne", 100, 0, 0),
		benchAlloc("SmallGrowth", 100, 64, 10),
		benchAlloc("BigGrowth", 100, 64, 10),
		benchAlloc("Shrunk", 100, 64, 10),
	)
	newDoc := doc(
		benchAlloc("ZeroToOne", 100, 16, 1),    // 0 -> 1: always a regression
		benchAlloc("SmallGrowth", 100, 64, 11), // +10%: inside threshold
		benchAlloc("BigGrowth", 100, 64, 20),   // +100%: past threshold
		benchAlloc("Shrunk", 100, 32, 5),       // improvement
	)
	rep := Diff(oldDoc, newDoc)
	regs := rep.Regressions(25)
	names := map[string]bool{}
	for _, r := range regs {
		names[r.Name] = true
	}
	if !names["ZeroToOne"] {
		t.Error("0 -> 1 allocs/op not flagged")
	}
	if !names["BigGrowth"] {
		t.Error("+100% allocs/op not flagged at 25% threshold")
	}
	if names["SmallGrowth"] {
		t.Error("+10% allocs/op flagged at 25% threshold")
	}
	if names["Shrunk"] {
		t.Error("alloc improvement flagged as regression")
	}
	// Carried through to the rows for the table.
	for _, r := range rep.Rows {
		if r.Name == "ZeroToOne" && (r.OldAllocs != 0 || r.NewAllocs != 1 || r.NewBytes != 16) {
			t.Errorf("alloc columns not populated: %+v", r)
		}
	}
}

func TestRunDiffFlagsAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	// Same speed, but the hot path started allocating.
	writeDoc(t, oldPath, doc(benchAlloc("HotPath/engine/scalar", 100, 0, 0)))
	writeDoc(t, newPath, doc(benchAlloc("HotPath/engine/scalar", 100, 48, 3)))

	var buf bytes.Buffer
	regressed, err := runDiff(&buf, oldPath, newPath, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Errorf("0 -> 3 allocs/op at equal speed not flagged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ALLOC REGRESSION") {
		t.Errorf("table lacks the alloc verdict:\n%s", buf.String())
	}
}

func writeDoc(t *testing.T, path string, d Document) {
	t.Helper()
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeDoc(t, oldPath, doc(bench("Match/lla", 100), bench("Match/fourd", 300)))
	writeDoc(t, newPath, doc(bench("Match/lla", 150), bench("Match/fourd", 290)))

	var buf bytes.Buffer
	regressed, err := runDiff(&buf, oldPath, newPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Error("50% slowdown not flagged at 10% threshold")
	}
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "Match/lla") {
		t.Errorf("table lacks the regression row:\n%s", out)
	}

	buf.Reset()
	regressed, err = runDiff(&buf, oldPath, newPath, 60)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Errorf("flagged at 60%% threshold:\n%s", buf.String())
	}
}

func TestRunDiffDisjoint(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeDoc(t, oldPath, doc(bench("Only/old", 100)))
	writeDoc(t, newPath, doc(bench("Only/new", 100)))
	if _, err := runDiff(&bytes.Buffer{}, oldPath, newPath, 10); err == nil {
		t.Error("disjoint documents must error, not report a clean diff")
	}
}
