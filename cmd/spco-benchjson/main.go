// Command spco-benchjson converts `go test -bench` text output into a
// machine-readable JSON document (`make bench-json` writes it to
// BENCH_daemon.json). Each benchmark iteration in the core match
// benchmarks performs one match, so the domain throughput metric is
// matches_per_sec = 1e9 / ns_per_op.
//
// Usage:
//
//	go test -run '^$' -bench 'NativeSearch|Structures' -benchmem . | spco-benchjson -out BENCH_daemon.json
//	spco-benchjson -in bench.out -out BENCH_daemon.json
//
// With -diff it instead compares two such documents and prints a
// per-benchmark ns/op delta table, exiting nonzero when any shared
// benchmark regressed past -threshold percent:
//
//	spco-benchjson -diff BENCH_daemon.json new.json -threshold 10
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the benchmark path with the -P GOMAXPROCS suffix split
	// off (BenchmarkNativeSearch/lla-8-16 -> NativeSearch/lla-8).
	Name  string `json:"name"`
	Procs int    `json:"procs,omitempty"`

	Iterations    int64   `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	MatchesPerSec float64 `json:"matches_per_sec"`
	BytesPerOp    float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op,omitempty"`

	// Metrics holds any custom b.ReportMetric units (cycles/match ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the BENCH_daemon.json schema.
type Document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		in        = flag.String("in", "", "bench output to parse (default: stdin)")
		out       = flag.String("out", "", "JSON destination (default: stdout)")
		diffOld   = flag.String("diff", "", "baseline JSON: compare against the new JSON given as the positional argument")
		threshold = flag.Float64("threshold", 10, "diff: fail when a benchmark slows down more than this percent")
	)
	flag.Parse()

	if *diffOld != "" {
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-diff %s needs exactly one positional argument (the new JSON)", *diffOld))
		}
		regressed, err := runDiff(os.Stdout, *diffOld, flag.Arg(0), *threshold)
		if err != nil {
			fatal(err)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	doc, err := Parse(r)
	if err != nil {
		fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// Parse reads `go test -bench` output. Benchmark lines look like
//
//	BenchmarkName/sub-8   123456   987.6 ns/op   12 B/op   3 allocs/op   45 cycles/match
//
// with header lines (goos:, goarch:, pkg:, cpu:) preceding each
// package's results.
func Parse(r io.Reader) (Document, error) {
	var doc Document
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			if doc.Package == "" {
				doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	stripProcsSuffix(&doc)
	return doc, sc.Err()
}

// stripProcsSuffix removes the -P GOMAXPROCS suffix go test appends to
// every benchmark name (when GOMAXPROCS > 1). A per-line strip would
// eat parameter suffixes like lla-8, so the suffix is only recognised
// when one numeric suffix spans every result — which the GOMAXPROCS
// suffix, unlike parameters, always does.
func stripProcsSuffix(doc *Document) {
	procs := 0
	for _, b := range doc.Benchmarks {
		i := strings.LastIndex(b.Name, "-")
		if i < 0 {
			return
		}
		p, err := strconv.Atoi(b.Name[i+1:])
		if err != nil || p <= 1 {
			return
		}
		if procs == 0 {
			procs = p
		} else if p != procs {
			return
		}
	}
	for i := range doc.Benchmarks {
		b := &doc.Benchmarks[i]
		b.Name = b.Name[:strings.LastIndex(b.Name, "-")]
		b.Procs = procs
	}
}

// parseLine parses one benchmark result line.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(fields[0], "Benchmark")}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iter

	// The rest is (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			if v > 0 {
				b.MatchesPerSec = 1e9 / v
			}
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			// go test's own throughput; keep it with the custom metrics.
			fallthrough
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spco-benchjson:", err)
	os.Exit(1)
}
