package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Benchmark-to-benchmark comparison (`spco-benchjson -diff old.json
// new.json`): pair the two documents' benchmarks by name, print a
// per-benchmark delta table on ns/op, and exit nonzero when any shared
// benchmark regressed past -threshold percent. CI runs it advisorily
// against the committed BENCH_daemon.json so a perf cliff shows up in
// the log the moment it lands.

// DiffRow is one shared benchmark's comparison.
type DiffRow struct {
	Name     string
	OldNs    float64
	NewNs    float64
	DeltaPct float64 // positive: slower (regression)

	OldBytes  float64
	NewBytes  float64
	OldAllocs float64
	NewAllocs float64
}

// AllocRegressed reports whether allocs/op got worse: any growth from
// zero regresses (that is the zero-alloc gate — 0 -> 1 is the whole
// point), otherwise growth beyond thresholdPct.
func (r DiffRow) AllocRegressed(thresholdPct float64) bool {
	if r.NewAllocs <= r.OldAllocs {
		return false
	}
	if r.OldAllocs == 0 {
		return true
	}
	return (r.NewAllocs-r.OldAllocs)/r.OldAllocs*100 > thresholdPct
}

// DiffReport pairs two benchmark documents.
type DiffReport struct {
	Rows    []DiffRow
	Added   []string // only in the new document
	Removed []string // only in the old document
}

// Regressions returns the rows slower by more than thresholdPct on
// ns/op, plus the rows whose allocs/op regressed (see AllocRegressed).
func (d DiffReport) Regressions(thresholdPct float64) []DiffRow {
	var out []DiffRow
	for _, r := range d.Rows {
		if r.DeltaPct > thresholdPct || r.AllocRegressed(thresholdPct) {
			out = append(out, r)
		}
	}
	return out
}

// Diff pairs benchmarks by name. Rows keep the old document's order;
// added/removed names are sorted.
func Diff(oldDoc, newDoc Document) DiffReport {
	var rep DiffReport
	newBy := make(map[string]Benchmark, len(newDoc.Benchmarks))
	for _, b := range newDoc.Benchmarks {
		newBy[b.Name] = b
	}
	oldSeen := make(map[string]bool, len(oldDoc.Benchmarks))
	for _, ob := range oldDoc.Benchmarks {
		oldSeen[ob.Name] = true
		nb, ok := newBy[ob.Name]
		if !ok {
			rep.Removed = append(rep.Removed, ob.Name)
			continue
		}
		row := DiffRow{
			Name: ob.Name, OldNs: ob.NsPerOp, NewNs: nb.NsPerOp,
			OldBytes: ob.BytesPerOp, NewBytes: nb.BytesPerOp,
			OldAllocs: ob.AllocsPerOp, NewAllocs: nb.AllocsPerOp,
		}
		if ob.NsPerOp > 0 {
			row.DeltaPct = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, nb := range newDoc.Benchmarks {
		if !oldSeen[nb.Name] {
			rep.Added = append(rep.Added, nb.Name)
		}
	}
	sort.Strings(rep.Added)
	sort.Strings(rep.Removed)
	return rep
}

// deltaCol renders an old -> new pair, collapsing the common unchanged
// case to the bare value.
func deltaCol(before, after float64) string {
	if before == after {
		return fmt.Sprintf("%.0f", before)
	}
	return fmt.Sprintf("%.0f->%.0f", before, after)
}

// loadDocument reads a benchmark JSON document written by this command.
func loadDocument(path string) (Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return Document{}, err
	}
	defer f.Close()
	var doc Document
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return Document{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return Document{}, fmt.Errorf("%s: no benchmarks", path)
	}
	return doc, nil
}

// runDiff loads, compares, prints, and reports whether any regression
// exceeded thresholdPct.
func runDiff(w io.Writer, oldPath, newPath string, thresholdPct float64) (bool, error) {
	oldDoc, err := loadDocument(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := loadDocument(newPath)
	if err != nil {
		return false, err
	}
	rep := Diff(oldDoc, newDoc)
	if len(rep.Rows) == 0 {
		return false, fmt.Errorf("%s and %s share no benchmark names", oldPath, newPath)
	}

	fmt.Fprintf(w, "# %s -> %s (threshold %.1f%%)\n", oldPath, newPath, thresholdPct)
	fmt.Fprintf(w, "%-40s %14s %14s %9s %16s %16s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "B/op", "allocs/op")
	for _, r := range rep.Rows {
		verdict := ""
		if r.DeltaPct > thresholdPct {
			verdict = "  << REGRESSION"
		} else if r.DeltaPct < -thresholdPct {
			verdict = "  improved"
		}
		if r.AllocRegressed(thresholdPct) {
			verdict += "  << ALLOC REGRESSION"
		}
		fmt.Fprintf(w, "%-40s %14.1f %14.1f %+8.1f%% %16s %16s%s\n",
			r.Name, r.OldNs, r.NewNs, r.DeltaPct,
			deltaCol(r.OldBytes, r.NewBytes), deltaCol(r.OldAllocs, r.NewAllocs), verdict)
	}
	for _, name := range rep.Added {
		fmt.Fprintf(w, "%-40s %14s %14s %9s\n", name, "-", "new", "")
	}
	for _, name := range rep.Removed {
		fmt.Fprintf(w, "%-40s %14s %14s %9s\n", name, "gone", "-", "")
	}

	regs := rep.Regressions(thresholdPct)
	if len(regs) > 0 {
		fmt.Fprintf(w, "%d of %d benchmarks regressed more than %.1f%%\n",
			len(regs), len(rep.Rows), thresholdPct)
		return true, nil
	}
	fmt.Fprintf(w, "no regression beyond %.1f%% across %d shared benchmarks\n",
		thresholdPct, len(rep.Rows))
	return false, nil
}
