// Command spco-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	spco-bench -list                 # show every experiment id
//	spco-bench -exp table1           # regenerate one artifact
//	spco-bench -exp fig4b -quick     # reduced sweep for a fast look
//	spco-bench -exp all              # the full evaluation section
//
// Output is the same rows/series the paper plots; EXPERIMENTS.md
// records the expected shapes against the paper's reported values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spco"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		quick  = flag.Bool("quick", false, "reduced sweeps and trials")
		trials = flag.Int("trials", 0, "override trial count (0 = experiment default)")
		csv    = flag.Bool("csv", false, "emit CSV where the artifact supports it")
		plot   = flag.Bool("plot", false, "render figures as ASCII charts")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, s := range spco.Experiments() {
			fmt.Printf("  %-8s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp <id> or run -exp all")
			os.Exit(2)
		}
		return
	}

	opts := spco.ExperimentOptions{Quick: *quick, Trials: *trials}
	var ids []string
	if *exp == "all" {
		for _, s := range spco.Experiments() {
			ids = append(ids, s.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		s, ok := spco.ExperimentByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "spco-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		art := s.Run(opts)
		fmt.Printf("### %s — %s\n", s.ID, s.Title)
		switch {
		case *csv:
			if c, ok := art.(interface{ CSV() string }); ok {
				fmt.Println(c.CSV())
			} else {
				fmt.Println(art.Render())
			}
		case *plot:
			if p, ok := art.(interface{ Plot(w, h int) string }); ok {
				fmt.Println(p.Plot(0, 0))
			} else {
				fmt.Println(art.Render())
			}
		default:
			fmt.Println(art.Render())
		}
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
