// Command spco-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	spco-bench -list                 # show every experiment id
//	spco-bench -exp table1           # regenerate one artifact
//	spco-bench -exp fig4b -quick     # reduced sweep for a fast look
//	spco-bench -exp all              # the full evaluation section
//
// Telemetry (the observability layer):
//
//	spco-bench -exp fig6b -metrics-out run.prom -residency-interval 1000
//	spco-bench -exp fig6b -series-out residency.csv -events-out ops.jsonl
//
// -metrics-out writes the run's metrics registry (Prometheus text by
// default; .jsonl/.csv select those formats), -series-out the sampled
// time series (cache residency per owner and level, queue depths,
// heater coverage, against simulated cycles), and -events-out the tail
// of the per-operation event ring as JSONL. -cpuprofile/-memprofile
// write Go pprof profiles of the simulator itself.
//
// Simulated PMU (internal/perf): -perf-stat prints the counter report
// accumulated across the experiment's engines; -folded/-pprof-sim
// write sampling profiles of simulated cycles and -spans per-message
// lifecycle spans (-sample-interval sets the profiler period).
//
// Output is the same rows/series the paper plots; EXPERIMENTS.md
// records the expected shapes against the paper's reported values.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"spco"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/perf"
	"spco/internal/telemetry"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		quick  = flag.Bool("quick", false, "reduced sweeps and trials")
		trials = flag.Int("trials", 0, "override trial count (0 = experiment default)")
		csv    = flag.Bool("csv", false, "emit CSV where the artifact supports it")
		plot   = flag.Bool("plot", false, "render figures as ASCII charts")

		metricsOut  = flag.String("metrics-out", "", "write the metrics registry here (.prom/.txt Prometheus text, .jsonl, .csv)")
		seriesOut   = flag.String("series-out", "", "write sampled time series here (.csv or .jsonl)")
		eventsOut   = flag.String("events-out", "", "write the per-operation event ring here (JSONL)")
		resInterval = flag.Uint64("residency-interval", 0, "sample residency/queue depths every N simulated cycles (0 = phase boundaries only)")
		traceCap    = flag.Int("trace-cap", 0, "event ring capacity (0 = default)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU pprof profile here")
		memProfile = flag.String("memprofile", "", "write a heap pprof profile here")
	)
	var pcli perf.CLI
	pcli.Register(flag.CommandLine)
	var fcli fault.CLI
	fcli.Register(flag.CommandLine)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("Available experiments:")
		for _, s := range spco.Experiments() {
			fmt.Printf("  %-8s %s\n", s.ID, s.Title)
		}
		if *exp == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nselect one with -exp <id> or run -exp all")
			os.Exit(2)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	opts := spco.ExperimentOptions{Quick: *quick, Trials: *trials}
	var col *telemetry.Collector
	if *metricsOut != "" || *seriesOut != "" || *resInterval > 0 {
		col = telemetry.NewCollector(nil)
		opts.Telemetry = col
		opts.ResidencyInterval = *resInterval
	}
	var tracer *engine.Tracer
	if *eventsOut != "" {
		tracer = engine.NewTracer(*traceCap)
		opts.Observer = tracer
	}
	pmu := pcli.New("bench")
	opts.Perf = pmu
	if fcli.Enabled() {
		opts.Fault = &fcli
	}

	var ids []string
	if *exp == "all" {
		for _, s := range spco.Experiments() {
			ids = append(ids, s.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		s, ok := spco.ExperimentByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "spco-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		art := s.Run(opts)
		fmt.Printf("### %s — %s\n", s.ID, s.Title)
		switch {
		case *csv:
			if c, ok := art.(interface{ CSV() string }); ok {
				fmt.Println(c.CSV())
			} else {
				fmt.Println(art.Render())
			}
		case *plot:
			if p, ok := art.(interface{ Plot(w, h int) string }); ok {
				fmt.Println(p.Plot(0, 0))
			} else {
				fmt.Println(art.Render())
			}
		default:
			fmt.Println(art.Render())
		}
		fmt.Printf("(regenerated in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}

	if col != nil {
		if col.Registry.NumMetrics() == 0 {
			fmt.Fprintln(os.Stderr, "spco-bench: warning: no metrics were published (this experiment's engines are not telemetry-instrumented)")
		}
		if *metricsOut != "" {
			if err := telemetry.WriteMetricsFile(*metricsOut, col); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "spco-bench: metrics written to %s\n", *metricsOut)
		}
		if *seriesOut != "" {
			if err := telemetry.WriteSeriesFile(*seriesOut, col); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "spco-bench: time series written to %s\n", *seriesOut)
		}
	}
	if tracer != nil {
		if err := tracer.WriteFile(*eventsOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "spco-bench: %d events written to %s (%d recorded, %d dropped)\n",
			tracer.Len(), *eventsOut, tracer.Total(), tracer.Dropped())
	}
	if err := pcli.Finish(os.Stdout, pmu); err != nil {
		fatal(err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "spco-bench: heap profile written to %s\n", *memProfile)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spco-bench:", err)
	os.Exit(1)
}
