// Command spco-trace records and replays MPI matching traces
// (trace-based simulation, after Ferreira et al.):
//
//	spco-trace record -out fds.trc -workload fds -target 2048
//	spco-trace info -in fds.trc
//	spco-trace replay -in fds.trc -arch broadwell -list lla -k 8
//	spco-trace replay -in fds.trc -all
//
// Record captures rank 0's matching operations from a built-in
// workload; replay drives any structure/architecture through the same
// sequence, cross-checking every matching outcome.
//
// Check validates a causal-timeline export (the Chrome trace JSON that
// -trace-out and /debug/trace produce): well-formed trace events,
// consistent span trees, and optionally that at least one message
// shows the full client-to-match causal chain:
//
//	spco-trace check -in chaos_trace.json -require-chain
package main

import (
	"flag"
	"fmt"
	"os"

	"spco"
	"spco/internal/cache"
	"spco/internal/ctrace"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/mtrace"
	"spco/internal/netmodel"
	"spco/internal/perf"
	"spco/internal/proxyapps"
	"spco/internal/telemetry"
	"spco/internal/trace"
	"spco/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "check":
		check(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spco-trace {record|info|replay|check} [flags]")
	os.Exit(2)
}

// check validates a Chrome trace-event export from the causal spine.
func check(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	var (
		in      = fs.String("in", "", "Chrome trace JSON to validate (- for stdin)")
		chain   = fs.Bool("require-chain", false, "fail unless a message shows the full causal chain (client -> dropped+delivered xmits -> engine -> match)")
		faulted = fs.Bool("require-fault", false, "fail unless at least one trace carries a fault event")
	)
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("check: -in is required"))
	}
	rd := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		rd = f
	}
	rep, err := ctrace.CheckChromeJSON(rd)
	if err != nil {
		fatal(fmt.Errorf("check: %s: %w", *in, err))
	}
	fmt.Printf("check: %s: %d traces, %d spans, %d instants, %d counter samples, %d faulted, %d full causal chains\n",
		*in, rep.Traces, rep.Spans, rep.Instants, rep.Counters, rep.FaultTraces, rep.FullChains)
	if rep.Traces == 0 {
		fatal(fmt.Errorf("check: %s holds no traces", *in))
	}
	if *chain && rep.FullChains == 0 {
		fatal(fmt.Errorf("check: %s shows no full causal chain (client send -> >=2 wire attempts with a drop and a delivery -> engine span -> match)", *in))
	}
	if *faulted && rep.FaultTraces == 0 {
		fatal(fmt.Errorf("check: %s carries no fault-marked trace", *in))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spco-trace:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		out    = fs.String("out", "spco.trc", "output trace file")
		wl     = fs.String("workload", "osu", "workload to record (osu, fds, minife)")
		depth  = fs.Int("depth", 1024, "osu: queue padding depth")
		target = fs.Int("target", 1024, "fds: modeled job size")
		ranks  = fs.Int("ranks", 8, "fds/minife: world size")
	)
	fs.Parse(args)

	rec := mtrace.NewRecorder(*wl)
	prof := cache.SandyBridge
	prof.Cores = 2
	ecfg := engine.Config{Profile: prof, Kind: matchlist.KindLLA, EntriesPerNode: 2}

	switch *wl {
	case "osu":
		workload.RunBW(workload.BWConfig{
			Engine:     ecfg,
			Fabric:     netmodel.IBQDR,
			QueueDepth: *depth,
			MsgBytes:   1,
			Iters:      2,
			Observer:   rec,
		})
	case "fds":
		proxyapps.RunFDS(proxyapps.FDSConfig{
			World:       worldWithRecorder(*ranks, ecfg, rec),
			TargetRanks: *target,
			Phases:      1,
		})
	case "minife":
		proxyapps.RunMiniFE(proxyapps.MiniFEConfig{
			World: worldWithRecorder(*ranks, ecfg, rec),
			N:     6, Iters: 4, PadDepth: *depth,
		})
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}

	tr := rec.Trace()
	if err := tr.Save(*out); err != nil {
		fatal(err)
	}
	c := tr.Counts()
	fmt.Printf("recorded %d events (%d arrivals, %d posts, %d cancels, %d phases) to %s\n",
		len(tr.Events), c.Arrives, c.Posts, c.Cancels, c.Phases, *out)
}

// worldWithRecorder attaches the recorder to rank 0's engine.
func worldWithRecorder(size int, ecfg engine.Config, rec *mtrace.Recorder) spco.WorldConfig {
	return spco.WorldConfig{
		Size:   size,
		Engine: ecfg,
		Fabric: netmodel.IBQDR,
		Observer: func(rank int) engine.Observer {
			if rank == 0 {
				return rec
			}
			return nil
		},
	}
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "spco.trc", "trace file")
	fs.Parse(args)
	tr, err := mtrace.Load(*in)
	if err != nil {
		fatal(err)
	}
	c := tr.Counts()
	fmt.Printf("trace %q: %d events\n", tr.Name, len(tr.Events))
	fmt.Printf("  arrivals: %d (%d matched in PRQ, %d unexpected)\n",
		c.Arrives, c.Matched, c.Arrives-c.Matched)
	fmt.Printf("  posts:    %d (%d satisfied from UMQ)\n", c.Posts, c.UMQHits)
	fmt.Printf("  cancels:  %d\n", c.Cancels)
	fmt.Printf("  phases:   %d\n", c.Phases)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in   = fs.String("in", "spco.trc", "trace file")
		arch = fs.String("arch", "sandybridge", "architecture profile")
		list = fs.String("list", "lla", "match structure")
		k    = fs.Int("k", 2, "LLA entries per node")
		hot  = fs.Bool("hotcache", false, "enable the heater")
		nc   = fs.Bool("netcache", false, "enable the dedicated network cache")
		all  = fs.Bool("all", false, "replay against every structure and print a table")

		metricsOut  = fs.String("metrics-out", "", "write the metrics registry here (.prom/.txt Prometheus text, .jsonl, .csv)")
		seriesOut   = fs.String("series-out", "", "write sampled time series here (.csv or .jsonl)")
		eventsOut   = fs.String("events-out", "", "write the per-operation event ring here (JSONL)")
		resInterval = fs.Uint64("residency-interval", 0, "sample residency/queue depths every N simulated cycles (0 = phase boundaries only)")
	)
	var pcli perf.CLI
	pcli.Register(fs)
	fs.Parse(args)

	tr, err := mtrace.Load(*in)
	if err != nil {
		fatal(err)
	}
	prof, ok := spco.ProfileByName(*arch)
	if !ok {
		fatal(fmt.Errorf("unknown architecture %q", *arch))
	}
	prof.Cores = 2

	if *all {
		t := trace.NewTable(fmt.Sprintf("replay of %q on %s", tr.Name, prof.Name),
			"structure", "cycles", "modeled ms", "mean depth", "mismatches")
		for _, v := range []struct {
			name string
			kind matchlist.Kind
			k    int
		}{
			{"baseline", matchlist.KindBaseline, 0},
			{"lla-2", matchlist.KindLLA, 2},
			{"lla-8", matchlist.KindLLA, 8},
			{"hashbins-256", matchlist.KindHashBins, 0},
			{"rankarray", matchlist.KindRankArray, 0},
			{"fourd", matchlist.KindFourD, 0},
			{"hwoffload-512", matchlist.KindHWOffload, 0},
		} {
			cfg := engine.Config{
				Profile: prof, Kind: v.kind, EntriesPerNode: v.k,
				Bins: binsFor(v.kind), CommSize: matchlist.MaxCommSize,
			}
			r := mtrace.Replay(tr, cfg)
			t.AddRow(v.name, r.Stats.Cycles, fmt.Sprintf("%.3f", r.CPUNanos/1e6),
				fmt.Sprintf("%.1f", r.Stats.MeanPRQDepth()), r.Mismatches)
		}
		fmt.Print(t.Render())
		return
	}

	kind, err := spco.ParseKind(*list)
	if err != nil {
		fatal(err)
	}
	cfg := engine.Config{
		Profile: prof, Kind: kind, EntriesPerNode: *k,
		Bins: binsFor(kind), CommSize: matchlist.MaxCommSize,
		HotCache: *hot, Pool: *hot, NetworkCache: *nc,
	}
	var col *telemetry.Collector
	if *metricsOut != "" || *seriesOut != "" || *resInterval > 0 {
		col = telemetry.NewCollector(telemetry.Labels{"trace": tr.Name})
		cfg.Telemetry = col
		cfg.ResidencyInterval = *resInterval
	}
	var tracer *engine.Tracer
	if *eventsOut != "" {
		tracer = engine.NewTracer(0)
	}
	pmu := pcli.New("replay")
	cfg.Perf = pmu
	r := mtrace.Replay(tr, cfg, tracer.AsObserver())
	fmt.Printf("replayed %d events on %s/%s: %d cycles (%.3f ms modeled), mean depth %.1f, %d mismatches\n",
		len(tr.Events), prof.Name, kind, r.Stats.Cycles, r.CPUNanos/1e6,
		r.Stats.MeanPRQDepth(), r.Mismatches)
	if col != nil && *metricsOut != "" {
		if err := telemetry.WriteMetricsFile(*metricsOut, col); err != nil {
			fatal(err)
		}
	}
	if col != nil && *seriesOut != "" {
		if err := telemetry.WriteSeriesFile(*seriesOut, col); err != nil {
			fatal(err)
		}
	}
	if tracer != nil {
		if err := tracer.WriteFile(*eventsOut); err != nil {
			fatal(err)
		}
	}
	if err := pcli.Finish(os.Stdout, pmu); err != nil {
		fatal(err)
	}
	if r.Mismatches > 0 {
		os.Exit(1)
	}
}

func binsFor(kind matchlist.Kind) int {
	switch kind {
	case matchlist.KindHashBins:
		return 256
	case matchlist.KindHWOffload:
		return 512
	}
	return 0
}
