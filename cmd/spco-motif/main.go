// Command spco-motif replays the SST-style communication motifs of
// Section 2.3 and prints their match-list length histograms (Figure 1).
//
// Example:
//
//	spco-motif -motif amr -ranks 65536 -sample 1024 -phases 50
package main

import (
	"flag"
	"fmt"
	"os"

	"spco"
)

func main() {
	var (
		name   = flag.String("motif", "amr", "motif (amr, sweep3d, halo3d)")
		ranks  = flag.Int("ranks", 0, "full-scale rank count (0 = motif default)")
		sample = flag.Int("sample", 1024, "ranks actually simulated")
		phases = flag.Int("phases", 50, "communication phases per rank")
		seed   = flag.Int64("seed", 2018, "random seed")
		bucket = flag.Int("bucket", 0, "histogram bucket width (0 = motif default)")
		bars   = flag.Bool("bars", false, "render log-scaled ASCII bars instead of counts")
	)
	flag.Parse()

	cfg := spco.MotifConfig{
		Ranks:       *ranks,
		SampleRanks: *sample,
		Phases:      *phases,
		Seed:        *seed,
		BucketWidth: *bucket,
	}
	var res *spco.MotifResult
	switch *name {
	case "amr":
		res = spco.AMRMotif(cfg)
	case "sweep3d":
		res = spco.Sweep3DMotif(cfg)
	case "halo3d":
		res = spco.Halo3DMotif(cfg)
	default:
		fmt.Fprintf(os.Stderr, "spco-motif: unknown motif %q\n", *name)
		os.Exit(2)
	}

	fmt.Printf("# %s at %d ranks (%d sampled, %d phases, bucket %d)\n",
		res.Name, res.Ranks, *sample, *phases, res.Posted.BucketWidth)
	if *bars {
		fmt.Print(res.Posted.Bars("posted match-list lengths", 48))
		fmt.Println()
		fmt.Print(res.Unexpected.Bars("unexpected match-list lengths", 48))
		return
	}
	fmt.Printf("%-16s %14s %14s\n", "length bucket", "posted", "unexpected")
	pb, ub := res.Posted.Buckets(), res.Unexpected.Buckets()
	n := len(pb)
	if len(ub) > n {
		n = len(ub)
	}
	for i := 0; i < n; i++ {
		var lo, hi int
		var p, u uint64
		if i < len(pb) {
			lo, hi, p = pb[i].Lo, pb[i].Hi, pb[i].Count
		}
		if i < len(ub) {
			if i >= len(pb) {
				lo, hi = ub[i].Lo, ub[i].Hi
			}
			u = ub[i].Count
		}
		fmt.Printf("%6d-%-9d %14d %14d\n", lo, hi, p, u)
	}
}
