// Command spco-motif replays the SST-style communication motifs of
// Section 2.3 and prints their match-list length histograms (Figure 1).
//
// Example:
//
//	spco-motif -motif amr -ranks 65536 -sample 1024 -phases 50
//
// Telemetry: -metrics-out exports the histogram buckets as registry
// counters, -series-out the representative rank's queue-length series
// (thinned with -residency-interval, here in queue events), and
// -events-out every simulated queue mutation as JSONL.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"spco"
	"spco/internal/motif"
	"spco/internal/telemetry"
)

func main() {
	var (
		name   = flag.String("motif", "amr", "motif (amr, sweep3d, halo3d)")
		ranks  = flag.Int("ranks", 0, "full-scale rank count (0 = motif default)")
		sample = flag.Int("sample", 1024, "ranks actually simulated")
		phases = flag.Int("phases", 50, "communication phases per rank")
		seed   = flag.Int64("seed", 2018, "random seed")
		bucket = flag.Int("bucket", 0, "histogram bucket width (0 = motif default)")
		bars   = flag.Bool("bars", false, "render log-scaled ASCII bars instead of counts")

		metricsOut  = flag.String("metrics-out", "", "write the metrics registry here (.prom/.txt Prometheus text, .jsonl, .csv)")
		seriesOut   = flag.String("series-out", "", "write queue-length time series here (.csv or .jsonl)")
		eventsOut   = flag.String("events-out", "", "write every queue mutation here (JSONL)")
		resInterval = flag.Uint64("residency-interval", 0, "record series every N queue events (0 = every event)")
		seriesRanks = flag.Int("series-ranks", 1, "simulated ranks contributing time series")
	)
	flag.Parse()

	cfg := spco.MotifConfig{
		Ranks:       *ranks,
		SampleRanks: *sample,
		Phases:      *phases,
		Seed:        *seed,
		BucketWidth: *bucket,
	}
	var col *telemetry.Collector
	if *metricsOut != "" || *seriesOut != "" {
		col = telemetry.NewCollector(nil)
		cfg.Telemetry = col
		cfg.SeriesInterval = *resInterval
		cfg.SeriesRanks = *seriesRanks
	}
	var evFile *os.File
	var evBuf *bufio.Writer
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		evFile, evBuf = f, bufio.NewWriter(f)
		enc := json.NewEncoder(evBuf)
		cfg.Observer = func(ev motif.Event) {
			if err := enc.Encode(ev); err != nil {
				fatal(err)
			}
		}
	}
	var res *spco.MotifResult
	switch *name {
	case "amr":
		res = spco.AMRMotif(cfg)
	case "sweep3d":
		res = spco.Sweep3DMotif(cfg)
	case "halo3d":
		res = spco.Halo3DMotif(cfg)
	default:
		fmt.Fprintf(os.Stderr, "spco-motif: unknown motif %q\n", *name)
		os.Exit(2)
	}

	if evBuf != nil {
		if err := evBuf.Flush(); err != nil {
			fatal(err)
		}
		if err := evFile.Close(); err != nil {
			fatal(err)
		}
	}
	if col != nil && *metricsOut != "" {
		if err := telemetry.WriteMetricsFile(*metricsOut, col); err != nil {
			fatal(err)
		}
	}
	if col != nil && *seriesOut != "" {
		if err := telemetry.WriteSeriesFile(*seriesOut, col); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("# %s at %d ranks (%d sampled, %d phases, bucket %d)\n",
		res.Name, res.Ranks, *sample, *phases, res.Posted.BucketWidth)
	if *bars {
		fmt.Print(res.Posted.Bars("posted match-list lengths", 48))
		fmt.Println()
		fmt.Print(res.Unexpected.Bars("unexpected match-list lengths", 48))
		return
	}
	fmt.Printf("%-16s %14s %14s\n", "length bucket", "posted", "unexpected")
	pb, ub := res.Posted.Buckets(), res.Unexpected.Buckets()
	n := len(pb)
	if len(ub) > n {
		n = len(ub)
	}
	for i := 0; i < n; i++ {
		var lo, hi int
		var p, u uint64
		if i < len(pb) {
			lo, hi, p = pb[i].Lo, pb[i].Hi, pb[i].Count
		}
		if i < len(ub) {
			if i >= len(pb) {
				lo, hi = ub[i].Lo, ub[i].Hi
			}
			u = ub[i].Count
		}
		fmt.Printf("%6d-%-9d %14d %14d\n", lo, hi, p, u)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spco-motif:", err)
	os.Exit(1)
}
