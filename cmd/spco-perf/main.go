// Command spco-perf drives the simulated PMU (internal/perf) over the
// modified OSU bandwidth workload, the way perf(1) drives the hardware
// PMU over a process:
//
//	spco-perf stat   [flags]            counter report (perf-stat style)
//	spco-perf record [flags]            sampling profile + per-message spans
//	spco-perf diff   [flags] -vs SPEC   side-by-side delta of two configs
//
// Examples:
//
//	spco-perf stat -list lla -k 8 -depth 1024
//	spco-perf record -depth 1024 -folded out.folded -pprof-out out.pb.gz
//	spco-perf diff -list lla -k 2 -depth 1024 -vs k=32
//	spco-perf diff -depth 512 -vs hc=on
//
// The -vs SPEC is a comma-separated list of overrides applied on top of
// the base flags: arch, list, k, depth, size, window, iters, hc=on/off,
// pool=on/off.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spco"
	"spco/internal/netmodel"
	"spco/internal/perf"
	"spco/internal/telemetry"
	"spco/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "stat":
		cmdStat(os.Args[2:])
	case "record":
		cmdRecord(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "help", "-h", "-help", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "spco-perf: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: spco-perf <stat|record|diff> [flags]

  stat    run the bandwidth workload under the simulated PMU and print
          a perf-stat-style counter report
  record  additionally sample the logical stack and trace per-message
          spans; write folded stacks, pprof, and span JSONL
  diff    run two configurations (base flags vs -vs overrides) and
          print a side-by-side counter and latency-percentile delta

Run 'spco-perf <subcommand> -h' for flags.
`)
}

// spec is one workload configuration, shared by all subcommands.
type spec struct {
	arch, list, fabric             string
	k, depth, window, iters, flush int
	size                           uint64
	hot, pool                      bool
}

// bindFlags registers the shared workload flags on fs, filling s.
func bindFlags(fs *flag.FlagSet, s *spec) {
	fs.StringVar(&s.arch, "arch", "sandybridge", "architecture profile (sandybridge, broadwell, nehalem, knl)")
	fs.StringVar(&s.list, "list", "lla", "match structure (baseline, lla, hashbins, rankarray, fourd, hwoffload, percomm)")
	fs.IntVar(&s.k, "k", 2, "LLA entries per node")
	fs.IntVar(&s.depth, "depth", 1024, "unmatched entries padding the queue")
	fs.Uint64Var(&s.size, "size", 1, "message size in bytes")
	fs.IntVar(&s.window, "window", 0, "messages in flight per iteration (0 = workload default)")
	fs.IntVar(&s.iters, "iters", 10, "timed iterations")
	fs.IntVar(&s.flush, "flush-every", 0, "compute phase + cache flush every N windows (0 = default)")
	fs.BoolVar(&s.hot, "hotcache", false, "enable the cache heater")
	fs.BoolVar(&s.pool, "pool", false, "enable the element pool")
	fs.StringVar(&s.fabric, "fabric", "", "fabric override (ib-qdr, omnipath, mlx-qdr)")
}

// label names a configuration in reports; only the dimensions that
// distinguish runs appear.
func (s spec) label() string {
	return fmt.Sprintf("osu_bw arch=%s list=%s k=%d depth=%d size=%d hc=%v pool=%v",
		s.arch, s.list, s.k, s.depth, s.size, s.hot, s.pool)
}

// run executes the bandwidth workload under a PMU built from popts.
func (s spec) run(popts perf.Options) (*perf.PMU, workload.BWResult, error) {
	prof, ok := spco.ProfileByName(s.arch)
	if !ok {
		return nil, workload.BWResult{}, fmt.Errorf("unknown architecture %q", s.arch)
	}
	kind, err := spco.ParseKind(s.list)
	if err != nil {
		return nil, workload.BWResult{}, err
	}
	fab := defaultFabric(s.arch)
	if s.fabric != "" {
		f, ok := netmodel.Fabrics[s.fabric]
		if !ok {
			return nil, workload.BWResult{}, fmt.Errorf("unknown fabric %q", s.fabric)
		}
		fab = f
	}
	popts.Label = s.label()
	pmu := perf.New(popts)
	cfg := spco.BWConfig{
		Engine: spco.EngineConfig{
			Profile:        prof,
			Kind:           kind,
			EntriesPerNode: s.k,
			HotCache:       s.hot,
			Pool:           s.pool,
			CommSize:       64,
			Bins:           256,
			Perf:           pmu,
		},
		Fabric:     fab,
		QueueDepth: s.depth,
		MsgBytes:   s.size,
		Window:     s.window,
		Iters:      s.iters,
		FlushEvery: s.flush,
	}
	return pmu, spco.RunBandwidth(cfg), nil
}

func defaultFabric(arch string) spco.Fabric {
	switch arch {
	case "broadwell":
		return spco.OmniPath
	case "nehalem":
		return spco.MellanoxQDR
	default:
		return spco.IBQDR
	}
}

// --- stat ---

func cmdStat(args []string) {
	fs := flag.NewFlagSet("spco-perf stat", flag.ExitOnError)
	var s spec
	bindFlags(fs, &s)
	metricsOut := fs.String("metrics-out", "", "also publish counters to a metrics file (.prom/.txt, .jsonl, .csv)")
	fs.Parse(args)

	// Counters and spans only: stat reports totals and latency
	// percentiles, no sampling profile.
	pmu, r, err := s.run(perf.Options{Experiment: "osu_bw"})
	if err != nil {
		fatal(err)
	}
	fmt.Print(pmu.Report())
	fmt.Println()
	printResult(r)
	printPercentiles(os.Stdout, pmu)

	if *metricsOut != "" {
		col := telemetry.NewCollector(nil)
		pmu.Publish(col.Registry, telemetry.Labels{
			"arch": s.arch, "list": s.list, "k": strconv.Itoa(s.k),
		})
		if err := telemetry.WriteMetricsFile(*metricsOut, col); err != nil {
			fatal(err)
		}
	}
}

func printResult(r workload.BWResult) {
	fmt.Printf(" %18.4f   MiB/s\n %18.0f   msgs/s\n %18.2f   cycles/msg\n %18.2f   mean search depth\n\n",
		r.BandwidthMiBps, r.MsgRate, r.CPUCyclesPerMsg, r.MeanDepth)
}

func printPercentiles(w *os.File, pmu *perf.PMU) {
	log := pmu.Spans()
	if log == nil || log.Len() == 0 {
		return
	}
	fmt.Fprintf(w, " span latency (cycles)  %10s %10s %10s %10s %10s\n", "n", "p50", "p90", "p99", "max")
	for k := perf.OpKind(0); k < perf.NumOps; k++ {
		p := log.Percentiles(k.String())
		if p.N == 0 {
			continue
		}
		fmt.Fprintf(w, "   %-20s %10d %10d %10d %10d %10d\n", p.Kind, p.N, p.P50, p.P90, p.P99, p.Max)
	}
	if d := log.Dropped(); d > 0 {
		fmt.Fprintf(w, "   (ring dropped %d oldest spans)\n", d)
	}
}

// --- record ---

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("spco-perf record", flag.ExitOnError)
	var s spec
	bindFlags(fs, &s)
	folded := fs.String("folded", "", "write folded stacks here (flamegraph.pl / speedscope)")
	pprofOut := fs.String("pprof-out", "", "write a gzipped pprof profile here (go tool pprof)")
	spansOut := fs.String("spans", "", "write per-message spans here (JSONL)")
	interval := fs.Uint64("sample-interval", perf.DefaultSampleInterval, "profiler sampling period in simulated cycles")
	spanCap := fs.Int("span-cap", 0, "span ring capacity (0 = default 65536, negative disables)")
	fs.Parse(args)

	pmu, r, err := s.run(perf.Options{
		Experiment:     "osu_bw",
		SampleInterval: *interval,
		SpanCapacity:   *spanCap,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Print(pmu.Report())
	fmt.Println()
	printResult(r)
	printPercentiles(os.Stdout, pmu)
	if pr := pmu.Profiler(); pr != nil {
		fmt.Printf(" %18s   profile samples (interval %d cycles)\n", group(pr.NumSamples()), pr.Interval())
	}

	write := func(path string, fn func(*os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := fn(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if pr := pmu.Profiler(); pr != nil {
		write(*folded, func(f *os.File) error { return pr.WriteFolded(f) })
		write(*pprofOut, func(f *os.File) error { return pr.WritePprof(f) })
	} else if *folded != "" || *pprofOut != "" {
		fatal(fmt.Errorf("profiling disabled (-sample-interval 0), nothing to write"))
	}
	if log := pmu.Spans(); log != nil {
		write(*spansOut, func(f *os.File) error { return log.WriteJSONL(f) })
	} else if *spansOut != "" {
		fatal(fmt.Errorf("span recording disabled (negative -span-cap), nothing to write"))
	}
}

// --- diff ---

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("spco-perf diff", flag.ExitOnError)
	var base spec
	bindFlags(fs, &base)
	vs := fs.String("vs", "", "variant overrides, comma-separated (e.g. k=32 or hc=on,list=baseline)")
	fs.Parse(args)
	if *vs == "" {
		fatal(fmt.Errorf("diff needs -vs overrides (e.g. -vs k=32)"))
	}
	variant, err := applyOverrides(base, *vs)
	if err != nil {
		fatal(err)
	}

	pmuA, resA, err := base.run(perf.Options{Experiment: "osu_bw"})
	if err != nil {
		fatal(err)
	}
	pmuB, resB, err := variant.run(perf.Options{Experiment: "osu_bw"})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("# base:    %s\n# variant: %s\n\n", base.label(), variant.label())
	a, b := pmuA.Totals().Rows(), pmuB.Totals().Rows()
	fmt.Printf(" %-34s %16s %16s %18s\n", "counter", "base", "variant", "delta")
	for i := range a {
		// Rows() order is fixed, but level-gated rows (evictions, flushes)
		// can differ between runs; align by name.
		rb, ok := findRow(b, a[i].Name)
		if !ok {
			continue
		}
		fmt.Printf(" %-34s %16s %16s %18s\n", a[i].Name, fmtRow(a[i]), fmtRow(rb), fmtDelta(a[i], rb))
	}

	fmt.Println()
	fmt.Printf(" %-28s %10s %10s %10s %10s %10s\n", "span latency (cycles)", "n", "p50", "p90", "p99", "max")
	for k := perf.OpKind(0); k < perf.NumOps; k++ {
		pa := pmuA.Spans().Percentiles(k.String())
		pb := pmuB.Spans().Percentiles(k.String())
		if pa.N == 0 && pb.N == 0 {
			continue
		}
		fmt.Printf("   %-26s %10d %10d %10d %10d %10d\n", pa.Kind+" base", pa.N, pa.P50, pa.P90, pa.P99, pa.Max)
		fmt.Printf("   %-26s %10d %10d %10d %10d %10d\n", pb.Kind+" variant", pb.N, pb.P50, pb.P90, pb.P99, pb.Max)
		fmt.Printf("   %-26s %10s %10s %10s %10s %10s\n", "delta",
			sdelta(int64(pb.N)-int64(pa.N)),
			sdelta(int64(pb.P50)-int64(pa.P50)),
			sdelta(int64(pb.P90)-int64(pa.P90)),
			sdelta(int64(pb.P99)-int64(pa.P99)),
			sdelta(int64(pb.Max)-int64(pa.Max)))
	}

	fmt.Println()
	fmt.Printf(" %-28s %16s %16s\n", "workload", "base", "variant")
	fmt.Printf(" %-28s %16.4f %16.4f\n", "bandwidth (MiB/s)", resA.BandwidthMiBps, resB.BandwidthMiBps)
	fmt.Printf(" %-28s %16.0f %16.0f\n", "message rate (msgs/s)", resA.MsgRate, resB.MsgRate)
	fmt.Printf(" %-28s %16.2f %16.2f\n", "cycles per message", resA.CPUCyclesPerMsg, resB.CPUCyclesPerMsg)
	fmt.Printf(" %-28s %16.2f %16.2f\n", "mean search depth", resA.MeanDepth, resB.MeanDepth)
}

// applyOverrides parses a -vs spec ("k=32,hc=on") onto a copy of base.
func applyOverrides(base spec, vs string) (spec, error) {
	v := base
	for _, kv := range strings.Split(vs, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return v, fmt.Errorf("bad override %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "arch":
			v.arch = val
		case "list":
			v.list = val
		case "fabric":
			v.fabric = val
		case "k":
			v.k, err = strconv.Atoi(val)
		case "depth":
			v.depth, err = strconv.Atoi(val)
		case "window":
			v.window, err = strconv.Atoi(val)
		case "iters":
			v.iters, err = strconv.Atoi(val)
		case "flush-every":
			v.flush, err = strconv.Atoi(val)
		case "size":
			v.size, err = strconv.ParseUint(val, 10, 64)
		case "hc", "hotcache":
			v.hot, err = parseOnOff(val)
		case "pool":
			v.pool, err = parseOnOff(val)
		default:
			return v, fmt.Errorf("unknown override key %q", key)
		}
		if err != nil {
			return v, fmt.Errorf("override %q: %v", kv, err)
		}
	}
	return v, nil
}

func parseOnOff(s string) (bool, error) {
	switch s {
	case "on", "true", "1", "yes":
		return true, nil
	case "off", "false", "0", "no":
		return false, nil
	}
	return false, fmt.Errorf("want on/off")
}

func findRow(rows []perf.Row, name string) (perf.Row, bool) {
	for _, r := range rows {
		if r.Name == name {
			return r, true
		}
	}
	return perf.Row{}, false
}

// fmtRow renders one counter value the way the stat report does.
func fmtRow(r perf.Row) string {
	switch {
	case r.Percent:
		return fmt.Sprintf("%.2f%%", r.Value*100)
	case r.Value == float64(uint64(r.Value)):
		return group(uint64(r.Value))
	default:
		return fmt.Sprintf("%.2f", r.Value)
	}
}

// fmtDelta renders variant-minus-base: percentage points for ratio
// rows, a signed count plus relative change for counts.
func fmtDelta(a, b perf.Row) string {
	d := b.Value - a.Value
	switch {
	case a.Percent:
		return fmt.Sprintf("%+.2fpp", d*100)
	case a.Value == float64(uint64(a.Value)) && b.Value == float64(uint64(b.Value)):
		if a.Value == 0 {
			return sdelta(int64(d))
		}
		return fmt.Sprintf("%s (%+.1f%%)", sdelta(int64(d)), 100*d/a.Value)
	default:
		if a.Value == 0 {
			return fmt.Sprintf("%+.2f", d)
		}
		return fmt.Sprintf("%+.2f (%+.1f%%)", d, 100*d/a.Value)
	}
}

// sdelta renders a signed integer with thousands separators.
func sdelta(n int64) string {
	if n < 0 {
		return "-" + group(uint64(-n))
	}
	return "+" + group(uint64(n))
}

// group renders n with thousands separators.
func group(n uint64) string {
	s := strconv.FormatUint(n, 10)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead == 0 {
		lead = 3
	}
	b.WriteString(s[:lead])
	for i := lead; i < len(s); i += 3 {
		b.WriteByte(',')
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spco-perf:", err)
	os.Exit(1)
}
