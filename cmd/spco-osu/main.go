// Command spco-osu runs the modified OSU bandwidth microbenchmark
// (Section 4.1's four modifications) at a single configuration and
// prints one measurement line, or sweeps message sizes with -sweep.
//
// Example:
//
//	spco-osu -arch sandybridge -list lla -k 8 -depth 1024 -size 1
//	spco-osu -arch broadwell -list baseline -hotcache -depth 512 -sweep
//
// Telemetry: -metrics-out, -series-out, -events-out, and
// -residency-interval instrument the run (see internal/telemetry);
// -cpuprofile/-memprofile write Go pprof profiles.
//
// Simulated PMU (internal/perf): -perf-stat prints the counter report,
// -folded/-pprof-sim write sampling profiles of simulated cycles, and
// -spans writes per-message lifecycle spans; -sample-interval sets the
// profiler period. See also cmd/spco-perf for the dedicated driver.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"spco"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/netmodel"
	"spco/internal/perf"
	"spco/internal/telemetry"
	"spco/internal/workload"
)

func main() {
	var (
		arch   = flag.String("arch", "sandybridge", "architecture profile (sandybridge, broadwell, nehalem, knl)")
		list   = flag.String("list", "lla", "match structure (baseline, lla, hashbins, rankarray, fourd, hwoffload, percomm)")
		k      = flag.Int("k", 2, "LLA entries per node")
		depth  = flag.Int("depth", 0, "unmatched entries padding the queue")
		size   = flag.Uint64("size", 1, "message size in bytes")
		sweep  = flag.Bool("sweep", false, "sweep message sizes 1B..1MiB")
		hot    = flag.Bool("hotcache", false, "enable the cache heater")
		pool   = flag.Bool("pool", false, "enable the element pool")
		iters  = flag.Int("iters", 10, "timed iterations")
		lat    = flag.Bool("lat", false, "measure one-way latency (osu_latency) instead of bandwidth")
		fabric = flag.String("fabric", "", "fabric override (ib-qdr, omnipath, mlx-qdr)")

		metricsOut  = flag.String("metrics-out", "", "write the metrics registry here (.prom/.txt Prometheus text, .jsonl, .csv)")
		seriesOut   = flag.String("series-out", "", "write sampled time series here (.csv or .jsonl)")
		eventsOut   = flag.String("events-out", "", "write the per-operation event ring here (JSONL)")
		resInterval = flag.Uint64("residency-interval", 0, "sample residency/queue depths every N simulated cycles (0 = phase boundaries only)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU pprof profile here")
		memProfile = flag.String("memprofile", "", "write a heap pprof profile here")
	)
	var pcli perf.CLI
	pcli.Register(flag.CommandLine)
	var fcli fault.CLI
	fcli.Register(flag.CommandLine)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	prof, ok := spco.ProfileByName(*arch)
	if !ok {
		fmt.Fprintf(os.Stderr, "spco-osu: unknown architecture %q\n", *arch)
		os.Exit(2)
	}
	kind, err := spco.ParseKind(*list)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spco-osu:", err)
		os.Exit(2)
	}
	fab := defaultFabric(*arch)
	if *fabric != "" {
		f, ok := netmodel.Fabrics[*fabric]
		if !ok {
			fmt.Fprintf(os.Stderr, "spco-osu: unknown fabric %q\n", *fabric)
			os.Exit(2)
		}
		fab = f
	}

	var col *telemetry.Collector
	if *metricsOut != "" || *seriesOut != "" || *resInterval > 0 {
		col = telemetry.NewCollector(nil)
	}
	var tracer *engine.Tracer
	if *eventsOut != "" {
		tracer = engine.NewTracer(0)
	}
	pmu := pcli.New("osu")

	cfg := spco.BWConfig{
		Engine: spco.EngineConfig{
			Profile:           prof,
			Kind:              kind,
			EntriesPerNode:    *k,
			HotCache:          *hot,
			Pool:              *pool,
			CommSize:          64,
			Bins:              256,
			Telemetry:         col,
			ResidencyInterval: *resInterval,
			Perf:              pmu,
		},
		Fabric:     fab,
		QueueDepth: *depth,
		Iters:      *iters,
	}
	if tracer != nil {
		cfg.Observer = tracer
	}
	var fopts *workload.FaultOpts
	if fcli.Enabled() {
		if err := fcli.ApplyEngine(&cfg.Engine); err != nil {
			fatal(err)
		}
		fopts = &workload.FaultOpts{
			Wire:       fcli.Wire(),
			Seed:       fcli.Seed,
			RTONS:      fcli.RTONS,
			MaxRetries: fcli.Retries,
			PMU:        pmu,
		}
		cfg.Fault = fopts
	}

	fmt.Printf("# arch=%s list=%s k=%d depth=%d hotcache=%v pool=%v fabric=%s\n",
		prof.Name, kind, *k, *depth, *hot, *pool, fab.Name)
	if fopts != nil {
		fmt.Printf("# fault: drop=%g dup=%g reorder=%g corrupt=%g burst=%g seed=%d umq-cap=%d flow=%s\n",
			fcli.Drop, fcli.Dup, fcli.Reorder, fcli.Corrupt, fcli.BurstProb, fcli.Seed, fcli.UMQCap, fcli.Flow)
	}
	sizes := []uint64{*size}
	if *sweep {
		sizes = workload.MsgSizeSweep()
	}
	if *lat {
		fmt.Printf("%-10s %14s %12s\n", "size(B)", "latency(us)", "cycles/msg")
		for _, sz := range sizes {
			r := workload.RunLat(workload.LatConfig{
				Engine:     cfg.Engine,
				Fabric:     fab,
				QueueDepth: *depth,
				MsgBytes:   sz,
				Iters:      *iters * 10,
				Fault:      fopts,
			})
			fmt.Printf("%-10d %14.3f %12.0f\n", sz, r.OneWayUS, r.CPUCyclesPerMsg)
		}
	} else {
		fmt.Printf("%-10s %14s %14s %12s\n", "size(B)", "MiB/s", "msgs/s", "cycles/msg")
		for _, sz := range sizes {
			cfg.MsgBytes = sz
			r := spco.RunBandwidth(cfg)
			fmt.Printf("%-10d %14.4f %14.0f %12.0f\n", sz, r.BandwidthMiBps, r.MsgRate, r.CPUCyclesPerMsg)
		}
	}

	if col != nil && *metricsOut != "" {
		if err := telemetry.WriteMetricsFile(*metricsOut, col); err != nil {
			fatal(err)
		}
	}
	if col != nil && *seriesOut != "" {
		if err := telemetry.WriteSeriesFile(*seriesOut, col); err != nil {
			fatal(err)
		}
	}
	if tracer != nil {
		if err := tracer.WriteFile(*eventsOut); err != nil {
			fatal(err)
		}
	}
	if err := pcli.Finish(os.Stdout, pmu); err != nil {
		fatal(err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spco-osu:", err)
	os.Exit(1)
}

func defaultFabric(arch string) spco.Fabric {
	switch arch {
	case "broadwell":
		return spco.OmniPath
	case "nehalem":
		return spco.MellanoxQDR
	default:
		return spco.IBQDR
	}
}
