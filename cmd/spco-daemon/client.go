package main

import (
	"flag"
	"fmt"
	"time"

	"spco/internal/daemon"
)

// runClient drives a live daemon with the seeded load generator and
// prints the audit tallies.
func runClient(args []string) error {
	fs := flag.NewFlagSet("spco-daemon client", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:7777", "daemon match-traffic address")
		conns    = fs.Int("conns", 4, "concurrent connections")
		messages = fs.Int("messages", 10000, "total arrive/post pairs")
		senders  = fs.Int("senders", 8, "source ranks the pairs round-robin")
		prepost  = fs.Float64("prepost", 0.5, "fraction of receives posted before the arrive")
		seed     = fs.Uint64("seed", 1, "load RNG seed")
		phases   = fs.Int("phase-every", 0, "compute phase every N pairs on connection 0 (0: never)")
		phaseNS  = fs.Float64("phase-ns", 1e5, "compute-phase duration in ns")
		retries  = fs.Int("retries", 64, "max retransmissions per refused arrive")
		batch    = fs.Int("batch", 0, "pairs per batched wire frame (0/1: scalar request-response)")
		ctxs     = fs.Int("ctxs", 1, "contexts the connections spread across (>= daemon shards hits every lane)")
		window   = fs.Int("window", 0, "client-side cap on ops per batch frame (0: server's advertised window only)")
	)
	fs.Parse(args)

	res, err := daemon.RunLoad(daemon.LoadConfig{
		Addr:        *addr,
		Conns:       *conns,
		Messages:    *messages,
		Senders:     *senders,
		PrePostFrac: *prepost,
		Seed:        *seed,
		PhaseEvery:  *phases,
		PhaseNS:     *phaseNS,
		MaxRetries:  *retries,
		Batch:       *batch,
		Ctxs:        *ctxs,
		Window:      *window,
	})
	printLoadResult(res)
	if err != nil {
		return err
	}
	if res.Unmatched != 0 || res.Mismatches != 0 {
		return fmt.Errorf("pairing audit failed: %d unmatched, %d mismatched",
			res.Unmatched, res.Mismatches)
	}
	return nil
}

func printLoadResult(res daemon.LoadResult) {
	sec := res.Elapsed.Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	fmt.Printf("%-22s %12d\n", "arrives", res.Arrives)
	fmt.Printf("%-22s %12d\n", "posts", res.Posts)
	fmt.Printf("%-22s %12d\n", "phases", res.Phases)
	fmt.Printf("%-22s %12d\n", "matched (prq)", res.ArriveMatched)
	fmt.Printf("%-22s %12d\n", "matched (umq)", res.PostMatched)
	fmt.Printf("%-22s %12d\n", "rendezvous", res.Rendezvous)
	fmt.Printf("%-22s %12d\n", "nacks", res.Nacks)
	fmt.Printf("%-22s %12d\n", "busy", res.Busy)
	fmt.Printf("%-22s %12d\n", "retries", res.Retries)
	fmt.Printf("%-22s %12d\n", "unmatched", res.Unmatched)
	fmt.Printf("%-22s %12d\n", "mismatches", res.Mismatches)
	fmt.Printf("%-22s %12d\n", "engine cycles", res.EngineCycles)
	fmt.Printf("%-22s %12s\n", "elapsed", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("%-22s %12.0f\n", "matches/sec", float64(res.Matched())/sec)
}
