// Command spco-daemon hosts one matching engine as a long-running
// service: match traffic arrives over TCP (the internal/mpi wire
// protocol) from many concurrent client connections, while an HTTP
// admin plane exposes the live telemetry registry and a one-shot
// diagnostic bundle —
//
//	GET /metrics        live Prometheus scrape
//	GET /healthz        liveness
//	GET /readyz         readiness (503 once draining)
//	GET /status         JSON status document
//	GET /debug/profile  diagnostic zip (pprof + simulated perf-stat)
//	GET /debug/trace    flight-recorder dump (Chrome trace JSON)
//
// Subcommands:
//
//	spco-daemon serve   run the daemon (default when flags follow)
//	spco-daemon client  drive a daemon with seeded concurrent load
//	spco-daemon diag    fetch and verify a /debug/profile bundle
//	spco-daemon smoke   self-contained acceptance run (CI gate)
//
// Examples:
//
//	spco-daemon serve -listen :7777 -admin :7778 -list lla -k 2 -hot
//	spco-daemon serve -listen :7777 -admin :7778 -fault-drop 0.01 -umq-cap 512 -flow rendezvous
//	spco-daemon client -addr :7777 -conns 8 -messages 100000
//	spco-daemon diag -admin :7778 -seconds 5 -out profile.zip
//	spco-daemon smoke
//
// On SIGINT/SIGTERM the daemon drains gracefully: the listener closes,
// /readyz flips to 503, in-flight connections get -drain-timeout to
// finish, exporters flush, and the final perf-stat report is emitted.
// A second signal forces shutdown with a nonzero exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spco"
	"spco/internal/ctrace"
	"spco/internal/daemon"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/perf"
	"spco/internal/telemetry"
)

func main() {
	args := os.Args[1:]
	cmd := "serve"
	if len(args) > 0 && !isFlag(args[0]) {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "serve":
		err = runServe(args)
	case "client":
		err = runClient(args)
	case "diag":
		err = runDiag(args)
	case "smoke":
		err = runSmoke(args)
	case "help", "-h", "--help":
		fmt.Println("usage: spco-daemon [serve|client|diag|smoke] [flags]")
		return
	default:
		err = fmt.Errorf("unknown subcommand %q (want serve, client, diag, or smoke)", cmd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spco-daemon:", err)
		os.Exit(1)
	}
}

func isFlag(s string) bool { return len(s) > 0 && s[0] == '-' }

// runServe builds and runs the daemon until signalled.
func runServe(args []string) error {
	fs := flag.NewFlagSet("spco-daemon serve", flag.ExitOnError)
	var (
		listen = fs.String("listen", "127.0.0.1:7777", "match-traffic listen address")
		admin  = fs.String("admin", "127.0.0.1:7778", "admin-plane (HTTP) listen address")
		shards = fs.Int("shards", 1, "per-context engine lanes (ctx -> shard affinity)")
		window = fs.Int("window", 0, "per-connection credit window in ops (0: unlimited)")

		arch  = fs.String("arch", "sandybridge", "architecture profile (sandybridge, broadwell, nehalem, knl)")
		list  = fs.String("list", "lla", "match structure (baseline, lla, hashbins, rankarray, fourd, hwoffload, percomm)")
		k     = fs.Int("k", 2, "LLA entries per node")
		comm  = fs.Int("comm", 64, "communicator size for bucketed comparators")
		bins  = fs.Int("bins", 256, "bins for the hash-bin comparator")
		pool  = fs.Bool("pool", false, "recycle match-list nodes (modified-LLA allocator)")
		hot   = fs.Bool("hot", false, "attach the cache heater (semi-permanent occupancy)")
		hotNS = fs.Float64("hot-period", 0, "heater sweep period in ns (0: profile default)")
		netc  = fs.Bool("netcache", false, "attach the dedicated network-data cache")
		resNS = fs.Uint64("residency-interval", 200_000, "residency sampling cadence in simulated cycles")
		drain = fs.Duration("drain-timeout", daemon.DefaultDrainTimeout, "graceful-drain bound after the first signal")

		journal   = fs.String("journal", "", "crash-recovery directory (per-shard op journals + snapshot); empty: journaling off")
		recover   = fs.Bool("recover", false, "rebuild engine state from -journal before serving (snapshot restore + journal replay)")
		snapEvery = fs.Duration("snapshot-every", 0, "periodic snapshot cadence (0: none; requires -journal)")
		jsync     = fs.Int("journal-sync", 0, "fsync journals every N records (0: default 64)")
		addrFile  = fs.String("addr-file", "", "write the bound listen and admin addresses here once ready (one per line)")
		mOut      = fs.String("metrics-out", "", "flush the registry here on shutdown (.prom/.txt, .jsonl, .csv)")
		sOut      = fs.String("series-out", "", "flush the sampler time series here on shutdown (.csv, .jsonl)")
		quiet     = fs.Bool("q", false, "suppress serving logs")
		perfOut   = fs.String("perf-out", "-", "final perf-stat destination (-: stdout, empty: discard)")
	)
	var fcli fault.CLI
	fcli.Register(fs)
	var tcli ctrace.CLI
	tcli.Register(fs)
	fs.Parse(args)

	cfg, err := engineConfig(*arch, *list, *k, *comm, *bins, *pool, *hot, *hotNS, *netc, &fcli)
	if err != nil {
		return err
	}
	cfg.ResidencyInterval = *resNS

	rec := recoveryOpts{dir: *journal, recover: *recover, snapEvery: *snapEvery, syncEvery: *jsync}
	srv, err := newServer(cfg, *listen, *admin, *shards, *window, fcli, tcli, *drain, *mOut, *sOut, *perfOut, *quiet, rec)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		// The chaos harness binds with :0 and learns the real ports from
		// this file; restarts then pin the same addresses.
		addrs := srv.Addr() + "\n" + srv.AdminAddr() + "\n"
		if err := os.WriteFile(*addrFile, []byte(addrs), 0o644); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return srv.Run(sig)
}

// engineConfig assembles the hosted engine's configuration from flags.
func engineConfig(arch, list string, k, comm, bins int, pool, hot bool,
	hotNS float64, netc bool, fcli *fault.CLI) (engine.Config, error) {
	prof, ok := spco.ProfileByName(arch)
	if !ok {
		return engine.Config{}, fmt.Errorf("unknown architecture %q", arch)
	}
	kind, err := spco.ParseKind(list)
	if err != nil {
		return engine.Config{}, err
	}
	cfg := engine.Config{
		Profile:        prof,
		Kind:           kind,
		EntriesPerNode: k,
		CommSize:       comm,
		Bins:           bins,
		Pool:           pool,
		HotCache:       hot,
		HeaterPeriodNS: hotNS,
		NetworkCache:   netc,
	}
	if err := fcli.ApplyEngine(&cfg); err != nil {
		return engine.Config{}, err
	}
	return cfg, nil
}

// recoveryOpts carries the serve-mode crash-recovery flags.
type recoveryOpts struct {
	dir       string
	recover   bool
	snapEvery time.Duration
	syncEvery int
}

// newServer wires the collector, PMU, flight recorder, and daemon
// together. The PMU and collector are attached for the life of the
// process: /metrics scrapes the collector live, /debug/profile bundles
// the PMU's artifacts, /debug/trace dumps the flight recorder.
func newServer(ecfg engine.Config, listen, admin string, shards, window int, fcli fault.CLI, tcli ctrace.CLI,
	drain time.Duration, mOut, sOut, perfOut string, quiet bool, rec recoveryOpts) (*daemon.Server, error) {
	coll := telemetry.NewCollector(telemetry.Labels{"cmd": "daemon"})
	pmu := perf.New(perf.Options{
		Label:          "spco-daemon",
		Experiment:     "daemon",
		SampleInterval: perf.DefaultSampleInterval,
	})
	dcfg := daemon.Config{
		Engine:       ecfg,
		ListenAddr:   listen,
		AdminAddr:    admin,
		Shards:       shards,
		Window:       window,
		Collector:    coll,
		PMU:          pmu,
		Wire:         fcli.Wire(),
		FaultSeed:    fcli.Seed,
		DrainTimeout: drain,
		MetricsOut:   mOut,
		SeriesOut:    sOut,
		// The daemon's flight recorder is always on; the -trace-* flags
		// only shape it (capacity, retention, shutdown export).
		Trace: ctrace.New(ctrace.Options{
			Capacity:         tcli.Cap,
			KeepAll:          tcli.KeepAll,
			LatencyQuantile:  tcli.Quantile,
			TriggerLatencyNS: tcli.TriggerNS,
		}),
		TraceOut: tcli.Out,

		JournalDir:    rec.dir,
		Recover:       rec.recover,
		SnapshotEvery: rec.snapEvery,
		JournalSync:   rec.syncEvery,
	}
	switch perfOut {
	case "-":
		dcfg.PerfOut = os.Stdout
	case "":
		// Config default resolution would pick stdout; keep it silent.
		dcfg.PerfOut = discardWriter{}
	default:
		f, err := os.Create(perfOut)
		if err != nil {
			return nil, err
		}
		dcfg.PerfOut = f
	}
	if !quiet {
		dcfg.Logf = log.New(os.Stderr, "", log.LstdFlags).Printf
	}
	return daemon.New(dcfg)
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
