package main

import (
	"archive/zip"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

// requiredBundleEntries are the artifacts every profile bundle must
// carry (cpu.pprof additionally appears when seconds > 0; folded.txt
// and sim.pprof when the daemon's profiler is enabled, which
// spco-daemon serve always does).
var requiredBundleEntries = []string{
	"heap.pprof", "goroutines.pprof", "mutex.pprof", "block.pprof",
	"perf-stat.txt", "metrics.prom", "status.json",
}

// runDiag fetches /debug/profile from a live daemon, verifies the zip,
// and writes it to disk — the kubo `diag profile` flow, self-contained
// so CI needs neither curl nor unzip.
func runDiag(args []string) error {
	fs := flag.NewFlagSet("spco-daemon diag", flag.ExitOnError)
	var (
		admin   = fs.String("admin", "127.0.0.1:7778", "daemon admin-plane address")
		seconds = fs.Float64("seconds", 1, "CPU-profile window (0 skips cpu.pprof)")
		out     = fs.String("out", "", "output path (default: spco-profile-<unix>.zip)")
	)
	fs.Parse(args)

	path := *out
	if path == "" {
		path = fmt.Sprintf("spco-profile-%d.zip", time.Now().Unix())
	}
	body, err := fetchProfile(*admin, *seconds)
	if err != nil {
		return err
	}
	entries, err := verifyBundle(body, *seconds > 0)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes, %d entries)\n", path, len(body), len(entries))
	for _, name := range entries {
		fmt.Printf("  %s\n", name)
	}
	return nil
}

// fetchProfile GETs the diagnostic bundle.
func fetchProfile(admin string, seconds float64) ([]byte, error) {
	client := &http.Client{Timeout: time.Duration(seconds)*time.Second + 60*time.Second}
	url := fmt.Sprintf("http://%s/debug/profile?seconds=%g", admin, seconds)
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// verifyBundle checks the zip opens and every required artifact is
// present and non-empty, returning the entry names.
func verifyBundle(body []byte, wantCPU bool) ([]string, error) {
	zr, err := zip.NewReader(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		return nil, fmt.Errorf("bundle is not a zip: %w", err)
	}
	sizes := map[string]uint64{}
	var names []string
	for _, f := range zr.File {
		sizes[f.Name] = f.UncompressedSize64
		names = append(names, f.Name)
	}
	want := requiredBundleEntries
	if wantCPU {
		want = append([]string{"cpu.pprof"}, want...)
	}
	for _, name := range want {
		if sizes[name] == 0 {
			return names, fmt.Errorf("bundle entry %s missing or empty", name)
		}
	}
	// The simulated perf-stat must actually report counters.
	f, err := zr.Open("perf-stat.txt")
	if err != nil {
		return names, err
	}
	stat, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return names, err
	}
	if !strings.Contains(string(stat), "Performance counter stats") {
		return names, fmt.Errorf("perf-stat.txt lacks the counter report")
	}
	return names, nil
}
