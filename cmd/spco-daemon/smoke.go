package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spco/internal/ctrace"
	"spco/internal/daemon"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/workload"
)

// runSmoke is the self-contained acceptance gate (`make daemon-smoke`):
// it starts a daemon on loopback ports, drives it with concurrent
// audited load through a lossy ingress wire, scrapes /metrics live,
// fetches and verifies a /debug/profile bundle, then drains and checks
// the live scrape's metric names all appear in the flushed file export.
// Everything runs in one process tree over real TCP and HTTP, so CI
// needs no curl, unzip, or port coordination.
func runSmoke(args []string) error {
	fs := flag.NewFlagSet("spco-daemon smoke", flag.ExitOnError)
	var (
		conns    = fs.Int("conns", 4, "concurrent client connections (acceptance floor: 4)")
		messages = fs.Int("messages", 5000, "arrive/post pairs to drive")
		seconds  = fs.Float64("seconds", 0.2, "CPU window for the profile bundle")
		keep     = fs.String("keep", "", "also write the profile bundle here")
		shards   = fs.Int("shards", 2, "daemon shard count the smoke runs against")
		window   = fs.Int("window", 256, "daemon credit window the smoke runs with")
	)
	fs.Parse(args)

	dir, err := os.MkdirTemp("", "spco-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	metricsOut := filepath.Join(dir, "metrics.prom")

	ecfg, err := engineConfig("sandybridge", "lla", 2, 64, 256, false, true, 0, false, &fault.CLI{})
	if err != nil {
		return err
	}
	ecfg.UMQCapacity = 4096
	ecfg.Overflow = engine.OverflowDrop
	srv, err := newServer(ecfg, "127.0.0.1:0", "127.0.0.1:0", *shards, *window,
		fault.CLI{Drop: 0.01, Dup: 0.005, Corrupt: 0.005, Seed: 1},
		ctrace.CLI{KeepAll: true},
		daemon.DefaultDrainTimeout, metricsOut, "", "", true, recoveryOpts{})
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Run(nil) }()
	fmt.Printf("smoke: daemon on %s (admin %s), %d shards, window %d, %d conns x %d pairs\n",
		srv.Addr(), srv.AdminAddr(), *shards, *window, *conns, *messages)

	fail := func(format string, a ...any) error {
		srv.Stop()
		<-errc
		return fmt.Errorf(format, a...)
	}

	// 1. Audited concurrent load through the lossy ingress.
	res, err := workload.RunDaemonChaos(workload.DaemonChaosConfig{
		Addr:      srv.Addr(),
		AdminAddr: srv.AdminAddr(),
		Load:      workload.DaemonLoadConfig{Conns: *conns, Messages: *messages, Ctxs: *conns},
	})
	if err != nil {
		return fail("chaos: %v", err)
	}
	for _, v := range res.Violations {
		fmt.Printf("smoke: !! %s\n", v)
	}
	if !res.Passed() {
		return fail("chaos audit failed with %d violations", len(res.Violations))
	}
	ld := res.Load
	fmt.Printf("smoke: load ok — %d matched (%d prq, %d umq), %d nacks retransmitted\n",
		ld.Matched(), ld.ArriveMatched, ld.PostMatched, ld.Nacks)

	// 2. Live Prometheus scrape.
	live, err := httpGet("http://" + srv.AdminAddr() + "/metrics")
	if err != nil {
		return fail("/metrics: %v", err)
	}
	liveNames := metricNameSet(live)
	for _, want := range []string{"spco_daemon_frames_total", "spco_matches_total", "spco_daemon_connections_total"} {
		if !liveNames[want] {
			return fail("/metrics scrape lacks %s", want)
		}
	}
	fmt.Printf("smoke: /metrics ok — %d metric names live\n", len(liveNames))

	// 3. Diagnostic bundle.
	body, err := fetchProfile(srv.AdminAddr(), *seconds)
	if err != nil {
		return fail("/debug/profile: %v", err)
	}
	entries, err := verifyBundle(body, *seconds > 0)
	if err != nil {
		return fail("profile bundle: %v", err)
	}
	if *keep != "" {
		if err := os.WriteFile(*keep, body, 0o644); err != nil {
			return fail("keep bundle: %v", err)
		}
	}
	fmt.Printf("smoke: profile bundle ok — %d entries (%d bytes)\n", len(entries), len(body))

	// 4. Flight-recorder dump: /debug/trace must return well-formed
	// Chrome trace JSON holding one trace per driven pair.
	dump, err := httpGet("http://" + srv.AdminAddr() + "/debug/trace")
	if err != nil {
		return fail("/debug/trace: %v", err)
	}
	rep, err := ctrace.CheckChromeJSON(strings.NewReader(dump))
	if err != nil {
		return fail("/debug/trace dump: %v", err)
	}
	if rep.Traces == 0 || rep.Spans == 0 {
		return fail("/debug/trace dump is empty: %+v", rep)
	}
	fmt.Printf("smoke: /debug/trace ok — %d traces, %d spans, %d faulted\n",
		rep.Traces, rep.Spans, rep.FaultTraces)

	// 5. Graceful drain, then live-vs-flushed metric-name parity. The
	// flush may add spco_perf_* counters (the PMU publishes once, at
	// shutdown); everything else must agree.
	srv.Stop()
	if err := <-errc; err != nil {
		return fmt.Errorf("drain: %v", err)
	}
	flushedBytes, err := os.ReadFile(metricsOut)
	if err != nil {
		return fmt.Errorf("flushed export: %v", err)
	}
	flushed := metricNameSet(string(flushedBytes))
	for name := range liveNames {
		if !flushed[name] {
			return fmt.Errorf("live metric %s absent from the flushed export", name)
		}
	}
	for name := range flushed {
		if !liveNames[name] && !strings.HasPrefix(name, "spco_perf_") {
			return fmt.Errorf("flushed metric %s never appeared in the live scrape", name)
		}
	}
	fmt.Printf("smoke: exporter parity ok — %d live names all flushed\n", len(liveNames))
	fmt.Println("smoke: PASS")
	return nil
}

// httpGet fetches a URL body with a bounded client.
func httpGet(url string) (string, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	return string(body), nil
}

// metricNameSet extracts metric names from Prometheus text format.
func metricNameSet(text string) map[string]bool {
	names := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name != "" {
			names[name] = true
		}
	}
	return names
}
