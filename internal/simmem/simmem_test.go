package simmem

import (
	"testing"
	"testing/quick"
)

func TestAddrLine(t *testing.T) {
	cases := []struct {
		addr Addr
		line uint64
		off  uint64
	}{
		{0, 0, 0},
		{63, 0, 63},
		{64, 1, 0},
		{65, 1, 1},
		{128, 2, 0},
		{0x10000, 0x400, 0},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("Addr(%#x).Line() = %d, want %d", uint64(c.addr), got, c.line)
		}
		if got := c.addr.LineOffset(); got != c.off {
			t.Errorf("Addr(%#x).LineOffset() = %d, want %d", uint64(c.addr), got, c.off)
		}
	}
}

func TestAlignUp(t *testing.T) {
	if got := Addr(1).AlignUp(64); got != 64 {
		t.Errorf("AlignUp(1,64) = %d, want 64", got)
	}
	if got := Addr(64).AlignUp(64); got != 64 {
		t.Errorf("AlignUp(64,64) = %d, want 64 (already aligned)", got)
	}
	if got := Addr(0).AlignUp(8); got != 0 {
		t.Errorf("AlignUp(0,8) = %d, want 0", got)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 100, Size: 50}
	if !r.Contains(100) || !r.Contains(149) {
		t.Error("region should contain its endpoints-1")
	}
	if r.Contains(99) || r.Contains(150) {
		t.Error("region should not contain addresses outside [base, end)")
	}
}

func TestRegionOverlaps(t *testing.T) {
	a := Region{Base: 0, Size: 100}
	b := Region{Base: 99, Size: 10}
	c := Region{Base: 100, Size: 10}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b share byte 99; should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a and c are adjacent, not overlapping")
	}
}

func TestRegionLines(t *testing.T) {
	cases := []struct {
		r    Region
		want uint64
	}{
		{Region{Base: 0, Size: 0}, 0},
		{Region{Base: 0, Size: 1}, 1},
		{Region{Base: 0, Size: 64}, 1},
		{Region{Base: 0, Size: 65}, 2},
		{Region{Base: 63, Size: 2}, 2}, // straddles a boundary
		{Region{Base: 64, Size: 128}, 2},
	}
	for _, c := range cases {
		if got := c.r.Lines(); got != c.want {
			t.Errorf("%v.Lines() = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestSpaceAllocDisjoint(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(24, 8)
	b := s.Alloc(24, 8)
	if a == b {
		t.Fatal("two allocations returned the same address")
	}
	ra := Region{Base: a, Size: 24}
	rb := Region{Base: b, Size: 24}
	if ra.Overlaps(rb) {
		t.Fatalf("allocations overlap: %v %v", ra, rb)
	}
}

func TestSpaceAllocAlignment(t *testing.T) {
	s := NewSpace()
	s.Alloc(3, 1) // perturb
	for _, align := range []uint64{1, 2, 4, 8, 16, 64, 4096} {
		addr := s.Alloc(10, align)
		if uint64(addr)%align != 0 {
			t.Errorf("Alloc(10,%d) returned unaligned address %#x", align, uint64(addr))
		}
	}
}

func TestSpaceAllocBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-power-of-two alignment")
		}
	}()
	NewSpace().Alloc(8, 3)
}

func TestSpaceNonZeroBase(t *testing.T) {
	s := NewSpace()
	if a := s.Alloc(1, 1); a == 0 {
		t.Error("first allocation must not be address 0 (reserved as nil)")
	}
}

func TestAllocLinesAligned(t *testing.T) {
	s := NewSpace()
	s.Alloc(7, 1)
	a := s.AllocLines(2)
	if a.LineOffset() != 0 {
		t.Errorf("AllocLines returned non-line-aligned address %#x", uint64(a))
	}
	if (Region{Base: a, Size: 2 * LineSize}).Lines() != 2 {
		t.Error("AllocLines(2) should span exactly 2 lines")
	}
}

func TestFreeReuseLIFO(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(64, 64)
	b := s.Alloc(64, 64)
	s.Free(a, 64)
	s.Free(b, 64)
	// LIFO: the most recently freed block (b) comes back first.
	if got := s.AllocReuse(64, 64); got != b {
		t.Errorf("AllocReuse = %#x, want most-recently-freed %#x", uint64(got), uint64(b))
	}
	if got := s.AllocReuse(64, 64); got != a {
		t.Errorf("second AllocReuse = %#x, want %#x", uint64(got), uint64(a))
	}
	// Free list drained: next reuse allocates fresh.
	c := s.AllocReuse(64, 64)
	if c == a || c == b {
		t.Error("AllocReuse with empty free list must allocate fresh memory")
	}
}

func TestAllocReuseSizeClassMiss(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(32, 8)
	s.Free(a, 32)
	if got := s.AllocReuse(64, 8); got == a {
		t.Error("AllocReuse must not reuse a block of a different size class")
	}
}

func TestSpaceCounters(t *testing.T) {
	s := NewSpace()
	s.Alloc(10, 1)
	s.Alloc(20, 1)
	if s.Allocs() != 2 {
		t.Errorf("Allocs = %d, want 2", s.Allocs())
	}
	if s.Bytes() != 30 {
		t.Errorf("Bytes = %d, want 30", s.Bytes())
	}
	if s.Footprint() < 30 {
		t.Errorf("Footprint = %d, want >= 30", s.Footprint())
	}
}

func TestArenaContiguous(t *testing.T) {
	s := NewSpace()
	a := NewArena(s, 1024)
	p1 := a.Alloc(24, 1)
	p2 := a.Alloc(24, 1)
	if p2 != p1+24 {
		t.Errorf("arena allocations not contiguous: %#x then %#x", uint64(p1), uint64(p2))
	}
	if !a.Region().Contains(p1) || !a.Region().Contains(p2+23) {
		t.Error("arena allocations must stay inside the arena region")
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	s := NewSpace()
	a := NewArena(s, 64)
	a.Alloc(60, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on arena exhaustion")
		}
	}()
	a.Alloc(8, 1)
}

func TestArenaRemaining(t *testing.T) {
	s := NewSpace()
	a := NewArena(s, 128)
	if a.Remaining() != 128 {
		t.Errorf("fresh arena Remaining = %d, want 128", a.Remaining())
	}
	a.Alloc(28, 1)
	if a.Remaining() != 100 {
		t.Errorf("Remaining after 28B = %d, want 100", a.Remaining())
	}
}

func TestRegionSetCoalesce(t *testing.T) {
	var rs RegionSet
	rs.Add(Region{Base: 0, Size: 64})
	rs.Add(Region{Base: 64, Size: 64}) // adjacent: coalesce
	if n := len(rs.Regions()); n != 1 {
		t.Fatalf("adjacent regions not coalesced: %d regions", n)
	}
	if rs.TotalBytes() != 128 {
		t.Errorf("TotalBytes = %d, want 128", rs.TotalBytes())
	}
	rs.Add(Region{Base: 32, Size: 64}) // fully inside
	if rs.TotalBytes() != 128 {
		t.Errorf("overlapping add changed TotalBytes to %d", rs.TotalBytes())
	}
	rs.Add(Region{Base: 256, Size: 64}) // disjoint
	if n := len(rs.Regions()); n != 2 {
		t.Errorf("disjoint region merged: %d regions, want 2", n)
	}
}

func TestRegionSetRemoveSplit(t *testing.T) {
	var rs RegionSet
	rs.Add(Region{Base: 0, Size: 300})
	rs.Remove(Region{Base: 100, Size: 100})
	regs := rs.Regions()
	if len(regs) != 2 {
		t.Fatalf("remove should split into 2 regions, got %d", len(regs))
	}
	if regs[0] != (Region{Base: 0, Size: 100}) || regs[1] != (Region{Base: 200, Size: 100}) {
		t.Errorf("split wrong: %v", regs)
	}
	rs.Remove(Region{Base: 0, Size: 100})
	if len(rs.Regions()) != 1 || rs.Regions()[0].Base != 200 {
		t.Errorf("exact remove failed: %v", rs.Regions())
	}
}

func TestRegionSetContains(t *testing.T) {
	var rs RegionSet
	rs.Add(Region{Base: 100, Size: 10})
	rs.Add(Region{Base: 300, Size: 10})
	for _, a := range []Addr{100, 109, 300, 309} {
		if !rs.Contains(a) {
			t.Errorf("Contains(%d) = false, want true", a)
		}
	}
	for _, a := range []Addr{99, 110, 200, 299, 310} {
		if rs.Contains(a) {
			t.Errorf("Contains(%d) = true, want false", a)
		}
	}
}

// Property: RegionSet.TotalBytes equals the measure of the union of all
// added ranges, regardless of insertion order or overlap.
func TestRegionSetUnionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		var rs RegionSet
		covered := make(map[uint64]bool)
		for i := 0; i+1 < len(raw); i += 2 {
			base := uint64(raw[i]) % 4096
			size := uint64(raw[i+1])%128 + 1
			rs.Add(Region{Base: Addr(base), Size: size})
			for b := base; b < base+size; b++ {
				covered[b] = true
			}
		}
		return rs.TotalBytes() == uint64(len(covered))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: after any Add/Remove sequence, regions are sorted, non-empty,
// and non-overlapping.
func TestRegionSetInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		var rs RegionSet
		for i := 0; i+2 < len(ops); i += 3 {
			r := Region{Base: Addr(ops[i] % 2048), Size: uint64(ops[i+1])%256 + 1}
			if ops[i+2]%3 == 0 {
				rs.Remove(r)
			} else {
				rs.Add(r)
			}
		}
		regs := rs.Regions()
		for i, r := range regs {
			if r.Size == 0 {
				return false
			}
			if i > 0 && regs[i-1].End() > r.Base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
