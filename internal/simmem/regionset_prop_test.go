package simmem

import (
	"math/rand"
	"sort"
	"testing"
)

// Reference implementations of Add/Remove (the original sort-and-rebuild
// algorithms), used to cross-check the in-place versions over random op
// streams.

type refSet struct{ regions []Region }

func (rs *refSet) add(r Region) {
	if r.Size == 0 {
		return
	}
	rs.regions = append(rs.regions, r)
	sort.Slice(rs.regions, func(i, j int) bool {
		return rs.regions[i].Base < rs.regions[j].Base
	})
	merged := rs.regions[:1]
	for _, next := range rs.regions[1:] {
		last := &merged[len(merged)-1]
		if next.Base <= last.End() {
			if next.End() > last.End() {
				last.Size = uint64(next.End() - last.Base)
			}
		} else {
			merged = append(merged, next)
		}
	}
	rs.regions = merged
}

func (rs *refSet) remove(r Region) {
	if r.Size == 0 {
		return
	}
	var out []Region
	for _, cur := range rs.regions {
		if !cur.Overlaps(r) {
			out = append(out, cur)
			continue
		}
		if cur.Base < r.Base {
			out = append(out, Region{Base: cur.Base, Size: uint64(r.Base - cur.Base)})
		}
		if cur.End() > r.End() {
			out = append(out, Region{Base: r.End(), Size: uint64(cur.End() - r.End())})
		}
	}
	rs.regions = out
}

func regionsEqual(a, b []Region) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRegionSetMatchesReference drives random add/remove streams through
// the in-place RegionSet and the reference rebuild algorithm and demands
// identical region lists after every operation.
func TestRegionSetMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var got RegionSet
		var want refSet
		for op := 0; op < 4000; op++ {
			r := Region{
				Base: Addr(rng.Intn(512) * 16),
				Size: uint64(rng.Intn(5) * 16), // size 0 included
			}
			if rng.Intn(3) == 0 {
				got.Remove(r)
				want.remove(r)
			} else {
				got.Add(r)
				want.add(r)
			}
			if !regionsEqual(got.Regions(), want.regions) {
				t.Fatalf("seed %d op %d %v: got %v want %v",
					seed, op, r, got.Regions(), want.regions)
			}
		}
	}
}

// TestRegionSetSteadyStateZeroAlloc: once capacity has warmed up, a
// balanced add/remove churn must not allocate — this is what keeps the
// pooled match structures' region bookkeeping off the Go heap.
func TestRegionSetSteadyStateZeroAlloc(t *testing.T) {
	var rs RegionSet
	for i := 0; i < 64; i++ {
		rs.Add(Region{Base: Addr(i * 128), Size: 64})
	}
	churn := func() {
		rs.Remove(Region{Base: 17 * 128, Size: 64})
		rs.Add(Region{Base: 17 * 128, Size: 64})
		rs.Remove(Region{Base: 0, Size: 64})
		rs.Add(Region{Base: 0, Size: 64})
	}
	churn() // warm capacity
	if n := testing.AllocsPerRun(100, churn); n != 0 {
		t.Fatalf("steady-state RegionSet churn allocates %.1f times per run", n)
	}
}
