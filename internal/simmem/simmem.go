// Package simmem provides a simulated flat address space and allocators.
//
// The reproduction's central substitution (see DESIGN.md) is a software
// memory hierarchy: every byte a match-list structure touches must have a
// stable address that the cache simulator (internal/cache) can map to a
// cache line. simmem supplies those addresses.
//
// Addresses are plain uint64 values in a synthetic address space. Nothing
// is ever stored at the addresses; the data structures keep their payload
// in ordinary Go values and use the simulated address only for locality
// accounting. This separation keeps the structures testable in isolation
// and keeps the simulator deterministic regardless of the Go allocator.
package simmem

import (
	"fmt"
	"sort"
)

// LineSize is the cache-line granularity of the simulated machines.
// All x86 processors studied in the paper use 64-byte lines.
const LineSize = 64

// Addr is a simulated virtual address.
type Addr uint64

// Line returns the cache-line index containing the address.
func (a Addr) Line() uint64 { return uint64(a) / LineSize }

// LineOffset returns the byte offset of the address within its line.
func (a Addr) LineOffset() uint64 { return uint64(a) % LineSize }

// AlignUp rounds the address up to the next multiple of align.
// align must be a power of two.
func (a Addr) AlignUp(align uint64) Addr {
	return Addr((uint64(a) + align - 1) &^ (align - 1))
}

// Region is a contiguous range of simulated memory.
type Region struct {
	Base Addr
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether addr lies within the region.
func (r Region) Contains(addr Addr) bool {
	return addr >= r.Base && addr < r.End()
}

// Overlaps reports whether the two regions share any byte.
func (r Region) Overlaps(o Region) bool {
	return r.Base < o.End() && o.Base < r.End()
}

// Lines returns the number of distinct cache lines the region spans.
func (r Region) Lines() uint64 {
	if r.Size == 0 {
		return 0
	}
	first := r.Base.Line()
	last := (r.End() - 1).Line()
	return last - first + 1
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint64(r.Base), uint64(r.End()))
}

// Space is a simulated address space served by a bump allocator.
// It is not safe for concurrent use; callers that share a Space across
// goroutines must serialise access (the matching engine owns its Space).
type Space struct {
	next     Addr
	base     Addr
	allocs   uint64
	bytes    uint64
	freeList map[uint64][]Addr // size class -> reusable blocks
}

// NewSpace returns an empty address space. The base address is chosen
// away from zero so that a zero Addr can serve as a nil-pointer sentinel.
func NewSpace() *Space {
	const base = 0x10000
	return &Space{next: base, base: base, freeList: make(map[uint64][]Addr)}
}

// Alloc reserves size bytes aligned to align (power of two, >= 1) and
// returns the base address. Size 0 allocations return a unique address.
func (s *Space) Alloc(size, align uint64) Addr {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("simmem: alignment %d is not a power of two", align))
	}
	addr := s.next.AlignUp(align)
	if size == 0 {
		size = 1
	}
	s.next = addr + Addr(size)
	s.allocs++
	s.bytes += size
	return addr
}

// AllocLines reserves n full cache lines, line-aligned.
func (s *Space) AllocLines(n uint64) Addr {
	return s.Alloc(n*LineSize, LineSize)
}

// Free returns a block to the per-size free list for reuse by AllocReuse.
// The simulator has no notion of use-after-free; Free exists so pool-based
// structures (the LLA element pool) can model address reuse, which matters
// for temporal locality: a recycled node is likely still cached.
func (s *Space) Free(addr Addr, size uint64) {
	s.freeList[size] = append(s.freeList[size], addr)
}

// AllocReuse behaves like Alloc but preferentially reuses a freed block of
// exactly the same size, modeling a slab/pool allocator. Reuse is LIFO so
// the hottest (most recently freed, hence most likely cached) block is
// handed out first, as real free lists do.
func (s *Space) AllocReuse(size, align uint64) Addr {
	if blocks := s.freeList[size]; len(blocks) > 0 {
		addr := blocks[len(blocks)-1]
		s.freeList[size] = blocks[:len(blocks)-1]
		if uint64(addr)%align == 0 {
			s.allocs++
			return addr
		}
		// Alignment mismatch: put it back and fall through.
		s.freeList[size] = append(s.freeList[size], addr)
	}
	return s.Alloc(size, align)
}

// Allocs returns the number of allocations served.
func (s *Space) Allocs() uint64 { return s.allocs }

// Bytes returns the total bytes ever allocated (freed blocks included).
func (s *Space) Bytes() uint64 { return s.bytes }

// Footprint returns the extent of the space actually handed out.
func (s *Space) Footprint() uint64 { return uint64(s.next - s.base) }

// Arena is a region-scoped bump allocator carved out of a Space.
// Arenas give a structure contiguous placement: consecutive Alloc calls
// return consecutive addresses, which is how the linked list of arrays
// achieves its spatial locality.
type Arena struct {
	region Region
	next   Addr
}

// NewArena carves a fresh line-aligned arena of size bytes from the space.
func NewArena(s *Space, size uint64) *Arena {
	base := s.Alloc(size, LineSize)
	return &Arena{region: Region{Base: base, Size: size}, next: base}
}

// Alloc reserves size bytes aligned to align within the arena.
// It panics if the arena is exhausted; arenas are sized by their owners.
func (a *Arena) Alloc(size, align uint64) Addr {
	addr := a.next.AlignUp(align)
	if addr+Addr(size) > a.region.End() {
		panic(fmt.Sprintf("simmem: arena %v exhausted (want %d bytes)", a.region, size))
	}
	a.next = addr + Addr(size)
	return addr
}

// Remaining returns the bytes left in the arena.
func (a *Arena) Remaining() uint64 { return uint64(a.region.End() - a.next) }

// Region returns the arena's full extent.
func (a *Arena) Region() Region { return a.region }

// RegionSet tracks a mutable set of regions, merging and iterating in
// address order. The hot-caching heater uses one to know which lines to
// touch on each sweep. Both mutators work in place over the sorted
// slice, so a set whose population has stabilised (the steady state of
// a pooled match structure) adds and removes regions without heap
// allocation.
type RegionSet struct {
	regions []Region
}

// Add inserts a region. Overlapping or adjacent regions are coalesced.
func (rs *RegionSet) Add(r Region) {
	if r.Size == 0 {
		return
	}
	// lo..hi-1 are the existing regions that overlap or touch r.
	lo := sort.Search(len(rs.regions), func(i int) bool {
		return rs.regions[i].End() >= r.Base
	})
	hi := lo
	for hi < len(rs.regions) && rs.regions[hi].Base <= r.End() {
		hi++
	}
	if lo == hi {
		// Disjoint: open a slot at lo and insert.
		rs.regions = append(rs.regions, Region{})
		copy(rs.regions[lo+1:], rs.regions[lo:])
		rs.regions[lo] = r
		return
	}
	base := r.Base
	if b := rs.regions[lo].Base; b < base {
		base = b
	}
	end := r.End()
	if e := rs.regions[hi-1].End(); e > end {
		end = e
	}
	rs.regions[lo] = Region{Base: base, Size: uint64(end - base)}
	n := copy(rs.regions[lo+1:], rs.regions[hi:])
	rs.regions = rs.regions[:lo+1+n]
}

// Remove deletes the given range from the set, splitting regions that
// straddle it.
func (rs *RegionSet) Remove(r Region) {
	if r.Size == 0 || len(rs.regions) == 0 {
		return
	}
	// lo..hi-1 are the regions overlapping r (strictly: touching-only
	// neighbours are untouched).
	lo := sort.Search(len(rs.regions), func(i int) bool {
		return rs.regions[i].End() > r.Base
	})
	hi := lo
	for hi < len(rs.regions) && rs.regions[hi].Base < r.End() {
		hi++
	}
	if lo == hi {
		return
	}
	var left, right Region
	hasLeft := rs.regions[lo].Base < r.Base
	if hasLeft {
		left = Region{Base: rs.regions[lo].Base, Size: uint64(r.Base - rs.regions[lo].Base)}
	}
	hasRight := rs.regions[hi-1].End() > r.End()
	if hasRight {
		right = Region{Base: r.End(), Size: uint64(rs.regions[hi-1].End() - r.End())}
	}
	keep := 0
	if hasLeft {
		keep++
	}
	if hasRight {
		keep++
	}
	if keep > hi-lo {
		// A single region split in two: open one extra slot.
		rs.regions = append(rs.regions, Region{})
		copy(rs.regions[hi+1:], rs.regions[hi:])
		hi++
	}
	w := lo
	if hasLeft {
		rs.regions[w] = left
		w++
	}
	if hasRight {
		rs.regions[w] = right
		w++
	}
	n := copy(rs.regions[w:], rs.regions[hi:])
	rs.regions = rs.regions[:w+n]
}

// Regions returns the current regions in address order. The returned slice
// must not be mutated.
func (rs *RegionSet) Regions() []Region { return rs.regions }

// TotalBytes returns the summed size of all regions.
func (rs *RegionSet) TotalBytes() uint64 {
	var n uint64
	for _, r := range rs.regions {
		n += r.Size
	}
	return n
}

// TotalLines returns the summed distinct cache lines across regions.
// Regions in the set never overlap, so lines are counted at most once
// unless two regions share a boundary line, which coalescing prevents
// for adjacent regions.
func (rs *RegionSet) TotalLines() uint64 {
	var n uint64
	for _, r := range rs.regions {
		n += r.Lines()
	}
	return n
}

// Contains reports whether addr is inside any region of the set.
func (rs *RegionSet) Contains(addr Addr) bool {
	i := sort.Search(len(rs.regions), func(i int) bool {
		return rs.regions[i].End() > addr
	})
	return i < len(rs.regions) && rs.regions[i].Contains(addr)
}
