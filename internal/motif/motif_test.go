package motif

import (
	"math/rand"
	"testing"

	"spco/internal/trace"
)

func small(seed int64) Config {
	return Config{SampleRanks: 64, Phases: 5, Seed: seed}
}

func TestPhaseSimConservation(t *testing.T) {
	// Every post is eventually consumed: after a phase both queues are
	// empty, and sample counts equal 2*posts (one per mutation).
	res := &Result{Posted: trace.NewHistogram(1), Unexpected: trace.NewHistogram(1)}
	rng := rand.New(rand.NewSource(1))
	const posts = 100
	phaseSim(rng, posts, 0.5, 1, res, nil)
	if res.Posted.Total() != 2*posts || res.Unexpected.Total() != 2*posts {
		t.Errorf("samples = %d/%d, want %d each", res.Posted.Total(), res.Unexpected.Total(), 2*posts)
	}
	// Queue lengths can never exceed the post count.
	if res.Posted.Max() > posts || res.Unexpected.Max() > posts {
		t.Errorf("max lengths %d/%d exceed posts %d", res.Posted.Max(), res.Unexpected.Max(), posts)
	}
}

func TestPhaseSimPrepostBiasExtremes(t *testing.T) {
	// Bias 1: everything pre-posted, no unexpected messages at all.
	res := &Result{Posted: trace.NewHistogram(1), Unexpected: trace.NewHistogram(1)}
	rng := rand.New(rand.NewSource(2))
	phaseSim(rng, 50, 1.0, 1, res, nil)
	if res.Unexpected.Max() != 0 {
		t.Errorf("bias=1 produced unexpected messages (max %d)", res.Unexpected.Max())
	}
	if res.Posted.Max() != 50 {
		t.Errorf("bias=1 posted max = %d, want 50 (all posted before any arrival)", res.Posted.Max())
	}

	// Bias 0: arrivals drain first, everything is unexpected.
	res2 := &Result{Posted: trace.NewHistogram(1), Unexpected: trace.NewHistogram(1)}
	phaseSim(rng, 50, 0.0, 1, res2, nil)
	if res2.Posted.Max() != 0 {
		t.Errorf("bias=0 posted max = %d, want 0", res2.Posted.Max())
	}
	if res2.Unexpected.Max() != 50 {
		t.Errorf("bias=0 unexpected max = %d, want 50", res2.Unexpected.Max())
	}
}

func TestMotifsDeterministic(t *testing.T) {
	a := AMR(small(7))
	b := AMR(small(7))
	ba, bb := a.Posted.Buckets(), b.Posted.Buckets()
	if len(ba) != len(bb) {
		t.Fatal("same seed produced different bucket counts")
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("same seed produced different histograms at bucket %d", i)
		}
	}
	c := AMR(small(8))
	if c.Posted.Total() == 0 {
		t.Fatal("empty result")
	}
}

// Figure 1's qualitative shapes: AMR reaches the mid-400s with abundant
// mid-100s; Sweep3D stays under ~200 (tail into the low hundreds);
// Halo3D stays under 100 with most mass at very short lengths.
func TestFigure1Shapes(t *testing.T) {
	amr := AMR(Config{SampleRanks: 256, Phases: 10, Seed: 42})
	if amr.Posted.Max() < 250 || amr.Posted.Max() > 600 {
		t.Errorf("AMR max length = %d, want mid-hundreds", amr.Posted.Max())
	}
	// Mid-100s must be abundant: buckets covering 100-199 should hold a
	// nontrivial share.
	var mid, total uint64
	for _, b := range amr.Posted.Buckets() {
		total += b.Count
		if b.Lo >= 100 && b.Hi < 200 {
			mid += b.Count
		}
	}
	if total == 0 || float64(mid)/float64(total) < 0.05 {
		t.Errorf("AMR mid-100 lengths not abundant: %d/%d", mid, total)
	}

	sweep := Sweep3D(Config{SampleRanks: 256, Phases: 3, Seed: 42})
	if sweep.Posted.Max() > 200 {
		t.Errorf("Sweep3D max = %d, want <= ~200", sweep.Posted.Max())
	}
	if sweep.Posted.Max() < 120 {
		t.Errorf("Sweep3D max = %d, want into the low hundreds", sweep.Posted.Max())
	}

	halo := Halo3D(Config{SampleRanks: 256, Phases: 10, Seed: 42})
	if halo.Posted.Max() >= 100 {
		t.Errorf("Halo3D max = %d, want < 100", halo.Posted.Max())
	}
	// Most samples at short lengths: bucket 0-4 dominates.
	b := halo.Posted.Buckets()
	if len(b) == 0 || b[0].Count*2 < halo.Posted.Total()/4 {
		t.Error("Halo3D should concentrate at very short lengths")
	}
}

func TestScalingWeights(t *testing.T) {
	// Occurrences scale with the represented rank count.
	small := Halo3D(Config{Ranks: 1024, SampleRanks: 64, Phases: 2, Seed: 3})
	big := Halo3D(Config{Ranks: 64 * 1024, SampleRanks: 64, Phases: 2, Seed: 3})
	if big.Posted.Total() != small.Posted.Total()*64 {
		t.Errorf("scaling: %d vs %d (want 64x)", big.Posted.Total(), small.Posted.Total())
	}
}

func TestDefaultRankCounts(t *testing.T) {
	amr := AMR(Config{SampleRanks: 16, Phases: 1})
	if amr.Ranks != 64*1024 {
		t.Errorf("AMR default ranks = %d, want 64K", amr.Ranks)
	}
	sw := Sweep3D(Config{SampleRanks: 16, Phases: 1})
	if sw.Ranks != 128*1024 {
		t.Errorf("Sweep3D default ranks = %d, want 128K", sw.Ranks)
	}
	h := Halo3D(Config{SampleRanks: 16, Phases: 1})
	if h.Ranks != 256*1024 {
		t.Errorf("Halo3D default ranks = %d, want 256K", h.Ranks)
	}
	if h.Posted.BucketWidth != 5 || sw.Posted.BucketWidth != 10 || amr.Posted.BucketWidth != 20 {
		t.Error("default bucket widths should be 20/10/5 as in Figure 1")
	}
}
