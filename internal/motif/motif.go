// Package motif reproduces the SST-derived queue-length study of
// Section 2.3 (Figure 1): three communication motifs — adaptive mesh
// refinement (AMR), a 3D sweep (Sweep3D), and a 3D halo exchange
// (Halo3D) — replayed at large scale with match-list lengths sampled on
// every list addition and deletion.
//
// The paper ran these motifs inside the SST macro simulator at 64K-256K
// processes. Here each motif is implemented directly as the queueing
// process its communication pattern induces: per communication phase a
// rank posts R receives and receives R messages whose arrival order is
// a seeded random interleaving of the posting order; arrivals that beat
// their receive go to the unexpected queue. A representative sample of
// ranks is simulated and occurrence counts are scaled to the full rank
// count, which preserves the length distributions (lengths are a
// per-rank property, independent across ranks under these motifs).
package motif

import (
	"math/rand"
	"strconv"

	"spco/internal/stencil"
	"spco/internal/telemetry"
	"spco/internal/trace"
)

// Result holds the two histograms of one motif run (Figure 1 plots the
// posted and unexpected histograms of a motif side by side).
type Result struct {
	Name       string
	Ranks      int // full-scale rank count represented
	Posted     *trace.Histogram
	Unexpected *trace.Histogram
}

// Event is one simulated queue mutation, for the -events-out JSONL
// export: a post that either appends to the PRQ or consumes a waiting
// unexpected message, or an arrival that either matches a posted
// receive or appends to the UMQ.
type Event struct {
	Rank    int    `json:"rank"`
	Phase   int    `json:"phase"`
	Op      string `json:"op"` // "post" or "arrive"
	Matched bool   `json:"matched"`
	PRQ     int    `json:"prq"`
	UMQ     int    `json:"umq"`
}

// instr carries a motif run's optional telemetry wiring; a nil *instr
// leaves phaseSim on the uninstrumented path.
type instr struct {
	col      *telemetry.Collector
	obs      func(Event)
	series   telemetry.Labels
	interval uint64 // record series every interval-th event (min 1)
	ranks    int    // series recorded for ranks < ranks
	now      uint64 // event clock (queue mutations)
	rank     int
	phase    int
}

func newInstr(c Config, name string) *instr {
	if c.Telemetry == nil && c.Observer == nil {
		return nil
	}
	in := &instr{col: c.Telemetry, obs: c.Observer, interval: c.SeriesInterval, ranks: c.SeriesRanks}
	if in.interval == 0 {
		in.interval = 1
	}
	if in.ranks == 0 {
		in.ranks = 1
	}
	if in.col != nil {
		in.series = telemetry.MergeLabels(in.col.Base,
			telemetry.Labels{"motif": name, "inst": in.col.NextInstance()})
	}
	return in
}

// emit records one queue mutation: always to the observer, and to the
// time series for the representative ranks at the configured cadence.
func (in *instr) emit(op string, matched bool, prq, umq int) {
	if in == nil {
		return
	}
	in.now++
	if in.obs != nil {
		in.obs(Event{Rank: in.rank, Phase: in.phase, Op: op, Matched: matched, PRQ: prq, UMQ: umq})
	}
	if in.col != nil && in.rank < in.ranks && in.now%in.interval == 0 {
		s := in.col.Sampler
		s.Record("spco_motif_queue_len",
			telemetry.MergeLabels(in.series, telemetry.Labels{"queue": "prq"}), in.now, float64(prq))
		s.Record("spco_motif_queue_len",
			telemetry.MergeLabels(in.series, telemetry.Labels{"queue": "umq"}), in.now, float64(umq))
	}
}

// at positions the instrumentation at one rank's phase.
func (in *instr) at(rank, phase int) {
	if in != nil {
		in.rank, in.phase = rank, phase
	}
}

// phaseSim replays one communication phase for one rank: posts receives
// and processes arrivals in a randomly interleaved order, sampling both
// queue lengths after every mutation.
//
// posts is the number of receives the phase posts; each message i
// matches post i. prepostBias in [0,1] is the probability that, when
// both a post and an arrival are pending, the post happens first —
// high bias models well-synchronised BSP phases (receives pre-posted),
// low bias produces unexpected messages.
func phaseSim(rng *rand.Rand, posts int, prepostBias float64, weight uint64, res *Result, in *instr) {
	arrival := rng.Perm(posts) // arrival order of messages
	posted := make([]bool, posts)
	arrived := make([]bool, posts)

	prqLen, umqLen := 0, 0
	sample := func() {
		res.Posted.ObserveN(prqLen, weight)
		res.Unexpected.ObserveN(umqLen, weight)
	}

	pi, ai := 0, 0 // next post index, next arrival event index
	for pi < posts || ai < posts {
		doPost := pi < posts && (ai >= posts || rng.Float64() < prepostBias)
		if doPost {
			i := pi
			pi++
			if arrived[i] {
				// The message is waiting in the UMQ: the receive
				// consumes it instead of being posted.
				umqLen--
			} else {
				posted[i] = true
				prqLen++
			}
			sample()
			in.emit("post", arrived[i], prqLen, umqLen)
		} else {
			i := arrival[ai]
			ai++
			arrived[i] = true
			matched := posted[i]
			if posted[i] {
				posted[i] = false
				prqLen--
			} else {
				umqLen++
			}
			sample()
			in.emit("arrive", matched, prqLen, umqLen)
		}
	}
}

// publish folds the finished histograms into the collector's registry
// as bucket-labeled counters (the Figure 1 series, exportable through
// the standard writers). A no-op without a collector.
func publish(c Config, res *Result) {
	if c.Telemetry == nil {
		return
	}
	reg := c.Telemetry.Registry
	reg.Help("spco_motif_list_length_total",
		"Scaled match-list length occurrences per histogram bucket.")
	reg.Help("spco_motif_samples_total", "Scaled queue-length samples observed.")
	base := telemetry.MergeLabels(c.Telemetry.Base, telemetry.Labels{"motif": res.Name})
	for _, q := range []struct {
		name string
		h    *trace.Histogram
	}{{"prq", res.Posted}, {"umq", res.Unexpected}} {
		l := telemetry.MergeLabels(base, telemetry.Labels{"queue": q.name})
		for _, b := range q.h.Buckets() {
			reg.Counter("spco_motif_list_length_total", telemetry.MergeLabels(l, telemetry.Labels{
				"lo": strconv.Itoa(b.Lo), "hi": strconv.Itoa(b.Hi),
			})).Add(float64(b.Count))
		}
		reg.Counter("spco_motif_samples_total", l).Add(float64(q.h.Total()))
	}
}

// Config tunes a motif run.
type Config struct {
	Ranks       int   // full-scale rank count (64K/128K/256K in the paper)
	SampleRanks int   // ranks actually simulated (occurrences are scaled)
	Phases      int   // communication phases replayed per rank
	Seed        int64 // RNG seed (runs are deterministic per seed)
	BucketWidth int   // histogram bucket width (20/10/5 in Figure 1)

	// Telemetry, when set, receives the run's queue-length time series
	// (for the first SeriesRanks simulated ranks, every SeriesInterval
	// queue events) and, at the end, the histogram buckets as registry
	// counters. Nil leaves the replay uninstrumented.
	Telemetry *telemetry.Collector

	// SeriesInterval thins the series: record every Nth queue event
	// (0 = every event).
	SeriesInterval uint64

	// SeriesRanks is how many simulated ranks contribute series
	// (0 = the first rank only; lengths are i.i.d. across ranks, so one
	// representative rank is usually enough).
	SeriesRanks int

	// Observer, when set, receives every simulated queue mutation
	// (cmd/spco-motif wires the JSONL event writer here).
	Observer func(Event)
}

func (c *Config) defaults(ranks, bucket int) {
	if c.Ranks == 0 {
		c.Ranks = ranks
	}
	if c.SampleRanks == 0 {
		c.SampleRanks = 1024
	}
	if c.SampleRanks > c.Ranks {
		c.SampleRanks = c.Ranks
	}
	if c.Phases == 0 {
		c.Phases = 50
	}
	if c.BucketWidth == 0 {
		c.BucketWidth = bucket
	}
}

func newResult(name string, c Config) *Result {
	return &Result{
		Name:       name,
		Ranks:      c.Ranks,
		Posted:     trace.NewHistogram(c.BucketWidth),
		Unexpected: trace.NewHistogram(c.BucketWidth),
	}
}

// AMR replays the adaptive-mesh-refinement motif (Figure 1a, 64K ranks,
// bucket width 20). Ranks own blocks at different refinement levels;
// a level-L rank exchanges with its 6 face neighbours per block, and
// refined blocks multiply both block count and neighbour fan-out
// (refined faces see up to 4 fine neighbours). Most ranks sit at
// moderate refinement — list lengths in the mid-100s — while the rare
// doubly-refined ranks reach the mid-400s, reproducing the paper's
// observation that mid-100 lengths are the abundant, search-intensive
// case.
func AMR(c Config) *Result {
	c.defaults(64*1024, 20)
	res := newResult("amr", c)
	rng := rand.New(rand.NewSource(c.Seed))
	weight := uint64(c.Ranks / c.SampleRanks)
	in := newInstr(c, "amr")

	for r := 0; r < c.SampleRanks; r++ {
		// Refinement level: 0 coarse (30%), 1 (55%), 2 (15%). Octree
		// refinement multiplies a rank's block count; each block
		// exchanges with ~6 face neighbours plus fine-coarse transfers.
		var blocks, fanout int
		switch p := rng.Float64(); {
		case p < 0.30: // coarse: a handful of blocks
			blocks, fanout = 1+rng.Intn(4), 6
		case p < 0.85: // once-refined: the abundant mid-length case
			blocks, fanout = 8+rng.Intn(17), 7
		default: // doubly-refined hotspots: the mid-400s tail
			blocks, fanout = 56+rng.Intn(17), 7
		}
		for ph := 0; ph < c.Phases; ph++ {
			posts := blocks*fanout + rng.Intn(1+blocks/4)
			in.at(r, ph)
			// AMR phases pre-post fairly aggressively.
			phaseSim(rng, posts, 0.85, weight, res, in)
		}
	}
	publish(c, res)
	return res
}

// Sweep3D replays the wavefront-sweep motif (Figure 1b, 128K ranks,
// bucket width 10). A KBA sweep on a 2D process grid receives from two
// upstream neighbours per angle-block; blocks from several octants
// pipeline through a rank, so receives accumulate into the low hundreds
// before the wavefront passes.
func Sweep3D(c Config) *Result {
	c.defaults(128*1024, 10)
	res := newResult("sweep3d", c)
	rng := rand.New(rand.NewSource(c.Seed))
	weight := uint64(c.Ranks / c.SampleRanks)
	in := newInstr(c, "sweep3d")

	for r := 0; r < c.SampleRanks; r++ {
		// Position in the wavefront pipeline determines how many
		// angle-block messages pile up before the rank can drain them:
		// corner ranks see single blocks, central ranks see most of the
		// pipelined stream at once.
		pipeline := 1 + rng.Intn(100) // pipelined blocks at this rank
		for ph := 0; ph < c.Phases; ph++ {
			octants := 8
			for o := 0; o < octants; o++ {
				// Two upstream neighbours per block.
				posts := 2 * pipeline
				if posts > 199 {
					posts = 199
				}
				in.at(r, ph)
				// Sweeps pre-post aggressively (receives are known).
				phaseSim(rng, posts, 0.9, weight, res, in)
			}
		}
	}
	publish(c, res)
	return res
}

// Halo3D replays the nearest-neighbour halo exchange (Figure 1c, 256K
// ranks, bucket width 5): a 7-point stencil exchanging a handful of
// field variables per phase. Lists stay short — the pattern the paper
// notes requires good short-list performance — with a thin tail from
// ranks exchanging many variables.
func Halo3D(c Config) *Result {
	c.defaults(256*1024, 5)
	res := newResult("halo3d", c)
	rng := rand.New(rand.NewSource(c.Seed))
	weight := uint64(c.Ranks / c.SampleRanks)
	in := newInstr(c, "halo3d")

	neighbours := len(stencil.Star3D7.Offsets())
	for r := 0; r < c.SampleRanks; r++ {
		// Field variables exchanged per phase: typically a few, rarely
		// over a dozen (multi-physics ranks).
		vars := 1 + rng.Intn(4)
		if rng.Float64() < 0.05 {
			vars = 8 + rng.Intn(8)
		}
		for ph := 0; ph < c.Phases; ph++ {
			posts := neighbours * vars
			in.at(r, ph)
			phaseSim(rng, posts, 0.8, weight, res, in)
		}
	}
	publish(c, res)
	return res
}
