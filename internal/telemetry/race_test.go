package telemetry

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestScrapeWhileMutate drives every export path concurrently with
// writers hammering counters, gauges, histograms, the sampler, and —
// the hard case — creation of brand-new metrics mid-scrape. Run under
// -race (CI does) this locks in the daemon's core requirement: a live
// Prometheus scrape must be safe against an engine mutating the same
// registry.
func TestScrapeWhileMutate(t *testing.T) {
	c := NewCollector(Labels{"run": "race"})
	reg, s := c.Registry, c.Sampler
	reg.Help("spco_race_ops_total", "racing counter")

	const (
		writers = 4
		scrapes = 50
		ops     = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				reg.Counter("spco_race_ops_total", Labels{"op": "arrive"}).Inc()
				reg.Gauge("spco_race_queue_len", Labels{"queue": "umq"}).Set(float64(i))
				reg.Histogram("spco_race_op_cycles", Labels{"op": "arrive"}, CycleBuckets).
					Observe(float64(i))
				// Fresh name+label combinations force metric creation to
				// race against snapshotting scrapers.
				reg.Counter(fmt.Sprintf("spco_race_new_%d_total", i%97),
					Labels{"w": fmt.Sprint(w)}).Inc()
				s.Record("spco_race_series", Labels{"w": fmt.Sprint(w)}, uint64(i), float64(i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			if err := WritePrometheus(io.Discard, reg); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if err := WriteJSONL(io.Discard, reg, s); err != nil {
				t.Errorf("WriteJSONL: %v", err)
				return
			}
			if err := WriteCSV(io.Discard, reg); err != nil {
				t.Errorf("WriteCSV: %v", err)
				return
			}
			if err := WriteSeriesCSV(io.Discard, s); err != nil {
				t.Errorf("WriteSeriesCSV: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	want := float64(writers * ops)
	if got := reg.Counter("spco_race_ops_total", Labels{"op": "arrive"}).Value(); got != want {
		t.Errorf("counter lost updates under concurrent scrape: got %g want %g", got, want)
	}
	if got := reg.Histogram("spco_race_op_cycles", Labels{"op": "arrive"}, CycleBuckets).Count(); got != uint64(want) {
		t.Errorf("histogram lost observations: got %d want %g", got, want)
	}
}

// TestSamplerSnapshotIsolated verifies Get/Series hand back copies: a
// reader's slice must not observe points recorded after the call.
func TestSamplerSnapshotIsolated(t *testing.T) {
	s := NewSampler()
	s.Record("x", nil, 1, 1)
	snap := s.Get("x", nil)
	all := s.Series()
	s.Record("x", nil, 2, 2)
	if len(snap.Points) != 1 {
		t.Errorf("Get snapshot grew to %d points", len(snap.Points))
	}
	if len(all[0].Points) != 1 {
		t.Errorf("Series snapshot grew to %d points", len(all[0].Points))
	}
	if got := s.Get("x", nil); len(got.Points) != 2 {
		t.Errorf("live series has %d points, want 2", len(got.Points))
	}
}
