package telemetry

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// SamplePoint is one time-series observation. T is simulated time in
// engine cycles (not wall clock): the simulator is deterministic, so
// identical runs produce identical series.
type SamplePoint struct {
	T uint64
	V float64
}

// TimeSeries is a named, labeled sequence of sample points in record
// order (the engine records with monotonically nondecreasing T).
type TimeSeries struct {
	Name   string
	Labels Labels
	Points []SamplePoint
}

// Last returns the most recent point (zero value when empty).
func (ts *TimeSeries) Last() SamplePoint {
	if len(ts.Points) == 0 {
		return SamplePoint{}
	}
	return ts.Points[len(ts.Points)-1]
}

// MinV and MaxV return the value extrema (0 when empty).
func (ts *TimeSeries) MinV() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	m := ts.Points[0].V
	for _, p := range ts.Points[1:] {
		if p.V < m {
			m = p.V
		}
	}
	return m
}

// MaxV returns the largest value in the series (0 when empty).
func (ts *TimeSeries) MaxV() float64 {
	if len(ts.Points) == 0 {
		return 0
	}
	m := ts.Points[0].V
	for _, p := range ts.Points[1:] {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Sampler records time series against simulated time. Recording is
// cheap (one map lookup and an append); series identity is name+labels.
type Sampler struct {
	mu     sync.Mutex
	series map[string]*TimeSeries
}

// NewSampler returns an empty sampler.
func NewSampler() *Sampler {
	return &Sampler{series: make(map[string]*TimeSeries)}
}

// Record appends a point to the series with the given name and labels,
// creating the series on first use.
func (s *Sampler) Record(name string, labels Labels, t uint64, v float64) {
	key := name + "\x00" + labelKey(labels)
	s.mu.Lock()
	ts, ok := s.series[key]
	if !ok {
		ts = &TimeSeries{Name: name, Labels: MergeLabels(labels)}
		s.series[key] = ts
	}
	ts.Points = append(ts.Points, SamplePoint{T: t, V: v})
	s.mu.Unlock()
}

// snapshot copies a series under the sampler lock. Readers (exporters,
// the live /metrics scrape) must never share a Points slice with the
// recorder: append may grow or write the backing array concurrently.
func (ts *TimeSeries) snapshot() *TimeSeries {
	return &TimeSeries{
		Name:   ts.Name,
		Labels: ts.Labels, // immutable after creation
		Points: append([]SamplePoint(nil), ts.Points...),
	}
}

// Get returns a point-in-time copy of the series with the given name
// and labels, or nil. The copy is safe to read while recording
// continues.
func (s *Sampler) Get(name string, labels Labels) *TimeSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.series[name+"\x00"+labelKey(labels)]
	if !ok {
		return nil
	}
	return ts.snapshot()
}

// Series returns point-in-time copies of all series sorted by name then
// label key, safe to read while recording continues (the daemon's live
// scrape path depends on this).
func (s *Sampler) Series() []*TimeSeries {
	s.mu.Lock()
	out := make([]*TimeSeries, 0, len(s.series))
	for _, ts := range s.series {
		out = append(out, ts.snapshot())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

// Find returns all series with the given name (any labels), sorted by
// label key.
func (s *Sampler) Find(name string) []*TimeSeries {
	var out []*TimeSeries
	for _, ts := range s.Series() {
		if ts.Name == name {
			out = append(out, ts)
		}
	}
	return out
}

// Collector bundles a registry and a sampler with a base label set and
// an instance counter. One collector typically spans a whole benchmark
// run; each engine it observes takes an instance id so its series stay
// distinct (and monotonic in simulated time) even when many engines
// share a configuration.
type Collector struct {
	Registry *Registry
	Sampler  *Sampler

	// Base labels are merged into every metric and series the engines
	// register (e.g. {"exp": "fig6b"}).
	Base Labels

	inst atomic.Uint64
}

// NewCollector builds a collector with the given base labels.
func NewCollector(base Labels) *Collector {
	return &Collector{
		Registry: NewRegistry(),
		Sampler:  NewSampler(),
		Base:     MergeLabels(base),
	}
}

// NextInstance hands out a fresh instance id. Engines are constructed
// deterministically, so ids are stable run-to-run.
func (c *Collector) NextInstance() string {
	return strconv.FormatUint(c.inst.Add(1), 10)
}
