package telemetry

import (
	"io"
	"testing"
)

// Exporter hot paths, run once per CI pass by bench-smoke.

func BenchmarkWritePrometheus(b *testing.B) {
	c := goldenCollector()
	for i := 0; i < b.N; i++ {
		if err := WritePrometheus(io.Discard, c.Registry); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteCSV(b *testing.B) {
	c := goldenCollector()
	for i := 0; i < b.N; i++ {
		if err := WriteCSV(io.Discard, c.Registry); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteSeriesCSV(b *testing.B) {
	c := goldenCollector()
	for i := 0; i < b.N; i++ {
		if err := WriteSeriesCSV(io.Discard, c.Sampler); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteJSONL(b *testing.B) {
	c := goldenCollector()
	for i := 0; i < b.N; i++ {
		if err := WriteJSONL(io.Discard, c.Registry, c.Sampler); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryCounterLookup(b *testing.B) {
	c := goldenCollector()
	l := Labels{"op": "post", "list": "lla"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Registry.Counter("spco_ops_total", l).Add(1)
	}
}
