package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The exporters write three formats:
//
//   - Prometheus text exposition (WritePrometheus): the registry's
//     counters, gauges, and histograms, one scrape's worth, for
//     standard tooling (promtool, a Prometheus file_sd target, Grafana
//     agents).
//   - JSONL (WriteJSONL): one JSON object per line — every metric and
//     every time-series point — for the paper-artifact pipelines.
//   - CSV (WriteCSV / WriteSeriesCSV): the sampler's series as tidy
//     rows (series,labels,t,value) for plotting.

// promEscape escapes a label value for the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promLabels renders {k="v",...} in sorted key order ("" when empty).
// extra pairs are appended after the sorted base labels.
func promLabels(l Labels, extraKey, extraVal string) string {
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, k+`="`+promEscape(l[k])+`"`)
	}
	if extraKey != "" {
		parts = append(parts, extraKey+`="`+promEscape(extraVal)+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promValue renders a sample value (Prometheus accepts Go float
// formatting; +Inf/-Inf/NaN spellings included).
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the text exposition format.
// Histograms expand to _bucket/_sum/_count families. Metrics sharing a
// name emit one TYPE header, as the format requires.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	metrics, help := r.snapshot()
	lastName := ""
	for _, m := range metrics {
		if m.name != lastName {
			if h, ok := help[m.name]; ok {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, strings.ReplaceAll(h, "\n", " "))
			}
			typ := "counter"
			switch m.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typ)
			lastName = m.name
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, promLabels(m.labels, "", ""), promValue(m.counter.Value()))
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, promLabels(m.labels, "", ""), promValue(m.gauge.Value()))
		case kindHistogram:
			bounds, cum, count, sum := m.hist.Snapshot()
			for i, b := range bounds {
				fmt.Fprintf(bw, "%s_bucket%s %d\n", m.name, promLabels(m.labels, "le", promValue(b)), cum[i])
			}
			fmt.Fprintf(bw, "%s_bucket%s %d\n", m.name, promLabels(m.labels, "le", "+Inf"), count)
			fmt.Fprintf(bw, "%s_sum%s %s\n", m.name, promLabels(m.labels, "", ""), promValue(sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", m.name, promLabels(m.labels, "", ""), count)
		}
	}
	return bw.Flush()
}

// jsonRecord is one JSONL line.
type jsonRecord struct {
	Kind   string  `json:"kind"` // counter, gauge, histogram, point
	Name   string  `json:"name"`
	Labels Labels  `json:"labels,omitempty"`
	Value  float64 `json:"value,omitempty"`

	// Histogram fields.
	Count   uint64    `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`

	// Time-series point fields (T is simulated cycles).
	T uint64 `json:"t,omitempty"`
}

// WriteJSONL writes every registry metric and every sampler point as
// one JSON object per line. Either argument may be nil.
func WriteJSONL(w io.Writer, r *Registry, s *Sampler) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if r != nil {
		metrics, _ := r.snapshot()
		for _, m := range metrics {
			rec := jsonRecord{Name: m.name, Labels: m.labels}
			switch m.kind {
			case kindCounter:
				rec.Kind = "counter"
				rec.Value = m.counter.Value()
			case kindGauge:
				rec.Kind = "gauge"
				rec.Value = m.gauge.Value()
			case kindHistogram:
				rec.Kind = "histogram"
				bounds, cum, count, sum := m.hist.Snapshot()
				rec.Bounds, rec.Buckets, rec.Count, rec.Sum = bounds, cum, count, sum
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	if s != nil {
		for _, ts := range s.Series() {
			for _, p := range ts.Points {
				rec := jsonRecord{Kind: "point", Name: ts.Name, Labels: ts.Labels, T: p.T, Value: p.V}
				if err := enc.Encode(rec); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteSeriesCSV writes the sampler as tidy CSV rows:
// series,labels,t,value.
func WriteSeriesCSV(w io.Writer, s *Sampler) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "series,labels,t,value"); err != nil {
		return err
	}
	for _, ts := range s.Series() {
		lk := labelKey(ts.Labels)
		if strings.ContainsAny(lk, ",\"\n") {
			lk = `"` + strings.ReplaceAll(lk, `"`, `""`) + `"`
		}
		for _, p := range ts.Points {
			fmt.Fprintf(bw, "%s,%s,%d,%s\n", ts.Name, lk, p.T, promValue(p.V))
		}
	}
	return bw.Flush()
}

// WriteCSV writes registry metrics as CSV rows: name,labels,value.
// Histograms emit one row per cumulative bucket plus _sum and _count.
func WriteCSV(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "name,labels,value"); err != nil {
		return err
	}
	metrics, _ := r.snapshot()
	row := func(name string, labels Labels, extraKey, extraVal string, v float64) {
		lk := labelKey(labels)
		if extraKey != "" {
			if lk != "" {
				lk += ","
			}
			lk += fmt.Sprintf("%s=%q", extraKey, extraVal)
		}
		if strings.ContainsAny(lk, ",\"\n") {
			lk = `"` + strings.ReplaceAll(lk, `"`, `""`) + `"`
		}
		fmt.Fprintf(bw, "%s,%s,%s\n", name, lk, promValue(v))
	}
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			row(m.name, m.labels, "", "", m.counter.Value())
		case kindGauge:
			row(m.name, m.labels, "", "", m.gauge.Value())
		case kindHistogram:
			bounds, cum, count, sum := m.hist.Snapshot()
			for i, b := range bounds {
				row(m.name+"_bucket", m.labels, "le", promValue(b), float64(cum[i]))
			}
			row(m.name+"_bucket", m.labels, "le", "+Inf", float64(count))
			row(m.name+"_sum", m.labels, "", "", sum)
			row(m.name+"_count", m.labels, "", "", float64(count))
		}
	}
	return bw.Flush()
}

// WriteMetricsFile writes the collector's registry to path, choosing
// the format from the extension: .jsonl → JSONL (including series),
// .csv → CSV, anything else (.prom, .txt) → Prometheus text exposition.
func WriteMetricsFile(path string, c *Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl":
		err = WriteJSONL(f, c.Registry, c.Sampler)
	case ".csv":
		err = WriteCSV(f, c.Registry)
	default:
		err = WritePrometheus(f, c.Registry)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// WriteSeriesFile writes the collector's time series to path: .jsonl →
// JSONL points, anything else (.csv) → tidy CSV.
func WriteSeriesFile(path string, c *Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.ToLower(filepath.Ext(path)) == ".jsonl" {
		err = WriteJSONL(f, nil, c.Sampler)
	} else {
		err = WriteSeriesCSV(f, c.Sampler)
	}
	if err != nil {
		return err
	}
	return f.Close()
}
