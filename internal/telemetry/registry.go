// Package telemetry is the observability layer of the reproduction: a
// metrics registry (named counters, gauges, and cycle-latency
// histograms with labels), a time-series sampler that records points
// against *simulated* time, and exporters for JSONL, CSV, and the
// Prometheus text exposition format.
//
// The paper's headline claim — semi-permanent cache occupancy — is a
// statement about state evolving over time, not about end-of-run
// aggregates. The registry captures the aggregates (hit counters,
// cycle totals, operation latency distributions); the sampler captures
// the evolution (per-region cache residency, queue depths, heater
// sweep coverage) so the occupancy curve itself becomes an artifact.
//
// Everything here is passive: recording a metric never charges
// simulated cycles, and the engine skips all telemetry work when no
// collector is attached, so benchmark results are bit-identical with
// telemetry off.
//
// The registry is safe for concurrent use (worker goroutines in the
// multithreaded benchmarks may share one); the simulator itself remains
// single-threaded per engine.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Labels is a set of metric dimensions ({"arch": "sandybridge",
// "list": "lla"}). Nil is valid and means "no labels".
type Labels map[string]string

// MergeLabels returns the union of the given label sets; later sets win
// on key conflicts. The inputs are not modified.
func MergeLabels(sets ...Labels) Labels {
	out := Labels{}
	for _, s := range sets {
		for k, v := range s {
			out[k] = v
		}
	}
	return out
}

// labelKey renders labels in sorted order for map keys and exporters.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// Counter is a monotonically increasing metric.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter by d (negative deltas are ignored: counters
// only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram counts observations into cumulative buckets with the given
// upper bounds, Prometheus-style (an implicit +Inf bucket catches the
// tail). The engine uses it for per-operation cycle latencies.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Snapshot returns the bucket bounds and the *cumulative* counts per
// bound (Prometheus "le" semantics), plus the total count and sum.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return bounds, cumulative, h.count, h.sum
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1):
// the smallest bucket bound whose cumulative count reaches q. Samples
// in the +Inf bucket report the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, cum, count, _ := h.Snapshot()
	if count == 0 || len(bounds) == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(count)))
	if target == 0 {
		target = 1
	}
	for i, b := range bounds {
		if cum[i] >= target {
			return b
		}
	}
	return bounds[len(bounds)-1]
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// growing by factor — the standard shape for cycle-latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 {
		start = 1
	}
	if factor <= 1 {
		factor = 2
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// CycleBuckets is the default bound set for operation-cycle histograms:
// 64 cycles up to ~16M cycles in powers of four.
var CycleBuckets = ExpBuckets(64, 4, 13)

// metricKind discriminates registry entries for export.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	labels Labels
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments. Looking up the same name+labels
// returns the same instrument, so independent components accumulate
// into shared totals.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // name + "\x00" + labelKey
	help    map[string]string  // name -> help text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric), help: make(map[string]string)}
}

// Help sets the exported HELP text for a metric name.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// lookup finds or creates a metric. The instrument is fully constructed
// before the entry becomes visible in r.metrics — a concurrent scrape
// holding a snapshot must never observe a half-built metric (histogram
// buckets are part of construction, so bounds travel here).
func (r *Registry) lookup(name string, labels Labels, kind metricKind, bounds []float64) *metric {
	key := name + "\x00" + labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind", name))
		}
		return m
	}
	m := &metric{name: name, labels: MergeLabels(labels), kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		m.hist = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	}
	r.metrics[key] = m
	return m
}

// Counter returns (creating on first use) the counter with the given
// name and labels.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	return r.lookup(name, labels, kindCounter, nil).counter
}

// Gauge returns (creating on first use) the gauge with the given name
// and labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	return r.lookup(name, labels, kindGauge, nil).gauge
}

// Histogram returns (creating on first use) the histogram with the
// given name, labels, and bucket bounds. Bounds are fixed at creation;
// later calls with the same name+labels reuse the existing buckets.
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	return r.lookup(name, labels, kindHistogram, bounds).hist
}

// NumMetrics reports how many metrics (name+label combinations) have
// been registered. Zero after a run means nothing the collector was
// attached to ever published — typically an experiment whose engines
// are built outside the instrumented paths.
func (r *Registry) NumMetrics() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.metrics)
}

// snapshot returns all metrics sorted by name then label key, for
// deterministic export.
func (r *Registry) snapshot() ([]*metric, map[string]string) {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out, help
}
