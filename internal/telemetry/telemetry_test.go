package telemetry

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

func TestCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("spco_ops_total", Labels{"op": "arrive"})
	c2 := r.Counter("spco_ops_total", Labels{"op": "arrive"})
	if c1 != c2 {
		t.Error("same name+labels must return the same counter")
	}
	c3 := r.Counter("spco_ops_total", Labels{"op": "post"})
	if c1 == c3 {
		t.Error("different labels must return distinct counters")
	}
	c1.Add(3)
	c1.Inc()
	if c2.Value() != 4 {
		t.Errorf("counter = %v, want 4", c2.Value())
	}
	c1.Add(-5) // ignored: counters only go up
	if c1.Value() != 4 {
		t.Errorf("counter after negative add = %v, want 4", c1.Value())
	}
	g := r.Gauge("spco_depth", nil)
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %v, want 5", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("spco_cycles", nil, []float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	bounds, cum, count, sum := h.Snapshot()
	if count != 5 || sum != 5556 {
		t.Errorf("count=%d sum=%v, want 5, 5556", count, sum)
	}
	wantCum := []uint64{2, 3, 4}
	for i := range bounds {
		if cum[i] != wantCum[i] {
			t.Errorf("cum[le=%v] = %d, want %d", bounds[i], cum[i], wantCum[i])
		}
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Errorf("p50 = %v, want 100", q)
	}
	// Same name+labels reuses the same histogram.
	if r.Histogram("spco_cycles", nil, []float64{1}).Count() != 5 {
		t.Error("histogram identity lost")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(64, 4, 3)
	want := []float64{64, 256, 1024}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket[%d] = %v, want %v", i, b[i], want[i])
		}
	}
}

func TestSamplerRecordsAndSorts(t *testing.T) {
	s := NewSampler()
	s.Record("res", Labels{"owner": "prq"}, 100, 0.5)
	s.Record("res", Labels{"owner": "prq"}, 200, 0.75)
	s.Record("res", Labels{"owner": "umq"}, 100, 0.25)
	s.Record("depth", nil, 50, 3)

	ts := s.Get("res", Labels{"owner": "prq"})
	if ts == nil || len(ts.Points) != 2 {
		t.Fatalf("series lookup failed: %+v", ts)
	}
	if ts.Last().V != 0.75 || ts.Last().T != 200 {
		t.Errorf("last = %+v", ts.Last())
	}
	if ts.MaxV() != 0.75 || ts.MinV() != 0.5 {
		t.Errorf("extrema = %v..%v", ts.MinV(), ts.MaxV())
	}
	all := s.Series()
	if len(all) != 3 || all[0].Name != "depth" {
		t.Errorf("series order: %d series, first %q", len(all), all[0].Name)
	}
	if got := s.Find("res"); len(got) != 2 {
		t.Errorf("Find(res) = %d series, want 2", len(got))
	}
}

// promLine matches one valid Prometheus text-exposition sample line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*|[0-9.eE+-]+)$`)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Help("spco_cache_hits_total", "demand hits per level")
	r.Counter("spco_cache_hits_total", Labels{"level": "l3", "arch": "sandybridge"}).Add(42)
	r.Counter("spco_cache_hits_total", Labels{"level": "l1", "arch": "sandybridge"}).Add(7)
	r.Gauge("spco_residency_fraction", Labels{"owner": "prq"}).Set(0.875)
	h := r.Histogram("spco_op_cycles", Labels{"op": "arrive"}, []float64{100, 1000})
	h.Observe(50)
	h.Observe(5000)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	types := 0
	for _, ln := range lines {
		if strings.HasPrefix(ln, "#") {
			if strings.HasPrefix(ln, "# TYPE ") {
				types++
			}
			continue
		}
		if !promLine.MatchString(ln) {
			t.Errorf("invalid exposition line: %q", ln)
		}
	}
	if types != 3 {
		t.Errorf("TYPE headers = %d, want 3 (one per metric family)", types)
	}
	for _, want := range []string{
		`spco_cache_hits_total{arch="sandybridge",level="l3"} 42`,
		`spco_op_cycles_bucket{op="arrive",le="+Inf"} 2`,
		`spco_op_cycles_sum{op="arrive"} 5050`,
		`spco_op_cycles_count{op="arrive"} 2`,
		`# HELP spco_cache_hits_total demand hits per level`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Label values with quotes and backslashes must be escaped.
	r2 := NewRegistry()
	r2.Counter("m", Labels{"p": `a"b\c`}).Inc()
	var b2 strings.Builder
	if err := WritePrometheus(&b2, r2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), `m{p="a\"b\\c"} 1`) {
		t.Errorf("escaping wrong: %q", b2.String())
	}
}

func TestJSONLRoundTrips(t *testing.T) {
	c := NewCollector(Labels{"exp": "test"})
	c.Registry.Counter("spco_ops_total", c.Base).Add(9)
	c.Registry.Histogram("spco_cy", nil, []float64{10}).Observe(3)
	c.Sampler.Record("res", Labels{"owner": "prq"}, 10, 0.5)
	c.Sampler.Record("res", Labels{"owner": "prq"}, 20, 0.25)

	var b strings.Builder
	if err := WriteJSONL(&b, c.Registry, c.Sampler); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 { // counter + histogram + 2 points
		t.Fatalf("JSONL lines = %d, want 4:\n%s", len(lines), b.String())
	}
	kinds := map[string]int{}
	for _, ln := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
		kinds[rec["kind"].(string)]++
	}
	if kinds["counter"] != 1 || kinds["histogram"] != 1 || kinds["point"] != 2 {
		t.Errorf("record kinds: %v", kinds)
	}
}

func TestCSVExports(t *testing.T) {
	c := NewCollector(nil)
	c.Registry.Counter("a_total", nil).Add(1)
	c.Registry.Histogram("h", nil, []float64{10}).Observe(5)
	c.Sampler.Record("s", Labels{"owner": "prq"}, 1, 2.5)

	var m strings.Builder
	if err := WriteCSV(&m, c.Registry); err != nil {
		t.Fatal(err)
	}
	// header + counter + 2 buckets + sum + count
	if got := len(strings.Split(strings.TrimRight(m.String(), "\n"), "\n")); got != 6 {
		t.Errorf("metrics CSV rows = %d, want 6:\n%s", got, m.String())
	}
	var s strings.Builder
	if err := WriteSeriesCSV(&s, c.Sampler); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "s,") || !strings.Contains(s.String(), ",1,2.5") {
		t.Errorf("series CSV: %q", s.String())
	}
}

func TestMergeLabels(t *testing.T) {
	base := Labels{"a": "1", "b": "2"}
	got := MergeLabels(base, Labels{"b": "3", "c": "4"})
	if got["a"] != "1" || got["b"] != "3" || got["c"] != "4" {
		t.Errorf("merge = %v", got)
	}
	if base["b"] != "2" {
		t.Error("merge mutated its input")
	}
	if MergeLabels(nil) == nil {
		t.Error("merge of nil should be non-nil empty")
	}
}

func TestCollectorInstances(t *testing.T) {
	c := NewCollector(nil)
	if a, b := c.NextInstance(), c.NextInstance(); a == b {
		t.Errorf("instances must be unique: %q %q", a, b)
	}
}
