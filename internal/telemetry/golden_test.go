package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenCollector builds a small, fully deterministic registry and
// sampler, registering metrics in deliberately scrambled order: the
// exporters must sort by name then label key, so the files below are
// byte-identical across runs and Go map iteration orders.
func goldenCollector() *Collector {
	c := NewCollector(Labels{"run": "golden"})
	reg, s := c.Registry, c.Sampler

	reg.Help("spco_ops_total", "Matching operations processed.")
	reg.Help("spco_queue_len", "Final queue length.")
	reg.Help("spco_op_cycles", "Modeled cycle cost per matching operation.")

	reg.Counter("spco_ops_total", Labels{"op": "post", "list": "lla"}).Add(3)
	reg.Gauge("spco_queue_len", Labels{"queue": "umq"}).Set(7)
	reg.Counter("spco_ops_total", Labels{"op": "arrive", "list": "lla"}).Add(5)
	reg.Gauge("spco_queue_len", Labels{"queue": "prq"}).Set(42)
	reg.Counter("spco_cache_hits_total", Labels{"level": "l2"}).Add(11)
	reg.Counter("spco_cache_hits_total", Labels{"level": "l1"}).Add(640)

	h := reg.Histogram("spco_op_cycles", Labels{"op": "arrive"}, []float64{100, 1000, 10000})
	for _, v := range []float64{50, 150, 1500, 2500, 20000} {
		h.Observe(v)
	}

	s.Record("spco_queue_len", Labels{"queue": "umq"}, 100, 1)
	s.Record("spco_queue_len", Labels{"queue": "prq"}, 100, 9)
	s.Record("spco_queue_len", Labels{"queue": "prq"}, 200, 8)
	return c
}

// checkGolden compares got against testdata/name, rewriting the file
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	c := goldenCollector()
	var b bytes.Buffer
	if err := WritePrometheus(&b, c.Registry); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden.prom", b.Bytes())
}

func TestCSVGolden(t *testing.T) {
	c := goldenCollector()
	var b bytes.Buffer
	if err := WriteCSV(&b, c.Registry); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_metrics.csv", b.Bytes())

	b.Reset()
	if err := WriteSeriesCSV(&b, c.Sampler); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_series.csv", b.Bytes())
}

// TestExportersDeterministic re-exports a freshly built collector many
// times: every pass must be byte-identical (sorted, map-order-free).
func TestExportersDeterministic(t *testing.T) {
	var first []byte
	for i := 0; i < 20; i++ {
		c := goldenCollector()
		var b bytes.Buffer
		if err := WritePrometheus(&b, c.Registry); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&b, c.Registry); err != nil {
			t.Fatal(err)
		}
		if err := WriteSeriesCSV(&b, c.Sampler); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b.Bytes()
		} else if !bytes.Equal(first, b.Bytes()) {
			t.Fatalf("pass %d produced different bytes", i)
		}
	}
}
