// Package ctrace is the causal-tracing spine: one trace per message,
// minted at the client/workload edge and carried through every layer it
// crosses — the mpi wire frames, the fault-injection retransmission
// transport (each attempt, drop, duplicate and RTO becomes a child
// event with its wire fate), and the engine's matching operations — all
// stitched on the simulated clock and exportable as Chrome trace-event
// JSON (chrome://tracing, Perfetto).
//
// The recorder doubles as an always-on flight recorder: every finished
// trace passes a tail-based retention decision (keep when it
// experienced any fault event, or when its end-to-end latency exceeds a
// running quantile of recent traces), and the retained set lives in a
// bounded ring so a long-running daemon can expose a dump at any moment
// (/debug/trace) without unbounded memory.
//
// Like the telemetry and PMU layers, tracing is strictly passive: every
// hook is host-side bookkeeping behind a nil check, so simulated cycle
// totals are bit-identical with a recorder attached or detached (a test
// enforces this, extending the zero-cost-when-off contract).
package ctrace

import (
	"fmt"
	"sort"
	"sync"
)

// Context is the trace context carried end to end: the trace identity
// plus the span new children attach under. The zero Context means
// "untraced" and every recording hook ignores it.
type Context struct {
	Trace  uint64
	Parent uint64
}

// Valid reports whether the context names a trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Lane is the layer a span belongs to; lanes become Chrome tid values,
// so a message's timeline reads top-to-bottom through the stack.
type Lane uint8

// The lanes.
const (
	LaneClient Lane = iota + 1
	LaneWire
	LaneTransport
	LaneEngine
	LaneDaemon
	numLanes
)

// String returns the lane's thread name in the Chrome export.
func (l Lane) String() string {
	switch l {
	case LaneClient:
		return "client"
	case LaneWire:
		return "wire"
	case LaneTransport:
		return "transport"
	case LaneEngine:
		return "engine"
	case LaneDaemon:
		return "daemon"
	}
	return fmt.Sprintf("lane-%d", int(l))
}

// KV is one ordered span annotation. A slice of KVs (not a map) keeps
// every export byte-identical across runs.
type KV struct{ K, V string }

// CV is one numeric counter-track sample value.
type CV struct {
	K string
	V float64
}

// Event is one recorded trace event: a complete span (Phase 'X') or an
// instant ('i'). Counter samples ('C') are recorded outside traces.
type Event struct {
	Trace   uint64
	Span    uint64 // 0 on instants
	Parent  uint64
	Name    string
	Lane    Lane
	Pid     int // rank (process lane in the export)
	Phase   byte
	StartNS float64
	DurNS   float64
	Args    []KV
}

// Trace is one message's recorded timeline. Events hold the root span
// last once finished; open spans are completed at Finish (or at export
// time for still-open traces).
type Trace struct {
	ID      uint64
	Pid     int
	Root    uint64
	Name    string
	StartNS float64
	EndNS   float64
	Status  string // "" while open; "matched", "abandoned", ...
	Fault   bool   // experienced any fault event
	Events  []Event

	open map[uint64]int // span id -> Events index with DurNS < 0
}

// LatencyNS returns the root span's end-to-end latency (zero while
// open).
func (t *Trace) LatencyNS() float64 { return t.EndNS - t.StartNS }

// Options configures a Recorder.
type Options struct {
	// Capacity bounds the retained-trace ring (default
	// DefaultCapacity). The oldest retained trace is evicted when full.
	Capacity int

	// KeepAll retains every finished trace regardless of the tail
	// decision (golden tests, short diagnostic runs).
	KeepAll bool

	// LatencyQuantile is the tail-retention threshold: a fault-free
	// trace is kept when its latency reaches this quantile of the
	// recent-latency window (default 0.99). Values outside (0,1) keep
	// only faulted traces.
	LatencyQuantile float64

	// TriggerLatencyNS, when positive, records a sticky trigger the
	// first time a finished trace exceeds it; harnesses poll Triggered
	// to dump the recorder on latency violations.
	TriggerLatencyNS float64
}

// DefaultCapacity is the retained-trace ring bound when Options leaves
// it zero: enough to hold every faulted message of a long soak without
// unbounded growth.
const DefaultCapacity = 4096

// latWindow is the recent-latency sample window the tail quantile is
// computed over; latEvery is the recompute cadence.
const (
	latWindow = 512
	latEvery  = 64
)

// Stats is a point-in-time recorder summary.
type Stats struct {
	Open     int    // traces still in flight
	Retained int    // finished traces currently held
	Finished uint64 // traces ever finished
	Kept     uint64 // finished traces that passed retention
	Evicted  uint64 // retained traces the ring overwrote
}

// Recorder collects traces and counter tracks. It is safe for
// concurrent use (the daemon records under its engine mutex but dumps
// from HTTP handlers); the single-threaded simulation pays one
// uncontended lock per hook.
type Recorder struct {
	mu   sync.Mutex
	opts Options

	nextTrace uint64
	nextSpan  uint64

	open      map[uint64]*Trace
	openOrder []uint64
	done      []*Trace
	counters  []Event

	finished uint64
	kept     uint64
	evicted  uint64

	latWin      []float64
	latThreshNS float64
	sinceThresh int

	triggered []string
}

// New builds a recorder.
func New(opts Options) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	if opts.LatencyQuantile == 0 {
		opts.LatencyQuantile = 0.99
	}
	return &Recorder{opts: opts, open: make(map[uint64]*Trace)}
}

// Options returns the recorder's resolved options.
func (r *Recorder) Options() Options { return r.opts }

// Mint opens a new trace at the client/workload edge and returns the
// context children attach under (Parent is the root span). A nil
// recorder returns the zero Context.
func (r *Recorder) Mint(pid int, name string, atNS float64) Context {
	if r == nil {
		return Context{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextTrace++
	return r.startLocked(r.nextTrace, pid, name, atNS)
}

// Adopt attaches to an externally minted trace identity (one that
// crossed a wire hop): the first event for an unknown trace ID opens it
// with a root span named name. When ctx carries no parent span the
// returned context parents under the root.
func (r *Recorder) Adopt(ctx Context, pid int, name string, atNS float64) Context {
	if r == nil || !ctx.Valid() {
		return Context{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.open[ctx.Trace]
	if t == nil {
		root := r.startLocked(ctx.Trace, pid, name, atNS)
		if ctx.Parent == 0 {
			return root
		}
		return ctx
	}
	if ctx.Parent == 0 {
		ctx.Parent = t.Root
	}
	return ctx
}

// startLocked opens trace id with its root span. Callers hold r.mu.
func (r *Recorder) startLocked(id uint64, pid int, name string, atNS float64) Context {
	r.nextSpan++
	t := &Trace{
		ID: id, Pid: pid, Root: r.nextSpan, Name: name,
		StartNS: atNS, open: make(map[uint64]int),
	}
	r.open[id] = t
	r.openOrder = append(r.openOrder, id)
	return Context{Trace: id, Parent: t.Root}
}

// Begin opens a child span and returns its id (0 when untraced).
func (r *Recorder) Begin(ctx Context, lane Lane, pid int, name string, atNS float64, args ...KV) uint64 {
	if r == nil || !ctx.Valid() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.open[ctx.Trace]
	if t == nil {
		return 0
	}
	r.nextSpan++
	t.open[r.nextSpan] = len(t.Events)
	t.Events = append(t.Events, Event{
		Trace: ctx.Trace, Span: r.nextSpan, Parent: ctx.Parent,
		Name: name, Lane: lane, Pid: pid, Phase: 'X',
		StartNS: atNS, DurNS: -1, Args: args,
	})
	return r.nextSpan
}

// End closes a span opened with Begin, appending any final args.
func (r *Recorder) End(trace, span uint64, atNS float64, args ...KV) {
	if r == nil || trace == 0 || span == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.open[trace]
	if t == nil {
		return
	}
	i, ok := t.open[span]
	if !ok {
		return
	}
	delete(t.open, span)
	ev := &t.Events[i]
	if d := atNS - ev.StartNS; d > 0 {
		ev.DurNS = d
	} else {
		ev.DurNS = 0
	}
	ev.Args = append(ev.Args, args...)
}

// Complete records a span whose duration is already known (engine
// operations, wire flights) and returns its id.
func (r *Recorder) Complete(ctx Context, lane Lane, pid int, name string, startNS, durNS float64, args ...KV) uint64 {
	if r == nil || !ctx.Valid() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.open[ctx.Trace]
	if t == nil {
		return 0
	}
	if durNS < 0 {
		durNS = 0
	}
	r.nextSpan++
	t.Events = append(t.Events, Event{
		Trace: ctx.Trace, Span: r.nextSpan, Parent: ctx.Parent,
		Name: name, Lane: lane, Pid: pid, Phase: 'X',
		StartNS: startNS, DurNS: durNS, Args: args,
	})
	return r.nextSpan
}

// Instant records a zero-duration event (an RTO firing, a wire drop, a
// busy-NACK).
func (r *Recorder) Instant(ctx Context, lane Lane, pid int, name string, atNS float64, args ...KV) {
	if r == nil || !ctx.Valid() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.open[ctx.Trace]
	if t == nil {
		return
	}
	t.Events = append(t.Events, Event{
		Trace: ctx.Trace, Parent: ctx.Parent,
		Name: name, Lane: lane, Pid: pid, Phase: 'i',
		StartNS: atNS, Args: args,
	})
}

// MarkFault flags the trace as having experienced a fault event, which
// guarantees retention when it finishes.
func (r *Recorder) MarkFault(trace uint64) {
	if r == nil || trace == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.open[trace]; t != nil {
		t.Fault = true
	}
}

// Counter records one sample of a global counter track (heater sweeps,
// residency fractions); the export renders it as a stacked counter lane
// above the spans.
func (r *Recorder) Counter(name string, atNS float64, values ...CV) {
	if r == nil {
		return
	}
	args := make([]KV, len(values))
	for i, v := range values {
		args[i] = KV{K: v.K, V: formatFloat(v.V)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = append(r.counters, Event{
		Name: name, Phase: 'C', StartNS: atNS, Args: args,
	})
}

// Finish closes a trace: the root span ends at atNS with the given
// status, still-open child spans are closed, and the tail-based
// retention decision runs. Finishing an unknown trace is a no-op.
func (r *Recorder) Finish(trace uint64, atNS float64, status string) {
	if r == nil || trace == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.open[trace]
	if t == nil {
		return
	}
	delete(r.open, trace)
	for i, id := range r.openOrder {
		if id == trace {
			r.openOrder = append(r.openOrder[:i], r.openOrder[i+1:]...)
			break
		}
	}
	r.sealLocked(t, atNS, status)

	lat := t.LatencyNS()
	r.finished++
	r.observeLatencyLocked(lat)
	if r.opts.TriggerLatencyNS > 0 && lat >= r.opts.TriggerLatencyNS && len(r.triggered) < 16 {
		r.triggered = append(r.triggered,
			fmt.Sprintf("trace %d latency %.0fns >= %.0fns", t.ID, lat, r.opts.TriggerLatencyNS))
	}
	if !r.keepLocked(t, lat) {
		return
	}
	r.kept++
	if len(r.done) >= r.opts.Capacity {
		r.done = append(r.done[1:], t)
		r.evicted++
		return
	}
	r.done = append(r.done, t)
}

// sealLocked closes open child spans and appends the root span event.
func (r *Recorder) sealLocked(t *Trace, atNS float64, status string) {
	t.EndNS = atNS
	t.Status = status
	for span, i := range t.open {
		_ = span
		ev := &t.Events[i]
		if ev.DurNS < 0 {
			if d := atNS - ev.StartNS; d > 0 {
				ev.DurNS = d
			} else {
				ev.DurNS = 0
			}
		}
	}
	t.open = nil
	dur := atNS - t.StartNS
	if dur < 0 {
		dur = 0
	}
	args := []KV{}
	if status != "" {
		args = append(args, KV{"status", status})
	}
	if t.Fault {
		args = append(args, KV{"fault", "true"})
	}
	t.Events = append(t.Events, Event{
		Trace: t.ID, Span: t.Root,
		Name: t.Name, Lane: LaneClient, Pid: t.Pid, Phase: 'X',
		StartNS: t.StartNS, DurNS: dur, Args: args,
	})
}

// keepLocked is the tail-based retention decision.
func (r *Recorder) keepLocked(t *Trace, lat float64) bool {
	if r.opts.KeepAll || t.Fault {
		return true
	}
	q := r.opts.LatencyQuantile
	if q <= 0 || q >= 1 {
		return false
	}
	if r.latThreshNS == 0 {
		// Warming up: no quantile estimate yet, keep everything.
		return true
	}
	return lat >= r.latThreshNS
}

// observeLatencyLocked feeds the recent-latency window and periodically
// recomputes the tail threshold.
func (r *Recorder) observeLatencyLocked(lat float64) {
	if len(r.latWin) < latWindow {
		r.latWin = append(r.latWin, lat)
	} else {
		r.latWin[int(r.finished)%latWindow] = lat
	}
	r.sinceThresh++
	if r.sinceThresh < latEvery {
		return
	}
	r.sinceThresh = 0
	s := append([]float64(nil), r.latWin...)
	sort.Float64s(s)
	i := int(r.opts.LatencyQuantile*float64(len(s))) - 1
	if i < 0 {
		i = 0
	}
	r.latThreshNS = s[i]
}

// Trigger records an explicit sticky trigger reason (an invariant
// violation, an operator's on-demand dump). Harnesses poll Triggered
// after a run to decide whether to dump the recorder.
func (r *Recorder) Trigger(reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.triggered) < 16 {
		r.triggered = append(r.triggered, reason)
	}
}

// MarkAllOpen flags every still-in-flight trace as faulted: an
// invariant violation implicates the whole run, so the evidence must
// survive retention whenever those traces finish.
func (r *Recorder) MarkAllOpen() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.open {
		t.Fault = true
	}
}

// Triggered returns the sticky latency-trigger reasons recorded so far.
func (r *Recorder) Triggered() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.triggered...)
}

// Stats returns a recorder summary.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Open:     len(r.open),
		Retained: len(r.done),
		Finished: r.finished,
		Kept:     r.kept,
		Evicted:  r.evicted,
	}
}

// Retained returns the finished traces currently held, oldest first.
func (r *Recorder) Retained() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Trace(nil), r.done...)
}

// snapshot collects every exportable trace — retained first, then
// still-open ones sealed as "open" copies — plus the counter samples.
func (r *Recorder) snapshot() ([]*Trace, []Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]*Trace(nil), r.done...)
	for _, id := range r.openOrder {
		t := r.open[id]
		end := t.StartNS
		for i := range t.Events {
			ev := &t.Events[i]
			e := ev.StartNS
			if ev.DurNS > 0 {
				e += ev.DurNS
			}
			if e > end {
				end = e
			}
		}
		cp := &Trace{
			ID: t.ID, Pid: t.Pid, Root: t.Root, Name: t.Name,
			StartNS: t.StartNS, Fault: t.Fault,
			Events: append([]Event(nil), t.Events...),
			open:   make(map[uint64]int, len(t.open)),
		}
		for s, i := range t.open {
			cp.open[s] = i
		}
		r.sealLocked(cp, end, "open")
		out = append(out, cp)
	}
	return out, append([]Event(nil), r.counters...)
}
