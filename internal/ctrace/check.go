package ctrace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Chrome-trace validation: `spco-trace check` and the trace-smoke CI
// gate parse an exported file back and verify (a) it is well-formed
// trace-event JSON and every span tree is consistent, and (b) — the
// acceptance bar for the causal spine — at least one message shows the
// full end-to-end chain: a client root span, two or more wire
// transmission attempts of which at least one was dropped and at least
// one delivered, an engine operation span, and a matched outcome.

// chromeEvent mirrors one exported trace-event record.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

type chromeFile struct {
	TraceEvents []json.RawMessage `json:"traceEvents"`
}

// CheckReport summarizes a validated Chrome trace file.
type CheckReport struct {
	Events      int // span + instant events (metadata/counters excluded)
	Counters    int // counter samples
	Traces      int // distinct trace ids
	Spans       int // complete ('X') spans
	Instants    int // instant ('i') events
	FaultTraces int // traces containing at least one fault instant
	FullChains  int // traces showing the complete causal chain
}

// chainState accumulates per-trace evidence for the causal chain.
type chainState struct {
	client    bool
	xmits     int
	dropped   bool
	delivered bool
	engine    bool
	matched   bool
	fault     bool
}

func (c *chainState) full() bool {
	return c.client && c.xmits >= 2 && c.dropped && c.delivered && c.engine && c.matched
}

// CheckChromeJSON parses an exported Chrome trace and validates its
// structure: known phases, non-negative ts/dur, unique span ids, and
// every non-root span's parent existing within the same trace. It
// returns a summary including how many traces exhibit the full causal
// chain.
func CheckChromeJSON(rd io.Reader) (CheckReport, error) {
	var rep CheckReport
	data, err := io.ReadAll(rd)
	if err != nil {
		return rep, err
	}
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return rep, fmt.Errorf("not valid trace-event JSON: %w", err)
	}

	type spanRec struct {
		trace  uint64
		parent uint64
	}
	spans := map[uint64]spanRec{} // span id -> record
	var ordered []uint64
	chains := map[uint64]*chainState{}
	traceSeen := map[uint64]bool{}

	for i, raw := range f.TraceEvents {
		// Counter args are numeric; decode those separately.
		var probe struct {
			Ph string `json:"ph"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return rep, fmt.Errorf("event %d: %w", i, err)
		}
		switch probe.Ph {
		case "M":
			continue
		case "C":
			rep.Counters++
			continue
		case "X", "i":
		default:
			return rep, fmt.Errorf("event %d: unexpected phase %q", i, probe.Ph)
		}
		var ev chromeEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return rep, fmt.Errorf("event %d: %w", i, err)
		}
		rep.Events++
		if ev.Ts < 0 {
			return rep, fmt.Errorf("event %d (%s): negative ts %v", i, ev.Name, ev.Ts)
		}
		trace, err := argID(ev.Args, "trace")
		if err != nil {
			return rep, fmt.Errorf("event %d (%s): %w", i, ev.Name, err)
		}
		parent, err := argID(ev.Args, "parent")
		if err != nil {
			return rep, fmt.Errorf("event %d (%s): %w", i, ev.Name, err)
		}
		if trace == 0 {
			return rep, fmt.Errorf("event %d (%s): missing trace id", i, ev.Name)
		}
		traceSeen[trace] = true
		st := chains[trace]
		if st == nil {
			st = &chainState{}
			chains[trace] = st
		}

		if ev.Ph == "i" {
			rep.Instants++
			if ev.Args["fault"] == "true" || isFaultName(ev.Name) {
				st.fault = true
			}
			continue
		}

		// Complete span.
		rep.Spans++
		if ev.Dur < 0 {
			return rep, fmt.Errorf("event %d (%s): negative dur %v", i, ev.Name, ev.Dur)
		}
		span, err := argID(ev.Args, "span")
		if err != nil || span == 0 {
			return rep, fmt.Errorf("event %d (%s): bad span id", i, ev.Name)
		}
		if prev, dup := spans[span]; dup {
			return rep, fmt.Errorf("event %d (%s): span id %d reused (first in trace %d)", i, ev.Name, span, prev.trace)
		}
		spans[span] = spanRec{trace: trace, parent: parent}
		ordered = append(ordered, span)

		switch {
		case ev.Cat == "client":
			st.client = true
			if ev.Args["status"] == "matched" {
				st.matched = true
			}
		case ev.Cat == "wire" && strings.HasPrefix(ev.Name, "xmit"):
			st.xmits++
			switch ev.Args["fate"] {
			case "dropped":
				st.dropped = true
				st.fault = true
			case "delivered":
				st.delivered = true
			}
		case ev.Cat == "engine":
			st.engine = true
		}
	}

	// Parent linkage: every non-root span's parent must be a span in
	// the same trace.
	for _, id := range ordered {
		rec := spans[id]
		if rec.parent == 0 {
			continue
		}
		p, ok := spans[rec.parent]
		if !ok {
			return rep, fmt.Errorf("span %d: parent %d not present in file", id, rec.parent)
		}
		if p.trace != rec.trace {
			return rep, fmt.Errorf("span %d (trace %d): parent %d belongs to trace %d", id, rec.trace, rec.parent, p.trace)
		}
	}

	rep.Traces = len(traceSeen)
	for _, st := range chains {
		if st.fault {
			rep.FaultTraces++
		}
		if st.full() {
			rep.FullChains++
		}
	}
	return rep, nil
}

func argID(args map[string]string, key string) (uint64, error) {
	v, ok := args[key]
	if !ok {
		return 0, fmt.Errorf("missing arg %q", key)
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("arg %q = %q: %w", key, v, err)
	}
	return id, nil
}

// isFaultName reports whether an instant name denotes a fault event.
func isFaultName(name string) bool {
	switch name {
	case "drop", "rto", "corrupt-discard", "dup-suppressed", "wire-dup",
		"busy-nack", "retry-exhausted", "ooo-overflow", "credit-stall":
		return true
	}
	return false
}
