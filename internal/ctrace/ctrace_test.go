package ctrace

import (
	"bytes"
	"strings"
	"testing"
)

// record builds a small two-message scenario: message A suffers a wire
// drop and a retransmission before matching; message B sails through.
// Event insertion order is deliberately interleaved so the exporter's
// sort carries the determinism, not the call sites.
func record(r *Recorder) {
	a := r.Mint(0, "send rank0->rank1 tag7", 100)
	b := r.Mint(0, "send rank0->rank1 tag8", 150)

	r.Complete(a, LaneWire, 0, "xmit#0", 110, 0, KV{"fate", "dropped"})
	r.MarkFault(a.Trace)
	r.Instant(a, LaneTransport, 0, "rto", 400, KV{"retries", "1"})
	r.Complete(b, LaneWire, 0, "xmit#0", 160, 90, KV{"fate", "delivered"})
	r.Complete(a, LaneWire, 0, "xmit#1", 410, 95, KV{"fate", "delivered"})

	bEng := r.Adopt(b, 1, "rx", 250)
	r.Complete(bEng, LaneEngine, 1, "arrive", 250, 40, KV{"outcome", "prq-match"})
	aEng := r.Adopt(a, 1, "rx", 505)
	r.Complete(aEng, LaneEngine, 1, "arrive", 505, 45, KV{"outcome", "prq-match"})

	r.Counter("heater", 300, CV{"sweeps", 2}, CV{"coverage", 0.5})
	r.Counter("heater", 550, CV{"sweeps", 4}, CV{"coverage", 0.75})

	r.Finish(b.Trace, 290, "matched")
	r.Finish(a.Trace, 550, "matched")
}

func TestRecorderLifecycle(t *testing.T) {
	r := New(Options{KeepAll: true})
	record(r)
	st := r.Stats()
	if st.Finished != 2 || st.Retained != 2 || st.Open != 0 {
		t.Fatalf("stats = %+v, want 2 finished, 2 retained, 0 open", st)
	}
	traces := r.Retained()
	if len(traces) != 2 {
		t.Fatalf("retained %d traces", len(traces))
	}
	// Message A: root + 2 xmit + engine arrive spans, 1 rto instant.
	var a *Trace
	for _, tr := range traces {
		if tr.Fault {
			a = tr
		}
	}
	if a == nil {
		t.Fatal("faulted trace not retained")
	}
	if a.Status != "matched" || a.LatencyNS() != 450 {
		t.Fatalf("trace A status %q latency %v", a.Status, a.LatencyNS())
	}
	spans, instants := 0, 0
	for _, ev := range a.Events {
		switch ev.Phase {
		case 'X':
			spans++
		case 'i':
			instants++
		}
	}
	if spans != 4 || instants != 1 {
		t.Fatalf("trace A has %d spans, %d instants; want 4, 1", spans, instants)
	}
}

// TestNilAndUntracedAreNoOps locks the zero-cost contract's API half:
// every hook on a nil recorder or with an invalid context is safe.
func TestNilAndUntracedAreNoOps(t *testing.T) {
	var r *Recorder
	ctx := r.Mint(0, "x", 0)
	if ctx.Valid() {
		t.Fatal("nil recorder minted a context")
	}
	r.Complete(ctx, LaneWire, 0, "x", 0, 1)
	r.Instant(ctx, LaneWire, 0, "x", 0)
	r.MarkFault(1)
	r.Counter("x", 0)
	r.Finish(1, 0, "done")
	r.End(1, 1, 0)
	if got := r.Stats(); got != (Stats{}) {
		t.Fatalf("nil recorder stats = %+v", got)
	}
	var b bytes.Buffer
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "traceEvents") {
		t.Fatalf("nil export = %q", b.String())
	}

	live := New(Options{})
	if id := live.Begin(Context{}, LaneWire, 0, "x", 0); id != 0 {
		t.Fatal("Begin with zero context returned a span")
	}
	live.Complete(Context{Trace: 99}, LaneWire, 0, "x", 0, 1) // unknown trace
	if st := live.Stats(); st.Open != 0 {
		t.Fatalf("unknown-trace events opened something: %+v", st)
	}
}

func TestBeginEnd(t *testing.T) {
	r := New(Options{KeepAll: true})
	ctx := r.Mint(2, "msg", 0)
	id := r.Begin(ctx, LaneTransport, 2, "inflight", 10)
	if id == 0 {
		t.Fatal("Begin returned 0")
	}
	r.End(ctx.Trace, id, 70, KV{"acked", "true"})
	r.Finish(ctx.Trace, 100, "matched")
	tr := r.Retained()[0]
	var found bool
	for _, ev := range tr.Events {
		if ev.Name == "inflight" {
			found = true
			if ev.DurNS != 60 {
				t.Fatalf("inflight dur = %v, want 60", ev.DurNS)
			}
		}
	}
	if !found {
		t.Fatal("inflight span missing")
	}
}

// TestFinishSealsOpenSpans: spans still open at Finish close at the
// trace end rather than exporting with a sentinel duration.
func TestFinishSealsOpenSpans(t *testing.T) {
	r := New(Options{KeepAll: true})
	ctx := r.Mint(0, "msg", 0)
	r.Begin(ctx, LaneTransport, 0, "never-ended", 20)
	r.Finish(ctx.Trace, 80, "abandoned")
	for _, ev := range r.Retained()[0].Events {
		if ev.Phase == 'X' && ev.DurNS < 0 {
			t.Fatalf("span %q exported with dur %v", ev.Name, ev.DurNS)
		}
		if ev.Name == "never-ended" && ev.DurNS != 60 {
			t.Fatalf("open span sealed with dur %v, want 60", ev.DurNS)
		}
	}
}

// TestTailRetention: with faults retained unconditionally and a tight
// quantile, short clean traces are discarded once the window warms up.
func TestTailRetention(t *testing.T) {
	r := New(Options{LatencyQuantile: 0.9})
	// Warm past the first threshold recompute with uniform latencies.
	for i := 0; i < latEvery; i++ {
		ctx := r.Mint(0, "warm", float64(i)*1000)
		r.Finish(ctx.Trace, float64(i)*1000+100, "matched")
	}
	before := r.Stats()
	// Now a fast clean trace must be discarded...
	fast := r.Mint(0, "fast", 1e6)
	r.Finish(fast.Trace, 1e6+1, "matched")
	if got := r.Stats(); got.Retained != before.Retained {
		t.Fatalf("fast clean trace retained (before %d, after %d)", before.Retained, got.Retained)
	}
	// ...a slow one kept...
	slow := r.Mint(0, "slow", 2e6)
	r.Finish(slow.Trace, 2e6+1e5, "matched")
	if got := r.Stats(); got.Retained != before.Retained+1 {
		t.Fatal("slow trace not retained")
	}
	// ...and a fast faulted one kept too.
	faulted := r.Mint(0, "faulted", 3e6)
	r.MarkFault(faulted.Trace)
	r.Finish(faulted.Trace, 3e6+1, "matched")
	if got := r.Stats(); got.Retained != before.Retained+2 {
		t.Fatal("faulted trace not retained")
	}
}

// TestRingEviction: the flight recorder is bounded; the oldest retained
// trace is evicted when full.
func TestRingEviction(t *testing.T) {
	r := New(Options{Capacity: 4, KeepAll: true})
	for i := 0; i < 10; i++ {
		ctx := r.Mint(0, "msg", float64(i))
		r.Finish(ctx.Trace, float64(i)+1, "matched")
	}
	st := r.Stats()
	if st.Retained != 4 || st.Evicted != 6 || st.Kept != 10 {
		t.Fatalf("stats = %+v, want retained 4, evicted 6, kept 10", st)
	}
	got := r.Retained()
	if got[0].ID != 7 || got[3].ID != 10 {
		t.Fatalf("ring holds traces %d..%d, want 7..10", got[0].ID, got[3].ID)
	}
}

func TestLatencyTrigger(t *testing.T) {
	r := New(Options{TriggerLatencyNS: 1000})
	ctx := r.Mint(0, "fast", 0)
	r.Finish(ctx.Trace, 500, "matched")
	if len(r.Triggered()) != 0 {
		t.Fatal("fast trace tripped the trigger")
	}
	ctx = r.Mint(0, "slow", 0)
	r.Finish(ctx.Trace, 5000, "matched")
	trig := r.Triggered()
	if len(trig) != 1 || !strings.Contains(trig[0], "5000ns") {
		t.Fatalf("triggers = %v", trig)
	}
}

// TestOpenTracesExport: still-open traces appear in the Chrome dump
// (sealed as "open"), so a live daemon's /debug/trace shows in-flight
// work.
func TestOpenTracesExport(t *testing.T) {
	r := New(Options{})
	ctx := r.Mint(3, "inflight-msg", 100)
	r.Complete(ctx, LaneWire, 3, "xmit#0", 110, 50, KV{"fate", "delivered"})
	var b bytes.Buffer
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "inflight-msg") || !strings.Contains(out, `"status":"open"`) {
		t.Fatalf("open trace missing from export:\n%s", out)
	}
	// Exporting must not consume the open trace.
	if st := r.Stats(); st.Open != 1 {
		t.Fatalf("export consumed the open trace: %+v", st)
	}
	r.Finish(ctx.Trace, 200, "matched")
	if st := r.Stats(); st.Open != 0 || st.Finished != 1 {
		t.Fatalf("post-export finish broken: %+v", st)
	}
}

// TestCheckChromeJSON: the exported scenario passes the checker, and
// the checker's evidence matches the scenario — message A is the full
// causal chain (dropped xmit#0 + delivered xmit#1 + engine arrive +
// matched root); message B is clean with a single attempt.
func TestCheckChromeJSON(t *testing.T) {
	r := New(Options{KeepAll: true})
	record(r)
	var b bytes.Buffer
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	rep, err := CheckChromeJSON(&b)
	if err != nil {
		t.Fatalf("check failed: %v\n%s", err, b.String())
	}
	if rep.Traces != 2 {
		t.Fatalf("report %+v: want 2 traces", rep)
	}
	if rep.FaultTraces != 1 {
		t.Fatalf("report %+v: want 1 fault trace", rep)
	}
	if rep.FullChains != 1 {
		t.Fatalf("report %+v: want 1 full causal chain", rep)
	}
	if rep.Counters != 2 {
		t.Fatalf("report %+v: want 2 counter samples", rep)
	}
}

// TestCheckRejectsBrokenParent: a span pointing at a parent in another
// trace fails validation.
func TestCheckRejectsBrokenParent(t *testing.T) {
	bad := `{"traceEvents":[
{"name":"a","cat":"client","ph":"X","ts":0,"dur":1,"pid":0,"tid":1,"args":{"trace":"1","span":"1","parent":"0"}},
{"name":"b","cat":"wire","ph":"X","ts":0,"dur":1,"pid":0,"tid":2,"args":{"trace":"2","span":"2","parent":"1"}}
]}`
	if _, err := CheckChromeJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("cross-trace parent accepted")
	}
	dup := `{"traceEvents":[
{"name":"a","cat":"client","ph":"X","ts":0,"dur":1,"pid":0,"tid":1,"args":{"trace":"1","span":"1","parent":"0"}},
{"name":"b","cat":"wire","ph":"X","ts":0,"dur":1,"pid":0,"tid":2,"args":{"trace":"1","span":"1","parent":"0"}}
]}`
	if _, err := CheckChromeJSON(strings.NewReader(dup)); err == nil {
		t.Fatal("duplicate span id accepted")
	}
	if _, err := CheckChromeJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("non-JSON accepted")
	}
}
