package ctrace

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLI is the standard -trace-* flag bundle commands expose for the
// causal-tracing spine, mirroring perf.CLI and fault.CLI: register the
// flags, build a Recorder with New (nil when tracing was not requested,
// keeping the run bit-identical to an untraced one), and call Finish at
// exit to write the Chrome export.
type CLI struct {
	Out       string
	Cap       int
	KeepAll   bool
	Quantile  float64
	TriggerNS float64
}

// Register installs the flags on fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.StringVar(&c.Out, "trace-out", "", "write a Chrome trace-event JSON timeline here (Perfetto / chrome://tracing)")
	fs.IntVar(&c.Cap, "trace-cap", DefaultCapacity, "flight-recorder bound: max retained traces")
	fs.BoolVar(&c.KeepAll, "trace-keep-all", false, "retain every trace instead of tail-based sampling")
	fs.Float64Var(&c.Quantile, "trace-quantile", 0.99, "tail retention: keep fault-free traces at/above this latency quantile")
	fs.Float64Var(&c.TriggerNS, "trace-trigger-ns", 0, "record a trigger when a trace's latency exceeds this (simulated ns, 0: off)")
}

// Enabled reports whether tracing was requested.
func (c *CLI) Enabled() bool { return c.Out != "" }

// New builds the recorder the flags describe, or nil when tracing was
// not requested.
func (c *CLI) New() *Recorder {
	if !c.Enabled() {
		return nil
	}
	return New(Options{
		Capacity:         c.Cap,
		KeepAll:          c.KeepAll,
		LatencyQuantile:  c.Quantile,
		TriggerLatencyNS: c.TriggerNS,
	})
}

// Finish writes the Chrome export and prints a one-line summary plus
// any latency triggers. A nil recorder (tracing off) is a no-op.
func (c *CLI) Finish(w io.Writer, r *Recorder) error {
	if r == nil || c.Out == "" {
		return nil
	}
	f, err := os.Create(c.Out)
	if err != nil {
		return err
	}
	if err := r.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st := r.Stats()
	fmt.Fprintf(w, "trace: %s (%d retained of %d finished, %d open, %d evicted)\n",
		c.Out, st.Retained, st.Finished, st.Open, st.Evicted)
	for _, t := range r.Triggered() {
		fmt.Fprintf(w, "trace: TRIGGER %s\n", t)
	}
	return nil
}
