package ctrace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the Chrome trace golden file")

// checkGolden compares got against testdata/name, rewriting the file
// under -update (mirrors internal/telemetry's exporter golden tests).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden output\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// TestChromeGolden locks the Chrome export byte-for-byte: the scenario
// in record() interleaves two messages' events out of order, so the
// golden file also proves the exporter's cycle-ordered sort.
func TestChromeGolden(t *testing.T) {
	r := New(Options{KeepAll: true})
	record(r)
	var b bytes.Buffer
	if err := r.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_chrome.json", b.Bytes())
}

// TestChromeDeterministic re-records and re-exports the scenario many
// times: every pass must be byte-identical (no map iteration anywhere
// in the export path).
func TestChromeDeterministic(t *testing.T) {
	var first []byte
	for i := 0; i < 20; i++ {
		r := New(Options{KeepAll: true})
		record(r)
		var b bytes.Buffer
		if err := r.WriteChrome(&b); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b.Bytes()
		} else if !bytes.Equal(first, b.Bytes()) {
			t.Fatalf("pass %d produced different bytes", i)
		}
	}
}
