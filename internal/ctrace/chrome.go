package ctrace

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event JSON export (the "JSON Array Format" both
// chrome://tracing and Perfetto load). The file is built by hand —
// no encoding/json, no map iteration — so a seeded run exports
// byte-identical output, which the golden test locks.
//
// Layout conventions:
//
//   - pid = rank; every rank gets a process_name metadata record and
//     one named thread lane per layer (client/wire/transport/engine/
//     daemon), so a message's timeline reads top-to-bottom through the
//     stack.
//   - spans are phase 'X' (complete) events with ts/dur in µs
//     (fractional, 3 decimals → ns precision preserved); fault marks
//     are phase 'i' instants; heater/residency samples are phase 'C'
//     counter tracks under a dedicated "counters" pid.
//   - args carry the causal identity (trace/span/parent) as decimal
//     strings plus each event's ordered KV annotations; Perfetto shows
//     them in the selection panel and the checker rebuilds span trees
//     from them.

// counterPid is the synthetic process counter tracks render under.
const counterPid = 1 << 20

// WriteChrome exports every retained trace, every still-open trace
// (sealed as status "open"), and all counter samples as Chrome
// trace-event JSON.
func (r *Recorder) WriteChrome(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{\"traceEvents\":[]}\n")
		return err
	}
	traces, counters := r.snapshot()
	return writeChrome(w, traces, counters)
}

func writeChrome(w io.Writer, traces []*Trace, counters []Event) error {
	var evs []Event
	pids := map[int]uint8{} // pid -> bitmask of lanes seen
	for _, t := range traces {
		for _, ev := range t.Events {
			evs = append(evs, ev)
			if ev.Lane > 0 && ev.Lane < numLanes {
				pids[ev.Pid] |= 1 << ev.Lane
			}
		}
	}
	// Stable visual order: by start time, then by causal identity so
	// simultaneous events (a drop and its retransmit arming) never
	// shuffle between runs.
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		return a.Span < b.Span
	})

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}

	// Metadata: name the process and thread lanes.
	pidOrder := make([]int, 0, len(pids))
	for pid := range pids {
		pidOrder = append(pidOrder, pid)
	}
	sort.Ints(pidOrder)
	for _, pid := range pidOrder {
		sep()
		writeMeta(bw, "process_name", pid, 0, "rank "+strconv.Itoa(pid))
		for l := Lane(1); l < numLanes; l++ {
			if pids[pid]&(1<<l) == 0 {
				continue
			}
			bw.WriteString(",\n")
			writeMeta(bw, "thread_name", pid, int(l), l.String())
		}
	}
	if len(counters) > 0 {
		sep()
		writeMeta(bw, "process_name", counterPid, 0, "counters")
	}

	for _, ev := range evs {
		sep()
		writeSpan(bw, &ev)
	}
	for _, ev := range counters {
		sep()
		writeCounter(bw, &ev)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func writeMeta(bw *bufio.Writer, kind string, pid, tid int, name string) {
	bw.WriteString("{\"name\":\"")
	bw.WriteString(kind)
	bw.WriteString("\",\"ph\":\"M\",\"pid\":")
	bw.WriteString(strconv.Itoa(pid))
	bw.WriteString(",\"tid\":")
	bw.WriteString(strconv.Itoa(tid))
	bw.WriteString(",\"args\":{\"name\":")
	writeJSONString(bw, name)
	bw.WriteString("}}")
}

func writeSpan(bw *bufio.Writer, ev *Event) {
	bw.WriteString("{\"name\":")
	writeJSONString(bw, ev.Name)
	bw.WriteString(",\"cat\":\"")
	bw.WriteString(ev.Lane.String())
	bw.WriteString("\",\"ph\":\"")
	bw.WriteByte(ev.Phase)
	bw.WriteString("\",\"ts\":")
	bw.WriteString(formatFloat(ev.StartNS / 1e3))
	if ev.Phase == 'X' {
		bw.WriteString(",\"dur\":")
		bw.WriteString(formatFloat(ev.DurNS / 1e3))
	}
	bw.WriteString(",\"pid\":")
	bw.WriteString(strconv.Itoa(ev.Pid))
	bw.WriteString(",\"tid\":")
	bw.WriteString(strconv.Itoa(int(ev.Lane)))
	if ev.Phase == 'i' {
		bw.WriteString(",\"s\":\"t\"")
	}
	bw.WriteString(",\"args\":{\"trace\":\"")
	bw.WriteString(strconv.FormatUint(ev.Trace, 10))
	bw.WriteString("\",\"span\":\"")
	bw.WriteString(strconv.FormatUint(ev.Span, 10))
	bw.WriteString("\",\"parent\":\"")
	bw.WriteString(strconv.FormatUint(ev.Parent, 10))
	bw.WriteString("\"")
	for _, kv := range ev.Args {
		bw.WriteString(",")
		writeJSONString(bw, kv.K)
		bw.WriteString(":")
		writeJSONString(bw, kv.V)
	}
	bw.WriteString("}}")
}

func writeCounter(bw *bufio.Writer, ev *Event) {
	bw.WriteString("{\"name\":")
	writeJSONString(bw, ev.Name)
	bw.WriteString(",\"ph\":\"C\",\"ts\":")
	bw.WriteString(formatFloat(ev.StartNS / 1e3))
	bw.WriteString(",\"pid\":")
	bw.WriteString(strconv.Itoa(counterPid))
	bw.WriteString(",\"tid\":0,\"args\":{")
	for i, kv := range ev.Args {
		if i > 0 {
			bw.WriteString(",")
		}
		writeJSONString(bw, kv.K)
		bw.WriteString(":")
		bw.WriteString(kv.V) // counter values are numeric literals
	}
	bw.WriteString("}}")
}

// formatFloat renders a timestamp or counter value with fixed 3-decimal
// precision: deterministic, and µs-with-ns-precision for ts/dur.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// writeJSONString writes s as a JSON string literal. Span names and
// annotation values are ASCII by construction; anything unusual is
// escaped the conservative way.
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			bw.WriteString("\\u00")
			bw.WriteByte(hex[c>>4])
			bw.WriteByte(hex[c&0xf])
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}
