package matchlist

import (
	"spco/internal/match"
	"spco/internal/simmem"
)

// DefaultEntriesPerNode is the first spatial-locality level: two PRQ
// entries fill a 64-byte line together with the node header and next
// pointer (Figure 2).
const DefaultEntriesPerNode = 2

// llaNode is one linked-list-of-arrays node: a header (head/tail
// indexes), K contiguous entries, and a next pointer, laid out in
// simulated memory as
//
//	[0,8)            head+tail indexes
//	[8, 8+24K)       entries
//	[8+24K, 16+24K)  next pointer
type llaNode struct {
	addr    simmem.Addr
	entries []match.Posted
	head    int // first used slot
	tail    int // one past last used slot
	live    int // non-hole entries in [head,tail)
	next    *llaNode
}

func (n *llaNode) entryAddr(i int) simmem.Addr {
	return n.addr + simmem.Addr(match.NodeHeaderBytes+i*match.PostedEntryBytes)
}

func (n *llaNode) nextPtrAddr(k int) simmem.Addr {
	return n.addr + simmem.Addr(match.NodeHeaderBytes+k*match.PostedEntryBytes)
}

// llaPosted is the paper's linked list of arrays PRQ.
type llaPosted struct {
	cfg       Config
	k         int
	nodeBytes uint64
	ctrl      simmem.Addr
	head      *llaNode
	tail      *llaNode
	n         int
	bytes     uint64
	regions   simmem.RegionSet
	pool      []*llaNode
	pstats    PoolStats
}

func newLLAPosted(cfg Config) *llaPosted {
	k := cfg.EntriesPerNode
	if k <= 0 {
		k = DefaultEntriesPerNode
	}
	l := &llaPosted{cfg: cfg, k: k, nodeBytes: match.NodeBytes(k, match.PostedEntryBytes)}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	return l
}

func (l *llaPosted) Name() string { return "lla" }

// EntriesPerNode reports K (used by reports and tests).
func (l *llaPosted) EntriesPerNode() int { return l.k }

func (l *llaPosted) allocNode() *llaNode {
	if len(l.pool) > 0 {
		n := l.pool[len(l.pool)-1]
		l.pool = l.pool[:len(l.pool)-1]
		l.pstats.Gets++
		n.head, n.tail, n.live, n.next = 0, 0, 0, nil
		for i := range n.entries {
			n.entries[i] = match.Posted{}
		}
		regAdd(&l.cfg, &l.regions, simmem.Region{Base: n.addr, Size: l.nodeBytes})
		l.bytes += l.nodeBytes
		return n
	}
	if l.cfg.Pool {
		l.pstats.Misses++
	}
	// Nodes are 128-byte aligned so the adjacent-line prefetcher's
	// buddy is the node's own second line, exactly as the paper's
	// explanation of the 8-entry peak assumes.
	addr := l.cfg.Space.Alloc(l.nodeBytes, 128)
	l.bytes += l.nodeBytes
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: addr, Size: l.nodeBytes})
	return &llaNode{addr: addr, entries: make([]match.Posted, l.k)}
}

func (l *llaPosted) freeNode(n *llaNode) {
	regRemove(&l.cfg, &l.regions, simmem.Region{Base: n.addr, Size: l.nodeBytes})
	l.bytes -= l.nodeBytes
	if l.cfg.Pool {
		l.pool = append(l.pool, n)
		l.pstats.Puts++
	} else {
		l.cfg.Space.Free(n.addr, l.nodeBytes)
	}
}

// PoolStats implements PoolStatser.
func (l *llaPosted) PoolStats() PoolStats {
	st := l.pstats
	st.Size = len(l.pool)
	return st
}

// Post appends at the tail array, growing the list by a node when full.
// Per-post unrelated allocations (request objects) still land between
// node allocations, as in a real library.
func (l *llaPosted) Post(p match.Posted) {
	l.cfg.Space.Alloc(l.cfg.noise(), 8)
	l.cfg.Acc.Access(l.ctrl, 16)
	if l.tail == nil || l.tail.tail == l.k {
		n := l.allocNode()
		if l.tail == nil {
			l.head, l.tail = n, n
		} else {
			l.cfg.Acc.Access(l.tail.nextPtrAddr(l.k), 8)
			l.tail.next = n
			l.tail = n
		}
	}
	n := l.tail
	n.entries[n.tail] = p
	l.cfg.Acc.Access(n.entryAddr(n.tail), match.PostedEntryBytes)
	l.cfg.Acc.Access(n.addr, 8) // update tail index
	n.tail++
	n.live++
	l.n++
}

// Search walks nodes in order. The per-slot candidate test runs through
// the packed branch-free kernel (match.FindPosted) over the node's
// contiguous entry array; the modeled accounting is unchanged — every
// slot up to and including the hit (or every used slot on a miss) is
// charged one entry access and one depth unit, holes included, exactly
// as the scalar loop did.
func (l *llaPosted) Search(e match.Envelope) (match.Posted, int, bool) {
	l.cfg.Acc.Access(l.ctrl, 16)
	depth, seg := 0, 0
	var prev *llaNode
	for n := l.head; n != nil; n = n.next {
		l.cfg.setSeg(seg)
		l.cfg.Acc.Access(n.addr, 8) // head/tail indexes
		hit := match.FindPosted(n.entries[n.head:n.tail], e)
		last := n.tail
		if hit >= 0 {
			last = n.head + hit + 1
		}
		for i := n.head; i < last; i++ {
			l.cfg.Acc.Access(n.entryAddr(i), match.PostedEntryBytes)
			depth++
		}
		if hit >= 0 {
			i := n.head + hit
			ent := n.entries[i]
			l.removeAt(prev, n, i)
			l.cfg.setSeg(-1)
			return ent, depth, true
		}
		l.cfg.Acc.Access(n.nextPtrAddr(l.k), 8)
		prev = n
		seg++
	}
	l.cfg.setSeg(-1)
	return match.Posted{}, depth, false
}

// Cancel removes the entry with the given request handle.
func (l *llaPosted) Cancel(req uint64) bool {
	l.cfg.Acc.Access(l.ctrl, 16)
	var prev *llaNode
	for n := l.head; n != nil; n = n.next {
		l.cfg.Acc.Access(n.addr, 8)
		for i := n.head; i < n.tail; i++ {
			l.cfg.Acc.Access(n.entryAddr(i), match.PostedEntryBytes)
			ent := n.entries[i]
			if !ent.IsHole() && ent.Req == req {
				l.removeAt(prev, n, i)
				return true
			}
		}
		l.cfg.Acc.Access(n.nextPtrAddr(l.k), 8)
		prev = n
	}
	return false
}

// removeAt deletes slot i of node n. Mid-array deletions become holes
// (tag/source invalidated, masks set — Section 3.1); head deletions
// advance the head index past any leading holes; empty nodes unlink.
func (l *llaPosted) removeAt(prev, n *llaNode, i int) {
	if i == n.head {
		n.head++
		for n.head < n.tail && n.entries[n.head].IsHole() {
			l.cfg.Acc.Access(n.entryAddr(n.head), match.PostedEntryBytes)
			n.head++
		}
	} else {
		n.entries[i] = match.Hole()
		l.cfg.Acc.Access(n.entryAddr(i), match.PostedEntryBytes)
	}
	l.cfg.Acc.Access(n.addr, 8)
	n.live--
	l.n--
	// Unlink a node once it holds no live entries and cannot receive
	// future appends (only the tail node with free slots can).
	if n.live == 0 && (n != l.tail || n.tail == l.k) {
		l.unlinkNode(prev, n)
	}
}

func (l *llaPosted) unlinkNode(prev, n *llaNode) {
	if prev == nil {
		l.head = n.next
	} else {
		l.cfg.Acc.Access(prev.nextPtrAddr(l.k), 8)
		prev.next = n.next
	}
	if l.tail == n {
		l.tail = prev
	}
	l.cfg.Acc.Access(l.ctrl, 16)
	l.freeNode(n)
}

func (l *llaPosted) Len() int { return l.n }

func (l *llaPosted) Regions() []simmem.Region { return l.regions.Regions() }

func (l *llaPosted) MemoryBytes() uint64 { return l.bytes }

// llaUnexpected is the UMQ variant: 16-byte entries, three per line at
// the first locality level (K_umq = 3·K_prq/2 keeps the node byte size
// aligned with the PRQ sweep).
type llaUnexpected struct {
	cfg       Config
	k         int
	nodeBytes uint64
	ctrl      simmem.Addr
	head      *lluNode
	tail      *lluNode
	n         int
	bytes     uint64
	regions   simmem.RegionSet
	pool      []*lluNode
	pstats    PoolStats
}

type lluNode struct {
	addr    simmem.Addr
	entries []match.Unexpected
	head    int
	tail    int
	live    int
	next    *lluNode
}

func (n *lluNode) entryAddr(i int) simmem.Addr {
	return n.addr + simmem.Addr(match.NodeHeaderBytes+i*match.UnexpectedEntryBytes)
}

func (n *lluNode) nextPtrAddr(k int) simmem.Addr {
	return n.addr + simmem.Addr(match.NodeHeaderBytes+k*match.UnexpectedEntryBytes)
}

// UMQEntriesFor maps a PRQ K to the UMQ node capacity: 2 PRQ entries
// correspond to 3 UMQ entries per node (same 64-byte node).
func UMQEntriesFor(prqK int) int {
	if prqK <= 0 {
		prqK = DefaultEntriesPerNode
	}
	k := prqK * 3 / 2
	if k < 3 {
		k = 3
	}
	return k
}

func newLLAUnexpected(cfg Config) *llaUnexpected {
	k := UMQEntriesFor(cfg.EntriesPerNode)
	l := &llaUnexpected{cfg: cfg, k: k, nodeBytes: match.NodeBytes(k, match.UnexpectedEntryBytes)}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	return l
}

func (l *llaUnexpected) Name() string { return "lla" }

func (l *llaUnexpected) allocNode() *lluNode {
	if len(l.pool) > 0 {
		n := l.pool[len(l.pool)-1]
		l.pool = l.pool[:len(l.pool)-1]
		l.pstats.Gets++
		n.head, n.tail, n.live, n.next = 0, 0, 0, nil
		regAdd(&l.cfg, &l.regions, simmem.Region{Base: n.addr, Size: l.nodeBytes})
		l.bytes += l.nodeBytes
		return n
	}
	if l.cfg.Pool {
		l.pstats.Misses++
	}
	addr := l.cfg.Space.Alloc(l.nodeBytes, 128)
	l.bytes += l.nodeBytes
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: addr, Size: l.nodeBytes})
	return &lluNode{addr: addr, entries: make([]match.Unexpected, l.k)}
}

func (l *llaUnexpected) Append(u match.Unexpected) {
	l.cfg.Space.Alloc(l.cfg.noise(), 8)
	l.cfg.Acc.Access(l.ctrl, 16)
	if l.tail == nil || l.tail.tail == l.k {
		n := l.allocNode()
		if l.tail == nil {
			l.head, l.tail = n, n
		} else {
			l.cfg.Acc.Access(l.tail.nextPtrAddr(l.k), 8)
			l.tail.next = n
			l.tail = n
		}
	}
	n := l.tail
	n.entries[n.tail] = u
	l.cfg.Acc.Access(n.entryAddr(n.tail), match.UnexpectedEntryBytes)
	l.cfg.Acc.Access(n.addr, 8)
	n.tail++
	n.live++
	l.n++
}

// SearchBy mirrors llaPosted.Search: the packed kernel
// (match.FindUnexpected) picks the candidate, the accounting charges
// the same accesses and depth as the scalar slot-by-slot loop.
func (l *llaUnexpected) SearchBy(p match.Posted) (match.Unexpected, int, bool) {
	l.cfg.Acc.Access(l.ctrl, 16)
	depth, seg := 0, 0
	var prev *lluNode
	for n := l.head; n != nil; n = n.next {
		l.cfg.setSeg(seg)
		l.cfg.Acc.Access(n.addr, 8)
		hit := match.FindUnexpected(n.entries[n.head:n.tail], p)
		last := n.tail
		if hit >= 0 {
			last = n.head + hit + 1
		}
		for i := n.head; i < last; i++ {
			l.cfg.Acc.Access(n.entryAddr(i), match.UnexpectedEntryBytes)
			depth++
		}
		if hit >= 0 {
			i := n.head + hit
			ent := n.entries[i]
			l.removeAt(prev, n, i)
			l.cfg.setSeg(-1)
			return ent, depth, true
		}
		l.cfg.Acc.Access(n.nextPtrAddr(l.k), 8)
		prev = n
		seg++
	}
	l.cfg.setSeg(-1)
	return match.Unexpected{}, depth, false
}

func (l *llaUnexpected) removeAt(prev, n *lluNode, i int) {
	if i == n.head {
		n.head++
		for n.head < n.tail && n.entries[n.head].IsHole() {
			l.cfg.Acc.Access(n.entryAddr(n.head), match.UnexpectedEntryBytes)
			n.head++
		}
	} else {
		n.entries[i] = match.UnexpectedHole()
		l.cfg.Acc.Access(n.entryAddr(i), match.UnexpectedEntryBytes)
	}
	l.cfg.Acc.Access(n.addr, 8)
	n.live--
	l.n--
	if n.live == 0 && (n != l.tail || n.tail == l.k) {
		if prev == nil {
			l.head = n.next
		} else {
			l.cfg.Acc.Access(prev.nextPtrAddr(l.k), 8)
			prev.next = n.next
		}
		if l.tail == n {
			l.tail = prev
		}
		l.cfg.Acc.Access(l.ctrl, 16)
		regRemove(&l.cfg, &l.regions, simmem.Region{Base: n.addr, Size: l.nodeBytes})
		l.bytes -= l.nodeBytes
		if l.cfg.Pool {
			l.pool = append(l.pool, n)
			l.pstats.Puts++
		} else {
			l.cfg.Space.Free(n.addr, l.nodeBytes)
		}
	}
}

// PoolStats implements PoolStatser.
func (l *llaUnexpected) PoolStats() PoolStats {
	st := l.pstats
	st.Size = len(l.pool)
	return st
}

func (l *llaUnexpected) Len() int { return l.n }

func (l *llaUnexpected) Regions() []simmem.Region { return l.regions.Regions() }

func (l *llaUnexpected) MemoryBytes() uint64 { return l.bytes }
