package matchlist

import (
	"math"

	"spco/internal/match"
	"spco/internal/simmem"
)

// fourD is the Zounmevo-Afsahi message-queue mechanism (related work,
// Section 5): the source rank is decomposed into four digits of radix
// ceil(N^(1/4)) and looked up through a four-level trie whose interior
// arrays are allocated lazily. Memory grows with the population of
// distinct sources instead of the full communicator size, while lookup
// stays O(1) in list operations (four array hops). Wildcard-source
// receives use the fallback chain, as in rankArray.
type fourD struct {
	cfg      Config
	radix    int
	capacity int // radix^4, the largest decomposable rank + 1
	root     *fourDLevel
	wild     chain
	ctrl     simmem.Addr
	seq      uint64
	n        int
	bytes    uint64
	regions  simmem.RegionSet
}

// fourDLevel is one trie level: an array of child pointers (interior)
// or of chains (leaves).
type fourDLevel struct {
	addr     simmem.Addr
	children []*fourDLevel
	leaves   []chain
}

func newFourD(cfg Config) *fourD {
	// CommSize > 0 and <= MaxCommSize are guaranteed by Config.Validate;
	// radix = ceil(N^(1/4)) then makes radix^4 >= CommSize, so every
	// in-communicator rank decomposes into four digits.
	radix := int(math.Ceil(math.Pow(float64(cfg.CommSize), 0.25)))
	if radix < 2 {
		radix = 2
	}
	l := &fourD{cfg: cfg, radix: radix, capacity: radix * radix * radix * radix}
	if cfg.Pool {
		l.cfg.cpool = &chainPool{}
	}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	l.root = l.newLevel(false)
	l.wild.cfg = &l.cfg
	return l
}

func (l *fourD) Name() string { return "fourd" }

// Radix reports the computed per-dimension radix (for tests/reports).
func (l *fourD) Radix() int { return l.radix }

func (l *fourD) newLevel(leaf bool) *fourDLevel {
	size := uint64(l.radix) * 8
	lv := &fourDLevel{addr: l.cfg.Space.Alloc(size, simmem.LineSize)}
	l.bytes += size
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: lv.addr, Size: size})
	if leaf {
		lv.leaves = make([]chain, l.radix)
		for i := range lv.leaves {
			lv.leaves[i].cfg = &l.cfg
		}
	} else {
		lv.children = make([]*fourDLevel, l.radix)
	}
	return lv
}

// rankInRange reports whether the rank decomposes into four trie
// digits. Out-of-range ranks (negative, or beyond the radix capacity a
// misdeclared CommSize would imply) degrade to the ordered fallback
// chain instead of detonating mid-workload; the configuration itself is
// bounded up front by Config.Validate.
func (l *fourD) rankInRange(rank int) bool {
	return rank >= 0 && rank < l.capacity
}

// digits decomposes an in-range rank into its four trie digits, most
// significant first.
func (l *fourD) digits(rank int) [4]int {
	var d [4]int
	r := rank
	for i := 3; i >= 0; i-- {
		d[i] = r % l.radix
		r /= l.radix
	}
	return d
}

// leafFor walks to (creating, when create is set) the chain for rank.
// Each level hop costs one pointer access.
func (l *fourD) leafFor(rank int, create bool) *chain {
	d := l.digits(rank)
	lv := l.root
	for i := 0; i < 3; i++ {
		l.cfg.Acc.Access(lv.addr+simmem.Addr(d[i]*8), 8)
		next := lv.children[d[i]]
		if next == nil {
			if !create {
				return nil
			}
			next = l.newLevel(i == 2)
			lv.children[d[i]] = next
		}
		lv = next
	}
	l.cfg.Acc.Access(lv.addr+simmem.Addr(d[3]*8), 8)
	return &lv.leaves[d[3]]
}

func (l *fourD) Post(p match.Posted) {
	l.cfg.Acc.Access(l.ctrl, 16)
	e := seqEntry{entry: p, seq: l.seq}
	l.seq++
	if (p.IsWild() && p.RankMask == 0) || !l.rankInRange(int(p.Rank)) {
		l.wild.append(&l.regions, &l.bytes, e)
	} else {
		l.leafFor(int(p.Rank), true).append(&l.regions, &l.bytes, e)
	}
	l.n++
}

func (l *fourD) Search(e match.Envelope) (match.Posted, int, bool) {
	l.cfg.Acc.Access(l.ctrl, 16)
	depth := 0
	var binPrev, binNode *chainNode
	var leaf *chain
	if l.rankInRange(int(e.Rank)) {
		leaf = l.leafFor(int(e.Rank), false)
		if leaf != nil {
			binPrev, binNode = leaf.firstMatch(e, &depth)
		}
	}
	wildPrev, wildNode := l.wild.firstMatch(e, &depth)

	switch {
	case binNode == nil && wildNode == nil:
		return match.Posted{}, depth, false
	case wildNode == nil || (binNode != nil && binNode.e.seq < wildNode.e.seq):
		leaf.remove(&l.regions, &l.bytes, binPrev, binNode)
		l.n--
		return binNode.e.entry, depth, true
	default:
		l.wild.remove(&l.regions, &l.bytes, wildPrev, wildNode)
		l.n--
		return wildNode.e.entry, depth, true
	}
}

func (l *fourD) Cancel(req uint64) bool {
	l.cfg.Acc.Access(l.ctrl, 16)
	if prev, node := l.wild.findReq(req); node != nil {
		l.wild.remove(&l.regions, &l.bytes, prev, node)
		l.n--
		return true
	}
	found := false
	var walk func(lv *fourDLevel, depth int)
	walk = func(lv *fourDLevel, depth int) {
		if found || lv == nil {
			return
		}
		if lv.leaves != nil {
			for i := range lv.leaves {
				if prev, node := lv.leaves[i].findReq(req); node != nil {
					lv.leaves[i].remove(&l.regions, &l.bytes, prev, node)
					l.n--
					found = true
					return
				}
			}
			return
		}
		for _, c := range lv.children {
			walk(c, depth+1)
		}
	}
	walk(l.root, 0)
	return found
}

// PoolStats implements PoolStatser over the shared chain-node pool.
func (l *fourD) PoolStats() PoolStats { return chainPoolStats(l.cfg.cpool) }

func (l *fourD) Len() int { return l.n }

func (l *fourD) Regions() []simmem.Region { return l.regions.Regions() }

func (l *fourD) MemoryBytes() uint64 { return l.bytes }
