package matchlist

import (
	"spco/internal/match"
	"spco/internal/simmem"
)

// DefaultBins matches the related work's evaluated configuration
// (Flajslik et al. report results with 256 bins).
const DefaultBins = 256

// hashBins is the hash-map matching structure from the related work:
// the match list is replaced by a fixed hash map keyed on the full set
// of matching criteria, mapping to separate linked lists. Wildcard
// receives cannot be hashed and live on a fallback chain; correctness
// requires comparing sequence numbers so the earliest posted receive
// wins regardless of which chain holds it.
type hashBins struct {
	cfg      Config
	bins     []chain
	wild     chain
	binsAddr simmem.Addr // the bucket-head array
	ctrl     simmem.Addr
	seq      uint64
	n        int
	bytes    uint64
	regions  simmem.RegionSet
}

func newHashBins(cfg Config) *hashBins {
	bins := cfg.Bins
	if bins <= 0 {
		bins = DefaultBins
	}
	l := &hashBins{cfg: cfg, bins: make([]chain, bins)}
	if cfg.Pool {
		l.cfg.cpool = &chainPool{}
	}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	// The bucket-head array: 8 bytes per bin.
	l.binsAddr = cfg.Space.Alloc(uint64(bins)*8, simmem.LineSize)
	l.bytes += uint64(bins) * 8
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.binsAddr, Size: uint64(bins) * 8})
	for i := range l.bins {
		l.bins[i].cfg = &l.cfg
	}
	l.wild.cfg = &l.cfg
	return l
}

func (l *hashBins) Name() string { return "hashbins" }

// hashKey mixes the full matching criteria, as the related work's design
// prescribes.
func (l *hashBins) hashKey(ctx uint16, rank int32, tag int32) int {
	h := uint64(ctx)*0x9E3779B97F4A7C15 ^ uint64(uint32(rank))*0xC2B2AE3D27D4EB4F ^ uint64(uint32(tag))*0x165667B19E3779F9
	h ^= h >> 29
	return int(h % uint64(len(l.bins)))
}

func (l *hashBins) binFor(p match.Posted) *chain {
	return &l.bins[l.hashKey(p.Ctx, int32(p.Rank), p.Tag)]
}

func (l *hashBins) Post(p match.Posted) {
	l.cfg.Acc.Access(l.ctrl, 16)
	e := seqEntry{entry: p, seq: l.seq}
	l.seq++
	if p.IsWild() {
		l.wild.append(&l.regions, &l.bytes, e)
	} else {
		b := l.hashKey(p.Ctx, int32(p.Rank), p.Tag)
		l.cfg.Acc.Access(l.binsAddr+simmem.Addr(b*8), 8)
		l.bins[b].append(&l.regions, &l.bytes, e)
	}
	l.n++
}

func (l *hashBins) Search(e match.Envelope) (match.Posted, int, bool) {
	l.cfg.Acc.Access(l.ctrl, 16)
	depth := 0
	b := l.hashKey(e.Ctx, e.Rank, e.Tag)
	l.cfg.Acc.Access(l.binsAddr+simmem.Addr(b*8), 8)
	binPrev, binNode := l.bins[b].firstMatch(e, &depth)
	wildPrev, wildNode := l.wild.firstMatch(e, &depth)

	switch {
	case binNode == nil && wildNode == nil:
		return match.Posted{}, depth, false
	case wildNode == nil || (binNode != nil && binNode.e.seq < wildNode.e.seq):
		l.bins[b].remove(&l.regions, &l.bytes, binPrev, binNode)
		l.n--
		return binNode.e.entry, depth, true
	default:
		l.wild.remove(&l.regions, &l.bytes, wildPrev, wildNode)
		l.n--
		return wildNode.e.entry, depth, true
	}
}

func (l *hashBins) Cancel(req uint64) bool {
	l.cfg.Acc.Access(l.ctrl, 16)
	if prev, node := l.wild.findReq(req); node != nil {
		l.wild.remove(&l.regions, &l.bytes, prev, node)
		l.n--
		return true
	}
	for i := range l.bins {
		if prev, node := l.bins[i].findReq(req); node != nil {
			l.bins[i].remove(&l.regions, &l.bytes, prev, node)
			l.n--
			return true
		}
	}
	return false
}

// PoolStats implements PoolStatser over the shared chain-node pool.
func (l *hashBins) PoolStats() PoolStats { return chainPoolStats(l.cfg.cpool) }

func (l *hashBins) Len() int { return l.n }

func (l *hashBins) Regions() []simmem.Region { return l.regions.Regions() }

func (l *hashBins) MemoryBytes() uint64 { return l.bytes }
