package matchlist

import (
	"math/rand"
	"testing"

	"spco/internal/match"
	"spco/internal/simmem"
)

// checkLLAInvariants walks the node chain verifying the structural
// invariants the implementation relies on:
//
//  1. every node's used window satisfies 0 <= head <= tail <= K;
//  2. live counts equal the non-hole entries in the window;
//  3. the slot at head is never a hole (head deletions skip them);
//  4. only the tail node may have free slots at its end;
//  5. no node other than a tail-with-space is fully dead;
//  6. the list's Len equals the sum of node live counts.
func checkLLAInvariants(t *testing.T, l *llaPosted) {
	t.Helper()
	sumLive := 0
	for n := l.head; n != nil; n = n.next {
		if n.head < 0 || n.head > n.tail || n.tail > l.k {
			t.Fatalf("window corrupt: head=%d tail=%d k=%d", n.head, n.tail, l.k)
		}
		live := 0
		for i := n.head; i < n.tail; i++ {
			if !n.entries[i].IsHole() {
				live++
			}
		}
		if live != n.live {
			t.Fatalf("live count drift: counted %d, recorded %d", live, n.live)
		}
		if n.head < n.tail && n.entries[n.head].IsHole() {
			t.Fatal("hole at window head")
		}
		if n != l.tail && n.tail != l.k {
			t.Fatalf("interior node with free slots: tail=%d k=%d", n.tail, l.k)
		}
		if n.live == 0 && (n != l.tail || n.tail == l.k) {
			t.Fatal("dead node not unlinked")
		}
		sumLive += live
	}
	if sumLive != l.n {
		t.Fatalf("Len drift: nodes hold %d, list says %d", sumLive, l.n)
	}
	if l.head == nil && l.tail != nil || l.head != nil && l.tail == nil {
		t.Fatal("head/tail nil mismatch")
	}
}

func TestLLAInvariantsUnderRandomOps(t *testing.T) {
	for _, k := range []int{2, 4, 8, 32} {
		for seed := int64(0); seed < 4; seed++ {
			rng := rand.New(rand.NewSource(seed))
			l := NewPosted(KindLLA, Config{
				Space: simmem.NewSpace(), Acc: FreeAccessor{},
				EntriesPerNode: k, Pool: seed%2 == 0,
			}).(*llaPosted)
			var reqs []uint64
			next := uint64(1)
			for op := 0; op < 2000; op++ {
				switch r := rng.Intn(10); {
				case r < 5:
					l.Post(match.NewPosted(rng.Intn(4), rng.Intn(64), 1, next))
					reqs = append(reqs, next)
					next++
				case r < 8:
					if len(reqs) == 0 {
						continue
					}
					// Search for a live entry's (rank, tag) — removal at
					// arbitrary position.
					e := match.Envelope{Rank: int32(rng.Intn(4)), Tag: int32(rng.Intn(64)), Ctx: 1}
					if p, _, ok := l.Search(e); ok {
						reqs = removeReq(reqs, p.Req)
					}
				default:
					if len(reqs) == 0 {
						continue
					}
					idx := rng.Intn(len(reqs))
					if l.Cancel(reqs[idx]) {
						reqs = append(reqs[:idx], reqs[idx+1:]...)
					}
				}
				checkLLAInvariants(t, l)
			}
		}
	}
}

func removeReq(reqs []uint64, req uint64) []uint64 {
	for i, r := range reqs {
		if r == req {
			return append(reqs[:i], reqs[i+1:]...)
		}
	}
	return reqs
}

// Memory accounting never goes negative and regions always cover the
// recorded bytes.
func TestLLAMemoryAccountingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	l := NewPosted(KindLLA, Config{
		Space: simmem.NewSpace(), Acc: FreeAccessor{}, EntriesPerNode: 4,
	})
	next := uint64(1)
	for op := 0; op < 3000; op++ {
		if rng.Intn(2) == 0 {
			l.Post(match.NewPosted(0, rng.Intn(16), 1, next))
			next++
		} else {
			l.Search(match.Envelope{Rank: 0, Tag: int32(rng.Intn(16)), Ctx: 1})
		}
		var total uint64
		for _, r := range l.Regions() {
			total += r.Size
		}
		if total != l.MemoryBytes() {
			t.Fatalf("op %d: regions %d bytes != MemoryBytes %d", op, total, l.MemoryBytes())
		}
	}
}
