package matchlist

import (
	"spco/internal/match"
	"spco/internal/simmem"
)

// baselineNodeBytes is the footprint of one posted receive in the
// unmodified engine: the match fields are embedded in a full
// MPID_Request-sized object (MVAPICH requests run several hundred
// bytes), spanning multiple cache lines — Section 4.2: "the unmodified
// baseline requires more than a cache line for a single entry".
const baselineNodeBytes = 320

// A search reads the envelope fields at the front of the request and
// the next pointer deep inside it (request state separates them), so
// every traversal step touches two cache lines four lines apart — past
// the reach of the buddy and adjacent-pair prefetchers, which is what
// makes the pointer-chasing baseline pay two memory latencies per
// entry when cold.
const (
	baselineMatchBytes = 40
	baselineNextOff    = 256
	baselinePtrBytes   = 8
)

// baselineAlign keeps nodes line-aligned without promising pair
// alignment — a long-lived malloc heap guarantees no more.
const baselineAlign = 64

// blNode is one baseline list node.
type blNode struct {
	addr  simmem.Addr
	entry match.Posted
	next  *blNode
}

// baselinePosted is the MPICH-style PRQ: a single linked list, one
// entry per node, nodes scattered through a long-lived heap.
type baselinePosted struct {
	cfg     Config
	ctrl    simmem.Addr
	head    *blNode
	tail    *blNode
	n       int
	bytes   uint64
	regions simmem.RegionSet
	pool    []*blNode
	pstats  PoolStats
}

func newBaselinePosted(cfg Config) *baselinePosted {
	l := &baselinePosted{cfg: cfg}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	return l
}

func (l *baselinePosted) Name() string { return "baseline" }

func (l *baselinePosted) allocNode() *blNode {
	// The request object and other per-post allocations land between
	// nodes, so consecutive nodes are never prefetcher-adjacent.
	addr := l.cfg.Space.AllocReuse(baselineNodeBytes, baselineAlign)
	l.cfg.Space.Alloc(l.cfg.noise(), 8)
	l.bytes += baselineNodeBytes
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: addr, Size: baselineNodeBytes})
	// Pooling recycles only the Go node object; the simulated address
	// sequence above is identical with or without it, so modeled cycles
	// do not depend on the Pool knob.
	if l.cfg.Pool {
		if k := len(l.pool); k > 0 {
			n := l.pool[k-1]
			l.pool = l.pool[:k-1]
			l.pstats.Gets++
			n.addr, n.entry, n.next = addr, match.Posted{}, nil
			return n
		}
		l.pstats.Misses++
	}
	return &blNode{addr: addr}
}

func (l *baselinePosted) freeNode(n *blNode) {
	l.cfg.Space.Free(n.addr, baselineNodeBytes)
	regRemove(&l.cfg, &l.regions, simmem.Region{Base: n.addr, Size: baselineNodeBytes})
	l.bytes -= baselineNodeBytes
	if l.cfg.Pool {
		n.next = nil
		l.pool = append(l.pool, n)
		l.pstats.Puts++
	}
}

// PoolStats implements PoolStatser.
func (l *baselinePosted) PoolStats() PoolStats {
	st := l.pstats
	st.Size = len(l.pool)
	return st
}

// Post appends at the tail.
func (l *baselinePosted) Post(p match.Posted) {
	n := l.allocNode()
	n.entry = p
	l.cfg.Acc.Access(l.ctrl, 16)
	l.cfg.Acc.Access(n.addr, baselineMatchBytes)
	l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		l.cfg.Acc.Access(l.tail.addr+baselineNextOff, baselinePtrBytes) // link the next pointer
		l.tail.next = n
		l.tail = n
	}
	l.n++
}

// Search walks from the head, removing and returning the first match.
func (l *baselinePosted) Search(e match.Envelope) (match.Posted, int, bool) {
	l.cfg.Acc.Access(l.ctrl, 16)
	depth := 0
	var prev *blNode
	for n := l.head; n != nil; n = n.next {
		l.cfg.setSeg(depth)
		l.cfg.Acc.Access(n.addr, baselineMatchBytes)
		l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
		depth++
		if n.entry.Matches(e) {
			l.unlink(prev, n)
			l.cfg.setSeg(-1)
			return n.entry, depth, true
		}
		prev = n
	}
	l.cfg.setSeg(-1)
	return match.Posted{}, depth, false
}

// Cancel removes the entry holding the request handle.
func (l *baselinePosted) Cancel(req uint64) bool {
	l.cfg.Acc.Access(l.ctrl, 16)
	var prev *blNode
	for n := l.head; n != nil; n = n.next {
		l.cfg.Acc.Access(n.addr, baselineMatchBytes)
		l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
		if !n.entry.IsHole() && n.entry.Req == req {
			l.unlink(prev, n)
			return true
		}
		prev = n
	}
	return false
}

func (l *baselinePosted) unlink(prev, n *blNode) {
	if prev == nil {
		l.head = n.next
	} else {
		l.cfg.Acc.Access(prev.addr+baselineNextOff, baselinePtrBytes)
		prev.next = n.next
	}
	if l.tail == n {
		l.tail = prev
	}
	l.cfg.Acc.Access(l.ctrl, 16)
	l.freeNode(n)
	l.n--
}

func (l *baselinePosted) Len() int { return l.n }

func (l *baselinePosted) Regions() []simmem.Region { return l.regions.Regions() }

func (l *baselinePosted) MemoryBytes() uint64 { return l.bytes }

// baselineUnexpected is the same structure for the UMQ.
type baselineUnexpected struct {
	cfg     Config
	ctrl    simmem.Addr
	head    *buNode
	tail    *buNode
	n       int
	bytes   uint64
	regions simmem.RegionSet
	pool    []*buNode
	pstats  PoolStats
}

type buNode struct {
	addr  simmem.Addr
	entry match.Unexpected
	next  *buNode
}

func newBaselineUnexpected(cfg Config) *baselineUnexpected {
	l := &baselineUnexpected{cfg: cfg}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	return l
}

func (l *baselineUnexpected) Name() string { return "baseline" }

func (l *baselineUnexpected) allocNode(u match.Unexpected) *buNode {
	addr := l.cfg.Space.AllocReuse(baselineNodeBytes, baselineAlign)
	l.cfg.Space.Alloc(l.cfg.noise(), 8)
	l.bytes += baselineNodeBytes
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: addr, Size: baselineNodeBytes})
	if l.cfg.Pool {
		if k := len(l.pool); k > 0 {
			n := l.pool[k-1]
			l.pool = l.pool[:k-1]
			l.pstats.Gets++
			n.addr, n.entry, n.next = addr, u, nil
			return n
		}
		l.pstats.Misses++
	}
	return &buNode{addr: addr, entry: u}
}

func (l *baselineUnexpected) freeNode(n *buNode) {
	l.cfg.Space.Free(n.addr, baselineNodeBytes)
	regRemove(&l.cfg, &l.regions, simmem.Region{Base: n.addr, Size: baselineNodeBytes})
	l.bytes -= baselineNodeBytes
	if l.cfg.Pool {
		n.next = nil
		l.pool = append(l.pool, n)
		l.pstats.Puts++
	}
}

// PoolStats implements PoolStatser.
func (l *baselineUnexpected) PoolStats() PoolStats {
	st := l.pstats
	st.Size = len(l.pool)
	return st
}

func (l *baselineUnexpected) Append(u match.Unexpected) {
	n := l.allocNode(u)
	l.cfg.Acc.Access(l.ctrl, 16)
	l.cfg.Acc.Access(n.addr, baselineMatchBytes)
	l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		l.cfg.Acc.Access(l.tail.addr+baselineNextOff, baselinePtrBytes)
		l.tail.next = n
		l.tail = n
	}
	l.n++
}

func (l *baselineUnexpected) SearchBy(p match.Posted) (match.Unexpected, int, bool) {
	l.cfg.Acc.Access(l.ctrl, 16)
	depth := 0
	var prev *buNode
	for n := l.head; n != nil; n = n.next {
		l.cfg.setSeg(depth)
		l.cfg.Acc.Access(n.addr, baselineMatchBytes)
		l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
		depth++
		if n.entry.MatchedBy(p) {
			if prev == nil {
				l.head = n.next
			} else {
				l.cfg.Acc.Access(prev.addr+baselineNextOff, baselinePtrBytes)
				prev.next = n.next
			}
			if l.tail == n {
				l.tail = prev
			}
			l.cfg.Acc.Access(l.ctrl, 16)
			ent := n.entry
			l.freeNode(n)
			l.n--
			l.cfg.setSeg(-1)
			return ent, depth, true
		}
		prev = n
	}
	l.cfg.setSeg(-1)
	return match.Unexpected{}, depth, false
}

func (l *baselineUnexpected) Len() int { return l.n }

func (l *baselineUnexpected) Regions() []simmem.Region { return l.regions.Regions() }

func (l *baselineUnexpected) MemoryBytes() uint64 { return l.bytes }
