package matchlist

import (
	"spco/internal/match"
	"spco/internal/simmem"
)

// baselineNodeBytes is the footprint of one posted receive in the
// unmodified engine: the match fields are embedded in a full
// MPID_Request-sized object (MVAPICH requests run several hundred
// bytes), spanning multiple cache lines — Section 4.2: "the unmodified
// baseline requires more than a cache line for a single entry".
const baselineNodeBytes = 320

// A search reads the envelope fields at the front of the request and
// the next pointer deep inside it (request state separates them), so
// every traversal step touches two cache lines four lines apart — past
// the reach of the buddy and adjacent-pair prefetchers, which is what
// makes the pointer-chasing baseline pay two memory latencies per
// entry when cold.
const (
	baselineMatchBytes = 40
	baselineNextOff    = 256
	baselinePtrBytes   = 8
)

// baselineAlign keeps nodes line-aligned without promising pair
// alignment — a long-lived malloc heap guarantees no more.
const baselineAlign = 64

// blNode is one baseline list node.
type blNode struct {
	addr  simmem.Addr
	entry match.Posted
	next  *blNode
}

// baselinePosted is the MPICH-style PRQ: a single linked list, one
// entry per node, nodes scattered through a long-lived heap.
type baselinePosted struct {
	cfg     Config
	ctrl    simmem.Addr
	head    *blNode
	tail    *blNode
	n       int
	bytes   uint64
	regions simmem.RegionSet
}

func newBaselinePosted(cfg Config) *baselinePosted {
	l := &baselinePosted{cfg: cfg}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	return l
}

func (l *baselinePosted) Name() string { return "baseline" }

func (l *baselinePosted) allocNode() *blNode {
	// The request object and other per-post allocations land between
	// nodes, so consecutive nodes are never prefetcher-adjacent.
	addr := l.cfg.Space.AllocReuse(baselineNodeBytes, baselineAlign)
	l.cfg.Space.Alloc(l.cfg.noise(), 8)
	l.bytes += baselineNodeBytes
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: addr, Size: baselineNodeBytes})
	return &blNode{addr: addr}
}

func (l *baselinePosted) freeNode(n *blNode) {
	l.cfg.Space.Free(n.addr, baselineNodeBytes)
	regRemove(&l.cfg, &l.regions, simmem.Region{Base: n.addr, Size: baselineNodeBytes})
	l.bytes -= baselineNodeBytes
}

// Post appends at the tail.
func (l *baselinePosted) Post(p match.Posted) {
	n := l.allocNode()
	n.entry = p
	l.cfg.Acc.Access(l.ctrl, 16)
	l.cfg.Acc.Access(n.addr, baselineMatchBytes)
	l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		l.cfg.Acc.Access(l.tail.addr+baselineNextOff, baselinePtrBytes) // link the next pointer
		l.tail.next = n
		l.tail = n
	}
	l.n++
}

// Search walks from the head, removing and returning the first match.
func (l *baselinePosted) Search(e match.Envelope) (match.Posted, int, bool) {
	l.cfg.Acc.Access(l.ctrl, 16)
	depth := 0
	var prev *blNode
	for n := l.head; n != nil; n = n.next {
		l.cfg.setSeg(depth)
		l.cfg.Acc.Access(n.addr, baselineMatchBytes)
		l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
		depth++
		if n.entry.Matches(e) {
			l.unlink(prev, n)
			l.cfg.setSeg(-1)
			return n.entry, depth, true
		}
		prev = n
	}
	l.cfg.setSeg(-1)
	return match.Posted{}, depth, false
}

// Cancel removes the entry holding the request handle.
func (l *baselinePosted) Cancel(req uint64) bool {
	l.cfg.Acc.Access(l.ctrl, 16)
	var prev *blNode
	for n := l.head; n != nil; n = n.next {
		l.cfg.Acc.Access(n.addr, baselineMatchBytes)
		l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
		if !n.entry.IsHole() && n.entry.Req == req {
			l.unlink(prev, n)
			return true
		}
		prev = n
	}
	return false
}

func (l *baselinePosted) unlink(prev, n *blNode) {
	if prev == nil {
		l.head = n.next
	} else {
		l.cfg.Acc.Access(prev.addr+baselineNextOff, baselinePtrBytes)
		prev.next = n.next
	}
	if l.tail == n {
		l.tail = prev
	}
	l.cfg.Acc.Access(l.ctrl, 16)
	l.freeNode(n)
	l.n--
}

func (l *baselinePosted) Len() int { return l.n }

func (l *baselinePosted) Regions() []simmem.Region { return l.regions.Regions() }

func (l *baselinePosted) MemoryBytes() uint64 { return l.bytes }

// baselineUnexpected is the same structure for the UMQ.
type baselineUnexpected struct {
	cfg     Config
	ctrl    simmem.Addr
	head    *buNode
	tail    *buNode
	n       int
	bytes   uint64
	regions simmem.RegionSet
}

type buNode struct {
	addr  simmem.Addr
	entry match.Unexpected
	next  *buNode
}

func newBaselineUnexpected(cfg Config) *baselineUnexpected {
	l := &baselineUnexpected{cfg: cfg}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	return l
}

func (l *baselineUnexpected) Name() string { return "baseline" }

func (l *baselineUnexpected) Append(u match.Unexpected) {
	addr := l.cfg.Space.AllocReuse(baselineNodeBytes, baselineAlign)
	l.cfg.Space.Alloc(l.cfg.noise(), 8)
	l.bytes += baselineNodeBytes
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: addr, Size: baselineNodeBytes})
	n := &buNode{addr: addr, entry: u}
	l.cfg.Acc.Access(l.ctrl, 16)
	l.cfg.Acc.Access(n.addr, baselineMatchBytes)
	l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		l.cfg.Acc.Access(l.tail.addr+baselineNextOff, baselinePtrBytes)
		l.tail.next = n
		l.tail = n
	}
	l.n++
}

func (l *baselineUnexpected) SearchBy(p match.Posted) (match.Unexpected, int, bool) {
	l.cfg.Acc.Access(l.ctrl, 16)
	depth := 0
	var prev *buNode
	for n := l.head; n != nil; n = n.next {
		l.cfg.setSeg(depth)
		l.cfg.Acc.Access(n.addr, baselineMatchBytes)
		l.cfg.Acc.Access(n.addr+baselineNextOff, baselinePtrBytes)
		depth++
		if n.entry.MatchedBy(p) {
			if prev == nil {
				l.head = n.next
			} else {
				l.cfg.Acc.Access(prev.addr+baselineNextOff, baselinePtrBytes)
				prev.next = n.next
			}
			if l.tail == n {
				l.tail = prev
			}
			l.cfg.Acc.Access(l.ctrl, 16)
			l.cfg.Space.Free(n.addr, baselineNodeBytes)
			regRemove(&l.cfg, &l.regions, simmem.Region{Base: n.addr, Size: baselineNodeBytes})
			l.bytes -= baselineNodeBytes
			l.n--
			l.cfg.setSeg(-1)
			return n.entry, depth, true
		}
		prev = n
	}
	l.cfg.setSeg(-1)
	return match.Unexpected{}, depth, false
}

func (l *baselineUnexpected) Len() int { return l.n }

func (l *baselineUnexpected) Regions() []simmem.Region { return l.regions.Regions() }

func (l *baselineUnexpected) MemoryBytes() uint64 { return l.bytes }
