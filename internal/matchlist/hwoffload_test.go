package matchlist

import (
	"math/rand"
	"testing"

	"spco/internal/cache"
	"spco/internal/match"
	"spco/internal/simmem"
)

func newHW(t *testing.T, capacity int) PostedList {
	t.Helper()
	return NewHWOffload(Config{
		Space: simmem.NewSpace(),
		Acc:   FreeAccessor{},
	}, capacity)
}

func TestHWOffloadBasicMatch(t *testing.T) {
	l := newHW(t, 4)
	l.Post(match.NewPosted(1, 1, 1, 10))
	l.Post(match.NewPosted(2, 2, 1, 20))
	p, depth, ok := l.Search(match.Envelope{Rank: 2, Tag: 2, Ctx: 1})
	if !ok || p.Req != 20 {
		t.Fatalf("hw match failed: %+v ok=%v", p, ok)
	}
	if depth != 1 {
		t.Errorf("hardware match depth = %d, want fixed 1", depth)
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestHWOffloadSpill(t *testing.T) {
	l := newHW(t, 4).(*hwOffload)
	for i := 0; i < 10; i++ {
		l.Post(match.NewPosted(0, i, 1, uint64(i)))
	}
	if l.HWResident() != 4 {
		t.Fatalf("hw resident = %d, want 4", l.HWResident())
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	// An entry past the hardware window lives in software.
	_, depth, ok := l.Search(match.Envelope{Rank: 0, Tag: 9, Ctx: 1})
	if !ok {
		t.Fatal("spilled entry not found")
	}
	if depth <= 1 {
		t.Errorf("spilled match depth = %d, want > 1 (software walk)", depth)
	}
}

func TestHWOffloadPromotion(t *testing.T) {
	l := newHW(t, 2).(*hwOffload)
	for i := 0; i < 5; i++ {
		l.Post(match.NewPosted(0, i, 1, uint64(i)))
	}
	// Consume the two hardware entries; spilled ones must promote in
	// order so FIFO semantics hold.
	for want := 0; want < 5; want++ {
		p, _, ok := l.Search(match.Envelope{Rank: 0, Tag: int32(want), Ctx: 1})
		if !ok || p.Req != uint64(want) {
			t.Fatalf("FIFO broken at %d: %+v ok=%v (hw=%d)", want, p, ok, l.HWResident())
		}
	}
}

func TestHWOffloadOrderingAcrossBoundary(t *testing.T) {
	// A wildcard receive in hardware must beat a younger exact match in
	// the spill list.
	l := newHW(t, 1)
	l.Post(match.NewPosted(match.AnySource, match.AnyTag, 1, 1)) // hw
	l.Post(match.NewPosted(3, 7, 1, 2))                          // spill
	p, _, ok := l.Search(match.Envelope{Rank: 3, Tag: 7, Ctx: 1})
	if !ok || p.Req != 1 {
		t.Errorf("older hardware wildcard should win, got req %d", p.Req)
	}
}

func TestHWOffloadCancel(t *testing.T) {
	l := newHW(t, 2).(*hwOffload)
	for i := 0; i < 4; i++ {
		l.Post(match.NewPosted(0, i, 1, uint64(i)))
	}
	if !l.Cancel(0) { // hardware entry
		t.Fatal("cancel in hardware failed")
	}
	if !l.Cancel(3) { // software entry
		t.Fatal("cancel in software failed")
	}
	if l.Cancel(99) {
		t.Fatal("cancel of unknown request succeeded")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
	// Promotion after hardware cancel keeps FIFO order.
	p, _, ok := l.Search(match.Envelope{Rank: 0, Tag: 1, Ctx: 1})
	if !ok || p.Req != 1 {
		t.Errorf("post-cancel order broken: %+v", p)
	}
}

// Reference equivalence under random load, hardware boundary included.
func TestHWOffloadReferenceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := newHW(t, 8)
	var ref []match.Posted
	next := uint64(1)
	for op := 0; op < 2000; op++ {
		if rng.Intn(2) == 0 {
			rank := rng.Intn(8)
			if rng.Intn(12) == 0 {
				rank = match.AnySource
			}
			p := match.NewPosted(rank, rng.Intn(6), 1, next)
			next++
			l.Post(p)
			ref = append(ref, p)
		} else {
			e := match.Envelope{Rank: int32(rng.Intn(8)), Tag: int32(rng.Intn(6)), Ctx: 1}
			got, _, gotOK := l.Search(e)
			wantIdx := -1
			for i, p := range ref {
				if p.Matches(e) {
					wantIdx = i
					break
				}
			}
			if gotOK != (wantIdx >= 0) {
				t.Fatalf("op %d: ok=%v want %v", op, gotOK, wantIdx >= 0)
			}
			if gotOK {
				if got.Req != ref[wantIdx].Req {
					t.Fatalf("op %d: got req %d, want %d", op, got.Req, ref[wantIdx].Req)
				}
				ref = append(ref[:wantIdx], ref[wantIdx+1:]...)
			}
		}
		if l.Len() != len(ref) {
			t.Fatalf("op %d: Len %d != ref %d", op, l.Len(), len(ref))
		}
	}
}

// The Section 2.2 crossover: below hardware capacity, matching cost is
// flat and cheap; past it, software costs grow with depth — exactly
// where software locality work starts to matter.
func TestHWOffloadCrossover(t *testing.T) {
	costAt := func(depth int) uint64 {
		h := cache.New(cache.SandyBridge)
		acc := NewCacheAccessor(h, 0)
		l := NewHWOffload(Config{Space: simmem.NewSpace(), Acc: acc}, 128)
		for i := 0; i < depth; i++ {
			l.Post(match.NewPosted(0, 100000+i, 1, uint64(i)))
		}
		l.Post(match.NewPosted(1, 7, 1, 999))
		h.Flush()
		acc.Reset()
		if _, _, ok := l.Search(match.Envelope{Rank: 1, Tag: 7, Ctx: 1}); !ok {
			t.Fatal("lost entry")
		}
		return acc.Cycles
	}
	under := costAt(64)  // fits in hardware
	over := costAt(2048) // deep software spill
	if under > 400 {
		t.Errorf("under-capacity match cost %d cycles, want near-fixed", under)
	}
	if over < under*10 {
		t.Errorf("over-capacity match (%d) should dwarf in-hardware (%d)", over, under)
	}
}
