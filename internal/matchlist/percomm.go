package matchlist

import (
	"sort"

	"spco/internal/match"
	"spco/internal/simmem"
)

// perComm is the MPICH CH4-style refinement the paper's Section 2.2
// describes: "Newer approaches like CH4 in MPICH, however, use more
// than one list" — one queue per communicator, selected by context id
// in O(1). Within a communicator the queue is the plain linked list, so
// this comparator isolates exactly how much communicator partitioning
// alone buys (nothing for single-communicator workloads, a lot for
// multi-communicator ones) without any locality engineering.
type perComm struct {
	cfg     Config
	ctrl    simmem.Addr
	lists   map[uint16]*baselinePosted
	ctxs    []uint16 // allocation order, for deterministic Cancel scans
	n       int
	bytes   uint64
	regions simmem.RegionSet
}

func newPerComm(cfg Config) *perComm {
	l := &perComm{cfg: cfg, lists: make(map[uint16]*baselinePosted)}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	return l
}

func (l *perComm) Name() string { return "percomm" }

// listFor returns (creating on demand) the communicator's queue. The
// per-communicator table lookup costs one control-line access.
func (l *perComm) listFor(ctx uint16, create bool) *baselinePosted {
	l.cfg.Acc.Access(l.ctrl, 8)
	sub, ok := l.lists[ctx]
	if !ok && create {
		sub = newBaselinePosted(l.cfg)
		l.lists[ctx] = sub
		l.ctxs = append(l.ctxs, ctx)
		sort.Slice(l.ctxs, func(i, j int) bool { return l.ctxs[i] < l.ctxs[j] })
	}
	return sub
}

func (l *perComm) Post(p match.Posted) {
	l.listFor(p.Ctx, true).Post(p)
	l.n++
}

func (l *perComm) Search(e match.Envelope) (match.Posted, int, bool) {
	sub := l.listFor(e.Ctx, false)
	if sub == nil {
		return match.Posted{}, 0, false
	}
	p, depth, ok := sub.Search(e)
	if ok {
		l.n--
	}
	return p, depth, ok
}

func (l *perComm) Cancel(req uint64) bool {
	for _, ctx := range l.ctxs {
		if l.lists[ctx].Cancel(req) {
			l.n--
			return true
		}
	}
	return false
}

// PoolStats sums the per-communicator sub-lists' node pools.
func (l *perComm) PoolStats() PoolStats {
	var st PoolStats
	for _, ctx := range l.ctxs {
		st = st.Add(l.lists[ctx].PoolStats())
	}
	return st
}

func (l *perComm) Len() int { return l.n }

func (l *perComm) Regions() []simmem.Region {
	out := append([]simmem.Region{}, l.regions.Regions()...)
	for _, ctx := range l.ctxs {
		out = append(out, l.lists[ctx].Regions()...)
	}
	return out
}

func (l *perComm) MemoryBytes() uint64 {
	total := l.bytes
	for _, ctx := range l.ctxs {
		total += l.lists[ctx].MemoryBytes()
	}
	return total
}
