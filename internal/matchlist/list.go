// Package matchlist provides the match-queue data structures the paper
// studies and compares against (Sections 2.2, 3.1, 5):
//
//   - Baseline: the MPICH-style single linked list, one entry per node,
//     each node larger than a cache line (the unmodified reference).
//   - LLA: the paper's linked list of arrays — K entries packed
//     contiguously per node, tombstone holes, optional element pool.
//   - HashBins: the Flajslik-style hash map over full matching criteria
//     with a wildcard fallback (related work).
//   - RankArray: the Open MPI hierarchical per-communicator, per-source
//     array of lists — O(1) bucket lookup, O(N) memory per process.
//   - FourD: the Zounmevo-Afsahi 4-dimensional rank decomposition.
//
// Every structure allocates its metadata from a simulated address space
// (internal/simmem) and reports each byte it inspects to an Accessor, so
// the cache simulator observes the exact memory-touch sequence a real
// traversal would produce. Matching order follows MPI semantics: among
// all entries that could match, the earliest posted/arrived one wins.
package matchlist

import (
	"fmt"

	"spco/internal/match"
	"spco/internal/simmem"
)

// Accessor receives every demand memory access a structure performs.
type Accessor interface {
	// Access models a load or store of size bytes at addr and returns
	// its cost in cycles (zero for cost-free accessors).
	Access(addr simmem.Addr, size uint64) uint64
}

// FreeAccessor ignores accesses; used when only algorithmic behaviour
// (lengths, depths, correctness) is under study.
type FreeAccessor struct{}

// Access implements Accessor at zero cost.
func (FreeAccessor) Access(simmem.Addr, uint64) uint64 { return 0 }

// CountingAccessor tallies accesses and bytes; useful in tests.
type CountingAccessor struct {
	Accesses uint64
	Bytes    uint64
}

// Access implements Accessor.
func (c *CountingAccessor) Access(_ simmem.Addr, size uint64) uint64 {
	c.Accesses++
	c.Bytes += size
	return 0
}

// PostedList is a posted-receive queue (PRQ).
type PostedList interface {
	// Post appends a receive, preserving MPI posting order.
	Post(p match.Posted)

	// Search finds, removes, and returns the earliest posted entry
	// matching the envelope. depth is the number of slots inspected
	// (holes included: they cost memory traffic too).
	Search(e match.Envelope) (p match.Posted, depth int, ok bool)

	// Cancel removes the entry with the given request handle, as
	// MPI_Cancel would. It reports whether the handle was found.
	Cancel(req uint64) bool

	// Len returns the number of live (non-hole) entries.
	Len() int

	// Regions returns the memory regions backing the structure, for
	// registration with the hot-caching heater.
	Regions() []simmem.Region

	// MemoryBytes returns the structure's total metadata footprint.
	MemoryBytes() uint64

	// Name identifies the implementation (for reports).
	Name() string
}

// UnexpectedList is an unexpected-message queue (UMQ).
type UnexpectedList interface {
	// Append records a message that found no posted receive.
	Append(u match.Unexpected)

	// SearchBy finds, removes, and returns the earliest arrived message
	// matching the posted receive.
	SearchBy(p match.Posted) (u match.Unexpected, depth int, ok bool)

	Len() int
	Regions() []simmem.Region
	MemoryBytes() uint64
	Name() string
}

// Kind selects a PostedList implementation.
type Kind int

// The implementations.
const (
	KindBaseline Kind = iota
	KindLLA
	KindHashBins
	KindRankArray
	KindFourD
	KindHWOffload
	KindPerComm
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBaseline:
		return "baseline"
	case KindLLA:
		return "lla"
	case KindHashBins:
		return "hashbins"
	case KindRankArray:
		return "rankarray"
	case KindFourD:
		return "fourd"
	case KindHWOffload:
		return "hwoffload"
	case KindPerComm:
		return "percomm"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind maps a name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "baseline":
		return KindBaseline, nil
	case "lla":
		return KindLLA, nil
	case "hashbins":
		return KindHashBins, nil
	case "rankarray":
		return KindRankArray, nil
	case "fourd":
		return KindFourD, nil
	case "hwoffload":
		return KindHWOffload, nil
	case "percomm":
		return KindPerComm, nil
	}
	return 0, fmt.Errorf("matchlist: unknown kind %q", s)
}

// RegionListener observes the lifecycle of a structure's memory regions.
// The hot-caching heater implements it to keep its registry in sync; the
// returned values are the synchronisation cycles the operation cost,
// which the listener also accumulates for its owner to charge.
type RegionListener interface {
	RegionAdded(simmem.Region) uint64
	RegionRemoved(simmem.Region) uint64
}

// regAdd records a region and notifies the listener.
func regAdd(cfg *Config, rs *simmem.RegionSet, r simmem.Region) {
	rs.Add(r)
	if cfg.Listener != nil {
		cfg.Listener.RegionAdded(r)
	}
}

// regRemove drops a region and notifies the listener.
func regRemove(cfg *Config, rs *simmem.RegionSet, r simmem.Region) {
	rs.Remove(r)
	if cfg.Listener != nil {
		cfg.Listener.RegionRemoved(r)
	}
}

// PoolStats counts free-pool activity for one structure (zero unless
// Config.Pool). The engine publishes the PRQ+UMQ sums as spco_pool_*
// counters.
type PoolStats struct {
	Gets   uint64 // nodes served from the pool
	Misses uint64 // nodes freshly allocated with pooling on (pool empty)
	Puts   uint64 // nodes returned to the pool
	Size   int    // nodes currently pooled
}

// Add returns the elementwise sum.
func (p PoolStats) Add(o PoolStats) PoolStats {
	return PoolStats{
		Gets:   p.Gets + o.Gets,
		Misses: p.Misses + o.Misses,
		Puts:   p.Puts + o.Puts,
		Size:   p.Size + o.Size,
	}
}

// PoolStatser is implemented by structures that recycle nodes through a
// free pool.
type PoolStatser interface {
	PoolStats() PoolStats
}

// chainPool recycles the Go-side chainNode objects of the bucketed
// structures. Unlike the LLA pool it does not pin simulated addresses:
// chain.remove still returns the block to Space's free list and
// chain.append still draws from AllocReuse, so the simulated allocation
// sequence — and with it every modeled cycle — is bit-identical with
// pooling on or off. Only the Go heap traffic disappears.
type chainPool struct {
	free  []*chainNode
	stats PoolStats
}

// Config parameterises construction.
type Config struct {
	Space *simmem.Space // required: simulated address space
	Acc   Accessor      // required: access cost sink

	// Listener, when set, observes region allocation and release (the
	// hot-caching heater registers itself here).
	Listener RegionListener

	// EntriesPerNode is the LLA's K (2,4,8,16,32 in the paper's sweep;
	// 64+ for the "LLA-Large" variant). Ignored by other kinds.
	EntriesPerNode int

	// Bins is the HashBins bucket count (the paper's related work uses
	// 256). Ignored by other kinds.
	Bins int

	// CommSize is the communicator size for RankArray/FourD sizing.
	CommSize int

	// Pool enables node recycling through a free pool (the modified LLA
	// used by the temporal-locality experiments: reuse keeps node
	// addresses stable, which both warms reuse and lets the heater skip
	// region-list removals).
	Pool bool

	// NoiseBytes is the unrelated allocation (request object, user
	// metadata) modeled between successive entry posts. It scatters
	// baseline nodes so no prefetcher can bridge them — the realistic
	// long-lived-heap behaviour the paper's baseline exhibits. Zero
	// selects the per-kind default.
	NoiseBytes uint64

	// cpool is the shared chain-node free pool; the bucketed
	// constructors set it when Pool is enabled. Chains reach it through
	// their owner's cfg pointer.
	cpool *chainPool
}

// DefaultNoiseBytes models the per-post request-object allocation that
// accompanies every receive in a real MPI library.
const DefaultNoiseBytes = 192

func (c Config) noise() uint64 {
	if c.NoiseBytes == 0 {
		return DefaultNoiseBytes
	}
	return c.NoiseBytes
}

// setSeg publishes the queue segment (node index) the current search is
// inspecting, for the PMU profiler's leaf frame. Only the cache-routed
// accessor carries the field; cost-free accessors ignore it. Pass -1
// when the search ends.
func (c *Config) setSeg(v int) {
	if ca, ok := c.Acc.(*CacheAccessor); ok {
		ca.Seg = v
	}
}

// MaxCommSize is the largest communicator the packed entry layout can
// address: the 2-byte rank field of Figure 2 caps sources at 32768.
const MaxCommSize = 1 << 15

// ValidateParams checks the kind-specific sizing parameters without
// requiring a full Config (library boundaries validate user input with
// it before any simulated allocation happens).
func ValidateParams(kind Kind, entriesPerNode, bins, commSize int) error {
	if entriesPerNode < 0 {
		return fmt.Errorf("matchlist: negative EntriesPerNode %d", entriesPerNode)
	}
	if bins < 0 {
		return fmt.Errorf("matchlist: negative Bins %d", bins)
	}
	if commSize < 0 {
		return fmt.Errorf("matchlist: negative CommSize %d", commSize)
	}
	if commSize > MaxCommSize {
		return fmt.Errorf("matchlist: CommSize %d exceeds the packed-rank cap %d", commSize, MaxCommSize)
	}
	switch kind {
	case KindBaseline, KindLLA, KindHashBins, KindHWOffload, KindPerComm:
	case KindRankArray:
		if commSize <= 0 {
			return fmt.Errorf("matchlist: %v requires Config.CommSize > 0", kind)
		}
	case KindFourD:
		// The 4D radix capacity (radix = ceil(N^(1/4)), capacity =
		// radix^4 >= N) is implied by CommSize; checking once here is
		// what lets the structure reject nothing mid-workload.
		if commSize <= 0 {
			return fmt.Errorf("matchlist: %v requires Config.CommSize > 0", kind)
		}
	default:
		return fmt.Errorf("matchlist: unknown kind %v", kind)
	}
	return nil
}

// Validate checks the configuration for the given kind. Constructors
// reject exactly what Validate rejects; any panic past construction is
// an internal invariant violation, not a configuration error.
func (c Config) Validate(kind Kind) error {
	if c.Space == nil {
		return fmt.Errorf("matchlist: Config.Space is required")
	}
	if c.Acc == nil {
		return fmt.Errorf("matchlist: Config.Acc is required")
	}
	return ValidateParams(kind, c.EntriesPerNode, c.Bins, c.CommSize)
}

// NewPostedList constructs the selected PRQ implementation, rejecting
// misconfiguration with an error.
func NewPostedList(kind Kind, cfg Config) (PostedList, error) {
	if err := cfg.Validate(kind); err != nil {
		return nil, err
	}
	switch kind {
	case KindBaseline:
		return newBaselinePosted(cfg), nil
	case KindLLA:
		return newLLAPosted(cfg), nil
	case KindHashBins:
		return newHashBins(cfg), nil
	case KindRankArray:
		return newRankArray(cfg), nil
	case KindFourD:
		return newFourD(cfg), nil
	case KindHWOffload:
		// Config.Bins carries the hardware capacity (see NewHWOffload).
		return newHWOffload(cfg), nil
	case KindPerComm:
		return newPerComm(cfg), nil
	}
	return nil, fmt.Errorf("matchlist: unknown kind %v", kind)
}

// NewUnexpectedList constructs a UMQ matching the PRQ kind: baseline
// kinds get the baseline UMQ; LLA gets the packed-array UMQ (3 entries
// per line at the first locality level); bucketed kinds reuse the
// baseline UMQ (the paper's comparators focus on the PRQ).
func NewUnexpectedList(kind Kind, cfg Config) (UnexpectedList, error) {
	if err := cfg.Validate(kind); err != nil {
		return nil, err
	}
	if kind == KindLLA {
		return newLLAUnexpected(cfg), nil
	}
	return newBaselineUnexpected(cfg), nil
}

// NewPosted is NewPostedList for pre-validated, code-authored configs
// (tests, workloads behind a validated boundary); it panics on the
// errors NewPostedList returns.
func NewPosted(kind Kind, cfg Config) PostedList {
	l, err := NewPostedList(kind, cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// NewUnexpected is NewUnexpectedList with NewPosted's panicking
// contract.
func NewUnexpected(kind Kind, cfg Config) UnexpectedList {
	u, err := NewUnexpectedList(kind, cfg)
	if err != nil {
		panic(err)
	}
	return u
}
