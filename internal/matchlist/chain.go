package matchlist

import (
	"spco/internal/match"
	"spco/internal/simmem"
)

// chainNodeBytes is one bucketed-structure node: a 24-byte entry, an
// 8-byte sequence number, and an 8-byte next pointer, padded to 64.
const chainNodeBytes = 64

// seqEntry is a posted entry stamped with its global posting order, so
// bucketed structures can honour MPI's earliest-posted-wins rule across
// buckets and the wildcard chain.
type seqEntry struct {
	entry match.Posted
	seq   uint64
}

// chainPoolStats snapshots a pool's counters (zero for a nil pool).
func chainPoolStats(cp *chainPool) PoolStats {
	if cp == nil {
		return PoolStats{}
	}
	st := cp.stats
	st.Size = len(cp.free)
	return st
}

type chainNode struct {
	addr simmem.Addr
	e    seqEntry
	next *chainNode
}

// chain is an ordered singly linked list used as the per-bucket and
// wildcard-fallback list by hashbins, rankarray and fourd.
type chain struct {
	cfg  *Config
	head *chainNode
	tail *chainNode
	n    int
}

func (c *chain) append(rs *simmem.RegionSet, bytes *uint64, e seqEntry) {
	addr := c.cfg.Space.AllocReuse(chainNodeBytes, 64)
	c.cfg.Space.Alloc(c.cfg.noise(), 8)
	*bytes += chainNodeBytes
	regAdd(c.cfg, rs, simmem.Region{Base: addr, Size: chainNodeBytes})
	var n *chainNode
	if cp := c.cfg.cpool; cp != nil {
		if k := len(cp.free); k > 0 {
			n = cp.free[k-1]
			cp.free = cp.free[:k-1]
			cp.stats.Gets++
			n.addr, n.e, n.next = addr, e, nil
		} else {
			cp.stats.Misses++
		}
	}
	if n == nil {
		n = &chainNode{addr: addr, e: e}
	}
	c.cfg.Acc.Access(addr, 40)
	if c.tail == nil {
		c.head, c.tail = n, n
	} else {
		c.cfg.Acc.Access(c.tail.addr, 8)
		c.tail.next = n
		c.tail = n
	}
	c.n++
}

// firstMatch scans for the first entry matching e, charging accessor
// costs and counting inspected entries into depth. It returns the node
// and its predecessor without removing.
func (c *chain) firstMatch(e match.Envelope, depth *int) (prev, node *chainNode) {
	var p *chainNode
	for n := c.head; n != nil; n = n.next {
		c.cfg.Acc.Access(n.addr, 40)
		*depth++
		if n.e.entry.Matches(e) {
			return p, n
		}
		p = n
	}
	return nil, nil
}

// findReq scans for the entry with the given request handle.
func (c *chain) findReq(req uint64) (prev, node *chainNode) {
	var p *chainNode
	for n := c.head; n != nil; n = n.next {
		c.cfg.Acc.Access(n.addr, 40)
		if n.e.entry.Req == req {
			return p, n
		}
		p = n
	}
	return nil, nil
}

// remove unlinks node (whose predecessor is prev) and recycles it.
func (c *chain) remove(rs *simmem.RegionSet, bytes *uint64, prev, node *chainNode) {
	if prev == nil {
		c.head = node.next
	} else {
		c.cfg.Acc.Access(prev.addr, 8)
		prev.next = node.next
	}
	if c.tail == node {
		c.tail = prev
	}
	regRemove(c.cfg, rs, simmem.Region{Base: node.addr, Size: chainNodeBytes})
	*bytes -= chainNodeBytes
	c.cfg.Space.Free(node.addr, chainNodeBytes)
	if cp := c.cfg.cpool; cp != nil {
		node.next = nil
		cp.free = append(cp.free, node)
		cp.stats.Puts++
	}
	c.n--
}
