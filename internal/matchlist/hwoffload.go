package matchlist

import (
	"spco/internal/match"
	"spco/internal/simmem"
)

// DefaultHWEntries is a typical hardware match-unit capacity. BXI-class
// NICs hold a few hundred to a few thousand entries in on-NIC memory;
// the paper's Section 2.2 observation — software matching improvements
// only matter "when list lengths are longer than that which can be
// supported in hardware" — is about exactly this bound.
const DefaultHWEntries = 512

// hwMatchCycles is the host-visible cost of a hardware match: the NIC's
// CAM/list walk is pipelined off the critical path, so the host pays a
// small fixed completion-processing cost regardless of depth.
const hwMatchCycles = 60

// hwOffload models a Portals/BXI-style hardware matching unit: the
// first HWEntries posted receives live in NIC memory and match at fixed
// cost; overflow spills to a software shadow list (here: an LLA) that
// pays normal memory-hierarchy costs. MPI ordering holds because
// hardware entries are strictly older than spilled ones: the unit is
// searched first, and entries promote from the spill list as hardware
// slots drain.
type hwOffload struct {
	cfg       Config
	capacity  int
	hw        []seqEntry // the NIC's on-board list, in posting order
	spill     PostedList // software overflow
	seq       uint64
	hwCycles  uint64 // accumulated fixed-cost cycles (reported via Acc)
	nicRegion simmem.Region
}

// HWOffloadConfig extends Config for the hardware unit.
//
// The capacity rides in Config.Bins to avoid widening Config for one
// comparator (documented here and on NewHWOffload).
func newHWOffload(cfg Config) *hwOffload {
	capacity := cfg.Bins
	if capacity <= 0 {
		capacity = DefaultHWEntries
	}
	spillCfg := cfg
	spillCfg.EntriesPerNode = DefaultEntriesPerNode
	l := &hwOffload{
		cfg:      cfg,
		capacity: capacity,
		spill:    newLLAPosted(spillCfg),
	}
	// NIC memory is not host cache-visible; reserve an address range
	// only so diagnostics can report it.
	l.nicRegion = simmem.Region{
		Base: cfg.Space.Alloc(uint64(capacity)*match.PostedEntryBytes, simmem.LineSize),
		Size: uint64(capacity) * match.PostedEntryBytes,
	}
	return l
}

// NewHWOffload builds the hardware-offload comparator directly (it is
// not a Kind: it exists for the hwoffload extension experiment).
// hwEntries <= 0 selects DefaultHWEntries.
func NewHWOffload(cfg Config, hwEntries int) PostedList {
	cfg.Bins = hwEntries
	if err := cfg.Validate(KindHWOffload); err != nil {
		panic(err)
	}
	return newHWOffload(cfg)
}

func (l *hwOffload) Name() string { return "hwoffload" }

// Post appends to the hardware unit if a slot is free, else spills.
func (l *hwOffload) Post(p match.Posted) {
	e := seqEntry{entry: p, seq: l.seq}
	l.seq++
	if len(l.hw) < l.capacity {
		l.hw = append(l.hw, e)
		// Posting to the NIC is a doorbell write.
		l.cfg.Acc.Access(l.nicRegion.Base, 8)
		return
	}
	l.spill.Post(p)
}

// Search consults the hardware unit first (fixed cost), then the
// software spill list. Hardware entries are all older than spilled
// ones, so first-match-in-hardware wins correctly.
func (l *hwOffload) Search(e match.Envelope) (match.Posted, int, bool) {
	for i, se := range l.hw {
		if se.entry.Matches(e) {
			l.hw = append(l.hw[:i], l.hw[i+1:]...)
			l.promote()
			// The fixed host-side completion cost, modeled as cycles
			// through a dedicated accessor charge.
			l.chargeFixed()
			return se.entry, 1, true
		}
	}
	p, depth, ok := l.spill.Search(e)
	l.chargeFixed() // the NIC reported "no match" before software ran
	return p, depth + 1, ok
}

// promote refills freed hardware slots from the spill list's head,
// preserving order (the oldest spilled entry is the next-oldest
// overall).
func (l *hwOffload) promote() {
	for len(l.hw) < l.capacity && l.spill.Len() > 0 {
		// Pop the spill head via Cancel of its oldest request: walk is
		// cheapest through a head search with a sentinel that matches
		// anything the head matches. The LLA exposes no Pop, so emulate
		// by cancelling the head's request handle found via a probing
		// search. To stay O(1), track heads with a tiny shadow FIFO.
		head, ok := l.popSpillHead()
		if !ok {
			return
		}
		l.hw = append(l.hw, head)
	}
}

// popSpillHead removes and returns the oldest live spill entry.
func (l *hwOffload) popSpillHead() (seqEntry, bool) {
	sl := l.spill.(*llaPosted)
	var prev *llaNode
	for n := sl.head; n != nil; n = n.next {
		for i := n.head; i < n.tail; i++ {
			if !n.entries[i].IsHole() {
				ent := n.entries[i]
				sl.removeAt(prev, n, i)
				return seqEntry{entry: ent, seq: 0}, true
			}
		}
		prev = n
	}
	return seqEntry{}, false
}

// chargeFixed bills the constant hardware interaction.
func (l *hwOffload) chargeFixed() {
	// One doorbell/completion-queue line read.
	l.cfg.Acc.Access(l.nicRegion.Base, 8)
	l.hwCycles += hwMatchCycles
}

// HWCycles reports accumulated fixed-cost cycles; the engine folds the
// NIC interaction into its own accounting via the accessor, and this
// counter lets experiments report the hardware share.
func (l *hwOffload) HWCycles() uint64 { return l.hwCycles }

// HWResident reports entries currently held in the hardware unit.
func (l *hwOffload) HWResident() int { return len(l.hw) }

// Cancel removes by request handle from either store.
func (l *hwOffload) Cancel(req uint64) bool {
	for i, se := range l.hw {
		if se.entry.Req == req {
			l.hw = append(l.hw[:i], l.hw[i+1:]...)
			l.promote()
			l.chargeFixed()
			return true
		}
	}
	return l.spill.Cancel(req)
}

// PoolStats delegates to the software spill list (the hardware unit
// holds entries in a fixed on-NIC array and never allocates nodes).
func (l *hwOffload) PoolStats() PoolStats {
	if ps, ok := l.spill.(PoolStatser); ok {
		return ps.PoolStats()
	}
	return PoolStats{}
}

func (l *hwOffload) Len() int { return len(l.hw) + l.spill.Len() }

func (l *hwOffload) Regions() []simmem.Region {
	return append([]simmem.Region{l.nicRegion}, l.spill.Regions()...)
}

func (l *hwOffload) MemoryBytes() uint64 {
	return l.nicRegion.Size + l.spill.MemoryBytes()
}
