package matchlist

import (
	"math/rand"
	"testing"

	"spco/internal/match"
	"spco/internal/simmem"
)

func newUMQ(t *testing.T, kind Kind) UnexpectedList {
	t.Helper()
	return NewUnexpected(kind, Config{
		Space:          simmem.NewSpace(),
		Acc:            FreeAccessor{},
		EntriesPerNode: 2,
	})
}

func umqKinds() []Kind { return []Kind{KindBaseline, KindLLA} }

func TestUMQAppendSearch(t *testing.T) {
	for _, kind := range umqKinds() {
		l := newUMQ(t, kind)
		l.Append(match.NewUnexpected(match.Envelope{Rank: 3, Tag: 7, Ctx: 1}, 100))
		l.Append(match.NewUnexpected(match.Envelope{Rank: 4, Tag: 8, Ctx: 1}, 101))
		u, _, ok := l.SearchBy(match.NewPosted(4, 8, 1, 0))
		if !ok || u.Msg != 101 {
			t.Errorf("%v: SearchBy got msg %d ok=%v, want 101", kind, u.Msg, ok)
		}
		if l.Len() != 1 {
			t.Errorf("%v: Len = %d, want 1", kind, l.Len())
		}
	}
}

func TestUMQArrivalOrder(t *testing.T) {
	for _, kind := range umqKinds() {
		l := newUMQ(t, kind)
		for i := uint64(1); i <= 3; i++ {
			l.Append(match.NewUnexpected(match.Envelope{Rank: 5, Tag: 9, Ctx: 1}, i))
		}
		for want := uint64(1); want <= 3; want++ {
			u, _, ok := l.SearchBy(match.NewPosted(5, 9, 1, 0))
			if !ok || u.Msg != want {
				t.Errorf("%v: got msg %d, want %d (arrival order)", kind, u.Msg, want)
			}
		}
	}
}

func TestUMQWildcardReceive(t *testing.T) {
	for _, kind := range umqKinds() {
		l := newUMQ(t, kind)
		l.Append(match.NewUnexpected(match.Envelope{Rank: 1, Tag: 5, Ctx: 1}, 1))
		l.Append(match.NewUnexpected(match.Envelope{Rank: 2, Tag: 6, Ctx: 1}, 2))
		u, _, ok := l.SearchBy(match.NewPosted(match.AnySource, match.AnyTag, 1, 0))
		if !ok || u.Msg != 1 {
			t.Errorf("%v: wildcard receive should take earliest arrival, got %d", kind, u.Msg)
		}
	}
}

func TestUMQMiss(t *testing.T) {
	for _, kind := range umqKinds() {
		l := newUMQ(t, kind)
		l.Append(match.NewUnexpected(match.Envelope{Rank: 1, Tag: 5, Ctx: 1}, 1))
		if _, _, ok := l.SearchBy(match.NewPosted(1, 6, 1, 0)); ok {
			t.Errorf("%v: matched wrong tag", kind)
		}
		if _, _, ok := l.SearchBy(match.NewPosted(1, 5, 2, 0)); ok {
			t.Errorf("%v: matched wrong communicator", kind)
		}
	}
}

func TestUMQEntriesFor(t *testing.T) {
	cases := map[int]int{0: 3, 2: 3, 4: 6, 8: 12, 16: 24, 32: 48}
	for prq, want := range cases {
		if got := UMQEntriesFor(prq); got != want {
			t.Errorf("UMQEntriesFor(%d) = %d, want %d", prq, got, want)
		}
	}
}

func TestUMQNodePacking(t *testing.T) {
	// First locality level: 3 UMQ entries fill one 64-byte line.
	if got := match.NodeBytes(UMQEntriesFor(2), match.UnexpectedEntryBytes); got != 64 {
		t.Errorf("UMQ node at first level = %d bytes, want 64", got)
	}
}

func TestUMQHolesSkipped(t *testing.T) {
	l := newUMQ(t, KindLLA) // 3 entries per node
	for i := uint64(0); i < 3; i++ {
		l.Append(match.NewUnexpected(match.Envelope{Rank: int32(i), Tag: int32(i), Ctx: 1}, i+1))
	}
	// Remove the middle entry, leaving a hole.
	if _, _, ok := l.SearchBy(match.NewPosted(1, 1, 1, 0)); !ok {
		t.Fatal("mid-node UMQ search failed")
	}
	// Wildcard receive must not match the hole.
	u, _, ok := l.SearchBy(match.NewPosted(match.AnySource, match.AnyTag, 1, 0))
	if !ok || u.Msg != 1 {
		t.Errorf("after hole, wildcard got msg %d ok=%v, want 1", u.Msg, ok)
	}
	u, _, ok = l.SearchBy(match.NewPosted(match.AnySource, match.AnyTag, 1, 0))
	if !ok || u.Msg != 3 {
		t.Errorf("second wildcard got msg %d ok=%v, want 3", u.Msg, ok)
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d, want 0", l.Len())
	}
}

func TestUMQDrainReclaims(t *testing.T) {
	for _, kind := range umqKinds() {
		space := simmem.NewSpace()
		l := NewUnexpected(kind, Config{Space: space, Acc: FreeAccessor{}, EntriesPerNode: 2})
		for i := uint64(0); i < 12; i++ {
			l.Append(match.NewUnexpected(match.Envelope{Rank: int32(i), Tag: 0, Ctx: 1}, i+1))
		}
		high := l.MemoryBytes()
		for i := uint64(0); i < 12; i++ {
			if _, _, ok := l.SearchBy(match.NewPosted(int(i), 0, 1, 0)); !ok {
				t.Fatalf("%v: entry %d missing", kind, i)
			}
		}
		if l.MemoryBytes() >= high {
			t.Errorf("%v: drained UMQ kept %d bytes (was %d)", kind, l.MemoryBytes(), high)
		}
	}
}

// Reference-model equivalence for UMQs under random append/search load.
func TestUMQReferenceEquivalence(t *testing.T) {
	for _, kind := range umqKinds() {
		rng := rand.New(rand.NewSource(7))
		l := newUMQ(t, kind)
		var ref []match.Unexpected
		msg := uint64(1)
		for op := 0; op < 2000; op++ {
			if rng.Intn(2) == 0 {
				u := match.NewUnexpected(match.Envelope{
					Rank: int32(rng.Intn(16)), Tag: int32(rng.Intn(4)), Ctx: uint16(rng.Intn(2)),
				}, msg)
				msg++
				l.Append(u)
				ref = append(ref, u)
			} else {
				rank := rng.Intn(16)
				tag := rng.Intn(4)
				if rng.Intn(8) == 0 {
					rank = match.AnySource
				}
				if rng.Intn(8) == 0 {
					tag = match.AnyTag
				}
				p := match.NewPosted(rank, tag, uint16(rng.Intn(2)), 0)
				got, _, gotOK := l.SearchBy(p)
				wantIdx := -1
				for i, u := range ref {
					if u.MatchedBy(p) {
						wantIdx = i
						break
					}
				}
				if gotOK != (wantIdx >= 0) {
					t.Fatalf("%v op %d: ok=%v, reference %v", kind, op, gotOK, wantIdx >= 0)
				}
				if gotOK {
					if got.Msg != ref[wantIdx].Msg {
						t.Fatalf("%v op %d: got msg %d, reference %d", kind, op, got.Msg, ref[wantIdx].Msg)
					}
					ref = append(ref[:wantIdx], ref[wantIdx+1:]...)
				}
			}
			if l.Len() != len(ref) {
				t.Fatalf("%v op %d: Len = %d, reference %d", kind, op, l.Len(), len(ref))
			}
		}
	}
}
