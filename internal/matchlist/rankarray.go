package matchlist

import (
	"spco/internal/match"
	"spco/internal/simmem"
)

// rankArray is the Open MPI hierarchical structure (Section 2.2): per
// communicator, an array indexed by source rank whose cells hold short
// per-source lists, reaching the right list in O(1). Receives posted
// with MPI_ANY_SOURCE cannot be bucketed and live on a fallback chain.
// The cost is memory: an N-process communicator needs an N-cell array
// in every process — O(N^2) across the job.
type rankArray struct {
	cfg       Config
	perRank   []chain
	wild      chain
	headsAddr simmem.Addr
	ctrl      simmem.Addr
	seq       uint64
	n         int
	bytes     uint64
	regions   simmem.RegionSet
}

func newRankArray(cfg Config) *rankArray {
	if cfg.CommSize <= 0 {
		panic("matchlist: RankArray requires Config.CommSize")
	}
	l := &rankArray{cfg: cfg, perRank: make([]chain, cfg.CommSize)}
	if cfg.Pool {
		l.cfg.cpool = &chainPool{}
	}
	l.ctrl = cfg.Space.AllocLines(1)
	l.bytes += simmem.LineSize
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.ctrl, Size: simmem.LineSize})
	l.headsAddr = cfg.Space.Alloc(uint64(cfg.CommSize)*8, simmem.LineSize)
	l.bytes += uint64(cfg.CommSize) * 8
	regAdd(&l.cfg, &l.regions, simmem.Region{Base: l.headsAddr, Size: uint64(cfg.CommSize) * 8})
	for i := range l.perRank {
		l.perRank[i].cfg = &l.cfg
	}
	l.wild.cfg = &l.cfg
	return l
}

func (l *rankArray) Name() string { return "rankarray" }

func (l *rankArray) Post(p match.Posted) {
	l.cfg.Acc.Access(l.ctrl, 16)
	e := seqEntry{entry: p, seq: l.seq}
	l.seq++
	r := int(p.Rank)
	if (p.IsWild() && p.RankMask == 0) || r < 0 || r >= len(l.perRank) {
		// Wildcards cannot be bucketed; ranks outside the declared
		// communicator (a misdeclared CommSize) degrade to the ordered
		// fallback chain instead of panicking mid-workload.
		l.wild.append(&l.regions, &l.bytes, e)
	} else {
		l.cfg.Acc.Access(l.headsAddr+simmem.Addr(r*8), 8)
		l.perRank[r].append(&l.regions, &l.bytes, e)
	}
	l.n++
}

func (l *rankArray) Search(e match.Envelope) (match.Posted, int, bool) {
	l.cfg.Acc.Access(l.ctrl, 16)
	depth := 0
	r := int(e.Rank)
	var binPrev, binNode *chainNode
	if r >= 0 && r < len(l.perRank) {
		l.cfg.Acc.Access(l.headsAddr+simmem.Addr(r*8), 8)
		binPrev, binNode = l.perRank[r].firstMatch(e, &depth)
	}
	wildPrev, wildNode := l.wild.firstMatch(e, &depth)

	switch {
	case binNode == nil && wildNode == nil:
		return match.Posted{}, depth, false
	case wildNode == nil || (binNode != nil && binNode.e.seq < wildNode.e.seq):
		l.perRank[r].remove(&l.regions, &l.bytes, binPrev, binNode)
		l.n--
		return binNode.e.entry, depth, true
	default:
		l.wild.remove(&l.regions, &l.bytes, wildPrev, wildNode)
		l.n--
		return wildNode.e.entry, depth, true
	}
}

func (l *rankArray) Cancel(req uint64) bool {
	l.cfg.Acc.Access(l.ctrl, 16)
	if prev, node := l.wild.findReq(req); node != nil {
		l.wild.remove(&l.regions, &l.bytes, prev, node)
		l.n--
		return true
	}
	for i := range l.perRank {
		if prev, node := l.perRank[i].findReq(req); node != nil {
			l.perRank[i].remove(&l.regions, &l.bytes, prev, node)
			l.n--
			return true
		}
	}
	return false
}

// PoolStats implements PoolStatser over the shared chain-node pool.
func (l *rankArray) PoolStats() PoolStats { return chainPoolStats(l.cfg.cpool) }

func (l *rankArray) Len() int { return l.n }

func (l *rankArray) Regions() []simmem.Region { return l.regions.Regions() }

func (l *rankArray) MemoryBytes() uint64 { return l.bytes }
