package matchlist

import (
	"math/rand"
	"testing"

	"spco/internal/cache"
	"spco/internal/match"
	"spco/internal/simmem"
)

// allKinds enumerates every PRQ implementation with a working Config.
func allKinds() []Kind {
	return []Kind{KindBaseline, KindLLA, KindHashBins, KindRankArray, KindFourD, KindHWOffload, KindPerComm}
}

func newList(t *testing.T, kind Kind) PostedList {
	t.Helper()
	return NewPosted(kind, Config{
		Space:          simmem.NewSpace(),
		Acc:            FreeAccessor{},
		EntriesPerNode: 4,
		Bins:           16,
		CommSize:       64,
	})
}

func TestKindString(t *testing.T) {
	for _, k := range allKinds() {
		name := k.String()
		parsed, err := ParseKind(name)
		if err != nil || parsed != k {
			t.Errorf("ParseKind(%q) = %v, %v", name, parsed, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind should reject unknown names")
	}
}

func TestPostSearchExact(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		l.Post(match.NewPosted(3, 7, 1, 100))
		l.Post(match.NewPosted(4, 8, 1, 101))
		if l.Len() != 2 {
			t.Errorf("%v: Len = %d, want 2", kind, l.Len())
		}
		p, _, ok := l.Search(match.Envelope{Rank: 4, Tag: 8, Ctx: 1})
		if !ok || p.Req != 101 {
			t.Errorf("%v: Search found %+v ok=%v, want req 101", kind, p, ok)
		}
		if l.Len() != 1 {
			t.Errorf("%v: Len after removal = %d, want 1", kind, l.Len())
		}
		if _, _, ok := l.Search(match.Envelope{Rank: 4, Tag: 8, Ctx: 1}); ok {
			t.Errorf("%v: removed entry matched again", kind)
		}
	}
}

func TestSearchMiss(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		l.Post(match.NewPosted(1, 1, 1, 1))
		if _, _, ok := l.Search(match.Envelope{Rank: 2, Tag: 2, Ctx: 1}); ok {
			t.Errorf("%v: matched a non-existent entry", kind)
		}
		if l.Len() != 1 {
			t.Errorf("%v: miss changed Len", kind)
		}
	}
}

// MPI ordering: among several matching entries, the earliest posted wins.
func TestFIFOOrdering(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		l.Post(match.NewPosted(5, 9, 1, 1))
		l.Post(match.NewPosted(5, 9, 1, 2))
		l.Post(match.NewPosted(5, 9, 1, 3))
		for want := uint64(1); want <= 3; want++ {
			p, _, ok := l.Search(match.Envelope{Rank: 5, Tag: 9, Ctx: 1})
			if !ok || p.Req != want {
				t.Errorf("%v: got req %d ok=%v, want %d", kind, p.Req, ok, want)
			}
		}
	}
}

// Ordering must hold across the bucketed/wildcard split: a wildcard
// posted before an exact entry must match first.
func TestWildcardOrdering(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		l.Post(match.NewPosted(match.AnySource, 9, 1, 1)) // earlier
		l.Post(match.NewPosted(5, 9, 1, 2))               // later, exact
		p, _, ok := l.Search(match.Envelope{Rank: 5, Tag: 9, Ctx: 1})
		if !ok || p.Req != 1 {
			t.Errorf("%v: earliest-posted wildcard should win, got req %d", kind, p.Req)
		}
		// Now the exact one is earliest.
		p, _, ok = l.Search(match.Envelope{Rank: 5, Tag: 9, Ctx: 1})
		if !ok || p.Req != 2 {
			t.Errorf("%v: remaining exact entry should match, got req %d ok=%v", kind, p.Req, ok)
		}
	}
}

func TestWildcardReverseOrdering(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		l.Post(match.NewPosted(5, 9, 1, 1))               // earlier, exact
		l.Post(match.NewPosted(match.AnySource, 9, 1, 2)) // later, wild
		p, _, ok := l.Search(match.Envelope{Rank: 5, Tag: 9, Ctx: 1})
		if !ok || p.Req != 1 {
			t.Errorf("%v: earliest-posted exact should win, got req %d", kind, p.Req)
		}
	}
}

func TestAnyTagMatching(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		l.Post(match.NewPosted(3, match.AnyTag, 1, 7))
		p, _, ok := l.Search(match.Envelope{Rank: 3, Tag: 424242, Ctx: 1})
		if !ok || p.Req != 7 {
			t.Errorf("%v: AnyTag entry did not match, ok=%v", kind, ok)
		}
	}
}

func TestCommunicatorIsolation(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		l.Post(match.NewPosted(3, 7, 1, 1))
		l.Post(match.NewPosted(3, 7, 2, 2))
		p, _, ok := l.Search(match.Envelope{Rank: 3, Tag: 7, Ctx: 2})
		if !ok || p.Req != 2 {
			t.Errorf("%v: wrong communicator matched, req=%d", kind, p.Req)
		}
	}
}

func TestCancel(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		l.Post(match.NewPosted(1, 1, 1, 10))
		l.Post(match.NewPosted(2, 2, 1, 20))
		l.Post(match.NewPosted(3, 3, 1, 30))
		if !l.Cancel(20) {
			t.Errorf("%v: Cancel(20) failed", kind)
		}
		if l.Cancel(20) {
			t.Errorf("%v: Cancel(20) succeeded twice", kind)
		}
		if l.Len() != 2 {
			t.Errorf("%v: Len after cancel = %d, want 2", kind, l.Len())
		}
		if _, _, ok := l.Search(match.Envelope{Rank: 2, Tag: 2, Ctx: 1}); ok {
			t.Errorf("%v: cancelled entry still matches", kind)
		}
		if _, _, ok := l.Search(match.Envelope{Rank: 1, Tag: 1, Ctx: 1}); !ok {
			t.Errorf("%v: neighbour of cancelled entry lost", kind)
		}
	}
}

func TestCancelWildcardEntry(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		l.Post(match.NewPosted(match.AnySource, match.AnyTag, 1, 77))
		if !l.Cancel(77) {
			t.Errorf("%v: Cancel of wildcard entry failed", kind)
		}
		if l.Len() != 0 {
			t.Errorf("%v: Len = %d after cancelling only entry", kind, l.Len())
		}
	}
}

func TestSearchDepthCounts(t *testing.T) {
	// Linear structures report exact inspected counts.
	for _, kind := range []Kind{KindBaseline, KindLLA} {
		l := newList(t, kind)
		for i := 0; i < 10; i++ {
			l.Post(match.NewPosted(i, i, 1, uint64(i)))
		}
		_, depth, ok := l.Search(match.Envelope{Rank: 7, Tag: 7, Ctx: 1})
		if !ok || depth != 8 {
			t.Errorf("%v: depth = %d ok=%v, want 8 (entries 0..7 inspected)", kind, depth, ok)
		}
	}
	// Bucketed structures inspect far fewer entries for exact receives.
	l := newList(t, KindRankArray)
	for i := 0; i < 10; i++ {
		l.Post(match.NewPosted(i, i, 1, uint64(i)))
	}
	_, depth, ok := l.Search(match.Envelope{Rank: 7, Tag: 7, Ctx: 1})
	if !ok || depth != 1 {
		t.Errorf("rankarray: depth = %d, want 1", depth)
	}
}

// Holes: deleting from the middle of an LLA node leaves a tombstone that
// is skipped (but still inspected) by later searches.
func TestLLAHoles(t *testing.T) {
	l := newList(t, KindLLA) // K=4
	for i := 0; i < 4; i++ {
		l.Post(match.NewPosted(i, i, 1, uint64(i)))
	}
	// Remove the middle entry (rank 1) -> hole at slot 1.
	if _, _, ok := l.Search(match.Envelope{Rank: 1, Tag: 1, Ctx: 1}); !ok {
		t.Fatal("mid-node search failed")
	}
	// Searching for rank 2 must skip the hole: depth counts slots 0,1,2.
	_, depth, ok := l.Search(match.Envelope{Rank: 2, Tag: 2, Ctx: 1})
	if !ok {
		t.Fatal("entry after hole not found")
	}
	if depth != 3 {
		t.Errorf("depth over hole = %d, want 3 (hole is inspected)", depth)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

// Head-consumption in order must advance the head index and eventually
// unlink drained nodes, freeing memory.
func TestLLADrainReclaimsNodes(t *testing.T) {
	space := simmem.NewSpace()
	l := NewPosted(KindLLA, Config{Space: space, Acc: FreeAccessor{}, EntriesPerNode: 2})
	for i := 0; i < 8; i++ {
		l.Post(match.NewPosted(i, i, 1, uint64(i)))
	}
	high := l.MemoryBytes()
	for i := 0; i < 8; i++ {
		if _, _, ok := l.Search(match.Envelope{Rank: int32(i), Tag: int32(i), Ctx: 1}); !ok {
			t.Fatalf("drain: entry %d missing", i)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d after drain", l.Len())
	}
	if l.MemoryBytes() >= high {
		t.Errorf("drained list kept %d bytes (was %d): nodes not reclaimed", l.MemoryBytes(), high)
	}
}

// The pool variant recycles node addresses: after drain and repost, no
// new node allocations should be needed.
func TestLLAPoolRecyclesAddresses(t *testing.T) {
	space := simmem.NewSpace()
	l := NewPosted(KindLLA, Config{Space: space, Acc: FreeAccessor{}, EntriesPerNode: 2, Pool: true})
	for i := 0; i < 8; i++ {
		l.Post(match.NewPosted(i, i, 1, uint64(i)))
	}
	var first []simmem.Region
	first = append(first, l.Regions()...)
	for i := 0; i < 8; i++ {
		l.Search(match.Envelope{Rank: int32(i), Tag: int32(i), Ctx: 1})
	}
	for i := 0; i < 8; i++ {
		l.Post(match.NewPosted(i, i, 1, uint64(i)))
	}
	// Every region of the repopulated list must come from the original set.
	var rs simmem.RegionSet
	for _, r := range first {
		rs.Add(r)
	}
	for _, r := range l.Regions() {
		if !rs.Contains(r.Base) {
			t.Errorf("pooled LLA allocated fresh node at %v", r)
		}
	}
}

func TestRegionsCoverEntries(t *testing.T) {
	for _, kind := range allKinds() {
		l := newList(t, kind)
		for i := 0; i < 20; i++ {
			l.Post(match.NewPosted(i%8, i, 1, uint64(i)))
		}
		var total uint64
		for _, r := range l.Regions() {
			total += r.Size
		}
		if total == 0 {
			t.Errorf("%v: no regions reported", kind)
		}
		if total != l.MemoryBytes() {
			t.Errorf("%v: regions cover %d bytes, MemoryBytes = %d", kind, total, l.MemoryBytes())
		}
	}
}

func TestFourDRadix(t *testing.T) {
	space := simmem.NewSpace()
	l := NewPosted(KindFourD, Config{Space: space, Acc: FreeAccessor{}, CommSize: 4096}).(*fourD)
	if l.Radix() != 8 {
		t.Errorf("radix for 4096 = %d, want 8", l.Radix())
	}
	// Ranks at the extremes must round-trip.
	l.Post(match.NewPosted(0, 1, 1, 1))
	l.Post(match.NewPosted(4095, 1, 1, 2))
	if p, _, ok := l.Search(match.Envelope{Rank: 4095, Tag: 1, Ctx: 1}); !ok || p.Req != 2 {
		t.Error("max rank lookup failed")
	}
	if p, _, ok := l.Search(match.Envelope{Rank: 0, Tag: 1, Ctx: 1}); !ok || p.Req != 1 {
		t.Error("rank 0 lookup failed")
	}
}

func TestFourDMemoryScalesWithPopulation(t *testing.T) {
	// A 4D structure touching few sources must use far less memory than
	// a rank array sized for the full communicator (at the largest
	// communicator the packed-rank entry layout can address).
	const comm = MaxCommSize
	spaceA := simmem.NewSpace()
	ra := NewPosted(KindRankArray, Config{Space: spaceA, Acc: FreeAccessor{}, CommSize: comm})
	spaceB := simmem.NewSpace()
	fd := NewPosted(KindFourD, Config{Space: spaceB, Acc: FreeAccessor{}, CommSize: comm})
	for i := 0; i < 8; i++ {
		ra.Post(match.NewPosted(i, 0, 1, uint64(i)))
		fd.Post(match.NewPosted(i, 0, 1, uint64(i)))
	}
	if fd.MemoryBytes()*4 > ra.MemoryBytes() {
		t.Errorf("4D (%d B) should be much smaller than rank array (%d B) at %d ranks",
			fd.MemoryBytes(), ra.MemoryBytes(), comm)
	}
}

// Reference-model equivalence: every implementation must behave exactly
// like a naive ordered slice under a random workload of posts, searches,
// and cancels, wildcards included.
func TestReferenceEquivalence(t *testing.T) {
	type refEntry struct {
		p match.Posted
	}
	for _, kind := range allKinds() {
		rng := rand.New(rand.NewSource(42))
		l := newList(t, kind)
		var ref []refEntry
		nextReq := uint64(1)
		for op := 0; op < 3000; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // post
				rank := rng.Intn(64)
				tag := rng.Intn(8)
				if rng.Intn(10) == 0 {
					rank = match.AnySource
				}
				if rng.Intn(10) == 0 {
					tag = match.AnyTag
				}
				p := match.NewPosted(rank, tag, uint16(rng.Intn(3)), nextReq)
				nextReq++
				l.Post(p)
				ref = append(ref, refEntry{p})
			case r < 9: // search
				e := match.Envelope{Rank: int32(rng.Intn(64)), Tag: int32(rng.Intn(8)), Ctx: uint16(rng.Intn(3))}
				got, _, gotOK := l.Search(e)
				wantIdx := -1
				for i, re := range ref {
					if re.p.Matches(e) {
						wantIdx = i
						break
					}
				}
				if gotOK != (wantIdx >= 0) {
					t.Fatalf("%v op %d: Search(%v) ok=%v, reference %v", kind, op, e, gotOK, wantIdx >= 0)
				}
				if gotOK {
					if got.Req != ref[wantIdx].p.Req {
						t.Fatalf("%v op %d: Search(%v) got req %d, reference req %d",
							kind, op, e, got.Req, ref[wantIdx].p.Req)
					}
					ref = append(ref[:wantIdx], ref[wantIdx+1:]...)
				}
			default: // cancel a random live req
				if len(ref) == 0 {
					continue
				}
				idx := rng.Intn(len(ref))
				req := ref[idx].p.Req
				if !l.Cancel(req) {
					t.Fatalf("%v op %d: Cancel(%d) failed for live entry", kind, op, req)
				}
				ref = append(ref[:idx], ref[idx+1:]...)
			}
			if l.Len() != len(ref) {
				t.Fatalf("%v op %d: Len = %d, reference %d", kind, op, l.Len(), len(ref))
			}
		}
	}
}

// Spatial locality in action: with the cache accessor, searching a deep
// LLA list must cost far fewer cycles than the baseline, and larger K
// must not cost more than smaller K — the Figure 4b/5b mechanism.
func TestLLACheaperThanBaselineUnderCacheModel(t *testing.T) {
	costOf := func(kind Kind, k int) uint64 {
		space := simmem.NewSpace()
		h := cache.New(cache.SandyBridge)
		acc := NewCacheAccessor(h, 0)
		l := NewPosted(kind, Config{Space: space, Acc: acc, EntriesPerNode: k})
		for i := 0; i < 1024; i++ {
			l.Post(match.NewPosted(1, int(i), 1, uint64(i)))
		}
		h.Flush() // the compute phase evicted everything
		acc.Reset()
		// Search for the last entry: full traversal, cold cache.
		l.Search(match.Envelope{Rank: 1, Tag: 1023, Ctx: 1})
		return acc.Cycles
	}
	base := costOf(KindBaseline, 0)
	lla2 := costOf(KindLLA, 2)
	lla8 := costOf(KindLLA, 8)
	lla32 := costOf(KindLLA, 32)
	if lla2*3/2 > base {
		t.Errorf("LLA-2 (%d cy) should be well under baseline (%d cy)", lla2, base)
	}
	if lla8 > lla2 {
		t.Errorf("LLA-8 (%d cy) should not exceed LLA-2 (%d cy)", lla8, lla2)
	}
	if lla32 > lla8*11/10 {
		t.Errorf("LLA-32 (%d cy) should plateau near LLA-8 (%d cy)", lla32, lla8)
	}
}

func TestBadConfigPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("nil space", func() {
		NewPosted(KindBaseline, Config{Acc: FreeAccessor{}})
	})
	mustPanic("nil accessor", func() {
		NewPosted(KindBaseline, Config{Space: simmem.NewSpace()})
	})
	mustPanic("rankarray no comm", func() {
		NewPosted(KindRankArray, Config{Space: simmem.NewSpace(), Acc: FreeAccessor{}})
	})
}

func TestCountingAccessor(t *testing.T) {
	var c CountingAccessor
	c.Access(0, 24)
	c.Access(64, 8)
	if c.Accesses != 2 || c.Bytes != 32 {
		t.Errorf("CountingAccessor state = %+v", c)
	}
}

// perComm's whole point: communicator partitioning turns cross-comm
// backlog into O(1) skips, without helping single-comm workloads.
func TestPerCommPartitioning(t *testing.T) {
	l := newList(t, KindPerComm)
	// 100 entries on communicator 1.
	for i := 0; i < 100; i++ {
		l.Post(match.NewPosted(0, i, 1, uint64(i)))
	}
	// One entry on communicator 2.
	l.Post(match.NewPosted(5, 5, 2, 999))
	_, depth, ok := l.Search(match.Envelope{Rank: 5, Tag: 5, Ctx: 2})
	if !ok || depth != 1 {
		t.Errorf("cross-comm search depth = %d ok=%v, want 1", depth, ok)
	}
	// Within one communicator it degenerates to the baseline walk.
	_, depth, ok = l.Search(match.Envelope{Rank: 0, Tag: 99, Ctx: 1})
	if !ok || depth != 100 {
		t.Errorf("in-comm search depth = %d ok=%v, want 100", depth, ok)
	}
}

func TestPerCommSearchUnknownCtx(t *testing.T) {
	l := newList(t, KindPerComm)
	l.Post(match.NewPosted(0, 0, 1, 1))
	if _, _, ok := l.Search(match.Envelope{Rank: 0, Tag: 0, Ctx: 9}); ok {
		t.Error("matched in a communicator that has no queue")
	}
}

// Hash bins: colliding keys share a bin but matching stays exact.
func TestHashBinsCollisions(t *testing.T) {
	// One bin forces every entry into the same chain.
	l := NewPosted(KindHashBins, Config{
		Space: simmem.NewSpace(), Acc: FreeAccessor{}, Bins: 1,
	})
	for i := 0; i < 50; i++ {
		l.Post(match.NewPosted(i, i, 1, uint64(i)))
	}
	p, depth, ok := l.Search(match.Envelope{Rank: 49, Tag: 49, Ctx: 1})
	if !ok || p.Req != 49 {
		t.Fatalf("collision chain lost an entry: %+v ok=%v", p, ok)
	}
	if depth != 50 {
		t.Errorf("single-bin depth = %d, want 50 (degenerates to a list)", depth)
	}
}

// FourD handles sparse high ranks without allocating dense tables.
func TestFourDSparseHighRanks(t *testing.T) {
	space := simmem.NewSpace()
	// Note the 24-byte entry layout carries a 2-byte rank (Figure 2),
	// so communicator sizes beyond 32K exceed the packed field.
	l := NewPosted(KindFourD, Config{Space: space, Acc: FreeAccessor{}, CommSize: 1 << 15})
	ranks := []int{0, 1, 32767, 16384, 255}
	for i, r := range ranks {
		l.Post(match.NewPosted(r, 0, 1, uint64(i+1)))
	}
	for i, r := range ranks {
		p, _, ok := l.Search(match.Envelope{Rank: int32(r), Tag: 0, Ctx: 1})
		if !ok || p.Req != uint64(i+1) {
			t.Errorf("rank %d lookup failed: %+v ok=%v", r, p, ok)
		}
	}
	// Five sparse ranks should cost far less than a dense 32K table.
	if l.MemoryBytes() > 64<<10 {
		t.Errorf("sparse 4D used %d bytes", l.MemoryBytes())
	}
}

// Noise configuration is honoured: larger noise spreads the address
// footprint (visible through the space's extent).
func TestNoiseBytesSpreadsFootprint(t *testing.T) {
	extent := func(noise uint64) uint64 {
		space := simmem.NewSpace()
		l := NewPosted(KindBaseline, Config{Space: space, Acc: FreeAccessor{}, NoiseBytes: noise})
		for i := 0; i < 100; i++ {
			l.Post(match.NewPosted(0, i, 1, uint64(i)))
		}
		return space.Footprint()
	}
	if extent(1024) <= extent(64) {
		t.Error("larger noise should spread the heap footprint")
	}
}

// The cache accessor's cycle accumulation matches the hierarchy's.
func TestCacheAccessorAccounting(t *testing.T) {
	h := cache.New(cache.SandyBridge)
	acc := NewCacheAccessor(h, 0)
	before := h.Stats().Cycles
	acc.Access(0x10000, 24)
	acc.Access(0x10000, 24)
	if acc.Cycles != h.Stats().Cycles-before {
		t.Errorf("accessor cycles %d != hierarchy delta %d", acc.Cycles, h.Stats().Cycles-before)
	}
	acc.Reset()
	if acc.Cycles != 0 {
		t.Error("Reset failed")
	}
}
