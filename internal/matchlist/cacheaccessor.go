package matchlist

import (
	"spco/internal/cache"
	"spco/internal/simmem"
)

// CacheAccessor routes structure memory accesses through the cache
// hierarchy simulator on behalf of one core, accumulating demand cycles.
type CacheAccessor struct {
	H    *cache.Hierarchy
	Core int

	// Cycles accumulates the cost of every access since the last Reset.
	Cycles uint64
}

// NewCacheAccessor binds a hierarchy and a core.
func NewCacheAccessor(h *cache.Hierarchy, core int) *CacheAccessor {
	return &CacheAccessor{H: h, Core: core}
}

// Access implements Accessor.
func (c *CacheAccessor) Access(addr simmem.Addr, size uint64) uint64 {
	cy := c.H.Access(c.Core, addr, size)
	c.Cycles += cy
	return cy
}

// Reset zeroes the accumulated cycle count.
func (c *CacheAccessor) Reset() { c.Cycles = 0 }
