package matchlist

import (
	"spco/internal/cache"
	"spco/internal/simmem"
)

// CacheAccessor routes structure memory accesses through the cache
// hierarchy simulator on behalf of one core, accumulating demand cycles.
type CacheAccessor struct {
	H    *cache.Hierarchy
	Core int

	// Cycles accumulates the cost of every access since the last Reset.
	Cycles uint64

	// Seg is the queue segment (node index) the current search is
	// inspecting, -1 outside searches. The search loops maintain it
	// unconditionally — plain host-side stores, zero simulated cycles —
	// and the PMU's sampling profiler reads it for its leaf frame.
	Seg int
}

// NewCacheAccessor binds a hierarchy and a core.
func NewCacheAccessor(h *cache.Hierarchy, core int) *CacheAccessor {
	return &CacheAccessor{H: h, Core: core, Seg: -1}
}

// Access implements Accessor.
func (c *CacheAccessor) Access(addr simmem.Addr, size uint64) uint64 {
	cy := c.H.Access(c.Core, addr, size)
	c.Cycles += cy
	return cy
}

// Reset zeroes the accumulated cycle count.
func (c *CacheAccessor) Reset() { c.Cycles = 0 }
