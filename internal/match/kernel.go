// Packed compare kernels: branch-free candidate masks over contiguous
// entry arrays. The LLA stores K entries per node (Section 3.1); its
// search loop used to call Posted.Matches once per slot, a chain of
// three data-dependent branches per entry. The kernels below compare a
// whole node in one pass, folding each entry's three masked equality
// tests and the hole test into a single bit of a candidate mask — the
// software analogue of a SIMD packed compare. Matching semantics are
// identical to the scalar path: a bit is set exactly when the scalar
// loop's IsHole()-skip-then-Matches() sequence would have accepted the
// entry.
package match

import "math/bits"

// KernelWidth is the widest array one mask covers (one bit per entry).
const KernelWidth = 64

// eqZero returns 1 when x == 0, else 0, without branching.
func eqZero(x uint32) uint64 {
	return (uint64(x) - 1) >> 63
}

// MatchMask returns a bitmask over ps (len(ps) <= KernelWidth; excess
// entries are ignored) whose bit i is set when ps[i] is a live
// (non-hole) entry accepting e. Bit order follows slice order, so
// bits.TrailingZeros64 on the mask yields the earliest match — the
// MPI-ordered winner within a node.
//
// Holes carry InvalidCtx with full masks, so for any envelope with a
// valid context the ctx term of the miss test already excludes them;
// the explicit hole term is only needed — and only computed — on the
// InvalidCtx path, keeping the common per-entry work to the three
// masked equality folds.
func MatchMask(ps []Posted, e Envelope) uint64 {
	if len(ps) > KernelWidth {
		ps = ps[:KernelWidth]
	}
	if e.Ctx == InvalidCtx {
		return matchMaskHoleSafe(ps, e)
	}
	var m uint64
	ec, et, er := uint32(e.Ctx), uint32(e.Tag), uint32(e.Rank)
	for i := range ps {
		p := &ps[i]
		miss := uint32(p.Ctx) ^ ec
		miss |= (uint32(p.Tag) ^ et) & p.TagMask
		miss |= (uint32(int32(p.Rank)) ^ er) & p.RankMask
		m |= eqZero(miss) << uint(i)
	}
	return m
}

// matchMaskHoleSafe is the adversarial-context path: an envelope
// carrying InvalidCtx could pass a hole's miss test, so holes are
// masked out explicitly.
func matchMaskHoleSafe(ps []Posted, e Envelope) uint64 {
	var m uint64
	for i := range ps {
		p := &ps[i]
		miss := uint32(p.Ctx) ^ uint32(e.Ctx)
		miss |= (uint32(p.Tag) ^ uint32(e.Tag)) & p.TagMask
		miss |= (uint32(int32(p.Rank)) ^ uint32(e.Rank)) & p.RankMask
		hole := uint32(p.Tag^holeTag) | uint32(uint16(p.Rank^holeRank))
		m |= (eqZero(miss) &^ eqZero(hole)) << uint(i)
	}
	return m
}

// MatchedByMask is MatchMask for UMQ arrays: bit i is set when us[i] is
// a live buffered message that the posted receive p accepts. The same
// hole-exclusion argument applies: UMQ holes carry InvalidCtx, which no
// valid posted receive's context equals.
func MatchedByMask(us []Unexpected, p Posted) uint64 {
	if len(us) > KernelWidth {
		us = us[:KernelWidth]
	}
	if p.Ctx == InvalidCtx {
		return matchedByMaskHoleSafe(us, p)
	}
	var m uint64
	pc, pt, pr := uint32(p.Ctx), uint32(p.Tag), uint32(int32(p.Rank))
	for i := range us {
		u := &us[i]
		miss := pc ^ uint32(u.Ctx)
		miss |= (pt ^ uint32(u.Tag)) & p.TagMask
		miss |= (pr ^ uint32(int32(u.Rank))) & p.RankMask
		m |= eqZero(miss) << uint(i)
	}
	return m
}

// matchedByMaskHoleSafe masks holes explicitly for posted receives
// carrying the adversarial InvalidCtx.
func matchedByMaskHoleSafe(us []Unexpected, p Posted) uint64 {
	var m uint64
	for i := range us {
		u := &us[i]
		miss := uint32(p.Ctx) ^ uint32(u.Ctx)
		miss |= (uint32(p.Tag) ^ uint32(u.Tag)) & p.TagMask
		miss |= (uint32(int32(p.Rank)) ^ uint32(int32(u.Rank))) & p.RankMask
		hole := uint32(u.Tag^holeTag) | uint32(uint16(u.Rank^holeRank))
		m |= (eqZero(miss) &^ eqZero(hole)) << uint(i)
	}
	return m
}

// FindPosted returns the index of the earliest live entry in ps
// accepting e, or -1. Arrays wider than KernelWidth are scanned in
// 64-entry chunks, earliest chunk first.
func FindPosted(ps []Posted, e Envelope) int {
	for base := 0; base < len(ps); base += KernelWidth {
		end := base + KernelWidth
		if end > len(ps) {
			end = len(ps)
		}
		if m := MatchMask(ps[base:end], e); m != 0 {
			return base + bits.TrailingZeros64(m)
		}
	}
	return -1
}

// FindUnexpected returns the index of the earliest live buffered message
// in us accepted by p, or -1.
func FindUnexpected(us []Unexpected, p Posted) int {
	for base := 0; base < len(us); base += KernelWidth {
		end := base + KernelWidth
		if end > len(us) {
			end = len(us)
		}
		if m := MatchedByMask(us[base:end], p); m != 0 {
			return base + bits.TrailingZeros64(m)
		}
	}
	return -1
}
