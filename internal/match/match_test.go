package match

import (
	"testing"
	"testing/quick"
)

func TestExactMatch(t *testing.T) {
	p := NewPosted(3, 42, 7, 1)
	if !p.Matches(Envelope{Rank: 3, Tag: 42, Ctx: 7}) {
		t.Error("exact envelope should match")
	}
	for _, e := range []Envelope{
		{Rank: 4, Tag: 42, Ctx: 7},
		{Rank: 3, Tag: 43, Ctx: 7},
		{Rank: 3, Tag: 42, Ctx: 8},
	} {
		if p.Matches(e) {
			t.Errorf("%v should not match posted(3,42,7)", e)
		}
	}
}

func TestAnySource(t *testing.T) {
	p := NewPosted(AnySource, 42, 7, 1)
	if !p.Matches(Envelope{Rank: 0, Tag: 42, Ctx: 7}) ||
		!p.Matches(Envelope{Rank: 9999, Tag: 42, Ctx: 7}) {
		t.Error("AnySource should accept every rank")
	}
	if p.Matches(Envelope{Rank: 3, Tag: 41, Ctx: 7}) {
		t.Error("AnySource must still check tag")
	}
	if !p.IsWild() {
		t.Error("AnySource entry should report IsWild")
	}
}

func TestAnyTag(t *testing.T) {
	p := NewPosted(3, AnyTag, 7, 1)
	if !p.Matches(Envelope{Rank: 3, Tag: -5, Ctx: 7}) ||
		!p.Matches(Envelope{Rank: 3, Tag: 1 << 20, Ctx: 7}) {
		t.Error("AnyTag should accept every tag")
	}
	if p.Matches(Envelope{Rank: 4, Tag: 42, Ctx: 7}) {
		t.Error("AnyTag must still check rank")
	}
}

func TestAnyBoth(t *testing.T) {
	p := NewPosted(AnySource, AnyTag, 7, 1)
	if !p.Matches(Envelope{Rank: 12, Tag: 9, Ctx: 7}) {
		t.Error("double wildcard should accept any rank/tag in its comm")
	}
	if p.Matches(Envelope{Rank: 12, Tag: 9, Ctx: 6}) {
		t.Error("communicator is never wildcarded in MPI")
	}
}

func TestExactNotWild(t *testing.T) {
	if NewPosted(1, 2, 3, 0).IsWild() {
		t.Error("fully specified entry reported wild")
	}
}

func TestHoleNeverMatches(t *testing.T) {
	h := Hole()
	if !h.IsHole() {
		t.Fatal("Hole() not recognized by IsHole")
	}
	// A hole must reject every envelope, including ones crafted to
	// collide with the tombstone tag/rank values. (An envelope can never
	// carry InvalidCtx: the runtime does not assign that context id.)
	for _, e := range []Envelope{
		{Rank: 0, Tag: 0, Ctx: 0},
		{Rank: int32(holeRank), Tag: holeTag, Ctx: 0},
		{Rank: -1, Tag: -1, Ctx: 0xFFFE},
	} {
		if h.Matches(e) {
			t.Errorf("hole matched %v", e)
		}
	}
}

func TestHoleMatchesProperty(t *testing.T) {
	h := Hole()
	f := func(rank int16, tag int32, ctx uint16) bool {
		// The runtime never assigns InvalidCtx to a communicator, so no
		// real envelope carries it; every other envelope must be rejected.
		if ctx == InvalidCtx {
			return true // unreachable from a real envelope
		}
		return !h.Matches(Envelope{Rank: int32(rank), Tag: tag, Ctx: ctx})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnexpectedRoundTrip(t *testing.T) {
	e := Envelope{Rank: 5, Tag: 17, Ctx: 2}
	u := NewUnexpected(e, 99)
	if u.Msg != 99 {
		t.Error("message handle lost")
	}
	if !u.MatchedBy(NewPosted(5, 17, 2, 0)) {
		t.Error("exact receive should match the buffered message")
	}
	if !u.MatchedBy(NewPosted(AnySource, AnyTag, 2, 0)) {
		t.Error("wildcard receive should match")
	}
	if u.MatchedBy(NewPosted(5, 17, 3, 0)) {
		t.Error("wrong communicator matched")
	}
}

func TestUnexpectedHole(t *testing.T) {
	u := UnexpectedHole()
	if !u.IsHole() {
		t.Error("UnexpectedHole not recognized")
	}
	if u.MatchedBy(NewPosted(AnySource, AnyTag, 0, 0)) {
		t.Error("UMQ hole matched a full wildcard")
	}
}

// Matching must agree with the naive three-way comparison for all
// non-wildcard cases (property-based cross-check of the mask encoding).
func TestMaskEncodingEquivalence(t *testing.T) {
	f := func(pr int16, pt int32, pc uint16, er int16, et int32, ec uint16) bool {
		if pr < 0 || pt < 0 {
			pr &= 0x7FFF
			pt &= 0x7FFFFFFF
		}
		p := NewPosted(int(pr), int(pt), pc, 0)
		e := Envelope{Rank: int32(er), Tag: et, Ctx: ec}
		naive := int32(pr) == e.Rank && pt == e.Tag && pc == e.Ctx
		return p.Matches(e) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Figure 2 packing facts.
func TestCacheLinePacking(t *testing.T) {
	if PostedPerLine != 2 {
		t.Errorf("PostedPerLine = %d, want 2 (Figure 2)", PostedPerLine)
	}
	if UnexpectedPerLine != 3 {
		t.Errorf("UnexpectedPerLine = %d, want 3 (Section 4.4)", UnexpectedPerLine)
	}
	if NodeBytes(2, PostedEntryBytes) != 64 {
		t.Errorf("2-entry PRQ node = %d bytes, want exactly one 64B line", NodeBytes(2, PostedEntryBytes))
	}
	if NodeBytes(3, UnexpectedEntryBytes) != 64 {
		t.Errorf("3-entry UMQ node = %d bytes, want exactly one 64B line", NodeBytes(3, UnexpectedEntryBytes))
	}
}

func TestNodeBytesSweep(t *testing.T) {
	// The exponential sweep the paper runs: K = 2,4,8,16,32 PRQ entries.
	want := map[int]uint64{2: 64, 4: 112, 8: 208, 16: 400, 32: 784}
	for k, w := range want {
		if got := NodeBytes(k, PostedEntryBytes); got != w {
			t.Errorf("NodeBytes(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestRankOverflowBehaviour(t *testing.T) {
	// 2-byte rank field: ranks beyond int16 wrap, as in the real 24-byte
	// layout. Our runtime never creates such ranks; this documents the
	// constraint.
	p := NewPosted(0x8001, 1, 0, 0) // wraps negative
	if p.Rank >= 0 {
		t.Skip("platform int16 conversion produced non-negative; layout constraint not observable")
	}
	if p.Matches(Envelope{Rank: 0x8001, Tag: 1, Ctx: 0}) {
		t.Log("wrapped rank matched raw envelope rank (mask compares low 16 bits)")
	}
}

func TestEnvelopeString(t *testing.T) {
	got := Envelope{Rank: 1, Tag: 2, Ctx: 3}.String()
	if got != "env{rank=1 tag=2 ctx=3}" {
		t.Errorf("String = %q", got)
	}
}
