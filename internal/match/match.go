// Package match defines MPI message-matching semantics and the exact
// byte layouts the paper's instruments use (Section 3.1, Figure 2):
//
//   - a posted-receive-queue (PRQ) entry is 24 bytes: 4 B tag, 2 B rank,
//     2 B context id, 8 B of wildcard bit masks, 8 B request pointer;
//   - an unexpected-message-queue (UMQ) entry needs no masks: 16 bytes.
//
// Matching follows MPI semantics: a posted receive names a source rank
// (or MPI_ANY_SOURCE), a tag (or MPI_ANY_TAG), and a communicator
// context id; an incoming envelope carries concrete rank, tag, and
// context. Wildcards are implemented with the bit masks so the hot
// comparison is three masked equality tests, exactly as in MVAPICH-style
// engines.
package match

import "fmt"

// Wildcards. Values mirror common MPI implementations: negative
// sentinels outside the valid rank/tag space.
const (
	AnySource = -1 // MPI_ANY_SOURCE
	AnyTag    = -2 // MPI_ANY_TAG
)

// Entry sizes in bytes (Figure 2) and the per-node bookkeeping the LLA
// carries (Section 3.1: "a pointer to the next array and indexes to the
// array indicating the start and end of the used section").
const (
	PostedEntryBytes     = 24
	UnexpectedEntryBytes = 16
	NodeHeaderBytes      = 8 // head + tail indexes, 4 B each
	NodeNextPtrBytes     = 8
)

// Envelope is the matching information an incoming message carries.
type Envelope struct {
	Rank int32 // sending rank within the communicator
	Tag  int32
	Ctx  uint16 // communicator context id
	Seq  uint64 // arrival sequence, used for FIFO-order assertions
}

// String implements fmt.Stringer.
func (e Envelope) String() string {
	return fmt.Sprintf("env{rank=%d tag=%d ctx=%d}", e.Rank, e.Tag, e.Ctx)
}

// Posted is one PRQ entry in its logical (unpacked) form. The packed
// 24-byte form lives in the match lists; Posted carries the same fields
// plus the request handle the 8-byte pointer would reference.
type Posted struct {
	Tag      int32
	Rank     int16
	Ctx      uint16
	TagMask  uint32 // 0xFFFFFFFF = exact, 0 = any
	RankMask uint32
	Req      uint64 // opaque request handle (the "request pointer")
}

// NewPosted builds a PRQ entry from user-level receive arguments,
// folding wildcards into masks. rank and tag accept AnySource / AnyTag.
func NewPosted(rank, tag int, ctx uint16, req uint64) Posted {
	p := Posted{Ctx: ctx, Req: req, TagMask: ^uint32(0), RankMask: ^uint32(0)}
	if rank == AnySource {
		p.RankMask = 0
	} else {
		p.Rank = int16(rank)
	}
	if tag == AnyTag {
		p.TagMask = 0
	} else {
		p.Tag = int32(tag)
	}
	return p
}

// Matches reports whether the posted receive accepts the envelope.
// This is the hot comparison: three masked equality tests.
func (p Posted) Matches(e Envelope) bool {
	if p.Ctx != e.Ctx {
		return false
	}
	if (uint32(p.Tag)^uint32(e.Tag))&p.TagMask != 0 {
		return false
	}
	if (uint32(int32(p.Rank))^uint32(e.Rank))&p.RankMask != 0 {
		return false
	}
	return true
}

// IsWild reports whether the entry uses any wildcard. Wildcard entries
// defeat bucketed structures (hash bins, rank arrays), which must fall
// back to ordered scanning to preserve MPI matching order.
func (p Posted) IsWild() bool {
	return p.TagMask == 0 || p.RankMask == 0
}

// Hole encoding (Section 3.1): deletions in the middle of an LLA node
// are represented by entries whose tag and source are invalid and whose
// mask fields are all set, so a hole can never match a real envelope.
// Holes additionally carry the reserved context id InvalidCtx, which the
// runtime never assigns to a communicator; this keeps UMQ holes immune
// even to full-wildcard receives.
const (
	holeTag  = int32(-0x7FFFFFFF)
	holeRank = int16(-0x7FFF)

	// InvalidCtx is a context id no communicator ever receives.
	InvalidCtx = uint16(0xFFFF)
)

// Hole returns the tombstone entry.
func Hole() Posted {
	return Posted{Tag: holeTag, Rank: holeRank, Ctx: InvalidCtx,
		TagMask: ^uint32(0), RankMask: ^uint32(0)}
}

// IsHole reports whether the entry is a tombstone.
func (p Posted) IsHole() bool {
	return p.Tag == holeTag && p.Rank == holeRank
}

// Unexpected is one UMQ entry: the envelope of a message that arrived
// before a matching receive was posted, plus the handle of its buffered
// payload.
type Unexpected struct {
	Tag  int32
	Rank int16
	Ctx  uint16
	Msg  uint64 // opaque handle to the buffered message
}

// NewUnexpected records an arrived envelope.
func NewUnexpected(e Envelope, msg uint64) Unexpected {
	return Unexpected{Tag: e.Tag, Rank: int16(e.Rank), Ctx: e.Ctx, Msg: msg}
}

// MatchedBy reports whether a receive described by p accepts this
// buffered message.
func (u Unexpected) MatchedBy(p Posted) bool {
	return p.Matches(Envelope{Rank: int32(u.Rank), Tag: u.Tag, Ctx: u.Ctx})
}

// UnexpectedHole returns the UMQ tombstone.
func UnexpectedHole() Unexpected {
	return Unexpected{Tag: holeTag, Rank: holeRank, Ctx: InvalidCtx}
}

// IsHole reports whether the UMQ entry is a tombstone.
func (u Unexpected) IsHole() bool {
	return u.Tag == holeTag && u.Rank == holeRank
}

// PostedPerLine and UnexpectedPerLine are the packing facts behind
// Figure 2: a 64-byte line holds the node header, the next pointer, and
// two 24-byte PRQ entries; without masks three 16-byte UMQ entries fit.
const (
	PostedPerLine     = (64 - NodeHeaderBytes - NodeNextPtrBytes) / PostedEntryBytes
	UnexpectedPerLine = (64 - NodeHeaderBytes - NodeNextPtrBytes) / UnexpectedEntryBytes
)

// NodeBytes returns the byte size of an LLA node holding k entries of
// entryBytes each: header + payload + next pointer.
func NodeBytes(k, entryBytes int) uint64 {
	return uint64(NodeHeaderBytes + k*entryBytes + NodeNextPtrBytes)
}
