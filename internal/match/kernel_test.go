package match

import (
	"math/rand"
	"testing"
)

// randPosted draws an entry mixing exact receives, wildcards, and holes.
func randPosted(rng *rand.Rand) Posted {
	switch rng.Intn(8) {
	case 0:
		return Hole()
	case 1:
		return NewPosted(AnySource, rng.Intn(8), uint16(1+rng.Intn(3)), rng.Uint64())
	case 2:
		return NewPosted(rng.Intn(16), AnyTag, uint16(1+rng.Intn(3)), rng.Uint64())
	case 3:
		return NewPosted(AnySource, AnyTag, uint16(1+rng.Intn(3)), rng.Uint64())
	default:
		return NewPosted(rng.Intn(16), rng.Intn(8), uint16(1+rng.Intn(3)), rng.Uint64())
	}
}

func randUnexpected(rng *rand.Rand) Unexpected {
	if rng.Intn(8) == 0 {
		return UnexpectedHole()
	}
	return NewUnexpected(Envelope{
		Rank: int32(rng.Intn(16)), Tag: int32(rng.Intn(8)), Ctx: uint16(1 + rng.Intn(3)),
	}, rng.Uint64())
}

// adversarialEnvelopes includes the envelope that a hole's raw fields
// would match if the kernel forgot to mask holes out.
func adversarialEnvelopes(rng *rand.Rand) []Envelope {
	envs := []Envelope{
		{Rank: int32(holeRank), Tag: holeTag, Ctx: InvalidCtx},
		{Rank: AnySource, Tag: AnyTag, Ctx: 1},
	}
	for i := 0; i < 32; i++ {
		envs = append(envs, Envelope{
			Rank: int32(rng.Intn(16)), Tag: int32(rng.Intn(8)), Ctx: uint16(1 + rng.Intn(3)),
		})
	}
	return envs
}

func TestMatchMaskAgreesWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(KernelWidth)
		ps := make([]Posted, n)
		for i := range ps {
			ps[i] = randPosted(rng)
		}
		for _, e := range adversarialEnvelopes(rng) {
			m := MatchMask(ps, e)
			for i, p := range ps {
				want := !p.IsHole() && p.Matches(e)
				got := m&(1<<uint(i)) != 0
				if got != want {
					t.Fatalf("trial %d entry %d env %v: kernel=%v scalar=%v (entry %+v)",
						trial, i, e, got, want, p)
				}
			}
		}
	}
}

func TestMatchedByMaskAgreesWithScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(KernelWidth)
		us := make([]Unexpected, n)
		for i := range us {
			us[i] = randUnexpected(rng)
		}
		for j := 0; j < 16; j++ {
			p := randPosted(rng)
			m := MatchedByMask(us, p)
			for i, u := range us {
				want := !u.IsHole() && u.MatchedBy(p)
				got := m&(1<<uint(i)) != 0
				if got != want {
					t.Fatalf("trial %d entry %d posted %+v: kernel=%v scalar=%v (entry %+v)",
						trial, i, p, got, want, u)
				}
			}
		}
	}
}

// TestFindChunked exercises arrays wider than one mask (the LLA-Large
// configurations) and checks first-match order across chunk boundaries.
func TestFindChunked(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(3*KernelWidth)
		ps := make([]Posted, n)
		us := make([]Unexpected, n)
		for i := range ps {
			ps[i] = randPosted(rng)
			us[i] = randUnexpected(rng)
		}
		for _, e := range adversarialEnvelopes(rng) {
			want := -1
			for i, p := range ps {
				if !p.IsHole() && p.Matches(e) {
					want = i
					break
				}
			}
			if got := FindPosted(ps, e); got != want {
				t.Fatalf("FindPosted trial %d env %v: got %d want %d", trial, e, got, want)
			}
		}
		p := randPosted(rng)
		want := -1
		for i, u := range us {
			if !u.IsHole() && u.MatchedBy(p) {
				want = i
				break
			}
		}
		if got := FindUnexpected(us, p); got != want {
			t.Fatalf("FindUnexpected trial %d posted %+v: got %d want %d", trial, p, got, want)
		}
	}
}

func TestFindEmpty(t *testing.T) {
	if got := FindPosted(nil, Envelope{Ctx: 1}); got != -1 {
		t.Fatalf("FindPosted(nil) = %d", got)
	}
	if got := FindUnexpected(nil, NewPosted(0, 0, 1, 1)); got != -1 {
		t.Fatalf("FindUnexpected(nil) = %d", got)
	}
}
