package trace

import (
	"fmt"
	"math"
	"strings"
)

// plotSymbols assigns one mark per series.
var plotSymbols = []byte{'o', 'x', '+', '*', '#', '@', '%', '&'}

// Plot renders the figure as an ASCII chart. Axes switch to log scale
// automatically when the data spans more than two decades (the paper's
// figures are log-log in the depth sweeps). width and height are the
// plot-area dimensions in characters; zero selects 64×20.
func (f *Figure) Plot(width, height int) string {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}

	var xs, ys []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs = append(xs, p.X)
			ys = append(ys, p.Y)
		}
	}
	if len(xs) == 0 {
		return "(empty figure)\n"
	}
	xScale := newAxisScale(xs)
	yScale := newAxisScale(ys)

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		sym := plotSymbols[si%len(plotSymbols)]
		for _, p := range s.Points {
			cx := int(math.Round(xScale.norm(p.X) * float64(width-1)))
			cy := int(math.Round(yScale.norm(p.Y) * float64(height-1)))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = sym
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", f.Title, f.YLabel)
	topLabel := axisLabel(yScale.max)
	botLabel := axisLabel(yScale.min)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for i, row := range grid {
		switch i {
		case 0:
			fmt.Fprintf(&b, "%*s |%s\n", labelW, topLabel, row)
		case height - 1:
			fmt.Fprintf(&b, "%*s |%s\n", labelW, botLabel, row)
		default:
			fmt.Fprintf(&b, "%*s |%s\n", labelW, "", row)
		}
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s  %-*s%s", labelW, "", width-len(axisLabel(xScale.max)),
		axisLabel(xScale.min), axisLabel(xScale.max))
	scales := fmt.Sprintf("  [x:%s y:%s]", xScale.kind(), yScale.kind())
	b.WriteString(scales)
	fmt.Fprintf(&b, "\n%*s  %s\n", labelW, "", f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", plotSymbols[si%len(plotSymbols)], s.Name)
	}
	return b.String()
}

// axisScale maps data to [0,1], linearly or logarithmically.
type axisScale struct {
	min, max float64
	log      bool
}

func newAxisScale(vals []float64) axisScale {
	min, max := math.Inf(1), math.Inf(-1)
	allPos := true
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		if v <= 0 {
			allPos = false
		}
	}
	if math.IsInf(min, 1) {
		return axisScale{min: 0, max: 1}
	}
	s := axisScale{min: min, max: max}
	if allPos && min > 0 && max/min > 100 {
		s.log = true
	}
	return s
}

func (a axisScale) norm(v float64) float64 {
	if a.max == a.min {
		return 0.5
	}
	if a.log {
		return (math.Log(v) - math.Log(a.min)) / (math.Log(a.max) - math.Log(a.min))
	}
	return (v - a.min) / (a.max - a.min)
}

func (a axisScale) kind() string {
	if a.log {
		return "log"
	}
	return "lin"
}

func axisLabel(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e4 || math.Abs(v) < 1e-2:
		return fmt.Sprintf("%.2g", v)
	case v == math.Trunc(v):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
