package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{0, 5, 9, 10, 19, 25, 25} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if h.Max() != 25 {
		t.Errorf("Max = %d, want 25", h.Max())
	}
	b := h.Buckets()
	if len(b) != 3 {
		t.Fatalf("buckets = %d, want 3", len(b))
	}
	if b[0].Count != 3 || b[1].Count != 2 || b[2].Count != 2 {
		t.Errorf("bucket counts = %d/%d/%d, want 3/2/2", b[0].Count, b[1].Count, b[2].Count)
	}
	if b[0].Lo != 0 || b[0].Hi != 9 {
		t.Errorf("bucket 0 range = %d-%d, want 0-9", b[0].Lo, b[0].Hi)
	}
}

func TestHistogramGapsIncluded(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(5)
	h.Observe(35)
	b := h.Buckets()
	if len(b) != 4 {
		t.Fatalf("buckets = %d, want 4 (gaps included)", len(b))
	}
	if b[1].Count != 0 || b[2].Count != 0 {
		t.Error("gap buckets should be zero")
	}
}

func TestHistogramObserveN(t *testing.T) {
	h := NewHistogram(5)
	h.ObserveN(3, 100)
	if h.Total() != 100 || h.Buckets()[0].Count != 100 {
		t.Errorf("ObserveN failed: total=%d", h.Total())
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(-5)
	if h.Buckets()[0].Count != 1 {
		t.Error("negative observation should clamp to bucket 0")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.Buckets() != nil {
		t.Error("empty histogram should have no buckets")
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(10)
	h.Observe(15)
	out := h.Render("posted")
	if !strings.Contains(out, "posted") || !strings.Contains(out, "10-19") {
		t.Errorf("Render output missing fields:\n%s", out)
	}
}

func TestStatsKnownValues(t *testing.T) {
	var s Stats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample stddev with n-1: sqrt(32/7) ≈ 2.138.
	if got := s.StdDev(); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 || s.N() != 8 {
		t.Errorf("min/max/n = %v/%v/%d", s.Min(), s.Max(), s.N())
	}
}

func TestStatsEmptyAndSingle(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty stats should be zero")
	}
	s.Add(42)
	if s.Mean() != 42 || s.StdDev() != 0 {
		t.Errorf("single-sample stats wrong: %v", s.String())
	}
}

// Welford must agree with the two-pass formula on random data.
func TestStatsWelfordProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Stats
		var sum float64
		for _, v := range raw {
			s.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, v := range raw {
			d := float64(v) - mean
			m2 += d * d
		}
		want := math.Sqrt(m2 / float64(len(raw)-1))
		return math.Abs(s.StdDev()-want) < 1e-6*(1+want) &&
			math.Abs(s.Mean()-mean) < 1e-9*(1+math.Abs(mean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStatsMergeKnownValues(t *testing.T) {
	var a, b, whole Stats
	for _, v := range []float64{2, 4, 4, 4} {
		a.Add(v)
		whole.Add(v)
	}
	for _, v := range []float64{5, 5, 7, 9} {
		b.Add(v)
		whole.Add(v)
	}
	a.Merge(b)
	if a.N() != whole.N() || a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged n/min/max = %d/%v/%v, want %d/%v/%v",
			a.N(), a.Min(), a.Max(), whole.N(), whole.Min(), whole.Max())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.StdDev()-whole.StdDev()) > 1e-12 {
		t.Errorf("merged stddev = %v, want %v", a.StdDev(), whole.StdDev())
	}
}

func TestStatsMergeEmptySides(t *testing.T) {
	var empty, s Stats
	s.Add(3)
	s.Add(5)

	got := s
	got.Merge(empty) // merging empty changes nothing
	if got != s {
		t.Errorf("merge(empty) changed stats: %+v != %+v", got, s)
	}

	var dst Stats
	dst.Merge(s) // merging into empty copies
	if dst != s {
		t.Errorf("empty.Merge(s) = %+v, want %+v", dst, s)
	}

	// And o must be left untouched.
	if s.N() != 2 || s.Mean() != 4 {
		t.Errorf("merge mutated its argument: %+v", s)
	}
}

// Splitting a random sample set across k workers and merging must agree
// with accumulating the whole set sequentially.
func TestStatsMergeProperty(t *testing.T) {
	f := func(raw []int16, kRaw uint8) bool {
		k := int(kRaw%7) + 2
		var whole Stats
		parts := make([]Stats, k)
		for i, v := range raw {
			whole.Add(float64(v))
			parts[i%k].Add(float64(v))
		}
		var merged Stats
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.N() != whole.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(whole.Mean())
		return math.Abs(merged.Mean()-whole.Mean()) < 1e-9*scale &&
			math.Abs(merged.StdDev()-whole.StdDev()) < 1e-6*(1+whole.StdDev()) &&
			merged.Min() == whole.Min() && merged.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 2.5)
	out := tb.Render()
	if !strings.Contains(out, "== T ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.5") {
		t.Errorf("missing cells:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`x,y`, `q"z`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""z"`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
}

func TestSeriesAndFigure(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	a := f.AddSeries("a")
	a.Add(1, 10)
	a.Add(2, 20)
	b := f.AddSeries("b")
	b.Add(2, 99)
	if f.Get("a") != a || f.Get("missing") != nil {
		t.Error("Get lookup broken")
	}
	if y := a.YAt(2); y != 20 {
		t.Errorf("YAt(2) = %v", y)
	}
	if !math.IsNaN(b.YAt(1)) {
		t.Error("YAt for absent x should be NaN")
	}
	out := f.Render()
	if !strings.Contains(out, "fig") || !strings.Contains(out, "a") {
		t.Errorf("figure render:\n%s", out)
	}
	// Missing points render as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing point not rendered as '-':\n%s", out)
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("fig", "x", "y")
	a := f.AddSeries("a")
	a.Add(1, 10)
	a.Add(2, 20)
	b := f.AddSeries("b")
	b.Add(1, 5)
	csv := f.CSV()
	if !strings.Contains(csv, "x,a,b") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "1,10,5") {
		t.Errorf("CSV row wrong:\n%s", csv)
	}
	// Missing points render as empty cells.
	if !strings.Contains(csv, "2,20,") {
		t.Errorf("CSV missing-point handling wrong:\n%s", csv)
	}
}

func TestPlotBasics(t *testing.T) {
	f := NewFigure("curve", "depth", "MiB/s")
	a := f.AddSeries("baseline")
	b := f.AddSeries("lla")
	for _, x := range []float64{1, 10, 100, 1000} {
		a.Add(x, 1/x)
		b.Add(x, 3/x)
	}
	out := f.Plot(40, 10)
	if !strings.Contains(out, "curve") || !strings.Contains(out, "baseline") {
		t.Errorf("plot missing title/legend:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Errorf("plot missing series marks:\n%s", out)
	}
	// Spanning 3 decades: both axes should be log.
	if !strings.Contains(out, "[x:log y:log]") {
		t.Errorf("expected log-log scales:\n%s", out)
	}
}

func TestPlotLinearAndEmpty(t *testing.T) {
	f := NewFigure("lin", "x", "y")
	s := f.AddSeries("s")
	s.Add(1, 5)
	s.Add(2, 6)
	out := f.Plot(0, 0)
	if !strings.Contains(out, "[x:lin y:lin]") {
		t.Errorf("small spans should stay linear:\n%s", out)
	}
	if got := NewFigure("e", "x", "y").Plot(10, 5); !strings.Contains(got, "empty") {
		t.Errorf("empty figure plot: %q", got)
	}
}

func TestAxisLabel(t *testing.T) {
	cases := map[float64]string{0: "0", 1024: "1024", 1048576: "1e+06", 0.5: "0.5"}
	for v, want := range cases {
		if got := axisLabel(v); got != want {
			t.Errorf("axisLabel(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestHistogramBars(t *testing.T) {
	h := NewHistogram(10)
	h.ObserveN(5, 1000)
	h.ObserveN(15, 10)
	h.Observe(35)
	out := h.Bars("posted", 20)
	if !strings.Contains(out, "posted") || !strings.Contains(out, "####") {
		t.Errorf("Bars output:\n%s", out)
	}
	// The 0-count gap bucket renders an empty bar.
	if !strings.Contains(out, "20-29") {
		t.Errorf("gap bucket missing:\n%s", out)
	}
	if got := NewHistogram(5).Bars("e", 10); !strings.Contains(got, "empty") {
		t.Errorf("empty bars: %q", got)
	}
}
