// Package trace provides the measurement plumbing shared by the
// experiment harnesses: bucketed histograms (the Figure 1 queue-length
// plots), running statistics (mean/stddev across trials, as the paper
// reports for micro-benchmarks), and fixed-width table / CSV rendering
// for regenerated paper artifacts.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts occurrences in fixed-width buckets, like the
// match-list length histograms of Figure 1.
type Histogram struct {
	BucketWidth int
	counts      map[int]uint64 // bucket index -> count
	total       uint64
	max         int
}

// NewHistogram creates a histogram with the given bucket width.
func NewHistogram(bucketWidth int) *Histogram {
	if bucketWidth <= 0 {
		bucketWidth = 1
	}
	return &Histogram{BucketWidth: bucketWidth, counts: make(map[int]uint64)}
}

// Observe records one sample.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	h.counts[v/h.BucketWidth]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// ObserveN records a sample n times.
func (h *Histogram) ObserveN(v int, n uint64) {
	if v < 0 {
		v = 0
	}
	h.counts[v/h.BucketWidth] += n
	h.total += n
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of samples.
func (h *Histogram) Total() uint64 { return h.total }

// Max returns the largest observed value.
func (h *Histogram) Max() int { return h.max }

// Bucket is one histogram row.
type Bucket struct {
	Lo, Hi int // inclusive range, as the paper labels them ("0-19")
	Count  uint64
}

// Buckets returns the non-empty buckets in ascending order, with empty
// buckets in between included so plots show gaps (as Figure 1 does).
func (h *Histogram) Buckets() []Bucket {
	if h.total == 0 {
		return nil
	}
	idxs := make([]int, 0, len(h.counts))
	for i := range h.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	last := idxs[len(idxs)-1]
	out := make([]Bucket, 0, last+1)
	for i := 0; i <= last; i++ {
		out = append(out, Bucket{
			Lo:    i * h.BucketWidth,
			Hi:    (i+1)*h.BucketWidth - 1,
			Count: h.counts[i],
		})
	}
	return out
}

// Render prints the histogram as the paper's log-scale-friendly rows.
func (h *Histogram) Render(label string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s\n", label, "occurrences")
	for _, bk := range h.Buckets() {
		fmt.Fprintf(&b, "%6d-%-9d %12d\n", bk.Lo, bk.Hi, bk.Count)
	}
	return b.String()
}

// Bars renders the histogram as a log-scaled ASCII bar chart, the
// terminal analogue of Figure 1's log-axis panels. width is the
// maximum bar length (0 selects 48).
func (h *Histogram) Bars(label string, width int) string {
	if width <= 0 {
		width = 48
	}
	buckets := h.Buckets()
	if len(buckets) == 0 {
		return label + ": (empty)\n"
	}
	maxCount := uint64(1)
	for _, bk := range buckets {
		if bk.Count > maxCount {
			maxCount = bk.Count
		}
	}
	logMax := math.Log1p(float64(maxCount))
	var b strings.Builder
	fmt.Fprintf(&b, "%s (log scale, max %d)\n", label, maxCount)
	for _, bk := range buckets {
		n := 0
		if bk.Count > 0 {
			n = int(math.Log1p(float64(bk.Count)) / logMax * float64(width))
			if n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&b, "%6d-%-9d |%-*s| %d\n", bk.Lo, bk.Hi, width, strings.Repeat("#", n), bk.Count)
	}
	return b.String()
}

// Stats accumulates running mean / variance (Welford) with min and max.
type Stats struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records a sample.
func (s *Stats) Add(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// N returns the sample count.
func (s *Stats) N() uint64 { return s.n }

// Mean returns the sample mean (0 with no samples).
func (s *Stats) Mean() float64 { return s.mean }

// StdDev returns the sample standard deviation (n-1 denominator).
func (s *Stats) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest sample (0 with no samples).
func (s *Stats) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample (0 with no samples).
func (s *Stats) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Merge folds another accumulator into s, as if every sample added to
// o had been added to s instead (Chan et al.'s parallel combination of
// Welford's recurrence). Workers can accumulate independently and the
// owner merges their partials; o is unchanged.
func (s *Stats) Merge(o Stats) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.mean += d * float64(o.n) / float64(n)
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.n = n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// String formats as "mean ± stddev".
func (s *Stats) String() string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean(), s.StdDev())
}

// Table renders aligned fixed-width text tables and CSV, used by the
// experiment drivers to print the paper's rows.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV returns the comma-separated form (quoting cells with commas).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points — one plotted curve of a
// paper figure.
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X float64
	Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the y value at the given x, or NaN when absent.
func (s *Series) YAt(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// Figure is a set of series sharing an x axis — one paper figure panel.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Get returns the named series, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Render prints the figure as a table: x in the first column, one
// column per series — the exact rows/series the paper plots.
func (f *Figure) Render() string {
	headers := append([]string{f.XLabel}, make([]string, len(f.Series))...)
	for i, s := range f.Series {
		headers[i+1] = s.Name
	}
	t := NewTable(fmt.Sprintf("%s (%s)", f.Title, f.YLabel), headers...)

	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := make([]any, len(f.Series)+1)
		row[0] = formatX(x)
		for i, s := range f.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row[i+1] = "-"
			} else {
				row[i+1] = y
			}
		}
		t.AddRow(row...)
	}
	return t.Render()
}

// CSV returns the figure as comma-separated rows (x, then one column
// per series).
func (f *Figure) CSV() string {
	headers := append([]string{f.XLabel}, make([]string, len(f.Series))...)
	for i, s := range f.Series {
		headers[i+1] = s.Name
	}
	t := NewTable("", headers...)
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := make([]any, len(f.Series)+1)
		row[0] = formatX(x)
		for i, s := range f.Series {
			y := s.YAt(x)
			if math.IsNaN(y) {
				row[i+1] = ""
			} else {
				row[i+1] = y
			}
		}
		t.AddRow(row...)
	}
	return t.CSV()
}

// formatX prints sizes compactly (1024 -> "1024", 1048576 -> "1048576")
// without trailing decimals for integral values.
func formatX(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.3g", x)
}
