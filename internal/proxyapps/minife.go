package proxyapps

import (
	"encoding/binary"
	"math"

	"spco/internal/mpi"
	"spco/internal/stencil"
)

// MiniFEConfig parameterises the MiniFE proxy: a distributed conjugate
// gradient solve of the shifted 7-point Laplacian (7I - Σ shifts) on a
// 3D torus of rank subdomains, the bulk-synchronous halo-exchange
// pattern MiniFE exhibits.
type MiniFEConfig struct {
	World mpi.Config

	// N is the local subdomain edge (N^3 points per rank).
	N int

	// Iters is the number of CG iterations.
	Iters int

	// PadDepth pre-loads every rank's posted receive queue with that
	// many unmatched entries — Figure 9's x axis.
	PadDepth int

	// ComputeNSPerPoint is the modeled cost of one local sweep per grid
	// point (SpMV + vector ops), in nanoseconds.
	ComputeNSPerPoint float64
}

func (c *MiniFEConfig) defaults() {
	if c.N == 0 {
		c.N = 8
	}
	if c.Iters == 0 {
		c.Iters = 10
	}
	if c.ComputeNSPerPoint == 0 {
		c.ComputeNSPerPoint = 12
	}
}

// subdomain holds one rank's CG state.
type subdomain struct {
	n             int
	x, b, r, p, q []float64
	halos         [6][]float64 // received faces, indexed by direction
}

func idx(n, i, j, k int) int { return (i*n+j)*n + k }

// RunMiniFE executes the proxy and returns the modeled runtime and the
// real CG residual.
func RunMiniFE(cfg MiniFEConfig) Result {
	cfg.defaults()
	w := mpi.NewWorld(cfg.World)
	gx, gy, gz := cubeDecomp(cfg.World.Size)
	grid := stencil.Decomp{X: gx, Y: gy, Z: gz}

	var res Result
	finalRes := make([]float64, cfg.World.Size)

	w.Run(func(p *mpi.Proc) {
		padQueue(p, cfg.PadDepth)
		n := cfg.N
		sd := &subdomain{
			n: n,
			x: make([]float64, n*n*n),
			b: make([]float64, n*n*n),
			r: make([]float64, n*n*n),
			p: make([]float64, n*n*n),
			q: make([]float64, n*n*n),
		}
		for d := range sd.halos {
			sd.halos[d] = make([]float64, n*n)
		}
		// b: a deterministic per-rank forcing term.
		for i := range sd.b {
			sd.b[i] = math.Sin(float64(i+1) * float64(p.Rank()+1) * 0.01)
		}

		neighbours := stencil.Neighbors3D(grid, p.Rank(), stencil.Star3D7)

		// r = b - A*0 = b; p = r.
		copy(sd.r, sd.b)
		copy(sd.p, sd.r)
		rr := dotLocal(sd.r, sd.r)
		rrGlobal := p.Allreduce([]float64{rr})[0]

		for it := 0; it < cfg.Iters; it++ {
			// Compute phase (previous iteration's vector updates):
			// caches turn over before the halo exchange.
			p.Compute(float64(n*n*n) * cfg.ComputeNSPerPoint)

			spmv(p, sd, neighbours, it)

			pq := dotLocal(sd.p, sd.q)
			pqG := p.Allreduce([]float64{pq})[0]
			alpha := rrGlobal / pqG
			for i := range sd.x {
				sd.x[i] += alpha * sd.p[i]
				sd.r[i] -= alpha * sd.q[i]
			}
			rrNew := p.Allreduce([]float64{dotLocal(sd.r, sd.r)})[0]
			beta := rrNew / rrGlobal
			for i := range sd.p {
				sd.p[i] = sd.r[i] + beta*sd.p[i]
			}
			rrGlobal = rrNew
			p.Barrier()
		}
		finalRes[p.Rank()] = math.Sqrt(rrGlobal)
	})

	res.RuntimeNS = w.MaxTimeNS()
	res.Residual = finalRes[0]
	res.Stats = w.EngineStats()
	return res
}

// spmv computes q = A p with A = 7I - Σ neighbour shifts on the global
// torus, exchanging the six faces of p with the stencil neighbours.
func spmv(p *mpi.Proc, sd *subdomain, neighbours []int, iter int) {
	n := sd.n
	// Tag per direction; receive the opposite direction's face.
	reqs := make([]*mpi.Request, 6)
	for d := 0; d < 6; d++ {
		reqs[d] = p.Irecv(neighbours[d], tagFor(iter, opposite(d)))
	}
	for d := 0; d < 6; d++ {
		p.Send(neighbours[d], tagFor(iter, d), encodeFace(extractFace(sd.p, n, d)))
	}
	for d := 0; d < 6; d++ {
		decodeFace(p.Wait(reqs[d]), sd.halos[d])
	}

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				v := 7 * sd.p[idx(n, i, j, k)]
				v -= at(sd, i+1, j, k, 0)
				v -= at(sd, i-1, j, k, 1)
				v -= at(sd, i, j+1, k, 2)
				v -= at(sd, i, j-1, k, 3)
				v -= at(sd, i, j, k+1, 4)
				v -= at(sd, i, j, k-1, 5)
				sd.q[idx(n, i, j, k)] = v
			}
		}
	}
}

// Direction encoding: 0 +x, 1 -x, 2 +y, 3 -y, 4 +z, 5 -z — matching
// stencil.Star3D7's offset order.
func opposite(d int) int { return d ^ 1 }

func tagFor(iter, dir int) int { return iter*8 + dir }

// at reads p at (i,j,k), falling back to the halo received from
// direction dir when the index leaves the local cube.
func at(sd *subdomain, i, j, k, dir int) float64 {
	n := sd.n
	if i >= 0 && i < n && j >= 0 && j < n && k >= 0 && k < n {
		return sd.p[idx(n, i, j, k)]
	}
	switch dir {
	case 0, 1:
		return sd.halos[dir][j*n+k]
	case 2, 3:
		return sd.halos[dir][i*n+k]
	default:
		return sd.halos[dir][i*n+j]
	}
}

// extractFace copies the face of v that travels in direction d.
func extractFace(v []float64, n, d int) []float64 {
	out := make([]float64, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			switch d {
			case 0: // +x: face i = n-1
				out[a*n+b] = v[idx(n, n-1, a, b)]
			case 1: // -x: face i = 0
				out[a*n+b] = v[idx(n, 0, a, b)]
			case 2: // +y
				out[a*n+b] = v[idx(n, a, n-1, b)]
			case 3: // -y
				out[a*n+b] = v[idx(n, a, 0, b)]
			case 4: // +z
				out[a*n+b] = v[idx(n, a, b, n-1)]
			default: // -z
				out[a*n+b] = v[idx(n, a, b, 0)]
			}
		}
	}
	return out
}

func dotLocal(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func encodeFace(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func decodeFace(buf []byte, out []float64) {
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
}
