package proxyapps

import (
	"math"
	"testing"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/mpi"
	"spco/internal/netmodel"
	"spco/internal/trace"
)

func smallWorld(size int, kind matchlist.Kind, k int, hot, pool bool) mpi.Config {
	prof := cache.SandyBridge
	prof.Cores = 2
	return mpi.Config{
		Size: size,
		Engine: engine.Config{
			Profile:        prof,
			Kind:           kind,
			EntriesPerNode: k,
			HotCache:       hot,
			Pool:           pool,
		},
		Fabric: netmodel.IBQDR,
	}
}

func TestCubeDecomp(t *testing.T) {
	cases := map[int][3]int{
		1:  {1, 1, 1},
		8:  {2, 2, 2},
		64: {4, 4, 4},
		12: {2, 2, 3},
	}
	for n, want := range cases {
		x, y, z := cubeDecomp(n)
		if x*y*z != n {
			t.Errorf("cubeDecomp(%d) = %dx%dx%d, product != n", n, x, y, z)
		}
		got := [3]int{x, y, z}
		// Order-insensitive comparison.
		if !samePartition(got, want) {
			t.Errorf("cubeDecomp(%d) = %v, want %v (any order)", n, got, want)
		}
	}
	// Primes stay valid even if skewed.
	x, y, z := cubeDecomp(7)
	if x*y*z != 7 {
		t.Errorf("cubeDecomp(7) product = %d", x*y*z)
	}
}

func samePartition(a, b [3]int) bool {
	sort3 := func(v [3]int) [3]int {
		if v[0] > v[1] {
			v[0], v[1] = v[1], v[0]
		}
		if v[1] > v[2] {
			v[1], v[2] = v[2], v[1]
		}
		if v[0] > v[1] {
			v[0], v[1] = v[1], v[0]
		}
		return v
	}
	return sort3(a) == sort3(b)
}

// The MiniFE proxy is a real CG solve: its residual must shrink
// substantially over iterations.
func TestMiniFEConverges(t *testing.T) {
	short := RunMiniFE(MiniFEConfig{
		World: smallWorld(8, matchlist.KindLLA, 2, false, false),
		N:     6, Iters: 2,
	})
	long := RunMiniFE(MiniFEConfig{
		World: smallWorld(8, matchlist.KindLLA, 2, false, false),
		N:     6, Iters: 12,
	})
	if math.IsNaN(long.Residual) || long.Residual <= 0 {
		t.Fatalf("residual = %v", long.Residual)
	}
	if long.Residual >= short.Residual/10 {
		t.Errorf("CG not converging: %g after 2 iters, %g after 12", short.Residual, long.Residual)
	}
}

func TestMiniFEPaddingSlowsBaselineMoreThanLLA(t *testing.T) {
	run := func(kind matchlist.Kind, pad int) float64 {
		r := RunMiniFE(MiniFEConfig{
			World: smallWorld(8, kind, 2, false, false),
			N:     4, Iters: 4, PadDepth: pad,
			ComputeNSPerPoint: 1, // make matching visible
		})
		return r.RuntimeNS
	}
	basePad := run(matchlist.KindBaseline, 1024)
	llaPad := run(matchlist.KindLLA, 1024)
	if llaPad >= basePad {
		t.Errorf("padded LLA (%.0f ns) should be faster than padded baseline (%.0f ns)", llaPad, basePad)
	}
}

func TestMiniFEStatsSane(t *testing.T) {
	r := RunMiniFE(MiniFEConfig{
		World: smallWorld(8, matchlist.KindLLA, 2, false, false),
		N:     4, Iters: 3,
	})
	// 8 ranks * 6 faces * 3 iterations arrivals.
	if r.Stats.Arrivals != 8*6*3 {
		t.Errorf("arrivals = %d, want %d", r.Stats.Arrivals, 8*6*3)
	}
	if r.RuntimeNS <= 0 {
		t.Error("runtime not positive")
	}
}

func TestAMGRuns(t *testing.T) {
	r := RunAMG(AMGConfig{
		World:  smallWorld(8, matchlist.KindLLA, 2, false, false),
		N:      8,
		Levels: 3,
		Cycles: 1,
	})
	if r.RuntimeNS <= 0 || r.Checksum == 0 {
		t.Errorf("AMG result: %+v", r)
	}
	// Per level leg: 3 face exchanges x 6 faces, plus 4*lvl coarse
	// densification messages; 2 legs, 3 levels, 8 ranks.
	want := uint64(2 * 8 * (18 + 18 + 4 + 18 + 8))
	if r.Stats.Arrivals != want {
		t.Errorf("arrivals = %d, want %d", r.Stats.Arrivals, want)
	}
}

func TestAMGWeakScalingRuntimeGrows(t *testing.T) {
	// Weak scaling adds levels and synchronisation: runtime should not
	// shrink as ranks grow.
	small := RunAMG(AMGConfig{World: smallWorld(2, matchlist.KindLLA, 2, false, false), N: 8, Cycles: 1})
	big := RunAMG(AMGConfig{World: smallWorld(16, matchlist.KindLLA, 2, false, false), N: 8, Cycles: 1})
	if big.RuntimeNS < small.RuntimeNS {
		t.Errorf("weak scaling shrank runtime: %.0f -> %.0f", small.RuntimeNS, big.RuntimeNS)
	}
}

func TestFDSDeepSearches(t *testing.T) {
	r := RunFDS(FDSConfig{
		World:       smallWorld(4, matchlist.KindBaseline, 0, false, false),
		TargetRanks: 1024,
		Phases:      1,
	})
	exch := meshExchanges(1024)
	if r.Stats.Arrivals != uint64(4*exch) {
		t.Errorf("arrivals = %d, want %d", r.Stats.Arrivals, 4*exch)
	}
	// FDS's signature: matches land deep, not at the head.
	meanDepth := r.Stats.MeanPRQDepth()
	if meanDepth < float64(exch)/8 {
		t.Errorf("mean search depth %.1f too shallow for list of %d", meanDepth, exch)
	}
}

func TestFDSLLASpeedupGrowsWithScale(t *testing.T) {
	prof := cache.Nehalem
	prof.Cores = 2
	run := func(kind matchlist.Kind, target int) float64 {
		cfg := smallWorld(4, kind, 2, false, false)
		cfg.Engine.Profile = prof
		cfg.Fabric = netmodel.MellanoxQDR
		return RunFDS(FDSConfig{World: cfg, TargetRanks: target, Phases: 1}).RuntimeNS
	}
	spdSmall := run(matchlist.KindBaseline, 256) / run(matchlist.KindLLA, 256)
	spdBig := run(matchlist.KindBaseline, 4096) / run(matchlist.KindLLA, 4096)
	if spdBig <= spdSmall {
		t.Errorf("LLA speedup should grow with scale: %.3f at 256, %.3f at 4096", spdSmall, spdBig)
	}
	if spdBig < 1.3 {
		t.Errorf("LLA speedup at 4096 = %.3f, want substantial (paper: ~2x)", spdBig)
	}
}

func TestMeshExchangesBounds(t *testing.T) {
	if meshExchanges(128) != 16 {
		t.Errorf("meshExchanges(128) = %d, want 16", meshExchanges(128))
	}
	if meshExchanges(8192) != 1024 {
		t.Errorf("meshExchanges(8192) = %d, want 1024", meshExchanges(8192))
	}
}

func TestMiniMDRuns(t *testing.T) {
	r := RunMiniMD(MiniMDConfig{
		World: smallWorld(8, matchlist.KindLLA, 2, false, false),
		Steps: 3, AtomsPerRank: 60,
	})
	if r.Residual <= 0 {
		t.Errorf("energy = %v, want positive", r.Residual)
	}
	if r.Stats.Arrivals != 8*6*3 {
		t.Errorf("arrivals = %d, want %d", r.Stats.Arrivals, 8*6*3)
	}
}

func TestSpeedupOf(t *testing.T) {
	s := speedupOf(Result{RuntimeNS: 200}, Result{RuntimeNS: 100})
	if s != 2 {
		t.Errorf("speedupOf = %v, want 2", s)
	}
	if !math.IsNaN(speedupOf(Result{RuntimeNS: 1}, Result{})) {
		t.Error("zero variant should give NaN")
	}
}

// Data movement is independent of the matching structure: the AMG
// checksum and MiniFE residual must be bit-identical across kinds.
func TestNumericsInvariantAcrossStructures(t *testing.T) {
	kinds := []matchlist.Kind{matchlist.KindBaseline, matchlist.KindLLA, matchlist.KindRankArray}
	var amgSum, feRes []float64
	for _, kind := range kinds {
		a := RunAMG(AMGConfig{
			World: smallWorld(8, kind, 2, false, false),
			N:     8, Levels: 3, Cycles: 1,
		})
		f := RunMiniFE(MiniFEConfig{
			World: smallWorld(8, kind, 2, false, false),
			N:     4, Iters: 5,
		})
		amgSum = append(amgSum, a.Checksum)
		feRes = append(feRes, f.Residual)
	}
	// The central reductions sum contributions in scheduler-dependent
	// arrival order, so equality holds only up to floating-point
	// associativity.
	relClose := func(a, b float64) bool {
		d := math.Abs(a - b)
		return d <= 1e-9*(math.Abs(a)+math.Abs(b))
	}
	for i := 1; i < len(kinds); i++ {
		if !relClose(amgSum[i], amgSum[0]) {
			t.Errorf("AMG checksum differs for %v: %v vs %v", kinds[i], amgSum[i], amgSum[0])
		}
		if !relClose(feRes[i], feRes[0]) {
			t.Errorf("MiniFE residual differs for %v: %v vs %v", kinds[i], feRes[i], feRes[0])
		}
	}
}

// Padding slows MiniMD too, and the engine reports the padded depth.
func TestMiniMDPadding(t *testing.T) {
	plain := RunMiniMD(MiniMDConfig{
		World: smallWorld(8, matchlist.KindBaseline, 0, false, false),
		Steps: 2, AtomsPerRank: 30,
	})
	padded := RunMiniMD(MiniMDConfig{
		World: smallWorld(8, matchlist.KindBaseline, 0, false, false),
		Steps: 2, AtomsPerRank: 30, PadDepth: 512,
	})
	if padded.RuntimeNS <= plain.RuntimeNS {
		t.Errorf("padding should slow MiniMD: %.0f vs %.0f ns", padded.RuntimeNS, plain.RuntimeNS)
	}
	if padded.Stats.MeanPRQDepth() < 500 {
		t.Errorf("mean depth %.1f, want >= 500 with 512 padding", padded.Stats.MeanPRQDepth())
	}
}

// The FDS histogram sink delivers populated histograms when tracking is
// enabled and nils when it is not.
func TestFDSHistSink(t *testing.T) {
	var got bool
	cfg := smallWorld(4, matchlist.KindLLA, 2, false, false)
	cfg.Engine.TrackHistograms = true
	RunFDS(FDSConfig{
		World:       cfg,
		TargetRanks: 128,
		Phases:      1,
		HistSink: func(prqLen, umqLen, depth *trace.Histogram) {
			got = prqLen != nil && prqLen.Total() > 0 && depth != nil && depth.Total() > 0
		},
	})
	if !got {
		t.Error("histogram sink not populated")
	}
}
