package proxyapps

import (
	"encoding/binary"
	"math"

	"spco/internal/mpi"
	"spco/internal/stencil"
)

// MiniMDConfig parameterises the MiniMD proxy: a molecular-dynamics
// timestep loop exchanging ghost-atom positions with the six face
// neighbours each step, then computing forces locally — the
// communication structure of the Mantevo MiniMD mini-app the paper
// lists among its proxies (Section 4.4).
type MiniMDConfig struct {
	World mpi.Config

	// AtomsPerRank sets the local atom count (ghost exchange size).
	AtomsPerRank int

	// Steps is the number of timesteps.
	Steps int

	// ComputeNSPerAtom models the force computation per atom.
	ComputeNSPerAtom float64

	// PadDepth pre-loads the PRQ.
	PadDepth int
}

func (c *MiniMDConfig) defaults() {
	if c.AtomsPerRank == 0 {
		c.AtomsPerRank = 256
	}
	if c.Steps == 0 {
		c.Steps = 5
	}
	if c.ComputeNSPerAtom == 0 {
		c.ComputeNSPerAtom = 40
	}
}

// RunMiniMD executes the proxy. Residual carries the total kinetic
// "energy" after the run — a real reduction over exchanged data.
func RunMiniMD(cfg MiniMDConfig) Result {
	cfg.defaults()
	w := mpi.NewWorld(cfg.World)
	gx, gy, gz := cubeDecomp(cfg.World.Size)
	grid := stencil.Decomp{X: gx, Y: gy, Z: gz}
	energies := make([]float64, cfg.World.Size)

	w.Run(func(p *mpi.Proc) {
		padQueue(p, cfg.PadDepth)
		neighbours := stencil.Neighbors3D(grid, p.Rank(), stencil.Star3D7)
		// Ghost strip: a sixth of the local atoms per face, 24 B each
		// (three float64 coordinates).
		ghost := cfg.AtomsPerRank / 6
		if ghost < 1 {
			ghost = 1
		}
		positions := make([]float64, 3*ghost)
		for i := range positions {
			positions[i] = math.Sin(float64(p.Rank()*31+i) * 0.1)
		}
		var energy float64

		for step := 0; step < cfg.Steps; step++ {
			p.Compute(float64(cfg.AtomsPerRank) * cfg.ComputeNSPerAtom)

			buf := make([]byte, 8*len(positions))
			for i, v := range positions {
				binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
			}
			reqs := make([]*mpi.Request, 6)
			for d := 0; d < 6; d++ {
				reqs[d] = p.Irecv(neighbours[d], step*8+opposite(d))
			}
			for d := 0; d < 6; d++ {
				p.Send(neighbours[d], step*8+d, buf)
			}
			for d := 0; d < 6; d++ {
				got := p.Wait(reqs[d])
				for i := 0; i+8 <= len(got); i += 8 {
					v := math.Float64frombits(binary.LittleEndian.Uint64(got[i:]))
					energy += v * v
				}
			}
			// Velocity-verlet-ish local update keeps positions moving.
			for i := range positions {
				positions[i] = 0.99*positions[i] + 0.01*math.Cos(float64(step))
			}
			p.Barrier()
		}
		total := p.Allreduce([]float64{energy})
		energies[p.Rank()] = total[0]
	})

	var res Result
	res.RuntimeNS = w.MaxTimeNS()
	res.Residual = energies[0]
	res.Stats = w.EngineStats()
	return res
}
