// Package proxyapps implements communication-faithful proxies of the
// applications in the paper's evaluation (Sections 4.4-4.5):
//
//   - MiniFE: an unstructured implicit finite-element mini-app whose
//     primary computation is a conjugate-gradient solve over a
//     halo-exchanged domain (Figure 9).
//   - AMG2013: a weak-scaling algebraic-multigrid solver, bandwidth-
//     heavy, run in the DOE-recommended configuration (Figure 8).
//   - FDS: the Fire Dynamics Simulator, whose mesh-coupled exchanges
//     build long match lists that rarely match at the head (Figure 10).
//   - MiniMD: a molecular-dynamics neighbour-exchange proxy (mentioned
//     in Section 4.4; no standalone figure).
//
// Each proxy reproduces its application's *matching profile* — queue
// lengths, search depths, message sizes and synchronisation structure —
// over the mini-MPI runtime, while its numerics are small real kernels
// (the MiniFE proxy runs an actual distributed CG solve whose residual
// convergence the tests assert). Compute phases advance the virtual
// clock through mpi.Proc.Compute, which also turns the caches over
// between communication phases, exactly the locality regime the paper
// studies.
package proxyapps

import (
	"math"

	"spco/internal/engine"
	"spco/internal/mpi"
)

// Result summarises one application run.
type Result struct {
	RuntimeNS float64      // modeled wall time (max rank clock)
	Residual  float64      // final numerical residual, where applicable
	Checksum  float64      // data-movement checksum, where applicable
	Stats     engine.Stats // summed engine statistics
}

// RuntimeSeconds converts the modeled runtime.
func (r Result) RuntimeSeconds() float64 { return r.RuntimeNS / 1e9 }

// padQueue posts depth permanently-unmatched receives, the mechanism
// the paper used to vary mini-app receive-queue lengths ("The mini-apps
// were modified to allow different receive queue lengths", Section 4.1).
func padQueue(p *mpi.Proc, depth int) {
	const padTag = 1 << 22 // no proxy uses tags this large
	for i := 0; i < depth; i++ {
		p.Irecv(p.Rank(), padTag+i)
	}
}

// cubeDecomp returns a near-cubic 3D factorisation of n ranks.
func cubeDecomp(n int) (x, y, z int) {
	x, y, z = 1, 1, 1
	// Repeatedly split the largest prime factor onto the smallest axis.
	rem := n
	for f := 2; f*f <= rem; {
		if rem%f == 0 {
			rem /= f
			switch {
			case x <= y && x <= z:
				x *= f
			case y <= z:
				y *= f
			default:
				z *= f
			}
		} else {
			f++
		}
	}
	if rem > 1 {
		switch {
		case x <= y && x <= z:
			x *= rem
		case y <= z:
			y *= rem
		default:
			z *= rem
		}
	}
	return x, y, z
}

// speedupOf is a convenience for scaling studies: baseline over variant.
func speedupOf(baseline, variant Result) float64 {
	if variant.RuntimeNS == 0 {
		return math.NaN()
	}
	return baseline.RuntimeNS / variant.RuntimeNS
}
