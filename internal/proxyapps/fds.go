package proxyapps

import (
	"math/rand"

	"spco/internal/mpi"
	"spco/internal/trace"
)

// FDSConfig parameterises the Fire Dynamics Simulator proxy. FDS
// couples every mesh to many others (pressure and radiation exchanges),
// so per-rank match lists grow with job scale and messages rarely match
// at the head of the list — "It builds up large match lists and does
// not typically match the first element" (Section 4.5).
//
// Simulating 8192 full engines is unnecessary: FDS ranks are
// symmetric, so the proxy runs a small world whose per-rank matching
// load (receives per phase, hence list length and search depth) is that
// of a TargetRanks-sized job, while compute per rank strong-scales as
// 1/TargetRanks. This substitution is recorded in DESIGN.md; the
// figure-10 speedup factors are ratios of modeled runtimes at equal
// TargetRanks, which depend only on the per-rank load.
type FDSConfig struct {
	World mpi.Config

	// TargetRanks is the modeled job size (Figure 10's x axis).
	TargetRanks int

	// Phases is the number of exchange/compute super-steps.
	Phases int

	// BaseComputeNS is the per-phase compute at 128 target ranks;
	// strong scaling divides it by TargetRanks/128.
	BaseComputeNS float64

	// Seed scrambles send order (deep, non-head matches).
	Seed int64

	// HistSink, when set, receives rank 0's queue-length and
	// search-depth histograms after the run (enable
	// World.Engine.TrackHistograms to populate them).
	HistSink func(prqLen, umqLen, depth *trace.Histogram)
}

func (c *FDSConfig) defaults() {
	if c.TargetRanks == 0 {
		c.TargetRanks = 128
	}
	if c.Phases == 0 {
		c.Phases = 2
	}
	if c.BaseComputeNS == 0 {
		c.BaseComputeNS = 4e6 // 4 ms per phase at 128 ranks
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// meshExchanges returns the per-rank receives per phase for a job of
// targetRanks meshes: FDS's coupled exchanges grow with scale; the
// division by 8 keeps simulated work tractable while preserving
// hundreds-to-thousands-long lists at the figure's upper scales.
func meshExchanges(targetRanks int) int {
	r := targetRanks / 8
	if r < 16 {
		r = 16
	}
	if r > 1024 {
		r = 1024
	}
	return r
}

// RunFDS executes the proxy.
func RunFDS(cfg FDSConfig) Result {
	cfg.defaults()
	w := mpi.NewWorld(cfg.World)
	size := cfg.World.Size
	exchanges := meshExchanges(cfg.TargetRanks)
	computeNS := cfg.BaseComputeNS * 128 / float64(cfg.TargetRanks)
	sums := make([]float64, size)

	w.Run(func(p *mpi.Proc) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p.Rank())))
		var checksum float64
		payload := make([]byte, 256) // boundary-strip exchanges are small
		for i := range payload {
			payload[i] = byte(p.Rank() + i)
		}

		// Solver work is interleaved with the mesh exchanges (FDS
		// alternates hydrodynamics with pressure/radiation coupling),
		// so the match queues never stay cache-resident on their own:
		// every burst of arrivals finds cold queues unless a heater
		// kept them warm. The per-phase compute budget is spread over
		// the exchange bursts; with hot caching the heater re-warms the
		// queues in each burst's compute window — a window that strong
		// scaling shrinks below the heater period at large TargetRanks.
		const burst = 1
		bursts := (exchanges + burst - 1) / burst
		microNS := computeNS / float64(bursts)

		for ph := 0; ph < cfg.Phases; ph++ {
			// Post all receives for this phase's mesh exchanges. The
			// j-th receive takes the j-th message from partner
			// (rank+1+j) mod size.
			reqs := make([]*mpi.Request, exchanges)
			for j := 0; j < exchanges; j++ {
				src := (p.Rank() + 1 + j) % size
				reqs[j] = p.Irecv(src, ph*exchanges+j)
			}

			// Send this rank's messages in scrambled order: the
			// receiver's searches then match deep in the list, FDS's
			// signature behaviour.
			order := rng.Perm(exchanges)
			for _, j := range order {
				dst := ((p.Rank()-1-j)%size + size) % size
				p.Send(dst, ph*exchanges+j, payload)
			}

			// Drain in paced bursts: a slice of solver work, then up to
			// `burst` arrivals — so every burst's searches find the
			// queues as cold as the last compute slice left them.
			processed := 0
			for processed < exchanges {
				p.Compute(microNS)
				processed += p.ProgressN(burst)
			}
			for j := 0; j < exchanges; j++ {
				got := p.Wait(reqs[j]) // all complete: collects payloads
				checksum += float64(got[0])
			}
			p.Barrier()
		}
		sums[p.Rank()] = checksum
	})

	var res Result
	res.RuntimeNS = w.MaxTimeNS()
	res.Checksum = sums[0]
	res.Stats = w.EngineStats()
	if cfg.HistSink != nil {
		en := w.Proc(0).Engine()
		cfg.HistSink(en.PRQLengthHistogram(), en.UMQLengthHistogram(), en.PRQDepthHistogram())
	}
	return res
}
