package proxyapps

import (
	"encoding/binary"
	"math"

	"spco/internal/mpi"
	"spco/internal/stencil"
)

// AMGConfig parameterises the AMG2013 proxy: a weak-scaling algebraic
// multigrid V-cycle in the DOE-recommended configuration — bandwidth-
// sensitive, with occasional large messages on fine levels and small
// messages with constant neighbour count on coarse levels, ending in
// allreduce-based coarse solves.
type AMGConfig struct {
	World mpi.Config

	// N is the fine-level local grid edge; weak scaling keeps it fixed
	// as ranks grow (the paper's "proportionally larger problems").
	N int

	// Levels is the V-cycle depth; 0 derives it from the global
	// problem (log8 of global points, capped).
	Levels int

	// Cycles is the number of V-cycles.
	Cycles int

	// SmoothSweeps per level per leg of the V.
	SmoothSweeps int

	// ComputeNSPerPoint models a relaxation sweep's per-point cost.
	ComputeNSPerPoint float64

	// PadDepth pre-loads the PRQ, as in the microbenchmarks.
	PadDepth int
}

func (c *AMGConfig) defaults() {
	if c.N == 0 {
		c.N = 16
	}
	if c.Levels == 0 {
		// Weak scaling: global points = P * N^3; levels grow with log8.
		global := float64(c.World.Size) * float64(c.N*c.N*c.N)
		c.Levels = int(math.Log(global)/math.Log(8)) - 1
		if c.Levels < 3 {
			c.Levels = 3
		}
		if c.Levels > 8 {
			c.Levels = 8
		}
	}
	if c.Cycles == 0 {
		c.Cycles = 2
	}
	if c.SmoothSweeps == 0 {
		c.SmoothSweeps = 2
	}
	if c.ComputeNSPerPoint == 0 {
		c.ComputeNSPerPoint = 8
	}
}

// RunAMG executes the proxy. The residual field carries a halo-data
// checksum, asserting the exchanges moved real data.
func RunAMG(cfg AMGConfig) Result {
	cfg.defaults()
	w := mpi.NewWorld(cfg.World)
	gx, gy, gz := cubeDecomp(cfg.World.Size)
	grid := stencil.Decomp{X: gx, Y: gy, Z: gz}
	sums := make([]float64, cfg.World.Size)

	w.Run(func(p *mpi.Proc) {
		padQueue(p, cfg.PadDepth)
		neighbours := stencil.Neighbors3D(grid, p.Rank(), stencil.Star3D7)
		var checksum float64
		tag := 0

		for cyc := 0; cyc < cfg.Cycles; cyc++ {
			// Down-leg: smooth + restrict, fine to coarse.
			for lvl := 0; lvl < cfg.Levels; lvl++ {
				checksum += amgLevel(p, cfg, neighbours, lvl, &tag)
			}
			// Coarse solve: a few allreduce-synchronised iterations.
			for i := 0; i < 3; i++ {
				v := p.Allreduce([]float64{float64(p.Rank()%7) + 1})
				checksum += v[0] * 1e-6
			}
			// Up-leg: interpolate + smooth, coarse to fine.
			for lvl := cfg.Levels - 1; lvl >= 0; lvl-- {
				checksum += amgLevel(p, cfg, neighbours, lvl, &tag)
			}
			p.Barrier()
		}
		sums[p.Rank()] = checksum
	})

	var res Result
	res.RuntimeNS = w.MaxTimeNS()
	res.Checksum = sums[0]
	res.Stats = w.EngineStats()
	return res
}

// amgLevel runs one level's smoothing compute and face exchanges,
// returning a checksum of the received bytes. Level ℓ's local edge is
// N/2^ℓ (floored at 2), so fine levels move large faces and coarse
// levels move small ones — AMG's characteristic message-size mix. Each
// level leg performs three halo exchanges (smoothed values, residual,
// and the restriction/interpolation transfer), as the real V-cycle
// does.
func amgLevel(p *mpi.Proc, cfg AMGConfig, neighbours []int, lvl int, tag *int) float64 {
	edge := cfg.N >> lvl
	if edge < 2 {
		edge = 2
	}
	points := edge * edge * edge
	p.Compute(float64(points) * cfg.ComputeNSPerPoint * float64(cfg.SmoothSweeps))

	// Face exchanges: 8 bytes per face point.
	face := make([]byte, 8*edge*edge)
	for i := 0; i < edge*edge; i++ {
		binary.LittleEndian.PutUint64(face[8*i:], uint64(p.Rank()*1000+lvl*10+i))
	}
	// All three exchanges' receives are pre-posted (hypre keeps its
	// level communication pre-posted), so the level's queue holds 18
	// entries and arrivals search meaningfully deep.
	var sum float64
	base := *tag
	*tag += 24
	reqs := make([]*mpi.Request, 0, 18)
	for x := 0; x < 3; x++ {
		for d := 0; d < 6; d++ {
			reqs = append(reqs, p.Irecv(neighbours[d], base+8*x+opposite(d)))
		}
	}
	// Weak-scaled AMG is tightly synchronised: receives are posted
	// everywhere before data moves, so arrivals always match the PRQ.
	p.Barrier()
	for x := 0; x < 3; x++ {
		for d := 0; d < 6; d++ {
			p.Send(neighbours[d], base+8*x+d, face)
		}
	}
	// Smoothing and residual work interleave with the exchanges'
	// completion, so each arrival burst finds the queues as cold as the
	// preceding relaxation slice left them.
	const slices = 6
	processed := 0
	for processed < len(reqs) {
		p.Compute(float64(points) * cfg.ComputeNSPerPoint / slices)
		processed += p.ProgressN(len(reqs)/slices + 1)
	}
	for _, r := range reqs {
		got := p.Wait(r)
		sum += float64(binary.LittleEndian.Uint64(got[:8])) * 1e-9
	}

	// Coarse-grid densification: algebraic coarsening couples each
	// coarse point to ever more remote ranks, so deeper levels add
	// small-message exchanges with extra partners while their compute
	// shrinks — the regime where matching cost surfaces in AMG.
	if lvl >= 1 {
		extra := 4 * lvl
		size := p.Size()
		small := face[:16]
		base := *tag
		*tag += 2 * extra
		reqs := make([]*mpi.Request, extra)
		for e := 0; e < extra; e++ {
			src := ((p.Rank()-2-e)%size + size) % size
			reqs[e] = p.Irecv(src, base+e)
		}
		for e := 0; e < extra; e++ {
			dst := (p.Rank() + 2 + e) % size
			p.Send(dst, base+e, small)
		}
		for e := 0; e < extra; e++ {
			got := p.Wait(reqs[e])
			sum += float64(got[0]) * 1e-9
		}
	}
	return sum
}
