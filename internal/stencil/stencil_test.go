package stencil

import "testing"

func TestStencilOffsets(t *testing.T) {
	cases := []struct {
		s    Stencil
		n    int
		dims int
	}{
		{Star2D5, 4, 2},
		{Full2D9, 8, 2},
		{Star3D7, 6, 3},
		{Full3D27, 26, 3},
	}
	for _, c := range cases {
		if got := len(c.s.Offsets()); got != c.n {
			t.Errorf("%v: %d offsets, want %d", c.s, got, c.n)
		}
		if got := c.s.Dims(); got != c.dims {
			t.Errorf("%v: Dims = %d, want %d", c.s, got, c.dims)
		}
	}
}

func TestStencilString(t *testing.T) {
	want := map[Stencil]string{Star2D5: "5pt", Full2D9: "9pt", Star3D7: "7pt", Full3D27: "27pt"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestDecompString(t *testing.T) {
	if got := (Decomp{X: 32, Y: 32}).String(); got != "32x32" {
		t.Errorf("2D string = %q", got)
	}
	if got := (Decomp{X: 8, Y: 8, Z: 4}).String(); got != "8x8x4" {
		t.Errorf("3D string = %q", got)
	}
}

func TestDecompCoordRoundTrip(t *testing.T) {
	d := Decomp{X: 3, Y: 4, Z: 5}
	for id := 0; id < d.Count(); id++ {
		if got := d.id(d.coord(id)); got != id {
			t.Errorf("coord/id round trip failed for %d: got %d", id, got)
		}
	}
	if d.id([3]int{3, 0, 0}) != -1 || d.id([3]int{-1, 0, 0}) != -1 {
		t.Error("out-of-range coords must map to -1")
	}
}

// Table 1's exact tr / ts / Length values are pure functions of the
// decomposition and stencil; our formulas must reproduce all ten rows.
func TestTable1Rows(t *testing.T) {
	rows := []struct {
		d      Decomp
		s      Stencil
		tr     int
		ts     int
		length int
	}{
		{Decomp{X: 32, Y: 32}, Star2D5, 124, 128, 128},
		{Decomp{X: 64, Y: 32}, Star2D5, 188, 192, 192},
		{Decomp{X: 32, Y: 32}, Full2D9, 124, 132, 380},
		{Decomp{X: 64, Y: 32}, Full2D9, 188, 196, 572},
		{Decomp{X: 8, Y: 8, Z: 4}, Star3D7, 184, 256, 256},
		{Decomp{X: 1, Y: 1, Z: 128}, Star3D7, 128, 514, 514},
		{Decomp{X: 1, Y: 1, Z: 256}, Star3D7, 256, 1026, 1026},
		{Decomp{X: 8, Y: 8, Z: 4}, Full3D27, 184, 344, 2072},
		{Decomp{X: 1, Y: 1, Z: 128}, Full3D27, 128, 1042, 3074},
		{Decomp{X: 1, Y: 1, Z: 256}, Full3D27, 256, 2066, 6146},
	}
	for _, r := range rows {
		if got := ReceivingThreads(r.d, r.s); got != r.tr {
			t.Errorf("%v %v: tr = %d, want %d", r.d, r.s, got, r.tr)
		}
		if got := SendingThreads(r.d, r.s); got != r.ts {
			t.Errorf("%v %v: ts = %d, want %d", r.d, r.s, got, r.ts)
		}
		if got := TotalMessages(r.d, r.s); got != r.length {
			t.Errorf("%v %v: length = %d, want %d", r.d, r.s, got, r.length)
		}
	}
}

func TestBoundaryThreadsInteriorExcluded(t *testing.T) {
	d := Decomp{X: 4, Y: 4}
	b := BoundaryThreads(d, Star2D5)
	if len(b) != 12 { // 16 threads, 4 interior
		t.Fatalf("4x4 5pt boundary threads = %d, want 12", len(b))
	}
	inner := d.id([3]int{1, 1, 0})
	for _, id := range b {
		if id == inner {
			t.Error("interior thread listed as boundary")
		}
	}
}

func TestMessagesPerThread(t *testing.T) {
	d := Decomp{X: 3, Y: 3}
	m := Messages(d, Star2D5)
	corner := d.id([3]int{0, 0, 0})
	edge := d.id([3]int{1, 0, 0})
	centre := d.id([3]int{1, 1, 0})
	if m[corner] != 2 {
		t.Errorf("corner posts %d receives, want 2", m[corner])
	}
	if m[edge] != 1 {
		t.Errorf("edge posts %d receives, want 1", m[edge])
	}
	if _, ok := m[centre]; ok {
		t.Error("centre thread should post no remote receives")
	}
}

func TestNeighbors3DPeriodic(t *testing.T) {
	grid := Decomp{X: 4, Y: 4, Z: 4}
	n := Neighbors3D(grid, 0, Star3D7)
	if len(n) != 6 {
		t.Fatalf("7pt neighbours = %d, want 6", len(n))
	}
	seen := map[int]bool{}
	for _, r := range n {
		if r < 0 || r >= grid.Count() {
			t.Errorf("neighbour rank %d out of range", r)
		}
		seen[r] = true
	}
	// Rank 0 at (0,0,0): ±x wraps to 3 and 1, etc. All distinct here.
	if len(seen) != 6 {
		t.Errorf("expected 6 distinct neighbours, got %d", len(seen))
	}
}

func TestNeighbors3DSelfWrap(t *testing.T) {
	// Degenerate 1x1xN grid: x/y neighbours wrap to self.
	grid := Decomp{X: 1, Y: 1, Z: 4}
	n := Neighbors3D(grid, 2, Star3D7)
	self := 0
	for _, r := range n {
		if r == 2 {
			self++
		}
	}
	if self != 4 {
		t.Errorf("1x1xN ±x/±y wrap to self: got %d self-neighbours, want 4", self)
	}
}

func TestTotalMessagesAllInterior(t *testing.T) {
	// A 1x1 "grid" with a 5pt stencil: the single thread is boundary in
	// all four directions.
	if got := TotalMessages(Decomp{X: 1, Y: 1}, Star2D5); got != 4 {
		t.Errorf("1x1 5pt total = %d, want 4", got)
	}
}
