// Package stencil models the thread decompositions and communication
// stencils behind Table 1 and the halo-exchange proxy applications.
//
// In the paper's multithreaded matching benchmark (Section 2.3), a
// receiving MPI process is decomposed into a grid of threads; each
// thread posts receives for the neighbours its stencil references in
// similarly-decomposed neighbouring processes. The number of match-list
// entries is a function of the decomposition and the stencil; Table 1
// tabulates tr (receiving threads), ts (sending threads), resulting list
// length, and mean search depth.
package stencil

import "fmt"

// Stencil identifies a communication stencil.
type Stencil int

// The stencils in Table 1 and the proxy apps.
const (
	// Star2D5 is the 2D 5-point star: N, S, E, W.
	Star2D5 Stencil = iota
	// Full2D9 is the 2D 9-point stencil: all 8 neighbours.
	Full2D9
	// Star3D7 is the 3D 7-point star: 6 face neighbours.
	Star3D7
	// Full3D27 is the 3D 27-point stencil: all 26 neighbours.
	Full3D27
)

// String implements fmt.Stringer using the paper's labels.
func (s Stencil) String() string {
	switch s {
	case Star2D5:
		return "5pt"
	case Full2D9:
		return "9pt"
	case Star3D7:
		return "7pt"
	case Full3D27:
		return "27pt"
	}
	return fmt.Sprintf("Stencil(%d)", int(s))
}

// Dims returns the dimensionality the stencil applies to.
func (s Stencil) Dims() int {
	if s == Star2D5 || s == Full2D9 {
		return 2
	}
	return 3
}

// Offsets returns the neighbour offsets, excluding the centre.
func (s Stencil) Offsets() [][3]int {
	var out [][3]int
	switch s {
	case Star2D5:
		out = [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}}
	case Full2D9:
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				if dx == 0 && dy == 0 {
					continue
				}
				out = append(out, [3]int{dx, dy, 0})
			}
		}
	case Star3D7:
		out = [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	case Full3D27:
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					if dx == 0 && dy == 0 && dz == 0 {
						continue
					}
					out = append(out, [3]int{dx, dy, dz})
				}
			}
		}
	}
	return out
}

// Decomp is a thread (or process) grid decomposition. 2D decompositions
// set Z to 1.
type Decomp struct {
	X, Y, Z int
}

// String prints "XxY" or "XxYxZ" as in Table 1.
func (d Decomp) String() string {
	if d.Z <= 1 {
		return fmt.Sprintf("%dx%d", d.X, d.Y)
	}
	return fmt.Sprintf("%dx%dx%d", d.X, d.Y, d.Z)
}

// Count returns the number of cells (threads) in the decomposition.
func (d Decomp) Count() int {
	z := d.Z
	if z < 1 {
		z = 1
	}
	return d.X * d.Y * z
}

// coord converts a linear id to grid coordinates.
func (d Decomp) coord(id int) [3]int {
	z := d.Z
	if z < 1 {
		z = 1
	}
	_ = z
	x := id % d.X
	y := (id / d.X) % d.Y
	zz := id / (d.X * d.Y)
	return [3]int{x, y, zz}
}

// id converts grid coordinates to a linear id, or -1 if out of range.
func (d Decomp) id(c [3]int) int {
	z := d.Z
	if z < 1 {
		z = 1
	}
	if c[0] < 0 || c[0] >= d.X || c[1] < 0 || c[1] >= d.Y || c[2] < 0 || c[2] >= z {
		return -1
	}
	return c[0] + d.X*(c[1]+d.Y*c[2])
}

// BoundaryThreads returns the thread ids on the decomposition's outer
// boundary in the directions the stencil references — the threads that
// post receives for remote neighbours. Interior threads communicate
// through shared memory and never touch the MPI matching engine
// (Section 2.3's assumption).
func BoundaryThreads(d Decomp, s Stencil) []int {
	var out []int
	n := d.Count()
	for t := 0; t < n; t++ {
		if len(remoteNeighbors(d, s, t)) > 0 {
			out = append(out, t)
		}
	}
	return out
}

// remoteNeighbors lists the stencil offsets of thread t that fall
// outside the decomposition — each one is a message from a neighbouring
// process.
func remoteNeighbors(d Decomp, s Stencil, t int) [][3]int {
	c := d.coord(t)
	var out [][3]int
	for _, off := range s.Offsets() {
		nc := [3]int{c[0] + off[0], c[1] + off[1], c[2] + off[2]}
		if d.id(nc) == -1 {
			out = append(out, off)
		}
	}
	return out
}

// IsRemote reports whether thread t's stencil offset (by index into
// Offsets) crosses the decomposition boundary — i.e. whether that
// neighbour datum arrives as an MPI message rather than through shared
// memory.
func IsRemote(d Decomp, s Stencil, t, offsetIndex int) bool {
	offs := s.Offsets()
	if offsetIndex < 0 || offsetIndex >= len(offs) {
		return false
	}
	c := d.coord(t)
	off := offs[offsetIndex]
	return d.id([3]int{c[0] + off[0], c[1] + off[1], c[2] + off[2]}) == -1
}

// Messages returns, per receiving thread, the number of remote receives
// it posts in one communication phase (one per remote stencil
// neighbour). The sum is the process's match-list length in Table 1.
func Messages(d Decomp, s Stencil) map[int]int {
	out := make(map[int]int)
	n := d.Count()
	for t := 0; t < n; t++ {
		if m := len(remoteNeighbors(d, s, t)); m > 0 {
			out[t] = m
		}
	}
	return out
}

// TotalMessages sums Messages over all threads: the expected match-list
// length for the decomposition and stencil.
func TotalMessages(d Decomp, s Stencil) int {
	total := 0
	for _, m := range Messages(d, s) {
		total += m
	}
	return total
}

// ReceivingThreads counts threads that post at least one remote receive
// (Table 1's tr column).
func ReceivingThreads(d Decomp, s Stencil) int {
	return len(Messages(d, s))
}

// SendingThreads counts the threads in neighbouring processes that send
// to this process (Table 1's ts column): for each stencil direction, the
// facing region of the neighbouring process contributes its thread
// count — a full face for face directions, an edge line for edge
// directions, a single corner thread for corner directions.
func SendingThreads(d Decomp, s Stencil) int {
	z := d.Z
	if z < 1 {
		z = 1
	}
	dims := [3]int{d.X, d.Y, z}
	total := 0
	for _, off := range s.Offsets() {
		region := 1
		for axis := 0; axis < 3; axis++ {
			if off[axis] == 0 {
				region *= dims[axis]
			}
		}
		total += region
	}
	return total
}

// Neighbors3D returns, for a process at the given coordinates of a
// process grid, the linear ranks of its stencil neighbours (periodic
// boundaries), used by the halo-exchange proxies.
func Neighbors3D(grid Decomp, rank int, s Stencil) []int {
	c := grid.coord(rank)
	offs := s.Offsets()
	out := make([]int, 0, len(offs))
	z := grid.Z
	if z < 1 {
		z = 1
	}
	for _, off := range offs {
		nc := [3]int{
			mod(c[0]+off[0], grid.X),
			mod(c[1]+off[1], grid.Y),
			mod(c[2]+off[2], z),
		}
		out = append(out, grid.id(nc))
	}
	return out
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
