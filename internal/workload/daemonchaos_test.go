package workload

import (
	"io"
	"testing"
	"time"

	"spco/internal/cache"
	"spco/internal/daemon"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/matchlist"
	"spco/internal/telemetry"
)

func startDaemon(t *testing.T, mut func(*daemon.Config)) (*daemon.Server, func()) {
	t.Helper()
	cfg := daemon.Config{
		Engine: engine.Config{
			Profile:        cache.SandyBridge,
			Kind:           matchlist.KindLLA,
			EntriesPerNode: 2,
		},
		Collector:    telemetry.NewCollector(nil),
		DrainTimeout: 2 * time.Second,
		PerfOut:      io.Discard,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Run(nil) }()
	return srv, func() {
		srv.Stop()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("daemon Run: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not stop")
		}
	}
}

func TestRunDaemonChaosClean(t *testing.T) {
	srv, stop := startDaemon(t, nil)
	defer stop()

	res, err := RunDaemonChaos(DaemonChaosConfig{
		Addr:      srv.Addr(),
		AdminAddr: srv.AdminAddr(),
		Load:      daemon.LoadConfig{Conns: 4, Messages: 2000, PhaseEvery: 250, PhaseNS: 5e4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Load.Matched() != 2000 {
		t.Fatalf("matched %d, want 2000", res.Load.Matched())
	}
	if res.After.Engine.Arrivals <= res.Before.Engine.Arrivals {
		t.Error("status deltas did not advance")
	}
}

func TestRunDaemonChaosLossyWire(t *testing.T) {
	srv, stop := startDaemon(t, func(c *daemon.Config) {
		c.Wire = fault.WireConfig{DropProb: 0.05, DupProb: 0.02, CorruptProb: 0.02}
		c.FaultSeed = 11
	})
	defer stop()

	res, err := RunDaemonChaos(DaemonChaosConfig{
		Addr:      srv.Addr(),
		AdminAddr: srv.AdminAddr(),
		Load:      daemon.LoadConfig{Conns: 4, Messages: 1500, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Load.Nacks == 0 {
		t.Error("lossy wire produced no NACKs")
	}
}

// A bounded UMQ under drop policy refuses arrivals when full; the
// retransmitting client must still land every pair, and the refusals
// must reconcile in the counter audit.
func TestRunDaemonChaosBoundedUMQ(t *testing.T) {
	srv, stop := startDaemon(t, func(c *daemon.Config) {
		c.Engine.UMQCapacity = 16
		c.Engine.Overflow = engine.OverflowDrop
	})
	defer stop()

	res, err := RunDaemonChaos(DaemonChaosConfig{
		Addr:      srv.Addr(),
		AdminAddr: srv.AdminAddr(),
		Load: daemon.LoadConfig{
			Conns:       4,
			Messages:    1200,
			PrePostFrac: 0.1, // arrive-heavy: pressure the UMQ bound
			MaxRetries:  2000,
			RetryDelay:  50 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}
