package workload

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"spco/internal/daemon"
	"spco/internal/validate"
)

// DaemonLoadConfig re-exports the daemon load-generator configuration
// so chaos callers shape traffic without importing internal/daemon.
type DaemonLoadConfig = daemon.LoadConfig

// DaemonChaosConfig parameterises a chaos run against a LIVE daemon:
// where RunChaos owns its engine in-process and replays a discrete
// event schedule, RunDaemonChaos drives seeded load across real TCP
// connections into a running spco-daemon and audits what came back.
// The interleaving at the daemon is scheduler-real, not simulated — the
// soak gate for the serving path.
type DaemonChaosConfig struct {
	// Addr is the daemon's match-traffic address; AdminAddr, when set,
	// enables the counter-conservation audit via /status deltas.
	Addr      string
	AdminAddr string

	// Load shapes the traffic (Load.Addr is overridden with Addr).
	Load daemon.LoadConfig
}

// DaemonChaosResult is one audited live-daemon run.
type DaemonChaosResult struct {
	Load daemon.LoadResult

	// Before and After are /status snapshots bracketing the run (zero
	// unless AdminAddr was given). Deltas, not absolutes, are audited,
	// so a daemon that has already served traffic still gates cleanly.
	Before, After daemon.StatusReport

	// Violations lists every invariant breach (empty on a passing run).
	Violations []validate.Violation
}

// Passed reports whether every invariant held.
func (r DaemonChaosResult) Passed() bool { return len(r.Violations) == 0 }

// RunDaemonChaos executes one seeded load run against a live daemon and
// audits it:
//
//   - transport-clean: every connection completed its stream without a
//     transport error;
//   - exactly-once: every pair matched, none twice (unique tags make
//     the expected pairing exact regardless of interleaving);
//   - pairing: each arrive matched its own post and vice versa;
//   - queue-drain: PRQ and UMQ are empty once the load drains;
//   - counter-conservation (with AdminAddr): the daemon's engine
//     counter deltas equal the client-side tallies — nothing was
//     served that the clients did not send, and nothing they sent was
//     double-counted.
func RunDaemonChaos(cfg DaemonChaosConfig) (DaemonChaosResult, error) {
	var res DaemonChaosResult
	cfg.Load.Addr = cfg.Addr

	if cfg.AdminAddr != "" {
		st, err := fetchStatus(cfg.AdminAddr)
		if err != nil {
			return res, fmt.Errorf("daemon chaos: before-status: %w", err)
		}
		res.Before = st
	}

	load, err := daemon.RunLoad(cfg.Load)
	res.Load = load
	if err != nil {
		res.Violations = append(res.Violations, validate.Violation{
			Invariant: "transport-clean", Detail: err.Error()})
	}
	for _, e := range load.Errors {
		res.Violations = append(res.Violations, validate.Violation{
			Invariant: "transport-clean", Detail: e})
	}

	// Exactly-once and pairing, from the client-side audit.
	if load.Unmatched != 0 {
		res.Violations = append(res.Violations, validate.Violation{
			Invariant: "exactly-once",
			Detail:    fmt.Sprintf("%d pairs never matched", load.Unmatched)})
	}
	if load.Mismatches != 0 {
		res.Violations = append(res.Violations, validate.Violation{
			Invariant: "pairing",
			Detail:    fmt.Sprintf("%d pairs matched the wrong counterpart", load.Mismatches)})
	}
	messages := cfg.Load.Messages
	if messages == 0 {
		messages = 1000 // daemon.LoadConfig default
	}
	if got := load.Matched(); int(got) != messages && len(load.Errors) == 0 {
		res.Violations = append(res.Violations, validate.Violation{
			Invariant: "exactly-once",
			Detail:    fmt.Sprintf("matched %d pairs, expected %d", got, messages)})
	}

	// Queue drain, observed over the wire.
	cl, err := daemon.Dial(cfg.Addr)
	if err != nil {
		res.Violations = append(res.Violations, validate.Violation{
			Invariant: "queue-drain", Detail: "post-run dial: " + err.Error()})
	} else {
		prq, umq, err := cl.QueueLens()
		cl.Close()
		switch {
		case err != nil:
			res.Violations = append(res.Violations, validate.Violation{
				Invariant: "queue-drain", Detail: "stat: " + err.Error()})
		case prq != 0:
			res.Violations = append(res.Violations, validate.Violation{
				Invariant: "queue-drain", Detail: fmt.Sprintf("%d receives left in the PRQ", prq)})
		case umq != 0:
			res.Violations = append(res.Violations, validate.Violation{
				Invariant: "queue-drain", Detail: fmt.Sprintf("%d messages left in the UMQ", umq)})
		}
	}

	if cfg.AdminAddr != "" {
		st, err := fetchStatus(cfg.AdminAddr)
		if err != nil {
			return res, fmt.Errorf("daemon chaos: after-status: %w", err)
		}
		res.After = st
		res.Violations = append(res.Violations, auditCounters(res.Before, res.After, load)...)
	}
	return res, nil
}

// auditCounters checks the daemon's engine counter deltas against the
// client tallies.
func auditCounters(before, after daemon.StatusReport, load daemon.LoadResult) []validate.Violation {
	var out []validate.Violation
	check := func(name string, delta, want uint64) {
		if delta != want {
			out = append(out, validate.Violation{
				Invariant: "counter-conservation",
				Detail:    fmt.Sprintf("%s advanced by %d, clients account for %d", name, delta, want)})
		}
	}
	// Every arrive frame that reached the engine is one arrival — the
	// accepted ones plus the Busy attempts that paid a PRQ search before
	// the bounded UMQ refused them (ingress NACKs never got this far).
	check("engine.arrivals", after.Engine.Arrivals-before.Engine.Arrivals, load.Arrives+load.Busy)
	check("engine.refused", after.Engine.Refused-before.Engine.Refused, load.Busy)
	check("engine.prq_matches", after.Engine.PRQMatches-before.Engine.PRQMatches, load.ArriveMatched)
	check("engine.umq_matches", after.Engine.UMQMatches-before.Engine.UMQMatches, load.PostMatched)
	check("engine.rendezvous", after.Engine.Rendezvous-before.Engine.Rendezvous, load.Rendezvous)
	check("daemon.nacks", after.Nacks-before.Nacks, load.Nacks)
	return out
}

// fetchStatus GETs and decodes /status.
func fetchStatus(adminAddr string) (daemon.StatusReport, error) {
	var st daemon.StatusReport
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get("http://" + adminAddr + "/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/status: HTTP %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
