package workload

import (
	"sync"
	"time"

	"spco/internal/match"
	"spco/internal/matchlist"
	"spco/internal/simmem"
)

// MTRateConfig parameterises the multithreaded message-rate benchmark:
// real goroutines hammering one shared match engine under a lock, the
// MPI_THREAD_MULTIPLE regime Section 2.3 argues will dominate at
// exascale ("the load on a single match engine is expected to increase
// significantly"). Unlike the simulator-driven experiments this one
// measures native wall time: it quantifies match-engine serialisation,
// not memory locality.
type MTRateConfig struct {
	// Threads is the number of concurrently posting/matching goroutines.
	Threads int

	// OpsPerThread is the number of post+match pairs each performs.
	OpsPerThread int

	// Kind and EntriesPerNode select the shared structure.
	Kind           matchlist.Kind
	EntriesPerNode int

	// Preload pads the list with unmatched entries first.
	Preload int
}

func (c *MTRateConfig) defaults() {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 1000
	}
}

// MTRateResult reports the native throughput.
type MTRateResult struct {
	Threads       int
	Ops           int
	Elapsed       time.Duration
	MatchesPerSec float64
}

// RunMTRate executes the benchmark. Each thread alternates posting a
// uniquely-tagged receive and delivering its matching message; the
// shared lock serialises the engine exactly as an MPI implementation's
// matching lock would.
func RunMTRate(cfg MTRateConfig) MTRateResult {
	cfg.defaults()
	list := matchlist.NewPosted(cfg.Kind, matchlist.Config{
		Space:          simmem.NewSpace(),
		Acc:            matchlist.FreeAccessor{},
		EntriesPerNode: cfg.EntriesPerNode,
		Bins:           256,
		CommSize:       64,
	})
	var mu sync.Mutex
	for i := 0; i < cfg.Preload; i++ {
		list.Post(match.NewPosted(0, 1<<20+i, 1, uint64(1e9)+uint64(i)))
	}

	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerThread; i++ {
				tag := t*cfg.OpsPerThread + i
				mu.Lock()
				list.Post(match.NewPosted(1, tag, 1, uint64(tag)))
				mu.Unlock()
				mu.Lock()
				_, _, ok := list.Search(match.Envelope{Rank: 1, Tag: int32(tag), Ctx: 1})
				mu.Unlock()
				if !ok {
					panic("workload: own posted receive vanished")
				}
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)

	ops := cfg.Threads * cfg.OpsPerThread
	return MTRateResult{
		Threads:       cfg.Threads,
		Ops:           ops,
		Elapsed:       elapsed,
		MatchesPerSec: float64(ops) / elapsed.Seconds(),
	}
}
