// Package workload implements the paper's benchmarks: the modified
// OSU bandwidth microbenchmark driving the matching engine + cache
// simulator (Figures 4-7), the multithreaded posting benchmark behind
// Table 1, and the cache-heater random-access microbenchmark of
// Section 4.3.
package workload

import (
	"spco/internal/engine"
	"spco/internal/match"
	"spco/internal/netmodel"
)

// BWConfig parameterises one modified-osu_bw measurement point.
//
// The four modifications of Section 4.1 map as follows: receives are
// pre-posted before arrivals (modification 1); the cache is cleared
// between iterations, modeling the bulk-synchronous compute phase
// (modification 2); the engine runs on a fixed core (modification 3);
// QueueDepth unmatched entries pad the posted receive queue
// (modification 4).
type BWConfig struct {
	Engine engine.Config
	Fabric netmodel.Fabric

	// QueueDepth is the number of permanently unmatched receives ahead
	// of every real match (the x-axis of Figures 4b/4c etc.).
	QueueDepth int

	// MsgBytes is the message payload size.
	MsgBytes uint64

	// Window is the number of in-flight messages per iteration
	// (osu_bw's default window of 64).
	Window int

	// Iters is the number of timed iterations.
	Iters int

	// FlushEvery controls how many messages elapse between cache
	// clears: 1 (default) clears before every message, the tightest
	// emulation of a compute phase separating communications.
	FlushEvery int

	// ComputePhaseNS is the modeled compute-phase duration handed to
	// the heater on each clear.
	ComputePhaseNS float64

	// Observer, when set, is attached to the benchmark's engine (the
	// mtrace recorder captures replayable traces this way).
	Observer engine.Observer

	// Fault routes the benchmark through the fault-injection transport
	// (see FaultOpts). Nil keeps the legacy perfect-wire path, cycle
	// totals bit-identical.
	Fault *FaultOpts
}

func (c *BWConfig) defaults() {
	if c.Window == 0 {
		c.Window = 64
	}
	if c.Iters == 0 {
		c.Iters = 10
	}
	if c.FlushEvery == 0 {
		c.FlushEvery = 1
	}
	if c.ComputePhaseNS == 0 {
		c.ComputePhaseNS = 1e6
	}
}

// BWResult is one measurement point.
type BWResult struct {
	BandwidthMiBps  float64 // the figures' y axis
	MsgRate         float64 // messages per second
	NSPerMsg        float64
	CPUCyclesPerMsg float64
	MeanDepth       float64
}

// unmatchedTag spaces filler tags away from real message tags.
const unmatchedTag = 1 << 20

// RunBW runs the modified osu_bw pattern against a fresh engine and
// returns the measured bandwidth. Deterministic: same config, same
// result.
func RunBW(cfg BWConfig) BWResult {
	cfg.defaults()
	if cfg.Fault != nil {
		return runBWFault(cfg)
	}
	en := engine.MustNew(cfg.Engine)
	if cfg.Observer != nil {
		en.SetObserver(cfg.Observer)
	}

	// Modification 4: pad the PRQ with unmatched receives. They use a
	// source rank no sender uses, so every real match walks past them.
	for i := 0; i < cfg.QueueDepth; i++ {
		en.PostRecv(0, unmatchedTag+i, 1, uint64(1e9)+uint64(i))
	}

	gapNS := cfg.Fabric.MessageGapNS(cfg.MsgBytes)
	var totalNS float64
	var totalCycles uint64
	msgs := 0

	req := uint64(1)
	for it := 0; it < cfg.Iters; it++ {
		// Modification 1: pre-post the window's receives (the barrier
		// guarantees they beat the data).
		var postCy uint64
		for w := 0; w < cfg.Window; w++ {
			_, _, cy := en.PostRecv(1, w, 1, req)
			req++
			postCy += cy
		}
		iterNS := cfg.Fabric.LatencyNS // pipeline fill
		for w := 0; w < cfg.Window; w++ {
			if w%cfg.FlushEvery == 0 {
				// Modification 2: the compute phase destroys cache
				// state (and the heater re-warms its registry).
				en.BeginComputePhase(cfg.ComputePhaseNS)
			}
			_, matched, cy := en.Arrive(match.Envelope{Rank: 1, Tag: int32(w), Ctx: 1}, uint64(w))
			if !matched {
				panic("workload: pre-posted receive did not match")
			}
			cy += postCy / uint64(cfg.Window) // amortise posting
			totalCycles += cy
			cpuNS := cfg.Engine.Profile.CyclesToNanos(cy) + cfg.Fabric.OverheadNS
			if cpuNS > gapNS {
				iterNS += cpuNS
			} else {
				iterNS += gapNS
			}
			msgs++
		}
		totalNS += iterNS
	}

	en.PublishTelemetry()
	res := BWResult{
		NSPerMsg:        totalNS / float64(msgs),
		CPUCyclesPerMsg: float64(totalCycles) / float64(msgs),
		MeanDepth:       en.Stats().MeanPRQDepth(),
	}
	res.MsgRate = 1e9 / res.NSPerMsg
	res.BandwidthMiBps = res.MsgRate * float64(cfg.MsgBytes) / (1 << 20)
	return res
}

// MsgSizeSweep returns the paper's message-size x axis: 1 B to 1 MiB in
// powers of two (Figures 4a/5a/6a/7a).
func MsgSizeSweep() []uint64 {
	var out []uint64
	for b := uint64(1); b <= 1<<20; b <<= 1 {
		out = append(out, b)
	}
	return out
}

// DepthSweep returns the paper's queue-depth x axis: 1 to 8192 in
// powers of two (Figures 4b/4c etc.).
func DepthSweep() []int {
	var out []int
	for d := 1; d <= 8192; d <<= 1 {
		out = append(out, d)
	}
	return out
}
