package workload

import (
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/perf"
)

// FaultOpts routes a benchmark through the fault-injection transport
// (internal/fault) instead of the perfect in-order wire the legacy
// paths assume: sends cross the unreliable wire, losses are recovered
// by retransmission, and every redelivery is extra Arrive traffic
// through the real PRQ/UMQ. Attached via BWConfig.Fault or
// LatConfig.Fault; nil keeps the legacy path (and its cycle totals)
// bit-identical.
type FaultOpts struct {
	Wire       fault.WireConfig
	Seed       uint64
	RTONS      float64
	MaxRetries int
	PMU        *perf.PMU
}

func (o *FaultOpts) transportConfig(en *engine.Engine) fault.Config {
	cfg := fault.Config{
		Wire:       o.Wire,
		Seed:       o.Seed,
		Engine:     en,
		PMU:        o.PMU,
		RTONS:      o.RTONS,
		MaxRetries: o.MaxRetries,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if en.Config().Overflow == engine.OverflowCredit {
		cfg.Credits = -1
	}
	return cfg
}

// runBWFault is the fault-injected osu_bw: the same offered load
// (Window sends per iteration, pre-posted receives, compute phases
// every FlushEvery messages) pushed through the retransmission
// transport. The figure of merit becomes goodput: delivered messages
// over the simulated time the run actually took, retransmission tail
// included.
func runBWFault(cfg BWConfig) BWResult {
	en := engine.MustNew(cfg.Engine)
	if cfg.Observer != nil {
		en.SetObserver(cfg.Observer)
	}
	for i := 0; i < cfg.QueueDepth; i++ {
		en.PostRecv(0, unmatchedTag+i, 1, uint64(1e9)+uint64(i))
	}

	tcfg := cfg.Fault.transportConfig(en)
	tcfg.Fabric = cfg.Fabric
	tcfg.EagerBytes = cfg.MsgBytes
	tr := fault.MustNewTransport(tcfg)

	gapNS := cfg.Fabric.MessageGapNS(cfg.MsgBytes)
	msgs := cfg.Iters * cfg.Window
	req := uint64(1)
	tag := 0
	for i := 0; i < msgs; i++ {
		at := float64(i) * gapNS
		if i%cfg.FlushEvery == 0 {
			tr.ComputePhase(at, cfg.ComputePhaseNS)
		}
		// Pre-posted receive (modification 1): the post is scheduled at
		// the send time, and the earliest arrival is a full end-to-end
		// later, so on a clean wire every match is a PRQ hit.
		tr.PostRecv(at, 1, tag, 1, req)
		tr.Send(at, 1, int32(tag), 1, uint64(tag))
		req++
		tag++
	}
	ts := tr.Run()

	en.PublishTelemetry()
	if tel := cfg.Engine.Telemetry; tel != nil {
		tr.Publish(tel.Registry, tel.Base)
	}
	delivered := float64(ts.Delivered)
	if delivered == 0 {
		delivered = 1
	}
	res := BWResult{
		NSPerMsg:        (ts.LastEventNS + cfg.Fabric.LatencyNS) / delivered,
		CPUCyclesPerMsg: float64(ts.EngineOpCycles) / delivered,
		MeanDepth:       en.Stats().MeanPRQDepth(),
	}
	res.MsgRate = 1e9 / res.NSPerMsg
	res.BandwidthMiBps = res.MsgRate * float64(cfg.MsgBytes) / (1 << 20)
	return res
}

// runLatFault is the fault-injected osu_latency: pings are spaced far
// enough apart that most retransmission storms settle between them, and
// the per-message one-way latency is measured from send to engine
// delivery — so a dropped ping's latency includes its RTO waits.
func runLatFault(cfg LatConfig) LatResult {
	en := engine.MustNew(cfg.Engine)
	for i := 0; i < cfg.QueueDepth; i++ {
		en.PostRecv(0, unmatchedTag+i, 1, uint64(1e9)+uint64(i))
	}

	tcfg := cfg.Fault.transportConfig(en)
	tcfg.Fabric = cfg.Fabric
	if cfg.MsgBytes > 0 {
		tcfg.EagerBytes = cfg.MsgBytes
	}
	tr := fault.MustNewTransport(tcfg)

	rto := tcfg.RTONS
	if rto == 0 {
		rto = cfg.Fabric.SuggestedRTONS(tcfg.EagerBytes)
	}
	spacing := 8 * rto
	sendAt := make(map[uint64]float64, cfg.Iters)
	for it := 0; it < cfg.Iters; it++ {
		at := float64(it) * spacing
		tr.ComputePhase(at, cfg.ComputePhaseNS)
		tr.PostRecv(at, 1, it, 1, uint64(it))
		tr.Send(at, 1, int32(it), 1, uint64(it))
		sendAt[uint64(it)] = at
	}
	ts := tr.Run()

	en.PublishTelemetry()
	if tel := cfg.Engine.Telemetry; tel != nil {
		tr.Publish(tel.Registry, tel.Base)
	}
	var totalNS float64
	n := 0
	for _, d := range tr.Deliveries() {
		totalNS += d.AtNS - sendAt[d.Msg]
		n++
	}
	if n == 0 {
		n = 1
	}
	matchNS := cfg.Engine.Profile.CyclesToNanos(ts.EngineOpCycles) / float64(n)
	return LatResult{
		OneWayUS:        (totalNS/float64(n) + matchNS) / 1e3,
		CPUCyclesPerMsg: float64(ts.EngineOpCycles) / float64(n),
		MeanDepth:       en.Stats().MeanPRQDepth(),
	}
}
