package workload

import (
	"testing"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/netmodel"
	"spco/internal/stencil"
)

func bwPoint(prof cache.Profile, fab netmodel.Fabric, kind matchlist.Kind, k, depth int,
	bytes uint64, hot, pool bool) BWResult {
	return RunBW(BWConfig{
		Engine: engine.Config{
			Profile:        prof,
			Kind:           kind,
			EntriesPerNode: k,
			Pool:           pool,
			HotCache:       hot,
		},
		Fabric:     fab,
		QueueDepth: depth,
		MsgBytes:   bytes,
		Window:     64,
		Iters:      3,
	})
}

func TestBWDeterministic(t *testing.T) {
	a := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindLLA, 8, 128, 1, false, false)
	b := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindLLA, 8, 128, 1, false, false)
	if a != b {
		t.Errorf("RunBW not deterministic: %+v vs %+v", a, b)
	}
}

func TestBWDepthAccounting(t *testing.T) {
	r := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindBaseline, 0, 100, 1, false, false)
	if r.MeanDepth < 100 || r.MeanDepth > 102 {
		t.Errorf("MeanDepth = %v, want ~101 (100 fillers + the match)", r.MeanDepth)
	}
}

// Figure 4b's headline: at a deep queue, LLA beats baseline by a large
// factor, the gain grows from K=2 to K=8, and plateaus beyond 8.
func TestSpatialLocalityShape(t *testing.T) {
	depth := 1024
	base := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindBaseline, 0, depth, 1, false, false)
	var lla [6]BWResult
	for i, k := range []int{2, 4, 8, 16, 32} {
		lla[i] = bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindLLA, k, depth, 1, false, false)
	}
	if lla[0].BandwidthMiBps < base.BandwidthMiBps*1.5 {
		t.Errorf("LLA-2 (%.4f) should be >= 1.5x baseline (%.4f)",
			lla[0].BandwidthMiBps, base.BandwidthMiBps)
	}
	if lla[2].BandwidthMiBps <= lla[0].BandwidthMiBps {
		t.Errorf("LLA-8 (%.4f) should beat LLA-2 (%.4f)",
			lla[2].BandwidthMiBps, lla[0].BandwidthMiBps)
	}
	// Plateau: 16 and 32 within 10% of 8.
	for i, k := range []int{16, 32} {
		ratio := lla[3+i].BandwidthMiBps / lla[2].BandwidthMiBps
		if ratio < 0.90 || ratio > 1.15 {
			t.Errorf("LLA-%d/LLA-8 = %.3f, want plateau (0.90..1.15)", k, ratio)
		}
	}
}

// Figures 4a/5a: at 1 MiB messages the wire dominates and all variants
// converge.
func TestLargeMessageConvergence(t *testing.T) {
	const depth = 1024
	base := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindBaseline, 0, depth, 1<<20, false, false)
	lla := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindLLA, 8, depth, 1<<20, false, false)
	ratio := lla.BandwidthMiBps / base.BandwidthMiBps
	if ratio > 1.25 {
		t.Errorf("at 1 MiB LLA/baseline = %.3f, want near 1 (wire-bound)", ratio)
	}
	// And the absolute value should approach the fabric limit.
	wire := netmodel.IBQDR.BandwidthBps / (1 << 20) // MiB/s
	if lla.BandwidthMiBps < 0.5*wire {
		t.Errorf("1 MiB bandwidth %.1f MiB/s too far below wire %.1f", lla.BandwidthMiBps, wire)
	}
}

// Figure 6 vs Figure 7: hot caching helps on Sandy Bridge and does not
// on Broadwell (the paper's sign flip).
func TestHotCacheSignFlip(t *testing.T) {
	const depth = 1024
	sbBase := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindBaseline, 0, depth, 1, false, false)
	sbHot := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindBaseline, 0, depth, 1, true, false)
	if sbHot.BandwidthMiBps < sbBase.BandwidthMiBps*1.3 {
		t.Errorf("Sandy Bridge HC (%.4f) should clearly beat baseline (%.4f)",
			sbHot.BandwidthMiBps, sbBase.BandwidthMiBps)
	}

	bwBase := bwPoint(cache.Broadwell, netmodel.OmniPath, matchlist.KindBaseline, 0, depth, 1, false, false)
	bwHot := bwPoint(cache.Broadwell, netmodel.OmniPath, matchlist.KindBaseline, 0, depth, 1, true, false)
	if bwHot.BandwidthMiBps > bwBase.BandwidthMiBps*1.02 {
		t.Errorf("Broadwell HC (%.4f) should not beat baseline (%.4f)",
			bwHot.BandwidthMiBps, bwBase.BandwidthMiBps)
	}
}

// HC+LLA with the element pool avoids the synchronisation overhead and
// is the best Sandy Bridge configuration (Figure 6).
func TestHCLLABestOnSandyBridge(t *testing.T) {
	const depth = 1024
	lla := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindLLA, 2, depth, 1, false, false)
	hclla := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindLLA, 2, depth, 1, true, true)
	if hclla.BandwidthMiBps <= lla.BandwidthMiBps {
		t.Errorf("HC+LLA (%.4f) should beat LLA alone (%.4f) on Sandy Bridge",
			hclla.BandwidthMiBps, lla.BandwidthMiBps)
	}
}

func TestBandwidthDropsWithDepth(t *testing.T) {
	shallow := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindBaseline, 0, 1, 1, false, false)
	deep := bwPoint(cache.SandyBridge, netmodel.IBQDR, matchlist.KindBaseline, 0, 4096, 1, false, false)
	if deep.BandwidthMiBps >= shallow.BandwidthMiBps {
		t.Error("deeper queues must reduce small-message bandwidth")
	}
}

func TestSweepHelpers(t *testing.T) {
	sizes := MsgSizeSweep()
	if sizes[0] != 1 || sizes[len(sizes)-1] != 1<<20 || len(sizes) != 21 {
		t.Errorf("MsgSizeSweep: %v", sizes)
	}
	depths := DepthSweep()
	if depths[0] != 1 || depths[len(depths)-1] != 8192 || len(depths) != 14 {
		t.Errorf("DepthSweep: %v", depths)
	}
}

// Table 1: the multithreaded benchmark reproduces tr/ts/length exactly
// and mean search depth near length/4 (random posting against random
// sending, shrinking list).
func TestRunMTTable1Row(t *testing.T) {
	r := RunMT(MTConfig{
		Decomp:  stencil.Decomp{X: 32, Y: 32},
		Stencil: stencil.Star2D5,
		Trials:  3,
	})
	if r.TR != 124 || r.TS != 128 || r.Length != 128 {
		t.Fatalf("tr/ts/len = %d/%d/%d, want 124/128/128", r.TR, r.TS, r.Length)
	}
	mean := r.Depth.Mean()
	// Paper reports 32.51; randomised interleavings land near N/4.
	if mean < 20 || mean > 46 {
		t.Errorf("mean depth = %.2f, want ~32 (N/4)", mean)
	}
	if r.Depth.N() != uint64(3*128) {
		t.Errorf("depth samples = %d, want 384", r.Depth.N())
	}
}

func TestRunMT3D(t *testing.T) {
	r := RunMT(MTConfig{
		Decomp:  stencil.Decomp{X: 8, Y: 8, Z: 4},
		Stencil: stencil.Star3D7,
		Trials:  2,
	})
	if r.Length != 256 || r.TS != 256 || r.TR != 184 {
		t.Fatalf("3D row mismatch: %+v", r)
	}
	if r.Depth.Mean() < 40 || r.Depth.Mean() > 90 {
		t.Errorf("3D mean depth = %.2f, want ~64", r.Depth.Mean())
	}
}

func TestTable1DecompsComplete(t *testing.T) {
	rows := Table1Decomps()
	if len(rows) != 10 {
		t.Fatalf("Table1Decomps = %d rows, want 10", len(rows))
	}
	// Spot-check the largest row's derived length.
	last := rows[9]
	if got := stencil.TotalMessages(last.Decomp, last.Stencil); got != 6146 {
		t.Errorf("row 10 length = %d, want 6146", got)
	}
}

// The paper's Section 4.3 microbenchmark numbers, within 20%.
func TestHCMicroCalibration(t *testing.T) {
	cases := []struct {
		prof         cache.Profile
		cold, heated float64
	}{
		{cache.SandyBridge, 47.5, 22.9},
		{cache.Broadwell, 38.5, 22.8},
	}
	for _, c := range cases {
		r := RunHCMicro(HCMicroConfig{Profile: c.prof})
		if ratio := r.ColdNS / c.cold; ratio < 0.8 || ratio > 1.2 {
			t.Errorf("%s cold = %.1f ns, want ~%.1f", c.prof.Name, r.ColdNS, c.cold)
		}
		if ratio := r.HeatedNS / c.heated; ratio < 0.8 || ratio > 1.2 {
			t.Errorf("%s heated = %.1f ns, want ~%.1f", c.prof.Name, r.HeatedNS, c.heated)
		}
		if r.Speedup < 1.5 {
			t.Errorf("%s speedup = %.2f, want ~2x", c.prof.Name, r.Speedup)
		}
	}
}

func TestHCMicroDeterministic(t *testing.T) {
	a := RunHCMicro(HCMicroConfig{Profile: cache.Nehalem, Lines: 512, Seed: 9})
	b := RunHCMicro(HCMicroConfig{Profile: cache.Nehalem, Lines: 512, Seed: 9})
	if a != b {
		t.Error("RunHCMicro not deterministic")
	}
}

func TestMTRateBasic(t *testing.T) {
	r := RunMTRate(MTRateConfig{Threads: 2, OpsPerThread: 200, Kind: matchlist.KindLLA, EntriesPerNode: 8})
	if r.Ops != 400 || r.MatchesPerSec <= 0 {
		t.Errorf("MTRate result: %+v", r)
	}
}

func TestMTRatePreloadDeepensSearch(t *testing.T) {
	// With a deep preload, every match walks the unmatched prefix:
	// throughput must drop substantially versus an empty list.
	fast := RunMTRate(MTRateConfig{Threads: 1, OpsPerThread: 300, Kind: matchlist.KindBaseline})
	slow := RunMTRate(MTRateConfig{Threads: 1, OpsPerThread: 300, Kind: matchlist.KindBaseline, Preload: 4096})
	if slow.MatchesPerSec >= fast.MatchesPerSec/2 {
		t.Errorf("preload should slash native throughput: %.0f vs %.0f matches/s",
			slow.MatchesPerSec, fast.MatchesPerSec)
	}
}

func TestUMQDepthAccounting(t *testing.T) {
	r := RunUMQ(UMQConfig{
		Engine: engine.Config{Profile: cache.SandyBridge, Kind: matchlist.KindLLA, EntriesPerNode: 2},
		Fabric: netmodel.IBQDR,
		UDepth: 100,
		Recvs:  8,
		Iters:  2,
	})
	// Each receive walks the 100-deep backlog plus this iteration's
	// earlier-arrived messages.
	if r.MeanUMQDepth < 100 {
		t.Errorf("MeanUMQDepth = %.1f, want >= 100", r.MeanUMQDepth)
	}
	if r.NSPerRecv <= 0 {
		t.Errorf("NSPerRecv = %v", r.NSPerRecv)
	}
}

// The paper's locality thesis holds on the UMQ side too: the packed
// 16-byte-entry UMQ beats the baseline's request-embedded entries.
func TestUMQLocality(t *testing.T) {
	run := func(kind matchlist.Kind) UMQResult {
		return RunUMQ(UMQConfig{
			Engine: engine.Config{Profile: cache.SandyBridge, Kind: kind, EntriesPerNode: 2},
			Fabric: netmodel.IBQDR,
			UDepth: 1024,
			Recvs:  8,
			Iters:  2,
		})
	}
	base := run(matchlist.KindBaseline)
	lla := run(matchlist.KindLLA)
	if lla.CPUCyclesPerRecv*2 > base.CPUCyclesPerRecv {
		t.Errorf("packed UMQ (%.0f cy) should be well under baseline (%.0f cy)",
			lla.CPUCyclesPerRecv, base.CPUCyclesPerRecv)
	}
}

func TestUMQDeterministic(t *testing.T) {
	cfg := UMQConfig{
		Engine: engine.Config{Profile: cache.Broadwell, Kind: matchlist.KindLLA, EntriesPerNode: 2},
		Fabric: netmodel.OmniPath,
		UDepth: 64, Recvs: 4, Iters: 2,
	}
	if RunUMQ(cfg) != RunUMQ(cfg) {
		t.Error("RunUMQ not deterministic")
	}
}

func TestLatBasics(t *testing.T) {
	run := func(kind matchlist.Kind, depth int) LatResult {
		return RunLat(LatConfig{
			Engine:     engine.Config{Profile: cache.SandyBridge, Kind: kind, EntriesPerNode: 2},
			Fabric:     netmodel.IBQDR,
			QueueDepth: depth, MsgBytes: 1, Iters: 10,
		})
	}
	shallow := run(matchlist.KindBaseline, 0)
	deep := run(matchlist.KindBaseline, 2048)
	if deep.OneWayUS <= shallow.OneWayUS {
		t.Errorf("deep queue latency (%.2f us) should exceed shallow (%.2f us)",
			deep.OneWayUS, shallow.OneWayUS)
	}
	// Locality shrinks the deep-queue penalty.
	deepLLA := run(matchlist.KindLLA, 2048)
	if deepLLA.OneWayUS >= deep.OneWayUS {
		t.Errorf("LLA deep latency (%.2f us) should beat baseline (%.2f us)",
			deepLLA.OneWayUS, deep.OneWayUS)
	}
	if shallow.OneWayUS < netmodel.IBQDR.LatencyNS/1e3 {
		t.Error("latency below the wire floor")
	}
}

func TestLatDeterministic(t *testing.T) {
	cfg := LatConfig{
		Engine:     engine.Config{Profile: cache.Broadwell, Kind: matchlist.KindLLA, EntriesPerNode: 4},
		Fabric:     netmodel.OmniPath,
		QueueDepth: 32, MsgBytes: 64, Iters: 5,
	}
	if RunLat(cfg) != RunLat(cfg) {
		t.Error("RunLat not deterministic")
	}
}
