package workload

import (
	"spco/internal/engine"
	"spco/internal/match"
	"spco/internal/netmodel"
)

// UMQConfig parameterises the unexpected-message-queue benchmark, after
// Underwood and Brightwell's microbenchmarks ("the impact of MPI queue
// usage on message latency", cited in Section 5) and Keller & Graham's
// UMQ characterisation: UDepth unexpected messages arrive before the
// receive is posted, so every receive searches a deep UMQ.
type UMQConfig struct {
	Engine engine.Config
	Fabric netmodel.Fabric

	// UDepth is the number of permanently unexpected messages preceding
	// each measured receive's match.
	UDepth int

	// Recvs is the number of measured receives per iteration.
	Recvs int

	// Iters is the number of timed iterations.
	Iters int

	// ComputePhaseNS models the compute phase before each receive burst.
	ComputePhaseNS float64
}

func (c *UMQConfig) defaults() {
	if c.Recvs == 0 {
		c.Recvs = 32
	}
	if c.Iters == 0 {
		c.Iters = 5
	}
	if c.ComputePhaseNS == 0 {
		c.ComputePhaseNS = 1e6
	}
}

// UMQResult is one measurement point.
type UMQResult struct {
	NSPerRecv        float64 // modeled latency of one late-posted receive
	CPUCyclesPerRecv float64
	MeanUMQDepth     float64
}

// RunUMQ measures the cost of posting receives against a deep
// unexpected queue. Deterministic.
func RunUMQ(cfg UMQConfig) UMQResult {
	cfg.defaults()
	en := engine.MustNew(cfg.Engine)

	// The permanent unexpected backlog: messages from a source no
	// receive ever names.
	for i := 0; i < cfg.UDepth; i++ {
		en.Arrive(match.Envelope{Rank: 63, Tag: int32(unmatchedTag + i), Ctx: 1}, uint64(1e9)+uint64(i))
	}

	var totalCycles uint64
	var totalNS float64
	recvs := 0
	tag := 0
	for it := 0; it < cfg.Iters; it++ {
		// The messages of this iteration arrive first (eagerly buffered).
		for r := 0; r < cfg.Recvs; r++ {
			en.Arrive(match.Envelope{Rank: 1, Tag: int32(tag + r), Ctx: 1}, uint64(tag+r))
		}
		en.BeginComputePhase(cfg.ComputePhaseNS)
		// The application posts its receives late: each searches past
		// the whole unexpected backlog.
		for r := 0; r < cfg.Recvs; r++ {
			msg, ok, cy := en.PostRecv(1, tag+r, 1, uint64(tag+r))
			if !ok || msg != uint64(tag+r) {
				panic("workload: unexpected message not found")
			}
			totalCycles += cy
			totalNS += cfg.Engine.Profile.CyclesToNanos(cy) + cfg.Fabric.OverheadNS/2
			recvs++
		}
		tag += cfg.Recvs
	}

	en.PublishTelemetry()
	return UMQResult{
		NSPerRecv:        totalNS / float64(recvs),
		CPUCyclesPerRecv: float64(totalCycles) / float64(recvs),
		MeanUMQDepth:     en.Stats().MeanUMQDepth(),
	}
}
