package workload

import (
	"spco/internal/engine"
	"spco/internal/match"
	"spco/internal/netmodel"
)

// LatConfig parameterises the modified osu_latency benchmark (the
// second OSU microbenchmark Section 4.1 lists). A ping-pong with
// pre-posted receives, cache-clearing compute phases, and a padded
// posted-receive queue; the figure of merit is one-way latency.
type LatConfig struct {
	Engine engine.Config
	Fabric netmodel.Fabric

	QueueDepth int
	MsgBytes   uint64
	Iters      int

	ComputePhaseNS float64

	// Fault routes the ping-pong through the fault-injection transport
	// (see FaultOpts). Nil keeps the legacy perfect-wire path.
	Fault *FaultOpts
}

func (c *LatConfig) defaults() {
	if c.Iters == 0 {
		c.Iters = 100
	}
	if c.ComputePhaseNS == 0 {
		c.ComputePhaseNS = 1e6
	}
}

// LatResult is one osu_latency measurement.
type LatResult struct {
	OneWayUS        float64
	CPUCyclesPerMsg float64
	MeanDepth       float64
}

// RunLat measures the modified ping-pong. Both directions traverse a
// matching engine; the two ranks' engines are symmetric so one modeled
// engine serves both sides alternately, as the paper's single-match-
// engine focus warrants. Deterministic.
func RunLat(cfg LatConfig) LatResult {
	cfg.defaults()
	if cfg.Fault != nil {
		return runLatFault(cfg)
	}
	en := engine.MustNew(cfg.Engine)
	for i := 0; i < cfg.QueueDepth; i++ {
		en.PostRecv(0, unmatchedTag+i, 1, uint64(1e9)+uint64(i))
	}

	var totalCycles uint64
	var totalNS float64
	for it := 0; it < cfg.Iters; it++ {
		en.BeginComputePhase(cfg.ComputePhaseNS)
		// Pre-posted receive, then the ping arrives and matches.
		_, _, postCy := en.PostRecv(1, it, 1, uint64(it))
		_, matched, cy := en.Arrive(match.Envelope{Rank: 1, Tag: int32(it), Ctx: 1}, uint64(it))
		if !matched {
			panic("workload: ping did not match")
		}
		cy += postCy
		totalCycles += cy
		totalNS += cfg.Engine.Profile.CyclesToNanos(cy) +
			cfg.Fabric.OverheadNS + cfg.Fabric.LatencyNS +
			cfg.Fabric.SerializationNS(cfg.MsgBytes)
	}

	en.PublishTelemetry()
	n := float64(cfg.Iters)
	return LatResult{
		OneWayUS:        totalNS / n / 1e3,
		CPUCyclesPerMsg: float64(totalCycles) / n,
		MeanDepth:       en.Stats().MeanPRQDepth(),
	}
}
