package workload

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

// buildDaemon compiles the real spco-daemon binary the storm runs.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "spco-daemon")
	cmd := exec.Command("go", "build", "-o", bin, "spco/cmd/spco-daemon")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spco-daemon: %v\n%s", err, out)
	}
	return bin
}

// TestCrashChaos is the end-to-end recovery gate: SIGKILL a live
// daemon three times mid-load and hold the recovered process to the
// exactly-once ledger. SPCO_TEST_SHARDS widens the lane count.
func TestCrashChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-and-restart storm is not a -short test")
	}
	shards := 2
	if v := os.Getenv("SPCO_TEST_SHARDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("SPCO_TEST_SHARDS=%q is not a positive integer", v)
		}
		shards = n
	}
	res, err := RunCrashChaos(CrashChaosConfig{
		DaemonBin: buildDaemon(t),
		Kills:     3,
		Seed:      7,
		Shards:    shards,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("RunCrashChaos: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	led := res.Ledger
	if led.Kills != 3 {
		t.Fatalf("delivered %d kills, want 3", led.Kills)
	}
	if led.Reconnects < led.Kills {
		t.Fatalf("only %d session resumes across %d kills", led.Reconnects, led.Kills)
	}
	if !res.Status.Recovery.Recovered {
		t.Fatalf("final boot reports no recovery: %+v", res.Status.Recovery)
	}
	t.Logf("storm: %d pairs, %d resumes, %d re-sent ops, final boot replayed %d journal records (%d dup replays)",
		led.Pairs, led.Reconnects, led.Resent,
		res.Status.Recovery.ReplayedOps, res.Status.Recovery.DupReplays)
}
