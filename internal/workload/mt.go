package workload

import (
	"sync"

	"spco/internal/match"
	"spco/internal/matchlist"
	"spco/internal/simmem"
	"spco/internal/stencil"
	"spco/internal/trace"
)

// MTConfig parameterises the Section 2.3 multithreaded matching
// benchmark: a receiving MPI process decomposed into threads posting
// stencil receives during a BSP communication phase, and a sending
// proxy process whose threads issue the matching sends. Entries land in
// the shared match list in whatever order goroutine scheduling and lock
// contention produce — exactly the nondeterminacy the paper measures.
type MTConfig struct {
	Decomp  stencil.Decomp
	Stencil stencil.Stencil
	Trials  int
}

// MTResult is one Table 1 row.
type MTResult struct {
	Decomp  stencil.Decomp
	Stencil stencil.Stencil
	TR      int         // threads posting receives
	TS      int         // sending threads
	Length  int         // match-list length after the posting phase
	Depth   trace.Stats // search depths across all messages and trials
}

// msgKey identifies one message: the receiving thread and the stencil
// direction it came from.
type msgKey struct {
	thread int
	dir    int
}

// RunMT executes the benchmark. Each trial posts all receives from tr
// concurrent goroutines, verifies the list length, then delivers all
// messages from ts concurrent sender goroutines, recording the search
// depth of every match.
func RunMT(cfg MTConfig) MTResult {
	if cfg.Trials == 0 {
		cfg.Trials = 10
	}
	res := MTResult{
		Decomp:  cfg.Decomp,
		Stencil: cfg.Stencil,
		TR:      stencil.ReceivingThreads(cfg.Decomp, cfg.Stencil),
		TS:      stencil.SendingThreads(cfg.Decomp, cfg.Stencil),
		Length:  stencil.TotalMessages(cfg.Decomp, cfg.Stencil),
	}

	offsets := cfg.Stencil.Offsets()
	// Tag encodes (thread, direction): each message matches exactly one
	// receive, as the benchmark's similarly-decomposed neighbours imply.
	tagOf := func(k msgKey) int { return k.thread*32 + k.dir }

	// Per receiving thread, the directions it receives from.
	perThread := make(map[int][]int)
	for t, n := range stencil.Messages(cfg.Decomp, cfg.Stencil) {
		_ = n
		for d := range offsets {
			if remote(cfg.Decomp, cfg.Stencil, t, d) {
				perThread[t] = append(perThread[t], d)
			}
		}
	}

	// Sender side: group messages by sending thread. The thread in the
	// neighbouring process that owns the facing cell sends the message;
	// we identify it by (direction, receiving thread), which partitions
	// messages into exactly ts groups.
	senderGroups := make(map[msgKey][]msgKey) // sender id -> messages
	for t, dirs := range perThread {
		for _, d := range dirs {
			sender := msgKey{thread: t, dir: d} // 1:1 here: ts senders
			senderGroups[sender] = append(senderGroups[sender], msgKey{thread: t, dir: d})
		}
	}

	for trial := 0; trial < cfg.Trials; trial++ {
		list := matchlist.NewPosted(matchlist.KindBaseline, matchlist.Config{
			Space: simmem.NewSpace(),
			Acc:   matchlist.FreeAccessor{},
		})
		var mu sync.Mutex

		// Phase 1: all receiving threads post concurrently
		// (MPI_THREAD_MULTIPLE: the engine lock serialises, the
		// scheduler decides the order).
		var wg sync.WaitGroup
		for t, dirs := range perThread {
			wg.Add(1)
			go func(t int, dirs []int) {
				defer wg.Done()
				for _, d := range dirs {
					mu.Lock()
					list.Post(match.NewPosted(d, tagOf(msgKey{t, d}), 1, uint64(tagOf(msgKey{t, d}))))
					mu.Unlock()
				}
			}(t, dirs)
		}
		wg.Wait()

		if got := list.Len(); got != res.Length {
			panic("workload: posted list length mismatch")
		}

		// Phase 2: the sending proxy's threads deliver concurrently;
		// each arrival searches the shared list.
		depths := make(chan int, res.Length)
		for _, msgs := range senderGroups {
			wg.Add(1)
			go func(msgs []msgKey) {
				defer wg.Done()
				for _, m := range msgs {
					mu.Lock()
					_, depth, ok := list.Search(match.Envelope{
						Rank: int32(m.dir), Tag: int32(tagOf(m)), Ctx: 1,
					})
					mu.Unlock()
					if !ok {
						panic("workload: message found no posted receive")
					}
					depths <- depth
				}
			}(msgs)
		}
		wg.Wait()
		close(depths)
		for d := range depths {
			res.Depth.Add(float64(d))
		}
	}
	return res
}

// remote reports whether thread t's stencil direction d leaves the
// decomposition (hence is a real MPI message).
func remote(dec stencil.Decomp, s stencil.Stencil, t, d int) bool {
	for _, dd := range remoteDirs(dec, s, t) {
		if dd == d {
			return true
		}
	}
	return false
}

func remoteDirs(dec stencil.Decomp, s stencil.Stencil, t int) []int {
	offs := s.Offsets()
	var out []int
	for i := range offs {
		if stencil.IsRemote(dec, s, t, i) {
			out = append(out, i)
		}
	}
	return out
}

// Table1Decomps returns the ten configurations of Table 1.
func Table1Decomps() []MTConfig {
	return []MTConfig{
		{Decomp: stencil.Decomp{X: 32, Y: 32}, Stencil: stencil.Star2D5},
		{Decomp: stencil.Decomp{X: 64, Y: 32}, Stencil: stencil.Star2D5},
		{Decomp: stencil.Decomp{X: 32, Y: 32}, Stencil: stencil.Full2D9},
		{Decomp: stencil.Decomp{X: 64, Y: 32}, Stencil: stencil.Full2D9},
		{Decomp: stencil.Decomp{X: 8, Y: 8, Z: 4}, Stencil: stencil.Star3D7},
		{Decomp: stencil.Decomp{X: 1, Y: 1, Z: 128}, Stencil: stencil.Star3D7},
		{Decomp: stencil.Decomp{X: 1, Y: 1, Z: 256}, Stencil: stencil.Star3D7},
		{Decomp: stencil.Decomp{X: 8, Y: 8, Z: 4}, Stencil: stencil.Full3D27},
		{Decomp: stencil.Decomp{X: 1, Y: 1, Z: 128}, Stencil: stencil.Full3D27},
		{Decomp: stencil.Decomp{X: 1, Y: 1, Z: 256}, Stencil: stencil.Full3D27},
	}
}
