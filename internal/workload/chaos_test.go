package workload

import (
	"reflect"
	"testing"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/matchlist"
	"spco/internal/netmodel"
)

var chaosKinds = []matchlist.Kind{
	matchlist.KindBaseline, matchlist.KindLLA, matchlist.KindHashBins,
	matchlist.KindRankArray, matchlist.KindFourD, matchlist.KindHWOffload,
	matchlist.KindPerComm,
}

func chaosCfg(kind matchlist.Kind, wire fault.WireConfig, seed uint64, messages int) ChaosConfig {
	return ChaosConfig{
		Engine: engine.Config{
			Profile:        cache.SandyBridge,
			Kind:           kind,
			EntriesPerNode: 2,
			CommSize:       64,
			Bins:           256,
		},
		Fabric:     netmodel.IBQDR,
		Wire:       wire,
		Seed:       seed,
		Messages:   messages,
		Senders:    8,
		PhaseEvery: 512,
	}
}

// TestDupAndReorderAcrossKinds is the satellite coverage: duplicate and
// out-of-order arrivals against every matchlist kind. Dup suppression
// must absorb every duplicate before the engine, and per-(src,tag,comm)
// FIFO must survive wire reordering — both checked by the harness's
// exactly-once and flow-FIFO audits.
func TestDupAndReorderAcrossKinds(t *testing.T) {
	// Displacement must exceed the 8-sender round-robin stride or a
	// delayed packet can never overtake its flow's successor.
	wire := fault.WireConfig{DupProb: 0.05, ReorderProb: 0.1, MaxReorderDisp: 32}
	for _, kind := range chaosKinds {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := RunChaos(chaosCfg(kind, wire, 1234, 2000))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			ts := res.Transport
			if ts.DupSuppressed == 0 {
				t.Error("no duplicates suppressed at 5% dup probability")
			}
			if ts.OOOBuffered == 0 {
				t.Error("no out-of-order buffering at 10% reorder probability")
			}
			if ts.Delivered != 2000 {
				t.Errorf("delivered %d of 2000", ts.Delivered)
			}
			if res.Engine.Arrivals != ts.Delivered {
				t.Errorf("engine saw %d arrivals for %d deliveries: a duplicate leaked past suppression",
					res.Engine.Arrivals, ts.Delivered)
			}
		})
	}
}

// TestChaosDeterminism is the satellite regression: two chaos runs with
// the same seed produce byte-identical counters, cycle totals, and
// delivery logs; a different seed produces a different run.
func TestChaosDeterminism(t *testing.T) {
	wire := fault.WireConfig{DropProb: 0.01, DupProb: 0.005, ReorderProb: 0.02}
	run := func(seed uint64) (ChaosResult, fault.Stats) {
		res, err := RunChaos(chaosCfg(matchlist.KindLLA, wire, seed, 3000))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed() {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res, res.Transport
	}
	r1, s1 := run(42)
	r2, s2 := run(42)
	if s1 != s2 {
		t.Errorf("same seed, different transport stats:\n%+v\n%+v", s1, s2)
	}
	if r1.Engine != r2.Engine {
		t.Errorf("same seed, different engine stats (cycle totals not bit-identical):\n%+v\n%+v",
			r1.Engine, r2.Engine)
	}
	if r1.SimulatedNS != r2.SimulatedNS {
		t.Errorf("same seed, different simulated time: %g vs %g", r1.SimulatedNS, r2.SimulatedNS)
	}
	r3, s3 := run(43)
	if s1 == s3 && r1.Engine == r3.Engine {
		t.Error("different seeds reproduced the identical run")
	}
	if !reflect.DeepEqual(r1.Violations, r3.Violations) {
		t.Errorf("both runs should be violation-free: %v vs %v", r1.Violations, r3.Violations)
	}
}

// TestChaosZeroFaultMatchesLegacyCycleContract: with every probability
// zero and no flow control, the chaos harness is pure clean traffic —
// no retransmits, no aux cycles, and the cycle-conservation audit holds
// exactly.
func TestChaosZeroFaultIsClean(t *testing.T) {
	res, err := RunChaos(chaosCfg(matchlist.KindLLA, fault.WireConfig{}, 1, 2000))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Error(v)
	}
	ts := res.Transport
	if ts.Retransmits != 0 || ts.RTOExpired != 0 || ts.DupSuppressed != 0 || ts.AuxCycles != 0 {
		t.Errorf("zero-fault run produced fault activity: %+v", ts)
	}
	if ts.Transmits != ts.Sends || ts.Delivered != ts.Sends {
		t.Errorf("clean wire: sends %d, transmits %d, delivered %d — all must agree",
			ts.Sends, ts.Transmits, ts.Delivered)
	}
}

// TestChaosSoakAllKinds is the acceptance-criterion soak: drop 1%, dup
// 0.5%, reorder 2% over 100k messages for every matchlist kind. Runs
// the full volume only without -short.
func TestChaosSoakAllKinds(t *testing.T) {
	messages := 100000
	if testing.Short() {
		messages = 5000
	}
	wire := fault.WireConfig{DropProb: 0.01, DupProb: 0.005, ReorderProb: 0.02}
	for _, kind := range chaosKinds {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := RunChaos(chaosCfg(kind, wire, 1, messages))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			if res.Transport.Delivered != uint64(messages) {
				t.Errorf("delivered %d of %d", res.Transport.Delivered, messages)
			}
		})
	}
}

// TestChaosOverflowPolicies drives each bounded-UMQ policy to its
// pressure point (tiny capacity, every receive late) and checks the
// harness still converges with all invariants intact.
func TestChaosOverflowPolicies(t *testing.T) {
	for _, tc := range []struct {
		pol  engine.OverflowPolicy
		caps int
	}{
		{engine.OverflowDrop, 4},
		{engine.OverflowCredit, 4},
		{engine.OverflowRendezvous, 4},
	} {
		t.Run(tc.pol.String(), func(t *testing.T) {
			cfg := chaosCfg(matchlist.KindLLA, fault.WireConfig{DropProb: 0.01}, 9, 2000)
			cfg.Engine.UMQCapacity = tc.caps
			cfg.Engine.Overflow = tc.pol
			cfg.PrePostFrac = 0.01
			res, err := RunChaos(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Error(v)
			}
			ts := res.Transport
			switch tc.pol {
			case engine.OverflowDrop:
				if ts.BusyNacks == 0 {
					t.Error("drop policy never NACKed at capacity 4")
				}
			case engine.OverflowCredit:
				if ts.CreditStalls == 0 || ts.CreditsGrants == 0 {
					t.Errorf("credit machinery unexercised: %+v", ts)
				}
			case engine.OverflowRendezvous:
				if ts.RendezvousTrips == 0 {
					t.Error("rendezvous policy never demoted at capacity 4")
				}
			}
		})
	}
}
