package workload

import (
	"bytes"
	"strings"
	"testing"

	"spco/internal/ctrace"
	"spco/internal/fault"
	"spco/internal/matchlist"
)

// TestChaosTraceZeroCost extends the zero-cost-when-off contract to the
// causal tracer: the same seeded chaos run with and without a recorder
// attached produces bit-identical transport stats, engine cycle totals,
// and simulated time. Tracing is host-side bookkeeping only.
func TestChaosTraceZeroCost(t *testing.T) {
	wire := fault.WireConfig{DropProb: 0.05, DupProb: 0.01, ReorderProb: 0.02}
	run := func(tr *ctrace.Recorder) ChaosResult {
		cfg := chaosCfg(matchlist.KindLLA, wire, 42, 3000)
		cfg.Trace = tr
		res, err := RunChaos(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed() {
			t.Fatalf("violations: %v", res.Violations)
		}
		return res
	}
	plain := run(nil)
	traced := run(ctrace.New(ctrace.Options{KeepAll: true}))
	if plain.Transport != traced.Transport {
		t.Errorf("recorder changed transport stats:\n%+v\n%+v", plain.Transport, traced.Transport)
	}
	if plain.Engine != traced.Engine {
		t.Errorf("recorder changed engine cycle totals:\n%+v\n%+v", plain.Engine, traced.Engine)
	}
	if plain.SimulatedNS != traced.SimulatedNS {
		t.Errorf("recorder changed simulated time: %g vs %g", plain.SimulatedNS, traced.SimulatedNS)
	}
}

// TestChaosTraceCausalChain is the acceptance criterion for the spine:
// a chaos run with wire drops exports a Chrome trace in which at least
// one message shows the full causal chain — client send, two or more
// wire attempts (one dropped, one delivered), an engine span, and a
// matched outcome — verified by the automated span-tree checker.
func TestChaosTraceCausalChain(t *testing.T) {
	rec := ctrace.New(ctrace.Options{KeepAll: true})
	cfg := chaosCfg(matchlist.KindLLA, fault.WireConfig{DropProb: 0.15}, 7, 2000)
	cfg.Engine.HotCache = true // heater counter track at phase boundaries
	cfg.Trace = rec
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("violations: %v", res.Violations)
	}

	st := rec.Stats()
	if st.Finished != 2000 {
		t.Errorf("finished %d traces, want one per message (2000)", st.Finished)
	}
	if st.Open != 0 {
		t.Errorf("%d traces still open after a drained run", st.Open)
	}

	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := ctrace.CheckChromeJSON(&buf)
	if err != nil {
		t.Fatalf("exported trace malformed: %v", err)
	}
	if rep.Traces != 2000 {
		t.Errorf("export has %d traces, want 2000", rep.Traces)
	}
	if rep.FullChains < 1 {
		t.Errorf("no trace shows the full causal chain (client -> dropped xmit -> delivered xmit -> engine -> matched): %+v", rep)
	}
	if rep.FaultTraces == 0 {
		t.Errorf("no fault-marked traces at 15%% drop: %+v", rep)
	}
	if rep.Counters == 0 {
		t.Errorf("no heater/residency counter samples despite PhaseEvery: %+v", rep)
	}
}

// TestChaosTraceRetention: without KeepAll, a long clean run retains
// only the latency tail, while faulted traces are always kept.
func TestChaosTraceRetention(t *testing.T) {
	rec := ctrace.New(ctrace.Options{LatencyQuantile: 0.99})
	cfg := chaosCfg(matchlist.KindLLA, fault.WireConfig{DropProb: 0.02}, 5, 4000)
	cfg.Trace = rec
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("violations: %v", res.Violations)
	}
	st := rec.Stats()
	if st.Kept == st.Finished {
		t.Errorf("tail retention kept all %d traces — quantile filter never engaged", st.Finished)
	}
	if st.Kept == 0 {
		t.Error("tail retention kept nothing despite drops")
	}
	// Every retained-or-not decision still leaves the faulted evidence.
	faulted := 0
	for _, tr := range rec.Retained() {
		if tr.Fault {
			faulted++
		}
	}
	if faulted == 0 {
		t.Error("no faulted traces retained at 2% drop")
	}
}

// TestChaosTraceViolationTrigger: a run that breaks an invariant
// (retry exhaustion abandons messages, so exactly-once fails) records a
// sticky trigger naming the violation, and the abandoned traces carry
// their fate.
func TestChaosTraceViolationTrigger(t *testing.T) {
	rec := ctrace.New(ctrace.Options{KeepAll: true})
	cfg := chaosCfg(matchlist.KindLLA, fault.WireConfig{DropProb: 0.5}, 11, 200)
	cfg.MaxRetries = 1
	cfg.Trace = rec
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Skip("seed produced no retry exhaustion; invariants held")
	}
	trig := rec.Triggered()
	if len(trig) == 0 {
		t.Fatal("invariant violation recorded no trigger")
	}
	if !strings.Contains(trig[len(trig)-1], "invariant violation") {
		t.Errorf("trigger does not name the violation: %q", trig)
	}
	abandoned := 0
	for _, tr := range rec.Retained() {
		if tr.Status == "abandoned" {
			abandoned++
		}
	}
	if abandoned == 0 {
		t.Error("no abandoned traces retained despite retry exhaustion")
	}
}
