package workload

import (
	"spco/internal/cache"
	"spco/internal/hotcache"
	"spco/internal/simmem"
)

// HCMicroConfig parameterises the Section 4.3 cache-heater
// microbenchmark: a random-access walk over a region, cold versus
// heated. Random accesses with a 128-byte stride defeat every
// prefetcher, isolating pure residency effects.
type HCMicroConfig struct {
	Profile cache.Profile
	Lines   int // distinct lines visited (each once per pass)
	Seed    uint64
}

// HCMicroResult reports per-access latency, the numbers the paper
// quotes (Sandy Bridge 47.5 -> 22.9 ns, Broadwell 38.5 -> 22.8 ns).
type HCMicroResult struct {
	ColdNS   float64
	HeatedNS float64
	Speedup  float64
}

// RunHCMicro measures the walk cold and heated. The heated measurement
// runs between heater sweeps (the heater has just refreshed the region
// and is sleeping), matching how the paper's standalone heater
// benchmark samples.
func RunHCMicro(cfg HCMicroConfig) HCMicroResult {
	if cfg.Lines == 0 {
		cfg.Lines = 4096
	}
	if cfg.Seed == 0 {
		cfg.Seed = 12345
	}
	h := cache.New(cfg.Profile)
	space := simmem.NewSpace()
	n := uint64(cfg.Lines)
	// Stride-4: neither buddy nor next-pair lines are ever visited, so
	// no prefetcher can mask residency.
	base := space.AllocLines(4 * n)
	perm := permutation(n, cfg.Seed)
	addr := func(i uint64) simmem.Addr {
		return base + simmem.Addr(4*i*simmem.LineSize)
	}

	h.Flush()
	var cold uint64
	for _, i := range perm {
		cold += h.Access(0, addr(i), 4)
	}

	heater := hotcache.New(h, 1, hotcache.Options{})
	heater.RegionAdded(simmem.Region{Base: base, Size: 4 * n * simmem.LineSize})
	h.Flush()
	heater.Sweep(1e9)
	var heated uint64
	for _, i := range perm {
		heated += h.Access(0, addr(i), 4)
	}

	res := HCMicroResult{
		ColdNS:   cfg.Profile.CyclesToNanos(cold) / float64(n),
		HeatedNS: cfg.Profile.CyclesToNanos(heated) / float64(n),
	}
	res.Speedup = res.ColdNS / res.HeatedNS
	return res
}

// permutation returns a deterministic pseudo-random permutation of
// [0, n) (splitmix-style LCG shuffle).
func permutation(n, seed uint64) []uint64 {
	p := make([]uint64, n)
	for i := range p {
		p[i] = uint64(i)
	}
	s := seed
	for i := n - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := (s >> 33) % (i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
