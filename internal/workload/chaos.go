package workload

import (
	"fmt"

	"spco/internal/ctrace"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/netmodel"
	"spco/internal/perf"
	"spco/internal/validate"
)

// ChaosConfig parameterises the chaos/soak harness: a seeded stream of
// eager sends from several source ranks crosses the unreliable wire
// into one matching engine, with a configurable fraction of receives
// posted before the messages arrive (PRQ hits) and the rest posted
// late (UMQ traffic). Every send has exactly one matching receive, so
// after Run the transport and both queues must drain completely — the
// harness then audits the run against the fault-layer invariants.
type ChaosConfig struct {
	Engine engine.Config
	Fabric netmodel.Fabric
	Wire   fault.WireConfig

	// Seed drives the wire, the timers, and the prepost choices. The
	// same seed reproduces the run bit-identically.
	Seed uint64

	// Messages is the total number of sends; Senders the number of
	// source ranks they round-robin across.
	Messages int
	Senders  int

	// PrePostFrac is the probability a message's receive is posted
	// before the send (a PRQ hit on a clean wire); the rest post late,
	// after the eager arrival, exercising the UMQ.
	PrePostFrac float64

	// SendGapNS spaces consecutive sends (zero: the fabric's injection
	// gap at EagerBytes). LateSlackNS delays a late receive past its
	// send (zero: 4x the eager end-to-end time).
	SendGapNS   float64
	LateSlackNS float64

	// PhaseEvery inserts a compute phase (cache flush + reheat) every
	// that many messages; PhaseNS is its duration. Zero disables.
	PhaseEvery int
	PhaseNS    float64

	// Transport knobs, passed through to fault.Config.
	RTONS      float64
	MaxRetries int
	EagerBytes uint64

	// PMU receives the fault-event hooks when set.
	PMU *perf.PMU

	// Trace receives the causal timeline of every message when set:
	// wire attempts, fault instants, and engine spans, exportable as
	// Chrome trace JSON. An invariant violation marks every still-open
	// trace so the dump keeps the evidence.
	Trace *ctrace.Recorder
}

func (c *ChaosConfig) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Messages == 0 {
		c.Messages = 2048
	}
	if c.Senders == 0 {
		c.Senders = 8
	}
	if c.PrePostFrac == 0 {
		c.PrePostFrac = 0.5
	}
	if c.EagerBytes == 0 {
		c.EagerBytes = 4096
	}
	if c.SendGapNS == 0 {
		c.SendGapNS = c.Fabric.MessageGapNS(c.EagerBytes)
	}
	if c.LateSlackNS == 0 {
		c.LateSlackNS = 4 * c.Fabric.EndToEndNS(c.EagerBytes)
	}
	if c.PhaseEvery > 0 && c.PhaseNS == 0 {
		c.PhaseNS = 1e5
	}
}

// ChaosResult is one audited chaos run.
type ChaosResult struct {
	Transport fault.Stats
	Engine    engine.Stats

	// Violations lists every invariant breach (empty on a passing run).
	Violations []validate.Violation

	// SimulatedNS is the simulated time of the last transport event.
	SimulatedNS float64
}

// Passed reports whether every invariant held.
func (r ChaosResult) Passed() bool { return len(r.Violations) == 0 }

// RunChaos executes one seeded chaos run and audits it: exactly-once
// delivery, per-flow FIFO, cycle conservation, full transport drain,
// and empty PRQ/UMQ at the end (every send has a matching receive, so
// anything left over is a matching failure).
func RunChaos(cfg ChaosConfig) (ChaosResult, error) {
	cfg.defaults()
	en, err := engine.New(cfg.Engine)
	if err != nil {
		return ChaosResult{}, err
	}
	tcfg := fault.Config{
		Fabric:     cfg.Fabric,
		Wire:       cfg.Wire,
		Seed:       cfg.Seed,
		Engine:     en,
		PMU:        cfg.PMU,
		Trace:      cfg.Trace,
		RTONS:      cfg.RTONS,
		MaxRetries: cfg.MaxRetries,
		EagerBytes: cfg.EagerBytes,
	}
	if cfg.Engine.Overflow == engine.OverflowCredit {
		tcfg.Credits = -1
	}
	tr, err := fault.NewTransport(tcfg)
	if err != nil {
		return ChaosResult{}, err
	}

	// Schedule the traffic. The prepost stream is forked off the run
	// seed so the send/post mix is part of what the seed reproduces.
	sched := fault.NewRNG(cfg.Seed).Fork(7)
	sent := make(map[int32]uint64, cfg.Senders)
	for i := 0; i < cfg.Messages; i++ {
		src := int32(i % cfg.Senders)
		tag := int32(i)
		at := float64(i) * cfg.SendGapNS
		tr.Send(at, src, tag, 1, uint64(i))
		sent[src]++
		postAt := at + cfg.LateSlackNS
		if sched.Float64() < cfg.PrePostFrac {
			postAt = at // before the arrival: earliest possible is at+EndToEnd
		}
		tr.PostRecv(postAt, int(src), int(tag), 1, uint64(i))
	}
	if cfg.PhaseEvery > 0 {
		for k := cfg.PhaseEvery; k < cfg.Messages; k += cfg.PhaseEvery {
			tr.ComputePhase((float64(k)-0.5)*cfg.SendGapNS, cfg.PhaseNS)
		}
	}

	ts := tr.Run()
	res := ChaosResult{
		Transport:   ts,
		Engine:      en.Stats(),
		SimulatedNS: ts.LastEventNS,
	}
	res.Violations = append(res.Violations, validate.CheckExactlyOnce(sent, tr.Deliveries())...)
	res.Violations = append(res.Violations, validate.CheckFlowFIFO(tr.Deliveries())...)
	res.Violations = append(res.Violations, validate.CheckCycleConservation(res.Engine, ts.EngineOpCycles, ts)...)
	res.Violations = append(res.Violations, validate.CheckTransportClean(tr)...)
	if n := en.PRQLen(); n > 0 {
		res.Violations = append(res.Violations, validate.Violation{
			Invariant: "queue-drain", Detail: fmt.Sprintf("%d receives left in the PRQ", n)})
	}
	if n := en.UMQLen(); n > 0 {
		res.Violations = append(res.Violations, validate.Violation{
			Invariant: "queue-drain", Detail: fmt.Sprintf("%d messages left in the UMQ", n)})
	}

	if len(res.Violations) > 0 {
		// Implicate every in-flight trace and record a sticky trigger so
		// harnesses dump the recorder as the crash-scene evidence.
		cfg.Trace.MarkAllOpen()
		cfg.Trace.Trigger(fmt.Sprintf("%d invariant violation(s): %s",
			len(res.Violations), res.Violations[0].Invariant))
	}

	en.PublishTelemetry()
	if tel := cfg.Engine.Telemetry; tel != nil {
		tr.Publish(tel.Registry, tel.Base)
	}
	return res, nil
}
