package workload

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"spco/internal/daemon"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/mpi"
	"spco/internal/validate"
)

// RunCrashChaos is the kill-and-restart storm: it runs a REAL
// spco-daemon binary as a subprocess with the recovery spine enabled,
// drives a resilient session of audited arrive/post pairs into it, and
// SIGKILLs the process at seeded random points mid-load — restarting
// it each time with -recover on the same addresses. The client rides
// the crashes with resume handshakes and original-sequence re-sends;
// the final audit (validate.CheckCrashRecovery) then holds the
// recovered daemon to the same exactly-once ledger a never-crashed one
// would produce. Where RunDaemonChaos soaks the serving path against
// wire faults, RunCrashChaos soaks the recovery path against process
// death — the end-to-end gate for snapshots, journals, and sessions.

// CrashChaosConfig parameterises a kill-and-restart run.
type CrashChaosConfig struct {
	// DaemonBin is the spco-daemon binary to run (required).
	DaemonBin string

	// Dir is the scratch directory for the journal and address file
	// (empty: a temp dir, removed afterwards).
	Dir string

	// Kills is the number of SIGKILL/restart cycles (default 3).
	Kills int

	// Seed drives the kill timing, pair ordering, and reconnect jitter
	// (default 1).
	Seed uint64

	// Shards is the daemon's lane count (default 2); Ctxs spreads pairs
	// across that many contexts (default 2*Shards, so every lane serves
	// and every journal fills).
	Shards int
	Ctxs   int

	// Pairs is the arrive/post pairs driven per kill cycle (default
	// 400, floor 2*Batch); Senders the source ranks they round-robin
	// (default 8); Batch the pairs per wire exchange (default 16).
	Pairs   int
	Senders int
	Batch   int

	// SnapshotEvery is the daemon's periodic snapshot cadence, so kills
	// land around snapshot writes too (default 50ms).
	SnapshotEvery time.Duration

	// KillAfterMin/Max bound the seeded delay between arming a cycle's
	// killer and the SIGKILL (defaults 2ms and 40ms).
	KillAfterMin time.Duration
	KillAfterMax time.Duration

	// StartTimeout bounds each daemon boot reaching readiness
	// (default 10s).
	StartTimeout time.Duration

	// Logf, when set, narrates the storm (kills, restarts, cycles).
	Logf func(format string, a ...any)
}

func (c *CrashChaosConfig) defaults() error {
	if c.DaemonBin == "" {
		return fmt.Errorf("crash chaos: DaemonBin is required")
	}
	if c.Kills <= 0 {
		c.Kills = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Ctxs <= 0 {
		c.Ctxs = 2 * c.Shards
	}
	if c.Senders <= 0 {
		c.Senders = 8
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	if c.Pairs < 2*c.Batch {
		c.Pairs = 400
		if c.Pairs < 2*c.Batch {
			c.Pairs = 2 * c.Batch
		}
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 50 * time.Millisecond
	}
	if c.KillAfterMin <= 0 {
		c.KillAfterMin = 2 * time.Millisecond
	}
	if c.KillAfterMax <= c.KillAfterMin {
		c.KillAfterMax = c.KillAfterMin + 38*time.Millisecond
	}
	if c.StartTimeout <= 0 {
		c.StartTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// CrashChaosResult is one audited kill-and-restart run.
type CrashChaosResult struct {
	// Ledger is the client-side tally the audit ran against.
	Ledger validate.CrashLedger

	// Status is the final /status document, fetched from the last
	// recovered boot after the load drained.
	Status daemon.StatusReport

	// Violations lists every invariant breach (empty on a passing run).
	Violations []validate.Violation

	Elapsed time.Duration
}

// Passed reports whether every invariant held.
func (r CrashChaosResult) Passed() bool { return len(r.Violations) == 0 }

// RunCrashChaos executes one seeded kill-and-restart storm.
func RunCrashChaos(cfg CrashChaosConfig) (CrashChaosResult, error) {
	var res CrashChaosResult
	if err := cfg.defaults(); err != nil {
		return res, err
	}
	start := time.Now()

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "spco-crash-*")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(dir)
	}
	h := &crashHarness{cfg: cfg, journal: filepath.Join(dir, "journal"),
		addrFile: filepath.Join(dir, "addrs")}
	if err := os.MkdirAll(h.journal, 0o755); err != nil {
		return res, err
	}
	defer h.reap()

	if err := h.start(false); err != nil {
		return res, fmt.Errorf("crash chaos: first boot: %w", err)
	}
	cfg.Logf("crash: daemon up on %s (admin %s), journal %s", h.addr, h.adminAddr, h.journal)

	rc, err := daemon.DialResilient(daemon.ResilientConfig{
		Addr: h.addr, Seed: cfg.Seed, MaxReconnects: 240,
	})
	if err != nil {
		return res, fmt.Errorf("crash chaos: dial: %w", err)
	}
	defer rc.Close()

	killRNG := fault.NewRNG(cfg.Seed).Fork(5)
	loadRNG := fault.NewRNG(cfg.Seed).Fork(7)
	led := &res.Ledger
	g := 0

	span := int(cfg.KillAfterMax - cfg.KillAfterMin)
	for cycle := 0; cycle < cfg.Kills; cycle++ {
		// One audited chunk lands before the killer arms, so the session
		// has journaled ops and the post-kill resume handshake can find it.
		if err := h.driveChunk(rc, &g, cfg.Batch, loadRNG, led); err != nil {
			return res, fmt.Errorf("crash chaos: cycle %d warmup: %w", cycle, err)
		}
		delay := cfg.KillAfterMin + time.Duration(killRNG.Intn(span))
		restarted := make(chan error, 1)
		go func() {
			time.Sleep(delay)
			h.reap()
			led.Kills++
			cfg.Logf("crash: cycle %d: SIGKILL after %v, restarting with -recover", cycle, delay)
			restarted <- h.start(true)
		}()
		for remaining := cfg.Pairs - cfg.Batch; remaining > 0; {
			n := cfg.Batch
			if n > remaining {
				n = remaining
			}
			if err := h.driveChunk(rc, &g, n, loadRNG, led); err != nil {
				<-restarted
				return res, fmt.Errorf("crash chaos: cycle %d load: %w", cycle, err)
			}
			remaining -= n
		}
		if err := <-restarted; err != nil {
			return res, fmt.Errorf("crash chaos: restart after kill %d: %w", cycle+1, err)
		}
	}

	// A final chunk on the last recovered boot: the session must resume
	// onto it before the audit reads that boot's telemetry, and serving
	// after recovery is itself part of the contract.
	if err := h.driveChunk(rc, &g, cfg.Batch, loadRNG, led); err != nil {
		return res, fmt.Errorf("crash chaos: post-storm load: %w", err)
	}
	led.Reconnects, led.Resent = rc.Reconnects, rc.Resent
	cfg.Logf("crash: storm done — %d pairs over %d kills, %d resumes, %d ops re-sent",
		led.Pairs, led.Kills, led.Reconnects, led.Resent)

	st, err := fetchStatus(h.adminAddr)
	if err != nil {
		return res, fmt.Errorf("crash chaos: final status: %w", err)
	}
	res.Status = st
	res.Violations = append(res.Violations, validate.CheckCrashRecovery(*led, validate.CrashServer{
		Arrivals:        st.Engine.Arrivals,
		Posts:           st.Engine.Posts,
		PRQMatches:      st.Engine.PRQMatches,
		UMQMatches:      st.Engine.UMQMatches,
		Refused:         st.Engine.Refused,
		PRQLen:          st.Engine.PRQLen,
		UMQLen:          st.Engine.UMQLen,
		Recovered:       st.Recovery.Recovered,
		ReplayedOps:     st.Recovery.ReplayedOps,
		SessionsResumed: st.Recovery.SessionsResumed,
		WedgedShards:    st.Recovery.WedgedShards,
	})...)

	if err := h.stop(); err != nil {
		res.Violations = append(res.Violations, validate.Violation{
			Invariant: "clean-shutdown", Detail: err.Error()})
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// crashHarness owns the daemon subprocess across its boots. The killer
// goroutine is the only concurrent toucher, and the cycle loop joins
// it before the main goroutine looks at the process again; the
// addresses are written once by the first boot and read-only after.
type crashHarness struct {
	cfg      CrashChaosConfig
	journal  string
	addrFile string

	addr      string
	adminAddr string

	cmd    *exec.Cmd
	waitCh chan error
	stderr bytes.Buffer
}

// start boots the daemon and waits for readiness. The first boot binds
// ephemeral ports and publishes them through the address file; every
// later boot pins the same addresses and recovers from the journal. A
// boot that dies or stalls before readiness is retried (a just-killed
// listener can transiently refuse the re-bind).
func (h *crashHarness) start(recover bool) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if err := h.boot(recover); err != nil {
			return err
		}
		if h.addr == "" {
			if err := h.readAddrs(); err != nil {
				lastErr = err
				h.reap()
				continue
			}
		}
		if err := h.waitReady(); err != nil {
			lastErr = err
			h.reap()
			continue
		}
		return nil
	}
	return lastErr
}

// boot spawns one daemon process.
func (h *crashHarness) boot(recover bool) error {
	listen, admin := h.addr, h.adminAddr
	if listen == "" {
		listen, admin = "127.0.0.1:0", "127.0.0.1:0"
		os.Remove(h.addrFile)
	}
	args := []string{"serve",
		"-listen", listen, "-admin", admin,
		"-shards", fmt.Sprint(h.cfg.Shards),
		"-journal", h.journal,
		"-snapshot-every", h.cfg.SnapshotEvery.String(),
		"-addr-file", h.addrFile,
		"-perf-out", "", "-q",
	}
	if recover {
		args = append(args, "-recover")
	}
	cmd := exec.Command(h.cfg.DaemonBin, args...)
	cmd.Stderr = &h.stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	h.cmd = cmd
	h.waitCh = make(chan error, 1)
	go func() { h.waitCh <- cmd.Wait() }()
	return nil
}

// readAddrs learns the first boot's bound addresses from the address
// file.
func (h *crashHarness) readAddrs() error {
	deadline := time.Now().Add(h.cfg.StartTimeout)
	for {
		b, err := os.ReadFile(h.addrFile)
		if err == nil {
			if lines := strings.Split(strings.TrimSpace(string(b)), "\n"); len(lines) >= 2 {
				h.addr, h.adminAddr = strings.TrimSpace(lines[0]), strings.TrimSpace(lines[1])
				return nil
			}
		}
		select {
		case err := <-h.waitCh:
			h.waitCh <- err
			return fmt.Errorf("daemon exited before publishing addresses: %v\n%s", err, h.tail())
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no address file after %v", h.cfg.StartTimeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitReady polls /readyz until the boot serves.
func (h *crashHarness) waitReady() error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(h.cfg.StartTimeout)
	for {
		resp, err := client.Get("http://" + h.adminAddr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case err := <-h.waitCh:
			h.waitCh <- err
			return fmt.Errorf("daemon exited before readiness: %v\n%s", err, h.tail())
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not ready after %v\n%s", h.cfg.StartTimeout, h.tail())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// reap SIGKILLs the current boot (if any) and collects it.
func (h *crashHarness) reap() {
	if h.cmd == nil {
		return
	}
	h.cmd.Process.Kill()
	<-h.waitCh
	h.cmd = nil
}

// stop drains the final boot gracefully and reports a dirty exit.
func (h *crashHarness) stop() error {
	if h.cmd == nil {
		return nil
	}
	h.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-h.waitCh:
		h.cmd = nil
		if err != nil {
			return fmt.Errorf("daemon exited dirty: %v\n%s", err, h.tail())
		}
		return nil
	case <-time.After(h.cfg.StartTimeout):
		h.reap()
		return fmt.Errorf("daemon ignored SIGTERM for %v", h.cfg.StartTimeout)
	}
}

// tail returns the subprocess's recent stderr for error context.
func (h *crashHarness) tail() string {
	s := h.stderr.String()
	if len(s) > 2048 {
		s = "…" + s[len(s)-2048:]
	}
	return s
}

// driveChunk exchanges one audited chunk: every pair's first op, then
// every pair's second, then one compute phase (phases broadcast to
// every shard's journal, so replay covers them too). The exchange
// rides the resilient client — a kill mid-chunk surfaces here only as
// latency while the session resumes and re-sends.
func (h *crashHarness) driveChunk(rc *daemon.ResilientClient, g *int, pairs int,
	rng *fault.RNG, led *validate.CrashLedger) error {
	type plan struct {
		handle  uint64
		prepost bool
	}
	plans := make([]plan, pairs)
	ops := make([]mpi.WireOp, 2*pairs+1)
	for i := range plans {
		id := *g
		*g++
		op := mpi.WireOp{
			Rank:   int32(id % h.cfg.Senders),
			Tag:    int32(id),
			Ctx:    uint16(1 + id%h.cfg.Ctxs),
			Handle: uint64(id) + 1,
		}
		plans[i] = plan{handle: op.Handle, prepost: rng.Float64() < 0.5}
		arrive, post := op, op
		arrive.Kind, post.Kind = mpi.WireArrive, mpi.WirePost
		if plans[i].prepost {
			ops[i], ops[pairs+i] = post, arrive
		} else {
			ops[i], ops[pairs+i] = arrive, post
		}
	}
	ops[2*pairs] = mpi.WireOp{Kind: mpi.WirePhase, DurationNS: 5e3}

	reps, err := rc.Exchange(ops, make([]mpi.WireReply, 0, len(ops)))
	if err != nil {
		return err
	}
	for i, p := range plans {
		first, second := reps[i], reps[pairs+i]
		led.Pairs++
		if first.Status != mpi.WireOK || second.Status != mpi.WireOK {
			led.Refused++
			led.Unmatched++
			continue
		}
		if p.prepost {
			// The receive posted first must queue; its arrive must match it.
			switch {
			case first.Outcome == 1:
				led.Mismatches++
			case second.Outcome != byte(engine.ArriveMatched):
				led.Unmatched++
			default:
				led.ArriveMatched++
				if second.Handle != p.handle {
					led.Mismatches++
				}
			}
		} else {
			// The arrive first must queue unexpected; its post must find it.
			switch {
			case first.Outcome == byte(engine.ArriveMatched):
				led.Mismatches++
			case second.Outcome != 1:
				led.Unmatched++
			default:
				led.PostMatched++
				if second.Handle != p.handle {
					led.Mismatches++
				}
			}
		}
	}
	if reps[2*pairs].Status != mpi.WireOK {
		led.Refused++
	}
	return nil
}
