package experiments

import (
	"fmt"

	"spco/internal/motif"
	"spco/internal/trace"
	"spco/internal/workload"
)

// histArtifact renders a motif result's two histograms side by side,
// as each Figure 1 panel plots posted and unexpected together.
type histArtifact struct {
	res *motif.Result
}

func (h histArtifact) Render() string {
	t := trace.NewTable(
		fmt.Sprintf("%s match-list sizes - %dK ranks (bucket %d)",
			h.res.Name, h.res.Ranks/1024, h.res.Posted.BucketWidth),
		"length bucket", "posted", "unexpected")
	pb := h.res.Posted.Buckets()
	ub := h.res.Unexpected.Buckets()
	n := len(pb)
	if len(ub) > n {
		n = len(ub)
	}
	for i := 0; i < n; i++ {
		var lo, hi int
		var p, u uint64
		if i < len(pb) {
			lo, hi, p = pb[i].Lo, pb[i].Hi, pb[i].Count
		}
		if i < len(ub) {
			lo, hi, u = ub[i].Lo, ub[i].Hi, ub[i].Count
		}
		t.AddRow(fmt.Sprintf("%d-%d", lo, hi), p, u)
	}
	return t.Render()
}

func motifConfig(o Options) motif.Config {
	c := motif.Config{Seed: 2018}
	if o.Quick {
		c.SampleRanks = 128
		c.Phases = 5
	}
	return c
}

func init() {
	register(Spec{
		ID:          "fig1a",
		Title:       "Fig 1a: AMR match list sizes - 64K ranks",
		Description: "Queue-length histogram of the AMR motif, posted and unexpected queues.",
		Run: func(o Options) Artifact {
			return histArtifact{motif.AMR(motifConfig(o))}
		},
	})
	register(Spec{
		ID:          "fig1b",
		Title:       "Fig 1b: Sweep3D match list sizes - 128K ranks",
		Description: "Queue-length histogram of the wavefront-sweep motif.",
		Run: func(o Options) Artifact {
			c := motifConfig(o)
			if o.Quick {
				c.Phases = 2
			}
			return histArtifact{motif.Sweep3D(c)}
		},
	})
	register(Spec{
		ID:          "fig1c",
		Title:       "Fig 1c: Halo3D match list sizes - 256K ranks",
		Description: "Queue-length histogram of the 7-point halo-exchange motif.",
		Run: func(o Options) Artifact {
			return histArtifact{motif.Halo3D(motifConfig(o))}
		},
	})

	register(Spec{
		ID:          "table1",
		Title:       "Table 1: queue lengths and mean search depths, 2D/3D thread decompositions",
		Description: "The multithreaded matching benchmark on all ten decomposition/stencil rows.",
		Run: func(o Options) Artifact {
			trials := 10
			if o.Quick {
				trials = 2
			}
			if o.Trials > 0 {
				trials = o.Trials
			}
			t := trace.NewTable("Table 1",
				"Decomp.", "Stencil", "tr", "ts", "Length", "Search depth", "± stddev")
			for _, cfg := range workload.Table1Decomps() {
				cfg.Trials = trials
				r := workload.RunMT(cfg)
				t.AddRow(r.Decomp.String(), r.Stencil.String(), r.TR, r.TS, r.Length,
					fmt.Sprintf("%.2f", r.Depth.Mean()), fmt.Sprintf("%.2f", r.Depth.StdDev()))
			}
			return t
		},
	})
}
