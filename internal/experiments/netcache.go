package experiments

import (
	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/netmodel"
	"spco/internal/trace"
	"spco/internal/workload"
)

// The netcache experiment evaluates the paper's own hardware proposal
// (Sections 4.6 and 6): "with explicit hardware-supported data-locality
// control ... a cache partition, or a dedicated network cache, MPI
// message matching performance can be improved for long lists without a
// cost to short list performance." It is an extension beyond the
// paper's measured artifacts: the proposal evaluated with the same
// harness that reproduced Figures 4-7.
func init() {
	register(Spec{
		ID:    "netcache",
		Title: "Extension: the proposed cache partition and dedicated network cache (Sections 4.6, 6)",
		Description: "Modified osu_bw comparing baseline, hot caching, and the paper's two " +
			"hardware proposals (a CAT-style L3 way partition and a dedicated network " +
			"cache) across queue depths on both Sandy Bridge and Broadwell. Both " +
			"proposals should deliver hot caching's gains without its sign flip.",
		Run: func(o Options) Artifact {
			type variant struct {
				name     string
				hot, nc  bool
				partWays int
			}
			variants := []variant{
				{name: "baseline"},
				{name: "hot-caching", hot: true},
				{name: "l3-partition", partWays: 4},
				{name: "net-cache", nc: true},
			}
			deps := []int{1, 64, 1024, 8192}
			if o.Quick {
				deps = []int{1, 1024}
			}
			iters := 10
			if o.Quick {
				iters = 2
			}
			systems := []struct {
				prof cache.Profile
				fab  netmodel.Fabric
			}{
				{cache.SandyBridge, netmodel.IBQDR},
				{cache.Broadwell, netmodel.OmniPath},
			}
			parts := make([]Artifact, 0, 2)
			for _, sys := range systems {
				fig := trace.NewFigure("Hardware proposals, "+sys.prof.Name+", 1 B messages",
					"PRQ search length", "bandwidth (MiBps)")
				for _, v := range variants {
					s := fig.AddSeries(v.name)
					for _, d := range deps {
						r := workload.RunBW(workload.BWConfig{
							Engine: o.instrument(engine.Config{
								Profile:         sys.prof,
								Kind:            matchlist.KindLLA,
								EntriesPerNode:  2,
								HotCache:        v.hot,
								Pool:            v.hot,
								NetworkCache:    v.nc,
								L3PartitionWays: v.partWays,
							}),
							Fabric:     sys.fab,
							QueueDepth: d,
							MsgBytes:   1,
							Iters:      iters,
							Observer:   o.Observer,
						})
						s.Add(float64(d), r.BandwidthMiBps)
					}
				}
				parts = append(parts, fig)
			}
			return multiArtifact{title: "The paper's hardware proposals, evaluated", parts: parts}
		},
	})
}
