// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is registered under the paper's artifact
// id (table1, fig1a, fig4b, ..., fig10, hcmicro) and returns a
// renderable artifact printing the same rows or series the paper
// reports. cmd/spco-bench and the repository benchmarks drive this
// registry; EXPERIMENTS.md records paper-versus-measured for each id.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/perf"
	"spco/internal/telemetry"
)

// Options tunes experiment cost.
type Options struct {
	// Quick shrinks sweeps and trial counts for CI-speed runs; the
	// qualitative shapes survive.
	Quick bool

	// Trials overrides the per-experiment trial count (0 = default).
	Trials int

	// Telemetry, when set, is attached to every engine the experiment
	// builds: metrics accumulate in its registry and occupancy/queue
	// series in its sampler (export with the telemetry writers). Nil
	// leaves the experiments bit-identical to an uninstrumented run.
	Telemetry *telemetry.Collector

	// ResidencyInterval is the telemetry sampling cadence in simulated
	// cycles (0 = compute-phase boundaries only). Ignored without
	// Telemetry.
	ResidencyInterval uint64

	// Observer, when set, is attached to every engine the experiment
	// builds (e.g. an engine.Tracer flight recorder).
	Observer engine.Observer

	// Perf, when set, is attached to every engine the experiment builds
	// as its simulated PMU: counters, profile samples and spans
	// accumulate across the experiment's engines. Nil leaves cycle
	// totals bit-identical to an uninstrumented run.
	Perf *perf.PMU

	// Fault, when set (spco-bench's -fault-* flags), replaces the chaos
	// experiment's built-in scenario sweep with this single fault
	// regime. Other experiments ignore it.
	Fault *fault.CLI
}

// instrument applies the options' telemetry wiring to an engine
// config; with no collector attached the config passes through
// unchanged.
func (o Options) instrument(cfg engine.Config) engine.Config {
	cfg.Telemetry = o.Telemetry
	cfg.ResidencyInterval = o.ResidencyInterval
	cfg.Perf = o.Perf
	return cfg
}

// Artifact is anything an experiment can print.
type Artifact interface {
	Render() string
}

// Spec describes one registered experiment.
type Spec struct {
	ID          string
	Title       string
	Description string
	Run         func(Options) Artifact
}

var registry []Spec

func register(s Spec) {
	registry = append(registry, s)
}

// All returns the registered experiments in id order.
func All() []Spec {
	out := append([]Spec{}, registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Spec, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var ids []string
	for _, s := range All() {
		ids = append(ids, s.ID)
	}
	return ids
}

// multiArtifact concatenates artifacts (e.g. a figure's posted and
// unexpected histograms).
type multiArtifact struct {
	title string
	parts []Artifact
}

func (m multiArtifact) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n", m.title)
	for _, p := range m.parts {
		b.WriteString(p.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// textArtifact is a pre-rendered artifact.
type textArtifact string

func (t textArtifact) Render() string { return string(t) }
