package experiments

import (
	"strings"
	"testing"

	"spco/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	// Every artifact of the paper's evaluation must be registered.
	want := []string{
		"table1", "netcache", "hwoffload", "umqdepth", "appdepths", "validate", "tracestudy", "fig2",
		"fig1a", "fig1b", "fig1c",
		"fig4a", "fig4b", "fig4c",
		"fig5a", "fig5b", "fig5c",
		"fig6a", "fig6b", "fig6c",
		"fig7a", "fig7b", "fig7c",
		"fig8", "fig9", "fig10",
		"hcmicro", "chaos",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
}

func TestByID(t *testing.T) {
	s, ok := ByID("table1")
	if !ok || s.ID != "table1" || s.Run == nil {
		t.Fatalf("ByID(table1) = %+v, %v", s, ok)
	}
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestSpecsDescribed(t *testing.T) {
	for _, s := range All() {
		if s.Title == "" || s.Description == "" {
			t.Errorf("%s: missing title or description", s.ID)
		}
	}
}

func figOf(t *testing.T, id string) *trace.Figure {
	t.Helper()
	s, ok := ByID(id)
	if !ok {
		t.Fatalf("missing %s", id)
	}
	fig, ok := s.Run(Options{Quick: true}).(*trace.Figure)
	if !ok {
		t.Fatalf("%s did not produce a figure", id)
	}
	return fig
}

// Figure 4b's quick form must preserve the headline ordering: baseline
// slowest, LLA monotone to 8, plateau to 32, at the 1024-depth point.
func TestFig4bShape(t *testing.T) {
	fig := figOf(t, "fig4b")
	at := func(name string) float64 {
		s := fig.Get(name)
		if s == nil {
			t.Fatalf("series %s missing", name)
		}
		return s.YAt(1024)
	}
	base, l2, l8, l32 := at("baseline"), at("LLA-2"), at("LLA-8"), at("LLA-32")
	if !(base < l2 && l2 < l8) {
		t.Errorf("ordering violated: baseline=%g LLA-2=%g LLA-8=%g", base, l2, l8)
	}
	if l32 < l8*0.9 || l32 > l8*1.15 {
		t.Errorf("no plateau: LLA-8=%g LLA-32=%g", l8, l32)
	}
}

// Figures 6b and 7b: the hot-caching sign flip.
func TestHotCacheSignFlipFigures(t *testing.T) {
	sb := figOf(t, "fig6b")
	if hc, base := sb.Get("HC").YAt(1024), sb.Get("baseline").YAt(1024); hc <= base {
		t.Errorf("Sandy Bridge HC (%g) should beat baseline (%g)", hc, base)
	}
	bw := figOf(t, "fig7b")
	if hc, base := bw.Get("HC").YAt(1024), bw.Get("baseline").YAt(1024); hc > base {
		t.Errorf("Broadwell HC (%g) should not beat baseline (%g)", hc, base)
	}
}

// Figure 4a: convergence at 1 MiB.
func TestFig4aConvergence(t *testing.T) {
	fig := figOf(t, "fig4a")
	base := fig.Get("baseline").YAt(1 << 20)
	l8 := fig.Get("LLA-8").YAt(1 << 20)
	if ratio := l8 / base; ratio > 1.2 || ratio < 0.8 {
		t.Errorf("1 MiB convergence violated: LLA-8/baseline = %.3f", ratio)
	}
}

func TestTable1Artifact(t *testing.T) {
	s, _ := ByID("table1")
	tab, ok := s.Run(Options{Quick: true, Trials: 1}).(*trace.Table)
	if !ok {
		t.Fatal("table1 did not produce a table")
	}
	if tab.NumRows() != 10 {
		t.Errorf("table1 rows = %d, want 10", tab.NumRows())
	}
	out := tab.Render()
	for _, needle := range []string{"32x32", "1x1x256", "27pt", "6146"} {
		if !strings.Contains(out, needle) {
			t.Errorf("table1 output missing %q:\n%s", needle, out)
		}
	}
}

func TestFig1Artifacts(t *testing.T) {
	for _, id := range []string{"fig1a", "fig1b", "fig1c"} {
		s, _ := ByID(id)
		out := s.Run(Options{Quick: true}).Render()
		if !strings.Contains(out, "posted") || !strings.Contains(out, "unexpected") {
			t.Errorf("%s output missing histograms:\n%s", id, out)
		}
	}
}

func TestHCMicroArtifact(t *testing.T) {
	s, _ := ByID("hcmicro")
	out := s.Run(Options{Quick: true}).Render()
	for _, needle := range []string{"SandyBridge", "Broadwell", "Nehalem"} {
		if !strings.Contains(out, needle) {
			t.Errorf("hcmicro missing %s:\n%s", needle, out)
		}
	}
}

// Figure 10 quick mode: the four qualitative claims.
func TestFig10Claims(t *testing.T) {
	fig := figOf(t, "fig10")
	llaBDW := fig.Get("LLA Broadwell").YAt(1024)
	if llaBDW < 1.05 || llaBDW > 1.5 {
		t.Errorf("LLA Broadwell at 1024 = %.3f, want ~1.21", llaBDW)
	}
	llaNEH := fig.Get("LLA Nehalem").YAt(4096)
	if llaNEH < 1.5 {
		t.Errorf("LLA Nehalem at 4096 = %.3f, want ~2x", llaNEH)
	}
	hcNEH := fig.Get("HC Nehalem").YAt(4096)
	if hcNEH >= llaNEH {
		t.Errorf("HC alone (%.3f) must trail LLA (%.3f) at scale", hcNEH, llaNEH)
	}
	hclla := fig.Get("HC+LLA Nehalem").YAt(1024)
	lla1024 := fig.Get("LLA Nehalem").YAt(1024)
	if hclla <= lla1024 {
		t.Errorf("HC+LLA (%.3f) should lead LLA (%.3f) at 1024", hclla, lla1024)
	}
}

// The netcache extension: matches or beats hot caching on Sandy Bridge
// and — unlike hot caching — wins on Broadwell too.
func TestNetCacheClaims(t *testing.T) {
	s, ok := ByID("netcache")
	if !ok {
		t.Fatal("netcache experiment missing")
	}
	art := s.Run(Options{Quick: true})
	m, ok := art.(multiArtifact)
	if !ok || len(m.parts) != 2 {
		t.Fatalf("netcache artifact shape: %T", art)
	}
	for i, sys := range []string{"SandyBridge", "Broadwell"} {
		fig, ok := m.parts[i].(*trace.Figure)
		if !ok {
			t.Fatalf("part %d not a figure", i)
		}
		base := fig.Get("baseline").YAt(1024)
		nc := fig.Get("net-cache").YAt(1024)
		if nc <= base {
			t.Errorf("%s: net-cache (%g) should beat baseline (%g) at depth 1024", sys, nc, base)
		}
		baseShort := fig.Get("baseline").YAt(1)
		ncShort := fig.Get("net-cache").YAt(1)
		if ncShort < baseShort*0.98 {
			t.Errorf("%s: net-cache must not cost short lists: %g vs %g", sys, ncShort, baseShort)
		}
		// The CAT-style partition also beats the baseline on both
		// machines (unlike hot caching) but cannot beat the dedicated
		// cache, whose hits are core-adjacent.
		part := fig.Get("l3-partition").YAt(1024)
		if part <= base {
			t.Errorf("%s: l3-partition (%g) should beat baseline (%g)", sys, part, base)
		}
		if part >= nc {
			t.Errorf("%s: l3-partition (%g) should trail the dedicated cache (%g)", sys, part, nc)
		}
	}
}

// The hwoffload extension: flat below hardware capacity, software-bound
// above it — Section 2.2's observation, quantified.
func TestHWOffloadClaims(t *testing.T) {
	fig := figOf(t, "hwoffload")
	hw := fig.Get("hw-offload-512")
	base := fig.Get("baseline")
	under := hw.YAt(64)
	at512 := hw.YAt(512)
	over := hw.YAt(4096)
	if at512 < under*0.9 {
		t.Errorf("hw-offload should stay flat to capacity: %g at 64, %g at 512", under, at512)
	}
	if over > under/4 {
		t.Errorf("hw-offload should cliff past capacity: %g at 64, %g at 4096", under, over)
	}
	if hw.YAt(64) <= base.YAt(64) {
		t.Error("hw-offload should beat the software baseline below capacity")
	}
	if over <= base.YAt(4096) {
		t.Error("even spilled, hardware+LLA overflow should beat the pure baseline")
	}
}

func TestMultiAndTextArtifacts(t *testing.T) {
	m := multiArtifact{title: "T", parts: []Artifact{textArtifact("a"), textArtifact("b")}}
	out := m.Render()
	if !strings.Contains(out, "### T") || !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("multiArtifact render: %q", out)
	}
}

func TestUMQDepthArtifact(t *testing.T) {
	fig := figOf(t, "umqdepth")
	base := fig.Get("baseline")
	lla := fig.Get("LLA (3/line)")
	if base == nil || lla == nil {
		t.Fatal("series missing")
	}
	if lla.YAt(1024) >= base.YAt(1024) {
		t.Errorf("packed UMQ (%g ns) should beat baseline (%g ns) at depth 1024",
			lla.YAt(1024), base.YAt(1024))
	}
	// Depth 0: both near the fabric floor, within 20%.
	if r := lla.YAt(0) / base.YAt(0); r < 0.8 || r > 1.2 {
		t.Errorf("empty-queue latency ratio = %.2f, want ~1", r)
	}
}

func TestAppDepthsArtifact(t *testing.T) {
	s, _ := ByID("appdepths")
	out := s.Run(Options{Quick: true}).Render()
	for _, needle := range []string{"PRQ samples", "UMQ samples", "search depths"} {
		if !strings.Contains(out, needle) {
			t.Errorf("appdepths missing %q:\n%s", needle, out)
		}
	}
}

func TestFig2Artifact(t *testing.T) {
	s, _ := ByID("fig2")
	out := s.Run(Options{}).Render()
	for _, needle := range []string{"64 bytes: exactly one cache line", "req ptr#2", "msg ptr#3"} {
		if !strings.Contains(out, needle) {
			t.Errorf("fig2 missing %q", needle)
		}
	}
}

func TestValidateArtifact(t *testing.T) {
	s, _ := ByID("validate")
	out := s.Run(Options{Quick: true}).Render()
	if !strings.Contains(out, "Kendall tau") || !strings.Contains(out, "baseline") {
		t.Errorf("validate artifact:\n%s", out)
	}
}

func TestTracestudyArtifact(t *testing.T) {
	s, _ := ByID("tracestudy")
	out := s.Run(Options{Quick: true}).Render()
	if !strings.Contains(out, "mismatches") || !strings.Contains(out, "hwoffload-512") {
		t.Errorf("tracestudy artifact:\n%s", out)
	}
	// Every row must report zero mismatches; scan the last column.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "lla-") || strings.Contains(line, "baseline") {
			fields := strings.Fields(line)
			if len(fields) > 0 && fields[len(fields)-1] != "0" {
				t.Errorf("replay mismatches in row: %s", line)
			}
		}
	}
}
