package experiments

import (
	"fmt"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/mpi"
	"spco/internal/mtrace"
	"spco/internal/netmodel"
	"spco/internal/proxyapps"
	"spco/internal/trace"
	"spco/internal/validate"
)

func init() {
	register(Spec{
		ID:    "validate",
		Title: "Extension: simulator-vs-native ordering validation",
		Description: "Deep cold searches per structure, measured on the simulator and " +
			"natively on the host: the layout effects (pointer chasing vs packing) " +
			"must order the variants identically. Kendall tau reports concordance.",
		Run: func(o Options) Artifact {
			depth := 4096
			rounds := 7
			if o.Quick {
				depth = 1024
				rounds = 3
			}
			res := validate.Compare(validate.DefaultVariants(), depth, rounds)
			t := trace.NewTable(
				fmt.Sprintf("Simulator vs native, depth %d (Kendall tau %.2f)", depth, res.Tau()),
				"structure", "sim cycles (SandyBridge)", "native ns (host)")
			for _, m := range res.Measurements {
				t.AddRow(m.Variant.Name, m.SimCycles, fmt.Sprintf("%.0f", m.NativeNS))
			}
			return t
		},
	})

	register(Spec{
		ID:    "tracestudy",
		Title: "Extension: one recorded FDS trace replayed everywhere",
		Description: "Records rank 0 of an FDS run once, then replays the identical " +
			"operation sequence against every structure on both studied " +
			"architectures — trace-based simulation with outcome cross-checking.",
		Run: func(o Options) Artifact {
			target := 2048
			ranks := 8
			if o.Quick {
				target = 512
				ranks = 4
			}
			rec := mtrace.NewRecorder("fds")
			prof := cache.Nehalem
			prof.Cores = 2
			proxyapps.RunFDS(proxyapps.FDSConfig{
				World: mpi.Config{
					Size:   ranks,
					Engine: engine.Config{Profile: prof, Kind: matchlist.KindLLA, EntriesPerNode: 2},
					Fabric: netmodel.MellanoxQDR,
					Observer: func(rank int) engine.Observer {
						if rank == 0 {
							return rec
						}
						return nil
					},
				},
				TargetRanks: target,
				Phases:      1,
			})
			tr := rec.Trace()

			t := trace.NewTable(
				fmt.Sprintf("FDS trace (%d events) replayed per structure and architecture", len(tr.Events)),
				"structure", "SandyBridge ms", "Broadwell ms", "Nehalem ms", "mismatches")
			for _, v := range []struct {
				name string
				kind matchlist.Kind
				k    int
			}{
				{"baseline", matchlist.KindBaseline, 0},
				{"lla-2", matchlist.KindLLA, 2},
				{"lla-8", matchlist.KindLLA, 8},
				{"hashbins-256", matchlist.KindHashBins, 0},
				{"hwoffload-512", matchlist.KindHWOffload, 0},
			} {
				var cells []any
				cells = append(cells, v.name)
				mismatches := 0
				for _, prof := range []cache.Profile{cache.SandyBridge, cache.Broadwell, cache.Nehalem} {
					cfg := engine.Config{
						Profile: prof, Kind: v.kind, EntriesPerNode: v.k,
						CommSize: matchlist.MaxCommSize,
					}
					switch v.kind {
					case matchlist.KindHashBins:
						cfg.Bins = 256
					case matchlist.KindHWOffload:
						cfg.Bins = 512
					}
					r := mtrace.Replay(tr, cfg)
					cells = append(cells, fmt.Sprintf("%.3f", r.CPUNanos/1e6))
					mismatches += r.Mismatches
				}
				cells = append(cells, mismatches)
				t.AddRow(cells...)
			}
			return t
		},
	})
}
