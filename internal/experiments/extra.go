package experiments

import (
	"fmt"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/mpi"
	"spco/internal/netmodel"
	"spco/internal/proxyapps"
	"spco/internal/trace"
	"spco/internal/workload"
)

// umqdepth: the unexpected-queue side of the locality story, following
// Underwood & Brightwell's long-queue microbenchmarks and Keller &
// Graham's UMQ characterisation (both cited in Section 5). The paper's
// structures change the UMQ too (16-byte entries, three per line); this
// experiment measures late-posted-receive latency against a deep
// unexpected backlog.
func init() {
	register(Spec{
		ID:    "umqdepth",
		Title: "Extension: unexpected-message-queue depth vs receive latency (Section 5 lineage)",
		Description: "Late-posted receives searching a deep UMQ, baseline vs packed " +
			"structures on Sandy Bridge — the locality thesis on the other queue.",
		Run: func(o Options) Artifact {
			deps := []int{0, 64, 256, 1024, 4096}
			if o.Quick {
				deps = []int{0, 1024}
			}
			iters := 5
			if o.Quick {
				iters = 2
			}
			fig := trace.NewFigure("UMQ depth vs receive latency, Sandy Bridge",
				"unexpected queue depth", "ns per receive")
			for _, v := range []struct {
				name string
				kind matchlist.Kind
			}{
				{"baseline", matchlist.KindBaseline},
				{"LLA (3/line)", matchlist.KindLLA},
			} {
				s := fig.AddSeries(v.name)
				for _, d := range deps {
					r := workload.RunUMQ(workload.UMQConfig{
						Engine: o.instrument(engine.Config{
							Profile:        cache.SandyBridge,
							Kind:           v.kind,
							EntriesPerNode: 2,
						}),
						Fabric: netmodel.IBQDR,
						UDepth: d,
						Iters:  iters,
					})
					s.Add(float64(d), r.NSPerRecv)
				}
			}
			return fig
		},
	})

	register(Spec{
		ID:    "appdepths",
		Title: "Extension: Figure-1-style queue histograms from the FDS proxy",
		Description: "The Section 2.3 sampling methodology applied to an application: " +
			"per-operation queue-length and search-depth histograms recorded by the " +
			"engine itself during an FDS run.",
		Run: func(o Options) Artifact {
			prof := cache.Nehalem
			prof.Cores = 2
			target := 2048
			ranks := 8
			if o.Quick {
				target = 512
				ranks = 4
			}
			var hists struct {
				prqLen, umqLen, depth *trace.Histogram
			}
			res := proxyapps.RunFDS(proxyapps.FDSConfig{
				World: mpi.Config{
					Size: ranks,
					Engine: engine.Config{
						Profile:         prof,
						Kind:            matchlist.KindLLA,
						EntriesPerNode:  2,
						TrackHistograms: true,
						HistogramBucket: 20,
					},
					Fabric: netmodel.MellanoxQDR,
				},
				TargetRanks: target,
				Phases:      1,
				HistSink: func(prqLen, umqLen, depth *trace.Histogram) {
					hists.prqLen, hists.umqLen, hists.depth = prqLen, umqLen, depth
				},
			})
			_ = res
			if hists.prqLen == nil {
				return textArtifact("no histograms collected")
			}
			t := trace.NewTable(
				fmt.Sprintf("FDS proxy (target %d ranks): rank-0 queue behaviour", target),
				"length bucket", "PRQ samples", "UMQ samples", "search depths")
			pb, ub, db := hists.prqLen.Buckets(), hists.umqLen.Buckets(), hists.depth.Buckets()
			n := len(pb)
			for _, b := range [][]trace.Bucket{ub, db} {
				if len(b) > n {
					n = len(b)
				}
			}
			cell := func(b []trace.Bucket, i int) any {
				if i < len(b) {
					return b[i].Count
				}
				return ""
			}
			for i := 0; i < n; i++ {
				lo, hi := i*20, (i+1)*20-1
				t.AddRow(fmt.Sprintf("%d-%d", lo, hi), cell(pb, i), cell(ub, i), cell(db, i))
			}
			return t
		},
	})
}
