package experiments

import (
	"fmt"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/netmodel"
	"spco/internal/trace"
	"spco/internal/workload"
)

// variant names one plotted curve of Figures 4-7.
type variant struct {
	name string
	kind matchlist.Kind
	k    int
	hot  bool
	pool bool
}

// spatialVariants are Figures 4 and 5's curves: the unmodified baseline
// and the exponential LLA sweep.
func spatialVariants() []variant {
	return []variant{
		{name: "baseline", kind: matchlist.KindBaseline},
		{name: "LLA-2", kind: matchlist.KindLLA, k: 2},
		{name: "LLA-4", kind: matchlist.KindLLA, k: 4},
		{name: "LLA-8", kind: matchlist.KindLLA, k: 8},
		{name: "LLA-16", kind: matchlist.KindLLA, k: 16},
		{name: "LLA-32", kind: matchlist.KindLLA, k: 32},
	}
}

// temporalVariants are Figures 6 and 7's curves. The HC+LLA
// configuration uses the dedicated element pool, the modification that
// removed the heater's locking overhead (Section 4.3).
func temporalVariants() []variant {
	return []variant{
		{name: "baseline", kind: matchlist.KindBaseline},
		{name: "HC", kind: matchlist.KindBaseline, hot: true},
		{name: "LLA", kind: matchlist.KindLLA, k: 2},
		{name: "HC+LLA", kind: matchlist.KindLLA, k: 2, hot: true, pool: true},
	}
}

func bwConfig(prof cache.Profile, fab netmodel.Fabric, v variant, depth int, bytes uint64, o Options) workload.BWConfig {
	iters := 10
	if o.Quick {
		iters = 2
	}
	if o.Trials > 0 {
		iters = o.Trials
	}
	return workload.BWConfig{
		Engine: engine.Config{
			Profile:           prof,
			Kind:              v.kind,
			EntriesPerNode:    v.k,
			HotCache:          v.hot,
			Pool:              v.pool,
			Telemetry:         o.Telemetry,
			ResidencyInterval: o.ResidencyInterval,
		},
		Fabric:     fab,
		QueueDepth: depth,
		MsgBytes:   bytes,
		Iters:      iters,
		Observer:   o.Observer,
	}
}

// msgSizes returns the x axis for the size-sweep panels.
func msgSizes(o Options) []uint64 {
	if !o.Quick {
		return workload.MsgSizeSweep()
	}
	return []uint64{1, 64, 4096, 1 << 16, 1 << 20}
}

// depths returns the x axis for the depth-sweep panels.
func depths(o Options) []int {
	if !o.Quick {
		return workload.DepthSweep()
	}
	return []int{1, 64, 1024, 8192}
}

// sizeSweepFig builds a bandwidth-vs-message-size panel at fixed depth.
func sizeSweepFig(title string, prof cache.Profile, fab netmodel.Fabric, vs []variant, depth int, o Options) *trace.Figure {
	fig := trace.NewFigure(title, "msg size (B)", "bandwidth (MiBps)")
	for _, v := range vs {
		s := fig.AddSeries(v.name)
		for _, sz := range msgSizes(o) {
			r := workload.RunBW(bwConfig(prof, fab, v, depth, sz, o))
			s.Add(float64(sz), r.BandwidthMiBps)
		}
	}
	return fig
}

// depthSweepFig builds a bandwidth-vs-queue-depth panel at fixed size.
func depthSweepFig(title string, prof cache.Profile, fab netmodel.Fabric, vs []variant, bytes uint64, o Options) *trace.Figure {
	fig := trace.NewFigure(title, "PRQ search length", "bandwidth (MiBps)")
	for _, v := range vs {
		s := fig.AddSeries(v.name)
		for _, d := range depths(o) {
			r := workload.RunBW(bwConfig(prof, fab, v, d, bytes, o))
			s.Add(float64(d), r.BandwidthMiBps)
		}
	}
	return fig
}

func init() {
	type panel struct {
		id, title string
		prof      cache.Profile
		fab       netmodel.Fabric
		vars      func() []variant
		depth     int    // size panels
		bytes     uint64 // depth panels (0 = size panel)
	}
	panels := []panel{
		{"fig4a", "Fig 4a: spatial locality, Sandy Bridge, depth 1024", cache.SandyBridge, netmodel.IBQDR, spatialVariants, 1024, 0},
		{"fig4b", "Fig 4b: spatial locality, Sandy Bridge, 1 B messages", cache.SandyBridge, netmodel.IBQDR, spatialVariants, 0, 1},
		{"fig4c", "Fig 4c: spatial locality, Sandy Bridge, 4 KiB messages", cache.SandyBridge, netmodel.IBQDR, spatialVariants, 0, 4096},
		{"fig5a", "Fig 5a: spatial locality, Broadwell, depth 1024", cache.Broadwell, netmodel.OmniPath, spatialVariants, 1024, 0},
		{"fig5b", "Fig 5b: spatial locality, Broadwell, 1 B messages", cache.Broadwell, netmodel.OmniPath, spatialVariants, 0, 1},
		{"fig5c", "Fig 5c: spatial locality, Broadwell, 4 KiB messages", cache.Broadwell, netmodel.OmniPath, spatialVariants, 0, 4096},
		{"fig6a", "Fig 6a: temporal locality, Sandy Bridge, depth 1024", cache.SandyBridge, netmodel.IBQDR, temporalVariants, 1024, 0},
		{"fig6b", "Fig 6b: temporal locality, Sandy Bridge, 1 B messages", cache.SandyBridge, netmodel.IBQDR, temporalVariants, 0, 1},
		{"fig6c", "Fig 6c: temporal locality, Sandy Bridge, 4 KiB messages", cache.SandyBridge, netmodel.IBQDR, temporalVariants, 0, 4096},
		{"fig7a", "Fig 7a: temporal locality, Broadwell, depth 1024", cache.Broadwell, netmodel.OmniPath, temporalVariants, 1024, 0},
		{"fig7b", "Fig 7b: temporal locality, Broadwell, 1 B messages", cache.Broadwell, netmodel.OmniPath, temporalVariants, 0, 1},
		{"fig7c", "Fig 7c: temporal locality, Broadwell, 4 KiB messages", cache.Broadwell, netmodel.OmniPath, temporalVariants, 0, 4096},
	}
	for _, p := range panels {
		p := p
		desc := "Modified osu_bw over the cache simulator; series per structure variant."
		register(Spec{
			ID: p.id, Title: p.title, Description: desc,
			Run: func(o Options) Artifact {
				if p.bytes == 0 {
					return sizeSweepFig(p.title, p.prof, p.fab, p.vars(), p.depth, o)
				}
				return depthSweepFig(p.title, p.prof, p.fab, p.vars(), p.bytes, o)
			},
		})
	}

	register(Spec{
		ID:    "hcmicro",
		Title: "Section 4.3: cache-heater random-access microbenchmark",
		Description: "Per-access latency of a prefetch-defeating random walk, " +
			"cold vs heated (paper: SB 47.5->22.9 ns, BDW 38.5->22.8 ns).",
		Run: func(o Options) Artifact {
			lines := 4096
			if o.Quick {
				lines = 1024
			}
			t := trace.NewTable("Heater microbenchmark", "arch", "cold (ns)", "heated (ns)", "speedup")
			for _, prof := range []cache.Profile{cache.SandyBridge, cache.Broadwell, cache.Nehalem} {
				r := workload.RunHCMicro(workload.HCMicroConfig{Profile: prof, Lines: lines})
				t.AddRow(prof.Name, fmt.Sprintf("%.1f", r.ColdNS), fmt.Sprintf("%.1f", r.HeatedNS),
					fmt.Sprintf("%.2fx", r.Speedup))
			}
			return t
		},
	})
}
