package experiments

import (
	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/netmodel"
	"spco/internal/trace"
	"spco/internal/workload"
)

// The hwoffload experiment quantifies the Section 2.2 observation about
// hardware matching (OmniPath PSM2, Atos-Bull BXI, Portals): "Such
// solutions will only benefit from software MPI matching improvements
// when list lengths are longer than that which can be supported in
// hardware." A fixed-capacity hardware unit matches at flat cost; past
// its capacity the software overflow list dominates — and that is
// exactly where the paper's locality work applies.
func init() {
	register(Spec{
		ID:    "hwoffload",
		Title: "Extension: hardware matching offload and its capacity cliff (Section 2.2)",
		Description: "Modified osu_bw with a Portals/BXI-style hardware match unit " +
			"(512 entries) against the software structures: flat and fastest " +
			"below capacity, software-bound above it.",
		Run: func(o Options) Artifact {
			deps := []int{1, 64, 256, 512, 1024, 4096, 8192}
			if o.Quick {
				deps = []int{64, 512, 4096}
			}
			iters := 10
			if o.Quick {
				iters = 2
			}
			variants := []struct {
				name string
				kind matchlist.Kind
				k    int
			}{
				{"baseline", matchlist.KindBaseline, 0},
				{"LLA-8", matchlist.KindLLA, 8},
				{"hw-offload-512", matchlist.KindHWOffload, 0},
			}
			fig := trace.NewFigure("Hardware matching offload, Sandy Bridge, 1 B messages",
				"PRQ search length", "bandwidth (MiBps)")
			for _, v := range variants {
				s := fig.AddSeries(v.name)
				for _, d := range deps {
					r := workload.RunBW(workload.BWConfig{
						Engine: o.instrument(engine.Config{
							Profile:        cache.SandyBridge,
							Kind:           v.kind,
							EntriesPerNode: v.k,
							Bins:           512, // hardware capacity
						}),
						Fabric:     netmodel.IBQDR,
						QueueDepth: d,
						MsgBytes:   1,
						Iters:      iters,
						Observer:   o.Observer,
					})
					s.Add(float64(d), r.BandwidthMiBps)
				}
			}
			return fig
		},
	})
}
