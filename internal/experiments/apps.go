package experiments

import (
	"fmt"
	"math"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/mpi"
	"spco/internal/netmodel"
	"spco/internal/proxyapps"
	"spco/internal/trace"
)

// appWorld builds an mpi.Config for application studies. Per-rank
// hierarchies use two cores (compute + heater); worlds are capped —
// ranks are symmetric, so a capped world with full-scale per-rank load
// reproduces per-rank timing (the capping is recorded in DESIGN.md).
func appWorld(size int, prof cache.Profile, fab netmodel.Fabric, v variant) mpi.Config {
	prof.Cores = 2
	return mpi.Config{
		Size: size,
		Engine: engine.Config{
			Profile:        prof,
			Kind:           v.kind,
			EntriesPerNode: v.k,
			HotCache:       v.hot,
			Pool:           v.pool,
		},
		Fabric: fab,
	}
}

func worldCap(o Options) int {
	if o.Quick {
		return 8
	}
	return 64
}

func appTrials(o Options) int {
	if o.Trials > 0 {
		return o.Trials
	}
	if o.Quick {
		return 1
	}
	return 3
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// meanRuntime averages RunFDS-style modeled runtimes over trials.
func meanRuntime(trials int, run func() float64) float64 {
	var sum float64
	for i := 0; i < trials; i++ {
		sum += run()
	}
	return sum / float64(trials)
}

func init() {
	register(Spec{
		ID:          "fig8",
		Title:       "Fig 8: AMG2013 weak-scaling, Broadwell, baseline vs LLA",
		Description: "Modeled runtime of the AMG proxy at growing rank counts (paper: ~2.9% LLA gain at 1024).",
		Run: func(o Options) Artifact {
			procs := []int{128, 256, 512, 1024}
			cycles := 3
			trials := 8 // the effect is ~2%; scheduling noise needs averaging
			if o.Quick {
				procs = []int{128, 1024}
				cycles = 2
				trials = 1
			}
			if o.Trials > 0 {
				trials = o.Trials
			}
			t := trace.NewTable("AMG2013 scaling (Broadwell)",
				"procs", "baseline (s)", "LLA (s)", "improvement")
			for _, p := range procs {
				world := minInt(p, worldCap(o))
				// Weak scaling: the level count follows the full-scale
				// global problem even in a capped world.
				levels := int(math.Log(float64(p)*16*16*16)/math.Log(8)) - 1
				run := func(v variant) float64 {
					return meanRuntime(trials, func() float64 {
						return proxyapps.RunAMG(proxyapps.AMGConfig{
							World:  appWorld(world, cache.Broadwell, netmodel.OmniPath, v),
							N:      16,
							Levels: levels,
							Cycles: cycles,
						}).RuntimeNS
					})
				}
				base := run(variant{kind: matchlist.KindBaseline})
				lla := run(variant{kind: matchlist.KindLLA, k: 2})
				t.AddRow(p, fmt.Sprintf("%.4f", base/1e9), fmt.Sprintf("%.4f", lla/1e9),
					fmt.Sprintf("%.1f%%", (base-lla)/base*100))
			}
			return t
		},
	})

	register(Spec{
		ID:          "fig9",
		Title:       "Fig 9: MiniFE at 512 processes, varying match-list length, Broadwell",
		Description: "CG-solve proxy with padded receive queues (paper: ~2.3% LLA gain at 2048).",
		Run: func(o Options) Artifact {
			world := minInt(512, worldCap(o))
			iters := 10
			if o.Quick {
				iters = 3
			}
			trials := appTrials(o)
			t := trace.NewTable("MiniFE at 512 processes (Broadwell)",
				"match list length", "baseline (s)", "LLA (s)", "improvement")
			// The paper's 1320^3 problem puts ~4.5M points on each of 512
			// ranks (~22 ms of local work per CG iteration at ~5 ns per
			// point). The proxy's real kernel runs N=8 locally; the
			// modeled per-point cost is scaled so each iteration's
			// compute represents the full-size subdomain.
			const representedPoints = 1320.0 * 1320 * 1320 / 512
			const nsPerPoint = 5.0
			n := 8
			computePerPoint := representedPoints * nsPerPoint / float64(n*n*n)
			for _, pad := range []int{128, 512, 2048} {
				run := func(v variant) float64 {
					return meanRuntime(trials, func() float64 {
						return proxyapps.RunMiniFE(proxyapps.MiniFEConfig{
							World:             appWorld(world, cache.Broadwell, netmodel.OmniPath, v),
							N:                 n,
							Iters:             iters,
							PadDepth:          pad,
							ComputeNSPerPoint: computePerPoint,
						}).RuntimeNS
					})
				}
				base := run(variant{kind: matchlist.KindBaseline})
				lla := run(variant{kind: matchlist.KindLLA, k: 2})
				t.AddRow(pad, fmt.Sprintf("%.4f", base/1e9), fmt.Sprintf("%.4f", lla/1e9),
					fmt.Sprintf("%.1f%%", (base-lla)/base*100))
			}
			return t
		},
	})

	register(Spec{
		ID:          "fig10",
		Title:       "Fig 10: Fire Dynamics Simulator scaling, factor speedup over baseline",
		Description: "FDS proxy; five series: LLA on Broadwell, HC / LLA / HC+LLA on Nehalem, LLA-Large (K=64) on Nehalem.",
		Run: func(o Options) Artifact {
			procs := []int{128, 256, 512, 1024, 2048, 4096, 8192}
			phases := 2
			if o.Quick {
				procs = []int{128, 1024, 4096}
				phases = 1
			}
			world := minInt(8, worldCap(o))
			trials := 1
			if o.Trials > 0 {
				trials = o.Trials
			}

			runFDS := func(prof cache.Profile, fab netmodel.Fabric, v variant, target int) float64 {
				return meanRuntime(trials, func() float64 {
					return proxyapps.RunFDS(proxyapps.FDSConfig{
						World:       appWorld(world, prof, fab, v),
						TargetRanks: target,
						Phases:      phases,
					}).RuntimeNS
				})
			}

			fig := trace.NewFigure("FDS scaling", "process count", "factor speedup over baseline")
			llaBDW := fig.AddSeries("LLA Broadwell")
			hcNEH := fig.AddSeries("HC Nehalem")
			llaNEH := fig.AddSeries("LLA Nehalem")
			hcllaNEH := fig.AddSeries("HC+LLA Nehalem")
			llaLarge := fig.AddSeries("LLA-Large")

			for _, p := range procs {
				// Broadwell: measured to 1024 in the paper.
				if p <= 1024 {
					base := runFDS(cache.Broadwell, netmodel.OmniPath, variant{kind: matchlist.KindBaseline}, p)
					lla := runFDS(cache.Broadwell, netmodel.OmniPath, variant{kind: matchlist.KindLLA, k: 2}, p)
					llaBDW.Add(float64(p), base/lla)
				}
				// Nehalem: HC / LLA / HC+LLA to 4096, LLA-Large to 8192.
				baseN := runFDS(cache.Nehalem, netmodel.MellanoxQDR, variant{kind: matchlist.KindBaseline}, p)
				if p <= 4096 {
					hc := runFDS(cache.Nehalem, netmodel.MellanoxQDR, variant{kind: matchlist.KindBaseline, hot: true}, p)
					lla := runFDS(cache.Nehalem, netmodel.MellanoxQDR, variant{kind: matchlist.KindLLA, k: 2}, p)
					hclla := runFDS(cache.Nehalem, netmodel.MellanoxQDR, variant{kind: matchlist.KindLLA, k: 2, hot: true, pool: true}, p)
					hcNEH.Add(float64(p), baseN/hc)
					llaNEH.Add(float64(p), baseN/lla)
					hcllaNEH.Add(float64(p), baseN/hclla)
				}
				if p >= 1024 {
					large := runFDS(cache.Nehalem, netmodel.MellanoxQDR, variant{kind: matchlist.KindLLA, k: 64}, p)
					llaLarge.Add(float64(p), baseN/large)
				}
			}
			return fig
		},
	})
}
