package experiments

import (
	"fmt"
	"strings"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/matchlist"
	"spco/internal/netmodel"
	"spco/internal/workload"
)

// The chaos experiment: how do the paper's locality structures hold up
// when the wire misbehaves and retransmission traffic hammers the match
// queues? Each scenario runs the seeded chaos harness against a set of
// matchlist kinds, audits the fault-layer invariants, and reports the
// recovery traffic and the goodput cost relative to the clean wire.

// chaosScenario is one named fault regime.
type chaosScenario struct {
	name string
	wire fault.WireConfig
	cap  int // UMQ bound (0: unbounded)
	flow engine.OverflowPolicy
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{name: "clean"},
		{name: "loss-1%", wire: fault.WireConfig{DropProb: 0.01}},
		{name: "chaos-mix", wire: fault.WireConfig{DropProb: 0.01, DupProb: 0.005, ReorderProb: 0.02}},
		{name: "burst", wire: fault.WireConfig{GoodToBad: 0.002, BadToGood: 0.2, BadDropProb: 0.5}},
		{name: "bounded-drop", wire: fault.WireConfig{DropProb: 0.01}, cap: 16, flow: engine.OverflowDrop},
		{name: "bounded-credit", wire: fault.WireConfig{DropProb: 0.01}, cap: 16, flow: engine.OverflowCredit},
		{name: "bounded-rndv", wire: fault.WireConfig{DropProb: 0.01}, cap: 16, flow: engine.OverflowRendezvous},
	}
}

func init() {
	register(Spec{
		ID:    "chaos",
		Title: "Matching under an unreliable wire: recovery traffic, flow control, and invariant audit",
		Description: "Seeded chaos runs per fault scenario and matchlist kind: exactly-once/FIFO/cycle-conservation " +
			"invariants must hold while drops, duplicates, reordering and UMQ bounds inject recovery traffic " +
			"through the real match queues.",
		Run: runChaosExperiment,
	})
}

func runChaosExperiment(o Options) Artifact {
	fab := netmodel.IBQDR
	kinds := []matchlist.Kind{matchlist.KindBaseline, matchlist.KindLLA, matchlist.KindHashBins}
	messages := 20000
	if o.Quick {
		messages = 3000
		kinds = kinds[:2]
	}
	if o.Trials > 0 {
		messages = o.Trials
	}

	scenarios := chaosScenarios()
	seed := uint64(1)
	if o.Fault != nil {
		// -fault-* flags override the sweep with one CLI-defined regime.
		fc := *o.Fault
		var scratch engine.Config
		if err := fc.ApplyEngine(&scratch); err != nil {
			return textArtifact(fmt.Sprintf("chaos: %v", err))
		}
		scenarios = []chaosScenario{{name: "cli", wire: fc.Wire(), cap: scratch.UMQCapacity, flow: scratch.Overflow}}
		seed = fc.Seed
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-10s %9s %7s %7s %7s %7s %10s  %s\n",
		"scenario", "list", "transmit", "retx", "dups", "nacks", "stalls", "sim-ms", "verdict")
	for _, sc := range scenarios {
		for _, kind := range kinds {
			ecfg := o.instrument(engine.Config{
				Profile:        cache.SandyBridge,
				Kind:           kind,
				EntriesPerNode: 2,
				CommSize:       64,
				Bins:           256,
				UMQCapacity:    sc.cap,
				Overflow:       sc.flow,
			})
			res, err := workload.RunChaos(workload.ChaosConfig{
				Engine:     ecfg,
				Fabric:     fab,
				Wire:       sc.wire,
				Seed:       seed,
				Messages:   messages,
				Senders:    8,
				PhaseEvery: 1024,
				PMU:        o.Perf,
			})
			if err != nil {
				return textArtifact(fmt.Sprintf("chaos: %v", err))
			}
			verdict := "PASS"
			if !res.Passed() {
				verdict = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
			}
			ts := res.Transport
			fmt.Fprintf(&b, "%-15s %-10s %9d %7d %7d %7d %7d %10.3f  %s\n",
				sc.name, kind, ts.Transmits, ts.Retransmits, ts.DupSuppressed,
				ts.BusyNacks, ts.CreditStalls, res.SimulatedNS/1e6, verdict)
			for _, v := range res.Violations {
				fmt.Fprintf(&b, "  !! %s\n", v)
			}
		}
	}
	b.WriteString("\nInvariants: exactly-once delivery, per-flow FIFO, cycle conservation, full drain.\n")
	b.WriteString("Same transport counters for every kind is expected: the wire schedule is seed-driven;\n")
	b.WriteString("what differs per kind is the engine's cycle cost of absorbing the recovery traffic.\n")
	return textArtifact(b.String())
}
