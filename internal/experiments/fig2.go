package experiments

import (
	"fmt"
	"strings"

	"spco/internal/match"
)

// fig2 renders the paper's Figure 2 — "Packing data structures into 64
// byte cache lines" — from the live layout constants, so the artifact
// is correct by construction: if the entry layouts drift, this output
// (and the packing tests in internal/match) drift visibly with them.
func init() {
	register(Spec{
		ID:    "fig2",
		Title: "Fig 2: packing match entries into 64-byte cache lines",
		Description: "The PRQ/UMQ node layouts rendered from the implementation's own " +
			"constants: 2 posted entries (24 B each) or 3 unexpected entries (16 B " +
			"each) share one line with the node header and next pointer.",
		Run: func(Options) Artifact {
			var b strings.Builder

			fmt.Fprintf(&b, "Posted-receive node (one %d-byte line, %d entries):\n\n",
				match.NodeBytes(match.PostedPerLine, match.PostedEntryBytes), match.PostedPerLine)
			renderLayout(&b, []segment{
				{"head idx", 4}, {"tail idx", 4},
				{"tag#1", 4}, {"rank#1", 2}, {"ctx#1", 2}, {"tagmask#1", 4}, {"rankmask#1", 4}, {"req ptr#1", 8},
				{"tag#2", 4}, {"rank#2", 2}, {"ctx#2", 2}, {"tagmask#2", 4}, {"rankmask#2", 4}, {"req ptr#2", 8},
				{"next ptr", 8},
			})

			fmt.Fprintf(&b, "\nUnexpected-message node (one %d-byte line, %d entries):\n\n",
				match.NodeBytes(match.UnexpectedPerLine, match.UnexpectedEntryBytes), match.UnexpectedPerLine)
			renderLayout(&b, []segment{
				{"head idx", 4}, {"tail idx", 4},
				{"tag#1", 4}, {"rank#1", 2}, {"ctx#1", 2}, {"msg ptr#1", 8},
				{"tag#2", 4}, {"rank#2", 2}, {"ctx#2", 2}, {"msg ptr#2", 8},
				{"tag#3", 4}, {"rank#3", 2}, {"ctx#3", 2}, {"msg ptr#3", 8},
				{"next ptr", 8},
			})

			fmt.Fprintf(&b, "\nEntry sizes: posted %d B (tag 4, rank 2, ctx 2, masks 8, request 8), "+
				"unexpected %d B (no masks).\n",
				match.PostedEntryBytes, match.UnexpectedEntryBytes)
			fmt.Fprintf(&b, "The exponential K sweep packs %d..%d posted entries per node "+
				"(node sizes 64..784 B).\n", 2, 32)
			return textArtifact(b.String())
		},
	})
}

// segment is one labeled byte range of a node layout.
type segment struct {
	label string
	bytes int
}

// renderLayout prints an offset-annotated map of the segments and
// panics (failing the artifact loudly) if they do not total a line.
func renderLayout(b *strings.Builder, segs []segment) {
	total := 0
	fmt.Fprintf(b, "  offset  bytes  field\n")
	fmt.Fprintf(b, "  ------  -----  -----\n")
	for _, s := range segs {
		fmt.Fprintf(b, "  %6d  %5d  %s\n", total, s.bytes, s.label)
		total += s.bytes
	}
	if total != 64 {
		panic(fmt.Sprintf("experiments: fig2 layout totals %d bytes, want 64", total))
	}
	fmt.Fprintf(b, "  ------  -----\n  %6d bytes: exactly one cache line\n", total)
}
