// Package mpi is a miniature message-passing runtime: MPI essentials
// (ranks, tags, wildcards, blocking and nonblocking send/receive,
// Sendrecv/Waitall, communicators via CommSplit, binomial-tree
// collectives, barrier, allreduce) over in-process goroutine ranks.
//
// Its purpose is to let the proxy applications (internal/proxyapps) and
// the examples exercise the matching engine end-to-end: every rank owns
// an engine.Engine, every incoming message walks the rank's posted
// receive queue through the cache simulator, and every operation
// advances the rank's virtual clock by its modeled cost (engine cycles
// plus LogGP fabric terms). Application "runtime" is the maximum rank
// clock, synchronised at barriers like the bulk-synchronous codes the
// paper studies.
//
// Concurrency is real: ranks run as goroutines and message arrival
// order is scheduler-dependent, which supplies the nondeterministic
// match-list interleavings multithreaded MPI produces (Section 2.3).
// Runs are therefore averaged over trials, as the paper's application
// results are.
//
// The transport is eager by default: sends buffer at the receiver
// immediately and complete at once. Setting Config.EagerThresholdBytes
// switches larger messages to a rendezvous protocol whose RTS envelope
// still traverses the matching engine and whose payload wire time is
// paid on the completion path.
package mpi

import (
	"fmt"
	"math"
	"sync"

	"spco/internal/engine"
	"spco/internal/match"
	"spco/internal/netmodel"
)

// AnySource and AnyTag re-export the matching wildcards.
const (
	AnySource = match.AnySource
	AnyTag    = match.AnyTag
)

// worldCtx is the context id every world communicator uses (a full
// communicator layer is unnecessary for the proxies; the matching
// engine itself is communicator-aware and unit-tested with many).
const worldCtx uint16 = 1

// Config describes a world.
type Config struct {
	// Size is the number of ranks.
	Size int

	// Engine is the per-rank engine template (structure kind, K, hot
	// caching, architecture profile).
	Engine engine.Config

	// Fabric provides the network cost terms.
	Fabric netmodel.Fabric

	// Observer, when set, is called once per rank at world construction
	// and may return an engine.Observer to attach to that rank's engine
	// (nil attaches nothing). The mtrace recorder uses this to capture
	// replayable traces from application runs.
	Observer func(rank int) engine.Observer

	// EagerThresholdBytes switches messages larger than this to the
	// rendezvous protocol: the sender's RTS (a header-only envelope)
	// goes through the receiver's matching engine, and the payload's
	// wire time starts only after the match — one extra round trip plus
	// serialization on the completion path, as in real MPI rendezvous.
	// Zero keeps every message eager (the default; the paper's
	// microbenchmark calibrations assume eager delivery).
	EagerThresholdBytes int
}

// World is a set of in-process ranks.
type World struct {
	cfg   Config
	procs []*Proc
	bar   *barrier
}

// NewWorld builds a world of cfg.Size ranks, each with its own engine.
func NewWorld(cfg Config) *World {
	if cfg.Size <= 0 {
		panic("mpi: world size must be positive")
	}
	if cfg.Fabric.BandwidthBps == 0 {
		cfg.Fabric = netmodel.IBQDR
	}
	w := &World{cfg: cfg, bar: newBarrier(cfg.Size)}
	w.procs = make([]*Proc, cfg.Size)
	for r := 0; r < cfg.Size; r++ {
		ecfg := cfg.Engine
		ecfg.CommSize = cfg.Size
		w.procs[r] = &Proc{
			w:        w,
			rank:     r,
			en:       engine.MustNew(ecfg),
			requests: make(map[uint64]*Request),
			umqData:  make(map[uint64]packet),
			nextReq:  1,
			nextMsg:  1,
		}
		if cfg.Observer != nil {
			if o := cfg.Observer(r); o != nil {
				w.procs[r].en.SetObserver(o)
			}
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.cfg.Size }

// Run executes f once per rank, concurrently, and returns when all
// ranks finish. It may be called repeatedly; virtual clocks persist.
func (w *World) Run(f func(p *Proc)) {
	var wg sync.WaitGroup
	for _, p := range w.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			f(p)
		}(p)
	}
	wg.Wait()
}

// MaxTimeNS returns the largest rank clock — the modeled runtime.
func (w *World) MaxTimeNS() float64 {
	max := 0.0
	for _, p := range w.procs {
		if p.now > max {
			max = p.now
		}
	}
	return max
}

// Proc returns the rank's process handle (for inspection in tests).
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// EngineStats sums engine statistics over all ranks.
func (w *World) EngineStats() engine.Stats {
	var tot engine.Stats
	for _, p := range w.procs {
		s := p.en.Stats()
		tot.Arrivals += s.Arrivals
		tot.Posts += s.Posts
		tot.Recvs += s.Recvs
		tot.PRQMatches += s.PRQMatches
		tot.UMQMatches += s.UMQMatches
		tot.UMQAppends += s.UMQAppends
		tot.PRQDepthTotal += s.PRQDepthTotal
		tot.UMQDepthTotal += s.UMQDepthTotal
		tot.Cycles += s.Cycles
		tot.SyncCycles += s.SyncCycles
		if s.MaxPRQLen > tot.MaxPRQLen {
			tot.MaxPRQLen = s.MaxPRQLen
		}
		if s.MaxUMQLen > tot.MaxUMQLen {
			tot.MaxUMQLen = s.MaxUMQLen
		}
	}
	return tot
}

// packet is one in-flight message. Eager packets carry their wire time
// in arriveNS; rendezvous packets arrive as header-only RTS envelopes
// whose payload transfer is priced at match time.
type packet struct {
	env      match.Envelope
	data     []byte
	arriveNS float64
	rndz     bool
}

// Request is a nonblocking operation handle.
type Request struct {
	id      uint64
	done    bool
	data    []byte
	readyNS float64 // rendezvous completion time (0 for eager)
}

// Proc is one rank.
type Proc struct {
	w    *World
	rank int
	en   *engine.Engine
	now  float64 // virtual clock, ns

	mbox     mailbox
	requests map[uint64]*Request
	umqData  map[uint64]packet
	nextReq  uint64
	nextMsg  uint64
}

// Rank returns this process's rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.w.cfg.Size }

// NowNS returns the rank's virtual clock.
func (p *Proc) NowNS() float64 { return p.now }

// Engine exposes the rank's matching engine (tests, diagnostics).
func (p *Proc) Engine() *engine.Engine { return p.en }

func (p *Proc) chargeCycles(cy uint64) {
	p.now += p.w.cfg.Engine.Profile.CyclesToNanos(cy)
}

// Send delivers data to dst with the given tag (eager; completes
// immediately). The payload is copied.
func (p *Proc) Send(dst, tag int, data []byte) {
	p.sendCtx(dst, tag, worldCtx, data)
}

// sendCtx is Send under an explicit communicator context.
func (p *Proc) sendCtx(dst, tag int, ctx uint16, data []byte) {
	if dst < 0 || dst >= p.w.cfg.Size {
		panic(fmt.Sprintf("mpi: send to rank %d of %d", dst, p.w.cfg.Size))
	}
	fab := p.w.cfg.Fabric
	p.now += fab.OverheadNS / 2
	buf := make([]byte, len(data))
	copy(buf, data)
	pkt := packet{
		env:  match.Envelope{Rank: int32(p.rank), Tag: int32(tag), Ctx: ctx},
		data: buf,
	}
	thresh := p.w.cfg.EagerThresholdBytes
	if thresh > 0 && len(data) > thresh {
		// Rendezvous: only the RTS header travels now.
		pkt.rndz = true
		pkt.arriveNS = p.now + fab.LatencyNS
	} else {
		pkt.arriveNS = p.now + fab.LatencyNS + fab.SerializationNS(uint64(len(data)))
	}
	p.w.procs[dst].mbox.put(pkt)
}

// rndzReadyNS prices a rendezvous payload transfer completed after the
// match at matchNS: CTS back to the sender, then the payload's wire
// time.
func (p *Proc) rndzReadyNS(matchNS float64, bytes int) float64 {
	fab := p.w.cfg.Fabric
	return matchNS + 2*fab.LatencyNS + fab.SerializationNS(uint64(bytes))
}

// Irecv posts a nonblocking receive. src may be AnySource, tag AnyTag.
func (p *Proc) Irecv(src, tag int) *Request {
	return p.irecvCtx(src, tag, worldCtx)
}

// irecvCtx is Irecv under an explicit communicator context.
func (p *Proc) irecvCtx(src, tag int, ctx uint16) *Request {
	r := &Request{id: p.nextReq}
	p.nextReq++
	msg, matched, cy := p.en.PostRecv(src, tag, ctx, r.id)
	p.chargeCycles(cy)
	if matched {
		pkt := p.umqData[msg]
		delete(p.umqData, msg)
		r.done = true
		r.data = pkt.data
		if pkt.rndz {
			base := p.now
			if pkt.arriveNS > base {
				base = pkt.arriveNS
			}
			r.readyNS = p.rndzReadyNS(base, len(pkt.data))
		}
		return r
	}
	p.requests[r.id] = r
	return r
}

// Wait blocks until the request completes, processing arrivals
// meanwhile, and returns the received payload. Rendezvous payloads
// finish at their transfer-completion time.
func (p *Proc) Wait(r *Request) []byte {
	for !r.done {
		p.processOne(true)
	}
	if r.readyNS > p.now {
		p.now = r.readyNS
	}
	p.now += p.w.cfg.Fabric.OverheadNS / 2
	return r.data
}

// Recv is Irecv+Wait.
func (p *Proc) Recv(src, tag int) []byte {
	return p.Wait(p.Irecv(src, tag))
}

// Waitall completes every request and returns the payloads in order.
func (p *Proc) Waitall(reqs []*Request) [][]byte {
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		out[i] = p.Wait(r)
	}
	return out
}

// Sendrecv posts the receive, performs the send, and completes the
// receive — the deadlock-free exchange idiom of halo codes.
func (p *Proc) Sendrecv(dst, sendTag int, data []byte, src, recvTag int) []byte {
	r := p.Irecv(src, recvTag)
	p.Send(dst, sendTag, data)
	return p.Wait(r)
}

// Probe processes any already-delivered arrivals without blocking
// (an MPI_Iprobe-ish progress hook for overlap patterns).
func (p *Proc) Probe() {
	for p.processOne(false) {
	}
}

// ProgressN processes up to n inbound packets, blocking until at least
// one is available, and returns the number processed. Callers use it to
// pace arrival processing explicitly (e.g. interleaving compute with
// communication bursts); they must know at least one more message is
// outstanding or ProgressN will block forever.
func (p *Proc) ProgressN(n int) int {
	if n <= 0 {
		return 0
	}
	count := 0
	if p.processOne(true) {
		count++
	}
	for count < n && p.processOne(false) {
		count++
	}
	return count
}

// processOne handles one inbound packet; with block set it waits for
// one. It reports whether a packet was processed.
func (p *Proc) processOne(block bool) bool {
	pkt, ok := p.mbox.take(block)
	if !ok {
		return false
	}
	if pkt.arriveNS > p.now {
		p.now = pkt.arriveNS
	}
	msgID := p.nextMsg
	p.nextMsg++
	req, matched, cy := p.en.Arrive(pkt.env, msgID)
	p.chargeCycles(cy)
	if matched {
		r := p.requests[req]
		if r == nil {
			panic("mpi: matched an unknown request")
		}
		delete(p.requests, req)
		r.done = true
		r.data = pkt.data
		if pkt.rndz {
			r.readyNS = p.rndzReadyNS(p.now, len(pkt.data))
		}
	} else {
		p.umqData[msgID] = pkt
	}
	return true
}

// Compute models a compute phase: the clock advances and the caches
// turn over (with the heater re-warming the match queues, when
// configured).
func (p *Proc) Compute(ns float64) {
	p.now += ns
	p.en.BeginComputePhase(ns)
}

// Barrier synchronises all ranks; clocks advance to the slowest rank
// plus a dissemination-barrier cost of log2(P) rounds.
func (p *Proc) Barrier() {
	fab := p.w.cfg.Fabric
	rounds := math.Ceil(math.Log2(float64(p.w.cfg.Size)))
	t := p.w.bar.sync(p.now)
	p.now = t + rounds*(fab.LatencyNS+fab.OverheadNS)
}

// Allreduce sums each position of vals across ranks; every rank gets
// the result. Clocks synchronise as in Barrier with doubled rounds
// (reduce + broadcast).
func (p *Proc) Allreduce(vals []float64) []float64 {
	fab := p.w.cfg.Fabric
	rounds := math.Ceil(math.Log2(float64(p.w.cfg.Size)))
	out := p.w.bar.reduce(p.now, vals)
	p.now = out.t + 2*rounds*(fab.LatencyNS+fab.OverheadNS)
	return out.vals
}

// mailbox is an unbounded blocking FIFO.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []packet
}

func (m *mailbox) put(pkt packet) {
	m.mu.Lock()
	if m.cond == nil {
		m.cond = sync.NewCond(&m.mu)
	}
	m.q = append(m.q, pkt)
	m.cond.Signal()
	m.mu.Unlock()
}

func (m *mailbox) take(block bool) (packet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cond == nil {
		m.cond = sync.NewCond(&m.mu)
	}
	for len(m.q) == 0 {
		if !block {
			return packet{}, false
		}
		m.cond.Wait()
	}
	pkt := m.q[0]
	m.q = m.q[1:]
	return pkt, true
}

// barrier implements a reusable all-rank rendezvous carrying virtual
// times and reduction values.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
	tMax  float64
	vals  []float64
	out   reduceOut
}

type reduceOut struct {
	t    float64
	vals []float64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// sync blocks until all n ranks arrive and returns the maximum time.
func (b *barrier) sync(t float64) float64 {
	out := b.reduce(t, nil)
	return out.t
}

// reduce folds vals (elementwise sum; nil allowed) across all ranks.
func (b *barrier) reduce(t float64, vals []float64) reduceOut {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	if t > b.tMax {
		b.tMax = t
	}
	if vals != nil {
		if b.vals == nil {
			b.vals = make([]float64, len(vals))
		}
		for i, v := range vals {
			b.vals[i] += v
		}
	}
	b.count++
	if b.count == b.n {
		// Last arrival: publish and open the next generation.
		b.out = reduceOut{t: b.tMax, vals: b.vals}
		b.count = 0
		b.tMax = 0
		b.vals = nil
		b.gen++
		b.cond.Broadcast()
		return b.out
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	return b.out
}
