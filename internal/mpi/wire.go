package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// The socket wire format: the mini-MPI transport's envelope semantics
// over real TCP connections, used by the spco daemon and its clients.
//
// In-process worlds (World/Proc) move packets through goroutine
// mailboxes; a daemon moves the same matching operations through framed
// binary messages instead. Frames are fixed-size and request-response:
// every WireOp a client writes earns exactly one WireReply, in order,
// so a connection is a serial stream of matching operations — the same
// discipline a NIC command queue gives real MPI matching offload.
//
// The codec is deliberately dependency-free (encoding/binary over
// bufio) and versioned by a handshake: a connecting client sends
// WireMagic+WireVersion, the server echoes it, and both sides refuse a
// mismatch, so a stale client fails fast instead of misparsing frames.

// WireMagic identifies the protocol; WireVersion its revision.
// Version 2 widened WireOp with the causal-trace context (trace id +
// parent span id) so a timeline minted client-side survives the hop
// into the daemon's flight recorder. Version 3 added the batch frame:
// a WireBatch marker followed by a count and that many op frames, so a
// client amortizes one flush and one server wakeup over N operations.
// Version 4 added crash-safe sessions: the handshake carries a session
// mode + id + last-acked sequence number (WireHello/WireWelcome), and
// every op frame carries a per-session sequence number (WireOp.Seq) the
// server journals and dedups, so a client that reconnects — to the
// same process or to a restarted one recovering from its journal —
// re-sends only the unacknowledged gap and still gets exactly-once.
const (
	WireMagic   uint32 = 0x53_50_43_4F // "SPCO"
	WireVersion uint16 = 4
)

// Wire op kinds (client → server).
const (
	// WireArrive delivers an envelope to the daemon's engine, as an
	// incoming message off the fabric: Rank/Tag/Ctx match fields, Handle
	// the sender-chosen message id returned on the eventual match.
	WireArrive byte = iota + 1

	// WirePost posts a receive: Rank/Tag/Ctx (wildcards allowed), Handle
	// the request id returned on the eventual match.
	WirePost

	// WirePhase runs a compute phase of DurationNS on the daemon engine
	// (cache flush + heater resweep), the cadence the paper's occupancy
	// claim is about.
	WirePhase

	// WireStat asks for current queue depths (reply carries PRQ/UMQ
	// lengths).
	WireStat

	// WirePing is a no-op round trip (liveness, latency probes).
	WirePing
)

// WireBatch marks a v3 batch frame. It is a frame discriminator, not an
// op kind: it never appears in WireOp.Kind (ReadWireOp rejects it), and
// a batch frame's payload is plain op frames. Each batched op earns one
// WireReply, in op order, exactly as if sent scalar.
const WireBatch byte = 6

// MaxWireBatch bounds the ops one batch frame may carry, so a corrupt
// or hostile count cannot make the server buffer unbounded input.
const MaxWireBatch = 4096

// Wire reply statuses.
const (
	// WireOK: the operation was applied; Outcome/Handle/Cycles are valid.
	WireOK byte = iota

	// WireNack: the daemon's ingress fault injection dropped or corrupted
	// the frame before it reached the engine; the client must retransmit
	// (the daemon's analogue of the fault transport's lossy wire).
	WireNack

	// WireBusy: the engine refused the arrival (bounded UMQ under the
	// drop/credit policies); retransmit after backoff.
	WireBusy

	// WireErr: malformed or unknown op; the server closes the connection.
	WireErr
)

// Arrive outcomes carried in WireReply.Outcome (mirrors
// engine.ArriveOutcome; redeclared so the codec stays a leaf package).
const (
	WireOutMatched byte = iota
	WireOutQueued
	WireOutQueuedRendezvous
	WireOutRefused
)

// WireOp is one client request frame.
type WireOp struct {
	Kind       byte
	Rank       int32
	Tag        int32
	Ctx        uint16
	Handle     uint64  // msg id (arrive) or req id (post)
	DurationNS float64 // phase length (WirePhase only)

	// Trace/Span carry the client-minted causal-trace context
	// (internal/ctrace); zero means untraced. The daemon adopts the
	// trace into its flight recorder and parents its spans under Span.
	Trace uint64
	Span  uint64

	// Seq is the op's per-session sequence number (v4): zero for
	// unsequenced ops (ephemeral connections, and read-only Stat/Ping
	// even on a session). A sequenced op is journaled under its seq
	// before the reply goes out, and a re-sent seq whose reply the
	// server still holds is answered from that reply ring instead of
	// being applied again — the dedup that keeps exactly-once across
	// reconnects and daemon restarts.
	Seq uint64
}

// WireReply is one server response frame.
type WireReply struct {
	Kind    byte // echoes the op kind
	Status  byte
	Outcome byte   // arrive outcome; for posts 1 = matched from UMQ
	Handle  uint64 // matched counterpart (req for arrive, msg for post)
	Cycles  uint64 // modeled engine cycles charged to the operation
	PRQLen  uint32 // WireStat only
	UMQLen  uint32 // WireStat only

	// Credits advertises the server's per-connection backpressure
	// window: the number of operations the client may have in flight
	// (sent but unreplied) on this connection. Zero means no window is
	// enforced — the value servers without windowing have always written
	// into these (previously reserved) bytes, so the field needs no
	// version bump. An op the server refuses for exceeding the window
	// earns a WireBusy reply; the client retransmits after draining its
	// pipeline, as it does for a bounded-UMQ refusal.
	Credits uint16
}

// Frame sizes (fixed): ops are 51 bytes (v2: +16 for trace context,
// v4: +8 for the session sequence number), replies 29 (the trailing 2
// bytes, reserved until the backpressure window, carry Credits).
const (
	wireOpSize    = 1 + 4 + 4 + 2 + 8 + 8 + 8 + 8 + 8
	wireReplySize = 1 + 1 + 1 + 8 + 8 + 4 + 4 + 2
)

// WireOpSize is the fixed op frame length, exported for codecs that
// embed op frames in their own records (the daemon's op journal).
const WireOpSize = wireOpSize

// WriteWireOp writes one request frame.
func WriteWireOp(w io.Writer, op WireOp) error {
	var b [wireOpSize]byte
	b[0] = op.Kind
	binary.BigEndian.PutUint32(b[1:5], uint32(op.Rank))
	binary.BigEndian.PutUint32(b[5:9], uint32(op.Tag))
	binary.BigEndian.PutUint16(b[9:11], op.Ctx)
	binary.BigEndian.PutUint64(b[11:19], op.Handle)
	binary.BigEndian.PutUint64(b[19:27], math.Float64bits(op.DurationNS))
	binary.BigEndian.PutUint64(b[27:35], op.Trace)
	binary.BigEndian.PutUint64(b[35:43], op.Span)
	binary.BigEndian.PutUint64(b[43:51], op.Seq)
	_, err := w.Write(b[:])
	return err
}

// ReadWireOp reads one request frame.
func ReadWireOp(r io.Reader) (WireOp, error) {
	var b [wireOpSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return WireOp{}, err
	}
	op := WireOp{
		Kind:       b[0],
		Rank:       int32(binary.BigEndian.Uint32(b[1:5])),
		Tag:        int32(binary.BigEndian.Uint32(b[5:9])),
		Ctx:        binary.BigEndian.Uint16(b[9:11]),
		Handle:     binary.BigEndian.Uint64(b[11:19]),
		DurationNS: math.Float64frombits(binary.BigEndian.Uint64(b[19:27])),
		Trace:      binary.BigEndian.Uint64(b[27:35]),
		Span:       binary.BigEndian.Uint64(b[35:43]),
		Seq:        binary.BigEndian.Uint64(b[43:51]),
	}
	if op.Kind < WireArrive || op.Kind > WirePing {
		return op, fmt.Errorf("mpi: unknown wire op kind %d", op.Kind)
	}
	return op, nil
}

// WriteWireReply writes one response frame.
func WriteWireReply(w io.Writer, rep WireReply) error {
	var b [wireReplySize]byte
	b[0] = rep.Kind
	b[1] = rep.Status
	b[2] = rep.Outcome
	binary.BigEndian.PutUint64(b[3:11], rep.Handle)
	binary.BigEndian.PutUint64(b[11:19], rep.Cycles)
	binary.BigEndian.PutUint32(b[19:23], rep.PRQLen)
	binary.BigEndian.PutUint32(b[23:27], rep.UMQLen)
	binary.BigEndian.PutUint16(b[27:29], rep.Credits)
	_, err := w.Write(b[:])
	return err
}

// ReadWireReply reads one response frame.
func ReadWireReply(r io.Reader) (WireReply, error) {
	var b [wireReplySize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return WireReply{}, err
	}
	return WireReply{
		Kind:    b[0],
		Status:  b[1],
		Outcome: b[2],
		Handle:  binary.BigEndian.Uint64(b[3:11]),
		Cycles:  binary.BigEndian.Uint64(b[11:19]),
		PRQLen:  binary.BigEndian.Uint32(b[19:23]),
		UMQLen:  binary.BigEndian.Uint32(b[23:27]),
		Credits: binary.BigEndian.Uint16(b[27:29]),
	}, nil
}

// wireBatchHeaderSize is the batch frame header: the WireBatch marker
// plus a big-endian uint32 op count.
const wireBatchHeaderSize = 1 + 4

// ErrBatchTruncated marks a batch frame that announced N ops but whose
// payload (or header) ended early. Distinguishing it from a plain EOF
// matters to the server: a connection that closes *between* frames is a
// clean departure, but one that dies *inside* a frame it promised is a
// protocol error the server answers with a single WireErr reply before
// closing. errors.Is(err, io.ErrUnexpectedEOF) still holds on the
// wrapped error.
var ErrBatchTruncated = errors.New("mpi: batch frame truncated")

// WriteWireBatch writes one batch frame: header, then len(ops) op
// frames back to back. The caller still owns flushing.
func WriteWireBatch(w io.Writer, ops []WireOp) error {
	if len(ops) == 0 || len(ops) > MaxWireBatch {
		return fmt.Errorf("mpi: batch of %d ops (want 1..%d)", len(ops), MaxWireBatch)
	}
	var h [wireBatchHeaderSize]byte
	h[0] = WireBatch
	binary.BigEndian.PutUint32(h[1:5], uint32(len(ops)))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	for i := range ops {
		if err := WriteWireOp(w, ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadWireFrame reads the next frame — a single op or a v3 batch —
// appending the decoded ops to buf[:0] and returning the result along
// with whether the frame was a batch. Passing a buf with capacity
// MaxWireBatch keeps steady-state reads allocation-free.
func ReadWireFrame(br *bufio.Reader, buf []WireOp) ([]WireOp, bool, error) {
	first, err := br.Peek(1)
	if err != nil {
		return buf[:0], false, err
	}
	buf = buf[:0]
	if first[0] != WireBatch {
		op, err := ReadWireOp(br)
		if err != nil {
			return buf, false, err
		}
		return append(buf, op), false, nil
	}
	var h [wireBatchHeaderSize]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		return buf, true, wrapBatchEOF(err)
	}
	n := binary.BigEndian.Uint32(h[1:5])
	if n == 0 || n > MaxWireBatch {
		return buf, true, fmt.Errorf("mpi: batch count %d (want 1..%d)", n, MaxWireBatch)
	}
	for i := uint32(0); i < n; i++ {
		op, err := ReadWireOp(br)
		if err != nil {
			return buf, true, wrapBatchEOF(err)
		}
		buf = append(buf, op)
	}
	return buf, true, nil
}

// wrapBatchEOF tags an EOF seen mid-batch as ErrBatchTruncated: the
// frame header promised more bytes than the stream delivered. Other
// errors (bad op kind, I/O faults) pass through unchanged.
func wrapBatchEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %w", ErrBatchTruncated, io.ErrUnexpectedEOF)
	}
	return err
}

// Session handshake modes (client hello, v4).
const (
	// WireSessEphemeral opens a plain connection: no session, no
	// sequence numbers, exactly the pre-v4 behaviour.
	WireSessEphemeral byte = iota

	// WireSessNew asks the server to mint a session: the welcome carries
	// the assigned id, and the client stamps Seq on every mutating op.
	WireSessNew

	// WireSessResume presents an existing session id plus the highest
	// sequence number the client holds a reply for; the server answers
	// with its own high-water mark and the client re-sends only the gap.
	WireSessResume
)

// Session handshake statuses (server welcome, v4).
const (
	// WireWelcomeEphemeral confirms a plain connection.
	WireWelcomeEphemeral byte = iota

	// WireWelcomeNew confirms a freshly minted session (Welcome.Session
	// carries the id).
	WireWelcomeNew

	// WireWelcomeResumed confirms a resumed session; Welcome.HighWater is
	// the server's highest journaled/applied sequence number.
	WireWelcomeResumed

	// WireWelcomeLost rejects a resume: the server has no record of the
	// session (restarted without a journal, or the state is gone). A
	// client with unacknowledged ops cannot guarantee exactly-once and
	// must fail; one with none may start a new session.
	WireWelcomeLost
)

// WireHello is the client half of the v4 handshake.
type WireHello struct {
	Mode      byte   // WireSessEphemeral, WireSessNew, WireSessResume
	Session   uint64 // session id (WireSessResume only)
	LastAcked uint64 // highest seq the client holds a reply for
}

// WireWelcome is the server half of the v4 handshake.
type WireWelcome struct {
	Status    byte   // WireWelcome* above
	Session   uint64 // the session id in force (0 when ephemeral)
	HighWater uint64 // server's highest applied seq (resume only)
}

// wireHelloSize covers both handshake directions: magic + version +
// mode/status byte + two u64s.
const wireHelloSize = 4 + 2 + 1 + 8 + 8

// WriteWireHello sends the client handshake.
func WriteWireHello(w io.Writer, h WireHello) error {
	var b [wireHelloSize]byte
	binary.BigEndian.PutUint32(b[0:4], WireMagic)
	binary.BigEndian.PutUint16(b[4:6], WireVersion)
	b[6] = h.Mode
	binary.BigEndian.PutUint64(b[7:15], h.Session)
	binary.BigEndian.PutUint64(b[15:23], h.LastAcked)
	_, err := w.Write(b[:])
	return err
}

// ReadWireHello validates and decodes the client handshake.
func ReadWireHello(r io.Reader) (WireHello, error) {
	var b [wireHelloSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return WireHello{}, err
	}
	if err := checkMagic(b[:]); err != nil {
		return WireHello{}, err
	}
	h := WireHello{
		Mode:      b[6],
		Session:   binary.BigEndian.Uint64(b[7:15]),
		LastAcked: binary.BigEndian.Uint64(b[15:23]),
	}
	if h.Mode > WireSessResume {
		return h, fmt.Errorf("mpi: unknown session mode %d", h.Mode)
	}
	return h, nil
}

// WriteWireWelcome sends the server handshake.
func WriteWireWelcome(w io.Writer, wl WireWelcome) error {
	var b [wireHelloSize]byte
	binary.BigEndian.PutUint32(b[0:4], WireMagic)
	binary.BigEndian.PutUint16(b[4:6], WireVersion)
	b[6] = wl.Status
	binary.BigEndian.PutUint64(b[7:15], wl.Session)
	binary.BigEndian.PutUint64(b[15:23], wl.HighWater)
	_, err := w.Write(b[:])
	return err
}

// ReadWireWelcome validates and decodes the server handshake.
func ReadWireWelcome(r io.Reader) (WireWelcome, error) {
	var b [wireHelloSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return WireWelcome{}, err
	}
	if err := checkMagic(b[:]); err != nil {
		return WireWelcome{}, err
	}
	wl := WireWelcome{
		Status:    b[6],
		Session:   binary.BigEndian.Uint64(b[7:15]),
		HighWater: binary.BigEndian.Uint64(b[15:23]),
	}
	if wl.Status > WireWelcomeLost {
		return wl, fmt.Errorf("mpi: unknown welcome status %d", wl.Status)
	}
	return wl, nil
}

// checkMagic validates the shared magic+version prefix of a handshake.
func checkMagic(b []byte) error {
	if m := binary.BigEndian.Uint32(b[0:4]); m != WireMagic {
		return fmt.Errorf("mpi: bad wire magic %#x", m)
	}
	if v := binary.BigEndian.Uint16(b[4:6]); v != WireVersion {
		return fmt.Errorf("mpi: wire version %d, want %d", v, WireVersion)
	}
	return nil
}
