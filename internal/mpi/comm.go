package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"spco/internal/match"
)

// Comm scopes point-to-point operations and collectives to a
// communicator: a context id isolating its matching traffic (the engine
// matches on (source, tag, context), Section 2.1) and a member group
// with its own rank numbering.
type Comm struct {
	p       *Proc
	ctx     uint16
	members []int // world ranks, ascending; local rank = index
	rank    int   // this process's rank within members
	collSeq uint64
}

// World returns the all-ranks communicator (context 1).
func (p *Proc) World() *Comm {
	members := make([]int, p.w.cfg.Size)
	for i := range members {
		members[i] = i
	}
	return &Comm{p: p, ctx: worldCtx, members: members, rank: p.rank}
}

// CommSplit partitions the world by color, as MPI_Comm_split does:
// every rank calls it (collectively) with its color; ranks sharing a
// color form a new communicator whose context id is derived from the
// color, ordered by world rank. Colors must be in [0, 60000).
func (p *Proc) CommSplit(color int) *Comm {
	if color < 0 || color >= 60000 {
		panic(fmt.Sprintf("mpi: color %d out of range", color))
	}
	// Exchange colors through the rendezvous: each rank contributes its
	// color at its own index; the sum is the full color vector.
	vec := make([]float64, p.w.cfg.Size)
	vec[p.rank] = float64(color + 1)
	all := p.Allreduce(vec)

	var members []int
	for r, c := range all {
		if int(c)-1 == color {
			members = append(members, r)
		}
	}
	sort.Ints(members)
	rank := -1
	for i, r := range members {
		if r == p.rank {
			rank = i
		}
	}
	if rank < 0 {
		panic("mpi: splitting rank not in its own color group")
	}
	// Context ids: 1 is the world; split communicators start at 2.
	ctx := uint16(2 + color)
	if ctx == match.InvalidCtx {
		panic("mpi: context id collides with the invalid sentinel")
	}
	return &Comm{p: p, ctx: ctx, members: members, rank: rank}
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator's member count.
func (c *Comm) Size() int { return len(c.members) }

// Ctx exposes the communicator's matching context id.
func (c *Comm) Ctx() uint16 { return c.ctx }

// world translates a communicator rank to a world rank.
func (c *Comm) world(rank int) int {
	if rank < 0 || rank >= len(c.members) {
		panic(fmt.Sprintf("mpi: rank %d outside communicator of size %d", rank, len(c.members)))
	}
	return c.members[rank]
}

// Send delivers data to the communicator rank dst under this context.
func (c *Comm) Send(dst, tag int, data []byte) {
	c.p.sendCtx(c.world(dst), tag, c.ctx, data)
}

// Irecv posts a receive scoped to this communicator. src may be
// AnySource (any member), tag AnyTag.
func (c *Comm) Irecv(src, tag int) *Request {
	worldSrc := src
	if src != AnySource {
		worldSrc = c.world(src)
	}
	return c.p.irecvCtx(worldSrc, tag, c.ctx)
}

// Recv is Irecv+Wait.
func (c *Comm) Recv(src, tag int) []byte {
	return c.p.Wait(c.Irecv(src, tag))
}

// Wait delegates to the owning process.
func (c *Comm) Wait(r *Request) []byte { return c.p.Wait(r) }

// collTag returns a fresh tag in the reserved collective space; the
// sequence advances identically on every member because collectives are
// called collectively and in order.
const collTagBase = 1 << 21

func (c *Comm) collTag() int {
	t := collTagBase + int(c.collSeq)
	c.collSeq++
	return t
}

// Bcast distributes root's data to every member through a binomial
// tree of real point-to-point messages — each hop traverses the
// receiving rank's matching engine, unlike the analytic Proc.Barrier /
// Proc.Allreduce used by the proxy applications.
func (c *Comm) Bcast(root int, data []byte) []byte {
	n := len(c.members)
	tag := c.collTag()
	if n == 1 {
		out := make([]byte, len(data))
		copy(out, data)
		return out
	}
	vr := (c.rank - root + n) % n

	mask := 1
	for ; mask < n; mask <<= 1 {
		if vr&mask != 0 {
			src := (c.rank - mask + n) % n
			data = c.Recv(src, tag)
			break
		}
	}
	mask >>= 1
	for ; mask > 0; mask >>= 1 {
		if vr+mask < n {
			dst := (c.rank + mask) % n
			c.Send(dst, tag, data)
		}
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// Reduce sums vals elementwise onto root through a binomial tree;
// only root's return value is meaningful.
func (c *Comm) Reduce(root int, vals []float64) []float64 {
	n := len(c.members)
	tag := c.collTag()
	acc := append([]float64(nil), vals...)
	if n == 1 {
		return acc
	}
	vr := (c.rank - root + n) % n

	for mask := 1; mask < n; mask <<= 1 {
		if vr&mask == 0 {
			srcVr := vr | mask
			if srcVr < n {
				src := (srcVr + root) % n
				part := decodeF64(c.Recv(src, tag))
				for i := range acc {
					acc[i] += part[i]
				}
			}
		} else {
			dstVr := vr &^ mask
			dst := (dstVr + root) % n
			c.Send(dst, tag, encodeF64(acc))
			break
		}
	}
	return acc
}

// Allreduce is Reduce to member 0 followed by Bcast.
func (c *Comm) Allreduce(vals []float64) []float64 {
	acc := c.Reduce(0, vals)
	var buf []byte
	if c.rank == 0 {
		buf = encodeF64(acc)
	}
	return decodeF64(c.Bcast(0, buf))
}

// Barrier synchronises the members with an empty Allreduce: every rank
// provably communicates (transitively) with every other.
func (c *Comm) Barrier() {
	c.Allreduce([]float64{0})
}

// Gather collects each member's payload at root, indexed by rank; only
// root's return value is meaningful.
func (c *Comm) Gather(root int, data []byte) [][]byte {
	tag := c.collTag()
	if c.rank != root {
		c.Send(root, tag, data)
		return nil
	}
	out := make([][]byte, len(c.members))
	reqs := make([]*Request, len(c.members))
	for r := range c.members {
		if r == root {
			buf := make([]byte, len(data))
			copy(buf, data)
			out[r] = buf
			continue
		}
		reqs[r] = c.Irecv(r, tag)
	}
	for r, q := range reqs {
		if q != nil {
			out[r] = c.p.Wait(q)
		}
	}
	return out
}

func encodeF64(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

func decodeF64(buf []byte) []float64 {
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}
