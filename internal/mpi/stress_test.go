package mpi

import (
	"sync"
	"testing"
)

// All-to-all with every rank both sending and receiving concurrently,
// wildcard receives mixed in — the closest the runtime gets to
// MPI_THREAD_MULTIPLE chaos. Run under -race in CI.
func TestAllToAllStress(t *testing.T) {
	const size = 6
	const rounds = 8
	w := testWorld(size)
	w.Run(func(p *Proc) {
		for r := 0; r < rounds; r++ {
			reqs := make([]*Request, 0, size-1)
			for peer := 0; peer < size; peer++ {
				if peer == p.Rank() {
					continue
				}
				reqs = append(reqs, p.Irecv(peer, r))
			}
			for peer := 0; peer < size; peer++ {
				if peer == p.Rank() {
					continue
				}
				p.Send(peer, r, []byte{byte(p.Rank()), byte(r)})
			}
			seen := map[byte]bool{}
			for _, q := range reqs {
				got := p.Wait(q)
				if len(got) != 2 || got[1] != byte(r) {
					t.Errorf("rank %d round %d: bad payload %v", p.Rank(), r, got)
				}
				seen[got[0]] = true
			}
			if len(seen) != size-1 {
				t.Errorf("rank %d round %d: %d distinct senders, want %d",
					p.Rank(), r, len(seen), size-1)
			}
			p.Barrier()
		}
	})
	s := w.EngineStats()
	if s.Arrivals != uint64(size*(size-1)*rounds) {
		t.Errorf("total arrivals = %d, want %d", s.Arrivals, size*(size-1)*rounds)
	}
}

// Wildcard receives racing exact receives must drain every message
// exactly once.
func TestWildcardRace(t *testing.T) {
	const size = 4
	const perSender = 6
	const msgs = perSender * (size - 1)
	w := testWorld(size)
	var mu sync.Mutex
	received := map[int]int{}
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				got := p.Recv(AnySource, AnyTag)
				mu.Lock()
				received[int(got[0])]++
				mu.Unlock()
			}
		} else {
			for i := 0; i < perSender; i++ {
				p.Send(0, i, []byte{byte(p.Rank()*10 + i)})
			}
		}
	})
	total := 0
	for _, n := range received {
		if n != 1 {
			t.Errorf("message received %d times", n)
		}
		total += n
	}
	if total != msgs {
		t.Errorf("received %d distinct messages, want %d", total, msgs)
	}
}

// Clocks are monotone per rank: no operation may move time backwards.
func TestClockMonotonicity(t *testing.T) {
	w := testWorld(3)
	w.Run(func(p *Proc) {
		last := p.NowNS()
		step := func(label string) {
			if p.NowNS() < last {
				t.Errorf("rank %d: %s moved the clock backwards", p.Rank(), label)
			}
			last = p.NowNS()
		}
		next := (p.Rank() + 1) % 3
		prev := (p.Rank() + 2) % 3
		for i := 0; i < 5; i++ {
			r := p.Irecv(prev, i)
			step("irecv")
			p.Send(next, i, []byte{1})
			step("send")
			p.Wait(r)
			step("wait")
			p.Compute(100)
			step("compute")
			p.Barrier()
			step("barrier")
		}
	})
}

func TestProgressNBounds(t *testing.T) {
	w := testWorld(2)
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 5; i++ {
				p.Send(1, i, []byte{byte(i)})
			}
		} else {
			reqs := make([]*Request, 5)
			for i := range reqs {
				reqs[i] = p.Irecv(0, i)
			}
			// ProgressN must stop at its bound even with more pending.
			n := p.ProgressN(2)
			if n < 1 || n > 2 {
				t.Errorf("ProgressN(2) = %d", n)
			}
			for _, r := range reqs {
				p.Wait(r)
			}
			if p.ProgressN(0) != 0 {
				t.Error("ProgressN(0) should be a no-op")
			}
		}
	})
}
