package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/netmodel"
)

func testWorld(size int) *World {
	prof := cache.SandyBridge
	prof.Cores = 2 // per-rank hierarchies stay small
	return NewWorld(Config{
		Size: size,
		Engine: engine.Config{
			Profile:        prof,
			Kind:           matchlist.KindLLA,
			EntriesPerNode: 2,
		},
		Fabric: netmodel.IBQDR,
	})
}

func TestPingPong(t *testing.T) {
	w := testWorld(2)
	w.Run(func(p *Proc) {
		msg := []byte("hello")
		if p.Rank() == 0 {
			p.Send(1, 7, msg)
			got := p.Recv(1, 8)
			if !bytes.Equal(got, []byte("world")) {
				t.Errorf("rank 0 got %q", got)
			}
		} else {
			got := p.Recv(0, 7)
			if !bytes.Equal(got, msg) {
				t.Errorf("rank 1 got %q", got)
			}
			p.Send(0, 8, []byte("world"))
		}
	})
	if w.MaxTimeNS() <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestUnexpectedThenRecv(t *testing.T) {
	w := testWorld(2)
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 3, []byte("early"))
			p.Send(1, 4, []byte("later"))
		} else {
			// Give the messages time to land unexpectedly.
			p.Probe()
			// Receive in reverse tag order: both paths (UMQ hit and
			// PRQ match) are exercised regardless of arrival timing.
			if got := p.Recv(0, 4); !bytes.Equal(got, []byte("later")) {
				t.Errorf("tag 4 got %q", got)
			}
			if got := p.Recv(0, 3); !bytes.Equal(got, []byte("early")) {
				t.Errorf("tag 3 got %q", got)
			}
		}
	})
}

func TestWildcardRecv(t *testing.T) {
	w := testWorld(3)
	w.Run(func(p *Proc) {
		switch p.Rank() {
		case 0:
			a := p.Recv(AnySource, AnyTag)
			b := p.Recv(AnySource, AnyTag)
			if len(a) != 1 || len(b) != 1 || a[0] == b[0] {
				t.Errorf("wildcard receives got %v %v", a, b)
			}
		default:
			p.Send(0, p.Rank(), []byte{byte(p.Rank())})
		}
	})
}

func TestManyToOneOrdering(t *testing.T) {
	// Messages from one sender with equal tags must be received in send
	// order (MPI non-overtaking within a (src, tag) pair).
	w := testWorld(2)
	const n = 50
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < n; i++ {
				p.Send(1, 5, []byte{byte(i)})
			}
		} else {
			for i := 0; i < n; i++ {
				got := p.Recv(0, 5)
				if got[0] != byte(i) {
					t.Errorf("message %d out of order: %d", i, got[0])
					return
				}
			}
		}
	})
}

func TestIrecvOverlap(t *testing.T) {
	w := testWorld(2)
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			reqs := make([]*Request, 10)
			for i := range reqs {
				reqs[i] = p.Irecv(1, i)
			}
			// Wait in reverse: completion out of post order.
			for i := len(reqs) - 1; i >= 0; i-- {
				if got := p.Wait(reqs[i]); got[0] != byte(i) {
					t.Errorf("req %d got %d", i, got[0])
				}
			}
		} else {
			for i := 0; i < 10; i++ {
				p.Send(0, i, []byte{byte(i)})
			}
		}
	})
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	w := testWorld(4)
	w.Run(func(p *Proc) {
		// Rank 2 is the straggler.
		if p.Rank() == 2 {
			p.Compute(1e6)
		}
		p.Barrier()
		if p.NowNS() < 1e6 {
			t.Errorf("rank %d clock %.0f did not advance to straggler", p.Rank(), p.NowNS())
		}
	})
}

func TestAllreduceSums(t *testing.T) {
	w := testWorld(4)
	w.Run(func(p *Proc) {
		got := p.Allreduce([]float64{float64(p.Rank()), 1})
		if got[0] != 6 || got[1] != 4 { // 0+1+2+3, 1*4
			t.Errorf("rank %d allreduce = %v", p.Rank(), got)
		}
	})
}

func TestAllreduceRepeated(t *testing.T) {
	w := testWorld(3)
	w.Run(func(p *Proc) {
		for iter := 1; iter <= 5; iter++ {
			got := p.Allreduce([]float64{float64(iter)})
			if got[0] != float64(3*iter) {
				t.Errorf("iter %d: %v", iter, got)
			}
		}
	})
}

func TestHaloExchangeAllRanks(t *testing.T) {
	// A 1D ring halo exchange: every rank sends to both neighbours and
	// receives from both, several iterations.
	const size = 8
	w := testWorld(size)
	w.Run(func(p *Proc) {
		left := (p.Rank() + size - 1) % size
		right := (p.Rank() + 1) % size
		for iter := 0; iter < 5; iter++ {
			rl := p.Irecv(left, iter)
			rr := p.Irecv(right, iter)
			p.Send(left, iter, []byte(fmt.Sprintf("%d", p.Rank())))
			p.Send(right, iter, []byte(fmt.Sprintf("%d", p.Rank())))
			gl := p.Wait(rl)
			gr := p.Wait(rr)
			if string(gl) != fmt.Sprintf("%d", left) || string(gr) != fmt.Sprintf("%d", right) {
				t.Errorf("rank %d iter %d got %q %q", p.Rank(), iter, gl, gr)
			}
			p.Barrier()
		}
	})
	s := w.EngineStats()
	if s.Arrivals != uint64(size*2*5) {
		t.Errorf("total arrivals = %d, want %d", s.Arrivals, size*2*5)
	}
}

func TestComputeFlushesCaches(t *testing.T) {
	w := testWorld(2)
	w.Run(func(p *Proc) {
		if p.Rank() == 1 {
			p.Compute(5e5)
			if p.NowNS() < 5e5 {
				t.Error("Compute did not advance the clock")
			}
		}
	})
}

func TestSendToInvalidRankPanics(t *testing.T) {
	w := testWorld(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.Proc(0).Send(5, 0, nil)
}

func TestVirtualTimeRespectsWire(t *testing.T) {
	w := testWorld(2)
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, make([]byte, 1<<20)) // 1 MiB
		} else {
			p.Recv(0, 0)
			// The receive completes no earlier than serialization time.
			if p.NowNS() < netmodel.IBQDR.SerializationNS(1<<20) {
				t.Errorf("1 MiB receive completed at %.0f ns, faster than the wire", p.NowNS())
			}
		}
	})
}

func rndzWorld(size, threshold int) *World {
	prof := cache.SandyBridge
	prof.Cores = 2
	return NewWorld(Config{
		Size: size,
		Engine: engine.Config{
			Profile:        prof,
			Kind:           matchlist.KindLLA,
			EntriesPerNode: 2,
		},
		Fabric:              netmodel.IBQDR,
		EagerThresholdBytes: threshold,
	})
}

func TestRendezvousDataIntact(t *testing.T) {
	w := rndzWorld(2, 1024)
	big := make([]byte, 64<<10)
	for i := range big {
		big[i] = byte(i * 7)
	}
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 3, big)
		} else {
			got := p.Recv(0, 3)
			if !bytes.Equal(got, big) {
				t.Error("rendezvous payload corrupted")
			}
		}
	})
}

func TestRendezvousCompletionIncludesRoundTrip(t *testing.T) {
	const size = 256 << 10
	fab := netmodel.IBQDR
	// Rendezvous: completion >= 3 one-way latencies + payload wire time.
	w := rndzWorld(2, 4096)
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, make([]byte, size))
		} else {
			p.Recv(0, 0)
			min := 3*fab.LatencyNS + fab.SerializationNS(size)
			if p.NowNS() < min {
				t.Errorf("rendezvous receive at %.0f ns, want >= %.0f", p.NowNS(), min)
			}
		}
	})
	// Eager (huge threshold): completes after one latency + wire.
	w2 := rndzWorld(2, 1<<30)
	w2.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 0, make([]byte, size))
		} else {
			p.Recv(0, 0)
		}
	})
	eagerNS := w2.Proc(1).NowNS()
	rndzNS := w.Proc(1).NowNS()
	if rndzNS <= eagerNS {
		t.Errorf("rendezvous (%.0f ns) should cost more than eager (%.0f ns)", rndzNS, eagerNS)
	}
}

func TestRendezvousUnexpectedRTS(t *testing.T) {
	// RTS arriving before the receive: payload timing starts at the
	// late match, not the arrival.
	w := rndzWorld(2, 100)
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 9, make([]byte, 4096))
		} else {
			p.Probe() // likely buffers the RTS unexpectedly
			p.Compute(5e5)
			got := p.Recv(0, 9)
			if len(got) != 4096 {
				t.Errorf("late rendezvous receive got %d bytes", len(got))
			}
			min := 5e5 + netmodel.IBQDR.SerializationNS(4096)
			if p.NowNS() < min {
				t.Errorf("completion %.0f ns ignores post-match transfer (min %.0f)", p.NowNS(), min)
			}
		}
	})
}

func TestSmallMessagesStayEager(t *testing.T) {
	w := rndzWorld(2, 1024)
	w.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1, []byte("small"))
		} else {
			p.Recv(0, 1)
			// One latency + negligible serialization + overheads: far
			// below a rendezvous round trip of 3 latencies.
			if p.NowNS() > 3*netmodel.IBQDR.LatencyNS+2*netmodel.IBQDR.OverheadNS {
				t.Errorf("small message cost %.0f ns: did it rendezvous?", p.NowNS())
			}
		}
	})
}

func TestSendrecvAndWaitall(t *testing.T) {
	const size = 4
	w := testWorld(size)
	w.Run(func(p *Proc) {
		right := (p.Rank() + 1) % size
		left := (p.Rank() + size - 1) % size
		got := p.Sendrecv(right, 1, []byte{byte(p.Rank())}, left, 1)
		if got[0] != byte(left) {
			t.Errorf("rank %d Sendrecv got %d, want %d", p.Rank(), got[0], left)
		}
		// Waitall over a burst of Irecvs.
		reqs := make([]*Request, 3)
		for i := range reqs {
			reqs[i] = p.Irecv(left, 10+i)
		}
		for i := 0; i < 3; i++ {
			p.Send(right, 10+i, []byte{byte(i)})
		}
		for i, buf := range p.Waitall(reqs) {
			if buf[0] != byte(i) {
				t.Errorf("Waitall[%d] = %d", i, buf[0])
			}
		}
	})
}
