package mpi

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestWireOpRoundTrip(t *testing.T) {
	ops := []WireOp{
		{Kind: WireArrive, Rank: 3, Tag: 42, Ctx: 1, Handle: 7},
		{Kind: WireArrive, Rank: 3, Tag: 42, Ctx: 1, Handle: 7, Trace: 99, Span: 12, Seq: 321},
		{Kind: WirePost, Rank: -1, Tag: -1, Ctx: 65535, Handle: math.MaxUint64,
			Trace: math.MaxUint64, Span: math.MaxUint64},
		{Kind: WirePhase, DurationNS: 1e5},
		{Kind: WireStat},
		{Kind: WirePing},
	}
	var buf bytes.Buffer
	for _, op := range ops {
		if err := WriteWireOp(&buf, op); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range ops {
		got, err := ReadWireOp(&buf)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got != want {
			t.Errorf("op %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestWireReplyRoundTrip(t *testing.T) {
	reps := []WireReply{
		{Kind: WireArrive, Status: WireOK, Outcome: WireOutMatched, Handle: 9, Cycles: 1234},
		{Kind: WireArrive, Status: WireNack},
		{Kind: WirePost, Status: WireOK, Outcome: 1, Handle: 3, Cycles: 999},
		{Kind: WireStat, Status: WireOK, PRQLen: 17, UMQLen: 4},
		{Kind: WireArrive, Status: WireOK, Credits: 1},
		{Kind: WireArrive, Status: WireBusy, Credits: 65535},
	}
	var buf bytes.Buffer
	for _, rep := range reps {
		if err := WriteWireReply(&buf, rep); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range reps {
		got, err := ReadWireReply(&buf)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if got != want {
			t.Errorf("reply %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestWireHello(t *testing.T) {
	var buf bytes.Buffer
	want := WireHello{Mode: WireSessResume, Session: 42, LastAcked: 1 << 40}
	if err := WriteWireHello(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWireHello(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("hello round trip: got %+v want %+v", got, want)
	}
	// A wrong magic must be refused.
	bad := make([]byte, 23)
	bad[5] = 1
	if _, err := ReadWireHello(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad magic")
	}

	buf.Reset()
	wantW := WireWelcome{Status: WireWelcomeResumed, Session: 42, HighWater: 977}
	if err := WriteWireWelcome(&buf, wantW); err != nil {
		t.Fatal(err)
	}
	gotW, err := ReadWireWelcome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotW != wantW {
		t.Fatalf("welcome round trip: got %+v want %+v", gotW, wantW)
	}
	if _, err := ReadWireWelcome(bytes.NewReader(bad)); err == nil {
		t.Fatal("welcome accepted bad magic")
	}
}

func TestWireHelloRejectsUnknownMode(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWireHello(&buf, WireHello{Mode: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWireHello(&buf); err == nil {
		t.Fatal("accepted unknown session mode")
	}
	buf.Reset()
	if err := WriteWireWelcome(&buf, WireWelcome{Status: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWireWelcome(&buf); err == nil {
		t.Fatal("accepted unknown welcome status")
	}
}

func TestWireOpRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWireOp(&buf, WireOp{Kind: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWireOp(&buf); err == nil {
		t.Fatal("accepted unknown op kind")
	}
	// WireBatch is a frame marker, never an op kind.
	buf.Reset()
	if err := WriteWireOp(&buf, WireOp{Kind: WireBatch}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadWireOp(&buf); err == nil {
		t.Fatal("accepted WireBatch as an op kind")
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	ops := []WireOp{
		{Kind: WireArrive, Rank: 3, Tag: 42, Ctx: 1, Handle: 7},
		{Kind: WirePost, Rank: -1, Tag: -1, Ctx: 65535, Handle: math.MaxUint64},
		{Kind: WirePing},
	}
	var buf bytes.Buffer
	if err := WriteWireBatch(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, batch, err := ReadWireFrame(bufio.NewReader(&buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !batch {
		t.Fatal("batch frame not recognised as a batch")
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Errorf("op %d: got %+v want %+v", i, got[i], ops[i])
		}
	}
}

func TestWireFrameScalarPassthrough(t *testing.T) {
	want := WireOp{Kind: WireArrive, Rank: 5, Tag: 6, Ctx: 2, Handle: 11}
	var buf bytes.Buffer
	if err := WriteWireOp(&buf, want); err != nil {
		t.Fatal(err)
	}
	// Reuse a caller buffer; the result must land in it.
	scratch := make([]WireOp, 0, 4)
	got, batch, err := ReadWireFrame(bufio.NewReader(&buf), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if batch {
		t.Fatal("scalar frame misread as batch")
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("got %+v, want [%+v]", got, want)
	}
}

func TestWireBatchRejectsBadCounts(t *testing.T) {
	if err := WriteWireBatch(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("accepted empty batch")
	}
	if err := WriteWireBatch(&bytes.Buffer{}, make([]WireOp, MaxWireBatch+1)); err == nil {
		t.Fatal("accepted oversize batch")
	}
	// A forged zero-count header must be refused on read.
	br := bufio.NewReader(bytes.NewReader([]byte{WireBatch, 0, 0, 0, 0}))
	if _, _, err := ReadWireFrame(br, nil); err == nil {
		t.Fatal("accepted zero-count batch header")
	}
	// And a count past the cap.
	br = bufio.NewReader(bytes.NewReader([]byte{WireBatch, 0xFF, 0xFF, 0xFF, 0xFF}))
	if _, _, err := ReadWireFrame(br, nil); err == nil {
		t.Fatal("accepted oversize batch header")
	}
}

// TestWireReplyCreditsBackCompat: a pre-window reply (the trailing two
// bytes zeroed, as old servers always wrote) decodes with Credits 0 —
// the field rode in reserved bytes, so no version bump was needed.
func TestWireReplyCreditsBackCompat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWireReply(&buf, WireReply{Kind: WirePing, Status: WireOK}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != wireReplySize {
		t.Fatalf("reply frame is %d bytes, want %d", len(b), wireReplySize)
	}
	if b[27] != 0 || b[28] != 0 {
		t.Fatalf("windowless reply wrote nonzero credit bytes: % x", b[27:29])
	}
	rep, err := ReadWireReply(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Credits != 0 {
		t.Fatalf("Credits = %d, want 0", rep.Credits)
	}
}

// TestWireBatchTruncation: a batch frame that promises more ops than
// the stream delivers must surface ErrBatchTruncated (and still satisfy
// errors.Is(err, io.ErrUnexpectedEOF)), whether the cut lands in the
// header or mid-payload. A truncation is how the server tells a
// malformed frame (one WireErr reply, then close) from a connection
// that departed cleanly between frames.
func TestWireBatchTruncation(t *testing.T) {
	full := func(ops []WireOp) []byte {
		var buf bytes.Buffer
		if err := WriteWireBatch(&buf, ops); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ops := []WireOp{
		{Kind: WireArrive, Rank: 1, Tag: 2, Ctx: 1, Handle: 3},
		{Kind: WirePost, Rank: 1, Tag: 2, Ctx: 1, Handle: 3},
		{Kind: WirePing},
	}
	frame := full(ops)
	cuts := []struct {
		name string
		n    int
	}{
		{"mid-header", 3},
		{"payload boundary", wireBatchHeaderSize + wireOpSize},
		{"mid-op", wireBatchHeaderSize + wireOpSize + 7},
		{"last byte short", len(frame) - 1},
	}
	for _, cut := range cuts {
		br := bufio.NewReader(bytes.NewReader(frame[:cut.n]))
		_, batch, err := ReadWireFrame(br, nil)
		if !batch {
			t.Errorf("%s: frame not flagged as batch", cut.name)
		}
		if !errors.Is(err, ErrBatchTruncated) {
			t.Errorf("%s: err = %v, want ErrBatchTruncated", cut.name, err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%s: err = %v does not unwrap to io.ErrUnexpectedEOF", cut.name, err)
		}
	}

	// A bad op kind mid-batch is a decode error but NOT a truncation:
	// the bytes were all there, they were just wrong.
	bad := full(ops)
	bad[wireBatchHeaderSize+wireOpSize] = 99 // second op's kind byte
	_, _, err := ReadWireFrame(bufio.NewReader(bytes.NewReader(bad)), nil)
	if err == nil {
		t.Fatal("accepted bad op kind mid-batch")
	}
	if errors.Is(err, ErrBatchTruncated) {
		t.Fatalf("bad-kind error misclassified as truncation: %v", err)
	}

	// A clean EOF before any frame byte is not a truncation either.
	_, _, err = ReadWireFrame(bufio.NewReader(bytes.NewReader(nil)), nil)
	if !errors.Is(err, io.EOF) || errors.Is(err, ErrBatchTruncated) {
		t.Fatalf("empty stream: err = %v, want plain io.EOF", err)
	}
}
