package mpi

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// encodeFrame renders ops back into the wire encoding ReadWireFrame
// consumed: a bare op frame, or a batch header plus op frames.
func encodeFrame(t *testing.T, ops []WireOp, batch bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	if batch {
		err = WriteWireBatch(&buf, ops)
	} else {
		err = WriteWireOp(&buf, ops[0])
	}
	if err != nil {
		t.Fatalf("re-encode of accepted frame failed: %v", err)
	}
	return buf.Bytes()
}

// FuzzReadWireFrame throws arbitrary bytes at the server's frame
// reader — the first untrusted parser on every daemon connection. It
// must never panic, and any frame it accepts must re-encode to exactly
// the bytes it consumed (the codec is canonical: no two byte strings
// decode to the same frame).
func FuzzReadWireFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteWireOp(&seed, WireOp{Kind: WireArrive, Rank: 3, Tag: 17, Ctx: 2, Handle: 99, Trace: 5, Span: 6, Seq: 7})
	f.Add(seed.Bytes())
	seed.Reset()
	WriteWireBatch(&seed, []WireOp{
		{Kind: WirePost, Rank: 1, Tag: 2, Ctx: 3, Handle: 4, Seq: 1},
		{Kind: WirePhase, DurationNS: 5e4, Seq: 2},
		{Kind: WireStat},
	})
	f.Add(seed.Bytes())
	f.Add([]byte{WireBatch, 0xff, 0xff, 0xff, 0xff}) // hostile count
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		ops, batch, err := ReadWireFrame(br, nil)
		if err != nil {
			return
		}
		if len(ops) == 0 || len(ops) > MaxWireBatch {
			t.Fatalf("accepted frame with %d ops", len(ops))
		}
		if !batch && len(ops) != 1 {
			t.Fatalf("scalar frame decoded to %d ops", len(ops))
		}
		enc := encodeFrame(t, ops, batch)
		if !bytes.Equal(enc, data[:len(enc)]) {
			t.Fatalf("accepted frame is not canonical:\n consumed %x\n re-encoded %x", data[:len(enc)], enc)
		}
	})
}

// FuzzReadWireBatch drives the batch path from the other direction:
// fuzz-chosen ops encode, decode back identically, and every strict
// prefix of the encoding is rejected as truncated rather than
// silently yielding a short batch — the framing property serveConn's
// one-WireErr-per-malformed-frame contract rests on.
func FuzzReadWireBatch(f *testing.F) {
	f.Add(uint16(3), uint64(12345), true)
	f.Add(uint16(1), uint64(0), false)
	f.Add(uint16(64), uint64(1<<40), true)

	f.Fuzz(func(t *testing.T, n uint16, mix uint64, traced bool) {
		count := int(n)%128 + 1
		ops := make([]WireOp, count)
		for i := range ops {
			ops[i] = WireOp{
				Kind:   byte((mix>>uint(i%32))%uint64(WirePing)) + 1,
				Rank:   int32(mix>>7) - int32(i),
				Tag:    int32(i) * 3,
				Ctx:    uint16(mix>>3) + uint16(i),
				Handle: mix ^ uint64(i),
				Seq:    uint64(i) + 1,
			}
			if traced {
				ops[i].Trace = mix + 1
				ops[i].Span = uint64(i)
			}
		}
		var buf bytes.Buffer
		if err := WriteWireBatch(&buf, ops); err != nil {
			t.Fatal(err)
		}
		enc := buf.Bytes()

		got, batch, err := ReadWireFrame(bufio.NewReader(bytes.NewReader(enc)), nil)
		if err != nil || !batch {
			t.Fatalf("round trip: batch=%v err=%v", batch, err)
		}
		if len(got) != count {
			t.Fatalf("round trip: %d ops, want %d", len(got), count)
		}
		for i := range got {
			if got[i] != ops[i] {
				t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
			}
		}

		// A strict prefix cut inside the payload must surface as a
		// truncated batch, and cuts inside the header as clean EOFs.
		cut := int(mix % uint64(len(enc)))
		_, _, err = ReadWireFrame(bufio.NewReader(bytes.NewReader(enc[:cut])), nil)
		if err == nil {
			t.Fatalf("truncated batch (cut at %d of %d) decoded cleanly", cut, len(enc))
		}
		if cut > wireBatchHeaderSize && !errors.Is(err, ErrBatchTruncated) {
			t.Fatalf("payload cut at %d: err %v, want ErrBatchTruncated", cut, err)
		}
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err %v carries no EOF", cut, err)
		}
	})
}
