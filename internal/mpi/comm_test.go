package mpi

import (
	"bytes"
	"testing"
)

func TestWorldComm(t *testing.T) {
	w := testWorld(3)
	w.Run(func(p *Proc) {
		c := p.World()
		if c.Size() != 3 || c.Rank() != p.Rank() || c.Ctx() != worldCtx {
			t.Errorf("world comm wrong: size=%d rank=%d ctx=%d", c.Size(), c.Rank(), c.Ctx())
		}
	})
}

func TestCommSplitGroups(t *testing.T) {
	// 6 ranks split into even/odd: each half becomes a 3-member comm
	// with local ranks 0..2.
	w := testWorld(6)
	w.Run(func(p *Proc) {
		c := p.CommSplit(p.Rank() % 2)
		if c.Size() != 3 {
			t.Errorf("rank %d: split size = %d, want 3", p.Rank(), c.Size())
		}
		if want := p.Rank() / 2; c.Rank() != want {
			t.Errorf("rank %d: local rank = %d, want %d", p.Rank(), c.Rank(), want)
		}
		if c.Ctx() == worldCtx {
			t.Error("split comm must not reuse the world context")
		}
	})
}

func TestCommIsolation(t *testing.T) {
	// The same (src, tag) in two communicators must not cross-match.
	w := testWorld(2)
	w.Run(func(p *Proc) {
		world := p.World()
		sub := p.CommSplit(0) // both ranks, new context
		if p.Rank() == 0 {
			world.Send(1, 5, []byte("world"))
			sub.Send(1, 5, []byte("sub"))
		} else {
			// Receive from the sub communicator first: it must get the
			// sub message even though the world message may have
			// arrived earlier with identical source and tag.
			if got := sub.Recv(0, 5); !bytes.Equal(got, []byte("sub")) {
				t.Errorf("sub comm received %q", got)
			}
			if got := world.Recv(0, 5); !bytes.Equal(got, []byte("world")) {
				t.Errorf("world comm received %q", got)
			}
		}
	})
}

func TestCommSendRecvLocalRanks(t *testing.T) {
	// Communicator ranks are local: rank 1 of the odd-comm is world
	// rank 3.
	w := testWorld(4)
	w.Run(func(p *Proc) {
		c := p.CommSplit(p.Rank() % 2)
		if c.Rank() == 0 {
			c.Send(1, 9, []byte{byte(p.Rank())})
		} else {
			got := c.Recv(0, 9)
			want := byte(p.Rank() - 2) // world rank of local 0 in my group
			if got[0] != want {
				t.Errorf("world rank %d: got sender %d, want %d", p.Rank(), got[0], want)
			}
		}
	})
}

func TestBcastBinomial(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8} {
		w := testWorld(size)
		w.Run(func(p *Proc) {
			c := p.World()
			for _, root := range []int{0, size - 1} {
				var data []byte
				if c.Rank() == root {
					data = []byte{42, byte(root)}
				}
				got := c.Bcast(root, data)
				if len(got) != 2 || got[0] != 42 || got[1] != byte(root) {
					t.Errorf("size %d root %d rank %d: Bcast got %v", size, root, c.Rank(), got)
				}
			}
		})
	}
}

func TestReduceBinomial(t *testing.T) {
	for _, size := range []int{1, 2, 3, 7} {
		w := testWorld(size)
		w.Run(func(p *Proc) {
			c := p.World()
			got := c.Reduce(0, []float64{float64(c.Rank()), 1})
			if c.Rank() == 0 {
				wantSum := float64(size*(size-1)) / 2
				if got[0] != wantSum || got[1] != float64(size) {
					t.Errorf("size %d: Reduce = %v, want [%v %v]", size, got, wantSum, size)
				}
			}
		})
	}
}

func TestAllreduceP2PMatchesCentral(t *testing.T) {
	w := testWorld(5)
	w.Run(func(p *Proc) {
		c := p.World()
		p2p := c.Allreduce([]float64{float64(p.Rank() + 1)})
		central := p.Allreduce([]float64{float64(p.Rank() + 1)})
		if p2p[0] != central[0] || p2p[0] != 15 {
			t.Errorf("rank %d: p2p %v vs central %v", p.Rank(), p2p, central)
		}
	})
}

func TestCommCollectivesWithinSplit(t *testing.T) {
	// Collectives on a split communicator only see the group.
	w := testWorld(6)
	w.Run(func(p *Proc) {
		c := p.CommSplit(p.Rank() % 3) // three comms of two ranks each
		sum := c.Allreduce([]float64{1})
		if sum[0] != 2 {
			t.Errorf("split allreduce = %v, want 2", sum[0])
		}
		got := c.Bcast(0, []byte{byte(c.Ctx())})
		if got[0] != byte(c.Ctx()) {
			t.Errorf("split bcast leaked across comms: %v", got)
		}
	})
}

func TestGather(t *testing.T) {
	w := testWorld(4)
	w.Run(func(p *Proc) {
		c := p.World()
		out := c.Gather(2, []byte{byte(10 + c.Rank())})
		if c.Rank() != 2 {
			if out != nil {
				t.Error("non-root Gather should return nil")
			}
			return
		}
		for r, buf := range out {
			if len(buf) != 1 || buf[0] != byte(10+r) {
				t.Errorf("gathered[%d] = %v", r, buf)
			}
		}
	})
}

func TestCollectivesDriveMatchingEngine(t *testing.T) {
	// Unlike the analytic Barrier, p2p collectives generate real
	// arrivals through the engines.
	w := testWorld(4)
	before := w.EngineStats().Arrivals
	w.Run(func(p *Proc) {
		p.World().Barrier()
	})
	if after := w.EngineStats().Arrivals; after == before {
		t.Error("p2p barrier produced no engine arrivals")
	}
}

func TestCollectiveSequenceNoCrosstalk(t *testing.T) {
	// Back-to-back collectives must not steal each other's messages.
	w := testWorld(3)
	w.Run(func(p *Proc) {
		c := p.World()
		for i := 0; i < 10; i++ {
			v := c.Allreduce([]float64{float64(i)})
			if v[0] != float64(3*i) {
				t.Fatalf("iteration %d: %v", i, v[0])
			}
		}
	})
}

func TestCommSplitBadColorPanics(t *testing.T) {
	w := testWorld(1)
	w.Run(func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for out-of-range color")
			}
		}()
		p.CommSplit(-1)
	})
}
