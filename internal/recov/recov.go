// Package recov is the crash-recovery codec layer for the serving
// daemon: an append-only journal of applied wire operations and a
// versioned snapshot of the daemon's logical matching state.
//
// The paper's semi-permanent occupancy argument is about long-running
// services; a service that loses every posted receive and unexpected
// message on a crash resets the experiment. The daemon therefore
// journals every engine-reaching operation before replying to it, and
// periodically snapshots the logical queue contents + counters so
// recovery replays only the journal tail. The engine itself is
// deterministic — the same op sequence rebuilds the same queues — so
// the journal, not the in-memory state, is the source of truth.
//
// Design constraints, in order:
//
//   - Torn tails are normal. A SIGKILL (or power cut) can land
//     mid-write; the journal reader stops at the first record whose
//     marker, CRC, or length does not check out and reports the clean
//     offset, and the writer truncates the torn tail before appending.
//   - Snapshots are atomic. They are written to a temp file, fsynced,
//     and renamed into place, so a crash mid-snapshot leaves the
//     previous snapshot (or none) — never a half-written one.
//   - The codec is a leaf. It depends only on internal/mpi (for the op
//     frame encoding it embeds) so it can be fuzzed and tested without
//     dragging in the engine.
package recov

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"spco/internal/mpi"
)

// Journal record layout (fixed 64 bytes):
//
//	marker  u8   journalMarker (0xA7)
//	session u64  owning session id (0: ephemeral connection)
//	op      51B  the wire op frame, verbatim (mpi.WriteWireOp)
//	crc     u32  IEEE CRC32 over marker..op
//
// The record is exactly one cache line, and fixed-size records make
// the torn-tail scan trivial: any remainder shorter than 64 bytes is a
// torn write, full stop.
const (
	journalMarker     byte = 0xA7
	JournalRecordSize      = 1 + 8 + mpi.WireOpSize + 4
)

// JournalRecord is one applied operation.
type JournalRecord struct {
	Session uint64
	Op      mpi.WireOp
}

// appendRecord encodes rec into b (which must have JournalRecordSize
// capacity after len).
func appendRecord(b []byte, rec JournalRecord) []byte {
	start := len(b)
	b = append(b, journalMarker)
	b = binary.BigEndian.AppendUint64(b, rec.Session)
	var opb [mpi.WireOpSize]byte
	w := sliceWriter(opb[:0])
	mpi.WriteWireOp(&w, rec.Op) // cannot fail: writes into memory
	b = append(b, w...)
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
	return b
}

// sliceWriter adapts an in-memory slice as an io.Writer.
type sliceWriter []byte

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

// decodeRecord decodes one fixed-size record. A marker, CRC, or op
// mismatch reports an error — the reader treats it as the torn tail.
func decodeRecord(b []byte) (JournalRecord, error) {
	if len(b) < JournalRecordSize {
		return JournalRecord{}, io.ErrUnexpectedEOF
	}
	if b[0] != journalMarker {
		return JournalRecord{}, fmt.Errorf("recov: bad journal marker %#x", b[0])
	}
	want := binary.BigEndian.Uint32(b[JournalRecordSize-4 : JournalRecordSize])
	if got := crc32.ChecksumIEEE(b[:JournalRecordSize-4]); got != want {
		return JournalRecord{}, fmt.Errorf("recov: journal CRC mismatch (%#x != %#x)", got, want)
	}
	var rec JournalRecord
	rec.Session = binary.BigEndian.Uint64(b[1:9])
	op, err := mpi.ReadWireOp(sliceReader(b[9 : 9+mpi.WireOpSize]))
	if err != nil {
		return JournalRecord{}, err
	}
	rec.Op = op
	return rec, nil
}

// sliceReader adapts a byte slice as a one-shot io.Reader.
func sliceReader(b []byte) io.Reader { return &oneShot{b: b} }

type oneShot struct{ b []byte }

func (r *oneShot) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// JournalWriter appends records to an open journal file. Each Append
// issues one write(2) — nothing is buffered in the process, so a
// SIGKILL loses at most the record whose write was interrupted (the
// CRC catches the tear). Fsync runs every SyncEvery records; the sync
// cadence trades power-loss durability against write latency, exactly
// like a database WAL.
type JournalWriter struct {
	f         *os.File
	off       uint64
	syncEvery int
	unsynced  int
	buf       []byte
}

// OpenJournal opens (creating if needed) a journal for appending,
// first truncating any torn tail so new records extend the clean
// prefix. syncEvery <= 0 defaults to 64.
func OpenJournal(path string, syncEvery int) (*JournalWriter, error) {
	if syncEvery <= 0 {
		syncEvery = 64
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	_, cleanOff, err := scanJournal(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(int64(cleanOff)); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(int64(cleanOff), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &JournalWriter{f: f, off: cleanOff, syncEvery: syncEvery,
		buf: make([]byte, 0, JournalRecordSize)}, nil
}

// Append writes one record (one write syscall) and fsyncs on cadence.
func (w *JournalWriter) Append(rec JournalRecord) error {
	w.buf = appendRecord(w.buf[:0], rec)
	if _, err := w.f.Write(w.buf); err != nil {
		return err
	}
	w.off += uint64(len(w.buf))
	w.unsynced++
	if w.unsynced >= w.syncEvery {
		return w.Sync()
	}
	return nil
}

// Offset reports the bytes written so far (the clean length).
func (w *JournalWriter) Offset() uint64 { return w.off }

// Sync flushes the file to stable storage.
func (w *JournalWriter) Sync() error {
	w.unsynced = 0
	return w.f.Sync()
}

// Close syncs and closes the journal.
func (w *JournalWriter) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReadJournal reads every valid record from path starting at byte
// offset from, returning the records and the clean offset (the byte
// position past the last valid record). A missing file is an empty
// journal. Corrupt or torn data past the clean prefix is reported via
// the offset, not an error — it is the expected shape of a crash.
func ReadJournal(path string, from uint64) ([]JournalRecord, uint64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	if _, err := f.Seek(int64(from), io.SeekStart); err != nil {
		return nil, from, err
	}
	recs, n, err := scanRecords(f)
	return recs, from + n, err
}

// scanJournal scans a whole open journal from the start.
func scanJournal(f *os.File) ([]JournalRecord, uint64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	return scanRecords(f)
}

// scanRecords reads records until EOF or the first invalid one,
// returning the records and the clean byte count consumed.
func scanRecords(r io.Reader) ([]JournalRecord, uint64, error) {
	var (
		recs []JournalRecord
		off  uint64
		b    [JournalRecordSize]byte
	)
	for {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			// EOF (clean end) and a short tail (torn write) both stop the
			// scan at the last whole record.
			return recs, off, nil
		}
		rec, err := decodeRecord(b[:])
		if err != nil {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += JournalRecordSize
	}
}

// Snapshot is the daemon's logical matching state at a point in time:
// per-shard queue contents, engine counters, and the journal offset
// replay resumes from, plus the session table (high-water marks and
// bounded reply rings) that keeps dedup exact across the restart.
type Snapshot struct {
	Shards   []ShardState
	Sessions []SessionState
}

// ShardState is one serving lane's snapshot.
type ShardState struct {
	// JournalOff is the shard journal's clean length when this state was
	// captured; recovery replays records from here.
	JournalOff uint64

	// Counters are the engine's Stats fields in declaration order (see
	// the daemon's statsToCounters); an opaque array keeps this package
	// a leaf.
	Counters [SnapshotCounters]uint64

	// PRQ and UMQ are the live queue entries in posting/arrival order.
	// PRQ entries keep the wire-level rank/tag (including wildcards), so
	// restoring is re-posting through the public engine API.
	PRQ []QueueEntry
	UMQ []QueueEntry
}

// SnapshotCounters fixes the counter array width (engine.Stats has 15
// integer fields; the daemon asserts the mapping in both directions).
const SnapshotCounters = 15

// QueueEntry is one logical queue element: the wire fields that
// recreate it through ArriveFull/PostRecv.
type QueueEntry struct {
	Rank   int32
	Tag    int32
	Ctx    uint16
	Handle uint64
}

// SessionState is one session's dedup state.
type SessionState struct {
	ID        uint64
	HighWater uint64
	Ring      []ReplyAt
}

// ReplyAt is one retained reply, keyed by its op's sequence number.
type ReplyAt struct {
	Seq   uint64
	Reply mpi.WireReply
}

// Snapshot file layout:
//
//	magic    "SPCOSNP1" (8)
//	shards   u32, then per shard:
//	   journalOff u64, counters 15×u64, prqN u32, prq entries,
//	   umqN u32, umq entries        (entry: rank i32, tag i32, ctx u16,
//	                                 handle u64 = 18 bytes)
//	sessions u32, then per session:
//	   id u64, hwm u64, ringN u32, ring entries (seq u64 + reply 29B)
//	crc      u32 (IEEE, over everything before it)
const snapshotMagic = "SPCOSNP1"

const queueEntrySize = 4 + 4 + 2 + 8

// maxSnapshotList bounds decoded list lengths so a corrupt count
// cannot force a huge allocation before the CRC check has a chance to
// reject the file.
const maxSnapshotList = 1 << 24

// EncodeSnapshot writes the snapshot to w.
func EncodeSnapshot(w io.Writer, s *Snapshot) error {
	var b []byte
	b = append(b, snapshotMagic...)
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Shards)))
	for i := range s.Shards {
		sh := &s.Shards[i]
		b = binary.BigEndian.AppendUint64(b, sh.JournalOff)
		for _, c := range sh.Counters {
			b = binary.BigEndian.AppendUint64(b, c)
		}
		b = appendEntries(b, sh.PRQ)
		b = appendEntries(b, sh.UMQ)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Sessions)))
	for i := range s.Sessions {
		ss := &s.Sessions[i]
		b = binary.BigEndian.AppendUint64(b, ss.ID)
		b = binary.BigEndian.AppendUint64(b, ss.HighWater)
		b = binary.BigEndian.AppendUint32(b, uint32(len(ss.Ring)))
		for _, ra := range ss.Ring {
			b = binary.BigEndian.AppendUint64(b, ra.Seq)
			var w sliceWriter
			mpi.WriteWireReply(&w, ra.Reply)
			b = append(b, w...)
		}
	}
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	_, err := w.Write(b)
	return err
}

func appendEntries(b []byte, list []QueueEntry) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(list)))
	for _, e := range list {
		b = binary.BigEndian.AppendUint32(b, uint32(e.Rank))
		b = binary.BigEndian.AppendUint32(b, uint32(e.Tag))
		b = binary.BigEndian.AppendUint16(b, e.Ctx)
		b = binary.BigEndian.AppendUint64(b, e.Handle)
	}
	return b
}

// DecodeSnapshot reads and validates a snapshot.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(io.LimitReader(r, 1<<30))
	if err != nil {
		return nil, err
	}
	if len(b) < len(snapshotMagic)+4+4 {
		return nil, fmt.Errorf("recov: snapshot too short (%d bytes)", len(b))
	}
	if string(b[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("recov: bad snapshot magic %q", b[:len(snapshotMagic)])
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("recov: snapshot CRC mismatch (%#x != %#x)", got, want)
	}
	d := &decoder{b: body[len(snapshotMagic):]}
	s := &Snapshot{}
	nShards := d.u32()
	if nShards > 1<<16 {
		return nil, fmt.Errorf("recov: snapshot shard count %d", nShards)
	}
	for i := uint32(0); i < nShards && d.err == nil; i++ {
		var sh ShardState
		sh.JournalOff = d.u64()
		for j := range sh.Counters {
			sh.Counters[j] = d.u64()
		}
		sh.PRQ = d.entries()
		sh.UMQ = d.entries()
		s.Shards = append(s.Shards, sh)
	}
	nSess := d.u32()
	if d.err == nil && nSess > maxSnapshotList {
		return nil, fmt.Errorf("recov: snapshot session count %d", nSess)
	}
	for i := uint32(0); i < nSess && d.err == nil; i++ {
		var ss SessionState
		ss.ID = d.u64()
		ss.HighWater = d.u64()
		ringN := d.u32()
		if d.err == nil && ringN > maxSnapshotList {
			return nil, fmt.Errorf("recov: snapshot ring count %d", ringN)
		}
		for j := uint32(0); j < ringN && d.err == nil; j++ {
			seq := d.u64()
			rep, err := mpi.ReadWireReply(sliceReader(d.take(29)))
			if err != nil && d.err == nil {
				d.err = err
			}
			ss.Ring = append(ss.Ring, ReplyAt{Seq: seq, Reply: rep})
		}
		s.Sessions = append(s.Sessions, ss)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("recov: %d trailing snapshot bytes", len(d.b))
	}
	return s, nil
}

// decoder is a cursor over the snapshot body with sticky errors.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) entries() []QueueEntry {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if n > maxSnapshotList {
		d.err = fmt.Errorf("recov: snapshot entry count %d", n)
		return nil
	}
	out := make([]QueueEntry, 0, min(int(n), 4096))
	for i := uint32(0); i < n; i++ {
		b := d.take(queueEntrySize)
		if b == nil {
			return nil
		}
		out = append(out, QueueEntry{
			Rank:   int32(binary.BigEndian.Uint32(b[0:4])),
			Tag:    int32(binary.BigEndian.Uint32(b[4:8])),
			Ctx:    binary.BigEndian.Uint16(b[8:10]),
			Handle: binary.BigEndian.Uint64(b[10:18]),
		})
	}
	return out
}

// WriteSnapshotFile atomically replaces path with the encoded
// snapshot: temp file in the same directory, fsync, rename, fsync the
// directory. A crash at any point leaves either the old snapshot or
// the new one, never a torn hybrid.
func WriteSnapshotFile(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := EncodeSnapshot(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadSnapshotFile loads a snapshot; a missing file returns (nil, nil)
// — recovery then replays the whole journal.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeSnapshot(f)
}
