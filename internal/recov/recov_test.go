package recov

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"spco/internal/mpi"
)

func sampleOps(n int) []JournalRecord {
	recs := make([]JournalRecord, n)
	for i := range recs {
		recs[i] = JournalRecord{
			Session: uint64(i % 3),
			Op: mpi.WireOp{Kind: mpi.WireArrive, Rank: int32(i), Tag: int32(i * 7),
				Ctx: uint16(i % 5), Handle: uint64(1000 + i), Seq: uint64(i + 1)},
		}
	}
	return recs
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-000.journal")
	w, err := OpenJournal(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleOps(10)
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Offset(); got != uint64(10*JournalRecordSize) {
		t.Fatalf("Offset = %d, want %d", got, 10*JournalRecordSize)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, off, err := ReadJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if off != uint64(10*JournalRecordSize) {
		t.Fatalf("clean offset = %d, want %d", off, 10*JournalRecordSize)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// Reading from a mid-journal offset skips the prefix.
	tail, off2, err := ReadJournal(path, uint64(7*JournalRecordSize))
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 || off2 != off {
		t.Fatalf("tail read: %d records to %d, want 3 to %d", len(tail), off2, off)
	}
	if tail[0] != want[7] {
		t.Errorf("tail[0] = %+v, want %+v", tail[0], want[7])
	}
}

// TestJournalTornTail: a journal whose last record was cut mid-write
// (the SIGKILL shape) must read back its clean prefix, and reopening
// for append must truncate the tear so the next record extends the
// clean prefix.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := OpenJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleOps(5)
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tear := range []int{1, JournalRecordSize / 2, JournalRecordSize - 1} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		torn := append(append([]byte{}, b...), b[:tear]...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		got, off, err := ReadJournal(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 || off != uint64(5*JournalRecordSize) {
			t.Fatalf("tear %d: read %d records to %d, want 5 to %d",
				tear, len(got), off, 5*JournalRecordSize)
		}
		// Reopen + append: the torn bytes must be gone.
		w, err := OpenJournal(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		if w.Offset() != uint64(5*JournalRecordSize) {
			t.Fatalf("tear %d: reopened at %d", tear, w.Offset())
		}
		extra := JournalRecord{Session: 9, Op: mpi.WireOp{Kind: mpi.WirePing}}
		if err := w.Append(extra); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, _, err = ReadJournal(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 6 || got[5] != extra {
			t.Fatalf("tear %d: after repair-append got %d records (last %+v)",
				tear, len(got), got[len(got)-1])
		}
		// Restore the clean 5-record file for the next tear shape.
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalCorruptMidRecord: a bit flipped inside an earlier record
// stops the scan there — the journal's trust ends at the first bad CRC.
func TestJournalCorruptMidRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := OpenJournal(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleOps(5) {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	b[2*JournalRecordSize+10] ^= 0xFF
	os.WriteFile(path, b, 0o644)
	got, off, err := ReadJournal(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || off != uint64(2*JournalRecordSize) {
		t.Fatalf("read %d records to %d, want 2 to %d", len(got), off, 2*JournalRecordSize)
	}
}

func TestReadJournalMissingFile(t *testing.T) {
	recs, off, err := ReadJournal(filepath.Join(t.TempDir(), "nope"), 0)
	if err != nil || recs != nil || off != 0 {
		t.Fatalf("missing journal: %v %v %d, want nil nil 0", recs, err, off)
	}
}

func sampleSnapshot() *Snapshot {
	s := &Snapshot{}
	for i := 0; i < 3; i++ {
		sh := ShardState{JournalOff: uint64(i * 640)}
		for j := range sh.Counters {
			sh.Counters[j] = uint64(i*100 + j)
		}
		for j := 0; j < i*2; j++ {
			sh.PRQ = append(sh.PRQ, QueueEntry{Rank: -1, Tag: int32(j), Ctx: uint16(i), Handle: uint64(j)})
			sh.UMQ = append(sh.UMQ, QueueEntry{Rank: int32(j), Tag: -2, Ctx: uint16(i), Handle: uint64(j + 50)})
		}
		s.Shards = append(s.Shards, sh)
	}
	s.Sessions = []SessionState{
		{ID: 7, HighWater: 99, Ring: []ReplyAt{
			{Seq: 98, Reply: mpi.WireReply{Kind: mpi.WireArrive, Status: mpi.WireOK, Outcome: 1, Handle: 4, Cycles: 12}},
			{Seq: 99, Reply: mpi.WireReply{Kind: mpi.WirePost, Status: mpi.WireOK}},
		}},
		{ID: 8, HighWater: 0},
	}
	return s
}

func snapEqual(a, b *Snapshot) bool {
	if len(a.Shards) != len(b.Shards) || len(a.Sessions) != len(b.Sessions) {
		return false
	}
	for i := range a.Shards {
		x, y := &a.Shards[i], &b.Shards[i]
		if x.JournalOff != y.JournalOff || x.Counters != y.Counters ||
			len(x.PRQ) != len(y.PRQ) || len(x.UMQ) != len(y.UMQ) {
			return false
		}
		for j := range x.PRQ {
			if x.PRQ[j] != y.PRQ[j] {
				return false
			}
		}
		for j := range x.UMQ {
			if x.UMQ[j] != y.UMQ[j] {
				return false
			}
		}
	}
	for i := range a.Sessions {
		x, y := &a.Sessions[i], &b.Sessions[i]
		if x.ID != y.ID || x.HighWater != y.HighWater || len(x.Ring) != len(y.Ring) {
			return false
		}
		for j := range x.Ring {
			if x.Ring[j] != y.Ring[j] {
				return false
			}
		}
	}
	return true
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !snapEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for _, bit := range []int{0, 9, len(clean) / 2, len(clean) - 1} {
		b := append([]byte{}, clean...)
		b[bit] ^= 0x40
		if _, err := DecodeSnapshot(bytes.NewReader(b)); err == nil {
			t.Errorf("accepted snapshot with byte %d flipped", bit)
		}
	}
	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(clean); n += 7 {
		if _, err := DecodeSnapshot(bytes.NewReader(clean[:n])); err == nil {
			t.Errorf("accepted %d-byte truncation", n)
		}
	}
	// Trailing garbage is rejected too (the CRC covers it).
	if _, err := DecodeSnapshot(bytes.NewReader(append(append([]byte{}, clean...), 0))); err == nil {
		t.Error("accepted trailing byte")
	}
}

func TestSnapshotFileAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.spco")
	if s, err := ReadSnapshotFile(path); err != nil || s != nil {
		t.Fatalf("missing snapshot: %v %v, want nil nil", s, err)
	}
	want := sampleSnapshot()
	if err := WriteSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a second snapshot; the file must be wholly the new
	// one and no temp litter may remain.
	want.Shards[0].JournalOff = 1 << 30
	if err := WriteSnapshotFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !snapEqual(got, want) {
		t.Fatal("reread snapshot differs from last write")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("snapshot dir has %d entries, want 1 (temp litter?)", len(ents))
	}
}

// FuzzDecodeSnapshot: arbitrary bytes must never panic the decoder,
// and any accepted snapshot must re-encode byte-identically (the codec
// is canonical).
func FuzzDecodeSnapshot(f *testing.F) {
	var buf bytes.Buffer
	EncodeSnapshot(&buf, sampleSnapshot())
	f.Add(buf.Bytes())
	buf.Reset()
	EncodeSnapshot(&buf, &Snapshot{})
	f.Add(buf.Bytes())
	f.Add([]byte(snapshotMagic))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(bytes.NewReader(b))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeSnapshot(&out, s); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), b) {
			t.Fatalf("accepted snapshot is not canonical: %d in, %d out", len(b), out.Len())
		}
	})
}

// FuzzJournalScan: arbitrary journal bytes must scan without panicking
// and every record reported must sit inside the clean offset.
func FuzzJournalScan(f *testing.F) {
	var b []byte
	for _, rec := range sampleOps(3) {
		b = appendRecord(b, rec)
	}
	f.Add(b)
	f.Add(b[:len(b)-5])
	f.Add([]byte{journalMarker})
	f.Fuzz(func(t *testing.T, b []byte) {
		recs, off, err := scanRecords(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("scanRecords errored: %v", err)
		}
		if off > uint64(len(b)) {
			t.Fatalf("clean offset %d past input length %d", off, len(b))
		}
		if off != uint64(len(recs)*JournalRecordSize) {
			t.Fatalf("offset %d does not cover %d records", off, len(recs))
		}
	})
}
