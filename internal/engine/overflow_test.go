package engine

import (
	"strings"
	"testing"

	"spco/internal/cache"
	"spco/internal/match"
	"spco/internal/matchlist"
)

func boundedCfg(cap int, pol OverflowPolicy) Config {
	cfg := baseCfg()
	cfg.UMQCapacity = cap
	cfg.Overflow = pol
	return cfg
}

func fillUMQ(en *Engine, n int) {
	for i := 0; i < n; i++ {
		_, outcome, _ := en.ArriveFull(match.Envelope{Rank: 1, Tag: int32(i), Ctx: 1}, uint64(i))
		if outcome != ArriveQueued {
			panic("fillUMQ: expected ArriveQueued")
		}
	}
}

func TestArriveRefusedPastCapacityDropPolicy(t *testing.T) {
	en := MustNew(boundedCfg(4, OverflowDrop))
	fillUMQ(en, 4)
	req, outcome, cycles := en.ArriveFull(match.Envelope{Rank: 1, Tag: 99, Ctx: 1}, 99)
	if outcome != ArriveRefused || req != 0 {
		t.Fatalf("outcome = %v, req = %d; want ArriveRefused", outcome, req)
	}
	if cycles == 0 {
		t.Error("a refused arrival must still pay its PRQ search")
	}
	if en.UMQLen() != 4 {
		t.Errorf("UMQ grew past capacity: %d", en.UMQLen())
	}
	st := en.Stats()
	if st.UMQOverflows != 1 || st.Refused != 1 || st.Rendezvous != 0 {
		t.Errorf("stats = %+v, want 1 overflow, 1 refused", st)
	}
	// Draining one slot readmits arrivals.
	if _, ok, _ := en.PostRecv(1, 0, 1, 500); !ok {
		t.Fatal("drain post did not match")
	}
	if _, outcome, _ := en.ArriveFull(match.Envelope{Rank: 1, Tag: 99, Ctx: 1}, 99); outcome != ArriveQueued {
		t.Errorf("after drain, outcome = %v, want ArriveQueued", outcome)
	}
}

func TestArriveRendezvousDemotionKeepsHeader(t *testing.T) {
	en := MustNew(boundedCfg(4, OverflowRendezvous))
	fillUMQ(en, 4)
	_, outcome, _ := en.ArriveFull(match.Envelope{Rank: 1, Tag: 99, Ctx: 1}, 99)
	if outcome != ArriveQueuedRendezvous {
		t.Fatalf("outcome = %v, want ArriveQueuedRendezvous", outcome)
	}
	// The header still entered the UMQ: matching must find it.
	if en.UMQLen() != 5 {
		t.Errorf("UMQ len = %d, want 5 (header appended past the eager bound)", en.UMQLen())
	}
	msg, ok, _ := en.PostRecv(1, 99, 1, 500)
	if !ok || msg != 99 {
		t.Fatalf("demoted message unmatchable: msg=%d ok=%v", msg, ok)
	}
	st := en.Stats()
	if st.UMQOverflows != 1 || st.Rendezvous != 1 || st.Refused != 0 {
		t.Errorf("stats = %+v, want 1 overflow, 1 rendezvous, 0 refused", st)
	}
}

func TestArrivePRQHitBypassesCapacity(t *testing.T) {
	// A full UMQ must not refuse arrivals that match a posted receive:
	// the capacity bounds buffering, not matching.
	en := MustNew(boundedCfg(2, OverflowDrop))
	fillUMQ(en, 2)
	en.PostRecv(3, 7, 1, 100)
	req, outcome, _ := en.ArriveFull(match.Envelope{Rank: 3, Tag: 7, Ctx: 1}, 50)
	if outcome != ArriveMatched || req != 100 {
		t.Errorf("PRQ hit at full UMQ: outcome = %v req = %d, want ArriveMatched 100", outcome, req)
	}
}

func TestArriveWrapperMatchesArriveFull(t *testing.T) {
	en := MustNew(baseCfg())
	en.PostRecv(2, 5, 1, 77)
	req, matched, _ := en.Arrive(match.Envelope{Rank: 2, Tag: 5, Ctx: 1}, 10)
	if !matched || req != 77 {
		t.Errorf("Arrive = (%d, %v), want (77, true)", req, matched)
	}
	if _, matched, _ := en.Arrive(match.Envelope{Rank: 9, Tag: 9, Ctx: 1}, 11); matched {
		t.Error("unexpected arrival reported matched")
	}
}

func TestConfigValidateRejectsMisconfig(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no profile", func(c *Config) { c.Profile = cache.Profile{} }, "Cores"},
		{"core out of range", func(c *Config) { c.Core = 99 }, "Core"},
		{"negative heater period", func(c *Config) { c.HotCache = true; c.HeaterPeriodNS = -1 }, "HeaterPeriodNS"},
		{"heater core out of range", func(c *Config) { c.HotCache = true; c.HeaterCore = -2 }, "HeaterCore"},
		{"negative network cache", func(c *Config) { c.NetworkCacheBytes = -1 }, "NetworkCacheBytes"},
		{"negative partition", func(c *Config) { c.L3PartitionWays = -1 }, "L3PartitionWays"},
		{"negative umq capacity", func(c *Config) { c.UMQCapacity = -1 }, "UMQCapacity"},
		{"capacity without policy", func(c *Config) { c.UMQCapacity = 8 }, "overflow policy"},
		{"policy without capacity", func(c *Config) { c.Overflow = OverflowCredit }, "UMQCapacity"},
		{"fourd commsize too large", func(c *Config) {
			c.Kind = matchlist.KindFourD
			c.CommSize = matchlist.MaxCommSize + 1
		}, "CommSize"},
	}
	for _, tc := range cases {
		cfg := baseCfg()
		tc.mut(&cfg)
		_, err := New(cfg)
		if err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := New(baseCfg()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestParseOverflowPolicy(t *testing.T) {
	for in, want := range map[string]OverflowPolicy{
		"":           OverflowUnbounded,
		"none":       OverflowUnbounded,
		"unbounded":  OverflowUnbounded,
		"drop":       OverflowDrop,
		"credit":     OverflowCredit,
		"rendezvous": OverflowRendezvous,
	} {
		got, err := ParseOverflowPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseOverflowPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
		if got.String() == "" {
			t.Errorf("empty String for %v", got)
		}
	}
	if _, err := ParseOverflowPolicy("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on invalid config")
		}
	}()
	cfg := baseCfg()
	cfg.UMQCapacity = -1
	MustNew(cfg)
}
