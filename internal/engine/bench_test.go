package engine

import (
	"testing"

	"spco/internal/perf"
	"spco/internal/telemetry"
)

// End-to-end churn benchmarks, with and without the observability
// layers attached. bench-smoke runs each once in CI; comparing the
// plain and instrumented variants locally measures host-side (not
// simulated) observer overhead.

func benchChurn(b *testing.B, cfg Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		en := MustNew(cfg)
		driveChurn(en, 2, 200)
		en.PublishTelemetry()
	}
}

func BenchmarkChurnPlain(b *testing.B) {
	benchChurn(b, baseCfg())
}

func BenchmarkChurnWithPMU(b *testing.B) {
	cfg := baseCfg()
	cfg.Perf = perf.New(perf.Options{SampleInterval: perf.DefaultSampleInterval, Experiment: "bench"})
	benchChurn(b, cfg)
}

func BenchmarkChurnWithTelemetry(b *testing.B) {
	cfg := baseCfg()
	cfg.Telemetry = telemetry.NewCollector(nil)
	benchChurn(b, cfg)
}

func BenchmarkChurnFullyInstrumented(b *testing.B) {
	cfg := baseCfg()
	cfg.HotCache = true
	cfg.Perf = perf.New(perf.Options{SampleInterval: perf.DefaultSampleInterval, Experiment: "bench"})
	cfg.Telemetry = telemetry.NewCollector(nil)
	cfg.ResidencyInterval = 10_000
	benchChurn(b, cfg)
}
