package engine

import (
	"testing"

	"spco/internal/match"
	"spco/internal/matchlist"
)

// The zero-allocation gate: steady-state matching on a pooled engine
// must not touch the Go heap. Node pools recycle list nodes, the
// in-place RegionSet absorbs region churn, and the batch APIs write
// into caller-owned slices — so once warmed, Arrive, PostRecv and the
// batch variants run at 0 allocs/op. CI runs this via `make
// hotpath-gate`; a regression here is a hot-path performance bug even
// when every functional test still passes.

// allocGateKinds are the structures the pools cover directly (the
// remaining kinds compose these).
var allocGateKinds = []matchlist.Kind{
	matchlist.KindLLA, matchlist.KindBaseline, matchlist.KindHashBins,
}

func newPooledEngine(t *testing.T, kind matchlist.Kind) *Engine {
	t.Helper()
	cfg := baseCfg()
	cfg.Kind = kind
	cfg.Pool = true
	return MustNew(cfg)
}

// churnOnce drives one balanced cycle over both queues: a PRQ
// append+match pair and a UMQ append+match pair.
func churnOnce(en *Engine) {
	en.PostRecv(1, 3, 1, 7)
	en.Arrive(match.Envelope{Rank: 1, Tag: 3, Ctx: 1}, 9)
	en.Arrive(match.Envelope{Rank: 2, Tag: 4, Ctx: 1}, 11)
	en.PostRecv(2, 4, 1, 8)
}

func TestScalarHotPathZeroAlloc(t *testing.T) {
	for _, kind := range allocGateKinds {
		t.Run(kind.String(), func(t *testing.T) {
			en := newPooledEngine(t, kind)
			// Warm until pools and free lists reach steady capacity.
			for i := 0; i < 512; i++ {
				churnOnce(en)
			}
			if avg := testing.AllocsPerRun(200, func() { churnOnce(en) }); avg != 0 {
				t.Errorf("steady-state Arrive/PostRecv allocates %.2f allocs per churn cycle, want 0", avg)
			}
		})
	}
}

func TestBatchHotPathZeroAlloc(t *testing.T) {
	const k = 64
	for _, kind := range allocGateKinds {
		t.Run(kind.String(), func(t *testing.T) {
			en := newPooledEngine(t, kind)
			posts := make([]PostReq, k)
			envs := make([]match.Envelope, k)
			msgs := make([]uint64, k)
			pres := make([]PostResult, 0, k)
			ares := make([]ArriveResult, 0, k)
			for i := 0; i < k; i++ {
				posts[i] = PostReq{Rank: i % 8, Tag: i % 4, Ctx: 1, Req: uint64(i) + 1}
				envs[i] = match.Envelope{Rank: int32(i % 8), Tag: int32(i % 4), Ctx: 1}
				msgs[i] = uint64(i) + 100
			}
			batch := func() {
				pres = en.PostRecvBatch(posts, pres)
				ares = en.ArriveBatch(envs, msgs, ares)
			}
			for i := 0; i < 64; i++ {
				batch()
			}
			if en.PRQLen() != 0 || en.UMQLen() != 0 {
				t.Fatalf("churn is not balanced: PRQ=%d UMQ=%d", en.PRQLen(), en.UMQLen())
			}
			if avg := testing.AllocsPerRun(100, batch); avg != 0 {
				t.Errorf("steady-state batch of %d pairs allocates %.2f allocs per batch, want 0", k, avg)
			}
		})
	}
}
