package engine

import (
	"testing"

	"spco/internal/cache"
	"spco/internal/match"
	"spco/internal/matchlist"
)

type countingObserver struct {
	arrives, posts, cancels, phases int
	umqHits, prqMatches             int
	lastDepth                       int
}

func (c *countingObserver) OnArrive(e match.Envelope, matched bool, depth int, cycles uint64) {
	c.arrives++
	if matched {
		c.prqMatches++
	}
	c.lastDepth = depth
}

func (c *countingObserver) OnPost(rank, tag int, ctx uint16, req uint64, umqHit bool, depth int, cycles uint64) {
	c.posts++
	if umqHit {
		c.umqHits++
	}
}

func (c *countingObserver) OnCancel(req uint64, found bool) { c.cancels++ }

func (c *countingObserver) OnComputePhase(durationNS float64) { c.phases++ }

func TestObserverSeesEverything(t *testing.T) {
	en := MustNew(baseCfg())
	obs := &countingObserver{}
	en.SetObserver(obs)

	en.PostRecv(1, 1, 1, 10)
	en.Arrive(match.Envelope{Rank: 1, Tag: 1, Ctx: 1}, 0) // PRQ match
	en.Arrive(match.Envelope{Rank: 2, Tag: 2, Ctx: 1}, 5) // unexpected
	en.PostRecv(2, 2, 1, 20)                              // UMQ hit
	en.PostRecv(3, 3, 1, 30)
	en.Cancel(30)
	en.BeginComputePhase(1e5)

	if obs.arrives != 2 || obs.posts != 3 || obs.cancels != 1 || obs.phases != 1 {
		t.Errorf("observer counts: %+v", obs)
	}
	if obs.prqMatches != 1 || obs.umqHits != 1 {
		t.Errorf("observer outcomes: %+v", obs)
	}

	// Detach: no further callbacks.
	en.SetObserver(nil)
	en.PostRecv(9, 9, 1, 90)
	if obs.posts != 3 {
		t.Error("detached observer still called")
	}
}

func TestHistogramsTrackQueues(t *testing.T) {
	cfg := baseCfg()
	cfg.TrackHistograms = true
	cfg.HistogramBucket = 1
	en := MustNew(cfg)

	for i := 0; i < 5; i++ {
		en.PostRecv(0, i, 1, uint64(i))
	}
	for i := 0; i < 5; i++ {
		en.Arrive(match.Envelope{Rank: 0, Tag: int32(i), Ctx: 1}, 0)
	}

	lh := en.PRQLengthHistogram()
	if lh == nil {
		t.Fatal("length histogram missing")
	}
	// 10 mutations sampled: lengths 1..5 going up, 4..0 coming down.
	if lh.Total() != 10 {
		t.Errorf("samples = %d, want 10", lh.Total())
	}
	if lh.Max() != 5 {
		t.Errorf("max length = %d, want 5", lh.Max())
	}
	dh := en.PRQDepthHistogram()
	if dh.Total() != 5 {
		t.Errorf("depth samples = %d, want 5 (one per arrival)", dh.Total())
	}
	// In-order consumption: every search matches at depth 1.
	if dh.Max() != 1 {
		t.Errorf("max depth = %d, want 1", dh.Max())
	}
	if en.UMQLengthHistogram().Max() != 0 {
		t.Error("UMQ stayed empty; histogram disagrees")
	}
}

func TestHistogramsDisabledByDefault(t *testing.T) {
	en := MustNew(baseCfg())
	if en.PRQLengthHistogram() != nil || en.PRQDepthHistogram() != nil {
		t.Error("histograms should be nil unless enabled")
	}
	// Operations must not panic with sampling disabled.
	en.PostRecv(0, 0, 1, 1)
	en.Arrive(match.Envelope{Rank: 0, Tag: 0, Ctx: 1}, 0)
}

func TestObserverWithNetworkCacheAndHeater(t *testing.T) {
	cfg := Config{
		Profile:        cache.SandyBridge,
		Kind:           matchlist.KindLLA,
		EntriesPerNode: 2,
		HotCache:       true,
		Pool:           true,
		NetworkCache:   true,
	}
	en := MustNew(cfg)
	obs := &countingObserver{}
	en.SetObserver(obs)
	en.PostRecv(0, 0, 1, 1)
	en.BeginComputePhase(1e5)
	en.Arrive(match.Envelope{Rank: 0, Tag: 0, Ctx: 1}, 0)
	if obs.posts != 1 || obs.arrives != 1 || obs.phases != 1 {
		t.Errorf("observer under full config: %+v", obs)
	}
}

func TestObserverCancelWithHotCaching(t *testing.T) {
	// Cancels remove queue regions, which the heater must deregister
	// (the lock-contention path); the observer must still see every
	// cancel, found or not, and the sync cycles must land in stats.
	cfg := baseCfg()
	cfg.HotCache = true
	en := MustNew(cfg)
	obs := &countingObserver{}
	en.SetObserver(obs)

	for i := 0; i < 8; i++ {
		en.PostRecv(0, i, 1, uint64(i+1))
	}
	found, cy := en.Cancel(3)
	if !found || cy == 0 {
		t.Fatalf("Cancel(3): found=%v cycles=%d", found, cy)
	}
	if found, _ := en.Cancel(999); found {
		t.Error("Cancel(999) should miss")
	}
	if obs.cancels != 2 {
		t.Errorf("observer cancels = %d, want 2 (hit and miss)", obs.cancels)
	}
	if en.Stats().SyncCycles == 0 {
		t.Error("hot-cached posts should have charged heater sync cycles")
	}
}

func TestObserverComputePhasesWithHotCaching(t *testing.T) {
	// Every phase boundary notifies the observer exactly once and runs
	// one heater sweep, regardless of phase length or registry size.
	cfg := baseCfg()
	cfg.HotCache = true
	cfg.HeaterPeriodNS = 500
	en := MustNew(cfg)
	obs := &countingObserver{}
	en.SetObserver(obs)

	for i := 0; i < 16; i++ {
		en.PostRecv(0, i, 1, uint64(i+1))
	}
	for p := 0; p < 4; p++ {
		en.BeginComputePhase(float64(p+1) * 1e5)
	}
	if obs.phases != 4 {
		t.Errorf("observer phases = %d, want 4", obs.phases)
	}
	if en.Heater().Sweeps() != 4 {
		t.Errorf("heater sweeps = %d, want 4", en.Heater().Sweeps())
	}
	if en.Heater().Touches() == 0 {
		t.Error("sweeps over a populated registry should touch lines")
	}
}
