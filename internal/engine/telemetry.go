package engine

import (
	"spco/internal/cache"
	"spco/internal/matchlist"
	"spco/internal/simmem"
	"spco/internal/telemetry"
)

// Telemetry wiring. When a telemetry.Collector is attached at
// construction the engine:
//
//   - enables cache residency tracking and tags the PRQ and UMQ node
//     regions with owners as the structures allocate and free them, so
//     ScanResidency can report per-queue occupancy curves and the
//     eviction matrix can attribute who displaced queue state;
//   - observes every operation's cycle cost into per-op histograms
//     (spco_op_cycles{op});
//   - samples queue depths and per-owner, per-level residency fractions
//     into the collector's time series — every ResidencyInterval
//     simulated cycles, and at every compute-phase boundary;
//   - records heater sweep coverage as a series via the sweep hook;
//   - on PublishTelemetry, folds end-of-run totals (engine counters,
//     cache stats, heater counters, the eviction matrix) into the
//     registry.
//
// With no collector the engine holds a nil *engineTelemetry and every
// instrumented path costs exactly one pointer comparison, so benchmark
// cycle totals are bit-identical with telemetry off.

// engineTelemetry binds one engine instance to a collector.
type engineTelemetry struct {
	en *Engine
	c  *telemetry.Collector

	// labels identify this engine configuration on registry metrics;
	// series additionally carries a per-engine instance id so repeated
	// trials of one configuration keep distinct, monotonic series.
	labels telemetry.Labels
	series telemetry.Labels

	arrive *telemetry.Histogram
	post   *telemetry.Histogram
	cancel *telemetry.Histogram

	interval uint64 // residency sampling cadence in simulated cycles
	nextScan uint64

	// Previously published totals, so publish() adds deltas and stays
	// idempotent even when several engines share one labeled counter.
	pubStats  Stats
	pubCache  cache.Stats
	pubEvict  map[cache.EvictionKey]uint64
	pubHeater struct{ sweeps, touches, sync uint64 }
	pubPool   [2]matchlist.PoolStats // prq, umq
}

// ownerTagger labels queue node regions in the hierarchy's residency
// tracker as the match structures allocate and release them. Tag
// maintenance is observer bookkeeping, not a modeled memory operation,
// so it charges no cycles.
type ownerTagger struct {
	h     *cache.Hierarchy
	owner string
}

// RegionAdded implements matchlist.RegionListener.
func (o ownerTagger) RegionAdded(r simmem.Region) uint64 {
	o.h.TagOwner(o.owner, r)
	return 0
}

// RegionRemoved implements matchlist.RegionListener.
func (o ownerTagger) RegionRemoved(r simmem.Region) uint64 {
	o.h.UntagOwner(r)
	return 0
}

// Owner tags used for the engine's own regions.
const (
	OwnerPRQ = "prq"
	OwnerUMQ = "umq"
	OwnerApp = "app"
)

func newEngineTelemetry(en *Engine, c *telemetry.Collector) *engineTelemetry {
	hot := "off"
	if en.cfg.HotCache {
		hot = "on"
	}
	labels := telemetry.MergeLabels(c.Base, telemetry.Labels{
		"arch": en.cfg.Profile.Name,
		"list": en.cfg.Kind.String(),
		"hot":  hot,
	})
	t := &engineTelemetry{
		en:       en,
		c:        c,
		labels:   labels,
		series:   telemetry.MergeLabels(labels, telemetry.Labels{"inst": c.NextInstance()}),
		interval: en.cfg.ResidencyInterval,
		pubEvict: make(map[cache.EvictionKey]uint64),
	}
	reg := c.Registry
	reg.Help("spco_op_cycles", "Modeled cycle cost per matching operation.")
	reg.Help("spco_ops_total", "Matching operations processed.")
	reg.Help("spco_matches_total", "Successful matches per queue.")
	reg.Help("spco_umq_appends_total", "Arrivals deferred to the unexpected queue.")
	reg.Help("spco_engine_cycles_total", "Total modeled engine cycles.")
	reg.Help("spco_sync_cycles_total", "Heater-synchronisation share of engine cycles.")
	reg.Help("spco_cache_accesses_total", "Demand accesses observed by the hierarchy.")
	reg.Help("spco_cache_hits_total", "Demand hits per cache level.")
	reg.Help("spco_dram_loads_total", "Demand accesses served by DRAM.")
	reg.Help("spco_prefetch_fills_total", "Prefetch fills issued by the hierarchy.")
	reg.Help("spco_evictions_total", "Eviction-attribution matrix: at level, a fill by `by` displaced a line owned by `of`.")
	reg.Help("spco_queue_len", "Final queue length.")
	reg.Help("spco_queue_bytes", "Queue metadata footprint in bytes.")
	reg.Help("spco_heater_sweeps_total", "Heater sweeps performed.")
	reg.Help("spco_heater_touches_total", "Cache lines touched by the heater.")
	reg.Help("spco_heater_sync_cycles_total", "Lifetime heater-synchronisation cycles.")
	reg.Help("spco_heater_registered_bytes", "Bytes currently registered with the heater.")
	if en.cfg.Pool {
		reg.Help("spco_pool_gets_total", "Queue nodes served from the recycling pool.")
		reg.Help("spco_pool_misses_total", "Queue-node allocations the pool could not serve.")
		reg.Help("spco_pool_puts_total", "Queue nodes returned to the recycling pool.")
		reg.Help("spco_pool_size", "Queue nodes currently held by the recycling pool.")
	}
	if en.cfg.UMQCapacity > 0 {
		reg.Help("spco_umq_overflows_total", "Arrivals that found the bounded UMQ at capacity.")
		reg.Help("spco_umq_refused_total", "Overflow arrivals refused (drop/credit policies).")
		reg.Help("spco_umq_rendezvous_total", "Overflow arrivals demoted to rendezvous headers.")
	}
	op := func(name string) *telemetry.Histogram {
		return reg.Histogram("spco_op_cycles",
			telemetry.MergeLabels(labels, telemetry.Labels{"op": name}), telemetry.CycleBuckets)
	}
	t.arrive, t.post, t.cancel = op("arrive"), op("post"), op("cancel")
	if ht := en.heater; ht != nil {
		ht.AddSweepHook(func(phaseNS float64, touched uint64, coverage float64) {
			t.c.Sampler.Record("spco_heater_coverage", t.series, t.en.stats.Cycles, coverage)
		})
	}
	return t
}

// op records one operation's cycle cost and advances interval sampling.
func (t *engineTelemetry) op(h *telemetry.Histogram, cycles uint64) {
	h.Observe(float64(cycles))
	if t.interval == 0 {
		return
	}
	if now := t.en.stats.Cycles; now >= t.nextScan {
		t.nextScan = now + t.interval
		t.sample(now)
	}
}

// phase samples at a compute-phase boundary (always, interval or not):
// the flush-and-resweep transition is exactly the moment the occupancy
// claim is about.
func (t *engineTelemetry) phase() {
	now := t.en.stats.Cycles
	if t.interval > 0 {
		t.nextScan = now + t.interval
	}
	t.sample(now)
}

// sample records queue depths and per-owner residency fractions at
// simulated time now.
func (t *engineTelemetry) sample(now uint64) {
	s := t.c.Sampler
	s.Record("spco_queue_len",
		telemetry.MergeLabels(t.series, telemetry.Labels{"queue": "prq"}), now, float64(t.en.prq.Len()))
	s.Record("spco_queue_len",
		telemetry.MergeLabels(t.series, telemetry.Labels{"queue": "umq"}), now, float64(t.en.umq.Len()))
	for _, r := range t.en.hier.ScanResidency() {
		for _, lv := range [...]struct {
			name string
			frac float64
		}{{"l1", r.L1Frac()}, {"l2", r.L2Frac()}, {"l3", r.L3Frac()}, {"nc", r.NCFrac()}} {
			s.Record("spco_region_residency",
				telemetry.MergeLabels(t.series, telemetry.Labels{"owner": r.Owner, "level": lv.name}),
				now, lv.frac)
		}
	}
}

// publish folds end-of-run totals into the registry. Deltas against
// the previous publish keep repeated calls idempotent, and several
// engines sharing a labeled counter accumulate instead of clobbering.
func (t *engineTelemetry) publish() {
	reg := t.c.Registry
	add := func(name string, extra telemetry.Labels, delta float64) {
		if delta > 0 {
			reg.Counter(name, telemetry.MergeLabels(t.labels, extra)).Add(delta)
		}
	}
	gauge := func(name string, extra telemetry.Labels, v float64) {
		reg.Gauge(name, telemetry.MergeLabels(t.labels, extra)).Set(v)
	}

	st, prev := t.en.stats, t.pubStats
	add("spco_ops_total", telemetry.Labels{"op": "arrive"}, float64(st.Arrivals-prev.Arrivals))
	add("spco_ops_total", telemetry.Labels{"op": "post"}, float64(st.Recvs-prev.Recvs))
	add("spco_matches_total", telemetry.Labels{"queue": "prq"}, float64(st.PRQMatches-prev.PRQMatches))
	add("spco_matches_total", telemetry.Labels{"queue": "umq"}, float64(st.UMQMatches-prev.UMQMatches))
	add("spco_umq_appends_total", nil, float64(st.UMQAppends-prev.UMQAppends))
	add("spco_engine_cycles_total", nil, float64(st.Cycles-prev.Cycles))
	add("spco_sync_cycles_total", nil, float64(st.SyncCycles-prev.SyncCycles))
	add("spco_umq_overflows_total", nil, float64(st.UMQOverflows-prev.UMQOverflows))
	add("spco_umq_refused_total", nil, float64(st.Refused-prev.Refused))
	add("spco_umq_rendezvous_total", nil, float64(st.Rendezvous-prev.Rendezvous))
	t.pubStats = st

	cs := t.en.hier.Stats()
	d := cs.Sub(t.pubCache)
	add("spco_cache_accesses_total", nil, float64(d.Accesses))
	add("spco_cache_hits_total", telemetry.Labels{"level": "l1"}, float64(d.L1Hits))
	add("spco_cache_hits_total", telemetry.Labels{"level": "l2"}, float64(d.L2Hits))
	add("spco_cache_hits_total", telemetry.Labels{"level": "l3"}, float64(d.L3Hits))
	add("spco_cache_hits_total", telemetry.Labels{"level": "nc"}, float64(d.NCHits))
	add("spco_dram_loads_total", nil, float64(d.DRAMLoads))
	add("spco_prefetch_fills_total", nil, float64(d.Prefetches))
	t.pubCache = cs

	for k, v := range t.en.hier.EvictionMatrix() {
		add("spco_evictions_total",
			telemetry.Labels{"level": k.Level, "by": k.By, "of": k.Of}, float64(v-t.pubEvict[k]))
		t.pubEvict[k] = v
	}

	gauge("spco_queue_len", telemetry.Labels{"queue": "prq"}, float64(t.en.prq.Len()))
	gauge("spco_queue_len", telemetry.Labels{"queue": "umq"}, float64(t.en.umq.Len()))
	gauge("spco_queue_bytes", nil, float64(t.en.MemoryBytes()))

	if t.en.cfg.Pool {
		prq, umq := t.en.PoolStatsByQueue()
		for i, q := range [...]struct {
			label string
			st    matchlist.PoolStats
		}{{"prq", prq}, {"umq", umq}} {
			prev := t.pubPool[i]
			ql := telemetry.Labels{"queue": q.label}
			add("spco_pool_gets_total", ql, float64(q.st.Gets-prev.Gets))
			add("spco_pool_misses_total", ql, float64(q.st.Misses-prev.Misses))
			add("spco_pool_puts_total", ql, float64(q.st.Puts-prev.Puts))
			gauge("spco_pool_size", ql, float64(q.st.Size))
			t.pubPool[i] = q.st
		}
	}

	if ht := t.en.heater; ht != nil {
		add("spco_heater_sweeps_total", nil, float64(ht.Sweeps()-t.pubHeater.sweeps))
		add("spco_heater_touches_total", nil, float64(ht.Touches()-t.pubHeater.touches))
		add("spco_heater_sync_cycles_total", nil, float64(ht.SyncCyclesTotal()-t.pubHeater.sync))
		t.pubHeater.sweeps, t.pubHeater.touches, t.pubHeater.sync =
			ht.Sweeps(), ht.Touches(), ht.SyncCyclesTotal()
		gauge("spco_heater_registered_bytes", nil, float64(ht.RegisteredBytes()))
	}
}

// PublishTelemetry folds the engine's end-of-run totals into the
// attached collector's registry: engine counters, cache-hierarchy
// stats, heater counters, and the eviction-attribution matrix. Safe to
// call repeatedly (idempotent); a no-op without a collector.
func (en *Engine) PublishTelemetry() {
	if en.tel != nil {
		en.tel.publish()
	}
}

// Telemetry returns the attached collector, or nil.
func (en *Engine) Telemetry() *telemetry.Collector {
	if en.tel == nil {
		return nil
	}
	return en.tel.c
}

// SampleTelemetry forces an immediate residency/queue-depth sample at
// the current simulated time (e.g. a workload's own checkpoints). A
// no-op without a collector.
func (en *Engine) SampleTelemetry() {
	if en.tel != nil {
		en.tel.sample(en.stats.Cycles)
	}
}

// TagRegion labels an address region for residency attribution beyond
// the queues the engine tags itself (e.g. the workload's application
// buffers, tagged OwnerApp). A no-op unless telemetry is attached.
func (en *Engine) TagRegion(owner string, r simmem.Region) {
	en.hier.TagOwner(owner, r)
}
