package engine

// PMU wiring. When a perf.PMU is attached at construction the engine:
//
//   - connects it to the cache hierarchy as a probe, so every demand
//     access, prefetch, eviction, flush, and heater touch lands in the
//     PMU's counters;
//   - hands it a segment reader over the cache accessor, so the
//     sampling profiler's leaf frame is the queue node the current
//     search is inspecting;
//   - brackets every operation with BeginOp/EndOp, feeding the span log
//     and the per-op counters;
//   - advances the PMU's engine-cycle clock over compute phases, and
//     counts heater sweeps via a sweep hook.
//
// Like telemetry, the binding is nil-guarded everywhere: a detached
// engine pays one pointer comparison per operation and its simulated
// cycle totals are bit-identical (enforced by TestPerfDisabledIsBitIdentical).

import "spco/internal/perf"

// bindPerf connects cfg.Perf to the engine's components.
func (en *Engine) bindPerf() {
	p := en.cfg.Perf
	en.pmu = p
	en.hier.AttachProbe(p)
	p.SetSegFunc(func() int { return en.acc.Seg })
	if en.heater != nil {
		en.heater.AddSweepHook(func(phaseNS float64, touched uint64, coverage float64) {
			p.OnHeaterSweep()
		})
	}
}

// Perf returns the attached PMU, or nil.
func (en *Engine) Perf() *perf.PMU { return en.pmu }

// phaseCycles converts a compute-phase length to simulated cycles on
// the engine's clock, for the PMU's span/profile timeline.
func (en *Engine) phaseCycles(durationNS float64) uint64 {
	ns := en.cfg.Profile.CyclesToNanos(1)
	if ns <= 0 || durationNS <= 0 {
		return 0
	}
	return uint64(durationNS / ns)
}
