package engine

import (
	"testing"

	"spco/internal/cache"
	"spco/internal/match"
	"spco/internal/matchlist"
)

func baseCfg() Config {
	return Config{
		Profile:        cache.SandyBridge,
		Kind:           matchlist.KindLLA,
		EntriesPerNode: 2,
		CommSize:       64,
	}
}

func TestArriveMatchesPostedReceive(t *testing.T) {
	en := MustNew(baseCfg())
	en.PostRecv(3, 7, 1, 100)
	req, ok, cy := en.Arrive(match.Envelope{Rank: 3, Tag: 7, Ctx: 1}, 1)
	if !ok || req != 100 {
		t.Fatalf("Arrive: req=%d ok=%v, want 100/true", req, ok)
	}
	if cy == 0 {
		t.Error("operation should cost cycles")
	}
	if en.PRQLen() != 0 {
		t.Errorf("PRQ should be empty after match, len=%d", en.PRQLen())
	}
	s := en.Stats()
	if s.PRQMatches != 1 || s.Arrivals != 1 || s.Posts != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestUnexpectedPath(t *testing.T) {
	en := MustNew(baseCfg())
	// Message arrives before its receive: goes to the UMQ.
	if _, ok, _ := en.Arrive(match.Envelope{Rank: 2, Tag: 9, Ctx: 1}, 555); ok {
		t.Fatal("arrival with no posted receive must not match")
	}
	if en.UMQLen() != 1 {
		t.Fatalf("UMQ len = %d, want 1", en.UMQLen())
	}
	// The receive finds it.
	msg, ok, _ := en.PostRecv(2, 9, 1, 200)
	if !ok || msg != 555 {
		t.Fatalf("PostRecv: msg=%d ok=%v, want 555/true", msg, ok)
	}
	if en.UMQLen() != 0 || en.PRQLen() != 0 {
		t.Error("queues should be empty after the rendezvous")
	}
	s := en.Stats()
	if s.UMQMatches != 1 || s.UMQAppends != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestWildcardReceiveDrainsUMQInOrder(t *testing.T) {
	en := MustNew(baseCfg())
	en.Arrive(match.Envelope{Rank: 1, Tag: 1, Ctx: 1}, 10)
	en.Arrive(match.Envelope{Rank: 2, Tag: 2, Ctx: 1}, 20)
	msg, ok, _ := en.PostRecv(match.AnySource, match.AnyTag, 1, 0)
	if !ok || msg != 10 {
		t.Fatalf("wildcard receive got %d, want earliest arrival 10", msg)
	}
}

func TestCancelRemovesPosted(t *testing.T) {
	en := MustNew(baseCfg())
	en.PostRecv(1, 1, 1, 42)
	ok, _ := en.Cancel(42)
	if !ok {
		t.Fatal("Cancel failed")
	}
	if _, matched, _ := en.Arrive(match.Envelope{Rank: 1, Tag: 1, Ctx: 1}, 0); matched {
		t.Error("cancelled receive still matched")
	}
}

func TestDepthAccounting(t *testing.T) {
	en := MustNew(baseCfg())
	for i := 0; i < 10; i++ {
		en.PostRecv(0, i, 1, uint64(i))
	}
	en.ResetStats()
	en.Arrive(match.Envelope{Rank: 0, Tag: 9, Ctx: 1}, 0)
	if d := en.Stats().MeanPRQDepth(); d != 10 {
		t.Errorf("MeanPRQDepth = %v, want 10", d)
	}
}

func TestComputePhaseColdsCaches(t *testing.T) {
	en := MustNew(baseCfg())
	for i := 0; i < 256; i++ {
		en.PostRecv(0, i, 1, uint64(i))
	}
	// Warm pass.
	en.Arrive(match.Envelope{Rank: 0, Tag: 255, Ctx: 1}, 0)
	en.PostRecv(0, 255, 1, 255)
	en.ResetStats()
	_, _, warm := en.Arrive(match.Envelope{Rank: 0, Tag: 254, Ctx: 1}, 0)
	en.PostRecv(0, 254, 1, 254)

	en.BeginComputePhase(1e6)
	en.ResetStats()
	_, _, cold := en.Arrive(match.Envelope{Rank: 0, Tag: 253, Ctx: 1}, 0)
	if cold <= warm {
		t.Errorf("post-compute-phase search (%d cy) should cost more than warm (%d cy)", cold, warm)
	}
}

// Hot caching on Sandy Bridge: after a compute phase, a heated engine
// searches a long queue much faster than an unheated one — and the
// advantage must come from L3 hits, not DRAM loads.
func TestHotCachingHelpsOnSandyBridge(t *testing.T) {
	run := func(hot bool) uint64 {
		cfg := baseCfg()
		cfg.Kind = matchlist.KindBaseline
		cfg.HotCache = hot
		en := MustNew(cfg)
		for i := 0; i < 512; i++ {
			en.PostRecv(0, i, 1, uint64(i))
		}
		en.BeginComputePhase(1e6)
		en.ResetStats()
		_, _, cy := en.Arrive(match.Envelope{Rank: 0, Tag: 511, Ctx: 1}, 0)
		return cy
	}
	coldCy := run(false)
	hotCy := run(true)
	if hotCy*3/2 > coldCy {
		t.Errorf("hot caching should cut deep-search cost well below cold: hot=%d cold=%d", hotCy, coldCy)
	}
}

// The heater must not be pinned to the compute core (it would defeat
// the shared-cache placement); New corrects a bad configuration.
func TestHeaterCoreSeparation(t *testing.T) {
	cfg := baseCfg()
	cfg.HotCache = true
	cfg.Core = 0
	cfg.HeaterCore = 0
	en := MustNew(cfg)
	if en.Heater().Core() == cfg.Core {
		t.Error("heater core must differ from compute core")
	}
}

func TestSyncCyclesChargedWithHotCache(t *testing.T) {
	cfg := baseCfg()
	cfg.Kind = matchlist.KindBaseline
	cfg.HotCache = true
	en := MustNew(cfg)
	for i := 0; i < 32; i++ {
		en.PostRecv(0, i, 1, uint64(i))
	}
	// Draining removes nodes: without a pool each removal pays heater
	// synchronisation.
	for i := 0; i < 32; i++ {
		en.Arrive(match.Envelope{Rank: 0, Tag: int32(i), Ctx: 1}, 0)
	}
	if en.Stats().SyncCycles == 0 {
		t.Error("removals under hot caching should cost sync cycles")
	}

	// With the element pool, drains cost no synchronisation.
	cfg.Kind = matchlist.KindLLA
	cfg.Pool = true
	en2 := MustNew(cfg)
	for i := 0; i < 32; i++ {
		en2.PostRecv(0, i, 1, uint64(i))
	}
	drainStart := en2.Stats().SyncCycles
	for i := 0; i < 32; i++ {
		en2.Arrive(match.Envelope{Rank: 0, Tag: int32(i), Ctx: 1}, 0)
	}
	// Node recycling may re-register regions at zero cost; removals are free.
	if got := en2.Stats().SyncCycles - drainStart; got != 0 {
		t.Errorf("pooled drain cost %d sync cycles, want 0", got)
	}
}

func TestMemoryBytesTracksQueues(t *testing.T) {
	en := MustNew(baseCfg())
	before := en.MemoryBytes()
	for i := 0; i < 100; i++ {
		en.PostRecv(0, i, 1, uint64(i))
	}
	if en.MemoryBytes() <= before {
		t.Error("posting receives should grow queue memory")
	}
}

func TestMaxLenTracking(t *testing.T) {
	en := MustNew(baseCfg())
	for i := 0; i < 5; i++ {
		en.PostRecv(0, i, 1, uint64(i))
	}
	for i := 0; i < 3; i++ {
		en.Arrive(match.Envelope{Rank: 1, Tag: 99, Ctx: 1}, uint64(i))
	}
	s := en.Stats()
	if s.MaxPRQLen != 5 || s.MaxUMQLen != 3 {
		t.Errorf("max lens = %d/%d, want 5/3", s.MaxPRQLen, s.MaxUMQLen)
	}
}

func TestStatsMeanDepthEmpty(t *testing.T) {
	var s Stats
	if s.MeanPRQDepth() != 0 || s.MeanUMQDepth() != 0 {
		t.Error("empty stats should report zero depths")
	}
}

// Every structure kind works behind the engine, including the
// extension kinds, with communicator isolation intact.
func TestEngineKindMatrix(t *testing.T) {
	for _, kind := range []matchlist.Kind{
		matchlist.KindBaseline, matchlist.KindLLA, matchlist.KindHashBins,
		matchlist.KindRankArray, matchlist.KindFourD, matchlist.KindHWOffload,
		matchlist.KindPerComm,
	} {
		cfg := baseCfg()
		cfg.Kind = kind
		cfg.Bins = 64
		en := MustNew(cfg)
		// Two communicators, interleaved traffic.
		en.PostRecv(1, 5, 1, 11)
		en.PostRecv(1, 5, 2, 22)
		if req, ok, _ := en.Arrive(match.Envelope{Rank: 1, Tag: 5, Ctx: 2}, 0); !ok || req != 22 {
			t.Errorf("%v: comm-2 arrival got req %d ok=%v", kind, req, ok)
		}
		if req, ok, _ := en.Arrive(match.Envelope{Rank: 1, Tag: 5, Ctx: 1}, 0); !ok || req != 11 {
			t.Errorf("%v: comm-1 arrival got req %d ok=%v", kind, req, ok)
		}
		// Unexpected path round trip.
		en.Arrive(match.Envelope{Rank: 3, Tag: 9, Ctx: 1}, 77)
		if msg, ok, _ := en.PostRecv(3, 9, 1, 33); !ok || msg != 77 {
			t.Errorf("%v: UMQ round trip got msg %d ok=%v", kind, msg, ok)
		}
	}
}

// The engine's cycle accounting is monotone and consistent with its
// stats under a mixed workload.
func TestEngineCycleAccounting(t *testing.T) {
	en := MustNew(baseCfg())
	var sum uint64
	for i := 0; i < 64; i++ {
		_, _, cy := en.PostRecv(0, i, 1, uint64(i))
		sum += cy
	}
	for i := 0; i < 64; i++ {
		_, _, cy := en.Arrive(match.Envelope{Rank: 0, Tag: int32(i), Ctx: 1}, 0)
		sum += cy
	}
	if got := en.Stats().Cycles; got != sum {
		t.Errorf("Stats.Cycles = %d, sum of returns = %d", got, sum)
	}
}
