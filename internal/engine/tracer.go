package engine

import (
	"bufio"
	"encoding/json"
	"io"
	"os"

	"spco/internal/match"
)

// Tracer is a bounded ring-buffer event tracer on the Observer path:
// it retains the most recent Capacity matching operations (and phase
// boundaries) with their outcomes and cycle costs, so a long run can
// be inspected after the fact without unbounded memory. Unlike the
// mtrace recorder — which captures complete traces for replay — the
// tracer is a flight recorder: old events fall off the front.
//
// The zero-cost rule holds by construction: a tracer only sees events
// when attached via SetObserver, and recording is a slice write.
type Tracer struct {
	buf []TraceEvent
	seq uint64 // total events ever recorded
}

// TraceEvent is one recorded operation.
type TraceEvent struct {
	Seq     uint64  `json:"seq"`
	Kind    string  `json:"kind"` // "arrive", "post", "cancel", "phase"
	Rank    int     `json:"rank,omitempty"`
	Tag     int     `json:"tag,omitempty"`
	Ctx     uint16  `json:"ctx,omitempty"`
	Req     uint64  `json:"req,omitempty"`
	Matched bool    `json:"matched"`
	Depth   int     `json:"depth"`
	Cycles  uint64  `json:"cycles"`
	DurNS   float64 `json:"dur_ns,omitempty"` // phase events only
}

// DefaultTracerCapacity bounds a tracer when none is given: 64 Ki
// events (~4 MiB) covers the tail of any experiment sweep.
const DefaultTracerCapacity = 1 << 16

// NewTracer builds a tracer retaining at most capacity events
// (DefaultTracerCapacity when <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{buf: make([]TraceEvent, 0, capacity)}
}

// Capacity returns the ring size.
func (t *Tracer) Capacity() int { return cap(t.buf) }

// Len returns the number of retained events.
func (t *Tracer) Len() int { return len(t.buf) }

// Total returns the number of events ever recorded.
func (t *Tracer) Total() uint64 { return t.seq }

// Dropped returns how many events fell off the front of the ring.
func (t *Tracer) Dropped() uint64 { return t.seq - uint64(len(t.buf)) }

// record appends an event, overwriting the oldest once full.
func (t *Tracer) record(ev TraceEvent) {
	ev.Seq = t.seq
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.seq%uint64(cap(t.buf))] = ev
	}
	t.seq++
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.buf))
	if t.seq > uint64(cap(t.buf)) {
		// The ring wrapped: the oldest event sits right after the most
		// recently written slot.
		start := t.seq % uint64(cap(t.buf))
		out = append(out, t.buf[start:]...)
		out = append(out, t.buf[:start]...)
		return out
	}
	return append(out, t.buf...)
}

// OnArrive implements Observer.
func (t *Tracer) OnArrive(e match.Envelope, matched bool, depth int, cycles uint64) {
	t.record(TraceEvent{Kind: "arrive", Rank: int(e.Rank), Tag: int(e.Tag), Ctx: e.Ctx,
		Matched: matched, Depth: depth, Cycles: cycles})
}

// OnPost implements Observer.
func (t *Tracer) OnPost(rank, tag int, ctx uint16, req uint64, umqHit bool, depth int, cycles uint64) {
	t.record(TraceEvent{Kind: "post", Rank: rank, Tag: tag, Ctx: ctx, Req: req,
		Matched: umqHit, Depth: depth, Cycles: cycles})
}

// OnCancel implements Observer.
func (t *Tracer) OnCancel(req uint64, found bool) {
	t.record(TraceEvent{Kind: "cancel", Req: req, Matched: found})
}

// OnComputePhase implements Observer.
func (t *Tracer) OnComputePhase(durationNS float64) {
	t.record(TraceEvent{Kind: "phase", DurNS: durationNS})
}

// WriteJSONL writes the retained events oldest-first, one JSON object
// per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the retained events to path as JSONL.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteJSONL(f); err != nil {
		return err
	}
	return f.Close()
}

// AsObserver returns the tracer as an Observer, mapping a nil tracer
// to a nil interface value — callers can attach an optional tracer
// without tripping over Go's typed-nil interface semantics.
func (t *Tracer) AsObserver() Observer {
	if t == nil {
		return nil
	}
	return t
}

// multiObserver fans events out to several observers.
type multiObserver []Observer

func (m multiObserver) OnArrive(e match.Envelope, matched bool, depth int, cycles uint64) {
	for _, o := range m {
		o.OnArrive(e, matched, depth, cycles)
	}
}

func (m multiObserver) OnPost(rank, tag int, ctx uint16, req uint64, umqHit bool, depth int, cycles uint64) {
	for _, o := range m {
		o.OnPost(rank, tag, ctx, req, umqHit, depth, cycles)
	}
}

func (m multiObserver) OnCancel(req uint64, found bool) {
	for _, o := range m {
		o.OnCancel(req, found)
	}
}

func (m multiObserver) OnComputePhase(durationNS float64) {
	for _, o := range m {
		o.OnComputePhase(durationNS)
	}
}

// CombineObservers fans the Observer path out to several observers
// (e.g. an mtrace recorder plus a Tracer). Nils are skipped; a single
// survivor is returned unwrapped, and all-nil returns nil.
func CombineObservers(obs ...Observer) Observer {
	var m multiObserver
	for _, o := range obs {
		if o != nil {
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}
