package engine

import (
	"testing"

	"spco/internal/perf"
	"spco/internal/telemetry"
)

func TestPerfDisabledIsBitIdentical(t *testing.T) {
	// The zero-cost contract extended to the simulated PMU: the same
	// workload with and without a PMU attached — profiler and span
	// tracing fully enabled — must produce identical engine and cache
	// cycle totals. The PMU observes the simulation, never perturbs it.
	run := func(pmu *perf.PMU, pool bool) (Stats, uint64) {
		cfg := baseCfg()
		cfg.HotCache = true
		cfg.Pool = pool
		cfg.Perf = pmu
		en := MustNew(cfg)
		driveChurn(en, 4, 200)
		return en.Stats(), en.Hierarchy().Stats().Cycles
	}
	for _, pool := range []bool{false, true} {
		name := "unpooled"
		if pool {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			plainStats, plainCache := run(nil, pool)
			pmu := perf.New(perf.Options{SampleInterval: 100, Experiment: "zerocost"})
			perfStats, perfCache := run(pmu, pool)
			if plainStats != perfStats {
				t.Errorf("PMU changed engine stats:\noff %+v\non  %+v", plainStats, perfStats)
			}
			if plainCache != perfCache {
				t.Errorf("PMU changed cache cycles: off %d on %d", plainCache, perfCache)
			}
			// And the instrumented run did observe the workload.
			tot := pmu.Totals()
			if tot.TotalOps() == 0 || tot.Accesses() == 0 || tot.MatchAttempts == 0 {
				t.Errorf("PMU recorded nothing: %+v", tot)
			}
			if pmu.Spans().Len() == 0 || pmu.Profiler().NumSamples() == 0 {
				t.Error("spans or profile samples missing")
			}
		})
	}
}

func TestPerfAndTelemetryCoexist(t *testing.T) {
	// Both observability layers share the heater sweep hook and the
	// hierarchy's eviction dispatch; attaching them together must still
	// leave cycle totals untouched and feed both.
	run := func(both bool) (Stats, uint64, *perf.PMU) {
		cfg := baseCfg()
		cfg.HotCache = true
		var pmu *perf.PMU
		if both {
			pmu = perf.New(perf.Options{})
			cfg.Perf = pmu
			cfg.Telemetry = telemetry.NewCollector(nil)
		}
		en := MustNew(cfg)
		driveChurn(en, 3, 100)
		return en.Stats(), en.Hierarchy().Stats().Cycles, pmu
	}
	plainStats, plainCache, _ := run(false)
	bothStats, bothCache, pmu := run(true)
	if plainStats != bothStats || plainCache != bothCache {
		t.Errorf("telemetry+PMU changed simulation:\noff %+v/%d\non  %+v/%d",
			plainStats, plainCache, bothStats, bothCache)
	}
	tot := pmu.Totals()
	if tot.HeaterSweeps == 0 {
		t.Error("PMU missed heater sweeps (sweep hook not chained)")
	}
	if tot.HeaterLines == 0 {
		t.Error("PMU missed heater line touches")
	}
}
