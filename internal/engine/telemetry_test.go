package engine

import (
	"testing"

	"spco/internal/match"
	"spco/internal/telemetry"
)

// driveChurn runs a deterministic mixed workload: bursts of arrivals
// and posts (half of which rendezvous), separated by compute phases.
func driveChurn(en *Engine, phases, opsPerPhase int) {
	req := uint64(1)
	for p := 0; p < phases; p++ {
		for i := 0; i < opsPerPhase; i++ {
			tag := int32(i % 16)
			if i%2 == 0 {
				en.PostRecv(0, int(tag), 1, req)
				req++
			} else {
				en.Arrive(match.Envelope{Rank: 0, Tag: tag, Ctx: 1}, uint64(i))
			}
		}
		en.BeginComputePhase(1e6)
	}
}

func TestTelemetryDisabledIsBitIdentical(t *testing.T) {
	// The zero-cost contract: the same workload with and without a
	// collector attached must produce identical engine and cache cycle
	// totals — telemetry observes the simulation, never perturbs it.
	// Held with node pooling both off and on (the pooled engine is the
	// serving configuration).
	run := func(tel, pool bool) (Stats, uint64) {
		cfg := baseCfg()
		cfg.HotCache = true
		cfg.Pool = pool
		if tel {
			cfg.Telemetry = telemetry.NewCollector(nil)
			cfg.ResidencyInterval = 500
		}
		en := MustNew(cfg)
		driveChurn(en, 4, 200)
		en.PublishTelemetry()
		return en.Stats(), en.Hierarchy().Stats().Cycles
	}
	for _, pool := range []bool{false, true} {
		name := "unpooled"
		if pool {
			name = "pooled"
		}
		t.Run(name, func(t *testing.T) {
			plainStats, plainCache := run(false, pool)
			telStats, telCache := run(true, pool)
			if plainStats != telStats {
				t.Errorf("telemetry changed engine stats:\noff %+v\non  %+v", plainStats, telStats)
			}
			if plainCache != telCache {
				t.Errorf("telemetry changed cache cycles: off %d on %d", plainCache, telCache)
			}
		})
	}
}

func TestQueueRegionsAreOwnerTagged(t *testing.T) {
	cfg := baseCfg()
	cfg.Telemetry = telemetry.NewCollector(nil)
	en := MustNew(cfg)
	for i := 0; i < 32; i++ {
		en.PostRecv(0, i, 1, uint64(i+1))
		en.Arrive(match.Envelope{Rank: 1, Tag: int32(i + 100), Ctx: 1}, uint64(i))
	}
	h := en.Hierarchy()
	if r := h.ResidencyOf(OwnerPRQ); r.Lines == 0 {
		t.Error("PRQ regions not tagged")
	}
	if r := h.ResidencyOf(OwnerUMQ); r.Lines == 0 {
		t.Error("UMQ regions not tagged")
	}
	// Just-touched queue nodes are resident somewhere.
	if r := h.ResidencyOf(OwnerPRQ); r.L3Frac() == 0 {
		t.Errorf("freshly built PRQ has no L3 residency: %+v", r)
	}
}

func TestOpHistogramsCountOperations(t *testing.T) {
	cfg := baseCfg()
	col := telemetry.NewCollector(telemetry.Labels{"exp": "unit"})
	cfg.Telemetry = col
	en := MustNew(cfg)
	for i := 0; i < 10; i++ {
		en.PostRecv(0, i, 1, uint64(i+1))
	}
	for i := 0; i < 7; i++ {
		en.Arrive(match.Envelope{Rank: 0, Tag: int32(i), Ctx: 1}, 0)
	}
	en.Cancel(8)

	labels := telemetry.Labels{"exp": "unit", "arch": cfg.Profile.Name,
		"list": "lla", "hot": "off"}
	hist := func(op string) *telemetry.Histogram {
		return col.Registry.Histogram("spco_op_cycles",
			telemetry.MergeLabels(labels, telemetry.Labels{"op": op}), telemetry.CycleBuckets)
	}
	if n := hist("post").Count(); n != 10 {
		t.Errorf("post observations = %d, want 10", n)
	}
	if n := hist("arrive").Count(); n != 7 {
		t.Errorf("arrive observations = %d, want 7", n)
	}
	if n := hist("cancel").Count(); n != 1 {
		t.Errorf("cancel observations = %d, want 1", n)
	}
	if hist("post").Sum() == 0 {
		t.Error("post cycle sum should be positive")
	}
}

// residencySeries finds this engine's prq/l3 residency series.
func residencySeries(t *testing.T, col *telemetry.Collector) *telemetry.TimeSeries {
	t.Helper()
	for _, ts := range col.Sampler.Find("spco_region_residency") {
		if ts.Labels["owner"] == OwnerPRQ && ts.Labels["level"] == "l3" {
			return ts
		}
	}
	t.Fatal("no spco_region_residency{owner=prq,level=l3} series recorded")
	return nil
}

func TestResidencySeriesHotHoldsColdDecays(t *testing.T) {
	// The acceptance curve: across compute phases, the heated engine's
	// PRQ keeps a steady L3-resident fraction (the heater re-touches the
	// registry each phase), while the unheated engine's occupancy
	// collapses to zero at every flush. Samples land at phase
	// boundaries — after flush and (when hot) re-sweep — so they probe
	// exactly the steady state each phase hands to the next.
	run := func(hot bool) *telemetry.TimeSeries {
		cfg := baseCfg()
		cfg.HotCache = hot
		cfg.HeaterPeriodNS = 100
		col := telemetry.NewCollector(nil)
		cfg.Telemetry = col
		en := MustNew(cfg)
		// Long-lived posted receives that never match: a persistent PRQ.
		for i := 0; i < 256; i++ {
			en.PostRecv(0, i, 1, uint64(i+1))
		}
		for p := 0; p < 5; p++ {
			en.BeginComputePhase(1e7)
		}
		return residencySeries(t, col)
	}
	hotSeries, coldSeries := run(true), run(false)
	if len(hotSeries.Points) < 5 || len(coldSeries.Points) < 5 {
		t.Fatalf("expected >=5 phase samples, got hot=%d cold=%d",
			len(hotSeries.Points), len(coldSeries.Points))
	}
	// Every post-phase hot sample holds the full steady-state fraction.
	steady := hotSeries.Last().V
	if steady < 0.9 {
		t.Fatalf("hot steady-state L3 fraction = %v, want >= 0.9", steady)
	}
	for i, pt := range hotSeries.Points {
		if pt.V < steady {
			t.Errorf("hot sample %d dipped below steady state: %v < %v", i, pt.V, steady)
		}
	}
	for i, pt := range coldSeries.Points {
		if pt.V != 0 {
			t.Errorf("cold sample %d survived the flush: L3 fraction %v, want 0", i, pt.V)
		}
	}
	// And the heater's own coverage series confirms full sweeps.
	// (Recorded by the sweep hook on the hot run only.)
}

func TestIntervalSamplingRecordsQueueDepths(t *testing.T) {
	cfg := baseCfg()
	col := telemetry.NewCollector(nil)
	cfg.Telemetry = col
	cfg.ResidencyInterval = 1000
	en := MustNew(cfg)
	for i := 0; i < 500; i++ {
		en.PostRecv(0, i, 1, uint64(i+1))
	}
	var prq *telemetry.TimeSeries
	for _, ts := range col.Sampler.Find("spco_queue_len") {
		if ts.Labels["queue"] == "prq" {
			prq = ts
		}
	}
	if prq == nil || len(prq.Points) < 2 {
		t.Fatalf("expected interval-sampled prq depth series, got %+v", prq)
	}
	// Timestamps are simulated cycles: monotonic nondecreasing, spaced
	// at least the interval apart, and depth grows with the queue.
	for i := 1; i < len(prq.Points); i++ {
		if prq.Points[i].T < prq.Points[i-1].T+1000 {
			t.Fatalf("samples %d,%d closer than the interval: %v %v",
				i-1, i, prq.Points[i-1], prq.Points[i])
		}
	}
	if prq.Last().V <= prq.Points[0].V {
		t.Errorf("queue depth series should grow: first %v last %v",
			prq.Points[0], prq.Last())
	}
}

func TestPublishTelemetryIdempotentAndAccumulating(t *testing.T) {
	col := telemetry.NewCollector(nil)
	mk := func() *Engine {
		cfg := baseCfg()
		cfg.Telemetry = col
		return MustNew(cfg)
	}
	labels := telemetry.Labels{"arch": baseCfg().Profile.Name, "list": "lla", "hot": "off",
		"op": "post"}
	ops := col.Registry.Counter("spco_ops_total", labels)

	a := mk()
	for i := 0; i < 5; i++ {
		a.PostRecv(0, i, 1, uint64(i+1))
	}
	a.PublishTelemetry()
	a.PublishTelemetry() // idempotent: publishing twice adds nothing
	if v := ops.Value(); v != 5 {
		t.Fatalf("after double publish: ops=%v, want 5", v)
	}

	// A second engine with identical labels accumulates into the shared
	// counter instead of clobbering it.
	b := mk()
	for i := 0; i < 3; i++ {
		b.PostRecv(0, i, 1, uint64(i+1))
	}
	b.PublishTelemetry()
	if v := ops.Value(); v != 8 {
		t.Fatalf("two engines publishing: ops=%v, want 8", v)
	}

	// More work on the first engine publishes only the delta.
	a.PostRecv(0, 99, 1, 100)
	a.PublishTelemetry()
	if v := ops.Value(); v != 9 {
		t.Fatalf("delta publish: ops=%v, want 9", v)
	}
}

func TestPublishEvictionMatrix(t *testing.T) {
	cfg := baseCfg()
	col := telemetry.NewCollector(nil)
	cfg.Telemetry = col
	en := MustNew(cfg)
	driveChurn(en, 3, 300)
	en.PublishTelemetry()
	// The compute-phase flush must have displaced tagged queue lines.
	found := false
	for _, ts := range []string{"l1", "l2", "l3"} {
		c := col.Registry.Counter("spco_evictions_total", telemetry.Labels{
			"arch": cfg.Profile.Name, "list": "lla", "hot": "off",
			"level": ts, "by": "compute", "of": OwnerPRQ,
		})
		if c.Value() > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no compute-evicted-prq cells published")
	}
}
