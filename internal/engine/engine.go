// Package engine assembles the paper's instrument: an MPI matching
// engine whose posted-receive and unexpected-message queues are pluggable
// structures (internal/matchlist), whose every memory access flows
// through the cache-hierarchy simulator (internal/cache), and which can
// keep its queues semi-permanently cache-resident with a heater
// (internal/hotcache).
//
// The engine models the receive-side critical path:
//
//	Arrive   — an envelope comes off the wire: search the PRQ; deliver
//	           on a match, else append to the UMQ.
//	PostRecv — the application posts a receive: search the UMQ; consume
//	           a buffered message on a match, else append to the PRQ.
//
// Every operation returns and accumulates a cycle cost: memory cycles
// from the simulator, per-entry comparison work, fixed software-path
// overhead, and (when hot caching is on) heater-synchronisation cycles.
package engine

import (
	"fmt"

	"spco/internal/cache"
	"spco/internal/hotcache"
	"spco/internal/match"
	"spco/internal/matchlist"
	"spco/internal/perf"
	"spco/internal/simmem"
	"spco/internal/telemetry"
	"spco/internal/trace"
)

// Software-path cost model (cycles). CompareCycles is the masked
// three-field comparison per inspected entry; the overheads cover the
// non-matching parts of the MPI progress path (header decode, request
// bookkeeping, completion).
const (
	CompareCycles        = 2
	ArriveOverheadCycles = 600
	PostOverheadCycles   = 400
)

// OverflowPolicy selects how the engine degrades when a bounded UMQ
// fills: the graceful-degradation half of the fault-injection layer
// (the wire half lives in internal/fault).
type OverflowPolicy int

// The policies.
const (
	// OverflowUnbounded is the legacy behaviour: the UMQ grows without
	// bound and UMQCapacity is ignored.
	OverflowUnbounded OverflowPolicy = iota

	// OverflowDrop refuses the arrival (ArriveRefused): the transport's
	// retransmission protocol redelivers it once the queue drains, as a
	// NACK-based eager protocol would.
	OverflowDrop

	// OverflowCredit refuses excess arrivals like OverflowDrop, but is
	// meant to be paired with sender-side credit flow control
	// (fault.Transport) that throttles sends to the advertised window,
	// so refusals indicate a credit-accounting bug rather than load.
	OverflowCredit

	// OverflowRendezvous appends only the 16-byte envelope header past
	// the threshold (ArriveRendezvous): the payload stays at the sender
	// and delivery costs an extra rendezvous round trip, the eager-to-
	// rendezvous fallback real MPI libraries use under buffer pressure.
	OverflowRendezvous
)

// String implements fmt.Stringer.
func (p OverflowPolicy) String() string {
	switch p {
	case OverflowUnbounded:
		return "unbounded"
	case OverflowDrop:
		return "drop"
	case OverflowCredit:
		return "credit"
	case OverflowRendezvous:
		return "rendezvous"
	}
	return fmt.Sprintf("OverflowPolicy(%d)", int(p))
}

// ParseOverflowPolicy maps a flag value to a policy.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	switch s {
	case "", "unbounded", "none":
		return OverflowUnbounded, nil
	case "drop":
		return OverflowDrop, nil
	case "credit":
		return OverflowCredit, nil
	case "rendezvous":
		return OverflowRendezvous, nil
	}
	return 0, fmt.Errorf("engine: unknown overflow policy %q", s)
}

// Config describes an engine instance.
type Config struct {
	Profile cache.Profile

	// Kind selects the PRQ structure; the UMQ follows it (LLA gets the
	// packed UMQ, everything else the baseline UMQ).
	Kind matchlist.Kind

	// EntriesPerNode is the LLA's K; Bins and CommSize parameterise the
	// bucketed comparators.
	EntriesPerNode int
	Bins           int
	CommSize       int

	// Pool enables node recycling (the modified-LLA allocator).
	Pool bool

	// HotCache attaches a heater; HeaterPeriodNS is its sweep period and
	// HeaterCore its pinned core (it must differ from Core so heating
	// lands in the shared level, not the compute core's private caches).
	HotCache       bool
	HeaterPeriodNS float64
	HeaterCore     int

	// NetworkCache adds the dedicated network-data cache the paper's
	// conclusions propose (Sections 4.6, 6): queue regions are
	// designated to it as they are allocated, hardware retains them
	// across compute phases, and — unlike hot caching — registration is
	// lock-free and sweeps nothing. NetworkCacheBytes sizes it
	// (0 selects cache.DefaultNetworkCacheBytes). Ignored when the
	// profile already configures a NetworkCache level.
	NetworkCache      bool
	NetworkCacheBytes int

	// L3PartitionWays reserves L3 ways for the match queues (the
	// paper's "cache partition" proposal, CAT-style): queue regions are
	// designated as they are allocated and compute phases cannot evict
	// them. Zero disables. Ignored when the profile already sets it.
	L3PartitionWays int

	// Core is the communication core performing matching.
	Core int

	// NoiseBytes overrides the modeled per-post unrelated allocation.
	NoiseBytes uint64

	// TrackHistograms enables per-operation sampling of queue lengths
	// and search depths into histograms (the Figure 1 methodology,
	// applicable to any workload driving this engine). Off by default:
	// sampling costs a map update per operation.
	TrackHistograms bool

	// HistogramBucket sets the sampling bucket width (default 10).
	HistogramBucket int

	// Telemetry attaches a metrics collector (internal/telemetry): the
	// engine enables cache residency tracking, tags queue regions with
	// owners, observes per-op cycle histograms, samples occupancy and
	// queue-depth time series, and exposes PublishTelemetry. Nil (the
	// default) costs one pointer check per operation and leaves cycle
	// totals bit-identical.
	Telemetry *telemetry.Collector

	// ResidencyInterval is the telemetry sampling cadence in simulated
	// cycles: every interval the engine records queue depths and
	// per-owner cache-residency fractions. Zero samples only at
	// compute-phase boundaries. Ignored without Telemetry.
	ResidencyInterval uint64

	// Perf attaches a simulated PMU (internal/perf): the engine connects
	// it to the hierarchy as an event probe, brackets every operation
	// for its counters/spans, and feeds the sampling profiler's stack.
	// Nil (the default) costs one pointer check per operation and leaves
	// cycle totals bit-identical.
	Perf *perf.PMU

	// UMQCapacity bounds the unexpected-message queue: an eager arrival
	// that finds Len() >= UMQCapacity is handled per Overflow instead of
	// appended. Zero (the legacy default) leaves the UMQ unbounded; a
	// positive capacity requires a non-unbounded Overflow policy, and
	// vice versa (Validate enforces the pairing).
	UMQCapacity int

	// Overflow selects the degradation policy for a full UMQ.
	Overflow OverflowPolicy
}

// Validate checks the configuration, returning the first problem found.
// New rejects exactly what Validate rejects; any panic past construction
// is an internal invariant violation, not a configuration error.
func (c Config) Validate() error {
	if c.Profile.Cores <= 0 {
		return fmt.Errorf("engine: Profile.Cores must be positive (use a cache.Profile preset or constructor)")
	}
	if c.Profile.ClockGHz <= 0 {
		return fmt.Errorf("engine: Profile.ClockGHz must be positive")
	}
	if c.Core < 0 || c.Core >= c.Profile.Cores {
		return fmt.Errorf("engine: Core %d out of range [0,%d)", c.Core, c.Profile.Cores)
	}
	if err := matchlist.ValidateParams(c.Kind, c.EntriesPerNode, c.Bins, c.CommSize); err != nil {
		return err
	}
	if c.HotCache {
		if c.HeaterPeriodNS < 0 {
			return fmt.Errorf("engine: negative HeaterPeriodNS %g", c.HeaterPeriodNS)
		}
		if c.HeaterCore < 0 || c.HeaterCore >= c.Profile.Cores {
			return fmt.Errorf("engine: HeaterCore %d out of range [0,%d)", c.HeaterCore, c.Profile.Cores)
		}
	}
	if c.NetworkCacheBytes < 0 {
		return fmt.Errorf("engine: negative NetworkCacheBytes %d", c.NetworkCacheBytes)
	}
	if c.L3PartitionWays < 0 {
		return fmt.Errorf("engine: negative L3PartitionWays %d", c.L3PartitionWays)
	}
	if c.UMQCapacity < 0 {
		return fmt.Errorf("engine: negative UMQCapacity %d", c.UMQCapacity)
	}
	if c.UMQCapacity > 0 && c.Overflow == OverflowUnbounded {
		return fmt.Errorf("engine: UMQCapacity %d requires an overflow policy (drop, credit, or rendezvous)", c.UMQCapacity)
	}
	if c.Overflow != OverflowUnbounded && c.UMQCapacity <= 0 {
		return fmt.Errorf("engine: overflow policy %v requires UMQCapacity > 0", c.Overflow)
	}
	return nil
}

// Stats aggregates engine activity.
type Stats struct {
	Arrivals   uint64 // envelopes processed
	Posts      uint64 // receives posted (after UMQ miss)
	Recvs      uint64 // PostRecv calls
	PRQMatches uint64 // arrivals matched in the PRQ
	UMQMatches uint64 // receives matched in the UMQ
	UMQAppends uint64 // arrivals deferred to the UMQ

	PRQDepthTotal uint64 // summed PRQ search depths
	UMQDepthTotal uint64 // summed UMQ search depths

	// Bounded-UMQ policy activity (zero unless Config.UMQCapacity > 0).
	UMQOverflows uint64 // arrivals that found the UMQ at capacity
	Refused      uint64 // overflow arrivals refused (drop/credit policies)
	Rendezvous   uint64 // overflow arrivals demoted to rendezvous headers

	Cycles     uint64 // total modeled engine cycles
	SyncCycles uint64 // heater-synchronisation share of Cycles

	MaxPRQLen int
	MaxUMQLen int
}

// MeanPRQDepth returns the average PRQ search depth per arrival.
func (s Stats) MeanPRQDepth() float64 {
	if s.Arrivals == 0 {
		return 0
	}
	return float64(s.PRQDepthTotal) / float64(s.Arrivals)
}

// MeanUMQDepth returns the average UMQ search depth per receive.
func (s Stats) MeanUMQDepth() float64 {
	if s.Recvs == 0 {
		return 0
	}
	return float64(s.UMQDepthTotal) / float64(s.Recvs)
}

// Engine is one process's matching engine.
type Engine struct {
	cfg    Config
	space  *simmem.Space
	hier   *cache.Hierarchy
	acc    *matchlist.CacheAccessor
	prq    matchlist.PostedList
	umq    matchlist.UnexpectedList
	heater *hotcache.Heater
	stats  Stats

	// Histograms (nil unless Config.TrackHistograms).
	prqLenHist   *trace.Histogram
	umqLenHist   *trace.Histogram
	prqDepthHist *trace.Histogram

	// Observer (nil unless attached): sees every operation, e.g. the
	// mtrace recorder.
	observer Observer

	// Telemetry binding (nil unless Config.Telemetry).
	tel *engineTelemetry

	// Simulated PMU (nil unless Config.Perf).
	pmu *perf.PMU
}

// Observer sees every matching operation as it happens; the mtrace
// recorder implements it to capture replayable traces.
type Observer interface {
	// OnArrive fires after an arrival is processed.
	OnArrive(e match.Envelope, matched bool, depth int, cycles uint64)
	// OnPost fires after a receive is posted (or satisfied from UMQ).
	OnPost(rank, tag int, ctx uint16, req uint64, umqHit bool, depth int, cycles uint64)
	// OnCancel fires after a cancel.
	OnCancel(req uint64, found bool)
	// OnComputePhase fires on phase boundaries.
	OnComputePhase(durationNS float64)
}

// SetObserver attaches (or detaches, with nil) an operation observer.
func (en *Engine) SetObserver(o Observer) { en.observer = o }

// New builds an engine, rejecting misconfiguration with the errors
// Config.Validate returns. The zero Kind is the baseline list; a zero
// profile is invalid (use a cache.Profile from internal/cache).
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.HotCache && cfg.HeaterCore == cfg.Core {
		cfg.HeaterCore = (cfg.Core + 1) % cfg.Profile.Cores
	}
	if cfg.NetworkCache && cfg.Profile.NetworkCache.SizeBytes == 0 {
		size := cfg.NetworkCacheBytes
		if size == 0 {
			size = cache.DefaultNetworkCacheBytes
		}
		cfg.Profile = cache.WithNetworkCache(cfg.Profile, size)
	}
	if cfg.L3PartitionWays > 0 && cfg.Profile.L3PartitionWays == 0 {
		cfg.Profile.L3PartitionWays = cfg.L3PartitionWays
	}
	en := &Engine{cfg: cfg, space: simmem.NewSpace()}
	en.hier = cache.New(cfg.Profile)
	en.acc = matchlist.NewCacheAccessor(en.hier, cfg.Core)

	var listeners multiListener
	if cfg.HotCache {
		en.heater = hotcache.New(en.hier, cfg.HeaterCore, hotcache.Options{
			PeriodNS: cfg.HeaterPeriodNS,
			Pool:     cfg.Pool,
		})
		listeners = append(listeners, en.heater)
		en.hier.SetHeaterActive(true)
	}
	if en.hier.DesignatesNetwork() {
		listeners = append(listeners, netDesignator{en.hier})
	}
	var listener matchlist.RegionListener
	if len(listeners) > 0 {
		listener = listeners
	}

	mcfg := matchlist.Config{
		Space:          en.space,
		Acc:            en.acc,
		Listener:       listener,
		EntriesPerNode: cfg.EntriesPerNode,
		Bins:           cfg.Bins,
		CommSize:       cfg.CommSize,
		Pool:           cfg.Pool,
		NoiseBytes:     cfg.NoiseBytes,
	}
	pcfg, ucfg := mcfg, mcfg
	if cfg.Telemetry != nil {
		// Residency tracking wants to know whose lines the hierarchy
		// holds: give each queue its own listener chain with an owner
		// tagger appended, so node regions carry "prq"/"umq" tags for
		// the lifetime of the allocation.
		en.hier.EnableResidencyTracking()
		pcfg.Listener = append(append(multiListener{}, listeners...), ownerTagger{en.hier, OwnerPRQ})
		ucfg.Listener = append(append(multiListener{}, listeners...), ownerTagger{en.hier, OwnerUMQ})
	}
	en.prq = matchlist.NewPosted(cfg.Kind, pcfg)
	en.umq = matchlist.NewUnexpected(cfg.Kind, ucfg)
	if cfg.Telemetry != nil {
		en.tel = newEngineTelemetry(en, cfg.Telemetry)
	}
	if cfg.Perf != nil {
		en.bindPerf()
	}

	if cfg.TrackHistograms {
		bucket := cfg.HistogramBucket
		if bucket <= 0 {
			bucket = 10
		}
		en.prqLenHist = trace.NewHistogram(bucket)
		en.umqLenHist = trace.NewHistogram(bucket)
		en.prqDepthHist = trace.NewHistogram(bucket)
	}
	return en, nil
}

// MustNew is New for pre-validated, code-authored configurations
// (tests, workloads behind a validated boundary); it panics on the
// errors New returns.
func MustNew(cfg Config) *Engine {
	en, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return en
}

// PRQLengthHistogram returns the sampled posted-queue lengths (nil
// unless Config.TrackHistograms).
func (en *Engine) PRQLengthHistogram() *trace.Histogram { return en.prqLenHist }

// UMQLengthHistogram returns the sampled unexpected-queue lengths.
func (en *Engine) UMQLengthHistogram() *trace.Histogram { return en.umqLenHist }

// PRQDepthHistogram returns the sampled search depths.
func (en *Engine) PRQDepthHistogram() *trace.Histogram { return en.prqDepthHist }

// sampleQueues records both queue lengths after a mutation, as the
// Figure 1 methodology samples "during each communication phase, such
// that all list additions and deletions are captured".
func (en *Engine) sampleQueues() {
	if en.prqLenHist == nil {
		return
	}
	en.prqLenHist.Observe(en.prq.Len())
	en.umqLenHist.Observe(en.umq.Len())
}

// Config returns the engine's configuration.
func (en *Engine) Config() Config { return en.cfg }

// Hierarchy exposes the cache simulator (read-only use intended).
func (en *Engine) Hierarchy() *cache.Hierarchy { return en.hier }

// Heater returns the attached heater, or nil.
func (en *Engine) Heater() *hotcache.Heater { return en.heater }

// PRQLen and UMQLen report current queue lengths.
func (en *Engine) PRQLen() int { return en.prq.Len() }

// UMQLen reports the unexpected queue length.
func (en *Engine) UMQLen() int { return en.umq.Len() }

// Stats returns a copy of the accumulated counters.
func (en *Engine) Stats() Stats { return en.stats }

// ResetStats zeroes counters without touching queue or cache state.
func (en *Engine) ResetStats() {
	en.stats = Stats{}
	en.acc.Reset()
}

// RestoreStats overwrites the accumulated counters, without touching
// queue or cache state. Crash recovery uses it after re-posting a
// snapshot's queue entries: the re-posting itself ticks counters, so
// the snapshot's totals are reinstated afterwards to make the restored
// engine report the history of the crashed one, not of the replay.
func (en *Engine) RestoreStats(s Stats) { en.stats = s }

// MemoryBytes returns the combined queue metadata footprint.
func (en *Engine) MemoryBytes() uint64 {
	return en.prq.MemoryBytes() + en.umq.MemoryBytes()
}

// charge finalises an operation's cycle cost.
func (en *Engine) charge(memStart uint64, depth int, overhead uint64) uint64 {
	cycles := (en.acc.Cycles - memStart) + uint64(depth)*CompareCycles + overhead
	if en.heater != nil {
		sync := en.heater.TakeSyncCycles()
		cycles += sync
		en.stats.SyncCycles += sync
	}
	en.stats.Cycles += cycles
	return cycles
}

// ArriveOutcome reports how ArriveFull handled an arrival.
type ArriveOutcome int

// The outcomes.
const (
	// ArriveMatched: the envelope matched a posted receive.
	ArriveMatched ArriveOutcome = iota

	// ArriveQueued: no posted receive matched; the message (header and
	// eager payload) was appended to the UMQ.
	ArriveQueued

	// ArriveQueuedRendezvous: the bounded UMQ was at capacity under
	// OverflowRendezvous; only the envelope header was appended, and the
	// payload must be fetched from the sender with a rendezvous round
	// trip when a receive matches it (the transport accounts that trip).
	ArriveQueuedRendezvous

	// ArriveRefused: the bounded UMQ was full under OverflowDrop or
	// OverflowCredit; nothing was stored and the sender must redeliver.
	ArriveRefused
)

// String implements fmt.Stringer.
func (o ArriveOutcome) String() string {
	switch o {
	case ArriveMatched:
		return "matched"
	case ArriveQueued:
		return "queued"
	case ArriveQueuedRendezvous:
		return "queued-rendezvous"
	case ArriveRefused:
		return "refused"
	}
	return fmt.Sprintf("ArriveOutcome(%d)", int(o))
}

// Arrive processes an incoming message. It returns the matched posted
// request (if any), whether it matched, and the operation's cycle cost.
// Bounded-UMQ refusals and rendezvous demotions report matched=false;
// callers that configured a capacity and need to distinguish them use
// ArriveFull.
func (en *Engine) Arrive(e match.Envelope, msg uint64) (req uint64, matched bool, cycles uint64) {
	req, outcome, cycles := en.ArriveFull(e, msg)
	return req, outcome == ArriveMatched, cycles
}

// ArriveFull is Arrive with the full outcome: it distinguishes a normal
// UMQ append from the bounded-queue degradations (refusal, rendezvous
// demotion) so a transport can drive its retransmission and rendezvous
// protocols off the return value.
func (en *Engine) ArriveFull(e match.Envelope, msg uint64) (req uint64, outcome ArriveOutcome, cycles uint64) {
	memStart := en.acc.Cycles
	en.stats.Arrivals++
	if en.pmu != nil {
		en.pmu.BeginOp(perf.OpArrive)
	}
	p, depth, ok := en.prq.Search(e)
	en.stats.PRQDepthTotal += uint64(depth)
	if en.prqDepthHist != nil {
		en.prqDepthHist.Observe(depth)
	}
	if ok {
		en.stats.PRQMatches++
		cycles = en.charge(memStart, depth, ArriveOverheadCycles)
		en.sampleQueues()
		if en.observer != nil {
			en.observer.OnArrive(e, true, depth, cycles)
		}
		if en.tel != nil {
			en.tel.op(en.tel.arrive, cycles)
		}
		if en.pmu != nil {
			en.pmu.EndOp(cycles, depth, true, p.Req)
		}
		return p.Req, ArriveMatched, cycles
	}
	outcome = ArriveQueued
	if en.cfg.UMQCapacity > 0 && en.umq.Len() >= en.cfg.UMQCapacity {
		en.stats.UMQOverflows++
		if en.pmu != nil {
			en.pmu.OnUMQOverflow()
		}
		if en.cfg.Overflow == OverflowRendezvous {
			// Demote to rendezvous: the header still enters the UMQ (it
			// is what matching needs), so the queue bounds eager payload
			// buffering, not envelope count.
			outcome = ArriveQueuedRendezvous
			en.stats.Rendezvous++
			if en.pmu != nil {
				en.pmu.OnRendezvousFallback()
			}
		} else {
			// Drop/credit: refuse outright. The refused arrival still
			// paid the full PRQ search before discovering the queue was
			// full, exactly as a NACK-generating NIC firmware path would.
			en.stats.Refused++
			cycles = en.charge(memStart, depth, ArriveOverheadCycles)
			en.sampleQueues()
			if en.observer != nil {
				en.observer.OnArrive(e, false, depth, cycles)
			}
			if en.tel != nil {
				en.tel.op(en.tel.arrive, cycles)
			}
			if en.pmu != nil {
				en.pmu.EndOp(cycles, depth, false, 0)
			}
			return 0, ArriveRefused, cycles
		}
	}
	en.umq.Append(match.NewUnexpected(e, msg))
	en.stats.UMQAppends++
	if n := en.umq.Len(); n > en.stats.MaxUMQLen {
		en.stats.MaxUMQLen = n
	}
	cycles = en.charge(memStart, depth, ArriveOverheadCycles)
	en.sampleQueues()
	if en.observer != nil {
		en.observer.OnArrive(e, false, depth, cycles)
	}
	if en.tel != nil {
		en.tel.op(en.tel.arrive, cycles)
	}
	if en.pmu != nil {
		en.pmu.EndOp(cycles, depth, false, 0)
	}
	return 0, outcome, cycles
}

// PostRecv posts a receive. It returns the buffered message handle if
// the receive matched the UMQ, whether it matched, and the cycle cost.
func (en *Engine) PostRecv(rank, tag int, ctx uint16, req uint64) (msg uint64, matched bool, cycles uint64) {
	memStart := en.acc.Cycles
	en.stats.Recvs++
	if en.pmu != nil {
		en.pmu.BeginOp(perf.OpPost)
	}
	p := match.NewPosted(rank, tag, ctx, req)
	u, depth, ok := en.umq.SearchBy(p)
	en.stats.UMQDepthTotal += uint64(depth)
	if ok {
		en.stats.UMQMatches++
		cycles = en.charge(memStart, depth, PostOverheadCycles)
		en.sampleQueues()
		if en.observer != nil {
			en.observer.OnPost(rank, tag, ctx, req, true, depth, cycles)
		}
		if en.tel != nil {
			en.tel.op(en.tel.post, cycles)
		}
		if en.pmu != nil {
			en.pmu.EndOp(cycles, depth, true, req)
		}
		return u.Msg, true, cycles
	}
	en.prq.Post(p)
	en.stats.Posts++
	if n := en.prq.Len(); n > en.stats.MaxPRQLen {
		en.stats.MaxPRQLen = n
	}
	cycles = en.charge(memStart, depth, PostOverheadCycles)
	en.sampleQueues()
	if en.observer != nil {
		en.observer.OnPost(rank, tag, ctx, req, false, depth, cycles)
	}
	if en.tel != nil {
		en.tel.op(en.tel.post, cycles)
	}
	if en.pmu != nil {
		en.pmu.EndOp(cycles, depth, false, req)
	}
	return 0, false, cycles
}

// Cancel removes a posted receive by request handle.
func (en *Engine) Cancel(req uint64) (bool, uint64) {
	memStart := en.acc.Cycles
	if en.pmu != nil {
		en.pmu.BeginOp(perf.OpCancel)
	}
	ok := en.prq.Cancel(req)
	cycles := en.charge(memStart, 0, PostOverheadCycles)
	en.sampleQueues()
	if en.observer != nil {
		en.observer.OnCancel(req, ok)
	}
	if en.tel != nil {
		en.tel.op(en.tel.cancel, cycles)
	}
	if en.pmu != nil {
		en.pmu.EndOp(cycles, 0, ok, req)
	}
	return ok, cycles
}

// BeginComputePhase models an application compute phase of the given
// length: the core's working set displaces the caches entirely; if hot
// caching is enabled, the heater re-touches its registry (covering the
// fraction its period permits), so the match queues re-enter the shared
// cache before the next communication phase (Figure 3).
func (en *Engine) BeginComputePhase(durationNS float64) {
	en.hier.Flush()
	if en.heater != nil {
		en.heater.Sweep(durationNS)
	}
	if en.observer != nil {
		en.observer.OnComputePhase(durationNS)
	}
	if en.tel != nil {
		en.tel.phase()
	}
	if en.pmu != nil {
		en.pmu.AdvancePhase(en.phaseCycles(durationNS))
	}
}

// multiListener fans region events out to several listeners, summing
// their charged cycles.
type multiListener []matchlist.RegionListener

// RegionAdded implements matchlist.RegionListener.
func (m multiListener) RegionAdded(r simmem.Region) uint64 {
	var cy uint64
	for _, l := range m {
		cy += l.RegionAdded(r)
	}
	return cy
}

// RegionRemoved implements matchlist.RegionListener.
func (m multiListener) RegionRemoved(r simmem.Region) uint64 {
	var cy uint64
	for _, l := range m {
		cy += l.RegionRemoved(r)
	}
	return cy
}

// netDesignator routes queue-region lifecycle to the dedicated network
// cache. Designation is a hardware operation (range registers): free.
type netDesignator struct {
	h *cache.Hierarchy
}

// RegionAdded implements matchlist.RegionListener.
func (n netDesignator) RegionAdded(r simmem.Region) uint64 {
	n.h.DesignateNetwork(r)
	return 0
}

// RegionRemoved implements matchlist.RegionListener.
func (n netDesignator) RegionRemoved(r simmem.Region) uint64 {
	n.h.UndesignateNetwork(r)
	return 0
}

// QueueRegions returns the memory regions of both queues (diagnostics).
func (en *Engine) QueueRegions() []simmem.Region {
	out := append([]simmem.Region{}, en.prq.Regions()...)
	return append(out, en.umq.Regions()...)
}

// CyclesToNanos converts using the engine's clock.
func (en *Engine) CyclesToNanos(cy uint64) float64 {
	return en.cfg.Profile.CyclesToNanos(cy)
}
