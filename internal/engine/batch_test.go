package engine

import (
	"math/rand"
	"testing"

	"spco/internal/match"
	"spco/internal/matchlist"
)

// batchTestOp is one step of a randomized differential stream.
type batchTestOp struct {
	arrive bool
	env    match.Envelope
	msg    uint64
	post   PostReq
}

// randomOpStream builds a seeded mixed stream: arrivals and posts over
// a small rank/tag space (so both queues churn), with occasional
// wildcard receives.
func randomOpStream(seed int64, n int) []batchTestOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]batchTestOp, n)
	req := uint64(1)
	for i := range ops {
		rank, tag := rng.Intn(24), rng.Intn(6)
		if rng.Intn(2) == 0 {
			ops[i] = batchTestOp{
				arrive: true,
				env:    match.Envelope{Rank: int32(rank), Tag: int32(tag), Ctx: 1},
				msg:    uint64(i) + 1,
			}
		} else {
			if rng.Intn(8) == 0 {
				rank = match.AnySource
			}
			if rng.Intn(8) == 0 {
				tag = match.AnyTag
			}
			ops[i] = batchTestOp{post: PostReq{Rank: rank, Tag: tag, Ctx: 1, Req: req}}
			req++
		}
	}
	return ops
}

// opRecord captures one operation's observable result, shared between
// the scalar and batched drivers so records compare directly.
type opRecord struct {
	handle  uint64
	outcome ArriveOutcome
	matched bool
	cycles  uint64
}

func runScalar(en *Engine, ops []batchTestOp) []opRecord {
	out := make([]opRecord, 0, len(ops))
	for _, op := range ops {
		if op.arrive {
			req, outcome, cy := en.ArriveFull(op.env, op.msg)
			out = append(out, opRecord{handle: req, outcome: outcome, cycles: cy})
		} else {
			msg, matched, cy := en.PostRecv(op.post.Rank, op.post.Tag, op.post.Ctx, op.post.Req)
			out = append(out, opRecord{handle: msg, matched: matched, cycles: cy})
		}
	}
	return out
}

// runBatched drives the same stream through the batch APIs: maximal
// same-kind runs become one ArriveBatch or PostRecvBatch call, exactly
// how the daemon's batch path slices a wire frame.
func runBatched(en *Engine, ops []batchTestOp) []opRecord {
	out := make([]opRecord, 0, len(ops))
	var (
		envs []match.Envelope
		msgs []uint64
		ares []ArriveResult
		prs  []PostReq
		pres []PostResult
	)
	for i := 0; i < len(ops); {
		j := i + 1
		for j < len(ops) && ops[j].arrive == ops[i].arrive {
			j++
		}
		if ops[i].arrive {
			envs, msgs = envs[:0], msgs[:0]
			for _, op := range ops[i:j] {
				envs = append(envs, op.env)
				msgs = append(msgs, op.msg)
			}
			ares = en.ArriveBatch(envs, msgs, ares)
			for _, r := range ares {
				out = append(out, opRecord{handle: r.Req, outcome: r.Outcome, cycles: r.Cycles})
			}
		} else {
			prs = prs[:0]
			for _, op := range ops[i:j] {
				prs = append(prs, op.post)
			}
			pres = en.PostRecvBatch(prs, pres)
			for _, r := range pres {
				out = append(out, opRecord{handle: r.Msg, matched: r.Matched, cycles: r.Cycles})
			}
		}
		i = j
	}
	return out
}

// batchKindConfigs enumerates every matchlist kind (plus bounded-UMQ
// policy variants on the default kind), all pooled.
func batchKindConfigs() map[string]Config {
	kinds := []matchlist.Kind{
		matchlist.KindBaseline, matchlist.KindLLA, matchlist.KindHashBins,
		matchlist.KindRankArray, matchlist.KindFourD, matchlist.KindHWOffload,
		matchlist.KindPerComm,
	}
	cfgs := make(map[string]Config, len(kinds)+2)
	for _, k := range kinds {
		cfg := baseCfg()
		cfg.Kind = k
		cfg.Pool = true
		cfgs[k.String()] = cfg
	}
	drop := baseCfg()
	drop.Pool = true
	drop.UMQCapacity = 8
	drop.Overflow = OverflowDrop
	cfgs["lla-drop"] = drop
	rdv := baseCfg()
	rdv.Pool = true
	rdv.UMQCapacity = 8
	rdv.Overflow = OverflowRendezvous
	cfgs["lla-rendezvous"] = rdv
	return cfgs
}

func TestBatchMatchesScalarAcrossKinds(t *testing.T) {
	// The batch APIs' contract: for any op stream, batching is
	// indistinguishable from the scalar calls — same per-op results,
	// same stats, same queue states, and bit-identical cycle totals.
	ops := randomOpStream(7, 3000)
	for name, cfg := range batchKindConfigs() {
		t.Run(name, func(t *testing.T) {
			a, b := MustNew(cfg), MustNew(cfg)
			ra := runScalar(a, ops)
			rb := runBatched(b, ops)
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("op %d diverged: scalar %+v batch %+v", i, ra[i], rb[i])
				}
			}
			if sa, sb := a.Stats(), b.Stats(); sa != sb {
				t.Errorf("stats diverged:\nscalar %+v\nbatch  %+v", sa, sb)
			}
			if a.PRQLen() != b.PRQLen() || a.UMQLen() != b.UMQLen() {
				t.Errorf("queues diverged: scalar %d/%d batch %d/%d",
					a.PRQLen(), a.UMQLen(), b.PRQLen(), b.UMQLen())
			}
			if ca, cb := a.Hierarchy().Stats().Cycles, b.Hierarchy().Stats().Cycles; ca != cb {
				t.Errorf("cache cycles diverged: scalar %d batch %d", ca, cb)
			}
		})
	}
}

func TestPoolingIsBitIdenticalOnCycles(t *testing.T) {
	// Node pooling recycles Go objects only; the simulated allocation
	// sequence is unchanged, so modeled cycles must not depend on the
	// Pool knob for the structures whose pool is new in this layer.
	ops := randomOpStream(11, 2500)
	for _, k := range []matchlist.Kind{
		matchlist.KindBaseline, matchlist.KindHashBins,
		matchlist.KindRankArray, matchlist.KindFourD, matchlist.KindPerComm,
	} {
		t.Run(k.String(), func(t *testing.T) {
			cfg := baseCfg()
			cfg.Kind = k
			cold := cfg
			cold.Pool = false
			warm := cfg
			warm.Pool = true
			a, b := MustNew(cold), MustNew(warm)
			ra := runScalar(a, ops)
			rb := runScalar(b, ops)
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("op %d diverged: unpooled %+v pooled %+v", i, ra[i], rb[i])
				}
			}
			if sa, sb := a.Stats(), b.Stats(); sa != sb {
				t.Errorf("stats diverged:\nunpooled %+v\npooled   %+v", sa, sb)
			}
			if ca, cb := a.Hierarchy().Stats().Cycles, b.Hierarchy().Stats().Cycles; ca != cb {
				t.Errorf("cache cycles diverged: unpooled %d pooled %d", ca, cb)
			}
		})
	}
}

func TestPoolStatsAccount(t *testing.T) {
	cfg := baseCfg()
	cfg.Kind = matchlist.KindBaseline
	cfg.Pool = true
	en := MustNew(cfg)
	runScalar(en, randomOpStream(3, 2000))
	st := en.PoolStats()
	if st.Puts == 0 {
		t.Fatal("churned pooled engine recorded no pool puts")
	}
	if st.Gets == 0 {
		t.Fatal("churned pooled engine recorded no pool gets")
	}
	if st.Gets > st.Puts {
		t.Errorf("pool served more nodes than were returned: %+v", st)
	}
	prq, umq := en.PoolStatsByQueue()
	if got := prq.Add(umq); got != st {
		t.Errorf("PoolStats %+v != sum of per-queue stats %+v", st, got)
	}
}

func TestArriveBatchMsgsLengthMismatchPanics(t *testing.T) {
	en := MustNew(baseCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched msgs length did not panic")
		}
	}()
	en.ArriveBatch(make([]match.Envelope, 2), make([]uint64, 1), nil)
}
