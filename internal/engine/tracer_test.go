package engine

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"spco/internal/match"
)

func TestTracerRecordsOperations(t *testing.T) {
	en := MustNew(baseCfg())
	tr := NewTracer(16)
	en.SetObserver(tr)

	en.PostRecv(1, 1, 1, 10)
	en.Arrive(match.Envelope{Rank: 1, Tag: 1, Ctx: 1}, 0) // PRQ match
	en.Arrive(match.Envelope{Rank: 2, Tag: 2, Ctx: 1}, 5) // unexpected
	en.Cancel(99)                                         // not found
	en.BeginComputePhase(2.5e5)

	evs := tr.Events()
	if len(evs) != 5 || tr.Total() != 5 || tr.Dropped() != 0 {
		t.Fatalf("events=%d total=%d dropped=%d, want 5/5/0",
			len(evs), tr.Total(), tr.Dropped())
	}
	wantKinds := []string{"post", "arrive", "arrive", "cancel", "phase"}
	for i, ev := range evs {
		if ev.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %q, want %q", i, ev.Kind, wantKinds[i])
		}
		if ev.Seq != uint64(i) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
	}
	if !evs[1].Matched || evs[1].Cycles == 0 {
		t.Errorf("PRQ-match event: %+v", evs[1])
	}
	if evs[2].Matched {
		t.Errorf("unexpected arrival marked matched: %+v", evs[2])
	}
	if evs[3].Matched || evs[3].Req != 99 {
		t.Errorf("cancel event: %+v", evs[3])
	}
	if evs[4].DurNS != 2.5e5 {
		t.Errorf("phase event: %+v", evs[4])
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.OnCancel(uint64(i), true)
	}
	if tr.Len() != 8 || tr.Total() != 20 || tr.Dropped() != 12 {
		t.Fatalf("len=%d total=%d dropped=%d, want 8/20/12",
			tr.Len(), tr.Total(), tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("Events() returned %d", len(evs))
	}
	// The ring keeps the newest 8, oldest-first: seqs 12..19.
	for i, ev := range evs {
		if want := uint64(12 + i); ev.Seq != want || ev.Req != want {
			t.Errorf("event %d: seq=%d req=%d, want %d", i, ev.Seq, ev.Req, want)
		}
	}
}

func TestTracerWraparoundMidRing(t *testing.T) {
	// Total not a multiple of capacity: the split point lands mid-ring.
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.OnCancel(uint64(i), false)
	}
	evs := tr.Events()
	want := []uint64{3, 4, 5, 6}
	for i, ev := range evs {
		if ev.Seq != want[i] {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, want[i])
		}
	}
}

func TestTracerJSONL(t *testing.T) {
	en := MustNew(baseCfg())
	tr := NewTracer(0) // default capacity
	if tr.Capacity() != DefaultTracerCapacity {
		t.Fatalf("default capacity = %d", tr.Capacity())
	}
	en.SetObserver(tr)
	en.PostRecv(3, 7, 2, 42)
	en.Arrive(match.Envelope{Rank: 3, Tag: 7, Ctx: 2}, 0)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("JSONL lines = %d, want 2", lines)
	}
}

func TestCombineObservers(t *testing.T) {
	if CombineObservers() != nil || CombineObservers(nil, nil) != nil {
		t.Error("all-nil combine should be nil")
	}
	a, b := &countingObserver{}, &countingObserver{}
	if got := CombineObservers(nil, a); got != Observer(a) {
		t.Error("single survivor should be returned unwrapped")
	}

	en := MustNew(baseCfg())
	tr := NewTracer(8)
	en.SetObserver(CombineObservers(a, tr, b))
	en.PostRecv(1, 1, 1, 1)
	en.Arrive(match.Envelope{Rank: 1, Tag: 1, Ctx: 1}, 0)
	en.BeginComputePhase(1e5)
	en.Cancel(5)
	for _, o := range []*countingObserver{a, b} {
		if o.posts != 1 || o.arrives != 1 || o.phases != 1 || o.cancels != 1 {
			t.Errorf("fanned-out observer counts: %+v", o)
		}
	}
	if tr.Total() != 4 {
		t.Errorf("tracer in fan-out saw %d events, want 4", tr.Total())
	}
}
