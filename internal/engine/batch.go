package engine

import (
	"spco/internal/match"
	"spco/internal/matchlist"
)

// Batched hot-path APIs. A NIC progress thread drains envelopes in
// bursts and an application preposts receives in windows; processing a
// burst through one call amortizes the per-call costs a driver pays
// around the engine (the daemon's serialization lock, wire framing,
// reply flushing) over N operations.
//
// The batch entry points run the exact scalar cores in a loop: every
// per-operation cache access, depth charge, telemetry observation, PMU
// bracket and observer callback happens in the same order as N scalar
// calls, so modeled cycle totals are bit-identical between the two
// shapes — the differential tests in batch_test.go pin this down. What
// batching buys is Go-level efficiency (one call, no per-op interface
// dispatch from the driver) and the driver-level amortization above,
// not a different cost model.
//
// None of the batch entry points allocate in steady state: results go
// into caller-provided slices (reused across calls, grown only when
// capacity is exceeded) and the pooled match structures recycle their
// nodes. The alloc gate in alloc_test.go enforces this with
// testing.AllocsPerRun.

// PostReq describes one receive for PostRecvBatch, mirroring the
// PostRecv parameter list.
type PostReq struct {
	Rank int
	Tag  int
	Ctx  uint16
	Req  uint64
}

// ArriveResult is one arrival's outcome.
type ArriveResult struct {
	Req     uint64 // matched posted request handle (ArriveMatched only)
	Outcome ArriveOutcome
	Cycles  uint64
}

// PostResult is one posted receive's outcome.
type PostResult struct {
	Msg     uint64 // buffered message handle (Matched only)
	Matched bool
	Cycles  uint64
}

// ArriveBatch processes envs in order, appending one ArriveResult per
// envelope to out (which it first truncates to length zero) and
// returning the extended slice. msgs carries the per-envelope eager
// payload handles; it may be nil (all zero) or must match len(envs).
// Pass an out slice with cap(out) >= len(envs) to keep the call
// allocation-free.
func (en *Engine) ArriveBatch(envs []match.Envelope, msgs []uint64, out []ArriveResult) []ArriveResult {
	if msgs != nil && len(msgs) != len(envs) {
		panic("engine: ArriveBatch msgs length mismatch")
	}
	out = out[:0]
	for i := range envs {
		var msg uint64
		if msgs != nil {
			msg = msgs[i]
		}
		req, outcome, cycles := en.ArriveFull(envs[i], msg)
		out = append(out, ArriveResult{Req: req, Outcome: outcome, Cycles: cycles})
	}
	return out
}

// PostRecvBatch posts reqs in order, appending one PostResult per
// request to out (truncated to zero first) and returning the extended
// slice. Pass cap(out) >= len(reqs) to keep the call allocation-free.
func (en *Engine) PostRecvBatch(reqs []PostReq, out []PostResult) []PostResult {
	out = out[:0]
	for i := range reqs {
		r := &reqs[i]
		msg, matched, cycles := en.PostRecv(r.Rank, r.Tag, r.Ctx, r.Req)
		out = append(out, PostResult{Msg: msg, Matched: matched, Cycles: cycles})
	}
	return out
}

// PoolStatsByQueue reports the node-pool counters of each queue
// structure (zero values when the structure does not pool or pooling is
// disabled).
func (en *Engine) PoolStatsByQueue() (prq, umq matchlist.PoolStats) {
	if ps, ok := en.prq.(matchlist.PoolStatser); ok {
		prq = ps.PoolStats()
	}
	if ps, ok := en.umq.(matchlist.PoolStatser); ok {
		umq = ps.PoolStats()
	}
	return prq, umq
}

// PoolStats sums both queues' node-pool counters.
func (en *Engine) PoolStats() matchlist.PoolStats {
	prq, umq := en.PoolStatsByQueue()
	return prq.Add(umq)
}
