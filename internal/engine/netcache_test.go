package engine

import (
	"testing"

	"spco/internal/cache"
	"spco/internal/match"
	"spco/internal/matchlist"
)

// The paper's hardware proposal, end-to-end: with a dedicated network
// cache, deep searches after a compute phase cost a fraction of the
// cold baseline — on BOTH architectures — while short lists pay nothing
// ("improved for long lists without a cost to short list performance").
func TestNetworkCacheProposal(t *testing.T) {
	for _, prof := range []cache.Profile{cache.SandyBridge, cache.Broadwell} {
		run := func(netcache bool, depth int) uint64 {
			en := MustNew(Config{
				Profile:        prof,
				Kind:           matchlist.KindLLA,
				EntriesPerNode: 2,
				NetworkCache:   netcache,
			})
			for i := 0; i < depth; i++ {
				en.PostRecv(0, 100000+i, 1, uint64(i))
			}
			en.PostRecv(1, 7, 1, 999)
			en.BeginComputePhase(1e6)
			// Warm the network cache with one traversal, then measure a
			// post-compute-phase search (steady state for a BSP code).
			en.Arrive(match.Envelope{Rank: 2, Tag: 0, Ctx: 1}, 0)
			en.BeginComputePhase(1e6)
			_, ok, cy := en.Arrive(match.Envelope{Rank: 1, Tag: 7, Ctx: 1}, 0)
			if !ok {
				t.Fatal("lost entry")
			}
			return cy
		}

		deepBase := run(false, 1024)
		deepNC := run(true, 1024)
		if deepNC*2 > deepBase {
			t.Errorf("%s: network cache should halve deep-search cost: %d vs %d",
				prof.Name, deepNC, deepBase)
		}

		shortBase := run(false, 0)
		shortNC := run(true, 0)
		if shortNC > shortBase {
			t.Errorf("%s: network cache must not cost short lists anything: %d vs %d",
				prof.Name, shortNC, shortBase)
		}
	}
}

// Unlike hot caching, the network cache charges no synchronisation.
func TestNetworkCacheNoSyncCycles(t *testing.T) {
	en := MustNew(Config{
		Profile:      cache.Broadwell,
		Kind:         matchlist.KindBaseline,
		NetworkCache: true,
	})
	for i := 0; i < 64; i++ {
		en.PostRecv(0, i, 1, uint64(i))
	}
	for i := 0; i < 64; i++ {
		en.Arrive(match.Envelope{Rank: 0, Tag: int32(i), Ctx: 1}, 0)
	}
	if en.Stats().SyncCycles != 0 {
		t.Errorf("network cache charged %d sync cycles, want 0", en.Stats().SyncCycles)
	}
}

// Hot caching and the network cache can coexist (both listeners fire).
func TestHeaterAndNetworkCacheCompose(t *testing.T) {
	en := MustNew(Config{
		Profile:        cache.SandyBridge,
		Kind:           matchlist.KindLLA,
		EntriesPerNode: 2,
		HotCache:       true,
		NetworkCache:   true,
	})
	en.PostRecv(1, 7, 1, 1)
	if en.Heater() == nil {
		t.Fatal("heater missing")
	}
	if en.Heater().RegisteredBytes() == 0 {
		t.Error("heater did not register queue regions")
	}
	if !en.Hierarchy().HasNetworkCache() {
		t.Error("network cache missing")
	}
}

func TestNetworkCacheBytesOption(t *testing.T) {
	en := MustNew(Config{
		Profile:           cache.SandyBridge,
		Kind:              matchlist.KindLLA,
		NetworkCache:      true,
		NetworkCacheBytes: 8 << 10,
	})
	if got := en.Config().Profile.NetworkCache.SizeBytes; got != 8<<10 {
		t.Errorf("network cache size = %d, want 8KiB", got)
	}
}
