package fault

import (
	"flag"
	"fmt"

	"spco/internal/engine"
)

// CLI is the standard -fault-* / -umq-* flag bundle commands expose for
// the fault layer, mirroring perf.CLI: register the flags, then apply
// them to a WireConfig / engine.Config pair.
type CLI struct {
	Drop    float64
	Dup     float64
	Reorder float64
	Corrupt float64

	BurstProb   float64
	BurstRecov  float64
	BurstDrop   float64
	ReorderDisp int

	Seed    uint64
	RTONS   float64
	Retries int

	UMQCap int
	Flow   string
}

// Register installs the flags on fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.Float64Var(&c.Drop, "fault-drop", 0, "per-packet drop probability (i.i.d., or good-state with bursts)")
	fs.Float64Var(&c.Dup, "fault-dup", 0, "per-packet duplication probability")
	fs.Float64Var(&c.Reorder, "fault-reorder", 0, "per-packet reorder probability (bounded displacement)")
	fs.Float64Var(&c.Corrupt, "fault-corrupt", 0, "per-packet corruption probability (discarded on checksum)")
	fs.Float64Var(&c.BurstProb, "fault-burst", 0, "Gilbert-Elliott good-to-bad transition probability (enables burst loss)")
	fs.Float64Var(&c.BurstRecov, "fault-burst-recovery", 0.2, "Gilbert-Elliott bad-to-good transition probability")
	fs.Float64Var(&c.BurstDrop, "fault-burst-drop", DefaultBadDropProb, "drop probability inside a burst")
	fs.IntVar(&c.ReorderDisp, "fault-reorder-disp", DefaultMaxReorderDisp, "max reorder displacement in injection gaps")
	fs.Uint64Var(&c.Seed, "fault-seed", 1, "fault-layer RNG seed (same seed reproduces the run bit-identically)")
	fs.Float64Var(&c.RTONS, "fault-rto", 0, "initial retransmission timeout in ns (0: fabric-suggested)")
	fs.IntVar(&c.Retries, "fault-retries", DefaultMaxRetries, "max retransmissions per packet")
	fs.IntVar(&c.UMQCap, "umq-cap", 0, "bound the unexpected-message queue (0: unbounded)")
	fs.StringVar(&c.Flow, "flow", "", "overflow policy for a bounded UMQ: drop, credit, or rendezvous")
}

// Enabled reports whether any fault behaviour was requested.
func (c *CLI) Enabled() bool {
	return c.Wire().Enabled() || c.UMQCap > 0 || c.Flow != ""
}

// Wire returns the wire model the flags describe.
func (c *CLI) Wire() WireConfig {
	return WireConfig{
		DropProb:       c.Drop,
		DupProb:        c.Dup,
		ReorderProb:    c.Reorder,
		CorruptProb:    c.Corrupt,
		GoodToBad:      c.BurstProb,
		BadToGood:      c.BurstRecov,
		BadDropProb:    c.BurstDrop,
		MaxReorderDisp: c.ReorderDisp,
	}
}

// ApplyEngine folds the bounded-UMQ flags into an engine config,
// defaulting the policy to drop when only a capacity was given.
func (c *CLI) ApplyEngine(cfg *engine.Config) error {
	if c.UMQCap > 0 && c.Flow == "" {
		c.Flow = "drop"
	}
	pol, err := engine.ParseOverflowPolicy(c.Flow)
	if err != nil {
		return err
	}
	if pol != engine.OverflowUnbounded && c.UMQCap <= 0 {
		return fmt.Errorf("fault: -flow %s requires -umq-cap > 0", c.Flow)
	}
	cfg.UMQCapacity = c.UMQCap
	cfg.Overflow = pol
	return nil
}

// TransportConfig assembles a transport config for the given engine.
// Credit flow control follows the engine's policy automatically.
func (c *CLI) TransportConfig(en *engine.Engine) Config {
	cfg := Config{
		Wire:       c.Wire(),
		Seed:       c.Seed,
		Engine:     en,
		RTONS:      c.RTONS,
		MaxRetries: c.Retries,
	}
	if en.Config().Overflow == engine.OverflowCredit {
		cfg.Credits = -1
	}
	return cfg
}
