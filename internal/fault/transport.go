package fault

import (
	"container/heap"
	"fmt"
	"sort"

	"spco/internal/ctrace"
	"spco/internal/engine"
	"spco/internal/match"
	"spco/internal/netmodel"
	"spco/internal/perf"
	"spco/internal/telemetry"
)

// Transport-side cost model (cycles) and control-packet sizing. These
// cycles are charged to AuxCycles, not the engine: dup suppression and
// checksum verification happen in the NIC driver before matching runs,
// so they must not perturb the engine's own cycle totals (the zero-cost
// observability contract extends to the fault layer — with a perfect
// wire none of these paths execute and AuxCycles is zero).
const (
	// DupSuppressCycles is the receive-side cost of recognising and
	// discarding a duplicate (sequence-window check plus header free).
	DupSuppressCycles = 120

	// CorruptCheckCycles is the checksum-verification cost paid for a
	// corrupted packet before it is discarded.
	CorruptCheckCycles = 90

	// CtrlBytes is the wire size of acks, nacks, credit grants and
	// rendezvous control messages.
	CtrlBytes = 32

	// DefaultMaxRetries caps per-packet retransmissions before the
	// transport declares the packet undeliverable.
	DefaultMaxRetries = 16

	// DefaultReorderBuffer bounds the per-flow out-of-order reassembly
	// buffer; packets beyond it are discarded as if lost (the sender's
	// RTO recovers them once the window drains).
	DefaultReorderBuffer = 1024
)

// Config parameterises a Transport: one receiver engine fed by any
// number of sending flows (one flow per source rank) across an
// unreliable wire.
type Config struct {
	// Fabric supplies the timing model (latency, gaps, serialization)
	// for data, control, and rendezvous traffic.
	Fabric netmodel.Fabric

	// Wire is the fault model; its zero value is a perfect wire.
	Wire WireConfig

	// Seed determines every wire fate and every timer jitter. The same
	// seed over the same schedule of Send/PostRecv calls reproduces
	// bit-identical deliveries and counters.
	Seed uint64

	// Engine is the receiving matching engine. Required.
	Engine *engine.Engine

	// PMU, when set, receives fault-event hooks (retransmits, RTO
	// expirations, dup suppressions, wire drops, credit stalls) so
	// -perf-stat reports include the fault counters.
	PMU *perf.PMU

	// Trace, when set, receives the causal timeline: every Send mints a
	// trace, every wire attempt becomes a child span carrying its fate,
	// every fault event an instant, and every engine operation an
	// engine-lane span, all on the transport's simulated-ns clock. Nil
	// keeps the run bit-identical to an untraced one.
	Trace *ctrace.Recorder

	// RTONS is the initial retransmission timeout; zero selects
	// Fabric.SuggestedRTONS(EagerBytes). Backoff doubles it per retry up
	// to MaxRTONS (zero: 64× the base), plus ±10% deterministic jitter.
	RTONS    float64
	MaxRTONS float64

	// MaxRetries caps retransmissions per packet (zero:
	// DefaultMaxRetries). Busy-NACKs from a full UMQ reset the count —
	// flow-control pressure is not loss.
	MaxRetries int

	// EagerBytes is the modeled data-packet size used for timing and the
	// default RTO (zero: 4096, a typical eager threshold).
	EagerBytes uint64

	// ReorderBuffer bounds each flow's out-of-order reassembly buffer
	// (zero: DefaultReorderBuffer).
	ReorderBuffer int

	// Credits enables sender-side credit flow control with the given
	// window when positive; -1 uses the engine's UMQCapacity. Pair it
	// with engine.OverflowCredit so the receiver's bound matches the
	// window. Zero disables.
	Credits int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Engine == nil {
		return fmt.Errorf("fault: Config.Engine is required")
	}
	if err := c.Fabric.Validate(); err != nil {
		return err
	}
	if err := c.Wire.Validate(); err != nil {
		return err
	}
	if c.RTONS < 0 || c.MaxRTONS < 0 {
		return fmt.Errorf("fault: negative RTO")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: negative MaxRetries %d", c.MaxRetries)
	}
	if c.ReorderBuffer < 0 {
		return fmt.Errorf("fault: negative ReorderBuffer %d", c.ReorderBuffer)
	}
	if c.Credits < -1 {
		return fmt.Errorf("fault: Credits %d (want -1, 0, or a positive window)", c.Credits)
	}
	if c.Credits == -1 && c.Engine.Config().UMQCapacity == 0 {
		return fmt.Errorf("fault: Credits -1 needs an engine with UMQCapacity set")
	}
	return nil
}

// Stats aggregates transport activity.
type Stats struct {
	Sends       uint64 // Send calls accepted
	Transmits   uint64 // data packets injected (first copies + retransmits)
	Delivered   uint64 // packets delivered into the engine
	Retransmits uint64 // data packets resent
	RTOExpired  uint64 // retransmission timeouts fired

	DupSuppressed   uint64 // duplicate deliveries absorbed pre-engine
	CorruptDiscards uint64 // packets discarded on checksum failure
	OOOBuffered     uint64 // packets held for reassembly
	OOOOverflow     uint64 // packets discarded because the reassembly buffer was full

	AcksSent uint64 // acks injected (cumulative, possibly with a SACK)
	AcksLost uint64 // acks the wire dropped or corrupted

	BusyNacks     uint64 // UMQ-full refusals NACKed back to the sender
	CreditStalls  uint64 // sends parked waiting for a credit
	CreditsGrants uint64 // credit grants issued by the receiver

	RendezvousTrips uint64  // payload fetches for demoted arrivals
	RendezvousNS    float64 // extra network time those trips cost

	RetryExhausted uint64 // packets abandoned after MaxRetries

	// Wire-level event tallies (what the fault model did, pre-recovery).
	WireDrops    uint64
	WireDups     uint64
	WireReorders uint64
	WireCorrupts uint64
	WireBursts   uint64

	// AuxCycles is the transport-side CPU cost (dup suppression,
	// checksum discards) charged outside the engine's totals.
	AuxCycles uint64

	// EngineOpCycles sums the cycle costs the engine returned for every
	// operation the transport drove (the independent side of the
	// cycle-conservation check: it must equal the engine's own total
	// when the transport is the engine's only driver).
	EngineOpCycles uint64

	// LastEventNS is the simulated time of the last processed event.
	LastEventNS float64
}

// Delivery is one packet handed to the engine, in delivery order — the
// record the invariant checkers (internal/validate) audit.
type Delivery struct {
	Src     int32
	Seq     uint64 // per-flow transport sequence number
	Tag     int32
	Ctx     uint16
	Msg     uint64
	AtNS    float64
	Outcome engine.ArriveOutcome
}

// --- event heap ---

type evKind uint8

const (
	evSend evKind = iota
	evData
	evAck
	evNack
	evCredit
	evRTO
	evPost
	evPhase
)

type event struct {
	at   float64
	id   uint64 // tiebreaker: enqueue order, so equal times stay deterministic
	kind evKind

	flow int32
	seq  uint64
	gen  uint64

	env     match.Envelope
	msg     uint64
	corrupt bool

	// evAck
	cum     uint64 // receiver's next expected seq: everything below is in
	sack    uint64
	hasSack bool

	// evPost
	rank, tag int
	ctx       uint16
	req       uint64

	// evPhase
	durNS float64

	// causal-trace context riding the event (zero when untraced)
	tctx ctrace.Context
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() (x any) {
	old := *h
	n := len(old)
	x = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// --- flow state ---

type pendingPkt struct {
	seq     uint64
	env     match.Envelope
	msg     uint64
	retries int
	busy    int    // busy-NACK requeues (liveness bound, see fireNack)
	gen     uint64 // bumps on every (re)send; stale RTO events no-op
	sacked  bool   // receiver holds it out of order; defer retransmit
	tctx    ctrace.Context
}

type sendFlow struct {
	src     int32
	nextSeq uint64
	base    uint64 // lowest unacked seq
	pending map[uint64]*pendingPkt
	backlog []*pendingPkt // credit-stalled, FIFO
}

type oooPkt struct {
	env  match.Envelope
	msg  uint64
	tctx ctrace.Context
}

type recvFlow struct {
	expected uint64 // next in-sequence seq to deliver
	ooo      map[uint64]oooPkt
}

// Transport is the retransmission protocol over one unreliable wire
// into one engine. Like the engine it feeds, it is single-threaded.
type Transport struct {
	cfg     Config
	wire    *Wire
	jitter  *RNG // timer-jitter stream, independent of wire fates
	en      *engine.Engine
	pmu     *perf.PMU
	baseRTO float64
	maxRTO  float64
	retries int
	oooCap  int
	credits int // remaining window; -1 when flow control is off

	heap   eventHeap
	nextID uint64
	now    float64

	send map[int32]*sendFlow
	recv map[int32]*recvFlow

	// rendezvous holds msg handles demoted to header-only UMQ entries;
	// consuming one costs the payload round trip.
	rendezvous map[uint64]uint64 // msg -> bytes

	// Causal tracing (nil recorder: every hook no-ops).
	tr         *ctrace.Recorder
	traceByMsg map[uint64]traceRef // UMQ-queued msg -> its open trace

	deliveries []Delivery
	stats      Stats
}

// NewTransport builds a transport, validating the configuration.
func NewTransport(cfg Config) (*Transport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.EagerBytes == 0 {
		cfg.EagerBytes = 4096
	}
	if cfg.RTONS == 0 {
		cfg.RTONS = cfg.Fabric.SuggestedRTONS(cfg.EagerBytes)
	}
	if cfg.MaxRTONS == 0 {
		cfg.MaxRTONS = 64 * cfg.RTONS
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.ReorderBuffer == 0 {
		cfg.ReorderBuffer = DefaultReorderBuffer
	}
	credits := -1
	if cfg.Credits > 0 {
		credits = cfg.Credits
	} else if cfg.Credits == -1 {
		credits = cfg.Engine.Config().UMQCapacity
	}
	root := NewRNG(cfg.Seed)
	t := &Transport{
		cfg:        cfg,
		wire:       NewWire(cfg.Wire, root.Fork(1)),
		jitter:     root.Fork(2),
		en:         cfg.Engine,
		pmu:        cfg.PMU,
		baseRTO:    cfg.RTONS,
		maxRTO:     cfg.MaxRTONS,
		retries:    cfg.MaxRetries,
		oooCap:     cfg.ReorderBuffer,
		credits:    credits,
		send:       make(map[int32]*sendFlow),
		recv:       make(map[int32]*recvFlow),
		rendezvous: make(map[uint64]uint64),
		tr:         cfg.Trace,
		traceByMsg: make(map[uint64]traceRef),
	}
	return t, nil
}

// traceRef remembers an open trace (and its display pid) for a message
// parked in the UMQ, so the consuming post attaches and finishes it.
type traceRef struct {
	ctx ctrace.Context
	pid int
}

// MustNewTransport panics on the errors NewTransport returns.
func MustNewTransport(cfg Config) *Transport {
	t, err := NewTransport(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Transport) push(e *event) {
	e.id = t.nextID
	t.nextID++
	heap.Push(&t.heap, e)
}

func (t *Transport) sendFlow(src int32) *sendFlow {
	f := t.send[src]
	if f == nil {
		f = &sendFlow{src: src, pending: make(map[uint64]*pendingPkt)}
		t.send[src] = f
	}
	return f
}

func (t *Transport) recvFlow(src int32) *recvFlow {
	f := t.recv[src]
	if f == nil {
		f = &recvFlow{ooo: make(map[uint64]oooPkt)}
		t.recv[src] = f
	}
	return f
}

// Send schedules an eager message from src at simulated time atNS.
// Times must not be negative; equal times resolve in call order.
func (t *Transport) Send(atNS float64, src int32, tag int32, ctx uint16, msg uint64) {
	t.stats.Sends++
	tctx := t.tr.Mint(int(src), fmt.Sprintf("send src=%d tag=%d", src, tag), atNS)
	t.push(&event{at: atNS, kind: evSend, flow: src,
		env: match.Envelope{Rank: src, Tag: tag, Ctx: ctx}, msg: msg, tctx: tctx})
}

// PostRecv schedules a receive post at simulated time atNS. The engine
// runs it at that time; a UMQ consumption returns credits and settles
// rendezvous payloads.
func (t *Transport) PostRecv(atNS float64, rank, tag int, ctx uint16, req uint64) {
	t.push(&event{at: atNS, kind: evPost, rank: rank, tag: tag, ctx: ctx, req: req})
}

// ComputePhase schedules an application compute phase at simulated
// time atNS: the engine flushes its caches (and re-heats, if a heater
// is attached) exactly as in the direct-driven workloads.
func (t *Transport) ComputePhase(atNS, durationNS float64) {
	t.push(&event{at: atNS, kind: evPhase, durNS: durationNS})
}

// Run drains the event heap to completion: all sends transmitted,
// all retransmissions resolved (delivered or abandoned), all posts
// processed. It returns the accumulated stats.
func (t *Transport) Run() Stats {
	for t.heap.Len() > 0 {
		e := heap.Pop(&t.heap).(*event)
		t.now = e.at
		if e.at > t.stats.LastEventNS {
			t.stats.LastEventNS = e.at
		}
		switch e.kind {
		case evSend:
			t.fireSend(e)
		case evData:
			t.fireData(e)
		case evAck:
			t.fireAck(e)
		case evNack:
			t.fireNack(e)
		case evCredit:
			t.fireCredit()
		case evRTO:
			t.fireRTO(e)
		case evPost:
			t.firePost(e)
		case evPhase:
			t.sampleCounters()
			t.en.BeginComputePhase(e.durNS)
			t.sampleCounters()
		}
	}
	return t.Stats()
}

// sampleCounters records heater-sweep and cache-residency counter
// tracks at compute-phase boundaries, so Perfetto shows occupancy
// moving under the message spans. No-op without a recorder.
func (t *Transport) sampleCounters() {
	if t.tr == nil {
		return
	}
	if ht := t.en.Heater(); ht != nil {
		t.tr.Counter("heater", t.now,
			ctrace.CV{K: "sweeps", V: float64(ht.Sweeps())},
			ctrace.CV{K: "coverage", V: ht.LastSweepCoverage()})
	}
	for _, r := range t.en.Hierarchy().ScanResidency() {
		t.tr.Counter("residency:"+r.Owner, t.now,
			ctrace.CV{K: "l1", V: r.L1Frac()},
			ctrace.CV{K: "l2", V: r.L2Frac()},
			ctrace.CV{K: "l3", V: r.L3Frac()})
	}
}

// rto returns the timeout for a packet's next (re)transmission:
// exponential backoff capped at MaxRTONS, with ±10% deterministic
// jitter so synchronized losses don't retransmit in lockstep.
func (t *Transport) rto(retries int, sacked bool) float64 {
	v := t.baseRTO
	for i := 0; i < retries && v < t.maxRTO; i++ {
		v *= 2
	}
	if sacked {
		// The receiver holds it out of order; only the ack was lost.
		// Defer, the cumulative ack likely arrives first.
		v *= 2
	}
	if v > t.maxRTO {
		v = t.maxRTO
	}
	return v * (0.9 + 0.2*t.jitter.Float64())
}

// fireSend runs sender-side admission: consume a credit (or park in
// the backlog), assign the flow sequence number, transmit.
func (t *Transport) fireSend(e *event) {
	f := t.sendFlow(e.flow)
	pkt := &pendingPkt{env: e.env, msg: e.msg, tctx: e.tctx}
	if t.credits == 0 || len(f.backlog) > 0 {
		// No window, or earlier sends of this flow are already parked
		// (overtaking them would break per-flow FIFO).
		t.stats.CreditStalls++
		if t.pmu != nil {
			t.pmu.OnCreditStall()
		}
		t.tr.Instant(pkt.tctx, ctrace.LaneTransport, int(e.flow), "credit-stall", t.now)
		t.tr.MarkFault(pkt.tctx.Trace)
		f.backlog = append(f.backlog, pkt)
		return
	}
	if t.credits > 0 {
		t.credits--
	}
	t.admit(f, pkt)
}

// admit assigns the next sequence number and performs the first
// transmission.
func (t *Transport) admit(f *sendFlow, pkt *pendingPkt) {
	pkt.seq = f.nextSeq
	f.nextSeq++
	pkt.env.Seq = pkt.seq
	f.pending[pkt.seq] = pkt
	t.transmit(f, pkt)
}

// transmit injects one copy of pkt onto the wire and arms its RTO.
func (t *Transport) transmit(f *sendFlow, pkt *pendingPkt) {
	t.stats.Transmits++
	pkt.gen++
	fate := t.wire.Judge()
	bytes := t.cfg.EagerBytes
	attempt := fmt.Sprintf("xmit#%d", pkt.gen-1)
	if fate.Dropped {
		t.stats.WireDrops++
		if t.pmu != nil {
			t.pmu.OnWireDrop()
		}
		t.tr.Complete(pkt.tctx, ctrace.LaneWire, int(f.src), attempt, t.now, 0,
			ctrace.KV{K: "fate", V: "dropped"})
		t.tr.MarkFault(pkt.tctx.Trace)
	} else {
		arrive := t.now + t.cfg.Fabric.EndToEndNS(bytes) +
			float64(fate.DelayGaps)*t.cfg.Fabric.MessageGapNS(bytes)
		if fate.DelayGaps > 0 {
			t.stats.WireReorders++
		}
		if fate.Corrupted {
			t.stats.WireCorrupts++
			if t.pmu != nil {
				t.pmu.OnWireCorrupt()
			}
		}
		xargs := []ctrace.KV{{K: "fate", V: "delivered"}}
		if fate.Corrupted {
			xargs = append(xargs, ctrace.KV{K: "corrupt", V: "true"})
		}
		if fate.DelayGaps > 0 {
			xargs = append(xargs, ctrace.KV{K: "delay_gaps", V: fmt.Sprintf("%d", fate.DelayGaps)})
		}
		t.tr.Complete(pkt.tctx, ctrace.LaneWire, int(f.src), attempt, t.now, arrive-t.now, xargs...)
		t.push(&event{at: arrive, kind: evData, flow: f.src, seq: pkt.seq,
			env: pkt.env, msg: pkt.msg, corrupt: fate.Corrupted, tctx: pkt.tctx})
		if fate.Duplicated {
			t.stats.WireDups++
			dupArrive := arrive + t.cfg.Fabric.MessageGapNS(bytes)
			t.tr.Complete(pkt.tctx, ctrace.LaneWire, int(f.src), attempt+".dup", t.now, dupArrive-t.now,
				ctrace.KV{K: "fate", V: "delivered"}, ctrace.KV{K: "wire_dup", V: "true"})
			t.tr.MarkFault(pkt.tctx.Trace)
			t.push(&event{at: dupArrive, kind: evData,
				flow: f.src, seq: pkt.seq, env: pkt.env, msg: pkt.msg, tctx: pkt.tctx})
		}
	}
	t.push(&event{at: t.now + t.rto(pkt.retries, pkt.sacked), kind: evRTO,
		flow: f.src, seq: pkt.seq, gen: pkt.gen})
}

// fireData runs the receiver for one arriving data packet: checksum,
// dup suppression, in-order reassembly, engine delivery, acking.
func (t *Transport) fireData(e *event) {
	if e.corrupt {
		// Checksum fails; burn the verification cycles and drop. The
		// sender's RTO recovers it.
		t.stats.CorruptDiscards++
		t.stats.AuxCycles += CorruptCheckCycles
		t.tr.Instant(e.tctx, ctrace.LaneTransport, int(e.flow), "corrupt-discard", t.now)
		t.tr.MarkFault(e.tctx.Trace)
		return
	}
	f := t.recvFlow(e.flow)
	if e.seq < f.expected {
		// Already delivered: a wire duplicate or a retransmission that
		// crossed our ack. Suppress, re-ack so the sender stops.
		t.tr.Instant(e.tctx, ctrace.LaneTransport, int(e.flow), "dup-suppressed", t.now)
		t.suppressDup(e.flow, f)
		return
	}
	if _, buffered := f.ooo[e.seq]; buffered {
		t.tr.Instant(e.tctx, ctrace.LaneTransport, int(e.flow), "dup-suppressed", t.now)
		t.suppressDup(e.flow, f)
		return
	}
	if e.seq > f.expected {
		if len(f.ooo) >= t.oooCap {
			// Reassembly window full: treat as loss, no ack.
			t.stats.OOOOverflow++
			t.tr.Instant(e.tctx, ctrace.LaneTransport, int(e.flow), "ooo-overflow", t.now)
			t.tr.MarkFault(e.tctx.Trace)
			return
		}
		f.ooo[e.seq] = oooPkt{env: e.env, msg: e.msg, tctx: e.tctx}
		t.stats.OOOBuffered++
		t.tr.Instant(e.tctx, ctrace.LaneTransport, int(e.flow), "ooo-buffered", t.now)
		t.sendAck(e.flow, f, e.seq, true)
		return
	}
	// In sequence: deliver it and everything consecutive behind it.
	t.deliverRun(e.flow, f, oooPkt{env: e.env, msg: e.msg, tctx: e.tctx})
	t.sendAck(e.flow, f, 0, false)
}

// suppressDup charges the duplicate-recognition cost and re-acks.
func (t *Transport) suppressDup(src int32, f *recvFlow) {
	t.stats.DupSuppressed++
	t.stats.AuxCycles += DupSuppressCycles
	if t.pmu != nil {
		t.pmu.OnDupSuppressed()
	}
	t.sendAck(src, f, 0, false)
}

// deliverRun feeds the in-sequence packet, then any directly following
// buffered packets, into the engine. A UMQ-full refusal stops the run
// without advancing expected: the packet is NACKed and redelivered by
// the sender once the queue drains, preserving per-flow FIFO.
func (t *Transport) deliverRun(src int32, f *recvFlow, first oooPkt) {
	pkt := first
	for {
		t.pmu.SetTraceContext(pkt.tctx.Trace, pkt.tctx.Parent)
		_, outcome, cycles := t.en.ArriveFull(pkt.env, pkt.msg)
		t.stats.EngineOpCycles += cycles
		t.tr.Complete(pkt.tctx, ctrace.LaneEngine, int(src), "arrive",
			t.now, t.en.CyclesToNanos(cycles),
			ctrace.KV{K: "outcome", V: outcome.String()},
			ctrace.KV{K: "cycles", V: fmt.Sprintf("%d", cycles)})
		if outcome == engine.ArriveRefused {
			t.stats.BusyNacks++
			t.tr.Instant(pkt.tctx, ctrace.LaneTransport, int(src), "busy-nack", t.now)
			t.tr.MarkFault(pkt.tctx.Trace)
			t.pushNack(src, f.expected)
			return
		}
		t.stats.Delivered++
		t.deliveries = append(t.deliveries, Delivery{
			Src: src, Seq: f.expected, Tag: pkt.env.Tag, Ctx: pkt.env.Ctx,
			Msg: pkt.msg, AtNS: t.now, Outcome: outcome,
		})
		switch outcome {
		case engine.ArriveQueuedRendezvous:
			t.rendezvous[pkt.msg] = t.cfg.EagerBytes
			t.noteQueued(pkt)
		case engine.ArriveQueued:
			t.noteQueued(pkt)
		case engine.ArriveMatched:
			// Straight into a posted receive: no UMQ slot consumed, the
			// credit frees immediately.
			t.tr.Finish(pkt.tctx.Trace, t.now+t.en.CyclesToNanos(cycles), "matched")
			t.grantCredit()
		}
		f.expected++
		next, ok := f.ooo[f.expected]
		if !ok {
			return
		}
		delete(f.ooo, f.expected)
		pkt = next
	}
}

// noteQueued remembers the open trace of a message parked in the UMQ,
// so the posted receive that later consumes it can close the timeline.
func (t *Transport) noteQueued(pkt oooPkt) {
	if t.tr == nil || !pkt.tctx.Valid() {
		return
	}
	t.traceByMsg[pkt.msg] = traceRef{ctx: pkt.tctx, pid: int(pkt.env.Rank)}
}

// sendAck injects a cumulative ack (next expected seq), optionally
// carrying one SACK for a just-buffered out-of-order packet. Acks ride
// the same lossy wire as data.
func (t *Transport) sendAck(src int32, f *recvFlow, sack uint64, hasSack bool) {
	t.stats.AcksSent++
	fate := t.wire.Judge()
	if fate.Dropped || fate.Corrupted {
		t.stats.AcksLost++
		if fate.Dropped {
			t.stats.WireDrops++
		} else {
			t.stats.WireCorrupts++
		}
		return
	}
	at := t.now + t.cfg.Fabric.EndToEndNS(CtrlBytes) +
		float64(fate.DelayGaps)*t.cfg.Fabric.MessageGapNS(CtrlBytes)
	t.push(&event{at: at, kind: evAck, flow: src, cum: f.expected, sack: sack, hasSack: hasSack})
}

// pushNack sends the busy-NACK for a refused in-sequence packet. It
// rides the lossy wire; if lost, the sender's RTO still recovers.
func (t *Transport) pushNack(src int32, seq uint64) {
	fate := t.wire.Judge()
	if fate.Dropped || fate.Corrupted {
		return
	}
	at := t.now + t.cfg.Fabric.EndToEndNS(CtrlBytes)
	t.push(&event{at: at, kind: evNack, flow: src, seq: seq})
}

// fireAck runs the sender for one arriving ack: slide the window,
// mark the SACKed packet.
func (t *Transport) fireAck(e *event) {
	f := t.sendFlow(e.flow)
	for seq := f.base; seq < e.cum; seq++ {
		if pkt := f.pending[seq]; pkt != nil {
			pkt.gen++ // invalidate the armed RTO
			delete(f.pending, seq)
		}
	}
	if e.cum > f.base {
		f.base = e.cum
	}
	if e.hasSack {
		if pkt := f.pending[e.sack]; pkt != nil && !pkt.sacked {
			// The receiver holds this packet out of order: only the hole
			// ahead of it is missing. Defer its armed RTO so it doesn't
			// retransmit spuriously while the hole's own recovery (and
			// the cumulative ack that follows) is in flight.
			pkt.sacked = true
			pkt.gen++
			t.push(&event{at: t.now + t.rto(pkt.retries, true), kind: evRTO,
				flow: e.flow, seq: pkt.seq, gen: pkt.gen})
		}
	}
}

// MaxBusyRequeues bounds how often one packet may be requeued by
// busy-NACKs before the transport abandons it. Retry-count resets make
// flow-control pressure survivable indefinitely; this bound only exists
// so a workload that never posts receives (a harness bug) terminates
// with RetryExhausted instead of looping forever.
const MaxBusyRequeues = 4096

// fireNack handles a busy-NACK: the receiver's UMQ was full, which is
// congestion, not loss — reset the retry budget and retransmit after a
// fresh timeout to let the queue drain.
func (t *Transport) fireNack(e *event) {
	f := t.sendFlow(e.flow)
	pkt := f.pending[e.seq]
	if pkt == nil {
		return
	}
	pkt.busy++
	if pkt.busy > MaxBusyRequeues {
		t.stats.RetryExhausted++
		t.tr.Instant(pkt.tctx, ctrace.LaneTransport, int(e.flow), "retry-exhausted", t.now,
			ctrace.KV{K: "cause", V: "busy"})
		t.tr.MarkFault(pkt.tctx.Trace)
		t.tr.Finish(pkt.tctx.Trace, t.now, "abandoned")
		delete(f.pending, e.seq)
		return
	}
	pkt.retries = 0
	pkt.gen++
	t.push(&event{at: t.now + t.rto(0, false), kind: evRTO,
		flow: e.flow, seq: pkt.seq, gen: pkt.gen})
}

// grantCredit issues one credit back to the sender pool. Grants are
// modeled as reliable control traffic (a lost grant would leak window
// permanently; real credit schemes piggyback grants redundantly, which
// amounts to the same thing).
func (t *Transport) grantCredit() {
	if t.credits < 0 {
		return
	}
	t.stats.CreditsGrants++
	t.push(&event{at: t.now + t.cfg.Fabric.EndToEndNS(CtrlBytes), kind: evCredit})
}

// fireCredit returns a credit to the pool and drains the backlog in
// flow order (lowest source rank first, then FIFO within the flow) so
// the drain order is deterministic.
func (t *Transport) fireCredit() {
	t.credits++
	for t.credits > 0 {
		var pick *sendFlow
		for _, f := range t.send {
			if len(f.backlog) == 0 {
				continue
			}
			if pick == nil || f.src < pick.src {
				pick = f
			}
		}
		if pick == nil {
			return
		}
		pkt := pick.backlog[0]
		pick.backlog = pick.backlog[1:]
		t.credits--
		t.admit(pick, pkt)
	}
}

// fireRTO handles a retransmission timer: if the packet is still
// unacked, resend it (or abandon it past MaxRetries).
func (t *Transport) fireRTO(e *event) {
	f := t.sendFlow(e.flow)
	pkt := f.pending[e.seq]
	if pkt == nil || pkt.gen != e.gen {
		return // acked or superseded since armed
	}
	t.stats.RTOExpired++
	if t.pmu != nil {
		t.pmu.OnRTOExpired()
	}
	t.tr.Instant(pkt.tctx, ctrace.LaneTransport, int(e.flow), "rto", t.now,
		ctrace.KV{K: "retries", V: fmt.Sprintf("%d", pkt.retries)})
	t.tr.MarkFault(pkt.tctx.Trace)
	pkt.retries++
	if pkt.retries > t.retries {
		t.stats.RetryExhausted++
		t.tr.Instant(pkt.tctx, ctrace.LaneTransport, int(e.flow), "retry-exhausted", t.now,
			ctrace.KV{K: "cause", V: "loss"})
		t.tr.Finish(pkt.tctx.Trace, t.now, "abandoned")
		delete(f.pending, e.seq)
		return
	}
	t.stats.Retransmits++
	if t.pmu != nil {
		t.pmu.OnRetransmit()
	}
	t.transmit(f, pkt)
}

// firePost runs a posted receive through the engine. A UMQ match
// consumes a buffered slot: return its credit and settle a rendezvous
// payload if the message was demoted.
func (t *Transport) firePost(e *event) {
	msg, matched, cycles := t.en.PostRecv(e.rank, e.tag, e.ctx, e.req)
	t.stats.EngineOpCycles += cycles
	if !matched {
		return
	}
	if ref, ok := t.traceByMsg[msg]; ok {
		// The post consumed a traced UMQ message: attach the consuming
		// engine op and close the timeline.
		delete(t.traceByMsg, msg)
		t.tr.Complete(ref.ctx, ctrace.LaneEngine, ref.pid, "post-match",
			t.now, t.en.CyclesToNanos(cycles),
			ctrace.KV{K: "cycles", V: fmt.Sprintf("%d", cycles)})
		t.tr.Finish(ref.ctx.Trace, t.now+t.en.CyclesToNanos(cycles), "matched")
	}
	if bytes, ok := t.rendezvous[msg]; ok {
		delete(t.rendezvous, msg)
		t.stats.RendezvousTrips++
		t.stats.RendezvousNS += 2*t.cfg.Fabric.EndToEndNS(CtrlBytes) +
			t.cfg.Fabric.SerializationNS(bytes)
	}
	t.grantCredit()
}

// Stats returns a copy of the accumulated counters.
func (t *Transport) Stats() Stats {
	s := t.stats
	s.WireBursts = t.wire.Bursts
	return s
}

// Deliveries returns the delivery log in delivery order.
func (t *Transport) Deliveries() []Delivery { return t.deliveries }

// NowNS returns the transport's simulated clock (the time of the last
// processed event).
func (t *Transport) NowNS() float64 { return t.now }

// Unacked reports packets still pending or backlogged across all flows
// (zero after a clean Run).
func (t *Transport) Unacked() int {
	n := 0
	for _, f := range t.send {
		n += len(f.pending) + len(f.backlog)
	}
	return n
}

// Flows returns the source ranks seen, sorted (deterministic for
// reports).
func (t *Transport) Flows() []int32 {
	out := make([]int32, 0, len(t.send))
	for src := range t.send {
		out = append(out, src)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Publish folds the transport counters into a telemetry registry under
// spco_fault_events_total{kind}, plus the rendezvous time gauge.
func (t *Transport) Publish(reg *telemetry.Registry, base telemetry.Labels) {
	if reg == nil {
		return
	}
	s := t.stats
	reg.Help("spco_fault_events_total", "Fault-layer events by kind (wire, transport, flow control).")
	for _, kv := range []struct {
		kind string
		v    uint64
	}{
		{"send", s.Sends},
		{"transmit", s.Transmits},
		{"delivered", s.Delivered},
		{"wire-drop", s.WireDrops},
		{"wire-dup", s.WireDups},
		{"wire-reorder", s.WireReorders},
		{"wire-corrupt", s.WireCorrupts},
		{"retransmit", s.Retransmits},
		{"rto-expired", s.RTOExpired},
		{"dup-suppressed", s.DupSuppressed},
		{"corrupt-discard", s.CorruptDiscards},
		{"ooo-buffered", s.OOOBuffered},
		{"ack-sent", s.AcksSent},
		{"ack-lost", s.AcksLost},
		{"busy-nack", s.BusyNacks},
		{"credit-stall", s.CreditStalls},
		{"credit-grant", s.CreditsGrants},
		{"rendezvous-trip", s.RendezvousTrips},
		{"retry-exhausted", s.RetryExhausted},
	} {
		if kv.v > 0 {
			reg.Counter("spco_fault_events_total",
				telemetry.MergeLabels(base, telemetry.Labels{"kind": kv.kind})).Add(float64(kv.v))
		}
	}
	if s.AuxCycles > 0 {
		reg.Help("spco_fault_aux_cycles_total", "Transport-side cycles (dup suppression, checksum discards) outside engine totals.")
		reg.Counter("spco_fault_aux_cycles_total", base).Add(float64(s.AuxCycles))
	}
	if s.RendezvousNS > 0 {
		reg.Help("spco_fault_rendezvous_ns_total", "Extra network time spent on rendezvous payload fetches.")
		reg.Counter("spco_fault_rendezvous_ns_total", base).Add(s.RendezvousNS)
	}
}
