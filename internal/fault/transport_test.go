package fault_test

import (
	"reflect"
	"testing"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/match"
	"spco/internal/matchlist"
	"spco/internal/netmodel"
	"spco/internal/validate"
)

func testEngine(t *testing.T, umqCap int, pol engine.OverflowPolicy) *engine.Engine {
	t.Helper()
	en, err := engine.New(engine.Config{
		Profile:        cache.SandyBridge,
		Kind:           matchlist.KindLLA,
		EntriesPerNode: 2,
		CommSize:       64,
		UMQCapacity:    umqCap,
		Overflow:       pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return en
}

func testTransport(t *testing.T, en *engine.Engine, wire fault.WireConfig, seed uint64) *fault.Transport {
	t.Helper()
	cfg := fault.Config{Fabric: netmodel.IBQDR, Wire: wire, Seed: seed, Engine: en}
	if en.Config().Overflow == engine.OverflowCredit {
		cfg.Credits = -1
	}
	tr, err := fault.NewTransport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// drive schedules msgs sends from nflows sources with a matching
// receive each: even messages preposted, odd posted late. Returns the
// per-source send counts for the exactly-once audit.
func drive(tr *fault.Transport, msgs, nflows int) map[int32]uint64 {
	gap := netmodel.IBQDR.MessageGapNS(4096)
	late := 4 * netmodel.IBQDR.EndToEndNS(4096)
	sent := make(map[int32]uint64)
	for i := 0; i < msgs; i++ {
		src := int32(i % nflows)
		at := float64(i) * gap
		tr.Send(at, src, int32(i), 1, uint64(i))
		sent[src]++
		postAt := at
		if i%2 == 1 {
			postAt = at + late
		}
		tr.PostRecv(postAt, int(src), i, 1, uint64(i))
	}
	return sent
}

func auditClean(t *testing.T, tr *fault.Transport, en *engine.Engine, sent map[int32]uint64) {
	t.Helper()
	ts := tr.Stats()
	var vs []validate.Violation
	vs = append(vs, validate.CheckExactlyOnce(sent, tr.Deliveries())...)
	vs = append(vs, validate.CheckFlowFIFO(tr.Deliveries())...)
	vs = append(vs, validate.CheckCycleConservation(en.Stats(), ts.EngineOpCycles, ts)...)
	vs = append(vs, validate.CheckTransportClean(tr)...)
	for _, v := range vs {
		t.Error(v)
	}
}

func TestCleanWireBitIdenticalToDirectDrive(t *testing.T) {
	// The acceptance contract: with every fault probability zero and
	// flow control off, routing a workload through the transport must
	// leave the engine's cycle totals bit-identical to driving the
	// engine directly with the same operation sequence.
	const msgs = 500

	// Direct drive. Preposts first (they beat every arrival), then the
	// arrivals in send order, then the late posts in arrival order —
	// exactly the event order a perfect wire produces.
	direct := testEngine(t, 0, engine.OverflowUnbounded)
	var directOpCycles uint64
	for i := 0; i < msgs; i++ {
		if i%2 == 0 {
			_, _, cy := direct.PostRecv(int(int32(i%4)), i, 1, uint64(i))
			directOpCycles += cy
		}
	}
	for i := 0; i < msgs; i++ {
		_, _, cy := direct.Arrive(match.Envelope{Rank: int32(i % 4), Tag: int32(i), Ctx: 1, Seq: uint64(i / 4)}, uint64(i))
		directOpCycles += cy
	}
	for i := 1; i < msgs; i += 2 {
		_, _, cy := direct.PostRecv(int(int32(i%4)), i, 1, uint64(i))
		directOpCycles += cy
	}

	// Transport drive: preposts at send time, late posts far after the
	// last arrival so the interleaving matches the direct sequence.
	en := testEngine(t, 0, engine.OverflowUnbounded)
	tr := testTransport(t, en, fault.WireConfig{}, 1)
	gap := netmodel.IBQDR.MessageGapNS(4096)
	end := float64(msgs)*gap + netmodel.IBQDR.EndToEndNS(4096)
	for i := 0; i < msgs; i++ {
		src := int32(i % 4)
		at := float64(i) * gap
		tr.Send(at, src, int32(i), 1, uint64(i))
		if i%2 == 0 {
			tr.PostRecv(0, int(src), i, 1, uint64(i))
		} else {
			tr.PostRecv(end+float64(i), int(src), i, 1, uint64(i))
		}
	}
	ts := tr.Run()

	if ts.Retransmits != 0 || ts.DupSuppressed != 0 || ts.AuxCycles != 0 || ts.RTOExpired != 0 {
		t.Errorf("perfect wire produced fault activity: %+v", ts)
	}
	if ts.Delivered != msgs {
		t.Fatalf("delivered %d of %d", ts.Delivered, msgs)
	}
	if got, want := en.Stats(), direct.Stats(); got != want {
		t.Errorf("engine stats differ:\ntransport %+v\ndirect    %+v", got, want)
	}
	if got, want := en.Hierarchy().Stats().Cycles, direct.Hierarchy().Stats().Cycles; got != want {
		t.Errorf("cache cycles differ: transport %d direct %d", got, want)
	}
	if ts.EngineOpCycles != directOpCycles {
		t.Errorf("op cycles differ: transport %d direct %d", ts.EngineOpCycles, directOpCycles)
	}
}

func TestExactlyOnceUnderChaosMix(t *testing.T) {
	en := testEngine(t, 0, engine.OverflowUnbounded)
	tr := testTransport(t, en,
		fault.WireConfig{DropProb: 0.02, DupProb: 0.01, ReorderProb: 0.05, CorruptProb: 0.01}, 42)
	sent := drive(tr, 4000, 4)
	ts := tr.Run()
	if ts.Delivered != 4000 {
		t.Fatalf("delivered %d of 4000", ts.Delivered)
	}
	if ts.Retransmits == 0 || ts.DupSuppressed == 0 || ts.CorruptDiscards == 0 || ts.OOOBuffered == 0 {
		t.Errorf("fault machinery unexercised: %+v", ts)
	}
	auditClean(t, tr, en, sent)
}

func TestBurstLossRecovery(t *testing.T) {
	en := testEngine(t, 0, engine.OverflowUnbounded)
	tr := testTransport(t, en,
		fault.WireConfig{GoodToBad: 0.005, BadToGood: 0.2, BadDropProb: 0.6}, 7)
	sent := drive(tr, 3000, 4)
	ts := tr.Run()
	if ts.WireBursts == 0 || ts.WireDrops == 0 {
		t.Fatalf("no burst losses: %+v", ts)
	}
	if ts.Delivered != 3000 {
		t.Fatalf("delivered %d of 3000", ts.Delivered)
	}
	auditClean(t, tr, en, sent)
}

func TestSameSeedBitIdenticalDifferentSeedDiffers(t *testing.T) {
	wire := fault.WireConfig{DropProb: 0.02, DupProb: 0.01, ReorderProb: 0.04}
	run := func(seed uint64) (fault.Stats, []fault.Delivery, engine.Stats) {
		en := testEngine(t, 0, engine.OverflowUnbounded)
		tr := testTransport(t, en, wire, seed)
		drive(tr, 2000, 4)
		ts := tr.Run()
		return ts, tr.Deliveries(), en.Stats()
	}
	s1, d1, e1 := run(42)
	s2, d2, e2 := run(42)
	if s1 != s2 {
		t.Errorf("same seed, different transport stats:\n%+v\n%+v", s1, s2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Error("same seed, different delivery logs")
	}
	if e1 != e2 {
		t.Errorf("same seed, different engine stats:\n%+v\n%+v", e1, e2)
	}
	s3, _, _ := run(43)
	if s1 == s3 {
		t.Error("different seeds produced identical transport stats")
	}
}

func TestRetryExhaustionOnDeadWire(t *testing.T) {
	en := testEngine(t, 0, engine.OverflowUnbounded)
	tr, err := fault.NewTransport(fault.Config{
		Fabric: netmodel.IBQDR, Wire: fault.WireConfig{DropProb: 1},
		Seed: 1, Engine: en, MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Send(0, 0, 1, 1, 100)
	tr.PostRecv(0, 0, 1, 1, 100)
	ts := tr.Run()
	if ts.RetryExhausted != 1 {
		t.Errorf("RetryExhausted = %d, want 1", ts.RetryExhausted)
	}
	if ts.Delivered != 0 {
		t.Errorf("delivered %d on a dead wire", ts.Delivered)
	}
	if ts.Transmits != 4 { // original + MaxRetries
		t.Errorf("transmits = %d, want 4", ts.Transmits)
	}
	if tr.Unacked() != 0 {
		t.Errorf("abandoned packet still pending")
	}
}

func TestCreditFlowControl(t *testing.T) {
	en := testEngine(t, 8, engine.OverflowCredit)
	tr := testTransport(t, en, fault.WireConfig{}, 1)
	// Everything sent at once, receives posted late: the window must
	// throttle admission to the UMQ bound.
	sent := make(map[int32]uint64)
	late := 100 * netmodel.IBQDR.EndToEndNS(4096)
	for i := 0; i < 200; i++ {
		tr.Send(float64(i), 0, int32(i), 1, uint64(i))
		sent[0]++
		tr.PostRecv(late+float64(i)*500, 0, i, 1, uint64(i))
	}
	ts := tr.Run()
	if ts.CreditStalls == 0 || ts.CreditsGrants == 0 {
		t.Fatalf("credit machinery unexercised: %+v", ts)
	}
	if ts.Delivered != 200 {
		t.Fatalf("delivered %d of 200", ts.Delivered)
	}
	if en.Stats().UMQOverflows != 0 {
		t.Errorf("credit window let the UMQ overflow %d times", en.Stats().UMQOverflows)
	}
	auditClean(t, tr, en, sent)
}

func TestDropPolicyBusyNacks(t *testing.T) {
	en := testEngine(t, 4, engine.OverflowDrop)
	tr := testTransport(t, en, fault.WireConfig{}, 1)
	sent := make(map[int32]uint64)
	late := 50 * netmodel.IBQDR.EndToEndNS(4096)
	for i := 0; i < 100; i++ {
		tr.Send(float64(i), 0, int32(i), 1, uint64(i))
		sent[0]++
		tr.PostRecv(late+float64(i)*1000, 0, i, 1, uint64(i))
	}
	ts := tr.Run()
	if ts.BusyNacks == 0 {
		t.Fatalf("no busy-NACKs with UMQ capacity 4: %+v", ts)
	}
	if en.Stats().Refused == 0 || en.Stats().UMQOverflows == 0 {
		t.Errorf("engine saw no refusals: %+v", en.Stats())
	}
	if ts.Delivered != 100 {
		t.Fatalf("delivered %d of 100 (drop policy must still converge)", ts.Delivered)
	}
	auditClean(t, tr, en, sent)
}

func TestRendezvousFallback(t *testing.T) {
	en := testEngine(t, 4, engine.OverflowRendezvous)
	tr := testTransport(t, en, fault.WireConfig{}, 1)
	sent := make(map[int32]uint64)
	late := 50 * netmodel.IBQDR.EndToEndNS(4096)
	for i := 0; i < 100; i++ {
		tr.Send(float64(i), 0, int32(i), 1, uint64(i))
		sent[0]++
		tr.PostRecv(late+float64(i)*500, 0, i, 1, uint64(i))
	}
	ts := tr.Run()
	if ts.RendezvousTrips == 0 || ts.RendezvousNS == 0 {
		t.Fatalf("no rendezvous demotions with capacity 4: %+v", ts)
	}
	if en.Stats().Rendezvous == 0 {
		t.Errorf("engine counted no rendezvous fallbacks: %+v", en.Stats())
	}
	if ts.BusyNacks != 0 {
		t.Errorf("rendezvous policy should absorb arrivals, got %d NACKs", ts.BusyNacks)
	}
	if ts.Delivered != 100 {
		t.Fatalf("delivered %d of 100", ts.Delivered)
	}
	auditClean(t, tr, en, sent)
}

func TestConfigValidation(t *testing.T) {
	en := testEngine(t, 0, engine.OverflowUnbounded)
	bad := []fault.Config{
		{},                      // no engine
		{Engine: en, RTONS: -1}, // negative RTO
		{Engine: en, MaxRetries: -1},
		{Engine: en, Credits: -2},
		{Engine: en, Credits: -1}, // -1 needs engine UMQ capacity
		{Engine: en, Wire: fault.WireConfig{DropProb: 2}},
	}
	for i := range bad {
		if bad[i].Engine != nil {
			bad[i].Fabric = netmodel.IBQDR
		}
		if _, err := fault.NewTransport(bad[i]); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}
