// Package fault is the deterministic fault-injection layer: an
// unreliable-wire model over the LogGP fabrics (drops, duplicates,
// bounded reordering, corruption, i.i.d. or Gilbert–Elliott burst
// loss), and a cycle-accounted retransmission transport (sequence
// numbers, RTO with exponential backoff and jitter, capped retries,
// receiver dup-suppression and in-order reassembly) that drives every
// redelivery through the real matching engine, so retries show up as
// extra Arrive traffic in the PRQ/UMQ and in simulated-cycle totals.
//
// Everything is seeded: the same seed reproduces the same drops, the
// same retransmission schedule, and bit-identical counters — the
// property the chaos harness (cmd/spco-chaos) and the determinism
// regression tests rely on.
package fault

// RNG is a splitmix64 generator: tiny, fast, and fully determined by
// its seed. The fault layer cannot use math/rand's global state — every
// draw must replay identically under a fixed seed regardless of what
// else the process does.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Distinct seeds give independent-looking
// streams (splitmix64 is the recommended seeder for larger PRNGs).
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn on non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Fork derives an independent generator for a named substream, so the
// wire and the timer jitter (for example) can draw without perturbing
// each other's sequences when one side's draw count changes.
func (r *RNG) Fork(stream uint64) *RNG {
	return NewRNG(r.Uint64() ^ (stream * 0xd6e8feb86659fd93))
}
