package fault

import "fmt"

// WireConfig parameterises the unreliable-wire model. All probabilities
// are per-packet and in [0, 1]; the zero value is a perfect wire.
type WireConfig struct {
	// DropProb is the i.i.d. per-packet loss probability (the good-state
	// loss probability when the Gilbert–Elliott chain is enabled).
	DropProb float64

	// DupProb duplicates a delivered packet: a second copy arrives one
	// injection gap behind the first (NIC-level replay, as a recovering
	// link or a misrouted-then-rerouted packet produces).
	DupProb float64

	// ReorderProb delays a delivered packet by a uniform 1..MaxReorderDisp
	// injection gaps, letting later packets overtake it (adaptive-routing
	// skew). Displacement is bounded: real fabrics reorder within a
	// window, not arbitrarily.
	ReorderProb float64

	// CorruptProb delivers the packet with a payload checksum failure;
	// the receiver pays the verification cost and discards it, so the
	// end-to-end effect is a loss the sender must recover, plus receiver
	// CPU burn.
	CorruptProb float64

	// MaxReorderDisp bounds reorder displacement in injection gaps
	// (default DefaultMaxReorderDisp).
	MaxReorderDisp int

	// Gilbert–Elliott burst loss: a two-state Markov chain. In the good
	// state packets drop with DropProb; in the bad state with
	// BadDropProb. GoodToBad and BadToGood are the per-packet transition
	// probabilities; GoodToBad > 0 enables the chain. Mean burst length
	// is 1/BadToGood packets.
	GoodToBad   float64
	BadToGood   float64
	BadDropProb float64
}

// DefaultMaxReorderDisp is the reorder-displacement bound when the
// config leaves it zero.
const DefaultMaxReorderDisp = 4

// DefaultBadDropProb is the bad-state loss probability when the chain
// is enabled without one.
const DefaultBadDropProb = 0.5

// Enabled reports whether the wire can misbehave at all.
func (c WireConfig) Enabled() bool {
	return c.DropProb > 0 || c.DupProb > 0 || c.ReorderProb > 0 ||
		c.CorruptProb > 0 || c.GoodToBad > 0
}

// Validate checks the configuration.
func (c WireConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropProb", c.DropProb}, {"DupProb", c.DupProb},
		{"ReorderProb", c.ReorderProb}, {"CorruptProb", c.CorruptProb},
		{"GoodToBad", c.GoodToBad}, {"BadToGood", c.BadToGood},
		{"BadDropProb", c.BadDropProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0,1]", p.name, p.v)
		}
	}
	if c.MaxReorderDisp < 0 {
		return fmt.Errorf("fault: negative MaxReorderDisp %d", c.MaxReorderDisp)
	}
	if c.GoodToBad > 0 && c.BadToGood == 0 {
		return fmt.Errorf("fault: GoodToBad %g with BadToGood 0 would never leave the burst state", c.GoodToBad)
	}
	return nil
}

// Fate is the wire's verdict on one packet.
type Fate struct {
	// Dropped: the packet never arrives.
	Dropped bool
	// Duplicated: a second copy arrives one gap behind the first.
	Duplicated bool
	// Corrupted: the packet arrives but fails the receiver's checksum.
	Corrupted bool
	// DelayGaps is the reorder displacement in injection gaps (0 = in
	// order).
	DelayGaps int
}

// Wire judges packets against a WireConfig with a private RNG stream.
// One Wire per direction per link; it is single-threaded like the
// simulator that drives it.
type Wire struct {
	cfg WireConfig
	rng *RNG
	bad bool // Gilbert–Elliott state

	// Event tallies (what the wire did, before any recovery).
	Drops    uint64
	Dups     uint64
	Reorders uint64
	Corrupts uint64
	Bursts   uint64 // good→bad transitions
}

// NewWire builds a judged wire. cfg must have passed Validate.
func NewWire(cfg WireConfig, rng *RNG) *Wire {
	if cfg.MaxReorderDisp == 0 {
		cfg.MaxReorderDisp = DefaultMaxReorderDisp
	}
	if cfg.GoodToBad > 0 && cfg.BadDropProb == 0 {
		cfg.BadDropProb = DefaultBadDropProb
	}
	return &Wire{cfg: cfg, rng: rng}
}

// Judge decides one packet's fate. Draw order is fixed (chain step,
// drop, dup, corrupt, reorder) so a seed fully determines the sequence
// of fates.
func (w *Wire) Judge() Fate {
	var f Fate
	drop := w.cfg.DropProb
	if w.cfg.GoodToBad > 0 {
		if w.bad {
			if w.rng.Float64() < w.cfg.BadToGood {
				w.bad = false
			}
		} else if w.rng.Float64() < w.cfg.GoodToBad {
			w.bad = true
			w.Bursts++
		}
		if w.bad {
			drop = w.cfg.BadDropProb
		}
	}
	if drop > 0 && w.rng.Float64() < drop {
		w.Drops++
		f.Dropped = true
		return f
	}
	if w.cfg.DupProb > 0 && w.rng.Float64() < w.cfg.DupProb {
		w.Dups++
		f.Duplicated = true
	}
	if w.cfg.CorruptProb > 0 && w.rng.Float64() < w.cfg.CorruptProb {
		w.Corrupts++
		f.Corrupted = true
	}
	if w.cfg.ReorderProb > 0 && w.rng.Float64() < w.cfg.ReorderProb {
		w.Reorders++
		f.DelayGaps = 1 + w.rng.Intn(w.cfg.MaxReorderDisp)
	}
	return f
}

// InBurst reports the current Gilbert–Elliott state (for tests).
func (w *Wire) InBurst() bool { return w.bad }
