package fault

import "time"

// Backoff schedules capped exponential retry delays with seeded
// jitter: the k-th delay is Base·2^k clamped to Max, then scaled by a
// uniform factor in [1-Jitter, 1]. The daemon's resilient client uses
// it between reconnect attempts after a crash — the jitter keeps a
// fleet of clients from stampeding a freshly restarted server, and
// drawing it from a forked RNG keeps the whole reconnect schedule
// reproducible under a fixed seed, like every other delay in this
// package.
type Backoff struct {
	// Base is the first delay (default 5ms).
	Base time.Duration
	// Max caps the exponential growth (default 1s).
	Max time.Duration
	// Jitter is the fraction of each delay randomized away, in [0, 1)
	// (default 0.25: delays land in [0.75·d, d]).
	Jitter float64
	// RNG supplies the jitter draws; nil disables jitter (fully
	// deterministic delays).
	RNG *RNG

	attempt int
}

// Next returns the delay before the next attempt and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	base := b.Base
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = time.Second
	}
	d := base
	for i := 0; i < b.attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	b.attempt++
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.25
	}
	if b.RNG != nil && jitter > 0 && jitter < 1 {
		d = time.Duration(float64(d) * (1 - jitter*b.RNG.Float64()))
	}
	return d
}

// Attempts reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempts() int { return b.attempt }

// Reset restarts the schedule from Base, as after a successful
// connection.
func (b *Backoff) Reset() { b.attempt = 0 }
