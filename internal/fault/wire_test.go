package fault

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced the same first draw")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	// A fork must not share its parent's sequence, and consuming draws
	// from one fork must not perturb a sibling created beforehand.
	root1, root2 := NewRNG(7), NewRNG(7)
	f1a, f1b := root1.Fork(1), root1.Fork(2)
	f2a, f2b := root2.Fork(1), root2.Fork(2)
	for i := 0; i < 10; i++ {
		f1a.Uint64() // consumed only on side 1
	}
	for i := 0; i < 100; i++ {
		if f1b.Uint64() != f2b.Uint64() {
			t.Fatalf("sibling stream perturbed by the other fork's draws (draw %d)", i)
		}
	}
	_ = f2a
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestWireDistributions(t *testing.T) {
	cfg := WireConfig{DropProb: 0.1, DupProb: 0.05, ReorderProb: 0.08, CorruptProb: 0.03}
	w := NewWire(cfg, NewRNG(11))
	const n = 200000
	for i := 0; i < n; i++ {
		f := w.Judge()
		if f.DelayGaps < 0 || f.DelayGaps > DefaultMaxReorderDisp {
			t.Fatalf("displacement %d outside [0,%d]", f.DelayGaps, DefaultMaxReorderDisp)
		}
	}
	check := func(name string, got uint64, p float64) {
		t.Helper()
		// Drops gate the later draws, so dup/corrupt/reorder see only
		// surviving packets.
		exp := p * n
		if name != "drops" {
			exp *= 1 - cfg.DropProb
		}
		if math.Abs(float64(got)-exp) > 0.15*exp {
			t.Errorf("%s: got %d, want ~%.0f", name, got, exp)
		}
	}
	check("drops", w.Drops, cfg.DropProb)
	check("dups", w.Dups, cfg.DupProb)
	check("reorders", w.Reorders, cfg.ReorderProb)
	check("corrupts", w.Corrupts, cfg.CorruptProb)
}

func TestGilbertElliottBursts(t *testing.T) {
	cfg := WireConfig{GoodToBad: 0.01, BadToGood: 0.25, BadDropProb: 0.5}
	w := NewWire(cfg, NewRNG(5))
	const n = 100000
	for i := 0; i < n; i++ {
		w.Judge()
	}
	if w.Bursts == 0 {
		t.Fatal("no bursts with GoodToBad > 0")
	}
	// Stationary loss: fraction of time in bad = g2b/(g2b+b2g) ~ 3.85%,
	// times the bad-state drop prob ~ 1.9%.
	pBad := cfg.GoodToBad / (cfg.GoodToBad + cfg.BadToGood)
	exp := pBad * cfg.BadDropProb * n
	if math.Abs(float64(w.Drops)-exp) > 0.25*exp {
		t.Errorf("burst drops: got %d, want ~%.0f", w.Drops, exp)
	}
	// Mean burst length ~ 1/BadToGood packets.
	mean := float64(w.Drops) / float64(w.Bursts) / cfg.BadDropProb
	if mean < 2 || mean > 8 {
		t.Errorf("mean burst length %.1f, want ~%.1f", mean, 1/cfg.BadToGood)
	}
}

func TestWireConfigValidate(t *testing.T) {
	cases := []WireConfig{
		{DropProb: -0.1},
		{DropProb: 1.5},
		{DupProb: 2},
		{MaxReorderDisp: -1},
		{GoodToBad: 0.1}, // no BadToGood: the chain would never recover
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error", i, c)
		}
	}
	good := WireConfig{DropProb: 0.5, GoodToBad: 0.1, BadToGood: 0.2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if (WireConfig{}).Enabled() {
		t.Error("zero config must be a perfect wire")
	}
}
