package fault

import (
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Errorf("delay %d: got %v want %v", i, got, w*time.Millisecond)
		}
	}
	if b.Attempts() != len(want) {
		t.Errorf("Attempts = %d, want %d", b.Attempts(), len(want))
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Errorf("after Reset: got %v want 10ms", got)
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	mk := func() *Backoff {
		return &Backoff{Base: 10 * time.Millisecond, Max: time.Second,
			Jitter: 0.25, RNG: NewRNG(7)}
	}
	a, b := mk(), mk()
	for i := 0; i < 10; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, da, db)
		}
		full := 10 * time.Millisecond << uint(min(i, 10))
		if full > time.Second {
			full = time.Second
		}
		if da > full || da < time.Duration(float64(full)*0.75) {
			t.Errorf("draw %d: %v outside [0.75·%v, %v]", i, da, full, full)
		}
	}
}
