// Package netmodel provides a LogGP-style analytic model of the fabrics
// in the paper's evaluation (Section 4.1): the QLogic InfiniBand QDR
// network of the Sandy Bridge system, the OmniPath fabric of the
// Broadwell system, and the Mellanox QDR network of the Nehalem cluster.
//
// The model's role in the reproduction is the large-message crossover:
// Figures 4a/5a/6a/7a show locality gains vanishing once wire time
// dominates per-message CPU time. Parameters are calibrated to the
// bandwidth plateaus and small-message rates those figures report, not
// to vendor datasheets: the paper's measured peaks (~3 GiB/s) reflect
// the per-node injection its systems achieved, which is what matters
// for reproducing the curve shapes.
package netmodel

import "fmt"

// Fabric is a LogGP-ish network description.
type Fabric struct {
	Name string

	// LatencyNS is the one-way wire latency (LogGP L).
	LatencyNS float64

	// OverheadNS is the per-message host overhead, send and receive
	// sides combined, excluding matching (LogGP o). It bounds the
	// small-message rate together with the matching cost.
	OverheadNS float64

	// GapNS is the minimum inter-message gap the NIC sustains (LogGP g).
	GapNS float64

	// BandwidthBps is the sustained per-node injection bandwidth
	// (1/G per byte).
	BandwidthBps float64
}

// Validate checks the fabric parameters.
func (f Fabric) Validate() error {
	if f.BandwidthBps <= 0 {
		return fmt.Errorf("fabric %s: bandwidth must be positive", f.Name)
	}
	if f.LatencyNS < 0 || f.OverheadNS < 0 || f.GapNS < 0 {
		return fmt.Errorf("fabric %s: negative timing parameter", f.Name)
	}
	return nil
}

// SerializationNS returns the wire occupancy of a message of the given
// size: G·bytes.
func (f Fabric) SerializationNS(bytes uint64) float64 {
	return float64(bytes) / f.BandwidthBps * 1e9
}

// MessageGapNS returns the minimum time between successive message
// injections in a pipelined stream (the osu_bw pattern): the larger of
// the NIC gap and the serialization time.
func (f Fabric) MessageGapNS(bytes uint64) float64 {
	s := f.SerializationNS(bytes)
	if s > f.GapNS {
		return s
	}
	return f.GapNS
}

// EndToEndNS returns the un-pipelined latency of a single message:
// o + L + G·bytes.
func (f Fabric) EndToEndNS(bytes uint64) float64 {
	return f.OverheadNS + f.LatencyNS + f.SerializationNS(bytes)
}

// SuggestedRTONS returns a conservative initial retransmission timeout
// for messages of the given size on this fabric: four end-to-end times
// plus two injection gaps, enough headroom that a healthy link (ack
// time ≈ 2·EndToEnd) never fires a spurious timeout, while a lost
// packet is still recovered within a handful of round trips.
func (f Fabric) SuggestedRTONS(bytes uint64) float64 {
	return 4*f.EndToEndNS(bytes) + 2*f.MessageGapNS(bytes)
}

// Built-in fabrics.
var (
	// IBQDR models the QLogic InfiniBand QDR network (Sandy Bridge
	// system).
	IBQDR = Fabric{
		Name:         "ib-qdr",
		LatencyNS:    1300,
		OverheadNS:   2500,
		GapNS:        290,
		BandwidthBps: 3.2e9,
	}

	// OmniPath models the OmniPath fabric (Broadwell system): lower
	// host overhead, slightly more bandwidth.
	OmniPath = Fabric{
		Name:         "omnipath",
		LatencyNS:    1100,
		OverheadNS:   1200,
		GapNS:        250,
		BandwidthBps: 3.4e9,
	}

	// MellanoxQDR models the Mellanox QDR network (Nehalem cluster).
	MellanoxQDR = Fabric{
		Name:         "mlx-qdr",
		LatencyNS:    1600,
		OverheadNS:   2800,
		GapNS:        330,
		BandwidthBps: 3.0e9,
	}
)

// Fabrics lists the built-ins by name.
var Fabrics = map[string]Fabric{
	"ib-qdr":   IBQDR,
	"omnipath": OmniPath,
	"mlx-qdr":  MellanoxQDR,
}
