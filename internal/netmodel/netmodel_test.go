package netmodel

import "testing"

func TestBuiltinsValid(t *testing.T) {
	for name, f := range Fabrics {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if f.Name != name {
			t.Errorf("map key %q != fabric name %q", name, f.Name)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	if (Fabric{Name: "x"}).Validate() == nil {
		t.Error("zero bandwidth should be invalid")
	}
	f := IBQDR
	f.LatencyNS = -1
	if f.Validate() == nil {
		t.Error("negative latency should be invalid")
	}
}

func TestSerialization(t *testing.T) {
	f := Fabric{Name: "t", BandwidthBps: 1e9}
	if got := f.SerializationNS(1000); got != 1000 {
		t.Errorf("1000B at 1GB/s = %v ns, want 1000", got)
	}
	if got := f.SerializationNS(0); got != 0 {
		t.Errorf("0B serialization = %v, want 0", got)
	}
}

func TestMessageGapRegimes(t *testing.T) {
	f := Fabric{Name: "t", GapNS: 500, BandwidthBps: 1e9}
	// Small message: NIC gap dominates.
	if got := f.MessageGapNS(1); got != 500 {
		t.Errorf("small-message gap = %v, want 500", got)
	}
	// Large message: serialization dominates.
	if got := f.MessageGapNS(1 << 20); got <= 500 {
		t.Errorf("large-message gap = %v, want serialization-bound", got)
	}
}

func TestEndToEndMonotonicInSize(t *testing.T) {
	for _, f := range Fabrics {
		prev := -1.0
		for _, sz := range []uint64{1, 64, 4096, 1 << 20} {
			e := f.EndToEndNS(sz)
			if e <= prev {
				t.Errorf("%s: EndToEnd not increasing at %d bytes", f.Name, sz)
			}
			prev = e
		}
	}
}

// The large-message crossover: for every fabric there is a size where
// wire time exceeds any plausible matching cost, which is why locality
// curves converge in Figures 4a/5a.
func TestWireDominatesAtMegabyte(t *testing.T) {
	const matchBudgetNS = 100_000 // a very deep cold search
	for _, f := range Fabrics {
		if f.SerializationNS(1<<20) < matchBudgetNS {
			t.Errorf("%s: 1 MiB serialization %.0f ns should exceed %d ns",
				f.Name, f.SerializationNS(1<<20), matchBudgetNS)
		}
	}
}
