package mtrace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/match"
	"spco/internal/matchlist"
	"spco/internal/netmodel"
	"spco/internal/workload"
)

func engCfg(kind matchlist.Kind, k int) engine.Config {
	return engine.Config{Profile: cache.SandyBridge, Kind: kind, EntriesPerNode: k}
}

// Record a small synthetic workload and return its trace.
func recordSynthetic(t *testing.T) *Trace {
	t.Helper()
	rec := NewRecorder("synthetic")
	en := engine.MustNew(engCfg(matchlist.KindLLA, 2))
	en.SetObserver(rec)

	for i := 0; i < 20; i++ {
		en.PostRecv(0, i, 1, uint64(i+1))
	}
	en.BeginComputePhase(5e5)
	for i := 0; i < 10; i++ {
		en.Arrive(match.Envelope{Rank: 0, Tag: int32(i), Ctx: 1}, uint64(100+i))
	}
	// Unexpected then late post.
	en.Arrive(match.Envelope{Rank: 3, Tag: 99, Ctx: 1}, 777)
	en.PostRecv(3, 99, 1, 555)
	en.Cancel(15)
	en.Cancel(12345) // miss
	return rec.Trace()
}

func TestRecorderCaptures(t *testing.T) {
	tr := recordSynthetic(t)
	c := tr.Counts()
	if c.Posts != 21 || c.Arrives != 11 || c.Cancels != 2 || c.Phases != 1 {
		t.Fatalf("counts: %+v", c)
	}
	if c.Matched != 10 {
		t.Errorf("matched arrivals = %d, want 10", c.Matched)
	}
	if c.UMQHits != 1 {
		t.Errorf("UMQ hits = %d, want 1", c.UMQHits)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := recordSynthetic(t)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost shape: %q/%d vs %q/%d",
			got.Name, len(got.Events), tr.Name, len(tr.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestSerializationRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := &Trace{Name: "random"}
	for i := 0; i < 500; i++ {
		tr.Events = append(tr.Events, Event{
			Kind:    OpKind(rng.Intn(4) + 1),
			Rank:    int32(rng.Intn(100) - 2), // includes wildcards
			Tag:     int32(rng.Intn(100) - 2),
			Ctx:     uint16(rng.Intn(4)),
			Req:     rng.Uint64(),
			Matched: rng.Intn(2) == 0,
			DurNS:   rng.Float64() * 1e6,
		})
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Error("garbage accepted")
	}
	// Truncated after the header.
	tr := recordSynthetic(t)
	var buf bytes.Buffer
	tr.WriteTo(&buf)
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tr := recordSynthetic(t)
	path := filepath.Join(t.TempDir(), "t.spcotrace")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("file round trip lost events")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// Replaying against the same structure reproduces every outcome; the
// engine statistics agree with the trace's own counts.
func TestReplaySameStructure(t *testing.T) {
	tr := recordSynthetic(t)
	res := Replay(tr, engCfg(matchlist.KindLLA, 2))
	if res.Mismatches != 0 {
		t.Fatalf("replay mismatches = %d", res.Mismatches)
	}
	c := tr.Counts()
	if res.Stats.Arrivals != uint64(c.Arrives) || res.Stats.Recvs != uint64(c.Posts) {
		t.Errorf("replay stats %+v vs counts %+v", res.Stats, c)
	}
	if res.CPUNanos <= 0 {
		t.Error("no modeled time")
	}
}

// Matching semantics are structure-independent: every structure must
// reproduce the recorded outcomes exactly.
func TestReplayCrossStructure(t *testing.T) {
	tr := recordSynthetic(t)
	for _, kind := range []matchlist.Kind{
		matchlist.KindBaseline, matchlist.KindLLA, matchlist.KindHashBins,
		matchlist.KindRankArray, matchlist.KindFourD, matchlist.KindHWOffload,
	} {
		cfg := engCfg(kind, 8)
		cfg.CommSize = 64
		if kind != matchlist.KindHWOffload {
			cfg.Bins = 16
		}
		res := Replay(tr, cfg)
		if res.Mismatches != 0 {
			t.Errorf("%v: %d outcome mismatches", kind, res.Mismatches)
		}
	}
}

// Record a real workload (the modified osu_bw) and replay it against
// both baseline and LLA: the replayed cost ordering must match the
// live measurement's.
func TestRecordReplayBandwidth(t *testing.T) {
	rec := NewRecorder("osu-bw")
	workload.RunBW(workload.BWConfig{
		Engine:     engCfg(matchlist.KindLLA, 2),
		Fabric:     netmodel.IBQDR,
		QueueDepth: 128,
		MsgBytes:   1,
		Iters:      2,
		Observer:   rec,
	})
	tr := rec.Trace()
	if len(tr.Events) == 0 {
		t.Fatal("nothing recorded")
	}

	base := Replay(tr, engCfg(matchlist.KindBaseline, 0))
	lla := Replay(tr, engCfg(matchlist.KindLLA, 8))
	if base.Mismatches != 0 || lla.Mismatches != 0 {
		t.Fatalf("mismatches: %d / %d", base.Mismatches, lla.Mismatches)
	}
	if lla.CPUNanos >= base.CPUNanos {
		t.Errorf("replayed LLA (%.0f ns) should beat baseline (%.0f ns)",
			lla.CPUNanos, base.CPUNanos)
	}
}

// Replay across architectures: the same trace costs different cycles on
// different machines.
func TestReplayCrossArchitecture(t *testing.T) {
	tr := recordSynthetic(t)
	sb := Replay(tr, engine.Config{Profile: cache.SandyBridge, Kind: matchlist.KindBaseline})
	knl := Replay(tr, engine.Config{Profile: cache.KNL, Kind: matchlist.KindBaseline})
	if sb.Mismatches != 0 || knl.Mismatches != 0 {
		t.Fatal("outcome mismatch across architectures")
	}
	if sb.Stats.Cycles == knl.Stats.Cycles {
		t.Error("different machines should cost different cycles")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpArrive: "arrive", OpPost: "post", OpCancel: "cancel", OpPhase: "phase",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
