// Package mtrace records and replays MPI matching traces — the
// trace-based-simulation methodology of the paper's related work
// (Ferreira et al., "Characterizing MPI matching via trace-based
// simulation", cited in Section 4.4): capture the exact sequence of
// matching operations an application performs once, then replay it
// offline against any queue structure, architecture profile, or
// locality configuration.
//
// A trace is the sequence of engine operations (arrivals, posted
// receives, cancels, compute-phase boundaries) with their envelopes.
// Matching outcomes are recorded too: MPI matching semantics are
// structure-independent, so a replay must reproduce every
// matched/unexpected outcome bit-for-bit regardless of the structure
// under test — a strong cross-validation the replayer enforces.
package mtrace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"spco/internal/engine"
	"spco/internal/match"
)

// OpKind identifies one traced operation.
type OpKind uint8

// The operation kinds.
const (
	OpArrive OpKind = iota + 1
	OpPost
	OpCancel
	OpPhase
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpArrive:
		return "arrive"
	case OpPost:
		return "post"
	case OpCancel:
		return "cancel"
	case OpPhase:
		return "phase"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Event is one traced operation. Fields are used per kind:
//
//	OpArrive: Rank/Tag/Ctx envelope, Matched (outcome)
//	OpPost:   Rank/Tag (may be wildcards), Ctx, Req, Matched (UMQ hit)
//	OpCancel: Req, Matched (found)
//	OpPhase:  DurNS
type Event struct {
	Kind    OpKind
	Rank    int32
	Tag     int32
	Ctx     uint16
	Req     uint64
	Matched bool
	DurNS   float64
}

// Trace is a recorded operation sequence.
type Trace struct {
	Name   string
	Events []Event
}

// Counts summarises a trace.
type Counts struct {
	Arrives, Posts, Cancels, Phases int
	Matched                         int // arrivals matched in the PRQ
	UMQHits                         int // posts satisfied from the UMQ
}

// Counts tallies the trace.
func (t *Trace) Counts() Counts {
	var c Counts
	for _, e := range t.Events {
		switch e.Kind {
		case OpArrive:
			c.Arrives++
			if e.Matched {
				c.Matched++
			}
		case OpPost:
			c.Posts++
			if e.Matched {
				c.UMQHits++
			}
		case OpCancel:
			c.Cancels++
		case OpPhase:
			c.Phases++
		}
	}
	return c
}

// Recorder implements engine.Observer, appending every operation to a
// trace. One recorder serves one engine (it is not safe for concurrent
// use, matching the engine's own contract).
type Recorder struct {
	tr Trace
}

// NewRecorder starts an empty named trace.
func NewRecorder(name string) *Recorder {
	return &Recorder{tr: Trace{Name: name}}
}

// Trace returns the recorded trace (shared, not copied).
func (r *Recorder) Trace() *Trace { return &r.tr }

// OnArrive implements engine.Observer.
func (r *Recorder) OnArrive(e match.Envelope, matched bool, depth int, cycles uint64) {
	r.tr.Events = append(r.tr.Events, Event{
		Kind: OpArrive, Rank: e.Rank, Tag: e.Tag, Ctx: e.Ctx, Matched: matched,
	})
}

// OnPost implements engine.Observer.
func (r *Recorder) OnPost(rank, tag int, ctx uint16, req uint64, umqHit bool, depth int, cycles uint64) {
	r.tr.Events = append(r.tr.Events, Event{
		Kind: OpPost, Rank: int32(rank), Tag: int32(tag), Ctx: ctx, Req: req, Matched: umqHit,
	})
}

// OnCancel implements engine.Observer.
func (r *Recorder) OnCancel(req uint64, found bool) {
	r.tr.Events = append(r.tr.Events, Event{Kind: OpCancel, Req: req, Matched: found})
}

// OnComputePhase implements engine.Observer.
func (r *Recorder) OnComputePhase(durationNS float64) {
	r.tr.Events = append(r.tr.Events, Event{Kind: OpPhase, DurNS: durationNS})
}

// ---- Serialization -------------------------------------------------------

// magic identifies the binary trace format, versioned in the last byte.
var magic = [8]byte{'S', 'P', 'C', 'O', 'T', 'R', 'C', '1'}

// eventBytes is the fixed on-disk record size:
// kind(1) pad(1) ctx(2) rank(4) tag(4) req(8) dur(8) matched(1) = 29,
// padded to 32.
const eventBytes = 32

// WriteTo serialises the trace. Format: magic, name length (u16), name
// bytes, event count (u64), fixed-size little-endian records.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	if err := binary.Write(bw, binary.LittleEndian, magic); err != nil {
		return n, err
	}
	n += 8
	name := []byte(t.Name)
	if len(name) > 1<<15 {
		return n, fmt.Errorf("mtrace: trace name too long (%d bytes)", len(name))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
		return n, err
	}
	n += 2
	if _, err := bw.Write(name); err != nil {
		return n, err
	}
	n += int64(len(name))
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Events))); err != nil {
		return n, err
	}
	n += 8
	var rec [eventBytes]byte
	for _, e := range t.Events {
		rec = [eventBytes]byte{}
		rec[0] = byte(e.Kind)
		binary.LittleEndian.PutUint16(rec[2:], e.Ctx)
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.Rank))
		binary.LittleEndian.PutUint32(rec[8:], uint32(e.Tag))
		binary.LittleEndian.PutUint64(rec[12:], e.Req)
		binary.LittleEndian.PutUint64(rec[20:], math.Float64bits(e.DurNS))
		if e.Matched {
			rec[28] = 1
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return n, err
		}
		n += eventBytes
	}
	return n, bw.Flush()
}

// ReadTrace deserialises a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("mtrace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("mtrace: bad magic %q (not a spco trace?)", m)
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const sanity = 1 << 28
	if count > sanity {
		return nil, fmt.Errorf("mtrace: implausible event count %d", count)
	}
	tr := &Trace{Name: string(name), Events: make([]Event, 0, count)}
	var rec [eventBytes]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("mtrace: truncated at event %d: %w", i, err)
		}
		e := Event{
			Kind:    OpKind(rec[0]),
			Ctx:     binary.LittleEndian.Uint16(rec[2:]),
			Rank:    int32(binary.LittleEndian.Uint32(rec[4:])),
			Tag:     int32(binary.LittleEndian.Uint32(rec[8:])),
			Req:     binary.LittleEndian.Uint64(rec[12:]),
			DurNS:   math.Float64frombits(binary.LittleEndian.Uint64(rec[20:])),
			Matched: rec[28] == 1,
		}
		if e.Kind < OpArrive || e.Kind > OpPhase {
			return nil, fmt.Errorf("mtrace: unknown op kind %d at event %d", rec[0], i)
		}
		tr.Events = append(tr.Events, e)
	}
	return tr, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// ---- Replay ---------------------------------------------------------------

// ReplayResult summarises one replay.
type ReplayResult struct {
	Stats engine.Stats

	// Mismatches counts operations whose matched/unexpected outcome
	// diverged from the recording. Matching semantics are structure-
	// independent, so any nonzero value indicates a broken structure
	// (or a trace replayed against the wrong workload).
	Mismatches int

	// CPUNanos is the modeled matching-engine time for the whole trace.
	CPUNanos float64
}

// Replay drives a fresh engine built from cfg through the trace and
// returns its cost and statistics. Wildcard posts are reconstructed
// from the recorded sentinel values.
func Replay(t *Trace, cfg engine.Config, obs ...engine.Observer) ReplayResult {
	en := engine.MustNew(cfg)
	if o := engine.CombineObservers(obs...); o != nil {
		en.SetObserver(o)
	}
	var res ReplayResult
	msg := uint64(1)
	for _, e := range t.Events {
		switch e.Kind {
		case OpArrive:
			_, matched, _ := en.Arrive(match.Envelope{Rank: e.Rank, Tag: e.Tag, Ctx: e.Ctx}, msg)
			msg++
			if matched != e.Matched {
				res.Mismatches++
			}
		case OpPost:
			_, matched, _ := en.PostRecv(int(e.Rank), int(e.Tag), e.Ctx, e.Req)
			if matched != e.Matched {
				res.Mismatches++
			}
		case OpCancel:
			found, _ := en.Cancel(e.Req)
			if found != e.Matched {
				res.Mismatches++
			}
		case OpPhase:
			en.BeginComputePhase(e.DurNS)
		}
	}
	en.PublishTelemetry()
	res.Stats = en.Stats()
	res.CPUNanos = cfg.Profile.CyclesToNanos(res.Stats.Cycles)
	return res
}
