package hotcache

import (
	"testing"

	"spco/internal/cache"
	"spco/internal/simmem"
)

func testHierarchy() *cache.Hierarchy {
	p := cache.Profile{
		Name:               "test",
		ClockGHz:           1.0,
		Cores:              2,
		L1:                 cache.LevelConfig{Name: "L1", SizeBytes: 1 << 10, Ways: 2, LatencyCycles: 4},
		L2:                 cache.LevelConfig{Name: "L2", SizeBytes: 4 << 10, Ways: 4, LatencyCycles: 12},
		L3:                 cache.LevelConfig{Name: "L3", SizeBytes: 64 << 10, Ways: 8, LatencyCycles: 30, Shared: true},
		DRAMLatency:        200,
		L3ContentionCycles: 10,
	}
	return cache.New(p)
}

func TestSweepWarmsRegions(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 1, Options{})
	r := simmem.Region{Base: 0x10000, Size: 256} // 4 lines
	ht.RegionAdded(r)
	ht.Sweep(1e6)
	for i := uint64(0); i < 4; i++ {
		addr := r.Base + simmem.Addr(i*64)
		if lvl := h.Present(0, addr); lvl != 3 {
			t.Errorf("line %d at level %d after sweep, want shared L3", i, lvl)
		}
		if lvl := h.Present(1, addr); lvl != 1 {
			t.Errorf("heater core should hold line %d privately, got level %d", i, lvl)
		}
	}
	if ht.Touches() != 4 || ht.Sweeps() != 1 {
		t.Errorf("touches=%d sweeps=%d, want 4/1", ht.Touches(), ht.Sweeps())
	}
}

func TestSweepCoversFractionForLongPeriods(t *testing.T) {
	h := testHierarchy()
	// Period 4x the phase: only a quarter of the lines get re-touched.
	ht := New(h, 1, Options{PeriodNS: 4000})
	r := simmem.Region{Base: 0x10000, Size: 8 * 64}
	ht.RegionAdded(r)
	ht.Sweep(1000)
	if ht.Touches() != 2 {
		t.Errorf("touches = %d, want 2 (8 lines * 1000/4000)", ht.Touches())
	}
	// The prefix is warm, the suffix cold.
	if h.Present(0, r.Base) != 3 {
		t.Error("first line should be warm")
	}
	if h.Present(0, r.Base+7*64) != 0 {
		t.Error("last line should be cold with a lagging heater")
	}
}

func TestSweepFullWhenPeriodShort(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 1, Options{PeriodNS: 100})
	ht.RegionAdded(simmem.Region{Base: 0, Size: 640})
	ht.Sweep(1e6)
	if ht.Touches() != 10 {
		t.Errorf("touches = %d, want all 10 lines", ht.Touches())
	}
}

func TestSyncCostsWithoutPool(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 1, Options{})
	if c := ht.RegionAdded(simmem.Region{Base: 0, Size: 64}); c == 0 {
		t.Error("insert should cost lock cycles")
	}
	for i := 1; i < 10; i++ {
		ht.RegionAdded(simmem.Region{Base: simmem.Addr(i * 4096), Size: 64})
	}
	ht.TakeSyncCycles()
	small := ht.RegionRemoved(simmem.Region{Base: 0, Size: 64})
	for i := 10; i < 200; i++ {
		ht.RegionAdded(simmem.Region{Base: simmem.Addr(i * 4096), Size: 64})
	}
	ht.TakeSyncCycles()
	big := ht.RegionRemoved(simmem.Region{Base: 4096, Size: 64})
	if big <= small {
		t.Errorf("removal cost should grow with registry length: %d then %d", small, big)
	}
}

func TestPoolModeSkipsSync(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 1, Options{Pool: true})
	r := simmem.Region{Base: 0x1000, Size: 64}
	if c := ht.RegionAdded(r); c == 0 {
		t.Error("first insert still costs a lock acquisition")
	}
	if c := ht.RegionRemoved(r); c != 0 {
		t.Errorf("pool-mode removal cost %d, want 0", c)
	}
	// The region stays registered (elements are reused, not removed).
	if ht.RegisteredLines() != 1 {
		t.Errorf("pool-mode removal dropped the region: %d lines", ht.RegisteredLines())
	}
	// Re-adding the same (recycled) region is free.
	if c := ht.RegionAdded(r); c != 0 {
		t.Errorf("re-adding a recycled region cost %d, want 0", c)
	}
}

func TestTakeSyncCyclesDrains(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 1, Options{})
	ht.RegionAdded(simmem.Region{Base: 0, Size: 64})
	if got := ht.TakeSyncCycles(); got != lockAcquireCycles {
		t.Errorf("TakeSyncCycles = %d, want %d", got, lockAcquireCycles)
	}
	if got := ht.TakeSyncCycles(); got != 0 {
		t.Errorf("second TakeSyncCycles = %d, want 0", got)
	}
}

func TestRegisteredAccounting(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 0, Options{})
	ht.RegionAdded(simmem.Region{Base: 0, Size: 128})
	ht.RegionAdded(simmem.Region{Base: 4096, Size: 64})
	if ht.RegisteredBytes() != 192 {
		t.Errorf("RegisteredBytes = %d, want 192", ht.RegisteredBytes())
	}
	if ht.RegisteredLines() != 3 {
		t.Errorf("RegisteredLines = %d, want 3", ht.RegisteredLines())
	}
	ht.RegionRemoved(simmem.Region{Base: 4096, Size: 64})
	if ht.RegisteredLines() != 2 {
		t.Errorf("after removal RegisteredLines = %d, want 2", ht.RegisteredLines())
	}
}

// End-to-end heating effect: cold accesses pay DRAM; after flush+sweep
// the compute core pays only the shared-cache latency — the mechanism
// behind Figure 3 and the Section 4.3 microbenchmark.
func TestHeatingReducesLatency(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 1, Options{})
	r := simmem.Region{Base: 0x40000, Size: 4096}
	ht.RegionAdded(r)

	h.Flush()
	cold := h.Access(0, r.Base+2048, 4)
	h.Flush()
	ht.Sweep(1e6)
	warm := h.Access(0, r.Base+2048, 4)
	if cold != 200 || warm != 30 {
		t.Errorf("cold=%d warm=%d, want 200/30", cold, warm)
	}
}

// Partial sweeps rotate through the registry rather than re-warming the
// same prefix: two quarter-coverage sweeps touch different windows.
func TestSweepRotation(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 1, Options{PeriodNS: 4000})
	r := simmem.Region{Base: 0x10000, Size: 8 * 64}
	ht.RegionAdded(r)

	ht.Sweep(1000) // quarter coverage: lines 0,1
	if h.Present(0, r.Base) != 3 || h.Present(0, r.Base+2*64) != 0 {
		t.Fatal("first sweep should warm the first window only")
	}
	ht.Sweep(1000) // next window: lines 2,3
	if h.Present(0, r.Base+2*64) != 3 || h.Present(0, r.Base+3*64) != 3 {
		t.Error("second sweep did not advance the window")
	}
	if h.Present(0, r.Base+4*64) != 0 {
		t.Error("second sweep overran its budget")
	}
	// Two more sweeps wrap back to the start.
	ht.Sweep(1000)
	ht.Sweep(1000)
	ht.Sweep(1000)
	if ht.Touches() != 10 {
		t.Errorf("touches = %d, want 10 after five quarter sweeps", ht.Touches())
	}
}

// A sweep longer than the period is paced by its own duration: coverage
// uses max(period, sweep time) as the refresh cycle.
func TestRefreshCycleBoundedBySweepTime(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 1, Options{PeriodNS: 1}) // absurdly eager heater
	// 1000 lines at 2 ns each: a full sweep takes 2000 ns.
	ht.RegionAdded(simmem.Region{Base: 0, Size: 1000 * 64})
	ht.Sweep(1000) // phase shorter than the sweep: partial coverage
	if ht.Touches() >= 1000 {
		t.Errorf("touches = %d: sweep cannot outrun its own load rate", ht.Touches())
	}
	if ht.Touches() == 0 {
		t.Error("some coverage expected")
	}
}

func TestSweepHookAndCounters(t *testing.T) {
	h := testHierarchy()
	ht := New(h, 1, Options{})
	r := simmem.Region{Base: 0x10000, Size: 4 * 64}
	cost := ht.RegionAdded(r)
	if cost == 0 || ht.SyncCyclesTotal() != cost {
		t.Errorf("sync total = %d, want add cost %d", ht.SyncCyclesTotal(), cost)
	}

	var phases []float64
	var touched []uint64
	var coverage []float64
	ht.SetSweepHook(func(phaseNS float64, n uint64, cov float64) {
		phases = append(phases, phaseNS)
		touched = append(touched, n)
		coverage = append(coverage, cov)
	})
	ht.Sweep(1e6)
	if len(phases) != 1 || phases[0] != 1e6 || touched[0] != 4 || coverage[0] != 1 {
		t.Errorf("sweep hook saw phases=%v touched=%v coverage=%v", phases, touched, coverage)
	}
	if ht.LastSweepCoverage() != 1 {
		t.Errorf("coverage = %v, want 1", ht.LastSweepCoverage())
	}

	// TakeSyncCycles drains the per-op accumulator, not the total.
	drained := ht.TakeSyncCycles()
	if drained != cost || ht.TakeSyncCycles() != 0 {
		t.Errorf("drained %d, want %d then 0", drained, cost)
	}
	if ht.SyncCyclesTotal() != cost {
		t.Error("lifetime total must survive draining")
	}
	rmCost := ht.RegionRemoved(r)
	if ht.SyncCyclesTotal() != cost+rmCost {
		t.Errorf("total after removal = %d, want %d", ht.SyncCyclesTotal(), cost+rmCost)
	}

	// Empty-registry sweep still reports (zero) coverage to the hook.
	ht.Sweep(1e6)
	if len(touched) != 2 || touched[1] != 0 || ht.LastSweepCoverage() != 0 {
		t.Errorf("empty sweep: touched=%v coverage=%v", touched, ht.LastSweepCoverage())
	}
	ht.SetSweepHook(nil)
	ht.Sweep(1e6)
	if len(touched) != 2 {
		t.Error("detached hook still firing")
	}
}

func TestSweepEvictionsAttributedToHeater(t *testing.T) {
	// The heater-as-evictor case of the eviction-attribution matrix:
	// the heater sweeps PRQ-owned regions, and when the resulting fills
	// displace application lines from the shared L3 the matrix must
	// charge the *heater* agent, not the queue owner whose lines it
	// happened to be warming.
	h := testHierarchy()
	h.EnableResidencyTracking()

	// Queue registry the size of the whole L3 (64 KiB, 1024 lines), so a
	// full sweep displaces anything else resident.
	queue := simmem.Region{Base: 0, Size: 1024 * 64}
	h.TagOwner("prq", queue)
	ht := New(h, 1, Options{})
	ht.RegionAdded(queue)

	// Application working set, resident in L3 via demand accesses.
	app := simmem.Region{Base: 1 << 20, Size: 256 * 64}
	h.TagOwner("app", app)
	for i := uint64(0); i < app.Lines(); i++ {
		h.Access(0, app.Base+simmem.Addr(i*64), 4)
	}
	if f := h.ResidencyOf("app").L3Frac(); f == 0 {
		t.Fatal("app lines not L3-resident before the sweep")
	}

	ht.Sweep(1e9)

	m := h.EvictionMatrix()
	heaterEvictedApp := uint64(0)
	for k, v := range m {
		if k.Of != "app" || v == 0 {
			continue
		}
		switch k.By {
		case cache.AgentHeater:
			heaterEvictedApp += v
		case "prq", "umq":
			t.Errorf("app victims misattributed to queue traffic: %v = %d", k, v)
		}
	}
	if heaterEvictedApp == 0 {
		t.Errorf("no app victims attributed to the heater; matrix = %v", m)
	}
}
