// Package hotcache implements the paper's second instrument (Section
// 3.2): a "heater" that periodically touches registered memory regions
// so cache replacement never evicts them, producing semi-permanent cache
// occupancy.
//
// The real implementation is a pthread pinned to a core sharing the L3
// with the communication process; it iterates a region list, reads the
// first four bytes of every cache line, sleeps, and repeats. Three
// modeled consequences matter to the experiments:
//
//  1. Warmth: after a sweep, every registered line resides in the shared
//     L3 (and the heater core's private levels), so the compute core's
//     next access is an L3 hit instead of a DRAM load (Figure 3).
//  2. Synchronisation: the region list is a critical section. Removing a
//     region (to deallocate it) must take a spin lock and search the
//     list, which is expensive when the list is long — the paper's lock
//     contention problem. The element-pool variant sidesteps removals
//     entirely by recycling node addresses.
//  3. Interference: sweeps consume L3 bandwidth, charged by the cache
//     simulator's per-profile contention penalty while the heater is
//     marked active.
//
// Determinism: the heater is driven at phase boundaries by its owner
// (the matching engine) rather than by a goroutine; a sweep covers the
// fraction of the region list the configured period permits within the
// compute phase being modeled.
package hotcache

import (
	"spco/internal/cache"
	"spco/internal/simmem"
)

// Synchronisation cost model. An uncontended spin-lock acquisition plus
// the list insert; removals additionally scan the region list under the
// lock. On top of that, the heater holds the same lock while sweeping:
// when the registry is long, sweeps take longer than the heater's sleep
// period, the lock is held most of the time, and every insert or
// removal spins for a large fraction of a sweep — the contention the
// paper identifies as hot caching's cost at scale (Sections 3.2, 4.5).
const (
	lockAcquireCycles   = 40
	removeScanPerRegion = 2
	touchBytes          = 4 // "adds the first four bytes of each cache line"

	// touchNSPerLine is the heater's per-line sweep cost (a dependent
	// load train on the heater core).
	touchNSPerLine = 2.0
)

// Options configures a heater.
type Options struct {
	// PeriodNS is the heater's sleep between sweeps. A sweep initiated
	// during a compute phase of length P covers min(1, P/PeriodNS) of
	// the registered lines; longer periods leave the tail cold.
	PeriodNS float64

	// Pool selects the auxiliary-data-structure mode: region entries are
	// re-used rather than removed, so structure deallocation costs no
	// heater synchronisation (the modified-LLA configuration in the
	// temporal-locality experiments).
	Pool bool
}

// Heater keeps a region registry warm in the shared cache.
type Heater struct {
	h    *cache.Hierarchy
	core int
	opts Options

	regions simmem.RegionSet

	sweeps       uint64
	touches      uint64
	cursor       uint64  // resume position (line index into the registry)
	syncCycles   uint64  // accumulated, drained by TakeSyncCycles
	syncTotal    uint64  // lifetime synchronisation cycles (never drained)
	lastCoverage float64 // fraction of the registry the last sweep touched

	// onSweep holds the sweep observers (the telemetry layer records
	// sweep events as a time series; the PMU counts sweeps). Empty
	// costs one length check.
	onSweep []func(phaseNS float64, touched uint64, coverage float64)
}

// New binds a heater to a hierarchy and the core it is pinned to. The
// core must share a cache level with the communication core for heating
// to help; on the modeled machines that is the socket-wide L3.
func New(h *cache.Hierarchy, core int, opts Options) *Heater {
	if opts.PeriodNS <= 0 {
		opts.PeriodNS = 1000 // 1 us default: well under any compute phase
	}
	return &Heater{h: h, core: core, opts: opts}
}

// Core returns the heater's pinned core.
func (ht *Heater) Core() int { return ht.core }

// Pool reports whether the element-pool mode is active.
func (ht *Heater) Pool() bool { return ht.opts.Pool }

// sweepNS returns the duration of one full sweep of the registry.
func (ht *Heater) sweepNS() float64 {
	return float64(ht.regions.TotalLines()) * touchNSPerLine
}

// refreshCycleNS is how often each registered line actually gets
// re-touched: the larger of the configured period and the time a full
// sweep takes (the heater cannot sweep faster than it can load lines).
func (ht *Heater) refreshCycleNS() float64 {
	if s := ht.sweepNS(); s > ht.opts.PeriodNS {
		return s
	}
	return ht.opts.PeriodNS
}

// lockWaitCycles models spinning on the region-list lock while the
// heater holds it: the heater sweeps for sweepNS out of every refresh
// cycle, and an op arriving during a sweep waits half a sweep on
// average.
func (ht *Heater) lockWaitCycles() uint64 {
	sweep := ht.sweepNS()
	if sweep <= 0 {
		return 0
	}
	duty := sweep / ht.refreshCycleNS()
	return ht.h.Profile().NanosToCycles(duty * sweep / 2)
}

// RegionAdded registers a region, charging the insert synchronisation.
// In pool mode a re-added region that is still registered costs nothing
// (the recycled element was never removed).
func (ht *Heater) RegionAdded(r simmem.Region) uint64 {
	if ht.opts.Pool && ht.regions.Contains(r.Base) {
		return 0
	}
	cost := lockAcquireCycles + ht.lockWaitCycles()
	ht.regions.Add(r)
	ht.syncCycles += cost
	ht.syncTotal += cost
	return cost
}

// RegionRemoved deregisters a region. Without the pool this takes the
// spin lock (waiting out any in-progress sweep) and scans the region
// list — the contention the paper blames for hot caching's overhead at
// scale. With the pool the entry stays and the call is free.
func (ht *Heater) RegionRemoved(r simmem.Region) uint64 {
	if ht.opts.Pool {
		return 0
	}
	cost := uint64(lockAcquireCycles+removeScanPerRegion*len(ht.regions.Regions())) +
		ht.lockWaitCycles()
	ht.regions.Remove(r)
	ht.syncCycles += cost
	ht.syncTotal += cost
	return cost
}

// Sweep runs the heater for a compute phase of phaseNS nanoseconds: it
// touches the first 4 bytes of each registered cache line, covering the
// fraction of lines one refresh cycle fits into the phase. The heater
// iterates its registry continuously, resuming where the previous phase
// left off, so partial coverage is a rotating window — not a
// permanently-warm prefix.
func (ht *Heater) Sweep(phaseNS float64) {
	frac := 1.0
	if cycle := ht.refreshCycleNS(); phaseNS > 0 && cycle > phaseNS {
		frac = phaseNS / cycle
	}
	total := ht.regions.TotalLines()
	budget := total
	if frac < 1 {
		budget = uint64(frac * float64(total))
	}
	ht.sweeps++
	ht.lastCoverage = frac
	if total == 0 || budget == 0 {
		ht.lastCoverage = 0
		for _, fn := range ht.onSweep {
			fn(phaseNS, 0, 0)
		}
		return
	}
	start := ht.cursor % total
	var pos, done uint64
	touch := func(line uint64) {
		ht.h.HeaterTouch(ht.core, simmem.Addr(line*simmem.LineSize), touchBytes)
		ht.touches++
		done++
	}
	// Two passes over the region list implement the wrap-around window
	// [start, start+budget) in line order.
	for pass := 0; pass < 2 && done < budget; pass++ {
		pos = 0
		for _, r := range ht.regions.Regions() {
			firstLine := r.Base.Line()
			lastLine := (r.End() - 1).Line()
			for line := firstLine; line <= lastLine; line++ {
				inWindow := false
				switch pass {
				case 0:
					inWindow = pos >= start
				case 1:
					inWindow = pos < start
				}
				if inWindow && done < budget {
					touch(line)
				}
				pos++
			}
			if done >= budget {
				break
			}
		}
	}
	ht.cursor = (start + budget) % total
	for _, fn := range ht.onSweep {
		fn(phaseNS, done, frac)
	}
}

// TakeSyncCycles drains and returns the synchronisation cycles accrued
// since the last call; the owner charges them to the operation that
// caused them.
func (ht *Heater) TakeSyncCycles() uint64 {
	c := ht.syncCycles
	ht.syncCycles = 0
	return c
}

// SetSweepHook replaces the sweep observers with fn (or, with nil,
// detaches them all): it fires after every Sweep with the modeled phase
// length, the number of lines touched, and the fraction of the registry
// covered.
func (ht *Heater) SetSweepHook(fn func(phaseNS float64, touched uint64, coverage float64)) {
	if fn == nil {
		ht.onSweep = nil
		return
	}
	ht.onSweep = []func(float64, uint64, float64){fn}
}

// AddSweepHook appends a sweep observer without disturbing the ones
// already attached, so independent consumers (telemetry, the PMU) can
// observe the same heater.
func (ht *Heater) AddSweepHook(fn func(phaseNS float64, touched uint64, coverage float64)) {
	if fn != nil {
		ht.onSweep = append(ht.onSweep, fn)
	}
}

// SyncCyclesTotal returns the lifetime synchronisation cycles charged,
// unaffected by TakeSyncCycles draining.
func (ht *Heater) SyncCyclesTotal() uint64 { return ht.syncTotal }

// LastSweepCoverage returns the fraction of the registry the most
// recent sweep touched (1 = a full refresh fit in the phase).
func (ht *Heater) LastSweepCoverage() float64 { return ht.lastCoverage }

// Sweeps returns the number of sweeps performed.
func (ht *Heater) Sweeps() uint64 { return ht.sweeps }

// Touches returns the number of line touches performed.
func (ht *Heater) Touches() uint64 { return ht.touches }

// RegisteredBytes returns the total bytes currently registered.
func (ht *Heater) RegisteredBytes() uint64 { return ht.regions.TotalBytes() }

// RegisteredLines returns the total cache lines currently registered.
func (ht *Heater) RegisteredLines() uint64 { return ht.regions.TotalLines() }
