package daemon

import (
	"testing"

	"spco/internal/mpi"
)

// mixedOpStream builds a deterministic interleaving of arrivals, posts,
// phases, pings, and stats — including traced ops, which must fall off
// the batch fast path onto the per-op path without changing replies.
func mixedOpStream(n int) []mpi.WireOp {
	ops := make([]mpi.WireOp, 0, n)
	req := uint64(1)
	for i := 0; len(ops) < n; i++ {
		switch i % 11 {
		case 3, 7:
			ops = append(ops, mpi.WireOp{
				Kind: mpi.WirePost, Rank: int32(i % 5), Tag: int32(i % 3),
				Ctx: 1, Handle: req,
			})
			req++
		case 5:
			ops = append(ops, mpi.WireOp{Kind: mpi.WirePhase, DurationNS: 1e4})
		case 9:
			ops = append(ops, mpi.WireOp{Kind: mpi.WirePing})
		case 10:
			ops = append(ops, mpi.WireOp{Kind: mpi.WireStat})
		default:
			op := mpi.WireOp{
				Kind: mpi.WireArrive, Rank: int32(i % 5), Tag: int32(i % 3),
				Ctx: 1, Handle: uint64(i) + 1000,
			}
			if i%13 == 0 {
				op.Trace = uint64(i) + 1 // traced: not batch-fast-path eligible
			}
			ops = append(ops, op)
		}
	}
	return ops
}

// TestBatchRepliesMatchScalar drives the identical op stream through a
// batched connection on one daemon and a scalar connection on a second,
// identically configured daemon: every reply must agree.
func TestBatchRepliesMatchScalar(t *testing.T) {
	ops := mixedOpStream(600)

	run := func(batched bool) []mpi.WireReply {
		srv, _, errc := testServer(t, nil)
		defer stopAndWait(t, srv, errc)
		cl, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		out := make([]mpi.WireReply, 0, len(ops))
		if batched {
			const window = 37 // not a divisor of len(ops): trailing partial batch
			var reps []mpi.WireReply
			for i := 0; i < len(ops); i += window {
				j := i + window
				if j > len(ops) {
					j = len(ops)
				}
				reps, err = cl.DoBatch(ops[i:j], reps)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, reps...)
			}
		} else {
			for _, op := range ops {
				rep, err := cl.do(op)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, rep)
			}
		}
		return out
	}

	scalar := run(false)
	batch := run(true)
	for i := range scalar {
		if scalar[i] != batch[i] {
			t.Fatalf("reply %d diverged (op %+v):\nscalar %+v\nbatch  %+v",
				i, ops[i], scalar[i], batch[i])
		}
	}
}

// TestServeLoadBatched runs the audited load generator in batched mode:
// the pairing audit must hold exactly, as in the scalar path.
func TestServeLoadBatched(t *testing.T) {
	srv, _, errc := testServer(t, nil)

	res, err := RunLoad(LoadConfig{
		Addr:       srv.Addr(),
		Conns:      3,
		Messages:   1800,
		PhaseEvery: 100,
		PhaseNS:    5e4,
		Batch:      64,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Unmatched != 0 || res.Mismatches != 0 {
		t.Fatalf("pairing audit failed: %d unmatched, %d mismatched", res.Unmatched, res.Mismatches)
	}
	if got := res.Matched(); got != 1800 {
		t.Fatalf("matched %d pairs, want 1800", got)
	}
	if res.Phases == 0 {
		t.Fatal("no compute phases driven")
	}

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	prq, umq, err := cl.QueueLens()
	if err != nil {
		t.Fatal(err)
	}
	if prq != 0 || umq != 0 {
		t.Fatalf("queues not drained after batched load: prq=%d umq=%d", prq, umq)
	}
	cl.Close()
	stopAndWait(t, srv, errc)
}
