package daemon

import (
	"errors"
	"fmt"
	"time"

	"spco/internal/fault"
	"spco/internal/mpi"
)

// ResilientClient drives a session connection that survives daemon
// crashes: every engine-reaching op is stamped with a session sequence
// number, and on any transport failure the client reconnects with a
// resume handshake (capped exponential backoff with seeded jitter,
// fault.Backoff) and re-sends the not-yet-answered ops with their
// ORIGINAL sequence numbers. The server's session ring answers the
// ones it already applied; the rest apply fresh — so each op takes
// effect exactly once no matter where the crash landed. Retries of
// NACK/Busy replies are the caller's business and must use fresh ops
// (a refused op was answered, not lost).
//
// Like Client, a ResilientClient is not safe for concurrent use, and
// the exactly-once contract additionally requires one live connection
// per session (which a single owning goroutine gives for free).
type ResilientClient struct {
	cfg ResilientConfig

	cl        *Client
	session   uint64
	nextSeq   uint64
	lastAcked uint64

	// Reconnects counts successful resume handshakes; Resent counts ops
	// re-sent with their original seqs after a failure.
	Reconnects uint64
	Resent     uint64
}

// ResilientConfig parameterises a ResilientClient.
type ResilientConfig struct {
	Addr string

	// MaxReconnects bounds consecutive failed reconnect attempts before
	// an Exchange gives up (default 64; a successful resume resets it).
	MaxReconnects int

	// Backoff spaces reconnect attempts (zero value: 5ms base, 1s cap,
	// 25% jitter). Seed makes the jitter reproducible (default 1).
	Backoff fault.Backoff
	Seed    uint64

	// Window is a client-side cap on ops per wire frame (0: server's
	// advertised credit window only).
	Window int
}

// DialResilient opens the session.
func DialResilient(cfg ResilientConfig) (*ResilientClient, error) {
	if cfg.MaxReconnects <= 0 {
		cfg.MaxReconnects = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Backoff.RNG == nil {
		cfg.Backoff.RNG = fault.NewRNG(cfg.Seed).Fork(17)
	}
	rc := &ResilientClient{cfg: cfg}
	cl, err := DialSession(cfg.Addr)
	if err != nil {
		return nil, err
	}
	rc.adopt(cl)
	return rc, nil
}

// adopt installs a fresh connection and learns the server's credit
// window before any batch rides it.
func (rc *ResilientClient) adopt(cl *Client) {
	cl.SetWindow(rc.cfg.Window)
	cl.Ping() // learn credits; a failure here surfaces on the next frame
	rc.cl = cl
	rc.session = cl.Session()
}

// Session returns the server-minted session id.
func (rc *ResilientClient) Session() uint64 { return rc.session }

// Close closes the connection (the session stays resumable server-side).
func (rc *ResilientClient) Close() error {
	if rc.cl == nil {
		return nil
	}
	return rc.cl.Close()
}

// sequenced reports whether the op kind rides the exactly-once path.
// Stat and Ping are read-only and re-execute freely.
func sequenced(kind byte) bool {
	return kind == mpi.WireArrive || kind == mpi.WirePost || kind == mpi.WirePhase
}

// Exchange sends ops and returns their replies in order, transparently
// reconnecting and re-sending across any number of transport failures
// (each bounded by MaxReconnects consecutive failed dials). The ops
// slice is modified in place (sequence stamping).
func (rc *ResilientClient) Exchange(ops []mpi.WireOp, reps []mpi.WireReply) ([]mpi.WireReply, error) {
	if len(ops) == 0 {
		return reps[:0], fmt.Errorf("daemon: empty exchange")
	}
	for i := range ops {
		if sequenced(ops[i].Kind) {
			rc.nextSeq++
			ops[i].Seq = rc.nextSeq
		}
	}
	reps = reps[:0]
	rest := ops
	resend := false
	for len(rest) > 0 {
		if rc.cl == nil {
			if err := rc.reconnect(); err != nil {
				return reps, err
			}
		}
		n := len(rest)
		if w := rc.cl.frameCap(); w > 0 && n > w {
			n = w
		}
		if resend {
			rc.Resent += uint64(n)
		}
		k, err := rc.frame(rest[:n], &reps)
		if err != nil {
			// k replies arrived before the failure; everything after them
			// is unacked and re-sends with original seqs after resume.
			rest = rest[k:]
			rc.cl.Close()
			rc.cl = nil
			resend = true
			continue
		}
		rest = rest[n:]
		resend = false
	}
	return reps, nil
}

// frame sends one wire frame and reads its replies, returning how many
// replies landed before any failure.
func (rc *ResilientClient) frame(ops []mpi.WireOp, reps *[]mpi.WireReply) (int, error) {
	var err error
	if len(ops) == 1 {
		err = mpi.WriteWireOp(rc.cl.bw, ops[0])
	} else {
		err = mpi.WriteWireBatch(rc.cl.bw, ops)
	}
	if err == nil {
		err = rc.cl.bw.Flush()
	}
	if err != nil {
		return 0, err
	}
	for i := range ops {
		rep, err := rc.cl.readReply()
		if err != nil {
			return i, err
		}
		*reps = append(*reps, rep)
		if ops[i].Seq > rc.lastAcked {
			rc.lastAcked = ops[i].Seq
		}
	}
	return len(ops), nil
}

// reconnect resumes the session, backing off between attempts. A
// server that answers WireWelcomeLost ends the session for good; a
// refused TCP connect (the daemon is mid-restart) retries.
func (rc *ResilientClient) reconnect() error {
	for attempt := 0; attempt < rc.cfg.MaxReconnects; attempt++ {
		time.Sleep(rc.cfg.Backoff.Next())
		cl, err := DialResume(rc.cfg.Addr, rc.session, rc.lastAcked)
		if errors.Is(err, ErrSessionLost) {
			return err
		}
		if err != nil {
			continue
		}
		rc.adopt(cl)
		rc.Reconnects++
		rc.cfg.Backoff.Reset()
		return nil
	}
	return fmt.Errorf("daemon: session %d: gave up after %d reconnect attempts",
		rc.session, rc.cfg.MaxReconnects)
}
