package daemon

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"spco/internal/cache"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/matchlist"
	"spco/internal/perf"
	"spco/internal/telemetry"
)

// testServer starts a daemon on loopback ports and returns it with its
// Run error channel. Callers stop it with srv.Stop() (or by sending on
// sig) and then wait on errc. SPCO_TEST_SHARDS (an integer) reruns the
// whole suite against a sharded daemon — `make shard-gate` sets it to 4
// under -race so every serving-path test doubles as a shard-safety
// check. A mut that sets Shards itself wins over the env knob.
func testServer(t *testing.T, mut func(*Config)) (*Server, chan os.Signal, <-chan error) {
	t.Helper()
	cfg := Config{
		Engine: engine.Config{
			Profile:        cache.SandyBridge,
			Kind:           matchlist.KindLLA,
			EntriesPerNode: 2,
		},
		Collector:    telemetry.NewCollector(telemetry.Labels{"exp": "daemon-test"}),
		PMU:          perf.New(perf.Options{Label: "daemon-test", SampleInterval: perf.DefaultSampleInterval}),
		DrainTimeout: 2 * time.Second,
		PerfOut:      io.Discard,
	}
	if v := os.Getenv("SPCO_TEST_SHARDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("SPCO_TEST_SHARDS=%q is not a positive integer", v)
		}
		cfg.Shards = n
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 2)
	errc := make(chan error, 1)
	go func() { errc <- srv.Run(sig) }()
	waitReady(t, srv)
	return srv, sig, errc
}

func waitReady(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + srv.AdminAddr() + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("daemon never became ready")
}

func stopAndWait(t *testing.T, srv *Server, errc <-chan error) {
	t.Helper()
	srv.Stop()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestServeLoad drives a live daemon with concurrent connections and
// audits exact pairing, then checks the queues drained.
func TestServeLoad(t *testing.T) {
	srv, _, errc := testServer(t, nil)

	res, err := RunLoad(LoadConfig{
		Addr:       srv.Addr(),
		Conns:      4,
		Messages:   2000,
		PhaseEvery: 100,
		PhaseNS:    5e4,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Unmatched != 0 || res.Mismatches != 0 {
		t.Fatalf("pairing audit failed: %d unmatched, %d mismatched", res.Unmatched, res.Mismatches)
	}
	if got := res.Matched(); got != 2000 {
		t.Fatalf("matched %d pairs, want 2000", got)
	}
	if res.Phases == 0 {
		t.Fatal("no compute phases driven")
	}

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	prq, umq, err := cl.QueueLens()
	if err != nil {
		t.Fatal(err)
	}
	if prq != 0 || umq != 0 {
		t.Fatalf("queues not drained after load: prq=%d umq=%d", prq, umq)
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	st := srv.Stats()
	if st.ConnectionsTotal < 5 {
		t.Fatalf("connections_total = %d, want >= 5", st.ConnectionsTotal)
	}
	stopAndWait(t, srv, errc)
}

// TestAdminEndpoints checks the HTTP plane: health, readiness, status,
// and a live /metrics scrape whose metric-name set matches the file
// exporter's byte-for-byte naming.
func TestAdminEndpoints(t *testing.T) {
	dir := t.TempDir()
	metricsOut := filepath.Join(dir, "final.prom")
	srv, _, errc := testServer(t, func(c *Config) { c.MetricsOut = metricsOut })

	if _, err := RunLoad(LoadConfig{Addr: srv.Addr(), Conns: 2, Messages: 200}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.AdminAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz: %d %q", code, body)
	}

	code, status := get("/status")
	if code != 200 {
		t.Fatalf("/status: %d", code)
	}
	for _, want := range []string{`"uptime_seconds"`, `"connections_total"`, `"prq_len"`, `"residency"`, `"arch"`} {
		if !strings.Contains(status, want) {
			t.Errorf("/status missing %s in %s", want, status)
		}
	}

	code, live := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"spco_daemon_frames_total", "spco_daemon_connections_total",
		"spco_daemon_uptime_seconds", "spco_matches_total",
		"spco_region_residency",
	} {
		if !strings.Contains(live, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	stopAndWait(t, srv, errc)

	// The shutdown flush must produce the same metric names the live
	// scrape served (the file exporter and /metrics share a writer).
	flushed, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("exporter flush missing: %v", err)
	}
	liveNames := metricNames(live)
	flushNames := metricNames(string(flushed))
	if len(liveNames) == 0 {
		t.Fatal("no metric names parsed from live scrape")
	}
	for name := range liveNames {
		if !flushNames[name] {
			t.Errorf("live metric %s absent from flushed export", name)
		}
	}
}

// metricNames extracts the metric-name set from Prometheus text format.
func metricNames(text string) map[string]bool {
	names := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name != "" {
			names[name] = true
		}
	}
	return names
}

// TestGracefulDrain verifies that a connection with an in-flight
// request stream finishes during the drain window, exporters flush, and
// the final perf-stat report is emitted.
func TestGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	var perfOut bytes.Buffer
	metricsOut := filepath.Join(dir, "metrics.prom")
	seriesOut := filepath.Join(dir, "series.csv")
	srv, sig, errc := testServer(t, func(c *Config) {
		c.MetricsOut = metricsOut
		c.SeriesOut = seriesOut
		c.PerfOut = &perfOut
		c.DrainTimeout = 5 * time.Second
	})

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Half of an unexpected pair is in flight when the signal lands.
	if _, err := cl.Arrive(1, 7, 1, 7); err != nil {
		t.Fatal(err)
	}

	sig <- syscall.SIGTERM

	// Draining: no new connections, readiness 503, but the in-flight
	// connection still gets service.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + srv.AdminAddr() + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusServiceUnavailable {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := Dial(srv.Addr()); err == nil {
		t.Error("new connection accepted during drain")
	}

	rep, err := cl.Post(1, 7, 1, 7)
	if err != nil {
		t.Fatalf("in-flight connection refused during drain: %v", err)
	}
	if rep.Outcome != 1 || rep.Handle != 7 {
		t.Fatalf("drain-window post did not match: %+v", rep)
	}
	cl.Close()

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed")
	}

	if !strings.Contains(perfOut.String(), "Performance counter stats") {
		t.Errorf("final perf-stat report missing, got %q", perfOut.String())
	}
	for _, f := range []string{metricsOut, seriesOut} {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Errorf("exporter flush %s: %v", f, err)
		} else if len(b) == 0 {
			t.Errorf("exporter flush %s is empty", f)
		}
	}
}

// TestForcedShutdown verifies a second signal during the drain forces
// exit with ErrForced.
func TestForcedShutdown(t *testing.T) {
	srv, sig, errc := testServer(t, func(c *Config) {
		c.DrainTimeout = 30 * time.Second // drain would outlive the test
	})

	// An idle connection holds the drain open.
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sig <- syscall.SIGTERM
	for !srv.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	sig <- syscall.SIGTERM

	select {
	case err := <-errc:
		if err != ErrForced {
			t.Fatalf("Run = %v, want ErrForced", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second signal did not force shutdown")
	}
}

// TestFaultIngress runs load against a lossy ingress wire: drops and
// corruption surface as NACKs the client retransmits, duplicates are
// suppressed, and the pairing audit still holds exactly.
func TestFaultIngress(t *testing.T) {
	srv, _, errc := testServer(t, func(c *Config) {
		c.Wire = fault.WireConfig{DropProb: 0.05, DupProb: 0.03, CorruptProb: 0.02}
		c.FaultSeed = 7
	})

	res, err := RunLoad(LoadConfig{
		Addr:     srv.Addr(),
		Conns:    4,
		Messages: 1500,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Unmatched != 0 || res.Mismatches != 0 {
		t.Fatalf("pairing audit failed under faults: %d unmatched, %d mismatched", res.Unmatched, res.Mismatches)
	}
	if res.Nacks == 0 {
		t.Error("lossy wire produced no NACKs")
	}
	if res.Retries < res.Nacks {
		t.Errorf("retries %d < nacks %d", res.Retries, res.Nacks)
	}
	st := srv.Stats()
	if st.Nacks != res.Nacks {
		t.Errorf("server counted %d nacks, client saw %d", st.Nacks, res.Nacks)
	}
	if st.DupSuppressed == 0 {
		t.Error("no duplicates suppressed")
	}
	stopAndWait(t, srv, errc)
}

// TestProfileBundle fetches /debug/profile and verifies the zip holds
// every advertised artifact, with a non-empty simulated perf-stat.
func TestProfileBundle(t *testing.T) {
	srv, _, errc := testServer(t, nil)

	// Ctxs 4 spreads the contexts so shard 0 sees traffic at any
	// SPCO_TEST_SHARDS value — its PMU lane feeds folded.txt/sim.pprof.
	if _, err := RunLoad(LoadConfig{Addr: srv.Addr(), Conns: 4, Messages: 300, Ctxs: 4}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.AdminAddr() + "/debug/profile?seconds=0")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/profile: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/zip" {
		t.Errorf("Content-Type = %q", ct)
	}

	zr, err := zip.NewReader(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		t.Fatalf("bundle is not a zip: %v", err)
	}
	entries := map[string][]byte{}
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatal(err)
		}
		entries[f.Name] = b
	}
	// seconds=0 skips cpu.pprof; everything else must be present and
	// non-empty.
	for _, want := range []string{
		"heap.pprof", "goroutines.pprof", "mutex.pprof", "block.pprof",
		"perf-stat.txt", "folded.txt", "sim.pprof", "metrics.prom", "status.json",
	} {
		if len(entries[want]) == 0 {
			t.Errorf("bundle entry %s missing or empty", want)
		}
	}
	if !strings.Contains(string(entries["perf-stat.txt"]), "Performance counter stats") {
		t.Errorf("perf-stat.txt lacks report header: %q", entries["perf-stat.txt"])
	}
	if !strings.Contains(string(entries["status.json"]), `"uptime_seconds"`) {
		t.Error("status.json lacks uptime")
	}
	if !strings.Contains(string(entries["metrics.prom"]), "spco_daemon_frames_total") {
		t.Error("metrics.prom lacks daemon counters")
	}

	// A CPU-sampling bundle includes cpu.pprof.
	resp, err = http.Get("http://" + srv.AdminAddr() + "/debug/profile?seconds=0.1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	zr, err = zip.NewReader(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		t.Fatalf("cpu bundle is not a zip: %v", err)
	}
	found := false
	for _, f := range zr.File {
		if f.Name == "cpu.pprof" {
			found = true
		}
	}
	if !found {
		t.Error("cpu.pprof missing from sampling bundle")
	}
	stopAndWait(t, srv, errc)
}

// TestScrapeUnderLoad hammers /metrics, /status, and /debug/profile
// while match traffic is flowing; run with -race this is the live
// exercise of the registry's concurrent export guarantees.
func TestScrapeUnderLoad(t *testing.T) {
	srv, _, errc := testServer(t, nil)

	done := make(chan error, 1)
	go func() {
		_, err := RunLoad(LoadConfig{Addr: srv.Addr(), Conns: 4, Messages: 3000, PhaseEvery: 200, PhaseNS: 1e4})
		done <- err
	}()

	for i := 0; ; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("RunLoad: %v", err)
			}
			stopAndWait(t, srv, errc)
			return
		default:
		}
		path := [...]string{"/metrics", "/status", "/debug/profile?seconds=0"}[i%3]
		resp, err := http.Get("http://" + srv.AdminAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 && resp.StatusCode != http.StatusConflict {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}
}

// TestProfileSingleFlight: concurrent bundle requests collapse to one.
func TestProfileSingleFlight(t *testing.T) {
	srv, _, errc := testServer(t, nil)

	first := make(chan struct{})
	go func() {
		resp, err := http.Get("http://" + srv.AdminAddr() + "/debug/profile?seconds=2")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		close(first)
	}()
	// Wait for the long-running bundle to take the slot.
	deadline := time.Now().Add(2 * time.Second)
	for !srv.profileBusy.Load() {
		if time.Now().After(deadline) {
			t.Fatal("first profile request never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get("http://" + srv.AdminAddr() + "/debug/profile?seconds=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second concurrent profile: %d, want 409", resp.StatusCode)
	}
	<-first
	stopAndWait(t, srv, errc)
}

// TestNewValidation: missing collector and bad wire config fail fast.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted nil Collector")
	}
	if _, err := New(Config{
		Collector: telemetry.NewCollector(nil),
		Wire:      fault.WireConfig{DropProb: 2},
	}); err == nil {
		t.Error("New accepted invalid wire config")
	}
}

func ExampleServer() {
	coll := telemetry.NewCollector(nil)
	srv, err := New(Config{
		Engine: engine.Config{
			Profile:        cache.SandyBridge,
			Kind:           matchlist.KindLLA,
			EntriesPerNode: 2,
		},
		Collector: coll,
		PerfOut:   io.Discard,
	})
	if err != nil {
		panic(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Run(nil) }()

	cl, err := Dial(srv.Addr())
	if err != nil {
		panic(err)
	}
	cl.Arrive(0, 1, 1, 100)
	rep, _ := cl.Post(0, 1, 1, 200)
	fmt.Printf("matched=%d msg=%d\n", rep.Outcome, rep.Handle)
	cl.Close()

	srv.Stop()
	<-errc
	// Output: matched=1 msg=100
}
