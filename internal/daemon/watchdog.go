package daemon

import "time"

// The watchdog detects wedged serving lanes. Each shard's lock()
// stamps heldSince when the mutex is acquired and unlock() clears it;
// the watchdog goroutine ticks on WatchdogInterval and flags any lane
// whose stamp has been standing longer than WatchdogDeadline — an
// operation (or a bug) holding the lane's single-threaded stack far
// past any legitimate op's cost. A wedged lane flips /readyz to 503
// (load balancers stop routing new connections), marks the shard in
// /status, and raises spco_shard_wedged; it clears itself if the lane
// recovers. Detection only — the daemon never kills a wedged lane,
// because the lane owns engine state a forced unlock would corrupt;
// the operator (or the chaos harness's supervisor) restarts with
// -recover instead.

// DefaultWatchdogDeadline flags a shard lock held this long.
const DefaultWatchdogDeadline = 5 * time.Second

// watchdogLoop runs until the daemon quits.
func (s *Server) watchdogLoop() {
	t := time.NewTicker(s.cfg.WatchdogInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.sweepWedged()
		}
	}
}

// sweepWedged refreshes every lane's wedged flag and the gauge.
func (s *Server) sweepWedged() {
	wedged := 0
	now := time.Now().UnixNano()
	for _, sh := range s.shards {
		h := sh.heldSince.Load()
		w := h != 0 && time.Duration(now-h) > s.cfg.WatchdogDeadline
		if w != sh.wedged.Load() {
			sh.wedged.Store(w)
			if w {
				s.cfg.Logf("daemon: watchdog: shard %d wedged (lock held > %s)", sh.idx, s.cfg.WatchdogDeadline)
			} else {
				s.cfg.Logf("daemon: watchdog: shard %d recovered", sh.idx)
			}
		}
		if w {
			wedged++
		}
	}
	s.gWedged.Set(float64(wedged))
}

// wedgedShards counts currently flagged lanes.
func (s *Server) wedgedShards() int {
	n := 0
	for _, sh := range s.shards {
		if sh.wedged.Load() {
			n++
		}
	}
	return n
}
