package daemon

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"

	"spco/internal/mpi"
)

// Decode-error handling at the serving loop: a malformed frame — a
// batch that truncates mid-payload, an unknown op kind scalar or
// buried mid-batch — must earn exactly one WireErr reply followed by a
// clean close, and none of the frame's ops may reach an engine. (A
// connection that closes *between* frames earns no reply at all: that
// is a departure, not an error.)

// rawDial opens a handshaken wire connection below the Client layer, so
// tests can write malformed bytes.
func rawDial(t *testing.T, addr string) (*net.TCPConn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tc := conn.(*net.TCPConn)
	bw := bufio.NewWriter(tc)
	if err := mpi.WriteWireHello(bw, mpi.WireHello{Mode: mpi.WireSessEphemeral}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(tc)
	if _, err := mpi.ReadWireWelcome(br); err != nil {
		t.Fatal(err)
	}
	return tc, br
}

// expectOneWireErrThenClose drains the connection: exactly one reply,
// with status WireErr, then EOF.
func expectOneWireErrThenClose(t *testing.T, br *bufio.Reader) {
	t.Helper()
	rep, err := mpi.ReadWireReply(br)
	if err != nil {
		t.Fatalf("expected a WireErr reply, got read error %v", err)
	}
	if rep.Status != mpi.WireErr {
		t.Fatalf("reply status %d, want WireErr", rep.Status)
	}
	if _, err := mpi.ReadWireReply(br); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("connection not closed after the WireErr: got %v", err)
	}
}

// expectQueuesEmpty verifies via a fresh connection that nothing from
// the malformed frame reached an engine.
func expectQueuesEmpty(t *testing.T, srv *Server) {
	t.Helper()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	prq, umq, err := cl.QueueLens()
	if err != nil {
		t.Fatal(err)
	}
	if prq != 0 || umq != 0 {
		t.Fatalf("malformed frame leaked ops into the engines: prq=%d umq=%d", prq, umq)
	}
}

// TestBatchTruncatedMidFrame: a batch header promising 3 ops followed
// by only 2 and a half-close is a protocol error, not a departure —
// one WireErr, close, and the 2 decoded ops are never applied.
func TestBatchTruncatedMidFrame(t *testing.T) {
	srv, _, errc := testServer(t, nil)
	defer stopAndWait(t, srv, errc)

	tc, br := rawDial(t, srv.Addr())
	defer tc.Close()

	var hdr [5]byte
	hdr[0] = mpi.WireBatch
	binary.BigEndian.PutUint32(hdr[1:5], 3)
	if _, err := tc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := mpi.WriteWireOp(tc, mpi.WireOp{
			Kind: mpi.WireArrive, Rank: 1, Tag: int32(i), Ctx: 1, Handle: uint64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Half-close: the promised third op never comes, but the read side
	// stays open for the server's verdict.
	if err := tc.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	expectOneWireErrThenClose(t, br)
	expectQueuesEmpty(t, srv)
}

// TestBatchTruncatedMidOp: the cut lands inside an op frame's bytes,
// not on a frame boundary. Same verdict.
func TestBatchTruncatedMidOp(t *testing.T) {
	srv, _, errc := testServer(t, nil)
	defer stopAndWait(t, srv, errc)

	tc, br := rawDial(t, srv.Addr())
	defer tc.Close()

	var hdr [5]byte
	hdr[0] = mpi.WireBatch
	binary.BigEndian.PutUint32(hdr[1:5], 2)
	if _, err := tc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if err := mpi.WriteWireOp(tc, mpi.WireOp{Kind: mpi.WirePost, Rank: 1, Tag: 1, Ctx: 1, Handle: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Write([]byte{byte(mpi.WireArrive), 0, 0, 0}); err != nil { // 4 of 51 bytes
		t.Fatal(err)
	}
	if err := tc.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	expectOneWireErrThenClose(t, br)
	expectQueuesEmpty(t, srv)
}

// TestBatchBadKindMidFrame: a complete batch frame whose second op
// wears an unknown kind fails the whole frame — one WireErr, close,
// and the well-formed first op is not applied either (the frame is the
// unit of decode).
func TestBatchBadKindMidFrame(t *testing.T) {
	srv, _, errc := testServer(t, nil)
	defer stopAndWait(t, srv, errc)

	tc, br := rawDial(t, srv.Addr())
	defer tc.Close()

	var hdr [5]byte
	hdr[0] = mpi.WireBatch
	binary.BigEndian.PutUint32(hdr[1:5], 3)
	if _, err := tc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	for i, kind := range []byte{mpi.WireArrive, 99, mpi.WirePing} {
		if err := mpi.WriteWireOp(tc, mpi.WireOp{
			Kind: kind, Rank: 1, Tag: int32(i), Ctx: 1, Handle: uint64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	expectOneWireErrThenClose(t, br)
	expectQueuesEmpty(t, srv)
}

// TestScalarBadKind: an unknown kind on the scalar path gets the same
// one-WireErr-then-close treatment.
func TestScalarBadKind(t *testing.T) {
	srv, _, errc := testServer(t, nil)
	defer stopAndWait(t, srv, errc)

	tc, br := rawDial(t, srv.Addr())
	defer tc.Close()

	if err := mpi.WriteWireOp(tc, mpi.WireOp{Kind: 42, Rank: 1, Tag: 1, Ctx: 1, Handle: 1}); err != nil {
		t.Fatal(err)
	}
	expectOneWireErrThenClose(t, br)
	expectQueuesEmpty(t, srv)
}

// TestCleanCloseBetweenFrames: a connection that completes its frames
// and closes earns no WireErr — the serving loop must tell departures
// from protocol errors.
func TestCleanCloseBetweenFrames(t *testing.T) {
	srv, _, errc := testServer(t, nil)
	defer stopAndWait(t, srv, errc)

	tc, br := rawDial(t, srv.Addr())
	defer tc.Close()

	if err := mpi.WriteWireOp(tc, mpi.WireOp{Kind: mpi.WirePing}); err != nil {
		t.Fatal(err)
	}
	if err := tc.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	rep, err := mpi.ReadWireReply(br)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != mpi.WireOK {
		t.Fatalf("ping reply status %d, want OK", rep.Status)
	}
	if _, err := mpi.ReadWireReply(br); !errors.Is(err, io.EOF) {
		t.Fatalf("expected clean EOF after departure, got %v", err)
	}
}
