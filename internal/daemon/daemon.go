// Package daemon turns the matching engine into a long-running serving
// system: one engine instance (with its heater, telemetry collector,
// and simulated PMU attached for the life of the process) served to
// many concurrent client connections over the internal/mpi socket wire
// protocol, with a live HTTP admin plane.
//
// The paper's claim — semi-permanent cache occupancy pays off — is a
// statement about persistent network services, not run-to-completion
// benchmarks. The daemon is where that setting exists in this repo:
// match traffic arrives over real TCP for hours, the telemetry registry
// is scraped live by Prometheus (/metrics), and a one-shot diagnostic
// bundle (/debug/profile) captures host pprof profiles alongside the
// simulated PMU's perf-stat report, so cache-residency behaviour under
// sustained load is observable without stopping the process.
//
// Concurrency model: the engine, heater, PMU, and ingress fault wire
// are single-threaded by design; the server serializes all matching
// operations behind one mutex. Connection handling, the admin plane,
// and the telemetry registry are fully concurrent — the registry and
// sampler are safe to scrape while operations mutate them.
//
// Lifecycle: Run serves until the first signal (SIGTERM/SIGINT), then
// drains gracefully — the listener closes, /readyz flips to 503,
// in-flight connections get DrainTimeout to finish, exporters flush,
// and the final perf-stat report is emitted. A second signal during the
// drain forces shutdown with ErrForced (a nonzero exit in spco-daemon).
package daemon

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spco/internal/ctrace"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/match"
	"spco/internal/mpi"
	"spco/internal/perf"
	"spco/internal/telemetry"
)

// Version identifies the build in spco_build_info and /status;
// overridable at link time:
//
//	go build -ldflags "-X spco/internal/daemon.Version=v1.2.3"
var Version = "dev"

// ErrForced reports a shutdown forced by a second signal during the
// graceful drain; commands should exit nonzero.
var ErrForced = errors.New("daemon: forced shutdown before drain completed")

// DefaultDrainTimeout bounds the graceful drain.
const DefaultDrainTimeout = 5 * time.Second

// Config describes a daemon.
type Config struct {
	// Engine is the hosted engine's configuration. Telemetry must carry
	// the collector the admin plane scrapes (New fills it from Collector
	// when unset).
	Engine engine.Config

	// ListenAddr accepts match traffic ("127.0.0.1:0" picks a port);
	// AdminAddr serves the HTTP admin plane.
	ListenAddr string
	AdminAddr  string

	// Collector receives engine telemetry and the daemon's own serving
	// metrics; /metrics exports it live. Required.
	Collector *telemetry.Collector

	// PMU is the simulated performance-monitoring unit attached to the
	// engine for the life of the process; /debug/profile bundles its
	// perf-stat report and profiles. Optional.
	PMU *perf.PMU

	// Wire, when enabled, applies the unreliable-wire fate model to
	// inbound arrive frames at ingress: dropped or corrupted frames earn
	// a WireNack the client must retransmit, duplicated frames are
	// delivered once and counted as suppressed — the daemon-shaped
	// analogue of the fault transport's lossy link.
	Wire fault.WireConfig

	// FaultSeed seeds the ingress wire (default 1).
	FaultSeed uint64

	// DrainTimeout bounds the graceful drain (default
	// DefaultDrainTimeout).
	DrainTimeout time.Duration

	// MetricsOut and SeriesOut, when set, receive a final export of the
	// registry and sampler during shutdown (the exporter flush).
	MetricsOut string
	SeriesOut  string

	// PerfOut receives the final perf-stat report on shutdown (default
	// os.Stdout; io.Discard silences it).
	PerfOut io.Writer

	// Trace is the causal-trace flight recorder. Nil gets a default
	// always-on recorder (bounded, tail-retained) so /debug/trace works
	// on every daemon; supply one to tune capacity/retention.
	Trace *ctrace.Recorder

	// TraceOut, when set, receives a final Chrome trace-event JSON dump
	// of the flight recorder during shutdown.
	TraceOut string

	// Logf logs serving events (default: silent).
	Logf func(format string, args ...any)
}

// Server is a running daemon.
type Server struct {
	cfg Config

	// mu serializes the single-threaded simulation stack: engine, heater,
	// PMU, and the ingress fault wire.
	mu   sync.Mutex
	en   *engine.Engine
	wire *fault.Wire
	tr   *ctrace.Recorder

	ln      net.Listener
	adminLn net.Listener
	admin   *http.Server

	start    time.Time
	ready    atomic.Bool
	draining atomic.Bool
	quit     chan struct{} // Stop() closes: begin graceful drain
	quitOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	// Serving tallies, mirrored into registry counters so a live scrape
	// sees them without a publish step.
	active        atomic.Int64
	total         atomic.Uint64
	nacks         atomic.Uint64
	dupSuppressed atomic.Uint64

	cFrames map[byte]*telemetry.Counter
	cNacks  *telemetry.Counter
	cDups   *telemetry.Counter
	cConns  *telemetry.Counter
	gActive *telemetry.Gauge
	gUptime *telemetry.Gauge

	// Batch scratch, reused across applyBatch calls; guarded by mu, so
	// steady-state batch serving allocates nothing.
	batchEnvs []match.Envelope
	batchMsgs []uint64
	batchRes  []engine.ArriveResult

	profileBusy atomic.Bool
}

// New builds a daemon and binds both listeners (so Addr/AdminAddr are
// known before Run). The engine is constructed here; a bad engine
// configuration fails fast.
func New(cfg Config) (*Server, error) {
	if cfg.Collector == nil {
		return nil, errors.New("daemon: Config.Collector is required")
	}
	if err := cfg.Wire.Validate(); err != nil {
		return nil, err
	}
	if cfg.Engine.Telemetry == nil {
		cfg.Engine.Telemetry = cfg.Collector
	}
	if cfg.Engine.Perf == nil {
		cfg.Engine.Perf = cfg.PMU
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.FaultSeed == 0 {
		cfg.FaultSeed = 1
	}
	if cfg.PerfOut == nil {
		cfg.PerfOut = os.Stdout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Trace == nil {
		// The flight recorder is always on: bounded, tail-retained, and
		// dumpable at any moment via /debug/trace.
		cfg.Trace = ctrace.New(ctrace.Options{})
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.AdminAddr == "" {
		cfg.AdminAddr = "127.0.0.1:0"
	}

	en, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		en:    en,
		tr:    cfg.Trace,
		start: time.Now(), // reset by Run; set here so pre-Run traffic has a clock
		quit:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	if cfg.Wire.Enabled() {
		s.wire = fault.NewWire(cfg.Wire, fault.NewRNG(cfg.FaultSeed).Fork(99))
	}

	reg := cfg.Collector.Registry
	reg.Help("spco_daemon_frames_total", "Wire frames served by operation.")
	reg.Help("spco_daemon_nacks_total", "Arrive frames refused at ingress by fault injection.")
	reg.Help("spco_daemon_dups_suppressed_total", "Duplicated arrive frames delivered once.")
	reg.Help("spco_daemon_connections_total", "Client connections accepted.")
	reg.Help("spco_daemon_connections_active", "Client connections currently open.")
	reg.Help("spco_daemon_uptime_seconds", "Seconds since the daemon started serving.")
	reg.Help("spco_region_residency", "Cache-residency fraction by region owner and level, refreshed per scrape.")
	s.cFrames = map[byte]*telemetry.Counter{
		mpi.WireArrive: reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "arrive"}),
		mpi.WirePost:   reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "post"}),
		mpi.WirePhase:  reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "phase"}),
		mpi.WireStat:   reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "stat"}),
		mpi.WirePing:   reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "ping"}),
	}
	s.cNacks = reg.Counter("spco_daemon_nacks_total", nil)
	s.cDups = reg.Counter("spco_daemon_dups_suppressed_total", nil)
	s.cConns = reg.Counter("spco_daemon_connections_total", nil)
	s.gActive = reg.Gauge("spco_daemon_connections_active", nil)
	s.gUptime = reg.Gauge("spco_daemon_uptime_seconds", nil)
	reg.Help("spco_build_info", "Build identity (constant 1; the labels carry the information).")
	reg.Gauge("spco_build_info",
		telemetry.Labels{"version": Version, "go": runtime.Version()}).Set(1)

	if s.ln, err = net.Listen("tcp", cfg.ListenAddr); err != nil {
		return nil, err
	}
	if s.adminLn, err = net.Listen("tcp", cfg.AdminAddr); err != nil {
		s.ln.Close()
		return nil, err
	}
	s.admin = &http.Server{Handler: s.adminMux()}

	// Host lock contention and blocking are part of the diagnostic story
	// for a serving system; sample them so mutex.pprof and block.pprof in
	// the profile bundle have something to say.
	runtime.SetMutexProfileFraction(5)
	runtime.SetBlockProfileRate(1_000_000)
	return s, nil
}

// Addr returns the bound match-traffic address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AdminAddr returns the bound admin-plane address.
func (s *Server) AdminAddr() string { return s.adminLn.Addr().String() }

// Engine exposes the hosted engine; callers must not drive it while the
// server is running (the server owns the serialization).
func (s *Server) Engine() *engine.Engine { return s.en }

// Stop begins the graceful drain, as the first SIGTERM would.
func (s *Server) Stop() { s.quitOnce.Do(func() { close(s.quit) }) }

// Run serves until the first delivered signal (or Stop), then drains:
// the listener closes, readiness flips, in-flight connections get
// DrainTimeout to finish, exporters flush, and the final perf-stat is
// emitted. A second signal during the drain forces shutdown and returns
// ErrForced. A nil signal channel serves until Stop.
func (s *Server) Run(signals <-chan os.Signal) error {
	s.start = time.Now()
	go s.admin.Serve(s.adminLn)
	go s.acceptLoop()
	s.ready.Store(true)
	s.cfg.Logf("daemon: serving match traffic on %s, admin on %s", s.Addr(), s.AdminAddr())

	select {
	case sig := <-signals:
		s.cfg.Logf("daemon: received %v, draining (timeout %s)", sig, s.cfg.DrainTimeout)
	case <-s.quit:
		s.cfg.Logf("daemon: stop requested, draining (timeout %s)", s.cfg.DrainTimeout)
	}
	s.beginDrain()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.finish()
		s.cfg.Logf("daemon: drain complete")
		return nil
	case sig := <-signals:
		s.cfg.Logf("daemon: received %v during drain, forcing shutdown", sig)
		s.forceClose()
		return ErrForced
	}
}

// beginDrain stops accepting and bounds the remaining connections.
func (s *Server) beginDrain() {
	s.draining.Store(true)
	s.ready.Store(false)
	s.ln.Close()
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	s.connMu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.connMu.Unlock()
}

// forceClose tears down every connection immediately.
func (s *Server) forceClose() {
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
	s.admin.Close()
}

// finish flushes exporters and emits the final perf-stat report.
func (s *Server) finish() {
	s.mu.Lock()
	s.en.PublishTelemetry()
	if s.cfg.PMU != nil {
		s.cfg.PMU.Publish(s.cfg.Collector.Registry, s.cfg.Collector.Base)
	}
	s.mu.Unlock()
	s.gUptime.Set(time.Since(s.start).Seconds())

	if s.cfg.MetricsOut != "" {
		if err := telemetry.WriteMetricsFile(s.cfg.MetricsOut, s.cfg.Collector); err != nil {
			s.cfg.Logf("daemon: metrics flush: %v", err)
		}
	}
	if s.cfg.SeriesOut != "" {
		if err := telemetry.WriteSeriesFile(s.cfg.SeriesOut, s.cfg.Collector); err != nil {
			s.cfg.Logf("daemon: series flush: %v", err)
		}
	}
	if s.cfg.PMU != nil {
		s.mu.Lock()
		s.cfg.PMU.WriteReport(s.cfg.PerfOut)
		s.mu.Unlock()
	}
	if s.cfg.TraceOut != "" {
		if err := s.writeTraceFile(s.cfg.TraceOut); err != nil {
			s.cfg.Logf("daemon: trace flush: %v", err)
		}
	}
	for _, trig := range s.tr.Triggered() {
		s.cfg.Logf("daemon: trace trigger: %s", trig)
	}
	s.admin.Close()
}

// writeTraceFile dumps the flight recorder as Chrome trace JSON.
func (s *Server) writeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.draining.Load() {
			c.Close()
			continue
		}
		s.connWG.Add(1)
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.total.Add(1)
		s.cConns.Inc()
		s.active.Add(1)
		s.gActive.Set(float64(s.active.Load()))
		go s.serveConn(c)
	}
}

// serveConn runs one connection's request-response loop.
func (s *Server) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		s.active.Add(-1)
		s.gActive.Set(float64(s.active.Load()))
		s.connWG.Done()
	}()

	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	if err := mpi.ReadWireHello(br); err != nil {
		return
	}
	if err := mpi.WriteWireHello(bw); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	var (
		ops  []mpi.WireOp
		reps []mpi.WireReply
	)
	for {
		var batch bool
		var err error
		ops, batch, err = mpi.ReadWireFrame(br, ops)
		if err != nil {
			if isWireDecodeError(err) {
				mpi.WriteWireReply(bw, mpi.WireReply{Status: mpi.WireErr})
				bw.Flush()
			}
			return
		}
		if !batch {
			rep := s.apply(ops[0])
			if err := mpi.WriteWireReply(bw, rep); err != nil {
				return
			}
		} else {
			reps = s.applyBatch(ops, reps)
			for i := range reps {
				if err := mpi.WriteWireReply(bw, reps[i]); err != nil {
					return
				}
			}
		}
		// Flush when the pipeline runs dry: consecutive buffered requests
		// batch their replies into one segment.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// isWireDecodeError distinguishes a malformed frame (worth an error
// reply) from a closed or timed-out connection.
func isWireDecodeError(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	return !errors.As(err, &ne)
}

// hostNS is the daemon's trace clock: host nanoseconds since start
// (the daemon serves real traffic, so its timeline is wall time).
func (s *Server) hostNS() float64 {
	return float64(time.Since(s.start).Nanoseconds())
}

// adoptTrace joins the client-minted trace context riding a wire frame
// (zero when the client is untraced or the recorder is off).
func (s *Server) adoptTrace(op mpi.WireOp, name string) ctrace.Context {
	if op.Trace == 0 {
		return ctrace.Context{}
	}
	pid := int(op.Rank)
	if pid < 0 {
		pid = 0
	}
	return s.tr.Adopt(ctrace.Context{Trace: op.Trace, Parent: op.Span}, pid, name, s.hostNS())
}

// apply executes one wire operation against the engine.
func (s *Server) apply(op mpi.WireOp) mpi.WireReply {
	if ctr := s.cFrames[op.Kind]; ctr != nil {
		ctr.Inc()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(op)
}

// applyBatch executes a batch frame's ops under one lock acquisition,
// appending one reply per op to reps[:0] and returning the result.
// Maximal runs of untraced arrives with fault injection off — the
// serving hot path — bypass the per-op trace/fault plumbing entirely
// and go through the engine's ArriveBatch.
func (s *Server) applyBatch(ops []mpi.WireOp, reps []mpi.WireReply) []mpi.WireReply {
	reps = reps[:0]
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < len(ops); {
		if s.wire == nil && plainArrive(ops[i]) {
			j := i + 1
			for j < len(ops) && plainArrive(ops[j]) {
				j++
			}
			reps = s.applyArriveRun(ops[i:j], reps)
			i = j
			continue
		}
		if ctr := s.cFrames[ops[i].Kind]; ctr != nil {
			ctr.Inc()
		}
		reps = append(reps, s.applyLocked(ops[i]))
		i++
	}
	return reps
}

// plainArrive reports whether the op takes the batched arrive fast
// path: an untraced arrival needs no flight-recorder spans (every
// ctrace call is a no-op on a zero context).
func plainArrive(op mpi.WireOp) bool {
	return op.Kind == mpi.WireArrive && op.Trace == 0
}

// applyArriveRun feeds a run of untraced arrivals through ArriveBatch.
// Caller holds mu and has checked s.wire == nil. Equivalent to
// applyLocked per op: with a zero trace context the recorder calls
// no-op, and SetTraceContext is hoisted to one zero-zero call for the
// run instead of one per op.
func (s *Server) applyArriveRun(ops []mpi.WireOp, reps []mpi.WireReply) []mpi.WireReply {
	s.batchEnvs = s.batchEnvs[:0]
	s.batchMsgs = s.batchMsgs[:0]
	for i := range ops {
		s.batchEnvs = append(s.batchEnvs, match.Envelope{Rank: ops[i].Rank, Tag: ops[i].Tag, Ctx: ops[i].Ctx})
		s.batchMsgs = append(s.batchMsgs, ops[i].Handle)
	}
	s.cfg.PMU.SetTraceContext(0, 0)
	s.batchRes = s.en.ArriveBatch(s.batchEnvs, s.batchMsgs, s.batchRes)
	if ctr := s.cFrames[mpi.WireArrive]; ctr != nil {
		ctr.Add(float64(len(ops)))
	}
	for i := range s.batchRes {
		r := &s.batchRes[i]
		rep := mpi.WireReply{
			Kind:    mpi.WireArrive,
			Status:  mpi.WireOK,
			Outcome: byte(r.Outcome),
			Handle:  r.Req,
			Cycles:  r.Cycles,
		}
		if r.Outcome == engine.ArriveRefused {
			rep.Status = mpi.WireBusy
		}
		reps = append(reps, rep)
	}
	return reps
}

// applyLocked executes one wire operation; the caller holds mu and has
// counted the frame.
func (s *Server) applyLocked(op mpi.WireOp) mpi.WireReply {
	rep := mpi.WireReply{Kind: op.Kind, Status: mpi.WireOK}
	switch op.Kind {
	case mpi.WireArrive:
		tctx := s.adoptTrace(op, fmt.Sprintf("msg tag=%d", op.Tag))
		pid := int(op.Rank)
		if pid < 0 {
			pid = 0
		}
		if s.wire != nil {
			fate := s.wire.Judge()
			if fate.Dropped || fate.Corrupted {
				s.nacks.Add(1)
				s.cNacks.Inc()
				rep.Status = mpi.WireNack
				s.tr.Instant(tctx, ctrace.LaneWire, pid, "ingress-nack", s.hostNS())
				s.tr.MarkFault(tctx.Trace)
				return rep
			}
			if fate.Duplicated {
				// The wire would deliver a second copy; the daemon's dedup
				// (one frame, one engine delivery) suppresses it.
				s.dupSuppressed.Add(1)
				s.cDups.Inc()
				s.tr.Instant(tctx, ctrace.LaneWire, pid, "dup-suppressed", s.hostNS())
				s.tr.MarkFault(tctx.Trace)
			}
		}
		env := match.Envelope{Rank: op.Rank, Tag: op.Tag, Ctx: op.Ctx}
		at := s.hostNS()
		s.cfg.PMU.SetTraceContext(op.Trace, op.Span)
		req, outcome, cy := s.en.ArriveFull(env, op.Handle)
		rep.Outcome = byte(outcome)
		rep.Handle = req
		rep.Cycles = cy
		s.tr.Complete(tctx, ctrace.LaneEngine, pid, "arrive",
			at, s.en.CyclesToNanos(cy),
			ctrace.KV{K: "outcome", V: outcome.String()})
		switch outcome {
		case engine.ArriveRefused:
			rep.Status = mpi.WireBusy
			s.tr.Instant(tctx, ctrace.LaneDaemon, pid, "busy-nack", s.hostNS())
			s.tr.MarkFault(tctx.Trace)
		case engine.ArriveMatched:
			s.tr.Finish(tctx.Trace, s.hostNS(), "matched")
		}
	case mpi.WirePost:
		tctx := s.adoptTrace(op, fmt.Sprintf("msg tag=%d", op.Tag))
		pid := int(op.Rank)
		if pid < 0 {
			pid = 0
		}
		at := s.hostNS()
		msg, matched, cy := s.en.PostRecv(int(op.Rank), int(op.Tag), op.Ctx, op.Handle)
		if matched {
			rep.Outcome = 1
			rep.Handle = msg
		}
		rep.Cycles = cy
		s.tr.Complete(tctx, ctrace.LaneEngine, pid, "post",
			at, s.en.CyclesToNanos(cy),
			ctrace.KV{K: "matched", V: fmt.Sprintf("%v", matched)})
		if matched {
			s.tr.Finish(tctx.Trace, s.hostNS(), "matched")
		}
	case mpi.WirePhase:
		s.en.BeginComputePhase(op.DurationNS)
		if s.tr != nil {
			if ht := s.en.Heater(); ht != nil {
				s.tr.Counter("heater", s.hostNS(),
					ctrace.CV{K: "sweeps", V: float64(ht.Sweeps())},
					ctrace.CV{K: "coverage", V: ht.LastSweepCoverage()})
			}
		}
	case mpi.WireStat:
		rep.PRQLen = uint32(s.en.PRQLen())
		rep.UMQLen = uint32(s.en.UMQLen())
	case mpi.WirePing:
	default:
		rep.Status = mpi.WireErr
	}
	return rep
}

// Stats is a point-in-time snapshot of serving activity.
type Stats struct {
	ConnectionsActive int64
	ConnectionsTotal  uint64
	Nacks             uint64
	DupSuppressed     uint64
}

// Stats returns current serving tallies.
func (s *Server) Stats() Stats {
	return Stats{
		ConnectionsActive: s.active.Load(),
		ConnectionsTotal:  s.total.Load(),
		Nacks:             s.nacks.Load(),
		DupSuppressed:     s.dupSuppressed.Load(),
	}
}

// String renders a one-line summary for logs.
func (s Stats) String() string {
	return fmt.Sprintf("conns=%d/%d nacks=%d dups=%d",
		s.ConnectionsActive, s.ConnectionsTotal, s.Nacks, s.DupSuppressed)
}
