// Package daemon turns the matching engine into a long-running serving
// system: engine instances (with their heaters, telemetry collector,
// and simulated PMU lanes attached for the life of the process) served
// to many concurrent client connections over the internal/mpi socket
// wire protocol, with a live HTTP admin plane.
//
// The paper's claim — semi-permanent cache occupancy pays off — is a
// statement about persistent network services, not run-to-completion
// benchmarks. The daemon is where that setting exists in this repo:
// match traffic arrives over real TCP for hours, the telemetry registry
// is scraped live by Prometheus (/metrics), and a one-shot diagnostic
// bundle (/debug/profile) captures host pprof profiles alongside the
// simulated PMU's perf-stat report, so cache-residency behaviour under
// sustained load is observable without stopping the process.
//
// Concurrency model: each engine, with its heater, PMU lane, and
// ingress fault wire, is single-threaded by design; the server hosts
// Config.Shards such lanes (default 1) and serializes each behind its
// own mutex, routing every operation by communicator context
// (ctx → shard, see shard.go). Connection handling, the admin plane,
// and the telemetry registry are fully concurrent — the registry and
// sampler are safe to scrape while operations mutate them. A
// connection-level credit window (Config.Window) bounds how many
// operations one client frame may carry; the window rides back to the
// client in every reply's Credits field.
//
// Lifecycle: Run serves until the first signal (SIGTERM/SIGINT), then
// drains gracefully — the listener closes, /readyz flips to 503,
// in-flight connections get DrainTimeout to finish, exporters flush,
// and the final perf-stat report is emitted. A second signal during the
// drain forces shutdown with ErrForced (a nonzero exit in spco-daemon).
package daemon

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spco/internal/ctrace"
	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/match"
	"spco/internal/mpi"
	"spco/internal/perf"
	"spco/internal/recov"
	"spco/internal/telemetry"
)

// Version identifies the build in spco_build_info and /status;
// overridable at link time:
//
//	go build -ldflags "-X spco/internal/daemon.Version=v1.2.3"
var Version = "dev"

// ErrForced reports a shutdown forced by a second signal during the
// graceful drain; commands should exit nonzero.
var ErrForced = errors.New("daemon: forced shutdown before drain completed")

// DefaultDrainTimeout bounds the graceful drain.
const DefaultDrainTimeout = 5 * time.Second

// Config describes a daemon.
type Config struct {
	// Engine is the hosted engines' configuration. Telemetry must carry
	// the collector the admin plane scrapes (New fills it from Collector
	// when unset).
	Engine engine.Config

	// Shards is the number of per-context engine lanes match traffic is
	// partitioned across (ctx → shard, see shard.go). Default 1: a
	// single lane, bit-identical to the pre-sharding daemon. Each MPI
	// context lives wholly on one shard, so sharding never changes match
	// results — only which engine's queues and cache state a context's
	// traffic touches.
	Shards int

	// Window is the per-connection credit window: the most operations
	// one wire frame may carry into the engines. Ops beyond the window
	// earn WireBusy without being applied, and every reply advertises
	// the window in its Credits field so clients clamp their batch size.
	// 0 (the default) disables windowing.
	Window int

	// ListenAddr accepts match traffic ("127.0.0.1:0" picks a port);
	// AdminAddr serves the HTTP admin plane.
	ListenAddr string
	AdminAddr  string

	// Collector receives engine telemetry and the daemon's own serving
	// metrics; /metrics exports it live. Required.
	Collector *telemetry.Collector

	// PMU is the simulated performance-monitoring unit attached to the
	// engine for the life of the process; /debug/profile bundles its
	// perf-stat report and profiles. Optional.
	PMU *perf.PMU

	// Wire, when enabled, applies the unreliable-wire fate model to
	// inbound arrive frames at ingress: dropped or corrupted frames earn
	// a WireNack the client must retransmit, duplicated frames are
	// delivered once and counted as suppressed — the daemon-shaped
	// analogue of the fault transport's lossy link.
	Wire fault.WireConfig

	// FaultSeed seeds the ingress wire (default 1).
	FaultSeed uint64

	// DrainTimeout bounds the graceful drain (default
	// DefaultDrainTimeout).
	DrainTimeout time.Duration

	// MetricsOut and SeriesOut, when set, receive a final export of the
	// registry and sampler during shutdown (the exporter flush).
	MetricsOut string
	SeriesOut  string

	// PerfOut receives the final perf-stat report on shutdown (default
	// os.Stdout; io.Discard silences it).
	PerfOut io.Writer

	// JournalDir, when set, turns on the crash-recovery spine
	// (recovery.go): per-shard append-only op journals and the snapshot
	// file live there. Empty (the default) disables journaling entirely —
	// the serving path pays only nil checks.
	JournalDir string

	// Recover makes New rebuild engine state from JournalDir before
	// serving: snapshot restore, then journal-tail replay. A missing
	// snapshot and empty journals are a clean first boot, so -recover is
	// safe to pass always.
	Recover bool

	// SnapshotEvery is the periodic snapshot cadence (0: only explicit
	// WriteSnapshot calls). Requires JournalDir.
	SnapshotEvery time.Duration

	// JournalSync fsyncs each shard journal every that many records
	// (default 64). Process crashes lose nothing regardless — every
	// record is a single write(2) — the cadence only bounds loss on
	// power failure.
	JournalSync int

	// WatchdogDeadline flags a shard lane wedged when its lock has been
	// held this long (default DefaultWatchdogDeadline); WatchdogInterval
	// is the sweep cadence (default deadline/4, at most 1s). A wedged
	// lane flips /readyz to 503 and raises spco_shard_wedged.
	WatchdogDeadline time.Duration
	WatchdogInterval time.Duration

	// AdminReadHeaderTimeout bounds how long the admin HTTP server waits
	// for a request's headers (default 5s); it is the slow-loris guard
	// on the admin plane.
	AdminReadHeaderTimeout time.Duration

	// Trace is the causal-trace flight recorder. Nil gets a default
	// always-on recorder (bounded, tail-retained) so /debug/trace works
	// on every daemon; supply one to tune capacity/retention.
	Trace *ctrace.Recorder

	// TraceOut, when set, receives a final Chrome trace-event JSON dump
	// of the flight recorder during shutdown.
	TraceOut string

	// Logf logs serving events (default: silent).
	Logf func(format string, args ...any)
}

// Server is a running daemon.
type Server struct {
	cfg Config

	// shards are the per-context serving lanes; each owns its own
	// single-threaded simulation stack behind its own mutex (shard.go).
	shards []*shard
	tr     *ctrace.Recorder

	ln      net.Listener
	adminLn net.Listener
	admin   *http.Server

	start    time.Time
	ready    atomic.Bool
	draining atomic.Bool
	quit     chan struct{} // Stop() closes: begin graceful drain
	quitOnce sync.Once

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	// drainDeadline is the read deadline beginDrain hands every
	// connection; guarded by connMu so a connection registering while
	// the drain begins still picks it up (see register).
	drainDeadline time.Time
	connWG        sync.WaitGroup

	// Serving tallies, mirrored into registry counters so a live scrape
	// sees them without a publish step.
	active        atomic.Int64
	total         atomic.Uint64
	nacks         atomic.Uint64
	dupSuppressed atomic.Uint64
	creditStalls  atomic.Uint64

	cFrames map[byte]*telemetry.Counter
	cNacks  *telemetry.Counter
	cDups   *telemetry.Counter
	cConns  *telemetry.Counter
	cStalls *telemetry.Counter
	gActive *telemetry.Gauge
	gUptime *telemetry.Gauge

	// Crash-recovery spine (recovery.go; sessions is always built so
	// session handshakes work with or without journaling).
	sessions     *sessionTable
	recRecovered atomic.Bool   // this boot replayed recovered state
	recReplayed  atomic.Uint64 // journal records replayed at boot
	recSnapshots atomic.Uint64 // snapshots written this boot
	recLastSnap  atomic.Int64  // unix nanos of the last snapshot
	recResumed   atomic.Uint64 // sessions resumed over the wire
	recReplays   atomic.Uint64 // duplicate ops answered from session rings
	cReplayed    *telemetry.Counter
	cSnapshots   *telemetry.Counter
	cResumed     *telemetry.Counter
	cReplays     *telemetry.Counter
	gWedged      *telemetry.Gauge

	profileBusy atomic.Bool
}

// New builds a daemon and binds both listeners (so Addr/AdminAddr are
// known before Run). The engine is constructed here; a bad engine
// configuration fails fast.
func New(cfg Config) (*Server, error) {
	if cfg.Collector == nil {
		return nil, errors.New("daemon: Config.Collector is required")
	}
	if err := cfg.Wire.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards < 0 || cfg.Shards > 256 {
		return nil, fmt.Errorf("daemon: Config.Shards = %d (want 0..256)", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Window < 0 || cfg.Window > 65535 {
		return nil, fmt.Errorf("daemon: Config.Window = %d (want 0..65535, the credit field's range)", cfg.Window)
	}
	if cfg.Engine.Telemetry == nil {
		cfg.Engine.Telemetry = cfg.Collector
	}
	if cfg.Engine.Perf == nil {
		cfg.Engine.Perf = cfg.PMU
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.FaultSeed == 0 {
		cfg.FaultSeed = 1
	}
	if cfg.PerfOut == nil {
		cfg.PerfOut = os.Stdout
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Trace == nil {
		// The flight recorder is always on: bounded, tail-retained, and
		// dumpable at any moment via /debug/trace.
		cfg.Trace = ctrace.New(ctrace.Options{})
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.AdminAddr == "" {
		cfg.AdminAddr = "127.0.0.1:0"
	}
	if cfg.Recover && cfg.JournalDir == "" {
		return nil, errors.New("daemon: Config.Recover requires Config.JournalDir")
	}
	if cfg.SnapshotEvery > 0 && cfg.JournalDir == "" {
		return nil, errors.New("daemon: Config.SnapshotEvery requires Config.JournalDir")
	}
	if cfg.WatchdogDeadline <= 0 {
		cfg.WatchdogDeadline = DefaultWatchdogDeadline
	}
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = cfg.WatchdogDeadline / 4
		if cfg.WatchdogInterval > time.Second {
			cfg.WatchdogInterval = time.Second
		}
	}
	if cfg.AdminReadHeaderTimeout <= 0 {
		cfg.AdminReadHeaderTimeout = 5 * time.Second
	}

	s := &Server{
		cfg: cfg,
		tr:  cfg.Trace,
		// The trace clock starts here, once: flight-recorder events from
		// traffic arriving between New and Run (tests drive this) must
		// share the timeline of everything after, not jump backwards.
		start: time.Now(),
		quit:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	shards, err := newShards(s, cfg)
	if err != nil {
		return nil, err
	}
	s.shards = shards

	reg := cfg.Collector.Registry
	reg.Help("spco_recovery_replayed_ops_total", "Journal records replayed into the engines at boot.")
	reg.Help("spco_recovery_snapshots_total", "State snapshots written.")
	reg.Help("spco_recovery_sessions_resumed_total", "Client sessions resumed over the wire.")
	reg.Help("spco_recovery_dup_replays_total", "Duplicate sequenced ops answered from session reply rings.")
	reg.Help("spco_shard_wedged", "Serving lanes currently flagged wedged by the watchdog.")
	s.cReplayed = reg.Counter("spco_recovery_replayed_ops_total", nil)
	s.cSnapshots = reg.Counter("spco_recovery_snapshots_total", nil)
	s.cResumed = reg.Counter("spco_recovery_sessions_resumed_total", nil)
	s.cReplays = reg.Counter("spco_recovery_dup_replays_total", nil)
	s.gWedged = reg.Gauge("spco_shard_wedged", nil)

	if s.journaling() {
		if err := s.setupRecovery(); err != nil {
			return nil, err
		}
	} else {
		s.sessions = newSessionTable()
	}
	reg.Help("spco_daemon_frames_total", "Wire frames served by operation.")
	reg.Help("spco_daemon_nacks_total", "Arrive frames refused at ingress by fault injection.")
	reg.Help("spco_daemon_dups_suppressed_total", "Duplicated arrive frames delivered once.")
	reg.Help("spco_daemon_connections_total", "Client connections accepted.")
	reg.Help("spco_daemon_connections_active", "Client connections currently open.")
	reg.Help("spco_daemon_uptime_seconds", "Seconds since the daemon started serving.")
	reg.Help("spco_region_residency", "Cache-residency fraction by region owner and level, refreshed per scrape.")
	s.cFrames = map[byte]*telemetry.Counter{
		mpi.WireArrive: reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "arrive"}),
		mpi.WirePost:   reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "post"}),
		mpi.WirePhase:  reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "phase"}),
		mpi.WireStat:   reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "stat"}),
		mpi.WirePing:   reg.Counter("spco_daemon_frames_total", telemetry.Labels{"op": "ping"}),
	}
	reg.Help("spco_daemon_credit_stalls_total", "Operations refused for exceeding the per-connection credit window.")
	s.cNacks = reg.Counter("spco_daemon_nacks_total", nil)
	s.cDups = reg.Counter("spco_daemon_dups_suppressed_total", nil)
	s.cConns = reg.Counter("spco_daemon_connections_total", nil)
	s.cStalls = reg.Counter("spco_daemon_credit_stalls_total", nil)
	s.gActive = reg.Gauge("spco_daemon_connections_active", nil)
	s.gUptime = reg.Gauge("spco_daemon_uptime_seconds", nil)
	reg.Help("spco_build_info", "Build identity (constant 1; the labels carry the information).")
	reg.Gauge("spco_build_info",
		telemetry.Labels{"version": Version, "go": runtime.Version()}).Set(1)

	if s.ln, err = net.Listen("tcp", cfg.ListenAddr); err != nil {
		return nil, err
	}
	if s.adminLn, err = net.Listen("tcp", cfg.AdminAddr); err != nil {
		s.ln.Close()
		return nil, err
	}
	// The admin plane faces operators and scrapers, not the wire
	// protocol's framing discipline — bound every phase of an HTTP
	// exchange so a stalled or malicious peer cannot pin a connection.
	// WriteTimeout must clear the longest legitimate response:
	// /debug/profile's CPU capture is clamped to 30s (profile.go).
	s.admin = &http.Server{
		Handler:           s.adminMux(),
		ReadHeaderTimeout: cfg.AdminReadHeaderTimeout,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      90 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 16,
	}

	// Host lock contention and blocking are part of the diagnostic story
	// for a serving system; sample them so mutex.pprof and block.pprof in
	// the profile bundle have something to say.
	runtime.SetMutexProfileFraction(5)
	runtime.SetBlockProfileRate(1_000_000)
	return s, nil
}

// Addr returns the bound match-traffic address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AdminAddr returns the bound admin-plane address.
func (s *Server) AdminAddr() string { return s.adminLn.Addr().String() }

// Engine exposes shard 0's engine (the only one when Shards is 1);
// callers must not drive it while the server is running (the server
// owns the serialization).
func (s *Server) Engine() *engine.Engine { return s.shards[0].en }

// ShardCount reports the number of serving lanes.
func (s *Server) ShardCount() int { return len(s.shards) }

// ShardEngine exposes shard i's engine, under the same no-driving
// contract as Engine.
func (s *Server) ShardEngine(i int) *engine.Engine { return s.shards[i].en }

// Stop begins the graceful drain, as the first SIGTERM would.
func (s *Server) Stop() { s.quitOnce.Do(func() { close(s.quit) }) }

// Run serves until the first delivered signal (or Stop), then drains:
// the listener closes, readiness flips, in-flight connections get
// DrainTimeout to finish, exporters flush, and the final perf-stat is
// emitted. A second signal during the drain forces shutdown and returns
// ErrForced. A nil signal channel serves until Stop.
func (s *Server) Run(signals <-chan os.Signal) error {
	go s.admin.Serve(s.adminLn)
	go s.acceptLoop()
	go s.watchdogLoop()
	if s.journaling() && s.cfg.SnapshotEvery > 0 {
		go s.snapshotLoop()
	}
	s.ready.Store(true)
	s.cfg.Logf("daemon: serving match traffic on %s, admin on %s", s.Addr(), s.AdminAddr())

	select {
	case sig := <-signals:
		s.cfg.Logf("daemon: received %v, draining (timeout %s)", sig, s.cfg.DrainTimeout)
	case <-s.quit:
		s.cfg.Logf("daemon: stop requested, draining (timeout %s)", s.cfg.DrainTimeout)
	}
	s.beginDrain()

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.finish()
		s.cfg.Logf("daemon: drain complete")
		return nil
	case sig := <-signals:
		s.cfg.Logf("daemon: received %v during drain, forcing shutdown", sig)
		s.forceClose()
		return ErrForced
	}
}

// beginDrain stops accepting and bounds the remaining connections. The
// drain deadline is published and the draining flag flipped inside the
// same connMu critical section that sweeps the conn table, so register
// and this sweep fully serialize: every connection either is in the
// table here (and gets its deadline from the sweep) or registers after
// and sees draining already true (and applies the deadline itself).
// Before this interlock, a connection accepted after the draining check
// but registered after the sweep never got a deadline and could hang
// the graceful drain until forced shutdown.
func (s *Server) beginDrain() {
	s.ready.Store(false)
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	s.connMu.Lock()
	s.drainDeadline = deadline
	s.draining.Store(true)
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.connMu.Unlock()
	s.ln.Close()
}

// forceClose tears down every connection immediately.
func (s *Server) forceClose() {
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.connWG.Wait()
	s.admin.Close()
}

// finish flushes exporters and emits the final perf-stat reports. The
// journals are synced and closed but no final snapshot is taken — the
// journal alone fully reconstructs the state, and skipping the
// snapshot keeps the graceful-stop path exercising the same replay
// machinery a crash does.
func (s *Server) finish() {
	if s.journaling() {
		s.closeJournals()
	}
	for _, sh := range s.shards {
		sh.lock()
		sh.en.PublishTelemetry()
		sh.refreshGaugesLocked()
		if sh.pmu != nil {
			sh.pmu.Publish(s.cfg.Collector.Registry, s.pmuBase(sh.idx))
		}
		sh.unlock()
	}
	s.gUptime.Set(time.Since(s.start).Seconds())
	s.gActive.Set(float64(s.active.Load()))

	if s.cfg.MetricsOut != "" {
		if err := telemetry.WriteMetricsFile(s.cfg.MetricsOut, s.cfg.Collector); err != nil {
			s.cfg.Logf("daemon: metrics flush: %v", err)
		}
	}
	if s.cfg.SeriesOut != "" {
		if err := telemetry.WriteSeriesFile(s.cfg.SeriesOut, s.cfg.Collector); err != nil {
			s.cfg.Logf("daemon: series flush: %v", err)
		}
	}
	for _, sh := range s.shards {
		if sh.pmu == nil {
			continue
		}
		sh.lock()
		sh.pmu.WriteReport(s.cfg.PerfOut)
		sh.unlock()
	}
	if s.cfg.TraceOut != "" {
		if err := s.writeTraceFile(s.cfg.TraceOut); err != nil {
			s.cfg.Logf("daemon: trace flush: %v", err)
		}
	}
	for _, trig := range s.tr.Triggered() {
		s.cfg.Logf("daemon: trace trigger: %s", trig)
	}
	s.admin.Close()
}

// writeTraceFile dumps the flight recorder as Chrome trace JSON.
func (s *Server) writeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// acceptLoop admits connections until the listener closes.
func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		if s.draining.Load() {
			c.Close()
			continue
		}
		s.connWG.Add(1)
		s.register(c)
		s.total.Add(1)
		s.cConns.Inc()
		// Publish the Add result, not a separate Load: with a second
		// racing Load the two gauge writes could land out of order and
		// leave the gauge stale.
		s.gActive.Set(float64(s.active.Add(1)))
		go s.serveConn(c)
	}
}

// register adds a connection to the conn table. If a drain began
// between acceptLoop's draining check and this registration, the sweep
// in beginDrain has already run — so the drain deadline is applied
// here, under the same lock, closing the window where a late-registered
// connection could outlive the drain unbounded.
func (s *Server) register(c net.Conn) {
	s.connMu.Lock()
	s.conns[c] = struct{}{}
	if s.draining.Load() {
		c.SetReadDeadline(s.drainDeadline)
	}
	s.connMu.Unlock()
}

// serveConn runs one connection's request-response loop.
func (s *Server) serveConn(c net.Conn) {
	defer func() {
		c.Close()
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		s.gActive.Set(float64(s.active.Add(-1)))
		s.connWG.Done()
	}()

	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	hello, err := mpi.ReadWireHello(br)
	if err != nil {
		return
	}
	// Resolve the connection's session. Ephemeral connections (the
	// default, and the whole pre-v4 world) get no dedup state and pay
	// nothing for the machinery; WireSessNew mints an identity;
	// WireSessResume reattaches to one, telling the client the highest
	// sequenced op the server has applied so the client re-sends only
	// the gap. An unknown session id (state lost, e.g. recovery without
	// a journal) is answered WireWelcomeLost and the connection closed —
	// resuming blind would silently break exactly-once.
	var sess *session
	welcome := mpi.WireWelcome{Status: mpi.WireWelcomeEphemeral}
	switch hello.Mode {
	case mpi.WireSessNew:
		sess = s.sessions.create()
		welcome = mpi.WireWelcome{Status: mpi.WireWelcomeNew, Session: sess.id}
	case mpi.WireSessResume:
		if got, ok := s.sessions.resume(hello.Session); ok {
			sess = got
			welcome = mpi.WireWelcome{Status: mpi.WireWelcomeResumed,
				Session: sess.id, HighWater: sess.highWater()}
			s.recResumed.Add(1)
			s.cResumed.Inc()
		} else {
			welcome = mpi.WireWelcome{Status: mpi.WireWelcomeLost, Session: hello.Session}
		}
	}
	if err := mpi.WriteWireWelcome(bw, welcome); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	if welcome.Status == mpi.WireWelcomeLost {
		return
	}
	var sid uint64
	if sess != nil {
		sid = sess.id
	}

	// The credit window: at most window ops per frame reach the engines;
	// the rest earn WireBusy unapplied, and every reply advertises the
	// window so a well-behaved client clamps its batches before ever
	// stalling (0 = windowing off).
	window := s.cfg.Window
	credits := uint16(window)

	var (
		ops  []mpi.WireOp
		reps []mpi.WireReply
	)
	for {
		var batch bool
		var err error
		ops, batch, err = mpi.ReadWireFrame(br, ops)
		if err != nil {
			if isWireDecodeError(err) {
				mpi.WriteWireReply(bw, mpi.WireReply{Status: mpi.WireErr, Credits: credits})
				bw.Flush()
			}
			return
		}
		if !batch {
			op := ops[0]
			rep, replayed := s.dedup(sess, op)
			if !replayed {
				rep = s.apply(op, sid)
				if sess != nil && op.Seq != 0 {
					sess.record(op.Seq, rep)
				}
			}
			rep.Credits = credits
			if err := mpi.WriteWireReply(bw, rep); err != nil {
				return
			}
		} else {
			admitted := ops
			if window > 0 && len(ops) > window {
				admitted = ops[:window]
			}
			if sess == nil {
				reps = s.applyBatch(admitted, reps)
			} else {
				reps = s.applyBatchSession(admitted, reps, sess)
			}
			if stalled := len(ops) - len(admitted); stalled > 0 {
				s.creditStalls.Add(uint64(stalled))
				s.cStalls.Add(float64(stalled))
				for _, op := range ops[len(admitted):] {
					reps = append(reps, mpi.WireReply{Kind: op.Kind, Status: mpi.WireBusy})
				}
			}
			for i := range reps {
				reps[i].Credits = credits
				if err := mpi.WriteWireReply(bw, reps[i]); err != nil {
					return
				}
			}
		}
		// Flush when the pipeline runs dry: consecutive buffered requests
		// batch their replies into one segment.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// isWireDecodeError distinguishes a malformed frame (worth an error
// reply) from a closed or timed-out connection. A batch frame that
// promised N ops and truncated mid-payload is malformed — the client
// gets exactly one WireErr for the whole frame — even though the
// underlying read error is an EOF.
func isWireDecodeError(err error) bool {
	if errors.Is(err, mpi.ErrBatchTruncated) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return false
	}
	var ne net.Error
	return !errors.As(err, &ne)
}

// hostNS is the daemon's trace clock: host nanoseconds since start
// (the daemon serves real traffic, so its timeline is wall time).
func (s *Server) hostNS() float64 {
	return float64(time.Since(s.start).Nanoseconds())
}

// adoptTrace joins the client-minted trace context riding a wire frame
// (zero when the client is untraced or the recorder is off).
func (s *Server) adoptTrace(op mpi.WireOp, name string) ctrace.Context {
	if op.Trace == 0 {
		return ctrace.Context{}
	}
	pid := int(op.Rank)
	if pid < 0 {
		pid = 0
	}
	return s.tr.Adopt(ctrace.Context{Trace: op.Trace, Parent: op.Span}, pid, name, s.hostNS())
}

// dedup answers a sequenced op from the session's reply ring when the
// server has already applied it — the exactly-once half of session
// resume. A ring miss (including a seq at or below the high-water mark
// whose reply was evicted or never recorded, e.g. an ingress NACK that
// was never journaled) applies fresh, which is correct in every
// re-send case: the client only re-sends ops it never saw answered.
func (s *Server) dedup(sess *session, op mpi.WireOp) (mpi.WireReply, bool) {
	if sess == nil || op.Seq == 0 {
		return mpi.WireReply{}, false
	}
	rep, ok := sess.lookup(op.Seq)
	if ok {
		s.recReplays.Add(1)
		s.cReplays.Inc()
	}
	return rep, ok
}

// apply executes one wire operation for session sid (0: ephemeral).
func (s *Server) apply(op mpi.WireOp, sid uint64) mpi.WireReply {
	if ctr := s.cFrames[op.Kind]; ctr != nil {
		ctr.Inc()
	}
	switch op.Kind {
	case mpi.WireArrive, mpi.WirePost:
		sh := s.shardFor(op.Ctx)
		sh.lock()
		defer sh.unlock()
		sh.sid = sid
		sh.frames(1)
		return sh.applyLocked(op)
	case mpi.WirePhase:
		return s.applyPhase(op, sid)
	case mpi.WireStat:
		return s.applyStat()
	case mpi.WirePing:
		return mpi.WireReply{Kind: op.Kind, Status: mpi.WireOK}
	default:
		return mpi.WireReply{Kind: op.Kind, Status: mpi.WireErr}
	}
}

// applyBatch executes an ephemeral connection's batch frame, appending
// one reply per op to reps[:0] and returning the result.
func (s *Server) applyBatch(ops []mpi.WireOp, reps []mpi.WireReply) []mpi.WireReply {
	return s.appendBatch(ops, reps[:0], 0)
}

// applyBatchSession executes a session connection's batch frame:
// sequenced ops the ring already answered are replayed from it without
// touching an engine, and the fresh runs in between go through the
// normal batch path with their replies recorded as they are produced.
func (s *Server) applyBatchSession(ops []mpi.WireOp, reps []mpi.WireReply, sess *session) []mpi.WireReply {
	reps = reps[:0]
	for i := 0; i < len(ops); {
		if rep, ok := s.dedup(sess, ops[i]); ok {
			reps = append(reps, rep)
			i++
			continue
		}
		j := i + 1
		for j < len(ops) {
			if ops[j].Seq != 0 {
				if _, ok := sess.lookup(ops[j].Seq); ok {
					break
				}
			}
			j++
		}
		base := len(reps)
		reps = s.appendBatch(ops[i:j], reps, sess.id)
		for k := i; k < j; k++ {
			if ops[k].Seq != 0 {
				sess.record(ops[k].Seq, reps[base+k-i])
			}
		}
		i = j
	}
	return reps
}

// appendBatch executes a batch frame's ops, appending one reply per
// op. Consecutive arrives and posts landing on the same shard are
// applied as one run under a single lock acquisition (taking the
// ArriveBatch fast path where eligible, see shard.applyRun); phases,
// stats, and pings fall back to their cross-shard scalar handling.
// Replies stay in op order throughout.
func (s *Server) appendBatch(ops []mpi.WireOp, reps []mpi.WireReply, sid uint64) []mpi.WireReply {
	for i := 0; i < len(ops); {
		switch ops[i].Kind {
		case mpi.WireArrive, mpi.WirePost:
			sh := s.shardFor(ops[i].Ctx)
			j := i + 1
			for j < len(ops) && routedTo(ops[j], sh, s) {
				j++
			}
			reps = sh.applyRun(ops[i:j], reps, sid)
			i = j
		default:
			if ctr := s.cFrames[ops[i].Kind]; ctr != nil {
				ctr.Inc()
			}
			switch ops[i].Kind {
			case mpi.WirePhase:
				reps = append(reps, s.applyPhase(ops[i], sid))
			case mpi.WireStat:
				reps = append(reps, s.applyStat())
			case mpi.WirePing:
				reps = append(reps, mpi.WireReply{Kind: mpi.WirePing, Status: mpi.WireOK})
			default:
				reps = append(reps, mpi.WireReply{Kind: ops[i].Kind, Status: mpi.WireErr})
			}
			i++
		}
	}
	return reps
}

// routedTo reports whether the op is ctx-routable and lands on sh.
func routedTo(op mpi.WireOp, sh *shard, s *Server) bool {
	return (op.Kind == mpi.WireArrive || op.Kind == mpi.WirePost) && s.shardFor(op.Ctx) == sh
}

// applyPhase runs one compute phase on every shard, in index order,
// one lock at a time: a phase models the application going compute-
// bound, which perturbs every lane's cache state, not one context's.
// With Shards=1 this is exactly the pre-sharding phase handling.
// Because a phase touches every lane, it is journaled into every
// shard's journal — each journal independently replays to its lane's
// full history.
func (s *Server) applyPhase(op mpi.WireOp, sid uint64) mpi.WireReply {
	for _, sh := range s.shards {
		sh.lock()
		sh.frames(1)
		sh.en.BeginComputePhase(op.DurationNS)
		if sh.jw != nil {
			if err := sh.jw.Append(recov.JournalRecord{Session: sid, Op: op}); err != nil {
				s.cfg.Logf("daemon: shard %d journal append: %v", sh.idx, err)
			}
		}
		if s.tr != nil {
			if ht := sh.en.Heater(); ht != nil {
				s.tr.Counter(sh.heaterTrack, s.hostNS(),
					ctrace.CV{K: "sweeps", V: float64(ht.Sweeps())},
					ctrace.CV{K: "coverage", V: ht.LastSweepCoverage()})
			}
		}
		sh.unlock()
	}
	return mpi.WireReply{Kind: mpi.WirePhase, Status: mpi.WireOK}
}

// applyStat sums queue depths across the shards, one lock at a time:
// the wire-visible depth is the daemon total, so clients (and the
// chaos queue-drain audit) see one figure regardless of shard count.
func (s *Server) applyStat() mpi.WireReply {
	rep := mpi.WireReply{Kind: mpi.WireStat, Status: mpi.WireOK}
	var prq, umq int
	for _, sh := range s.shards {
		sh.lock()
		prq += sh.en.PRQLen()
		umq += sh.en.UMQLen()
		sh.unlock()
	}
	rep.PRQLen = uint32(prq)
	rep.UMQLen = uint32(umq)
	return rep
}

// applyLocked executes one ctx-routed wire operation (arrive or post)
// on this shard; the caller holds sh.mu and has counted the frame.
func (sh *shard) applyLocked(op mpi.WireOp) mpi.WireReply {
	s := sh.srv
	rep := mpi.WireReply{Kind: op.Kind, Status: mpi.WireOK}
	switch op.Kind {
	case mpi.WireArrive:
		tctx := s.adoptTrace(op, fmt.Sprintf("msg tag=%d", op.Tag))
		pid := int(op.Rank)
		if pid < 0 {
			pid = 0
		}
		if sh.wire != nil {
			fate := sh.wire.Judge()
			if fate.Dropped || fate.Corrupted {
				s.nacks.Add(1)
				s.cNacks.Inc()
				rep.Status = mpi.WireNack
				s.tr.Instant(tctx, ctrace.LaneWire, pid, "ingress-nack", s.hostNS())
				s.tr.MarkFault(tctx.Trace)
				return rep
			}
			if fate.Duplicated {
				// The wire would deliver a second copy; the daemon's dedup
				// (one frame, one engine delivery) suppresses it.
				s.dupSuppressed.Add(1)
				s.cDups.Inc()
				s.tr.Instant(tctx, ctrace.LaneWire, pid, "dup-suppressed", s.hostNS())
				s.tr.MarkFault(tctx.Trace)
			}
		}
		env := match.Envelope{Rank: op.Rank, Tag: op.Tag, Ctx: op.Ctx}
		at := s.hostNS()
		sh.pmu.SetTraceContext(op.Trace, op.Span)
		req, outcome, cy := sh.en.ArriveFull(env, op.Handle)
		rep.Outcome = byte(outcome)
		rep.Handle = req
		rep.Cycles = cy
		s.tr.Complete(tctx, ctrace.LaneEngine, pid, "arrive",
			at, sh.en.CyclesToNanos(cy),
			ctrace.KV{K: "outcome", V: outcome.String()})
		switch outcome {
		case engine.ArriveRefused:
			rep.Status = mpi.WireBusy
			s.tr.Instant(tctx, ctrace.LaneDaemon, pid, "busy-nack", s.hostNS())
			s.tr.MarkFault(tctx.Trace)
		case engine.ArriveMatched:
			s.tr.Finish(tctx.Trace, s.hostNS(), "matched")
		}
		// The arrive reached the engine (refusals included — they tick
		// engine counters); ingress NACKs returned above and stay out of
		// the journal.
		sh.noteApplied(op, rep)
	case mpi.WirePost:
		tctx := s.adoptTrace(op, fmt.Sprintf("msg tag=%d", op.Tag))
		pid := int(op.Rank)
		if pid < 0 {
			pid = 0
		}
		at := s.hostNS()
		msg, matched, cy := sh.en.PostRecv(int(op.Rank), int(op.Tag), op.Ctx, op.Handle)
		if matched {
			rep.Outcome = 1
			rep.Handle = msg
		}
		rep.Cycles = cy
		s.tr.Complete(tctx, ctrace.LaneEngine, pid, "post",
			at, sh.en.CyclesToNanos(cy),
			ctrace.KV{K: "matched", V: fmt.Sprintf("%v", matched)})
		if matched {
			s.tr.Finish(tctx.Trace, s.hostNS(), "matched")
		}
		sh.noteApplied(op, rep)
	default:
		rep.Status = mpi.WireErr
	}
	return rep
}

// pmuBase labels a shard's PMU publication: the collector's base
// labels, plus the shard index when more than one lane publishes (a
// one-shard daemon publishes exactly what the pre-sharding one did).
func (s *Server) pmuBase(idx int) telemetry.Labels {
	if len(s.shards) == 1 {
		return s.cfg.Collector.Base
	}
	base := make(telemetry.Labels, len(s.cfg.Collector.Base)+1)
	for k, v := range s.cfg.Collector.Base {
		base[k] = v
	}
	base["shard"] = strconv.Itoa(idx)
	return base
}

// Stats is a point-in-time snapshot of serving activity.
type Stats struct {
	ConnectionsActive int64
	ConnectionsTotal  uint64
	Nacks             uint64
	DupSuppressed     uint64
	CreditStalls      uint64
}

// Stats returns current serving tallies.
func (s *Server) Stats() Stats {
	return Stats{
		ConnectionsActive: s.active.Load(),
		ConnectionsTotal:  s.total.Load(),
		Nacks:             s.nacks.Load(),
		DupSuppressed:     s.dupSuppressed.Load(),
		CreditStalls:      s.creditStalls.Load(),
	}
}

// String renders a one-line summary for logs.
func (s Stats) String() string {
	return fmt.Sprintf("conns=%d/%d nacks=%d dups=%d stalls=%d",
		s.ConnectionsActive, s.ConnectionsTotal, s.Nacks, s.DupSuppressed, s.CreditStalls)
}
