package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"spco/internal/telemetry"
)

// The admin plane: a kubo-style HTTP surface for a long-running match
// daemon.
//
//	GET /healthz        — liveness (200 while the process serves)
//	GET /readyz         — readiness (503 once draining)
//	GET /status         — JSON: uptime, connections, queue depths,
//	                      residency fractions, fault counters
//	GET /metrics        — live Prometheus scrape of the registry
//	GET /debug/profile  — one-shot diagnostic zip (see profile.go)
//	GET /debug/trace    — flight-recorder dump as Chrome trace JSON
//	                      (load in Perfetto / chrome://tracing)

func (s *Server) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/profile", s.handleProfile)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	return mux
}

// handleTrace dumps the always-on flight recorder: every retained
// trace (tail-latency outliers and fault-marked timelines) plus the
// currently in-flight ones, as Chrome trace-event JSON.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="spco-trace.json"`)
	if err := s.tr.WriteChrome(w); err != nil {
		s.cfg.Logf("daemon: /debug/trace: %v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if n := s.wedgedShards(); n > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "%d shard(s) wedged\n", n)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics is the live Prometheus scrape: publish every shard's
// running engine totals into the registry (idempotent deltas under
// each shard mutex), then export. The registry and sampler are safe to
// export while concurrent connections keep mutating counters.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.publishAll()
	s.gUptime.Set(time.Since(s.start).Seconds())
	// Authoritative refresh: the per-event gauge updates in acceptLoop/
	// serveConn publish their own Add results, and this pins the scrape
	// to the live count regardless of update interleaving.
	s.gActive.Set(float64(s.active.Load()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := telemetry.WritePrometheus(w, s.cfg.Collector.Registry); err != nil {
		s.cfg.Logf("daemon: /metrics: %v", err)
	}
}

// publishAll refreshes the registry from every shard: engine telemetry
// deltas, per-shard queue/pool gauges, and cache-residency fractions —
// one shard lock at a time.
func (s *Server) publishAll() {
	for _, sh := range s.shards {
		// A wedged lane's lock may never come back; scrape around it
		// rather than hanging the admin plane behind it.
		if !sh.tryLockFor(adminLockPatience) {
			continue
		}
		sh.en.PublishTelemetry()
		sh.refreshGaugesLocked()
		s.publishResidencyLocked(sh)
		sh.unlock()
	}
}

// adminLockPatience bounds how long an admin-plane request waits for
// any one shard lock before reporting around it.
const adminLockPatience = 250 * time.Millisecond

// publishResidencyLocked mirrors one shard's per-owner cache-residency
// fractions into registry gauges, so a live /metrics scrape carries
// the occupancy story (spco_region_residency{owner,level}) without
// waiting for a series flush. The engine records the same name as a
// sampler time series; the registry gauge is its point-in-time view.
// With one shard the owner names are the engine's own; with more, each
// shard's owners are prefixed "shardN/" so the lanes stay separable.
// Callers hold sh.mu.
func (s *Server) publishResidencyLocked(sh *shard) {
	reg := s.cfg.Collector.Registry
	for _, r := range sh.en.Hierarchy().ScanResidency() {
		owner := r.Owner
		if len(s.shards) > 1 {
			owner = fmt.Sprintf("shard%d/%s", sh.idx, r.Owner)
		}
		for _, lv := range [...]struct {
			name string
			frac float64
		}{{"l1", r.L1Frac()}, {"l2", r.L2Frac()}, {"l3", r.L3Frac()}, {"nc", r.NCFrac()}} {
			reg.Gauge("spco_region_residency",
				telemetry.Labels{"owner": owner, "level": lv.name}).Set(lv.frac)
		}
	}
}

// StatusResidency is one owner/level residency fraction.
type StatusResidency struct {
	Owner string  `json:"owner"`
	Level string  `json:"level"`
	Frac  float64 `json:"frac"`
}

// StatusEngine is the engine half of /status.
type StatusEngine struct {
	Arch       string `json:"arch"`
	List       string `json:"list"`
	HotCache   bool   `json:"hot_cache"`
	Arrivals   uint64 `json:"arrivals"`
	Posts      uint64 `json:"posts"`
	PRQMatches uint64 `json:"prq_matches"`
	UMQMatches uint64 `json:"umq_matches"`
	UMQAppends uint64 `json:"umq_appends"`
	Refused    uint64 `json:"refused"`
	Rendezvous uint64 `json:"rendezvous"`
	Cycles     uint64 `json:"cycles"`
	SyncCycles uint64 `json:"sync_cycles"`
	PRQLen     int    `json:"prq_len"`
	UMQLen     int    `json:"umq_len"`
	UMQCap     int    `json:"umq_capacity"`
	Overflow   string `json:"overflow_policy"`
}

// StatusShard is one serving lane's /status entry: its share of the
// engine counters plus the lane-local serving tallies.
type StatusShard struct {
	Shard           int     `json:"shard"`
	Frames          uint64  `json:"frames"`
	Wedged          bool    `json:"wedged"`
	LockWaitSeconds float64 `json:"lock_wait_seconds"`
	Arrivals        uint64  `json:"arrivals"`
	Posts           uint64  `json:"posts"`
	PRQMatches      uint64  `json:"prq_matches"`
	UMQMatches      uint64  `json:"umq_matches"`
	Refused         uint64  `json:"refused"`
	Rendezvous      uint64  `json:"rendezvous"`
	Cycles          uint64  `json:"cycles"`
	PRQLen          int     `json:"prq_len"`
	UMQLen          int     `json:"umq_len"`
	PoolGets        uint64  `json:"pool_gets"`
	PoolMisses      uint64  `json:"pool_misses"`
	PoolPuts        uint64  `json:"pool_puts"`
	PoolSize        int     `json:"pool_size"`
}

// StatusRecovery is the crash-recovery half of /status.
type StatusRecovery struct {
	// Journaling reports whether the recovery spine is active this boot.
	Journaling bool `json:"journaling"`
	// Recovered reports whether this boot restored state (snapshot
	// and/or journal replay ran).
	Recovered bool `json:"recovered"`
	// ReplayedOps counts journal records replayed into the engines at
	// boot.
	ReplayedOps uint64 `json:"replayed_ops"`
	// Snapshots counts snapshots written this boot; LastSnapshotUnix is
	// the latest one's wall time (0: none yet).
	Snapshots        uint64 `json:"snapshots"`
	LastSnapshotUnix int64  `json:"last_snapshot_unix"`
	// SessionsActive is the live session count; SessionsResumed counts
	// resume handshakes served; DupReplays counts duplicate sequenced
	// ops answered from session rings instead of the engines.
	SessionsActive  int    `json:"sessions_active"`
	SessionsResumed uint64 `json:"sessions_resumed"`
	DupReplays      uint64 `json:"dup_replays"`
	// WedgedShards counts lanes currently flagged by the watchdog.
	WedgedShards int `json:"wedged_shards"`
}

// StatusTrace is the flight-recorder half of /status.
type StatusTrace struct {
	Open     int    `json:"open"`
	Retained int    `json:"retained"`
	Finished uint64 `json:"finished"`
	Kept     uint64 `json:"kept"`
	Evicted  uint64 `json:"evicted"`
}

// StatusReport is the /status JSON document.
type StatusReport struct {
	Version           string            `json:"version"`
	GoVersion         string            `json:"go_version"`
	UptimeSeconds     float64           `json:"uptime_seconds"`
	Addr              string            `json:"addr"`
	AdminAddr         string            `json:"admin_addr"`
	Draining          bool              `json:"draining"`
	ConnectionsActive int64             `json:"connections_active"`
	ConnectionsTotal  uint64            `json:"connections_total"`
	Nacks             uint64            `json:"nacks"`
	DupSuppressed     uint64            `json:"dups_suppressed"`
	ShardCount        int               `json:"shard_count"`
	Window            int               `json:"window"`
	CreditStalls      uint64            `json:"credit_stalls"`
	Engine            StatusEngine      `json:"engine"`
	Shards            []StatusShard     `json:"shards"`
	Residency         []StatusResidency `json:"residency"`
	Recovery          StatusRecovery    `json:"recovery"`
	Trace             StatusTrace       `json:"trace"`
}

// Status assembles the live status document (also used by /status).
// The Engine section aggregates every shard — counter deltas against
// it audit the same way regardless of shard count — while the Shards
// section breaks the same counters out per lane.
func (s *Server) Status() StatusReport {
	st := s.Stats()
	ts := s.tr.Stats()
	s.gActive.Set(float64(st.ConnectionsActive))
	rep := StatusReport{
		Version:   Version,
		GoVersion: runtime.Version(),
		Trace: StatusTrace{
			Open: ts.Open, Retained: ts.Retained,
			Finished: ts.Finished, Kept: ts.Kept, Evicted: ts.Evicted,
		},
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Addr:              s.Addr(),
		AdminAddr:         s.AdminAddr(),
		Draining:          s.draining.Load(),
		ConnectionsActive: st.ConnectionsActive,
		ConnectionsTotal:  st.ConnectionsTotal,
		Nacks:             st.Nacks,
		DupSuppressed:     st.DupSuppressed,
		ShardCount:        len(s.shards),
		Window:            s.cfg.Window,
		CreditStalls:      st.CreditStalls,
		Recovery: StatusRecovery{
			Journaling:       s.journaling(),
			Recovered:        s.recRecovered.Load(),
			ReplayedOps:      s.recReplayed.Load(),
			Snapshots:        s.recSnapshots.Load(),
			LastSnapshotUnix: s.recLastSnap.Load() / 1e9,
			SessionsActive:   s.sessions.count(),
			SessionsResumed:  s.recResumed.Load(),
			DupReplays:       s.recReplays.Load(),
			WedgedShards:     s.wedgedShards(),
		},
	}
	ecfg := s.shards[0].en.Config()
	rep.Engine = StatusEngine{
		Arch:     ecfg.Profile.Name,
		List:     ecfg.Kind.String(),
		HotCache: ecfg.HotCache,
		UMQCap:   ecfg.UMQCapacity,
		Overflow: ecfg.Overflow.String(),
	}
	for _, sh := range s.shards {
		if !sh.tryLockFor(adminLockPatience) {
			// The lane is stuck (likely wedged): report its identity and
			// flag without the engine counters the lock protects.
			rep.Shards = append(rep.Shards, StatusShard{
				Shard:           sh.idx,
				Frames:          sh.nFrames.Load(),
				Wedged:          sh.wedged.Load(),
				LockWaitSeconds: float64(sh.lockWaitNS.Load()) / 1e9,
			})
			continue
		}
		es := sh.en.Stats()
		prq, umq := sh.en.PRQLen(), sh.en.UMQLen()
		ps := sh.en.PoolStats()
		for _, r := range sh.en.Hierarchy().ScanResidency() {
			owner := r.Owner
			if len(s.shards) > 1 {
				owner = fmt.Sprintf("shard%d/%s", sh.idx, r.Owner)
			}
			for _, lv := range [...]struct {
				name string
				frac float64
			}{{"l1", r.L1Frac()}, {"l2", r.L2Frac()}, {"l3", r.L3Frac()}, {"nc", r.NCFrac()}} {
				rep.Residency = append(rep.Residency, StatusResidency{Owner: owner, Level: lv.name, Frac: lv.frac})
			}
		}
		sh.unlock()

		rep.Engine.Arrivals += es.Arrivals
		rep.Engine.Posts += es.Posts
		rep.Engine.PRQMatches += es.PRQMatches
		rep.Engine.UMQMatches += es.UMQMatches
		rep.Engine.UMQAppends += es.UMQAppends
		rep.Engine.Refused += es.Refused
		rep.Engine.Rendezvous += es.Rendezvous
		rep.Engine.Cycles += es.Cycles
		rep.Engine.SyncCycles += es.SyncCycles
		rep.Engine.PRQLen += prq
		rep.Engine.UMQLen += umq

		rep.Shards = append(rep.Shards, StatusShard{
			Shard:           sh.idx,
			Frames:          sh.nFrames.Load(),
			Wedged:          sh.wedged.Load(),
			LockWaitSeconds: float64(sh.lockWaitNS.Load()) / 1e9,
			Arrivals:        es.Arrivals,
			Posts:           es.Posts,
			PRQMatches:      es.PRQMatches,
			UMQMatches:      es.UMQMatches,
			Refused:         es.Refused,
			Rendezvous:      es.Rendezvous,
			Cycles:          es.Cycles,
			PRQLen:          prq,
			UMQLen:          umq,
			PoolGets:        ps.Gets,
			PoolMisses:      ps.Misses,
			PoolPuts:        ps.Puts,
			PoolSize:        ps.Size,
		})
	}
	return rep
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Status()); err != nil {
		s.cfg.Logf("daemon: /status: %v", err)
	}
}

// profileSeconds parses the CPU-profile duration query parameter,
// clamped to [0, 30].
func profileSeconds(r *http.Request) float64 {
	sec := 1.0
	if v := r.URL.Query().Get("seconds"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			sec = f
		}
	}
	if sec < 0 {
		sec = 0
	}
	if sec > 30 {
		sec = 30
	}
	return sec
}
