package daemon

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/matchlist"
	"spco/internal/mpi"
	"spco/internal/recov"
)

// allKinds is every matchlist structure the daemon can host; the
// recovery differential must hold for each, since restore re-drives
// queue entries through the structure's own insert paths.
var allKinds = []matchlist.Kind{
	matchlist.KindBaseline, matchlist.KindLLA, matchlist.KindHashBins,
	matchlist.KindRankArray, matchlist.KindFourD, matchlist.KindHWOffload,
	matchlist.KindPerComm,
}

// genOps builds a deterministic op stream: arrives and posts over a
// small rank/tag space (so some match and plenty stay queued), spread
// across contexts 1..8 (so a sharded daemon exercises every lane),
// with compute phases sprinkled in. Handles are globally unique.
func genOps(n int, seed uint64) []mpi.WireOp {
	rng := fault.NewRNG(seed)
	ops := make([]mpi.WireOp, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && i%64 == 0 {
			ops = append(ops, mpi.WireOp{Kind: mpi.WirePhase, DurationNS: 2e4})
			continue
		}
		kind := byte(mpi.WireArrive)
		if rng.Float64() < 0.45 {
			kind = mpi.WirePost
		}
		ops = append(ops, mpi.WireOp{
			Kind:   kind,
			Rank:   int32(rng.Intn(4)),
			Tag:    int32(rng.Intn(8)),
			Ctx:    uint16(1 + rng.Intn(8)),
			Handle: uint64(i) + 1,
		})
	}
	return ops
}

// driveOps serves the stream over one connection in batched frames,
// returning every reply in op order. The ops are copied per frame so
// callers can reuse the stream across daemons.
func driveOps(t *testing.T, addr string, ops []mpi.WireOp) []mpi.WireReply {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	out := make([]mpi.WireReply, 0, len(ops))
	var reps []mpi.WireReply
	frame := make([]mpi.WireOp, 0, 32)
	for i := 0; i < len(ops); i += 32 {
		j := i + 32
		if j > len(ops) {
			j = len(ops)
		}
		frame = append(frame[:0], ops[i:j]...)
		reps, err = cl.DoBatch(frame, reps)
		if err != nil {
			t.Fatalf("ops[%d:%d]: %v", i, j, err)
		}
		out = append(out, reps...)
	}
	return out
}

// shardStats collects per-shard engine stats after the daemon stopped.
func shardStats(srv *Server) []engine.Stats {
	out := make([]engine.Stats, srv.ShardCount())
	for i := range out {
		out[i] = srv.ShardEngine(i).Stats()
	}
	return out
}

func repsEqual(a, b []mpi.WireReply, exact bool) string {
	if len(a) != len(b) {
		return fmt.Sprintf("reply counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if !exact {
			x.Cycles, y.Cycles = 0, 0
		}
		if x != y {
			return fmt.Sprintf("reply %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	return ""
}

func statsEqual(a, b []engine.Stats, exact bool) string {
	for i := range a {
		x, y := a[i], b[i]
		if !exact {
			// Snapshot restore rebuilds the queues by reinsertion, which
			// compacts the physical structure the original built up over
			// its whole history — so modeled cycles and traversal-work
			// totals diverge; everything logical must still agree.
			x.Cycles, y.Cycles = 0, 0
			x.SyncCycles, y.SyncCycles = 0, 0
			x.PRQDepthTotal, y.PRQDepthTotal = 0, 0
			x.UMQDepthTotal, y.UMQDepthTotal = 0, 0
		}
		if x != y {
			return fmt.Sprintf("shard %d stats differ:\n  recovered %+v\n  control   %+v", i, a[i], b[i])
		}
	}
	return ""
}

// TestCountersRoundTrip pins the Stats<->snapshot-counters mapping.
func TestCountersRoundTrip(t *testing.T) {
	var c [recov.SnapshotCounters]uint64
	for i := range c {
		c[i] = uint64(i+1) * 1000003
	}
	if got := statsToCounters(countersToStats(c)); got != c {
		t.Fatalf("round trip: %v != %v", got, c)
	}
	st := engine.Stats{Arrivals: 1, Posts: 2, Recvs: 3, PRQMatches: 4,
		UMQMatches: 5, UMQAppends: 6, PRQDepthTotal: 7, UMQDepthTotal: 8,
		UMQOverflows: 9, Refused: 10, Rendezvous: 11, Cycles: 12,
		SyncCycles: 13, MaxPRQLen: 14, MaxUMQLen: 15}
	if got := countersToStats(statsToCounters(st)); got != st {
		t.Fatalf("round trip: %+v != %+v", got, st)
	}
}

// TestRecoveryDifferential is the crash-recovery acceptance test: for
// every matchlist kind, a daemon that serves half a stream, stops, and
// recovers from its journal must answer the second half bit-identically
// (modeled cycles included — journal replay re-executes the full
// history through the real engine) to a control daemon that never
// stopped, and finish with bit-identical per-shard engine stats.
func TestRecoveryDifferential(t *testing.T) {
	for _, kind := range allKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			ops := genOps(500, 42)
			half := len(ops) / 2

			// Control: one daemon, the whole stream.
			kindCfg := func(c *Config) {
				c.Engine.Kind = kind
				if kind == matchlist.KindRankArray || kind == matchlist.KindFourD {
					c.Engine.CommSize = 16
				}
			}
			ctl, _, ctlErrc := testServer(t, kindCfg)
			ctlReps := driveOps(t, ctl.Addr(), ops)
			stopAndWait(t, ctl, ctlErrc)
			ctlStats := shardStats(ctl)

			// Crashed-and-recovered: first half, stop, recover, second half.
			dir := t.TempDir()
			srv1, _, errc1 := testServer(t, func(c *Config) {
				kindCfg(c)
				c.JournalDir = dir
			})
			reps1 := driveOps(t, srv1.Addr(), ops[:half])
			stopAndWait(t, srv1, errc1)

			srv2, _, errc2 := testServer(t, func(c *Config) {
				kindCfg(c)
				c.JournalDir = dir
				c.Recover = true
			})
			if !srv2.recRecovered.Load() {
				t.Fatal("recovered daemon did not mark recovery")
			}
			if srv2.recReplayed.Load() == 0 {
				t.Fatal("recovery replayed no journal records")
			}
			reps2 := driveOps(t, srv2.Addr(), ops[half:])
			stopAndWait(t, srv2, errc2)

			got := append(append([]mpi.WireReply{}, reps1...), reps2...)
			if d := repsEqual(got, ctlReps, true); d != "" {
				t.Fatal(d)
			}
			if d := statsEqual(shardStats(srv2), ctlStats, true); d != "" {
				t.Fatal(d)
			}
		})
	}
}

// TestRecoverySnapshotTail covers the snapshot-plus-journal-tail path:
// a snapshot mid-stream, more traffic, a stop, and a recovery that
// restores the snapshot and replays only the tail. Logical state —
// every reply's outcome and handle, queue contents, every counter but
// the modeled cycles — must match the uninterrupted control.
func TestRecoverySnapshotTail(t *testing.T) {
	ops := genOps(600, 7)
	a, b := len(ops)/3, 2*len(ops)/3

	ctl, _, ctlErrc := testServer(t, nil)
	ctlReps := driveOps(t, ctl.Addr(), ops)
	stopAndWait(t, ctl, ctlErrc)
	ctlStats := shardStats(ctl)

	dir := t.TempDir()
	srv1, _, errc1 := testServer(t, func(c *Config) { c.JournalDir = dir })
	reps1 := driveOps(t, srv1.Addr(), ops[:a])
	if err := srv1.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	reps2 := driveOps(t, srv1.Addr(), ops[a:b]) // the journal tail
	stopAndWait(t, srv1, errc1)

	srv2, _, errc2 := testServer(t, func(c *Config) {
		c.JournalDir = dir
		c.Recover = true
	})
	reps3 := driveOps(t, srv2.Addr(), ops[b:])
	stopAndWait(t, srv2, errc2)

	got := append(append(append([]mpi.WireReply{}, reps1...), reps2...), reps3...)
	if d := repsEqual(got, ctlReps, false); d != "" {
		t.Fatal(d)
	}
	if d := statsEqual(shardStats(srv2), ctlStats, false); d != "" {
		t.Fatal(d)
	}
}

// TestSessionResumeAcrossRestart exercises the exactly-once contract
// at the wire level: a session's sequenced ops survive a daemon
// restart, a re-sent duplicate is answered from the recovered reply
// ring without touching an engine, and queue state carries over.
func TestSessionResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, _, errc1 := testServer(t, func(c *Config) { c.JournalDir = dir })
	addr := srv1.Addr()

	cl1, err := DialSession(addr)
	if err != nil {
		t.Fatal(err)
	}
	sid := cl1.Session()
	if sid == 0 {
		t.Fatal("new session got id 0")
	}
	rep1, err := cl1.do(mpi.WireOp{Kind: mpi.WireArrive, Rank: 1, Tag: 100, Ctx: 1, Handle: 100, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := cl1.do(mpi.WireOp{Kind: mpi.WireArrive, Rank: 1, Tag: 101, Ctx: 1, Handle: 101, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Outcome == byte(engine.ArriveMatched) || rep2.Outcome == byte(engine.ArriveMatched) {
		t.Fatal("unexpected match on an empty daemon")
	}
	cl1.Close()
	stopAndWait(t, srv1, errc1)

	srv2, _, errc2 := testServer(t, func(c *Config) {
		c.JournalDir = dir
		c.Recover = true
		c.ListenAddr = addr
	})
	defer stopAndWait(t, srv2, errc2)

	cl2, err := DialResume(addr, sid, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if hw := cl2.HighWater(); hw != 2 {
		t.Fatalf("resume high-water = %d, want 2", hw)
	}

	// Re-send seq 2 verbatim: the recovered ring must answer it without
	// re-applying (the UMQ would grow to 3 otherwise).
	dup, err := cl2.do(mpi.WireOp{Kind: mpi.WireArrive, Rank: 1, Tag: 101, Ctx: 1, Handle: 101, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep2.Credits = dup.Credits
	if dup != rep2 {
		t.Fatalf("replayed reply %+v differs from original %+v", dup, rep2)
	}
	if _, umq, err := cl2.QueueLens(); err != nil || umq != 2 {
		t.Fatalf("umq = %d after duplicate re-send (err %v), want 2", umq, err)
	}
	if got := srv2.recReplays.Load(); got != 1 {
		t.Fatalf("dup replays = %d, want 1", got)
	}

	// Fresh traffic matches the recovered queue entries in order.
	post, err := cl2.do(mpi.WireOp{Kind: mpi.WirePost, Rank: 1, Tag: 100, Ctx: 1, Handle: 200, Seq: 3})
	if err != nil {
		t.Fatal(err)
	}
	if post.Outcome != 1 || post.Handle != 100 {
		t.Fatalf("post against recovered UMQ: %+v, want match of handle 100", post)
	}

	// The admin plane reports the recovery.
	resp, err := http.Get("http://" + srv2.AdminAddr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"recovered": true`, `"sessions_resumed": 1`, `"dup_replays": 1`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/status missing %s in %s", want, body)
		}
	}

	// A session the server never heard of is refused cleanly.
	if _, err := DialResume(addr, sid+999, 0); err == nil || !strings.Contains(err.Error(), "session lost") {
		t.Fatalf("resume of unknown session: %v, want ErrSessionLost", err)
	}
}

// TestResilientClientReconnect drives a ResilientClient through a
// daemon restart mid-stream: the client must reconnect with backoff,
// resume, re-send the unanswered gap, and the full stream's pairing
// must come out exact.
func TestResilientClientReconnect(t *testing.T) {
	dir := t.TempDir()
	srv1, _, errc1 := testServer(t, func(c *Config) { c.JournalDir = dir })
	addr := srv1.Addr()

	rc, err := DialResilient(ResilientConfig{Addr: addr, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	pairs := 40
	arrives := make([]mpi.WireOp, pairs)
	for i := range arrives {
		arrives[i] = mpi.WireOp{Kind: mpi.WireArrive, Rank: int32(i % 4), Tag: int32(1000 + i), Ctx: uint16(1 + i%4), Handle: uint64(i) + 1}
	}
	reps, err := rc.Exchange(arrives, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if rep.Status != mpi.WireOK || rep.Outcome == byte(engine.ArriveMatched) {
			t.Fatalf("arrive %d: %+v", i, rep)
		}
	}

	// Restart the daemon out from under the client.
	stopAndWait(t, srv1, errc1)
	srv2, _, errc2 := testServer(t, func(c *Config) {
		c.JournalDir = dir
		c.Recover = true
		c.ListenAddr = addr
	})
	defer stopAndWait(t, srv2, errc2)

	posts := make([]mpi.WireOp, pairs)
	for i := range posts {
		posts[i] = mpi.WireOp{Kind: mpi.WirePost, Rank: int32(i % 4), Tag: int32(1000 + i), Ctx: uint16(1 + i%4), Handle: uint64(i) + 1}
	}
	reps, err = rc.Exchange(posts, reps)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if rep.Status != mpi.WireOK || rep.Outcome != 1 || rep.Handle != uint64(i)+1 {
			t.Fatalf("post %d did not match its arrive across the restart: %+v", i, rep)
		}
	}
	if rc.Reconnects == 0 {
		t.Error("client never reconnected")
	}
}

// TestRecoveryOffIsFree: with no JournalDir the serving path must be
// bit-identical to the journaling daemon in modeled work — the spine
// costs nil checks, not cycles.
func TestRecoveryOffIsFree(t *testing.T) {
	run := func(mut func(*Config)) LoadResult {
		srv, _, errc := testServer(t, mut)
		res, err := RunLoad(LoadConfig{Addr: srv.Addr(), Conns: 1, Messages: 600, Seed: 5, Ctxs: 4, Batch: 16})
		if err != nil {
			t.Fatal(err)
		}
		stopAndWait(t, srv, errc)
		return res
	}
	off := run(nil)
	on := run(func(c *Config) { c.JournalDir = t.TempDir() })
	if off.EngineCycles != on.EngineCycles {
		t.Fatalf("journaling changed modeled cycles: off=%d on=%d", off.EngineCycles, on.EngineCycles)
	}
	if off.Matched() != on.Matched() || off.Matched() != 600 {
		t.Fatalf("matched: off=%d on=%d, want 600", off.Matched(), on.Matched())
	}
}

// TestSnapshotConcurrentWithLoad runs periodic snapshots against live
// batched traffic on a 4-shard daemon; under -race this is the proof
// that WriteSnapshot's one-lane-at-a-time capture coexists with
// applyBatch on the other lanes. Every snapshot written must decode,
// and the final state must recover.
func TestSnapshotConcurrentWithLoad(t *testing.T) {
	dir := t.TempDir()
	srv, _, errc := testServer(t, func(c *Config) {
		c.Shards = 4
		c.JournalDir = dir
	})

	var wg sync.WaitGroup
	wg.Add(1)
	loadErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := RunLoad(LoadConfig{Addr: srv.Addr(), Conns: 4, Messages: 4000, Ctxs: 4, Batch: 32, Seed: 9})
		loadErr <- err
	}()
	for i := 0; i < 20; i++ {
		if err := srv.WriteSnapshot(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if _, err := recov.ReadSnapshotFile(srv.snapshotPath()); err != nil {
			t.Fatalf("snapshot %d unreadable: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	if err := <-loadErr; err != nil {
		t.Fatal(err)
	}
	stopAndWait(t, srv, errc)

	srv2, _, errc2 := testServer(t, func(c *Config) {
		c.Shards = 4
		c.JournalDir = dir
		c.Recover = true
	})
	cl, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	prq, umq, err := cl.QueueLens()
	cl.Close()
	if err != nil || prq != 0 || umq != 0 {
		t.Fatalf("recovered drained daemon has prq=%d umq=%d (err %v)", prq, umq, err)
	}
	stopAndWait(t, srv2, errc2)
}

// TestWatchdogWedged holds one shard's lock past the deadline and
// expects the watchdog to flag it — /readyz 503, /status wedged — then
// clear it on release. The admin plane must keep answering while the
// lane is stuck.
func TestWatchdogWedged(t *testing.T) {
	srv, _, errc := testServer(t, func(c *Config) {
		c.WatchdogDeadline = 50 * time.Millisecond
		c.WatchdogInterval = 10 * time.Millisecond
	})
	defer stopAndWait(t, srv, errc)

	sh := srv.shards[0]
	release := make(chan struct{})
	held := make(chan struct{})
	go func() {
		sh.lock()
		close(held)
		<-release
		sh.unlock()
	}()
	<-held
	released := false
	defer func() {
		// An early t.Fatal must still free the lane, or the deferred
		// stopAndWait hangs behind it.
		if !released {
			close(release)
		}
	}()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.AdminAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if code, body := get("/readyz"); code == http.StatusServiceUnavailable && strings.Contains(body, "wedged") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the held lane")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body := get("/status"); code != 200 || !strings.Contains(body, `"wedged": true`) {
		t.Fatalf("/status while wedged: %d %s", code, body)
	}
	if srv.wedgedShards() != 1 {
		t.Fatalf("wedgedShards = %d, want 1", srv.wedgedShards())
	}

	close(release)
	released = true
	for {
		if code, _ := get("/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never cleared the released lane")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAdminSlowLoris: a client that dials the admin port and never
// finishes its headers must be cut off by ReadHeaderTimeout, not hold
// the connection open indefinitely.
func TestAdminSlowLoris(t *testing.T) {
	srv, _, errc := testServer(t, func(c *Config) {
		c.AdminReadHeaderTimeout = 200 * time.Millisecond
	})
	defer stopAndWait(t, srv, errc)

	conn, err := net.Dial("tcp", srv.AdminAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /status HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = io.ReadAll(conn)
	elapsed := time.Since(start)
	if os.IsTimeout(err) {
		t.Fatalf("server never closed the stalled connection (waited %s)", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stalled connection held %s, want well under 2s", elapsed)
	}
}
