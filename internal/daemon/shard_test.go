package daemon

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"spco/internal/cache"
	"spco/internal/ctrace"
	"spco/internal/engine"
	"spco/internal/matchlist"
	"spco/internal/mpi"
	"spco/internal/telemetry"
)

// shardOpStream builds a deterministic arrive/post/phase interleaving
// spread across nCtx communicator contexts (1..nCtx). Tags repeat
// across ranks and contexts, so matching exercises real queue scans;
// phases land periodically to perturb cache state on every lane.
func shardOpStream(n, nCtx int) []mpi.WireOp {
	ops := make([]mpi.WireOp, 0, n)
	req := uint64(1)
	for i := 0; len(ops) < n; i++ {
		ctx := uint16(1 + i%nCtx)
		switch i % 13 {
		case 4, 9:
			ops = append(ops, mpi.WireOp{
				Kind: mpi.WirePost, Rank: int32(i % 8), Tag: int32(i % 5),
				Ctx: ctx, Handle: req,
			})
			req++
		case 11:
			ops = append(ops, mpi.WireOp{Kind: mpi.WirePhase, DurationNS: 2e4})
		default:
			ops = append(ops, mpi.WireOp{
				Kind: mpi.WireArrive, Rank: int32(i % 8), Tag: int32(i % 5),
				Ctx: ctx, Handle: uint64(i) + 1000,
			})
		}
	}
	return ops
}

// TestShardDifferential is the sharding correctness gate: for every
// match-structure kind, a 4-shard daemon serving an op stream spread
// over 4 contexts must reply bit-identically to 4 dedicated one-shard
// daemons each serving one context's substream. An MPI context is a
// closed matching domain, so partitioning by context may not change a
// single outcome, handle, or modeled cycle count. The sharded side runs
// batched (exercising the per-shard run splitting and the ArriveBatch
// fast path); the dedicated side runs scalar — so the test is also a
// batch-vs-scalar differential.
func TestShardDifferential(t *testing.T) {
	const nCtx = 4
	kinds := []matchlist.Kind{
		matchlist.KindBaseline, matchlist.KindLLA, matchlist.KindHashBins,
		matchlist.KindRankArray, matchlist.KindFourD, matchlist.KindHWOffload,
		matchlist.KindPerComm,
	}
	ops := shardOpStream(520, nCtx)

	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			ecfg := engine.Config{
				Profile:        cache.SandyBridge,
				Kind:           kind,
				EntriesPerNode: 2,
				CommSize:       16,
				Bins:           64,
			}

			// Sharded run: everything through one batched connection.
			sharded := make([]mpi.WireReply, 0, len(ops))
			{
				srv, _, errc := testServer(t, func(c *Config) {
					c.Engine = ecfg
					c.Shards = nCtx
				})
				if got := srv.ShardCount(); got != nCtx {
					t.Fatalf("ShardCount = %d, want %d", got, nCtx)
				}
				cl, err := Dial(srv.Addr())
				if err != nil {
					t.Fatal(err)
				}
				const chunk = 47 // not a divisor: trailing partial batch
				var reps []mpi.WireReply
				for i := 0; i < len(ops); i += chunk {
					j := min(i+chunk, len(ops))
					reps, err = cl.DoBatch(ops[i:j], reps)
					if err != nil {
						t.Fatal(err)
					}
					sharded = append(sharded, reps...)
				}
				cl.Close()
				stopAndWait(t, srv, errc)
			}

			// Dedicated runs: context c's ops — plus every phase, which
			// perturbs all lanes on the sharded side — scalar, against a
			// fresh one-shard daemon.
			streams := make([][]mpi.WireOp, nCtx+1)
			for _, op := range ops {
				if op.Kind == mpi.WirePhase {
					for c := 1; c <= nCtx; c++ {
						streams[c] = append(streams[c], op)
					}
					continue
				}
				streams[op.Ctx] = append(streams[op.Ctx], op)
			}
			dedicated := make([][]mpi.WireReply, nCtx+1)
			for c := 1; c <= nCtx; c++ {
				srv, _, errc := testServer(t, func(cfg *Config) {
					cfg.Engine = ecfg
					cfg.Shards = 1
				})
				cl, err := Dial(srv.Addr())
				if err != nil {
					t.Fatal(err)
				}
				for _, op := range streams[c] {
					rep, err := cl.do(op)
					if err != nil {
						t.Fatal(err)
					}
					dedicated[c] = append(dedicated[c], rep)
				}
				cl.Close()
				stopAndWait(t, srv, errc)
			}

			// Walk the global stream with one cursor per context.
			cursor := make([]int, nCtx+1)
			for i, op := range ops {
				if op.Kind == mpi.WirePhase {
					for c := 1; c <= nCtx; c++ {
						cursor[c]++ // the phase reply is constant; skip it
					}
					continue
				}
				c := int(op.Ctx)
				want := dedicated[c][cursor[c]]
				cursor[c]++
				if sharded[i] != want {
					t.Fatalf("op %d (ctx %d, %+v): sharded reply %+v, dedicated %+v",
						i, c, op, sharded[i], want)
				}
			}
		})
	}
}

// TestShardStatusAndMetrics drives a 4-shard daemon with load spread
// across 4 contexts and checks the per-lane observability: /status
// carries one entry per shard with frames on every lane, the Engine
// aggregate equals the per-shard sums, and /metrics serves the
// spco_shard_* family.
func TestShardStatusAndMetrics(t *testing.T) {
	srv, _, errc := testServer(t, func(c *Config) {
		c.Shards = 4
		c.Window = 128
	})

	res, err := RunLoad(LoadConfig{
		Addr: srv.Addr(), Conns: 4, Messages: 1200, Ctxs: 4, Batch: 32,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Unmatched != 0 || res.Mismatches != 0 {
		t.Fatalf("pairing audit failed: %d unmatched, %d mismatched", res.Unmatched, res.Mismatches)
	}

	resp, err := http.Get("http://" + srv.AdminAddr() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st StatusReport
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardCount != 4 || len(st.Shards) != 4 {
		t.Fatalf("shard_count=%d, %d shard entries, want 4/4", st.ShardCount, len(st.Shards))
	}
	if st.Window != 128 {
		t.Fatalf("window = %d, want 128", st.Window)
	}
	var frames, arrivals, posts, cycles uint64
	for _, sh := range st.Shards {
		if sh.Frames == 0 {
			t.Errorf("shard %d served no frames — context spreading missed a lane", sh.Shard)
		}
		frames += sh.Frames
		arrivals += sh.Arrivals
		posts += sh.Posts
		cycles += sh.Cycles
	}
	if arrivals != st.Engine.Arrivals {
		t.Errorf("shard arrivals sum %d != aggregate %d", arrivals, st.Engine.Arrivals)
	}
	if posts != st.Engine.Posts {
		t.Errorf("shard posts sum %d != aggregate %d", posts, st.Engine.Posts)
	}
	if cycles != st.Engine.Cycles {
		t.Errorf("shard cycles sum %d != aggregate %d", cycles, st.Engine.Cycles)
	}
	if frames == 0 {
		t.Fatal("no frames recorded on any shard")
	}

	resp, err = http.Get("http://" + srv.AdminAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`spco_shard_frames_total{shard="0"}`,
		`spco_shard_frames_total{shard="3"}`,
		"spco_shard_lock_wait_seconds_total",
		`spco_shard_queue_depth{queue="prq",shard="2"}`,
		"spco_daemon_credit_stalls_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics lacks %s", want)
		}
	}
	stopAndWait(t, srv, errc)
}

// TestCreditWindow checks the backpressure window end to end: a frame
// exceeding the window earns WireBusy for the overflow without those
// ops reaching any engine, every reply advertises the window, and a
// client that has learned the window chunks its batches and never
// stalls again.
func TestCreditWindow(t *testing.T) {
	srv, _, errc := testServer(t, func(c *Config) { c.Window = 8 })

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A fresh client knows no window yet: its first 20-op frame goes out
	// whole. The server applies 8 and refuses 12 unapplied.
	ops := make([]mpi.WireOp, 20)
	for i := range ops {
		ops[i] = mpi.WireOp{Kind: mpi.WirePing}
	}
	reps, err := cl.DoBatch(ops, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 20 {
		t.Fatalf("got %d replies, want 20", len(reps))
	}
	for i, rep := range reps {
		want := mpi.WireOK
		if i >= 8 {
			want = mpi.WireBusy
		}
		if rep.Status != want {
			t.Fatalf("reply %d status %d, want %d", i, rep.Status, want)
		}
		if rep.Credits != 8 {
			t.Fatalf("reply %d advertises %d credits, want 8", i, rep.Credits)
		}
	}
	if got := cl.Credits(); got != 8 {
		t.Fatalf("client learned %d credits, want 8", got)
	}
	if st := srv.Stats(); st.CreditStalls != 12 {
		t.Fatalf("CreditStalls = %d, want 12", st.CreditStalls)
	}

	// Knowing the window, the same 20 ops chunk into 8+8+4: no stalls.
	reps, err = cl.DoBatch(ops, reps)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if rep.Status != mpi.WireOK {
			t.Fatalf("post-learning reply %d status %d, want OK", i, rep.Status)
		}
	}
	if st := srv.Stats(); st.CreditStalls != 12 {
		t.Fatalf("CreditStalls grew to %d after the client learned the window", st.CreditStalls)
	}

	// Scalar replies advertise too.
	rep, err := cl.Arrive(1, 2, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Credits != 8 {
		t.Fatalf("scalar reply advertises %d credits, want 8", rep.Credits)
	}
	stopAndWait(t, srv, errc)
}

// TestServeLoadBatchedWindowed runs the audited batched load generator
// against a sharded, windowed daemon: the opening ping means every
// frame is clamped from the start, so the pairing audit holds with zero
// credit stalls.
func TestServeLoadBatchedWindowed(t *testing.T) {
	srv, _, errc := testServer(t, func(c *Config) {
		c.Shards = 3
		c.Window = 16
	})

	res, err := RunLoad(LoadConfig{
		Addr: srv.Addr(), Conns: 3, Messages: 900, Ctxs: 3, Batch: 64,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Unmatched != 0 || res.Mismatches != 0 {
		t.Fatalf("pairing audit failed: %d unmatched, %d mismatched", res.Unmatched, res.Mismatches)
	}
	if got := res.Matched(); got != 900 {
		t.Fatalf("matched %d pairs, want 900", got)
	}
	if st := srv.Stats(); st.CreditStalls != 0 {
		t.Fatalf("well-behaved load stalled %d times on credits", st.CreditStalls)
	}
	stopAndWait(t, srv, errc)
}

// TestConfigValidation: shard counts and windows outside their ranges
// fail fast in New.
func TestConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Engine: engine.Config{
				Profile:        cache.SandyBridge,
				Kind:           matchlist.KindLLA,
				EntriesPerNode: 2,
			},
			Collector: telemetry.NewCollector(nil),
			PerfOut:   io.Discard,
		}
	}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"negative shards", func(c *Config) { c.Shards = -1 }},
		{"shards over cap", func(c *Config) { c.Shards = 257 }},
		{"negative window", func(c *Config) { c.Window = -1 }},
		{"window over credit range", func(c *Config) { c.Window = 65536 }},
	} {
		cfg := base()
		tc.mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, cfg)
		}
	}
}

// recordConn wraps a net.Conn and records the last read deadline set.
type recordConn struct {
	net.Conn
	mu       sync.Mutex
	deadline time.Time
}

func (c *recordConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *recordConn) readDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deadline
}

// TestLateRegisterGetsDrainDeadline is the regression test for the
// drain-deadline race: a connection accepted before the drain began but
// registered after beginDrain's sweep must still pick up the drain
// deadline (before the fix it never got one and could hold the drain
// open until forced shutdown).
func TestLateRegisterGetsDrainDeadline(t *testing.T) {
	cfg := Config{
		Engine: engine.Config{
			Profile:        cache.SandyBridge,
			Kind:           matchlist.KindLLA,
			EntriesPerNode: 2,
		},
		Collector:    telemetry.NewCollector(nil),
		DrainTimeout: time.Minute,
		PerfOut:      io.Discard,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.adminLn.Close()

	// The drain begins with an empty conn table: the sweep sees nobody.
	srv.beginDrain()

	// A connection that cleared acceptLoop's draining check just before
	// the flag flipped now registers. It must come out bounded.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := &recordConn{Conn: a}
	srv.register(c)

	got := c.readDeadline()
	if got.IsZero() {
		t.Fatal("late-registered connection got no drain deadline")
	}
	if !got.Equal(srv.drainDeadline) {
		t.Fatalf("deadline %v != drain deadline %v", got, srv.drainDeadline)
	}
}

// TestActiveGaugeSettles is the regression test for the
// connections-active gauge race: after every client disconnects, the
// scraped spco_daemon_connections_active must settle to exactly 0
// (before the fix, interleaved Set(Load()) pairs could publish stale
// counts that never corrected).
func TestActiveGaugeSettles(t *testing.T) {
	srv, _, errc := testServer(t, nil)

	if _, err := RunLoad(LoadConfig{Addr: srv.Addr(), Conns: 6, Messages: 600}); err != nil {
		t.Fatal(err)
	}

	scrape := func() string {
		resp, err := http.Get("http://" + srv.AdminAddr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "spco_daemon_connections_active ") {
				return strings.TrimPrefix(line, "spco_daemon_connections_active ")
			}
		}
		return ""
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := scrape(); v == "0" {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("connections_active stuck at %q after all clients closed", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.active.Load(); got != 0 {
		t.Fatalf("active count = %d, want 0", got)
	}
	stopAndWait(t, srv, errc)
}

// TestTraceClockSetOnce is the regression test for the trace-clock
// reset: Run must not restart the timeline New established, or flight-
// recorder events from traffic served between New and Run (exactly what
// tests and embedders do) would jump backwards.
func TestTraceClockSetOnce(t *testing.T) {
	cfg := Config{
		Engine: engine.Config{
			Profile:        cache.SandyBridge,
			Kind:           matchlist.KindLLA,
			EntriesPerNode: 2,
		},
		Collector: telemetry.NewCollector(nil),
		PerfOut:   io.Discard,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	started := srv.start
	if started.IsZero() {
		t.Fatal("New left the trace clock unset")
	}

	// Mint trace events on the New-established clock, then let real time
	// pass before Run: a Run that reset the clock would rewind hostNS
	// below everything already recorded.
	srv.tr.Adopt(ctrace.Context{Trace: 77}, 0, "pre-run", srv.hostNS())
	preRunNS := srv.hostNS()
	time.Sleep(20 * time.Millisecond)

	errc := make(chan error, 1)
	go func() { errc <- srv.Run(nil) }()
	waitReady(t, srv)

	if !srv.start.Equal(started) {
		t.Fatalf("Run reset the trace clock: %v -> %v", started, srv.start)
	}
	if now := srv.hostNS(); now <= preRunNS {
		t.Fatalf("trace clock went backwards across Run: %v -> %v", preRunNS, now)
	}
	srv.tr.Finish(77, srv.hostNS(), "done")
	stopAndWait(t, srv, errc)
}
