package daemon

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/mpi"
)

// Client is one match-traffic connection to a daemon: a serial
// request-response stream of wire operations. A Client is not safe for
// concurrent use; open one per goroutine (that is the point — each
// connection is an independent traffic source, like a NIC queue pair).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects and completes the protocol handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := mpi.WriteWireHello(c.bw); err != nil {
		conn.Close()
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	if err := mpi.ReadWireHello(c.br); err != nil {
		conn.Close()
		return nil, fmt.Errorf("daemon: handshake: %w", err)
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// do performs one request-response round trip.
func (c *Client) do(op mpi.WireOp) (mpi.WireReply, error) {
	if err := mpi.WriteWireOp(c.bw, op); err != nil {
		return mpi.WireReply{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return mpi.WireReply{}, err
	}
	rep, err := mpi.ReadWireReply(c.br)
	if err != nil {
		return mpi.WireReply{}, err
	}
	if rep.Status == mpi.WireErr {
		return rep, fmt.Errorf("daemon: server rejected %d op", op.Kind)
	}
	return rep, nil
}

// Arrive delivers an envelope; the reply carries the engine outcome.
func (c *Client) Arrive(rank, tag int32, ctx uint16, msg uint64) (mpi.WireReply, error) {
	return c.do(mpi.WireOp{Kind: mpi.WireArrive, Rank: rank, Tag: tag, Ctx: ctx, Handle: msg})
}

// ArriveTraced is Arrive carrying a client-minted causal-trace id the
// daemon adopts into its flight recorder (0 = untraced).
func (c *Client) ArriveTraced(rank, tag int32, ctx uint16, msg, trace uint64) (mpi.WireReply, error) {
	return c.do(mpi.WireOp{Kind: mpi.WireArrive, Rank: rank, Tag: tag, Ctx: ctx,
		Handle: msg, Trace: trace})
}

// Post posts a receive; the reply reports a UMQ match (Outcome 1).
func (c *Client) Post(rank, tag int32, ctx uint16, req uint64) (mpi.WireReply, error) {
	return c.do(mpi.WireOp{Kind: mpi.WirePost, Rank: rank, Tag: tag, Ctx: ctx, Handle: req})
}

// PostTraced is Post carrying a causal-trace id (0 = untraced). A
// matched pair whose arrive and post share one trace id lands as one
// end-to-end timeline in the daemon's recorder.
func (c *Client) PostTraced(rank, tag int32, ctx uint16, req, trace uint64) (mpi.WireReply, error) {
	return c.do(mpi.WireOp{Kind: mpi.WirePost, Rank: rank, Tag: tag, Ctx: ctx,
		Handle: req, Trace: trace})
}

// Phase runs a compute phase on the daemon engine.
func (c *Client) Phase(durationNS float64) error {
	_, err := c.do(mpi.WireOp{Kind: mpi.WirePhase, DurationNS: durationNS})
	return err
}

// QueueLens returns the daemon engine's current PRQ and UMQ depths.
func (c *Client) QueueLens() (prq, umq int, err error) {
	rep, err := c.do(mpi.WireOp{Kind: mpi.WireStat})
	if err != nil {
		return 0, 0, err
	}
	return int(rep.PRQLen), int(rep.UMQLen), nil
}

// Ping performs a no-op round trip.
func (c *Client) Ping() error {
	_, err := c.do(mpi.WireOp{Kind: mpi.WirePing})
	return err
}

// LoadConfig parameterises the client-side load generator: a seeded
// stream of arrive/post pairs with unique tags, partitioned across
// Conns concurrent connections. The same seed reproduces the same
// per-connection op streams (arrival interleaving at the daemon remains
// scheduler-dependent, as multithreaded MPI is).
type LoadConfig struct {
	Addr string

	// Conns is the number of concurrent client connections (default 4).
	Conns int

	// Messages is the total number of matched pairs (default 1000);
	// Senders the number of source ranks they round-robin (default 8).
	Messages int
	Senders  int

	// PrePostFrac is the probability a pair posts its receive before the
	// arrive (a PRQ hit); the rest arrive first and exercise the UMQ
	// (default 0.5).
	PrePostFrac float64

	// Seed drives the prepost choices (default 1).
	Seed uint64

	// PhaseEvery inserts a compute phase every that many pairs on
	// connection 0; PhaseNS is its duration (0 disables).
	PhaseEvery int
	PhaseNS    float64

	// MaxRetries bounds retransmissions of an arrive refused at ingress
	// (WireNack) or by a full bounded UMQ (WireBusy) (default 64).
	MaxRetries int

	// RetryDelay spaces retransmissions (default 200µs).
	RetryDelay time.Duration

	// Ctx is the communicator context (default 1).
	Ctx uint16
}

func (c *LoadConfig) defaults() {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Messages <= 0 {
		c.Messages = 1000
	}
	if c.Senders <= 0 {
		c.Senders = 8
	}
	if c.PrePostFrac == 0 {
		c.PrePostFrac = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 64
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 200 * time.Microsecond
	}
	if c.Ctx == 0 {
		c.Ctx = 1
	}
}

// LoadResult tallies one load run. Every pair uses a globally unique
// tag, so the expected pairing is exact: pair i's arrive must match
// request i and its post must match message i — any other handle is a
// matching bug, recorded in Mismatches. Unmatched counts pairs whose
// second operation failed to find the first (it must be zero once the
// run drains).
type LoadResult struct {
	Arrives uint64 // arrive frames accepted by the engine
	Posts   uint64 // post frames served
	Phases  uint64 // compute phases driven

	ArriveMatched uint64 // arrives that hit the PRQ
	PostMatched   uint64 // posts that hit the UMQ
	Rendezvous    uint64 // arrives demoted to rendezvous headers

	Nacks   uint64 // ingress fault-injection refusals (retransmitted)
	Busy    uint64 // bounded-UMQ refusals (retransmitted)
	Retries uint64 // total retransmissions

	Unmatched  uint64 // pairs that never matched (audit failure)
	Mismatches uint64 // pairs matched to the wrong counterpart

	EngineCycles uint64 // summed modeled cycles across replies

	Errors  []string // transport-level failures (capped)
	Elapsed time.Duration
}

// Matched returns the total matched pairs.
func (r LoadResult) Matched() uint64 { return r.ArriveMatched + r.PostMatched }

// RunLoad drives a daemon with cfg.Conns concurrent connections and
// audits the exact pairing of every arrive/post pair.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	cfg.defaults()
	var (
		res   LoadResult
		resMu sync.Mutex
		wg    sync.WaitGroup
	)
	start := time.Now()
	addErr := func(err error) {
		resMu.Lock()
		if len(res.Errors) < 16 {
			res.Errors = append(res.Errors, err.Error())
		}
		resMu.Unlock()
	}

	for conn := 0; conn < cfg.Conns; conn++ {
		wg.Add(1)
		go func(conn int) {
			defer wg.Done()
			cl, err := Dial(cfg.Addr)
			if err != nil {
				addErr(fmt.Errorf("conn %d: %w", conn, err))
				return
			}
			defer cl.Close()

			var local LoadResult
			rng := fault.NewRNG(cfg.Seed).Fork(uint64(conn) + 11)
			pairs := 0
			for i := conn; i < cfg.Messages; i += cfg.Conns {
				src := int32(i % cfg.Senders)
				tag := int32(i)
				prepost := rng.Float64() < cfg.PrePostFrac

				// Pair i's arrive and post share trace id i+1, so the
				// daemon's flight recorder sees one end-to-end timeline
				// per pair.
				if prepost {
					rep, err := cl.PostTraced(src, tag, cfg.Ctx, uint64(i), uint64(i)+1)
					if err != nil {
						addErr(fmt.Errorf("conn %d post %d: %w", conn, i, err))
						break
					}
					local.Posts++
					local.EngineCycles += rep.Cycles
					if rep.Outcome == 1 {
						// A UMQ hit here would mean a stray message wore our
						// unique tag.
						local.Mismatches++
						continue
					}
					rep, ok := arriveWithRetry(cl, src, tag, cfg, uint64(i), &local, addErr, conn, i)
					if !ok {
						break
					}
					local.EngineCycles += rep.Cycles
					if rep.Outcome == byte(engine.ArriveMatched) {
						local.Arrives++
						local.ArriveMatched++
						if rep.Handle != uint64(i) {
							local.Mismatches++
						}
					} else {
						// The posted receive was there; the arrive must match.
						local.Unmatched++
					}
				} else {
					rep, ok := arriveWithRetry(cl, src, tag, cfg, uint64(i), &local, addErr, conn, i)
					if !ok {
						break
					}
					local.Arrives++
					local.EngineCycles += rep.Cycles
					switch rep.Outcome {
					case byte(engine.ArriveMatched):
						// Unique tags: nothing else can have posted this.
						local.Mismatches++
						continue
					case byte(engine.ArriveQueuedRendezvous):
						local.Rendezvous++
					}
					prep, err := cl.PostTraced(src, tag, cfg.Ctx, uint64(i), uint64(i)+1)
					if err != nil {
						addErr(fmt.Errorf("conn %d post %d: %w", conn, i, err))
						break
					}
					local.Posts++
					local.EngineCycles += prep.Cycles
					if prep.Outcome != 1 {
						local.Unmatched++
					} else {
						local.PostMatched++
						if prep.Handle != uint64(i) {
							local.Mismatches++
						}
					}
				}

				pairs++
				if conn == 0 && cfg.PhaseEvery > 0 && pairs%cfg.PhaseEvery == 0 {
					if err := cl.Phase(cfg.PhaseNS); err != nil {
						addErr(fmt.Errorf("conn %d phase: %w", conn, err))
						break
					}
					local.Phases++
				}
			}

			resMu.Lock()
			res.Arrives += local.Arrives
			res.Posts += local.Posts
			res.Phases += local.Phases
			res.ArriveMatched += local.ArriveMatched
			res.PostMatched += local.PostMatched
			res.Rendezvous += local.Rendezvous
			res.Nacks += local.Nacks
			res.Busy += local.Busy
			res.Retries += local.Retries
			res.Unmatched += local.Unmatched
			res.Mismatches += local.Mismatches
			res.EngineCycles += local.EngineCycles
			resMu.Unlock()
		}(conn)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if len(res.Errors) > 0 {
		return res, fmt.Errorf("daemon load: %d transport errors (first: %s)", len(res.Errors), res.Errors[0])
	}
	return res, nil
}

// arriveWithRetry delivers one arrive, retransmitting on ingress NACK
// (fault injection) and engine Busy (bounded UMQ) up to MaxRetries.
func arriveWithRetry(cl *Client, src, tag int32, cfg LoadConfig, msg uint64,
	local *LoadResult, addErr func(error), conn, i int) (mpi.WireReply, bool) {
	for attempt := 0; ; attempt++ {
		rep, err := cl.ArriveTraced(src, tag, cfg.Ctx, msg, msg+1)
		if err != nil {
			addErr(fmt.Errorf("conn %d arrive %d: %w", conn, i, err))
			return rep, false
		}
		switch rep.Status {
		case mpi.WireOK:
			return rep, true
		case mpi.WireNack:
			local.Nacks++
		case mpi.WireBusy:
			local.Busy++
		}
		if attempt >= cfg.MaxRetries {
			addErr(fmt.Errorf("conn %d arrive %d: gave up after %d retries", conn, i, attempt))
			local.Unmatched++
			return rep, false
		}
		local.Retries++
		time.Sleep(cfg.RetryDelay)
	}
}
