package daemon

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"spco/internal/engine"
	"spco/internal/fault"
	"spco/internal/mpi"
)

// Client is one match-traffic connection to a daemon: a serial
// request-response stream of wire operations. A Client is not safe for
// concurrent use; open one per goroutine (that is the point — each
// connection is an independent traffic source, like a NIC queue pair).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	// credits is the server's advertised per-connection window, updated
	// from every reply (0 until a windowed server says otherwise);
	// window is a client-imposed cap on top. DoBatch splits frames to
	// the tighter of the two so a well-behaved client never stalls.
	credits uint16
	window  uint16

	// session and highWater come from the welcome frame: the server-
	// minted session id (0: ephemeral) and, on resume, the highest
	// sequenced op the server has applied.
	session   uint64
	highWater uint64
}

// Dial connects and completes the protocol handshake as an ephemeral
// connection (no session, no dedup state — the pre-v4 behaviour).
func Dial(addr string) (*Client, error) {
	c, _, err := dial(addr, mpi.WireHello{Mode: mpi.WireSessEphemeral})
	return c, err
}

// DialSession connects and mints a new resumable session; the
// server's id is available via Session. Sequenced ops (nonzero Seq)
// get their replies retained server-side for resume-time dedup.
func DialSession(addr string) (*Client, error) {
	c, w, err := dial(addr, mpi.WireHello{Mode: mpi.WireSessNew})
	if err != nil {
		return nil, err
	}
	if w.Status != mpi.WireWelcomeNew {
		c.Close()
		return nil, fmt.Errorf("daemon: handshake: server answered status %d to a new-session hello", w.Status)
	}
	return c, nil
}

// DialResume reattaches to an existing session after a disconnect or
// a daemon restart. lastAcked is the highest seq whose reply this
// client has seen; the server's HighWater then tells the caller which
// ops to re-send (those above the high-water mark were never applied;
// those at or below it re-send safely — the server's ring answers
// duplicates without re-applying). ErrSessionLost reports a server
// that no longer knows the session.
func DialResume(addr string, session, lastAcked uint64) (*Client, error) {
	c, w, err := dial(addr, mpi.WireHello{Mode: mpi.WireSessResume, Session: session, LastAcked: lastAcked})
	if err != nil {
		return nil, err
	}
	if w.Status != mpi.WireWelcomeResumed {
		c.Close()
		if w.Status == mpi.WireWelcomeLost {
			return nil, fmt.Errorf("daemon: session %d: %w", session, ErrSessionLost)
		}
		return nil, fmt.Errorf("daemon: handshake: server answered status %d to a resume hello", w.Status)
	}
	return c, nil
}

// ErrSessionLost reports a resume refused because the server no longer
// holds the session's state (e.g. it restarted without a journal).
var ErrSessionLost = errors.New("daemon: session lost")

func dial(addr string, hello mpi.WireHello) (*Client, mpi.WireWelcome, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, mpi.WireWelcome{}, err
	}
	c := &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	if err := mpi.WriteWireHello(c.bw, hello); err != nil {
		conn.Close()
		return nil, mpi.WireWelcome{}, err
	}
	if err := c.bw.Flush(); err != nil {
		conn.Close()
		return nil, mpi.WireWelcome{}, err
	}
	w, err := mpi.ReadWireWelcome(c.br)
	if err != nil {
		conn.Close()
		return nil, mpi.WireWelcome{}, fmt.Errorf("daemon: handshake: %w", err)
	}
	c.session = w.Session
	c.highWater = w.HighWater
	return c, w, nil
}

// Session returns the server-minted session id (0: ephemeral).
func (c *Client) Session() uint64 { return c.session }

// HighWater returns the server's resume-time high-water mark: the
// highest sequenced op it had applied when this connection opened.
func (c *Client) HighWater() uint64 { return c.highWater }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Credits returns the server's last advertised per-connection window
// (0: the server enforces none, or no reply has arrived yet).
func (c *Client) Credits() int { return int(c.credits) }

// SetWindow imposes a client-side cap on ops per batch frame, layered
// under whatever the server advertises (0 removes it). Values beyond
// the wire credit range clamp to 65535.
func (c *Client) SetWindow(w int) {
	switch {
	case w < 0:
		w = 0
	case w > 65535:
		w = 65535
	}
	c.window = uint16(w)
}

// frameCap returns the tightest in-force window (0 = unbounded).
func (c *Client) frameCap() int {
	w := int(c.credits)
	if c.window > 0 && (w == 0 || int(c.window) < w) {
		w = int(c.window)
	}
	return w
}

// readReply reads one reply frame, adopting its advertised window.
func (c *Client) readReply() (mpi.WireReply, error) {
	rep, err := mpi.ReadWireReply(c.br)
	if err == nil {
		c.credits = rep.Credits
	}
	return rep, err
}

// do performs one request-response round trip.
func (c *Client) do(op mpi.WireOp) (mpi.WireReply, error) {
	if err := mpi.WriteWireOp(c.bw, op); err != nil {
		return mpi.WireReply{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return mpi.WireReply{}, err
	}
	rep, err := c.readReply()
	if err != nil {
		return mpi.WireReply{}, err
	}
	if rep.Status == mpi.WireErr {
		return rep, fmt.Errorf("daemon: server rejected %d op", op.Kind)
	}
	return rep, nil
}

// DoBatch performs one batched round trip: ops go out as v3 batch
// frames with one flush each, and len(ops) replies come back in op
// order, appended to reps[:0]. When a window is in force — advertised
// by the server in its replies' Credits field, or imposed locally via
// SetWindow — the ops are split across as many frames as the window
// requires, so the server never refuses an op for exceeding its
// credit count. Reusing the reps slice across calls keeps the steady
// state allocation-free. A WireErr reply aborts (the server closes the
// connection on malformed frames).
func (c *Client) DoBatch(ops []mpi.WireOp, reps []mpi.WireReply) ([]mpi.WireReply, error) {
	reps = reps[:0]
	if len(ops) == 0 {
		return reps, fmt.Errorf("daemon: empty batch")
	}
	for len(ops) > 0 {
		n := len(ops)
		if w := c.frameCap(); w > 0 && n > w {
			n = w
		}
		if err := mpi.WriteWireBatch(c.bw, ops[:n]); err != nil {
			return reps, err
		}
		if err := c.bw.Flush(); err != nil {
			return reps, err
		}
		for i := 0; i < n; i++ {
			rep, err := c.readReply()
			if err != nil {
				return reps, err
			}
			if rep.Status == mpi.WireErr {
				return reps, fmt.Errorf("daemon: server rejected batched op")
			}
			reps = append(reps, rep)
		}
		ops = ops[n:]
	}
	return reps, nil
}

// Arrive delivers an envelope; the reply carries the engine outcome.
func (c *Client) Arrive(rank, tag int32, ctx uint16, msg uint64) (mpi.WireReply, error) {
	return c.do(mpi.WireOp{Kind: mpi.WireArrive, Rank: rank, Tag: tag, Ctx: ctx, Handle: msg})
}

// ArriveTraced is Arrive carrying a client-minted causal-trace id the
// daemon adopts into its flight recorder (0 = untraced).
func (c *Client) ArriveTraced(rank, tag int32, ctx uint16, msg, trace uint64) (mpi.WireReply, error) {
	return c.do(mpi.WireOp{Kind: mpi.WireArrive, Rank: rank, Tag: tag, Ctx: ctx,
		Handle: msg, Trace: trace})
}

// Post posts a receive; the reply reports a UMQ match (Outcome 1).
func (c *Client) Post(rank, tag int32, ctx uint16, req uint64) (mpi.WireReply, error) {
	return c.do(mpi.WireOp{Kind: mpi.WirePost, Rank: rank, Tag: tag, Ctx: ctx, Handle: req})
}

// PostTraced is Post carrying a causal-trace id (0 = untraced). A
// matched pair whose arrive and post share one trace id lands as one
// end-to-end timeline in the daemon's recorder.
func (c *Client) PostTraced(rank, tag int32, ctx uint16, req, trace uint64) (mpi.WireReply, error) {
	return c.do(mpi.WireOp{Kind: mpi.WirePost, Rank: rank, Tag: tag, Ctx: ctx,
		Handle: req, Trace: trace})
}

// Phase runs a compute phase on the daemon engine.
func (c *Client) Phase(durationNS float64) error {
	_, err := c.do(mpi.WireOp{Kind: mpi.WirePhase, DurationNS: durationNS})
	return err
}

// QueueLens returns the daemon engine's current PRQ and UMQ depths.
func (c *Client) QueueLens() (prq, umq int, err error) {
	rep, err := c.do(mpi.WireOp{Kind: mpi.WireStat})
	if err != nil {
		return 0, 0, err
	}
	return int(rep.PRQLen), int(rep.UMQLen), nil
}

// Ping performs a no-op round trip.
func (c *Client) Ping() error {
	_, err := c.do(mpi.WireOp{Kind: mpi.WirePing})
	return err
}

// LoadConfig parameterises the client-side load generator: a seeded
// stream of arrive/post pairs with unique tags, partitioned across
// Conns concurrent connections. The same seed reproduces the same
// per-connection op streams (arrival interleaving at the daemon remains
// scheduler-dependent, as multithreaded MPI is).
type LoadConfig struct {
	Addr string

	// Conns is the number of concurrent client connections (default 4).
	Conns int

	// Messages is the total number of matched pairs (default 1000);
	// Senders the number of source ranks they round-robin (default 8).
	Messages int
	Senders  int

	// PrePostFrac is the probability a pair posts its receive before the
	// arrive (a PRQ hit); the rest arrive first and exercise the UMQ
	// (default 0.5).
	PrePostFrac float64

	// Seed drives the prepost choices (default 1).
	Seed uint64

	// PhaseEvery inserts a compute phase every that many pairs on
	// connection 0; PhaseNS is its duration (0 disables).
	PhaseEvery int
	PhaseNS    float64

	// MaxRetries bounds retransmissions of an arrive refused at ingress
	// (WireNack) or by a full bounded UMQ (WireBusy) (default 64).
	MaxRetries int

	// RetryDelay spaces retransmissions (default 200µs).
	RetryDelay time.Duration

	// Ctx is the communicator context (default 1).
	Ctx uint16

	// Ctxs spreads connections across that many consecutive contexts
	// starting at Ctx: connection c uses Ctx + c mod Ctxs (default 1 —
	// every connection on Ctx). Against a sharded daemon, Ctxs equal to
	// or above the shard count exercises every lane; a pair's arrive
	// and post always share the connection's context, so the pairing
	// audit is untouched.
	Ctxs int

	// Window caps ops per batched wire frame client-side, on top of
	// whatever window the daemon advertises in its replies (0: only the
	// server's word). Batched connections learn the server's window
	// with an opening ping, so they never stall on exhausted credits.
	Window int

	// Batch > 1 switches a connection to v3 batch frames: pairs are
	// processed in windows of Batch, each window driven with two batched
	// round trips (every pair's first op, then every pair's second op)
	// instead of two flushes per pair. Batched ops are untraced — the
	// batch path is the throughput configuration, tracing the per-pair
	// one. Values above mpi.MaxWireBatch are clamped; 0 or 1 is the
	// scalar request-response mode.
	Batch int
}

func (c *LoadConfig) defaults() {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Messages <= 0 {
		c.Messages = 1000
	}
	if c.Senders <= 0 {
		c.Senders = 8
	}
	if c.PrePostFrac == 0 {
		c.PrePostFrac = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 64
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 200 * time.Microsecond
	}
	if c.Ctx == 0 {
		c.Ctx = 1
	}
	if c.Ctxs <= 0 {
		c.Ctxs = 1
	}
	if c.Batch > mpi.MaxWireBatch {
		c.Batch = mpi.MaxWireBatch
	}
}

// LoadResult tallies one load run. Every pair uses a globally unique
// tag, so the expected pairing is exact: pair i's arrive must match
// request i and its post must match message i — any other handle is a
// matching bug, recorded in Mismatches. Unmatched counts pairs whose
// second operation failed to find the first (it must be zero once the
// run drains).
type LoadResult struct {
	Arrives uint64 // arrive frames accepted by the engine
	Posts   uint64 // post frames served
	Phases  uint64 // compute phases driven

	ArriveMatched uint64 // arrives that hit the PRQ
	PostMatched   uint64 // posts that hit the UMQ
	Rendezvous    uint64 // arrives demoted to rendezvous headers

	Nacks   uint64 // ingress fault-injection refusals (retransmitted)
	Busy    uint64 // bounded-UMQ refusals (retransmitted)
	Retries uint64 // total retransmissions

	Unmatched  uint64 // pairs that never matched (audit failure)
	Mismatches uint64 // pairs matched to the wrong counterpart

	EngineCycles uint64 // summed modeled cycles across replies

	Errors  []string // transport-level failures (capped)
	Elapsed time.Duration
}

// Matched returns the total matched pairs.
func (r LoadResult) Matched() uint64 { return r.ArriveMatched + r.PostMatched }

// RunLoad drives a daemon with cfg.Conns concurrent connections and
// audits the exact pairing of every arrive/post pair.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	cfg.defaults()
	var (
		res   LoadResult
		resMu sync.Mutex
		wg    sync.WaitGroup
	)
	start := time.Now()
	addErr := func(err error) {
		resMu.Lock()
		if len(res.Errors) < 16 {
			res.Errors = append(res.Errors, err.Error())
		}
		resMu.Unlock()
	}

	for conn := 0; conn < cfg.Conns; conn++ {
		wg.Add(1)
		go func(conn int) {
			defer wg.Done()
			cl, err := Dial(cfg.Addr)
			if err != nil {
				addErr(fmt.Errorf("conn %d: %w", conn, err))
				return
			}
			defer cl.Close()

			cl.SetWindow(cfg.Window)

			var local LoadResult
			if cfg.Batch > 1 {
				runConnBatched(cl, cfg, conn, &local, addErr)
			} else {
				runConnScalar(cl, cfg, conn, &local, addErr)
			}

			resMu.Lock()
			res.Arrives += local.Arrives
			res.Posts += local.Posts
			res.Phases += local.Phases
			res.ArriveMatched += local.ArriveMatched
			res.PostMatched += local.PostMatched
			res.Rendezvous += local.Rendezvous
			res.Nacks += local.Nacks
			res.Busy += local.Busy
			res.Retries += local.Retries
			res.Unmatched += local.Unmatched
			res.Mismatches += local.Mismatches
			res.EngineCycles += local.EngineCycles
			resMu.Unlock()
		}(conn)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if len(res.Errors) > 0 {
		return res, fmt.Errorf("daemon load: %d transport errors (first: %s)", len(res.Errors), res.Errors[0])
	}
	return res, nil
}

// runConnScalar drives one connection in request-response mode, two
// round trips per pair.
func runConnScalar(cl *Client, cfg LoadConfig, conn int, local *LoadResult, addErr func(error)) {
	cfg.Ctx += uint16(conn % cfg.Ctxs) // this connection's context (cfg is a copy)
	rng := fault.NewRNG(cfg.Seed).Fork(uint64(conn) + 11)
	pairs := 0
	for i := conn; i < cfg.Messages; i += cfg.Conns {
		src := int32(i % cfg.Senders)
		tag := int32(i)
		prepost := rng.Float64() < cfg.PrePostFrac

		// Pair i's arrive and post share trace id i+1, so the
		// daemon's flight recorder sees one end-to-end timeline
		// per pair.
		if prepost {
			rep, err := cl.PostTraced(src, tag, cfg.Ctx, uint64(i), uint64(i)+1)
			if err != nil {
				addErr(fmt.Errorf("conn %d post %d: %w", conn, i, err))
				break
			}
			local.Posts++
			local.EngineCycles += rep.Cycles
			if rep.Outcome == 1 {
				// A UMQ hit here would mean a stray message wore our
				// unique tag.
				local.Mismatches++
				continue
			}
			rep, ok := arriveWithRetry(cl, src, tag, cfg, uint64(i), local, addErr, conn, i)
			if !ok {
				break
			}
			local.EngineCycles += rep.Cycles
			if rep.Outcome == byte(engine.ArriveMatched) {
				local.Arrives++
				local.ArriveMatched++
				if rep.Handle != uint64(i) {
					local.Mismatches++
				}
			} else {
				// The posted receive was there; the arrive must match.
				local.Unmatched++
			}
		} else {
			rep, ok := arriveWithRetry(cl, src, tag, cfg, uint64(i), local, addErr, conn, i)
			if !ok {
				break
			}
			local.Arrives++
			local.EngineCycles += rep.Cycles
			switch rep.Outcome {
			case byte(engine.ArriveMatched):
				// Unique tags: nothing else can have posted this.
				local.Mismatches++
				continue
			case byte(engine.ArriveQueuedRendezvous):
				local.Rendezvous++
			}
			prep, err := cl.PostTraced(src, tag, cfg.Ctx, uint64(i), uint64(i)+1)
			if err != nil {
				addErr(fmt.Errorf("conn %d post %d: %w", conn, i, err))
				break
			}
			local.Posts++
			local.EngineCycles += prep.Cycles
			if prep.Outcome != 1 {
				local.Unmatched++
			} else {
				local.PostMatched++
				if prep.Handle != uint64(i) {
					local.Mismatches++
				}
			}
		}

		pairs++
		if conn == 0 && cfg.PhaseEvery > 0 && pairs%cfg.PhaseEvery == 0 {
			if err := cl.Phase(cfg.PhaseNS); err != nil {
				addErr(fmt.Errorf("conn %d phase: %w", conn, err))
				break
			}
			local.Phases++
		}
	}
}

// loadPair is one pair's plan and window-local progress in batch mode.
type loadPair struct {
	i       int
	src     int32
	tag     int32
	prepost bool
	skip    bool // second op unnecessary (first op already audited a failure)
}

// runConnBatched drives one connection in windowed batch mode: each
// window of cfg.Batch pairs costs two batched round trips — every
// pair's first operation, then (for pairs still in play) every pair's
// second — instead of two flushes per pair. The audit is the same as
// scalar mode's; arrives the server refused (NACK/Busy) fall back to
// scalar retransmission inside the window.
func runConnBatched(cl *Client, cfg LoadConfig, conn int, local *LoadResult, addErr func(error)) {
	cfg.Ctx += uint16(conn % cfg.Ctxs) // this connection's context (cfg is a copy)
	// Learn the server's credit window before the first batch, so every
	// frame is clamped from the start and no op ever stalls on credits
	// (a credit stall would skew the counter-conservation audit: the
	// refused op never reaches an engine).
	if err := cl.Ping(); err != nil {
		addErr(fmt.Errorf("conn %d ping: %w", conn, err))
		return
	}
	rng := fault.NewRNG(cfg.Seed).Fork(uint64(conn) + 11)
	var (
		window []loadPair
		ops    []mpi.WireOp
		reps   []mpi.WireReply
		pairs  int
	)

	// resolveArrive finishes one arrive the server answered rep to,
	// retrying refused deliveries scalar. Returns the accepted reply and
	// whether the connection can continue.
	resolveArrive := func(p *loadPair, rep mpi.WireReply) (mpi.WireReply, bool) {
		for attempt := 0; ; attempt++ {
			switch rep.Status {
			case mpi.WireOK:
				return rep, true
			case mpi.WireNack:
				local.Nacks++
			case mpi.WireBusy:
				local.Busy++
			}
			if attempt >= cfg.MaxRetries {
				addErr(fmt.Errorf("conn %d arrive %d: gave up after %d retries", conn, p.i, attempt))
				local.Unmatched++
				p.skip = true
				return rep, true
			}
			local.Retries++
			time.Sleep(cfg.RetryDelay)
			var err error
			rep, err = cl.Arrive(p.src, p.tag, cfg.Ctx, uint64(p.i))
			if err != nil {
				addErr(fmt.Errorf("conn %d arrive %d: %w", conn, p.i, err))
				return rep, false
			}
		}
	}

	auditArrive := func(p *loadPair, rep mpi.WireReply) bool {
		rep, ok := resolveArrive(p, rep)
		if !ok {
			return false
		}
		if p.skip {
			return true
		}
		local.Arrives++
		local.EngineCycles += rep.Cycles
		if p.prepost {
			// Second op of a preposted pair: it must match our receive.
			p.skip = true
			if rep.Outcome == byte(engine.ArriveMatched) {
				local.ArriveMatched++
				if rep.Handle != uint64(p.i) {
					local.Mismatches++
				}
			} else {
				local.Unmatched++
			}
			return true
		}
		// First op of an arrive-first pair: it must not match anything.
		switch rep.Outcome {
		case byte(engine.ArriveMatched):
			local.Mismatches++
			p.skip = true
		case byte(engine.ArriveQueuedRendezvous):
			local.Rendezvous++
		}
		return true
	}

	auditPost := func(p *loadPair, rep mpi.WireReply, second bool) {
		local.Posts++
		local.EngineCycles += rep.Cycles
		if !second {
			// Prepost: a UMQ hit would mean a stray message wore our tag.
			if rep.Outcome == 1 {
				local.Mismatches++
				p.skip = true
			}
			return
		}
		p.skip = true
		if rep.Outcome != 1 {
			local.Unmatched++
		} else {
			local.PostMatched++
			if rep.Handle != uint64(p.i) {
				local.Mismatches++
			}
		}
	}

	flushWindow := func() bool {
		// First half: every pair's opening operation.
		ops = ops[:0]
		for k := range window {
			p := &window[k]
			kind := mpi.WireArrive
			if p.prepost {
				kind = mpi.WirePost
			}
			ops = append(ops, mpi.WireOp{Kind: kind, Rank: p.src, Tag: p.tag, Ctx: cfg.Ctx, Handle: uint64(p.i)})
		}
		var err error
		reps, err = cl.DoBatch(ops, reps)
		if err != nil {
			addErr(fmt.Errorf("conn %d batch: %w", conn, err))
			return false
		}
		for k := range reps {
			p := &window[k]
			if p.prepost {
				auditPost(p, reps[k], false)
			} else if !auditArrive(p, reps[k]) {
				return false
			}
		}

		// Second half: the counterparts, for pairs still in play.
		ops = ops[:0]
		live := 0
		for k := range window {
			p := &window[k]
			if p.skip {
				continue
			}
			window[live] = *p
			live++
			kind := mpi.WirePost
			if p.prepost {
				kind = mpi.WireArrive
			}
			ops = append(ops, mpi.WireOp{Kind: kind, Rank: p.src, Tag: p.tag, Ctx: cfg.Ctx, Handle: uint64(p.i)})
		}
		if len(ops) == 0 {
			return true
		}
		reps, err = cl.DoBatch(ops, reps)
		if err != nil {
			addErr(fmt.Errorf("conn %d batch: %w", conn, err))
			return false
		}
		for k := range reps {
			p := &window[k]
			if p.prepost {
				if !auditArrive(p, reps[k]) {
					return false
				}
			} else {
				auditPost(p, reps[k], true)
			}
		}
		return true
	}

	for i := conn; i < cfg.Messages; i += cfg.Conns {
		window = append(window, loadPair{
			i:       i,
			src:     int32(i % cfg.Senders),
			tag:     int32(i),
			prepost: rng.Float64() < cfg.PrePostFrac,
		})
		if len(window) < cfg.Batch {
			continue
		}
		if !flushWindow() {
			return
		}
		pairs += len(window)
		window = window[:0]
		// Compute phases land on window boundaries in batch mode: the
		// same average cadence as scalar mode, quantized to the window.
		if conn == 0 && cfg.PhaseEvery > 0 && pairs >= cfg.PhaseEvery {
			pairs -= cfg.PhaseEvery
			if err := cl.Phase(cfg.PhaseNS); err != nil {
				addErr(fmt.Errorf("conn %d phase: %w", conn, err))
				return
			}
			local.Phases++
		}
	}
	if len(window) > 0 {
		flushWindow()
	}
}

// arriveWithRetry delivers one arrive, retransmitting on ingress NACK
// (fault injection) and engine Busy (bounded UMQ) up to MaxRetries.
func arriveWithRetry(cl *Client, src, tag int32, cfg LoadConfig, msg uint64,
	local *LoadResult, addErr func(error), conn, i int) (mpi.WireReply, bool) {
	for attempt := 0; ; attempt++ {
		rep, err := cl.ArriveTraced(src, tag, cfg.Ctx, msg, msg+1)
		if err != nil {
			addErr(fmt.Errorf("conn %d arrive %d: %w", conn, i, err))
			return rep, false
		}
		switch rep.Status {
		case mpi.WireOK:
			return rep, true
		case mpi.WireNack:
			local.Nacks++
		case mpi.WireBusy:
			local.Busy++
		}
		if attempt >= cfg.MaxRetries {
			addErr(fmt.Errorf("conn %d arrive %d: gave up after %d retries", conn, i, attempt))
			local.Unmatched++
			return rep, false
		}
		local.Retries++
		time.Sleep(cfg.RetryDelay)
	}
}
